package mlds

// One benchmark per experiment row of DESIGN.md: the schema figures (E1–E4),
// the Chapter VI translation path (E5), the two MBDS performance sweeps
// (E6–E7, which report the simulated kernel response time as sim-ms/op), the
// cross-model goal (E8–E9), and the design-choice ablations.

import (
	"fmt"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/codasyl"
	"mlds/internal/dapkms"
	"mlds/internal/daplex"
	"mlds/internal/kc"
	"mlds/internal/kms"
	"mlds/internal/mbds"
	"mlds/internal/netddl"
	"mlds/internal/univ"
	"mlds/internal/univgen"
	"mlds/internal/xform"
)

func BenchmarkE1_DaplexParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := daplex.ParseSchema(univ.SchemaDDL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_SchemaTransform(b *testing.B) {
	fun := univ.Schema()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xform.FunToNet(fun); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_ABMapping(b *testing.B) {
	m, err := xform.FunToNet(univ.Schema())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xform.DeriveAB(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_EntitySubtypeTransform(b *testing.B) {
	fun, err := daplex.ParseSchema(`
DATABASE figures IS
ENTITY person IS
    pname : STRING(30);
END ENTITY;
SUBTYPE student OF person IS
    major : STRING(20);
END SUBTYPE;
END DATABASE;`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xform.FunToNet(fun); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSession loads a University instance onto n backends.
func benchSession(b *testing.B, cfg univgen.Config, backends int) (*univgen.Database, *mbds.System, *kc.Controller) {
	b.Helper()
	db, err := univgen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := db.NewKernel(backends)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	if _, err := db.Load(sys); err != nil {
		b.Fatal(err)
	}
	ctrl := kc.New(sys)
	ctrl.SeedKeys(db.Instance.MaxKey())
	return db, sys, ctrl
}

func benchScale(scale int) univgen.Config {
	cfg := univgen.SmallConfig()
	cfg.Students *= 24 * scale
	cfg.Faculty *= 8 * scale
	cfg.Courses *= 8 * scale
	return cfg
}

func BenchmarkE5_DMLTranslate(b *testing.B) {
	db, _, ctrl := benchSession(b, univgen.SmallConfig(), 2)
	tr := kms.NewFunctional(db.Mapping, db.AB, ctrl)
	mv, _ := codasyl.ParseStmt("MOVE 'Advanced Database' TO title IN course")
	if _, err := tr.Exec(mv); err != nil {
		b.Fatal(err)
	}
	find, _ := codasyl.ParseStmt("FIND ANY course USING title IN course")
	get, _ := codasyl.ParseStmt("GET course")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Exec(find); err != nil {
			b.Fatal(err)
		}
		if _, err := tr.Exec(get); err != nil {
			b.Fatal(err)
		}
	}
}

var sweepQuery = abdl.NewRetrieve(abdm.And(
	abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("student")},
	abdm.Predicate{Attr: "major", Op: abdm.OpEq, Val: abdm.String("Computer Science")},
), "gpa")

// BenchmarkE6_BackendsScaling: fixed database, backends ∈ {1,2,4,8}. The
// sim-ms/op metric is the modelled MBDS response time — the claim-1 curve.
func BenchmarkE6_BackendsScaling(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("backends=%d", n), func(b *testing.B) {
			_, sys, _ := benchSession(b, benchScale(1), n)
			b.ResetTimer()
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rt, err := sys.ExecTimed(sweepQuery)
				if err != nil {
					b.Fatal(err)
				}
				sim += float64(rt.Milliseconds())
			}
			b.ReportMetric(sim/float64(b.N), "sim-ms/op")
		})
	}
}

// BenchmarkE7_CapacityGrowth: database grows ∝ backends; sim-ms/op should be
// invariant — the claim-2 line.
func BenchmarkE7_CapacityGrowth(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("backends=%d", n), func(b *testing.B) {
			_, sys, _ := benchSession(b, benchScale(n), n)
			b.ResetTimer()
			var sim float64
			for i := 0; i < b.N; i++ {
				_, rt, err := sys.ExecTimed(sweepQuery)
				if err != nil {
					b.Fatal(err)
				}
				sim += float64(rt.Milliseconds())
			}
			b.ReportMetric(sim/float64(b.N), "sim-ms/op")
		})
	}
}

// BenchmarkE8_CrossModel times the same retrieval through both interfaces.
func BenchmarkE8_CrossModel(b *testing.B) {
	db, _, ctrl := benchSession(b, univgen.SmallConfig(), 2)
	b.Run("daplex", func(b *testing.B) {
		dap := dapkms.New(db.Mapping, db.AB, ctrl)
		st, err := daplex.ParseDML("FOR EACH student WHERE major = 'Computer Science' PRINT pname;")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dap.Exec(st); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("codasyl-dml", func(b *testing.B) {
		tr := kms.NewFunctional(db.Mapping, db.AB, ctrl)
		mv, _ := codasyl.ParseStmt("MOVE 'Computer Science' TO major IN student")
		if _, err := tr.Exec(mv); err != nil {
			b.Fatal(err)
		}
		find, _ := codasyl.ParseStmt("FIND ANY student USING major IN student")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tr.Exec(find); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9_SharedKernel interleaves Daplex updates with DML reads over
// one kernel.
func BenchmarkE9_SharedKernel(b *testing.B) {
	db, _, ctrl := benchSession(b, univgen.SmallConfig(), 2)
	dap := dapkms.New(db.Mapping, db.AB, ctrl)
	tr := kms.NewFunctional(db.Mapping, db.AB, ctrl)
	let, err := daplex.ParseDML("LET credits OF course WHERE title = 'Advanced Database' BE 9;")
	if err != nil {
		b.Fatal(err)
	}
	mv, _ := codasyl.ParseStmt("MOVE 'Advanced Database' TO title IN course")
	if _, err := tr.Exec(mv); err != nil {
		b.Fatal(err)
	}
	find, _ := codasyl.ParseStmt("FIND ANY course USING title IN course")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dap.Exec(let); err != nil {
			b.Fatal(err)
		}
		if _, err := tr.Exec(find); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_IndexVsScan compares the indexed access path with
// forced full scans.
func BenchmarkAblation_IndexVsScan(b *testing.B) {
	for _, noIndex := range []bool{false, true} {
		name := "indexed"
		if noIndex {
			name = "scan"
		}
		b.Run(name, func(b *testing.B) {
			db, err := univgen.Generate(benchScale(2))
			if err != nil {
				b.Fatal(err)
			}
			cfg := mbds.DefaultConfig(2)
			cfg.NoIndexes = noIndex
			sys, err := mbds.New(db.AB.Dir, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(sys.Close)
			if _, err := db.Load(sys); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Exec(sweepQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ParallelVsSerial compares broadcast dispatch modes.
func BenchmarkAblation_ParallelVsSerial(b *testing.B) {
	for _, serial := range []bool{false, true} {
		name := "parallel"
		if serial {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			db, err := univgen.Generate(benchScale(2))
			if err != nil {
				b.Fatal(err)
			}
			cfg := mbds.DefaultConfig(4)
			cfg.Serial = serial
			sys, err := mbds.New(db.AB.Dir, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(sys.Close)
			if _, err := db.Load(sys); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Exec(sweepQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_DirectVsPreprocess compares the one-step schema
// transformation against the two-step textual pipeline.
func BenchmarkAblation_DirectVsPreprocess(b *testing.B) {
	fun := univ.Schema()
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := xform.FunToNet(fun)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := xform.DeriveAB(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("preprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := xform.FunToNet(fun)
			if err != nil {
				b.Fatal(err)
			}
			net, err := reparseDDL(m.Net.DDL())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := xform.DeriveABNative(net); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// reparseDDL round-trips network DDL text for the preprocessing ablation.
func reparseDDL(ddl string) (*NetworkSchema, error) { return netddl.Parse(ddl) }

// BenchmarkE10_FiveInterfaces runs one statement per language interface over
// prebuilt sessions — the Figure 1.2 round trip.
func BenchmarkE10_FiveInterfaces(b *testing.B) {
	sys := New(KernelWith(2))
	b.Cleanup(sys.Close)
	fdb, err := sys.CreateFunctional("university", UniversityDDL)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := PopulateUniversity(fdb, SmallUniversity()); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.CreateRelational("shop", "CREATE TABLE emp (ename CHAR(20), pay INTEGER);"); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.CreateHierarchical("school", "DBD NAME IS school\nSEGMENT NAME IS dept\n    FIELD dname CHAR 20\n"); err != nil {
		b.Fatal(err)
	}
	dap, _ := sys.OpenDaplex("university")
	dml, _ := sys.OpenDML("university")
	sq, _ := sys.OpenSQL("shop")
	dl, _ := sys.OpenDLI("school")
	if _, err := sq.Execute("INSERT INTO emp (ename, pay) VALUES ('Ann', 1)"); err != nil {
		b.Fatal(err)
	}
	if _, err := dl.Execute("ISRT dept (dname = 'CS')"); err != nil {
		b.Fatal(err)
	}
	if _, err := dml.Execute("MOVE 'Advanced Database' TO title IN course"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dap.Execute("FOR EACH department PRINT dname;"); err != nil {
			b.Fatal(err)
		}
		if _, err := dml.Execute("FIND ANY course USING title IN course"); err != nil {
			b.Fatal(err)
		}
		if _, err := sq.Execute("SELECT COUNT(*) FROM emp"); err != nil {
			b.Fatal(err)
		}
		if _, err := dl.Execute("GU dept (dname = 'CS')"); err != nil {
			b.Fatal(err)
		}
		if _, err := fdb.ExecABDL("RETRIEVE ((FILE = course)) (COUNT(title))"); err != nil {
			b.Fatal(err)
		}
	}
}
