// Package univ provides Shipman's University database — the running example
// of the thesis (Figure 2.1) — as a Daplex schema, together with a
// deterministic data generator and the canonical workloads the experiments
// replay.
package univ

import (
	"fmt"

	"mlds/internal/daplex"
	"mlds/internal/funcmodel"
)

// SchemaDDL is the University database functional schema of Figure 2.1 in
// the Daplex DDL accepted by this implementation. The entity types, subtype
// hierarchy, functions and constraints are the ones the thesis's Chapter V
// transformation example (Figure 5.1) and Chapter VI translations exercise:
//
//   - person with subtypes student and employee,
//   - employee with subtypes faculty and support_staff,
//   - course and department entity types,
//   - single-valued functions advisor (student→faculty), dept
//     (faculty→department) and supervisor (support_staff→employee),
//   - the many-to-many pair teaching (faculty→→course) / taught_by
//     (course→→faculty), which transforms into the LINK_1 record,
//   - the one-to-many multi-valued function enrollments (student→→course),
//   - the scalar multi-valued function skills on support_staff,
//   - UNIQUE title, semester WITHIN course (Figure 5.3), and
//   - an overlap constraint letting students also be faculty or staff.
const SchemaDDL = `
DATABASE university IS

TYPE name_str IS STRING(30);
TYPE rank_type IS (instructor, assistant, associate, professor);

ENTITY person IS
    pname : name_str;
    ssn   : INTEGER;
END ENTITY;

ENTITY course IS
    title    : STRING(30);
    semester : STRING(10);
    credits  : INTEGER;
    taught_by : SET OF faculty;
END ENTITY;

ENTITY department IS
    dname    : STRING(20);
    building : STRING(20);
END ENTITY;

SUBTYPE student OF person IS
    major       : STRING(20);
    gpa         : FLOAT;
    advisor     : faculty;
    enrollments : SET OF course;
END SUBTYPE;

SUBTYPE employee OF person IS
    salary : INTEGER;
END SUBTYPE;

SUBTYPE faculty OF employee IS
    rank     : rank_type;
    dept     : department;
    teaching : SET OF course;
END SUBTYPE;

SUBTYPE support_staff OF employee IS
    supervisor : employee;
    skills     : SET OF STRING(20);
END SUBTYPE;

UNIQUE title, semester WITHIN course;
UNIQUE ssn WITHIN person;
OVERLAP student WITH faculty, support_staff;

END DATABASE;
`

// Schema parses SchemaDDL; it panics on error because the text is a
// compile-time constant exercised by the test suite.
func Schema() *funcmodel.Schema {
	s, err := daplex.ParseSchema(SchemaDDL)
	if err != nil {
		panic(fmt.Sprintf("univ: embedded schema failed to parse: %v", err))
	}
	return s
}
