package univ

import "testing"

func TestSchemaParses(t *testing.T) {
	s := Schema()
	if s.Name != "university" {
		t.Fatalf("name = %q", s.Name)
	}
	if len(s.Entities) != 3 || len(s.Subtypes) != 4 {
		t.Fatalf("shape: %s", s)
	}
}

func TestSchemaConstructCoverage(t *testing.T) {
	// The embedded schema must exercise all six Chapter V constructs.
	s := Schema()
	if len(s.NonEntities) == 0 {
		t.Error("no non-entity types")
	}
	if len(s.Uniques) != 2 {
		t.Errorf("uniques = %d", len(s.Uniques))
	}
	if len(s.Overlaps) != 1 {
		t.Errorf("overlaps = %d", len(s.Overlaps))
	}
	// Single-valued, one-to-many multi-valued, many-to-many, scalar
	// multi-valued function shapes must all occur.
	shapes := map[string]bool{}
	for _, tn := range s.TypeNames() {
		for _, f := range s.FunctionsOf(tn) {
			switch {
			case f.Result.IsEntity() && !f.SetValued:
				shapes["single"] = true
			case f.Result.IsEntity() && f.SetValued:
				shapes["multi"] = true
			case !f.Result.IsEntity() && f.SetValued:
				shapes["scalar-multi"] = true
			default:
				shapes["scalar"] = true
			}
		}
	}
	for _, want := range []string{"single", "multi", "scalar-multi", "scalar"} {
		if !shapes[want] {
			t.Errorf("schema lacks a %s function", want)
		}
	}
	// The many-to-many pair (teaching/taught_by) must be mutual.
	home1, f1, _ := s.FunctionHome("teaching")
	home2, f2, _ := s.FunctionHome("taught_by")
	if f1 == nil || f2 == nil || f1.Result.Entity != home2 || f2.Result.Entity != home1 {
		t.Error("teaching/taught_by do not form a many-to-many pair")
	}
}
