// Package relmodel implements the relational data model for the MLDS
// SQL language interface: tables of typed columns, with NOT NULL and UNIQUE
// column constraints. The relational→ABDM mapping is the simplest of the
// MLDS transformations — one kernel file per table, one attribute per
// column — which is among the reasons the attribute-based model was chosen
// as the kernel.
package relmodel

import (
	"fmt"
	"strings"
)

// ColType classifies column types.
type ColType byte

// Column types.
const (
	ColInt    ColType = 'I'
	ColFloat  ColType = 'F'
	ColString ColType = 'C'
)

// String returns the SQL spelling.
func (t ColType) String() string {
	switch t {
	case ColInt:
		return "INTEGER"
	case ColFloat:
		return "FLOAT"
	case ColString:
		return "CHAR"
	default:
		return fmt.Sprintf("coltype(%c)", byte(t))
	}
}

// Column is one table column.
type Column struct {
	Name    string
	Type    ColType
	Length  int // CHAR length bound, 0 = unbounded
	NotNull bool
	Unique  bool
}

// Table is one relation.
type Table struct {
	Name    string
	Columns []*Column
}

// Column returns the named column.
func (t *Table) Column(name string) (*Column, bool) {
	for _, c := range t.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// Schema is a relational database schema.
type Schema struct {
	Name   string
	Tables []*Table
}

// Table returns the named table.
func (s *Schema) Table(name string) (*Table, bool) {
	for _, t := range s.Tables {
		if t.Name == name {
			return t, true
		}
	}
	return nil, false
}

// Validate checks name uniqueness and column sanity.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("relmodel: schema has no name")
	}
	tables := make(map[string]bool)
	for _, t := range s.Tables {
		if t.Name == "" {
			return fmt.Errorf("relmodel: table with empty name")
		}
		if tables[t.Name] {
			return fmt.Errorf("relmodel: duplicate table %q", t.Name)
		}
		tables[t.Name] = true
		if len(t.Columns) == 0 {
			return fmt.Errorf("relmodel: table %q has no columns", t.Name)
		}
		cols := make(map[string]bool)
		for _, c := range t.Columns {
			if c.Name == "" {
				return fmt.Errorf("relmodel: table %q has a column with no name", t.Name)
			}
			if cols[c.Name] {
				return fmt.Errorf("relmodel: table %q declares column %q twice", t.Name, c.Name)
			}
			cols[c.Name] = true
			switch c.Type {
			case ColInt, ColFloat, ColString:
			default:
				return fmt.Errorf("relmodel: table %q column %q has invalid type", t.Name, c.Name)
			}
		}
	}
	return nil
}

// DDL renders the schema as SQL DDL text that ParseDDL accepts.
func (s *Schema) DDL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- schema %s\n", s.Name)
	for _, t := range s.Tables {
		fmt.Fprintf(&b, "CREATE TABLE %s (\n", t.Name)
		for i, c := range t.Columns {
			fmt.Fprintf(&b, "    %s %s", c.Name, c.Type)
			if c.Type == ColString && c.Length > 0 {
				fmt.Fprintf(&b, "(%d)", c.Length)
			}
			if c.NotNull {
				b.WriteString(" NOT NULL")
			}
			if c.Unique {
				b.WriteString(" UNIQUE")
			}
			if i < len(t.Columns)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		b.WriteString(");\n")
	}
	return b.String()
}

// String renders a summary.
func (s *Schema) String() string {
	return fmt.Sprintf("relational schema %s: %d tables", s.Name, len(s.Tables))
}
