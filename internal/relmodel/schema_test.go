package relmodel

import (
	"strings"
	"testing"
)

func sample() *Schema {
	return &Schema{
		Name: "shop",
		Tables: []*Table{
			{Name: "emp", Columns: []*Column{
				{Name: "ename", Type: ColString, Length: 20, NotNull: true, Unique: true},
				{Name: "pay", Type: ColInt},
				{Name: "rate", Type: ColFloat},
			}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLookups(t *testing.T) {
	s := sample()
	tab, ok := s.Table("emp")
	if !ok {
		t.Fatal("table missing")
	}
	if _, ok := s.Table("ghost"); ok {
		t.Error("phantom table")
	}
	col, ok := tab.Column("pay")
	if !ok || col.Type != ColInt {
		t.Errorf("pay = %+v", col)
	}
	if _, ok := tab.Column("ghost"); ok {
		t.Error("phantom column")
	}
}

func TestValidateCatches(t *testing.T) {
	mutate := map[string]func(*Schema){
		"no name":    func(s *Schema) { s.Name = "" },
		"dup table":  func(s *Schema) { s.Tables = append(s.Tables, &Table{Name: "emp", Columns: s.Tables[0].Columns}) },
		"no columns": func(s *Schema) { s.Tables[0].Columns = nil },
		"dup column": func(s *Schema) {
			s.Tables[0].Columns = append(s.Tables[0].Columns, &Column{Name: "pay", Type: ColInt})
		},
		"bad type":   func(s *Schema) { s.Tables[0].Columns[0].Type = 'X' },
		"empty col":  func(s *Schema) { s.Tables[0].Columns[0].Name = "" },
		"empty name": func(s *Schema) { s.Tables[0].Name = "" },
	}
	for name, f := range mutate {
		s := sample()
		f(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDDLOutput(t *testing.T) {
	ddl := sample().DDL()
	for _, want := range []string{
		"CREATE TABLE emp",
		"ename CHAR(20) NOT NULL UNIQUE",
		"pay INTEGER",
		"rate FLOAT",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
}

func TestColTypeStrings(t *testing.T) {
	if ColInt.String() != "INTEGER" || ColFloat.String() != "FLOAT" || ColString.String() != "CHAR" {
		t.Error("ColType.String wrong")
	}
	if sample().String() != "relational schema shop: 1 tables" {
		t.Errorf("String = %q", sample().String())
	}
}
