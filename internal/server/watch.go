package server

import (
	"fmt"

	"mlds/internal/cdc"
	"mlds/internal/wire"
)

// Server-push plumbing for WATCH over the network. A WATCH statement
// executes like any other (the core layer opens the watcher); the session
// worker then registers the watcher on the connection and replies with a
// connection-unique watch id. A pusher goroutine per watch drains the
// watcher's channel into MsgEvent frames, batching whatever is ready so a
// fast stream amortizes framing. The pusher blocking on the connection is
// the flow-control path: the watcher's channel fills, its tailer stalls,
// the commit subscription overflows, and the tailer later resynchronizes
// from the journal — end-to-end losslessness without unbounded buffering.
//
// Watches ride the connection, not the drain state: draining refuses new
// WATCH statements (they are implicit statements) but established pushers
// keep delivering until the client or the connection goes away.

// maxEventBatch bounds how many changes one MsgEvent frame carries.
const maxEventBatch = 64

// srvWatch is one live watch on a connection.
type srvWatch struct {
	id  uint64
	sid uint32
	w   *cdc.Watcher
}

// addWatch registers a watcher under a fresh id, enforcing the
// per-connection cap. The caller starts the pusher after replying, so the
// client learns the watch id before the first push can arrive.
func (c *srvConn) addWatch(sid uint32, w *cdc.Watcher) (*srvWatch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.watches) >= c.srv.cfg.MaxWatchesPerConn {
		return nil, false
	}
	c.watchSeq++
	sw := &srvWatch{id: c.watchSeq, sid: sid, w: w}
	c.watches[sw.id] = sw
	return sw, true
}

// removeWatch forgets a watch id; it reports whether it was still known.
func (c *srvConn) removeWatch(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.watches[id]; !ok {
		return false
	}
	delete(c.watches, id)
	return true
}

// watchClose handles a client's MsgWatchClose: acknowledge, then tear the
// watch down off the reader loop (Close waits for the pusher's drain, so it
// must not run on the reader).
func (c *srvConn) watchClose(m *wire.Msg) {
	c.mu.Lock()
	sw := c.watches[m.Watch]
	delete(c.watches, m.Watch)
	c.mu.Unlock()
	if sw == nil {
		c.send(refusal(m, wire.CodeNoWatch, fmt.Sprintf("server: no watch %d", m.Watch)))
		return
	}
	c.send(&wire.Msg{Kind: wire.MsgReply, SID: m.SID, Seq: m.Seq})
	sw.closeAsync(c)
}

// closeSessionWatches tears down every watch a session owns; the session
// worker runs it on the way out so a closed session never leaks pushers.
func (c *srvConn) closeSessionWatches(sid uint32) {
	c.mu.Lock()
	var owned []*srvWatch
	for _, sw := range c.watches {
		if sw.sid == sid {
			owned = append(owned, sw)
		}
	}
	for _, sw := range owned {
		delete(c.watches, sw.id)
	}
	c.mu.Unlock()
	for _, sw := range owned {
		sw.w.Close()
	}
}

// push drains the watcher into MsgEvent frames until its channel closes,
// then announces the end with a server→client MsgWatchClose carrying why.
func (c *srvConn) push(sw *srvWatch) {
	defer c.pushWG.Done()
	for change := range sw.w.C {
		batch := []wire.Event{cdc.EventFromChange(change)}
		for len(batch) < maxEventBatch {
			select {
			case more, ok := <-sw.w.C:
				if !ok {
					c.send(&wire.Msg{Kind: wire.MsgEvent, SID: sw.sid, Watch: sw.id, Events: batch})
					c.endWatch(sw)
					return
				}
				batch = append(batch, cdc.EventFromChange(more))
			default:
				goto flush
			}
		}
	flush:
		c.send(&wire.Msg{Kind: wire.MsgEvent, SID: sw.sid, Watch: sw.id, Events: batch})
	}
	c.endWatch(sw)
}

// endWatch sends the terminal server→client MsgWatchClose for a watch whose
// channel closed, with the watcher's error (CodeOK for a clean close).
func (c *srvConn) endWatch(sw *srvWatch) {
	c.removeWatch(sw.id)
	m := &wire.Msg{Kind: wire.MsgWatchClose, SID: sw.sid, Watch: sw.id}
	if err := sw.w.Err(); err != nil {
		m.Code = wire.CodeInternal
		m.Err = err.Error()
	}
	c.send(m)
}

// closeAsync tears one watch down off the reader loop: Close blocks until
// the watcher's goroutines drain, so it must not run on the reader.
func (sw *srvWatch) closeAsync(c *srvConn) {
	c.pushWG.Add(1)
	go func() {
		defer c.pushWG.Done()
		sw.w.Close()
	}()
}
