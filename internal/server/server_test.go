package server_test

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mlds/client"
	"mlds/internal/core"
	"mlds/internal/mbds"
	"mlds/internal/server"
	"mlds/internal/txn"
	"mlds/internal/univ"
	"mlds/internal/wire"
)

// testSystem builds a system with one database per model, lightly seeded, so
// every language interface can be driven over the wire.
func testSystem(t *testing.T) *core.System {
	t.Helper()
	sys := core.NewSystem(core.Config{Kernel: mbds.DefaultConfig(2)})
	t.Cleanup(sys.Close)
	if _, err := sys.CreateFunctional("university", univ.SchemaDDL); err != nil {
		t.Fatal(err)
	}
	dap, err := sys.Open("university", "daplex")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dap.Execute("CREATE department (dname := 'History', building := 'Hall H');"); err != nil {
		t.Fatal(err)
	}
	_ = dap.Close()
	if _, err := sys.CreateRelational("shop",
		"CREATE TABLE emp (ename CHAR(20) NOT NULL, pay INTEGER);"); err != nil {
		t.Fatal(err)
	}
	sq, err := sys.Open("shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sq.Execute("INSERT INTO emp (ename, pay) VALUES ('Ann', 900)"); err != nil {
		t.Fatal(err)
	}
	_ = sq.Close()
	if _, err := sys.CreateHierarchical("school",
		"DBD NAME IS school\nSEGMENT NAME IS dept\n    FIELD dname CHAR 20\n"); err != nil {
		t.Fatal(err)
	}
	dl, err := sys.Open("school", "dli")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dl.Execute("ISRT dept (dname = 'CS')"); err != nil {
		t.Fatal(err)
	}
	_ = dl.Close()
	return sys
}

func startServer(t *testing.T, sys *core.System, cfg server.Config) *server.Server {
	t.Helper()
	srv, err := server.Listen("127.0.0.1:0", sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func dial(t *testing.T, srv *server.Server, opts ...client.Option) *client.Client {
	t.Helper()
	c, err := client.Dial(context.Background(), srv.Addr(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestFiveLanguagesOverWire(t *testing.T) {
	srv := startServer(t, testSystem(t), server.Config{})
	c := dial(t, srv)
	ctx := context.Background()

	dbs, err := c.Databases(ctx)
	if err != nil || len(dbs) != 3 {
		t.Fatalf("Databases() = %v, %v", dbs, err)
	}
	cases := []struct {
		db, lang, stmt, want string
	}{
		{"university", "daplex", "FOR EACH department PRINT dname;", "History"},
		{"university", "dml", "MOVE 'History' TO dname IN department", "MOVE"},
		{"shop", "sql", "SELECT COUNT(*) FROM emp", "1"},
		{"school", "dli", "GU dept (dname = 'CS')", "CS"},
		{"university", "abdl", "RETRIEVE ((FILE = department)) (dname)", "History"},
	}
	for _, tc := range cases {
		sess, err := c.Open(ctx, tc.db, tc.lang)
		if err != nil {
			t.Fatalf("Open(%s, %s): %v", tc.db, tc.lang, err)
		}
		out, err := sess.Execute(tc.stmt)
		if err != nil {
			t.Fatalf("%s %q: %v", tc.lang, tc.stmt, err)
		}
		if out.Code != wire.CodeOK || !strings.Contains(out.Rendered, tc.want) {
			t.Errorf("%s: code %s, rendered %q (want %q)", tc.lang, out.Code, out.Rendered, tc.want)
		}
		if err := sess.Close(); err != nil {
			t.Errorf("close %s: %v", tc.lang, err)
		}
	}
	if got := srv.Sessions(); got != 0 {
		t.Errorf("sessions after closes = %d", got)
	}
}

// TestMultiplexedSessionsRace interleaves many concurrent sessions on a few
// connections, some in explicit transactions, under the race detector.
func TestMultiplexedSessionsRace(t *testing.T) {
	srv := startServer(t, testSystem(t), server.Config{})
	const conns, perConn = 4, 16
	var wg sync.WaitGroup
	errCh := make(chan error, conns*perConn)
	for i := 0; i < conns; i++ {
		c := dial(t, srv)
		for j := 0; j < perConn; j++ {
			wg.Add(1)
			go func(c *client.Client, j int) {
				defer wg.Done()
				ctx := context.Background()
				sess, err := c.Open(ctx, "university", "daplex")
				if err != nil {
					errCh <- err
					return
				}
				defer sess.Close()
				if j%3 == 0 {
					if err := sess.BeginSnapshot(); err != nil {
						errCh <- err
						return
					}
				}
				for k := 0; k < 5; k++ {
					if _, err := sess.ExecuteCtx(ctx, "FOR EACH department PRINT dname;"); err != nil {
						errCh <- err
						return
					}
				}
				if j%3 == 0 {
					if err := sess.Commit(); err != nil {
						errCh <- err
					}
				}
			}(c, j)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("session failed: %v", err)
	}
}

func TestSessionLimits(t *testing.T) {
	srv := startServer(t, testSystem(t), server.Config{MaxSessions: 2})
	c := dial(t, srv)
	ctx := context.Background()
	s1, err := c.Open(ctx, "university", "daplex")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(ctx, "shop", "sql"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Open(ctx, "school", "dli")
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Code != wire.CodeSessionLimit {
		t.Fatalf("third open: %v, want session-limit", err)
	}
	if !ce.Retryable() || !ce.NotExecuted() {
		t.Error("session-limit refusal must be retryable and not-executed")
	}
	// Closing a session frees the slot.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(ctx, "school", "dli"); err != nil {
		t.Fatalf("open after close: %v", err)
	}
}

func TestPerDBSessionLimit(t *testing.T) {
	srv := startServer(t, testSystem(t), server.Config{MaxSessionsPerDB: 1})
	c := dial(t, srv)
	ctx := context.Background()
	if _, err := c.Open(ctx, "university", "daplex"); err != nil {
		t.Fatal(err)
	}
	var ce *client.Error
	if _, err := c.Open(ctx, "university", "abdl"); !errors.As(err, &ce) || ce.Code != wire.CodeSessionLimit {
		t.Fatalf("second university session: %v, want session-limit", err)
	}
	if _, err := c.Open(ctx, "shop", "sql"); err != nil {
		t.Fatalf("other database must still admit: %v", err)
	}
}

func TestRateLimit(t *testing.T) {
	srv := startServer(t, testSystem(t), server.Config{RateLimit: 0.001, RateBurst: 2})
	c := dial(t, srv)
	ctx := context.Background()
	sess, err := c.Open(ctx, "university", "daplex")
	if err != nil {
		t.Fatal(err)
	}
	var limited bool
	for i := 0; i < 4; i++ {
		_, err := sess.ExecuteCtx(ctx, "FOR EACH department PRINT dname;")
		var ce *client.Error
		if errors.As(err, &ce) && ce.Code == wire.CodeRateLimited {
			limited = true
			if !ce.Retryable() || !ce.NotExecuted() {
				t.Error("rate-limit refusal must be retryable and not-executed")
			}
		} else if err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
	}
	if !limited {
		t.Error("burst of 2 tokens admitted 4 statements")
	}
}

// TestBackpressure fills a depth-1 session queue behind a lock wait and
// checks overflow statements are refused with the typed code, not queued
// without bound.
func TestBackpressure(t *testing.T) {
	sys := testSystem(t)
	srv := startServer(t, sys, server.Config{SessionQueue: 1})
	c := dial(t, srv)
	ctx := context.Background()

	// A local session takes the emp file lock inside an explicit txn, so the
	// remote session's worker blocks on its first write.
	holder, err := sys.Open("shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if err := holder.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := holder.Execute("UPDATE emp SET pay = 1 WHERE ename = 'Ann'"); err != nil {
		t.Fatal(err)
	}

	sess, err := c.Open(ctx, "shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	// Five concurrent writes: one executes (blocked on the lock), one sits
	// in the queue, and the rest must be refused immediately.
	const writes = 5
	done := make(chan error, writes)
	for i := 0; i < writes; i++ {
		go func() {
			_, err := sess.ExecuteCtx(ctx, "UPDATE emp SET pay = 2 WHERE ename = 'Ann'")
			done <- err
		}()
	}
	// Give the server time to admit or refuse all five, then release the
	// lock so the admitted writes finish quickly.
	time.Sleep(300 * time.Millisecond)
	if err := holder.Rollback(); err != nil {
		t.Fatal(err)
	}
	var refused int
	for i := 0; i < writes; i++ {
		err := <-done
		var ce *client.Error
		switch {
		case err == nil:
		case errors.As(err, &ce) && ce.Code == wire.CodeBackpressure:
			refused++
			if !ce.Retryable() || !ce.NotExecuted() {
				t.Error("backpressure refusal must be retryable and not-executed")
			}
		default:
			t.Errorf("write error: %v", err)
		}
	}
	if refused == 0 {
		t.Error("depth-1 queue admitted five concurrent writes with the lock held")
	}
}

// TestDrainGraceful: a draining server refuses new opens and implicit
// statements with the typed code, but lets an open explicit transaction run
// to commit.
func TestDrainGraceful(t *testing.T) {
	srv := startServer(t, testSystem(t), server.Config{})
	c := dial(t, srv)
	ctx := context.Background()
	inTxn, err := c.Open(ctx, "shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	implicit, err := c.Open(ctx, "university", "daplex")
	if err != nil {
		t.Fatal(err)
	}
	if err := inTxn.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := inTxn.ExecuteCtx(ctx, "UPDATE emp SET pay = 7 WHERE ename = 'Ann'"); err != nil {
		t.Fatal(err)
	}

	srv.Drain()
	if srv.Healthy() {
		t.Error("draining server must report unhealthy")
	}
	var ce *client.Error
	if _, err := c.Open(ctx, "university", "abdl"); !errors.As(err, &ce) || ce.Code != wire.CodeDraining {
		t.Fatalf("open while draining: %v", err)
	}
	if _, err := implicit.ExecuteCtx(ctx, "FOR EACH department PRINT dname;"); !errors.As(err, &ce) || ce.Code != wire.CodeDraining {
		t.Fatalf("implicit statement while draining: %v", err)
	}
	if !ce.Retryable() || !ce.NotExecuted() {
		t.Error("draining refusal must be retryable and not-executed")
	}
	if !c.Draining() {
		t.Error("client must observe the draining flag")
	}
	// The open transaction finishes its work and commits.
	if _, err := inTxn.ExecuteCtx(ctx, "SELECT pay FROM emp WHERE ename = 'Ann'"); err != nil {
		t.Fatalf("in-txn statement while draining: %v", err)
	}
	if err := inTxn.Commit(); err != nil {
		t.Fatalf("commit while draining: %v", err)
	}
}

// TestConnKillMidTransaction kills the client connection while its session
// holds write locks in an explicit transaction, and checks the server rolls
// the transaction back so the locks are released.
func TestConnKillMidTransaction(t *testing.T) {
	sys := testSystem(t)
	srv := startServer(t, sys, server.Config{})
	c := dial(t, srv)
	ctx := context.Background()
	sess, err := c.Open(ctx, "shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecuteCtx(ctx, "UPDATE emp SET pay = 13 WHERE ename = 'Ann'"); err != nil {
		t.Fatal(err)
	}
	_ = c.Close() // abrupt: no MsgClose, no COMMIT

	deadline := time.After(5 * time.Second)
	for srv.Sessions() != 0 {
		select {
		case <-deadline:
			t.Fatal("server did not reap sessions after connection death")
		case <-time.After(time.Millisecond):
		}
	}
	// The emp file lock must be free again: a local update succeeds, and the
	// uncommitted pay=13 was rolled back.
	local, err := sys.Open("shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	out, err := local.Execute("SELECT pay FROM emp WHERE ename = 'Ann'")
	if err != nil {
		t.Fatalf("statement after conn kill: %v", err)
	}
	if !strings.Contains(out.Rendered, "900") {
		t.Errorf("uncommitted update survived the kill: %q", out.Rendered)
	}
}

// TestDeadlockOverWire stages a real S→X upgrade deadlock between two
// remote sessions and checks the victim's error reconstructs as the same
// *txn.AbortedError wrapping txn.ErrDeadlock a local caller would see.
func TestDeadlockOverWire(t *testing.T) {
	sys := testSystem(t)
	if _, err := sys.CreateRelational("bank", "CREATE TABLE dl (v INTEGER);"); err != nil {
		t.Fatal(err)
	}
	db, _ := sys.Database("bank")
	if _, err := db.ExecABDL("INSERT (<FILE, dl>, <v, 0>)"); err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, sys, server.Config{})
	ctx := context.Background()
	a := mustOpen(t, dial(t, srv), "bank", "abdl")
	b := mustOpen(t, dial(t, srv), "bank", "abdl")

	// Both read under S inside explicit transactions, then both try the X
	// upgrade: each waits on the other's read lock until the manager picks
	// a victim.
	for _, sess := range []*client.Session{a, b} {
		if err := sess.Begin(); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.ExecuteCtx(ctx, "RETRIEVE ((FILE = dl)) (v)"); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, 2)
	for _, sess := range []*client.Session{a, b} {
		go func(sess *client.Session) {
			_, err := sess.ExecuteCtx(ctx, "UPDATE ((FILE = dl)) (v = 1)")
			if err == nil {
				err = sess.Commit()
			}
			errs <- err
		}(sess)
	}
	e1, e2 := <-errs, <-errs
	verr := e1
	if verr == nil {
		verr = e2
	}
	if (e1 == nil) == (e2 == nil) {
		t.Fatalf("want exactly one deadlock victim, got errors %v / %v", e1, e2)
	}
	if !errors.Is(verr, txn.ErrDeadlock) {
		t.Fatalf("victim error = %v, want ErrDeadlock", verr)
	}
	var ae *txn.AbortedError
	if !errors.As(verr, &ae) || ae.ID == 0 {
		t.Fatalf("victim error %v does not carry the aborted transaction id", verr)
	}
	// Neither remote session is left in a transaction.
	if a.InTxn() && b.InTxn() {
		t.Error("both sessions still report an open transaction")
	}
}

func mustOpen(t *testing.T, c *client.Client, db, lang string) *client.Session {
	t.Helper()
	sess, err := c.Open(context.Background(), db, lang)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestMetricsAndHealthEndpoints(t *testing.T) {
	srv := startServer(t, testSystem(t), server.Config{})
	c := dial(t, srv)
	sess, err := c.Open(context.Background(), "university", "daplex")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("FOR EACH department PRINT dname;"); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "mlds_server_sessions") ||
		!strings.Contains(body, "mlds_server_requests_total") {
		t.Errorf("/metrics = %d:\n%.400s", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz = %d, want 200", code)
	}
	srv.Drain()
	if code, _ := get("/healthz"); code == 200 {
		t.Errorf("/healthz after drain = %d, want non-200", code)
	}
}

func TestProtocolErrors(t *testing.T) {
	srv := startServer(t, testSystem(t), server.Config{})
	c := dial(t, srv)
	ctx := context.Background()
	var ce *client.Error
	// Exec on a session that was never opened.
	if _, err := c.Open(ctx, "nope", "sql"); !errors.Is(err, core.ErrNoDatabase) {
		t.Errorf("missing database: %v", err)
	}
	if _, err := c.Open(ctx, "university", "sql"); !errors.Is(err, core.ErrWrongModel) {
		t.Errorf("wrong model: %v", err)
	}
	if _, err := c.Open(ctx, "university", "cobol"); !errors.Is(err, core.ErrUnknownLanguage) {
		t.Errorf("unknown language: %v", err)
	}
	sess, err := c.Open(ctx, "university", "daplex")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecuteCtx(ctx, "NOT DAPLEX AT ALL"); !errors.As(err, &ce) || ce.Code != wire.CodeParse {
		t.Errorf("parse failure: %v", err)
	}
	if err := sess.Commit(); !errors.Is(err, core.ErrNoTxn) {
		t.Errorf("commit without txn: %v", err)
	}
	// Read-only violation reconstructs the txn sentinel.
	if err := sess.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecuteCtx(ctx, `CREATE department (dname := "X");`); !errors.Is(err, txn.ErrReadOnly) {
		t.Errorf("read-only violation: %v", err)
	}
	if err := sess.Rollback(); err != nil {
		t.Fatal(err)
	}
}
