// Package server is the MLDS front end of the serving tier: it exposes every
// language interface of a core.System over TCP using the framing-v2 client
// protocol (internal/wire), the network analogue of the paper's host-machine
// front end through which all users reach MBDS.
//
// One TCP connection multiplexes many sessions. Every message carries a
// client-chosen session id (SID); requests for different sessions execute
// concurrently and their replies interleave on the stream in completion
// order, matched back by Seq. Within one session, statements execute in
// arrival order through a small buffered queue — the admission point:
//
//   - a full session queue refuses the statement with CodeBackpressure;
//   - a session over its statement rate gets CodeRateLimited;
//   - opens beyond the global, per-connection or per-database session caps
//     get CodeSessionLimit;
//   - a draining server refuses new opens and new implicit statements with
//     CodeDraining, while sessions inside an explicit transaction may keep
//     executing until they commit or roll back.
//
// All four refusals are typed wire codes that promise the statement was
// never executed, so clients retry or back off without guessing. Server
// sessions are ordinary core.Sessions: transactions, snapshot reads and the
// Outcome envelope behave exactly as they do in process.
package server

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"mlds/internal/core"
	"mlds/internal/obs"
	"mlds/internal/txn"
	"mlds/internal/wire"
)

// Config tunes the serving tier. Zero values mean the stated defaults.
type Config struct {
	// MaxSessions caps live sessions across all connections (0 = 4096).
	MaxSessions int
	// MaxSessionsPerConn caps live sessions on one connection (0 = 1024).
	MaxSessionsPerConn int
	// MaxSessionsPerDB caps live sessions per database (0 = no cap).
	MaxSessionsPerDB int
	// SessionQueue is the per-session request queue depth; a statement
	// arriving on a full queue is refused with CodeBackpressure (0 = 32).
	SessionQueue int
	// RateLimit caps one session's statement admission rate per second,
	// refilling a token bucket of RateBurst capacity (0 = no limit).
	RateLimit float64
	// RateBurst is the token-bucket burst size for RateLimit (0 = 16).
	RateBurst int
	// MaxFrame caps inbound frame size in bytes (0 = wire.DefaultMaxFrame).
	MaxFrame int
	// MaxWatchesPerConn caps live watches on one connection; a WATCH beyond
	// it is refused with CodeWatchLimit (0 = 64).
	MaxWatchesPerConn int
	// WatchQueue is the per-watch server-side event buffer. A client that
	// stops reading fills it, which blocks that watch's tailer and lets its
	// commit subscription overflow — the tailer then resynchronizes from the
	// journal, so slow watch consumers cost resyncs, never lost changes or
	// unbounded memory (0 = 256).
	WatchQueue int
	// Metrics receives the server counters; nil uses the system's registry.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 4096
	}
	if c.MaxSessionsPerConn == 0 {
		c.MaxSessionsPerConn = 1024
	}
	if c.SessionQueue == 0 {
		c.SessionQueue = 32
	}
	if c.RateBurst == 0 {
		c.RateBurst = 16
	}
	if c.MaxWatchesPerConn == 0 {
		c.MaxWatchesPerConn = 64
	}
	if c.WatchQueue == 0 {
		c.WatchQueue = 256
	}
	return c
}

// Server serves one core.System to remote clients.
type Server struct {
	sys *core.System
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	closed   bool
	conns    map[*srvConn]bool
	perDB    map[string]int // live sessions per database
	sessions int            // live sessions, total
	draining atomic.Bool
	wg       sync.WaitGroup

	reg                                *obs.Registry
	mConns, mSessions                  *obs.Gauge
	mRequests, mRefused, mSessionTotal *obs.Counter
	mLatency                           *obs.Histogram
}

// Serve starts serving the system on the listener; it returns immediately.
func Serve(ln net.Listener, sys *core.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = sys.Metrics()
	}
	s := &Server{
		sys:   sys,
		cfg:   cfg,
		ln:    ln,
		conns: make(map[*srvConn]bool),
		perDB: make(map[string]int),
		reg:   reg,
	}
	s.mConns = reg.Gauge("mlds_server_conns", "live client connections")
	s.mSessions = reg.Gauge("mlds_server_sessions", "live remote sessions")
	s.mRequests = reg.Counter("mlds_server_requests_total", "client messages served")
	s.mRefused = reg.Counter("mlds_server_refused_total",
		"requests refused by admission control (backpressure, rate, caps, drain)")
	s.mSessionTotal = reg.Counter("mlds_server_sessions_total", "remote sessions ever opened")
	s.mLatency = reg.Histogram("mlds_server_request_seconds",
		"statement latency as measured at the serving tier", nil)
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Listen starts a server on the TCP address (":0" for an ephemeral port).
func Listen(addr string, sys *core.System, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, sys, cfg), nil
}

// Addr reports the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Drain starts a graceful shutdown: new session opens and new implicit
// statements are refused with CodeDraining (replies carry DrainingFlag so
// clients redial), while sessions holding an explicit transaction may keep
// executing statements until they commit or roll back. Connections stay up;
// Close completes the shutdown.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether the server is refusing new work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Healthy reports liveness for /healthz: serving and not draining.
func (s *Server) Healthy() bool {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	return !closed && !s.draining.Load()
}

// Handler returns the observability endpoints (/metrics, /healthz) for the
// server's registry and health.
func (s *Server) Handler() http.Handler { return obs.Handler(s.reg, s.Healthy) }

// Sessions reports the number of live remote sessions.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions
}

// Close stops accepting, tears down every connection (closing its sessions,
// which rolls back their open transactions) and waits for the workers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = nc.Close()
			return
		}
		c := newSrvConn(s, nc)
		s.conns[c] = true
		s.mu.Unlock()
		s.mConns.Inc()
		s.wg.Add(1)
		go c.serve()
	}
}

// admitSession reserves a session slot against the global, per-connection
// and per-database caps; it returns false with no reservation if any cap is
// exceeded. releaseSession returns the slot.
func (s *Server) admitSession(connSessions int, db string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sessions >= s.cfg.MaxSessions {
		return false
	}
	if connSessions >= s.cfg.MaxSessionsPerConn {
		return false
	}
	if s.cfg.MaxSessionsPerDB > 0 && s.perDB[db] >= s.cfg.MaxSessionsPerDB {
		return false
	}
	s.sessions++
	s.perDB[db]++
	return true
}

func (s *Server) releaseSession(db string) {
	s.mu.Lock()
	s.sessions--
	if s.perDB[db] <= 1 {
		delete(s.perDB, db)
	} else {
		s.perDB[db]--
	}
	s.mu.Unlock()
	s.mSessions.Dec()
}

func (s *Server) dropConn(c *srvConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.mConns.Dec()
}

// refusal builds the typed reply for an admission refusal.
func refusal(m *wire.Msg, code wire.Code, text string) *wire.Msg {
	return &wire.Msg{Kind: wire.MsgReply, SID: m.SID, Seq: m.Seq, Code: code, Err: text}
}

// execReply renders one executed statement's outcome as a reply message.
func execReply(m *wire.Msg, out *core.Outcome, err error, inTxn bool) *wire.Msg {
	reply := &wire.Msg{Kind: wire.MsgReply, SID: m.SID, Seq: m.Seq}
	if out != nil {
		reply.Code = out.Code
		reply.Language = out.Language
		reply.Rendered = out.Rendered
		reply.WallUS = uint64(out.Wall.Microseconds())
		reply.SimUS = uint64(out.Sim.Microseconds())
	}
	if err != nil {
		reply.Err = err.Error()
		if reply.Code == wire.CodeOK {
			reply.Code = core.CodeOf(err)
		}
		var ae *txn.AbortedError
		if errors.As(err, &ae) {
			reply.Txn = ae.ID
		}
	}
	if inTxn {
		reply.Flags |= wire.InTxnFlag
	}
	return reply
}

var errUnknownKind = fmt.Errorf("server: unknown message kind")
