package server

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"mlds/internal/core"
	"mlds/internal/wire"
)

// srvConn is one client connection: a reader loop that dispatches messages,
// a write mutex that serializes interleaved replies from the session
// workers, and the connection's live sessions.
type srvConn struct {
	srv *Server
	c   net.Conn
	br  *bufio.Reader

	wmu sync.Mutex // guards bw across session workers
	bw  *bufio.Writer

	mu       sync.Mutex
	sessions map[uint32]*session
	watches  map[uint64]*srvWatch // live watches, keyed by conn-unique id
	watchSeq uint64
	sessWG   sync.WaitGroup
	pushWG   sync.WaitGroup // watch pushers and async watch teardowns
}

func newSrvConn(s *Server, nc net.Conn) *srvConn {
	return &srvConn{
		srv:      s,
		c:        nc,
		br:       bufio.NewReader(nc),
		bw:       bufio.NewWriter(nc),
		sessions: make(map[uint32]*session),
		watches:  make(map[uint64]*srvWatch),
	}
}

// send writes one framed reply, stamping the draining flag on every reply
// while the server drains so clients learn to redial no matter which message
// they were waiting on. Replies from concurrent session workers interleave
// here in completion order; Seq matches them back to requests.
func (c *srvConn) send(m *wire.Msg) {
	m.Flags |= c.drainFlag()
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := wire.WriteMsg(c.bw, m); err != nil {
		return
	}
	_ = c.bw.Flush()
}

func (c *srvConn) serve() {
	defer c.srv.wg.Done()
	defer c.teardown()
	for {
		m, err := wire.ReadMsg(c.br, c.srv.cfg.MaxFrame)
		if err != nil {
			return
		}
		c.srv.mRequests.Inc()
		switch m.Kind {
		case wire.MsgHello:
			c.send(&wire.Msg{Kind: wire.MsgHello, Seq: m.Seq})
		case wire.MsgPing:
			c.send(&wire.Msg{Kind: wire.MsgReply, Seq: m.Seq})
		case wire.MsgListDBs:
			reply := &wire.Msg{Kind: wire.MsgReply, Seq: m.Seq}
			for _, db := range c.srv.sys.Databases() {
				reply.DBs = append(reply.DBs, wire.DBInfo{
					Name: db.Name, Model: db.Model.String(),
					Backends: db.Backends, Records: db.Records,
				})
			}
			c.send(reply)
		case wire.MsgOpen:
			c.open(m)
		case wire.MsgExec:
			c.exec(m)
		case wire.MsgClose:
			c.closeSession(m)
		case wire.MsgWatchClose:
			c.watchClose(m)
		default:
			c.send(refusal(m, wire.CodeProto, fmt.Sprintf("%v %d", errUnknownKind, m.Kind)))
		}
	}
}

func (c *srvConn) drainFlag() uint32 {
	if c.srv.draining.Load() {
		return wire.DrainingFlag
	}
	return 0
}

func (c *srvConn) open(m *wire.Msg) {
	if c.srv.draining.Load() {
		c.srv.mRefused.Inc()
		c.send(refusal(m, wire.CodeDraining, "server draining; redial"))
		return
	}
	c.mu.Lock()
	if _, dup := c.sessions[m.SID]; dup {
		c.mu.Unlock()
		c.send(refusal(m, wire.CodeProto, fmt.Sprintf("server: session %d already open", m.SID)))
		return
	}
	n := len(c.sessions)
	c.mu.Unlock()
	if !c.srv.admitSession(n, m.DB) {
		c.srv.mRefused.Inc()
		c.send(refusal(m, wire.CodeSessionLimit, "server: session limit reached"))
		return
	}
	var opts []core.SessionOption
	if m.Flags&wire.SnapFlag != 0 {
		opts = append(opts, core.SnapshotSession())
	}
	cs, err := c.srv.sys.Open(m.DB, m.Language, opts...)
	if err != nil {
		c.srv.releaseSession(m.DB)
		c.send(refusal(m, core.CodeOf(err), err.Error()))
		return
	}
	sess := &session{
		conn:   c,
		sid:    m.SID,
		db:     m.DB,
		sess:   cs,
		queue:  make(chan *wire.Msg, c.srv.cfg.SessionQueue),
		kill:   make(chan struct{}),
		tokens: float64(c.srv.cfg.RateBurst),
		last:   time.Now(),
	}
	c.mu.Lock()
	c.sessions[m.SID] = sess
	c.mu.Unlock()
	c.srv.mSessions.Inc()
	c.srv.mSessionTotal.Inc()
	c.sessWG.Add(1)
	go sess.worker()
	c.send(&wire.Msg{Kind: wire.MsgReply, SID: m.SID, Seq: m.Seq,
		Language: cs.Language()})
}

func (c *srvConn) lookup(sid uint32) *session {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessions[sid]
}

func (c *srvConn) exec(m *wire.Msg) {
	sess := c.lookup(m.SID)
	if sess == nil {
		c.send(refusal(m, wire.CodeNoSession, fmt.Sprintf("server: no session %d", m.SID)))
		return
	}
	// Draining: implicit statements are refused so the server quiesces, but
	// a session inside an explicit transaction keeps going — aborting it
	// here would waste its finished work when a clean COMMIT is imminent.
	if c.srv.draining.Load() && !sess.sess.InTxn() {
		c.srv.mRefused.Inc()
		c.send(refusal(m, wire.CodeDraining, "server draining; statement not executed"))
		return
	}
	if !sess.admit() {
		c.srv.mRefused.Inc()
		c.send(refusal(m, wire.CodeRateLimited, "server: session statement rate exceeded"))
		return
	}
	select {
	case sess.queue <- m:
	default:
		c.srv.mRefused.Inc()
		c.send(refusal(m, wire.CodeBackpressure, "server: session queue full"))
	}
}

func (c *srvConn) closeSession(m *wire.Msg) {
	sess := c.lookup(m.SID)
	if sess == nil {
		c.send(refusal(m, wire.CodeNoSession, fmt.Sprintf("server: no session %d", m.SID)))
		return
	}
	// The close rides the session queue, so every statement already admitted
	// gets its reply first; the worker answers the close and exits.
	select {
	case sess.queue <- m:
	case <-sess.kill:
	}
}

// teardown runs when the connection dies for any reason: every session is
// killed, and each worker rolls back its open transaction on the way out so
// a mid-transaction disconnect cannot strand locks.
func (c *srvConn) teardown() {
	c.mu.Lock()
	sessions := make([]*session, 0, len(c.sessions))
	for _, s := range c.sessions {
		sessions = append(sessions, s)
	}
	c.sessions = make(map[uint32]*session)
	c.mu.Unlock()
	for _, s := range sessions {
		s.killOnce.Do(func() { close(s.kill) })
	}
	c.sessWG.Wait()
	// Workers closed their sessions' watches; sweep any stragglers (a watch
	// whose MsgWatchClose teardown is still in flight) and wait the pushers.
	c.mu.Lock()
	var left []*srvWatch
	for _, sw := range c.watches {
		left = append(left, sw)
	}
	c.watches = make(map[uint64]*srvWatch)
	c.mu.Unlock()
	for _, sw := range left {
		sw.w.Close()
	}
	c.pushWG.Wait()
	_ = c.c.Close()
	c.srv.dropConn(c)
}

// remove unregisters a session after its worker exits via MsgClose.
func (c *srvConn) remove(sid uint32) {
	c.mu.Lock()
	delete(c.sessions, sid)
	c.mu.Unlock()
}

// session is one remote session: a core.Session plus the per-session
// admission state and the worker that executes its statements in order.
type session struct {
	conn *srvConn
	sid  uint32
	db   string
	sess core.Session

	queue    chan *wire.Msg
	kill     chan struct{}
	killOnce sync.Once

	// Token bucket for Config.RateLimit, touched only by the reader loop.
	tmu    sync.Mutex
	tokens float64
	last   time.Time
}

// admit takes one rate token, refilling the bucket at Config.RateLimit
// tokens per second up to Config.RateBurst.
func (s *session) admit() bool {
	limit := s.conn.srv.cfg.RateLimit
	if limit <= 0 {
		return true
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	now := time.Now()
	s.tokens += now.Sub(s.last).Seconds() * limit
	s.last = now
	if burst := float64(s.conn.srv.cfg.RateBurst); s.tokens > burst {
		s.tokens = burst
	}
	if s.tokens < 1 {
		return false
	}
	s.tokens--
	return true
}

// worker executes the session's statements in arrival order. It exits on
// MsgClose (after replying) or when the connection kills the session; both
// paths close the core session, rolling back any open transaction.
func (s *session) worker() {
	defer s.conn.sessWG.Done()
	defer func() {
		s.conn.closeSessionWatches(s.sid)
		_ = s.sess.Close()
		s.conn.srv.releaseSession(s.db)
	}()
	for {
		select {
		case <-s.kill:
			return
		case m := <-s.queue:
			if m.Kind == wire.MsgClose {
				s.conn.remove(s.sid)
				s.conn.closeSessionWatches(s.sid)
				s.conn.send(&wire.Msg{Kind: wire.MsgReply, SID: s.sid, Seq: m.Seq})
				return
			}
			start := time.Now()
			out, err := s.sess.Execute(m.Stmt)
			s.conn.srv.mLatency.Observe(time.Since(start).Seconds())
			reply := execReply(m, out, err, s.sess.InTxn())
			if err == nil && out != nil && out.Watch != nil {
				// A WATCH statement: register the watcher and reply with its
				// id BEFORE starting the pusher, so the client has the watch
				// routed when the first MsgEvent arrives.
				sw, ok := s.conn.addWatch(s.sid, out.Watch)
				if !ok {
					out.Watch.Close()
					s.conn.srv.mRefused.Inc()
					s.conn.send(refusal(m, wire.CodeWatchLimit, "server: watch limit reached"))
					continue
				}
				reply.Watch = sw.id
				s.conn.send(reply)
				s.conn.pushWG.Add(1)
				go s.conn.push(sw)
				continue
			}
			s.conn.send(reply)
		}
	}
}
