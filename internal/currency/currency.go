// Package currency implements the run-time state of a CODASYL-DML session:
// the Currency Indicator Table (CIT), the User Work Area (UWA), and the
// result buffers (RB) that hold records returned by auxiliary retrieve
// requests.
//
// A currency indicator is a database pointer identifying the current record
// of the run-unit, the current record of each record type, and the current
// record of each set type. FIND statements update the indicators; the other
// DML statements operate on whatever is current.
package currency

import (
	"fmt"
	"sort"

	"mlds/internal/abdm"
)

// Key is a logical database key: the unique key stored in a record's key
// attribute of the kernel representation. Zero is "no key".
type Key = int64

// Current is the currency indicator for the run-unit or for one record
// type: the record type plus the database key of the current record, or
// invalid when the indicator is null.
type Current struct {
	Record string
	Key    Key
	Valid  bool
}

// SetCurrent is the currency indicator for one set type: the owner of the
// current set occurrence and the current member position within it.
type SetCurrent struct {
	Set       string
	OwnerRec  string // owner record type
	OwnerKey  Key    // owner of the current set occurrence
	MemberRec string // member record type
	MemberKey Key    // current member record (0 = positioned before first)
	Valid     bool
}

// Buffer is one result buffer: the records an auxiliary retrieve placed
// there, with a cursor for FIRST/NEXT/PRIOR/LAST traversal.
type Buffer struct {
	Records []*abdm.Record
	Pos     int // index of current record; -1 = before first
}

// NewBuffer builds a buffer positioned before its first record.
func NewBuffer(recs []*abdm.Record) *Buffer { return &Buffer{Records: recs, Pos: -1} }

// Len reports the number of buffered records.
func (b *Buffer) Len() int { return len(b.Records) }

// Current returns the record under the cursor.
func (b *Buffer) Current() (*abdm.Record, bool) {
	if b.Pos < 0 || b.Pos >= len(b.Records) {
		return nil, false
	}
	return b.Records[b.Pos], true
}

// First positions at and returns the first record.
func (b *Buffer) First() (*abdm.Record, bool) {
	if len(b.Records) == 0 {
		return nil, false
	}
	b.Pos = 0
	return b.Records[0], true
}

// Last positions at and returns the last record.
func (b *Buffer) Last() (*abdm.Record, bool) {
	if len(b.Records) == 0 {
		return nil, false
	}
	b.Pos = len(b.Records) - 1
	return b.Records[b.Pos], true
}

// Next advances the cursor; it reports false at end-of-set without moving
// past the end more than once.
func (b *Buffer) Next() (*abdm.Record, bool) {
	if b.Pos+1 >= len(b.Records) {
		b.Pos = len(b.Records)
		return nil, false
	}
	b.Pos++
	return b.Records[b.Pos], true
}

// Prior steps the cursor back; it reports false before the first record.
func (b *Buffer) Prior() (*abdm.Record, bool) {
	if b.Pos-1 < 0 {
		b.Pos = -1
		return nil, false
	}
	b.Pos--
	return b.Records[b.Pos], true
}

// SeekKey positions the cursor on the record whose attribute attr holds the
// key, reporting whether one was found.
func (b *Buffer) SeekKey(attr string, key Key) bool {
	for i, r := range b.Records {
		if v, ok := r.Get(attr); ok && v.Kind() == abdm.KindInt && v.AsInt() == key {
			b.Pos = i
			return true
		}
	}
	return false
}

// CIT is the Currency Indicator Table of one run-unit.
type CIT struct {
	RunUnit Current
	records map[string]Current
	sets    map[string]SetCurrent
	buffers map[string]*Buffer // per set type; "" holds the run-unit buffer
}

// NewCIT returns an empty table.
func NewCIT() *CIT {
	return &CIT{
		records: make(map[string]Current),
		sets:    make(map[string]SetCurrent),
		buffers: make(map[string]*Buffer),
	}
}

// SetRunUnit makes the record with the key the current of the run-unit and
// the current of its record type.
func (c *CIT) SetRunUnit(record string, key Key) {
	cur := Current{Record: record, Key: key, Valid: true}
	c.RunUnit = cur
	c.records[record] = cur
}

// RecordCurrent returns the current of a record type.
func (c *CIT) RecordCurrent(record string) (Current, bool) {
	cur, ok := c.records[record]
	return cur, ok && cur.Valid
}

// SetSetCurrent updates a set type's currency indicator.
func (c *CIT) SetSetCurrent(sc SetCurrent) {
	sc.Valid = true
	c.sets[sc.Set] = sc
}

// SetCurrentOf returns a set type's currency indicator.
func (c *CIT) SetCurrentOf(set string) (SetCurrent, bool) {
	sc, ok := c.sets[set]
	return sc, ok && sc.Valid
}

// InvalidateKey nulls every indicator that points at the key (after ERASE).
func (c *CIT) InvalidateKey(key Key) {
	if c.RunUnit.Valid && c.RunUnit.Key == key {
		c.RunUnit.Valid = false
	}
	for r, cur := range c.records {
		if cur.Valid && cur.Key == key {
			cur.Valid = false
			c.records[r] = cur
		}
	}
	for s, sc := range c.sets {
		if sc.Valid && (sc.OwnerKey == key || sc.MemberKey == key) {
			sc.Valid = false
			c.sets[s] = sc
		}
	}
}

// InvalidateCurrent nulls the indicators that point at the record of the
// given type with the key (after an ERASE of that record). Indicators for
// other record types sharing the key — ISA supertypes of a deleted subtype —
// stay valid.
func (c *CIT) InvalidateCurrent(record string, key Key) {
	if c.RunUnit.Valid && c.RunUnit.Record == record && c.RunUnit.Key == key {
		c.RunUnit.Valid = false
	}
	if cur, ok := c.records[record]; ok && cur.Valid && cur.Key == key {
		cur.Valid = false
		c.records[record] = cur
	}
	for s, sc := range c.sets {
		if sc.Valid && ((sc.OwnerRec == record && sc.OwnerKey == key) ||
			(sc.MemberRec == record && sc.MemberKey == key)) {
			sc.Valid = false
			c.sets[s] = sc
		}
	}
}

// PutBuffer stores the result buffer for a set type ("" = run-unit buffer).
func (c *CIT) PutBuffer(set string, b *Buffer) { c.buffers[set] = b }

// BufferOf returns the result buffer of a set type.
func (c *CIT) BufferOf(set string) (*Buffer, bool) {
	b, ok := c.buffers[set]
	return b, ok
}

// String renders the table for diagnostics, sorted for stability.
func (c *CIT) String() string {
	out := "CIT{"
	if c.RunUnit.Valid {
		out += fmt.Sprintf("run-unit=%s#%d", c.RunUnit.Record, c.RunUnit.Key)
	} else {
		out += "run-unit=null"
	}
	var names []string
	for r := range c.records {
		names = append(names, r)
	}
	sort.Strings(names)
	for _, r := range names {
		if cur := c.records[r]; cur.Valid {
			out += fmt.Sprintf(" %s#%d", r, cur.Key)
		}
	}
	names = names[:0]
	for s := range c.sets {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		if sc := c.sets[s]; sc.Valid {
			out += fmt.Sprintf(" set:%s(owner=%d,member=%d)", s, sc.OwnerKey, sc.MemberKey)
		}
	}
	return out + "}"
}

// WorkArea is the User Work Area: one record template per record type,
// holding the field values MOVE statements assign and GET statements return.
type WorkArea struct {
	templates map[string]map[string]abdm.Value
}

// NewWorkArea returns an empty UWA.
func NewWorkArea() *WorkArea {
	return &WorkArea{templates: make(map[string]map[string]abdm.Value)}
}

// Set assigns record.item = value.
func (w *WorkArea) Set(record, item string, v abdm.Value) {
	t := w.templates[record]
	if t == nil {
		t = make(map[string]abdm.Value)
		w.templates[record] = t
	}
	t[item] = v
}

// Get returns record.item.
func (w *WorkArea) Get(record, item string) (abdm.Value, bool) {
	v, ok := w.templates[record][item]
	return v, ok
}

// Template returns a copy of a record type's template.
func (w *WorkArea) Template(record string) map[string]abdm.Value {
	out := make(map[string]abdm.Value, len(w.templates[record]))
	for k, v := range w.templates[record] {
		out[k] = v
	}
	return out
}

// LoadRecord copies a kernel record's keywords into the record type's
// template (what GET does).
func (w *WorkArea) LoadRecord(record string, rec *abdm.Record) {
	for _, kw := range rec.Keywords {
		if kw.Attr == abdm.FileAttr {
			continue
		}
		w.Set(record, kw.Attr, kw.Val)
	}
}

// Clear empties a record type's template.
func (w *WorkArea) Clear(record string) { delete(w.templates, record) }
