package currency

import (
	"testing"

	"mlds/internal/abdm"
)

func rec(key int64) *abdm.Record {
	return abdm.NewRecord("f", abdm.Keyword{Attr: "k", Val: abdm.Int(key)})
}

func TestBufferTraversal(t *testing.T) {
	b := NewBuffer([]*abdm.Record{rec(1), rec(2), rec(3)})
	if _, ok := b.Current(); ok {
		t.Error("fresh buffer should have no current")
	}
	r, ok := b.First()
	if !ok || mustKey(t, r) != 1 {
		t.Fatal("First failed")
	}
	if r, ok = b.Next(); !ok || mustKey(t, r) != 2 {
		t.Fatal("Next failed")
	}
	if r, ok = b.Last(); !ok || mustKey(t, r) != 3 {
		t.Fatal("Last failed")
	}
	if _, ok = b.Next(); ok {
		t.Error("Next past end should fail")
	}
	// After end-of-set, Prior returns the last record again.
	if r, ok = b.Prior(); !ok || mustKey(t, r) != 3 {
		t.Errorf("Prior after end = %v,%v", r, ok)
	}
	if r, ok = b.Prior(); !ok || mustKey(t, r) != 2 {
		t.Fatal("Prior failed")
	}
	b.First()
	if _, ok = b.Prior(); ok {
		t.Error("Prior before first should fail")
	}
}

func mustKey(t *testing.T, r *abdm.Record) int64 {
	t.Helper()
	v, ok := r.Get("k")
	if !ok {
		t.Fatal("record lacks key")
	}
	return v.AsInt()
}

func TestBufferEmpty(t *testing.T) {
	b := NewBuffer(nil)
	if _, ok := b.First(); ok {
		t.Error("First on empty buffer")
	}
	if _, ok := b.Last(); ok {
		t.Error("Last on empty buffer")
	}
	if _, ok := b.Next(); ok {
		t.Error("Next on empty buffer")
	}
}

func TestBufferSeekKey(t *testing.T) {
	b := NewBuffer([]*abdm.Record{rec(10), rec(20), rec(30)})
	if !b.SeekKey("k", 20) {
		t.Fatal("SeekKey missed")
	}
	if r, _ := b.Current(); mustKey(t, r) != 20 {
		t.Error("cursor not positioned")
	}
	if b.SeekKey("k", 99) {
		t.Error("SeekKey found a phantom")
	}
}

func TestCITRunUnit(t *testing.T) {
	c := NewCIT()
	if c.RunUnit.Valid {
		t.Error("fresh CIT has a run-unit current")
	}
	c.SetRunUnit("student", 17)
	if !c.RunUnit.Valid || c.RunUnit.Record != "student" || c.RunUnit.Key != 17 {
		t.Fatalf("run-unit = %+v", c.RunUnit)
	}
	// Setting the run-unit also updates the record type's current.
	cur, ok := c.RecordCurrent("student")
	if !ok || cur.Key != 17 {
		t.Errorf("record current = %+v,%v", cur, ok)
	}
}

func TestCITSetCurrents(t *testing.T) {
	c := NewCIT()
	c.SetSetCurrent(SetCurrent{Set: "advisor", OwnerRec: "faculty", OwnerKey: 3, MemberRec: "student", MemberKey: 17})
	sc, ok := c.SetCurrentOf("advisor")
	if !ok || sc.OwnerKey != 3 || sc.MemberKey != 17 {
		t.Fatalf("set current = %+v,%v", sc, ok)
	}
	if _, ok := c.SetCurrentOf("nosuch"); ok {
		t.Error("phantom set current")
	}
}

func TestCITInvalidateKey(t *testing.T) {
	c := NewCIT()
	c.SetRunUnit("student", 17)
	c.SetSetCurrent(SetCurrent{Set: "advisor", OwnerKey: 3, MemberKey: 17})
	c.SetSetCurrent(SetCurrent{Set: "dept", OwnerKey: 5, MemberKey: 6})
	c.InvalidateKey(17)
	if c.RunUnit.Valid {
		t.Error("run-unit still valid after InvalidateKey")
	}
	if _, ok := c.RecordCurrent("student"); ok {
		t.Error("record current still valid")
	}
	if _, ok := c.SetCurrentOf("advisor"); ok {
		t.Error("set current still valid")
	}
	if _, ok := c.SetCurrentOf("dept"); !ok {
		t.Error("unrelated set current wrongly invalidated")
	}
}

func TestCITBuffers(t *testing.T) {
	c := NewCIT()
	b := NewBuffer([]*abdm.Record{rec(1)})
	c.PutBuffer("advisor", b)
	got, ok := c.BufferOf("advisor")
	if !ok || got != b {
		t.Error("buffer lost")
	}
	if _, ok := c.BufferOf("other"); ok {
		t.Error("phantom buffer")
	}
}

func TestCITString(t *testing.T) {
	c := NewCIT()
	if got := c.String(); got != "CIT{run-unit=null}" {
		t.Errorf("empty CIT = %q", got)
	}
	c.SetRunUnit("student", 1)
	c.SetSetCurrent(SetCurrent{Set: "advisor", OwnerKey: 2, MemberKey: 1})
	s := c.String()
	for _, want := range []string{"run-unit=student#1", "set:advisor(owner=2,member=1)"} {
		if !contains(s, want) {
			t.Errorf("CIT string missing %q: %s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestWorkArea(t *testing.T) {
	w := NewWorkArea()
	if _, ok := w.Get("course", "title"); ok {
		t.Error("phantom UWA value")
	}
	w.Set("course", "title", abdm.String("Advanced Database"))
	v, ok := w.Get("course", "title")
	if !ok || v.AsString() != "Advanced Database" {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	tmpl := w.Template("course")
	if len(tmpl) != 1 {
		t.Errorf("template = %v", tmpl)
	}
	tmpl["title"] = abdm.String("mutated")
	if v, _ := w.Get("course", "title"); v.AsString() != "Advanced Database" {
		t.Error("Template must return a copy")
	}
	w.Clear("course")
	if _, ok := w.Get("course", "title"); ok {
		t.Error("Clear did not clear")
	}
}

func TestWorkAreaLoadRecord(t *testing.T) {
	w := NewWorkArea()
	r := abdm.NewRecord("course",
		abdm.Keyword{Attr: "title", Val: abdm.String("DB")},
		abdm.Keyword{Attr: "credits", Val: abdm.Int(4)})
	w.LoadRecord("course", r)
	if v, _ := w.Get("course", "credits"); v.AsInt() != 4 {
		t.Error("LoadRecord lost credits")
	}
	if _, ok := w.Get("course", abdm.FileAttr); ok {
		t.Error("LoadRecord must skip the FILE keyword")
	}
}
