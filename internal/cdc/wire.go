package cdc

import "mlds/internal/wire"

// EventFromChange renders one change as its wire form, for the serving
// tier's MsgEvent pushes.
func EventFromChange(c Change) wire.Event {
	e := wire.Event{
		Op:    byte(c.Op),
		ID:    c.ID,
		Pos:   c.Pos,
		Epoch: c.Epoch,
		Txn:   c.Txn,
		File:  c.File,
	}
	if c.Rec != nil {
		e.Rec = wire.FromRecord(c.Rec)
		e.HasRec = true
	}
	return e
}

// ChangeFromEvent parses a pushed wire event back into a change, for the
// remote client's watch pipes.
func ChangeFromEvent(e wire.Event) (Change, error) {
	c := Change{
		Op:    Op(e.Op),
		ID:    e.ID,
		Pos:   e.Pos,
		Epoch: e.Epoch,
		Txn:   e.Txn,
		File:  e.File,
	}
	if e.HasRec {
		rec, err := e.Rec.ToRecord()
		if err != nil {
			return c, err
		}
		c.Rec = rec
	}
	return c, nil
}
