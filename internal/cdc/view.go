package cdc

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kc"
	"mlds/internal/kdb"
	"mlds/internal/obs"
)

// View is an incrementally-maintained materialized view: CREATE VIEW name AS
// <query>. Its contents live in the view's own kdb store, keyed by the base
// records' database keys, and are maintained from the change stream — an
// insert, update or delete of a base record costs one or two keyed store
// operations instead of re-running the query. At every quiescent point the
// store equals a full recomputation of the defining query.
type View struct {
	Name string
	Def  Def

	ctrl *kc.Controller
	s    *stream
	dir  *abdm.Directory

	quit chan struct{}
	done chan struct{}
	once sync.Once

	mu    sync.Mutex
	store *kdb.Store
	err   error

	pos     atomic.Uint64
	epoch   atomic.Uint64
	applied atomic.Uint64
	reloads atomic.Uint64

	ready     chan struct{}
	readyOnce sync.Once

	gWatches *obs.Gauge
	gLag     *obs.Gauge
}

// OpenView starts maintaining a materialized view over the controller.
func OpenView(ctrl *kc.Controller, name string, def Def, o Options) (*View, error) {
	if def.File == "" {
		return nil, errEmptyDef
	}
	o = o.withDefaults()
	if o.Name == "" {
		o.Name = name
	}
	dir, err := viewDirectory(ctrl, def)
	if err != nil {
		return nil, err
	}
	v := &View{
		Name:  name,
		Def:   def,
		ctrl:  ctrl,
		dir:   dir,
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		ready: make(chan struct{}),
		store: kdb.NewStore(dir),
	}
	v.s = newStream(ctrl, def, o.SubBuffer, o.Poll)
	if o.Metrics != nil {
		dbL, watchL := obs.L("db", o.DB), obs.L("watch", o.Name)
		v.gWatches = o.Metrics.Gauge("mlds_watches",
			"watches and materialized views currently tailing the commit stream", dbL)
		v.gLag = o.Metrics.Gauge("mlds_watch_lag_epochs",
			"commit epochs between the database's clock and the watch's last delivered change", dbL, watchL)
		v.gWatches.Inc()
	}
	go v.run()
	return v, nil
}

// viewDirectory builds the view store's directory: the projected columns of
// the source file, with the source's attribute kinds.
func viewDirectory(ctrl *kc.Controller, def Def) (*abdm.Directory, error) {
	src := ctrl.System().Directory()
	cols := def.Cols
	if cols == nil {
		tmpl, ok := src.FileTemplate(def.File)
		if !ok {
			return nil, fmt.Errorf("cdc: no kernel file named %q", def.File)
		}
		cols = tmpl
	}
	dir := abdm.NewDirectory()
	for _, col := range cols {
		kind, ok := src.AttrKind(col)
		if !ok {
			return nil, fmt.Errorf("cdc: file %q has no attribute %q", def.File, col)
		}
		if err := dir.DefineAttr(col, kind); err != nil {
			return nil, err
		}
	}
	if err := dir.DefineFile(def.File, cols); err != nil {
		return nil, err
	}
	return dir, nil
}

// run is the view's maintenance goroutine: load, then fold the tail into the
// store, rebuilding from a fresh snapshot when the journal compacts past it.
func (v *View) run() {
	defer v.finish()
	ctx := context.Background()
	if err := v.s.load(ctx, v.apply); err != nil {
		v.fail(err)
		return
	}
	v.reloads.Add(1)
	for {
		changes, pos, err := v.s.next(v.quit)
		switch {
		case err == nil:
		case err == ErrClosed:
			return
		default:
			v.rebuild()
			if err := v.s.load(ctx, v.apply); err != nil {
				v.fail(err)
				return
			}
			v.reloads.Add(1)
			continue
		}
		for _, c := range changes {
			if !v.apply(c) {
				return
			}
		}
		v.pos.Store(pos)
		v.updateLag()
	}
}

// apply folds one change into the view store. It is the emit callback of the
// underlying stream, so initial-load rows arrive here too.
func (v *View) apply(c Change) bool {
	select {
	case <-v.quit:
		return false
	default:
	}
	v.mu.Lock()
	st := v.store
	v.mu.Unlock()
	var err error
	switch c.Op {
	case OpLoad, OpInsert:
		err = v.insert(st, c)
	case OpUpdate:
		if err = v.delete(st, c.ID); err == nil {
			err = v.insert(st, c)
		}
	case OpDelete:
		err = v.delete(st, c.ID)
	case OpReady:
		v.readyOnce.Do(func() { close(v.ready) })
	case OpResync:
		// The stream announces resyncs only on watcher paths; views rebuild
		// explicitly in run. Nothing to do.
	}
	if err != nil {
		v.fail(fmt.Errorf("cdc: view %s: %w", v.Name, err))
		return false
	}
	if c.Pos > v.pos.Load() {
		v.pos.Store(c.Pos)
	}
	if c.Epoch > v.epoch.Load() {
		v.epoch.Store(c.Epoch)
	}
	v.applied.Add(1)
	return true
}

func (v *View) insert(st *kdb.Store, c Change) error {
	req := &abdl.Request{Kind: abdl.Insert, Record: c.Rec, ForceID: abdm.RecordID(c.ID), NoVersion: true}
	_, err := st.Exec(req)
	return err
}

func (v *View) delete(st *kdb.Store, id uint64) error {
	req := abdl.NewDelete(abdm.And(abdm.Predicate{
		Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(v.Def.File),
	}))
	req.ForceID = abdm.RecordID(id)
	req.NoVersion = true
	_, err := st.Exec(req)
	return err
}

// rebuild swaps in an empty store before a full reload.
func (v *View) rebuild() {
	v.mu.Lock()
	v.store = kdb.NewStore(v.dir)
	v.mu.Unlock()
}

func (v *View) updateLag() {
	if v.gLag == nil {
		return
	}
	clock := v.ctrl.Txns().MVCCStats().Epoch
	last := v.epoch.Load()
	if last == 0 || clock < last {
		v.gLag.Set(0)
		return
	}
	v.gLag.Set(int64(clock - last))
}

func (v *View) fail(err error) {
	v.mu.Lock()
	if v.err == nil {
		v.err = err
	}
	v.mu.Unlock()
}

func (v *View) finish() {
	v.s.close()
	if v.gWatches != nil {
		v.gWatches.Dec()
	}
	if v.gLag != nil {
		v.gLag.Set(0)
	}
	v.readyOnce.Do(func() { close(v.ready) })
	close(v.done)
}

// Close stops maintenance. The store keeps its last contents.
func (v *View) Close() {
	v.once.Do(func() { close(v.quit) })
	<-v.done
}

// Err reports why maintenance stopped; nil while live or after a clean Close.
func (v *View) Err() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.err
}

// Ready blocks until the initial load is applied (or the view closed).
func (v *View) Ready() <-chan struct{} { return v.ready }

// Pos reports the journal position the view has applied through.
func (v *View) Pos() uint64 { return v.pos.Load() }

// Stats reports the view's maintenance accounting.
func (v *View) Stats() WatcherStats {
	return WatcherStats{
		TailerStats: v.s.stats(),
		Events:      v.applied.Load(),
		Reloads:     uint64(v.reloads.Load()),
	}
}

// WaitCaughtUp blocks until the view has applied every journal entry
// committed before the call (or ctx ends). The quiescent-point equality —
// view contents == full recomputation — holds once it returns, provided no
// concurrent writer keeps committing.
func (v *View) WaitCaughtUp(ctx context.Context) error {
	target := v.ctrl.JournalPos()
	for v.pos.Load() < target {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-v.done:
			if err := v.Err(); err != nil {
				return err
			}
			return ErrClosed
		case <-time.After(2 * time.Millisecond):
		}
	}
	return nil
}

// Rows returns the view's current contents, ordered by base database key.
func (v *View) Rows() []kdb.StoredRecord {
	v.mu.Lock()
	st := v.store
	v.mu.Unlock()
	// The view store is memory-resident, so Snapshot cannot fail.
	rows, _ := st.Snapshot()
	sort.Slice(rows, func(a, b int) bool { return rows[a].ID < rows[b].ID })
	return rows
}
