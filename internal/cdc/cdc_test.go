package cdc

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kc"
	"mlds/internal/mbds"
)

// newCtrl builds a two-backend controller over file f(x, y) with a
// file-backed journal, the full lossless-tailer configuration.
func newCtrl(t *testing.T) *kc.Controller {
	t.Helper()
	dir := abdm.NewDirectory()
	for _, attr := range []string{"x", "y"} {
		if err := dir.DefineAttr(attr, abdm.KindInt); err != nil {
			t.Fatal(err)
		}
	}
	if err := dir.DefineFile("f", []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	sys, err := mbds.New(dir, mbds.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	c := kc.New(sys)
	jf, err := kc.OpenJournalFile(filepath.Join(t.TempDir(), "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachJournalFile(jf); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jf.Close() })
	return c
}

func insertXY(t *testing.T, c *kc.Controller, x, y int64) {
	t.Helper()
	_, err := c.Exec(abdl.NewInsert(abdm.NewRecord("f",
		abdm.Keyword{Attr: "x", Val: abdm.Int(x)},
		abdm.Keyword{Attr: "y", Val: abdm.Int(y)})))
	if err != nil {
		t.Fatal(err)
	}
}

func updateWhereX(t *testing.T, c *kc.Controller, x int64, mods ...abdl.Modifier) {
	t.Helper()
	q := abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("f")},
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(x)})
	if _, err := c.Exec(abdl.NewUpdate(q, mods...)); err != nil {
		t.Fatal(err)
	}
}

func deleteWhereX(t *testing.T, c *kc.Controller, x int64) {
	t.Helper()
	q := abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("f")},
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(x)})
	if _, err := c.Exec(abdl.NewDelete(q)); err != nil {
		t.Fatal(err)
	}
}

// next reads one change with a deadline.
func next(t *testing.T, w *Watcher) Change {
	t.Helper()
	select {
	case c, ok := <-w.C:
		if !ok {
			t.Fatalf("watch channel closed early: %v", w.Err())
		}
		return c
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a change")
	}
	panic("unreachable")
}

// drainLoad consumes the initial load through OpReady and returns the loaded
// row IDs with their x values.
func drainLoad(t *testing.T, w *Watcher) map[uint64]int64 {
	t.Helper()
	rows := make(map[uint64]int64)
	for {
		c := next(t, w)
		switch c.Op {
		case OpLoad:
			v, _ := c.Rec.Get("x")
			rows[c.ID] = v.AsInt()
		case OpReady:
			return rows
		default:
			t.Fatalf("unexpected %s during initial load", c.Op)
		}
	}
}

func TestCompileSelectAndParseQuery(t *testing.T) {
	def, err := ParseQuery("WATCH SELECT x, y FROM f WHERE x >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if def.File != "f" || len(def.Cols) != 2 || len(def.Where) != 1 {
		t.Fatalf("def = %+v", def)
	}
	if got := def.String(); got != "SELECT x, y FROM f WHERE ((x >= 2))" &&
		!strings.HasPrefix(got, "SELECT x, y FROM f WHERE") {
		t.Fatalf("String() = %q", got)
	}
	star, err := ParseQuery("SELECT * FROM f")
	if err != nil {
		t.Fatal(err)
	}
	if star.Cols != nil || len(star.Where) != 0 {
		t.Fatalf("star def = %+v", star)
	}
	for _, bad := range []string{
		"SELECT COUNT(*) FROM f",
		"SELECT x FROM f GROUP BY x",
		"SELECT x FROM f ORDER BY x",
		"DELETE FROM f",
		"WATCH nonsense",
	} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) accepted", bad)
		}
	}
}

func TestDefMatchesAndProject(t *testing.T) {
	def, err := ParseQuery("SELECT x FROM f WHERE x >= 10")
	if err != nil {
		t.Fatal(err)
	}
	in := abdm.NewRecord("f",
		abdm.Keyword{Attr: "x", Val: abdm.Int(11)},
		abdm.Keyword{Attr: "y", Val: abdm.Int(1)})
	outOf := abdm.NewRecord("f", abdm.Keyword{Attr: "x", Val: abdm.Int(3)})
	other := abdm.NewRecord("g", abdm.Keyword{Attr: "x", Val: abdm.Int(99)})
	if !def.matches(in) || def.matches(outOf) || def.matches(other) || def.matches(nil) {
		t.Fatal("predicate membership wrong")
	}
	p := def.project(in)
	if p.File() != "f" {
		t.Fatalf("projection lost the FILE keyword: %v", p)
	}
	if _, ok := p.Get("y"); ok {
		t.Fatal("projection kept an unselected column")
	}
	if v, ok := p.Get("x"); !ok || v.AsInt() != 11 {
		t.Fatalf("projection x = %v", v)
	}
}

func TestOpAndChangeStrings(t *testing.T) {
	if OpInsert.String() != "insert" || Op(99).String() != "op(99)" {
		t.Fatal("Op.String wrong")
	}
	rec := abdm.NewRecord("f", abdm.Keyword{Attr: "x", Val: abdm.Int(1)})
	for _, c := range []Change{
		{Op: OpReady, Epoch: 3},
		{Op: OpResync},
		{Op: OpDelete, File: "f", ID: 7},
		{Op: OpInsert, File: "f", ID: 7, Rec: rec},
		{Op: OpUpdate, File: "f", ID: 7, Rec: nil},
	} {
		if c.String() == "" {
			t.Fatalf("empty String for %v", c.Op)
		}
	}
}

func TestWatcherLoadThenChanges(t *testing.T) {
	ctrl := newCtrl(t)
	insertXY(t, ctrl, 1, 10)
	insertXY(t, ctrl, 2, 20)
	insertXY(t, ctrl, 3, 30)

	def, err := ParseQuery("SELECT x, y FROM f WHERE x >= 2")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open(ctrl, def, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	loaded := drainLoad(t, w)
	if len(loaded) != 2 {
		t.Fatalf("initial load = %v, want x=2 and x=3", loaded)
	}

	// A row entering via INSERT.
	insertXY(t, ctrl, 5, 50)
	c := next(t, w)
	if c.Op != OpInsert {
		t.Fatalf("after insert: %v", c)
	}
	if v, _ := c.Rec.Get("x"); v.AsInt() != 5 {
		t.Fatalf("insert image = %v", c.Rec)
	}
	insID := c.ID

	// An UPDATE within the predicate is an update.
	updateWhereX(t, ctrl, 5, abdl.Modifier{Attr: "y", Val: abdm.Int(55)})
	c = next(t, w)
	if c.Op != OpUpdate || c.ID != insID {
		t.Fatalf("in-predicate update: %v", c)
	}
	if v, _ := c.Rec.Get("y"); v.AsInt() != 55 {
		t.Fatalf("update post-image = %v", c.Rec)
	}

	// An UPDATE into the predicate arrives as an insert.
	updateWhereX(t, ctrl, 1, abdl.Modifier{Attr: "x", Val: abdm.Int(12)})
	c = next(t, w)
	if c.Op != OpInsert {
		t.Fatalf("into-predicate update: %v", c)
	}
	movedID := c.ID

	// An UPDATE out of the predicate arrives as a delete.
	updateWhereX(t, ctrl, 12, abdl.Modifier{Attr: "x", Val: abdm.Int(0)})
	c = next(t, w)
	if c.Op != OpDelete || c.ID != movedID || c.Rec != nil {
		t.Fatalf("out-of-predicate update: %v", c)
	}

	// A DELETE of a matching row.
	deleteWhereX(t, ctrl, 5)
	c = next(t, w)
	if c.Op != OpDelete || c.ID != insID {
		t.Fatalf("delete: %v", c)
	}

	// A non-matching row's churn is invisible.
	insertXY(t, ctrl, 0, 1)
	deleteWhereX(t, ctrl, 0)
	// Then a visible marker to prove the invisible ones were skipped.
	insertXY(t, ctrl, 9, 90)
	c = next(t, w)
	if c.Op != OpInsert {
		t.Fatalf("marker insert: %v", c)
	}
	if v, _ := c.Rec.Get("x"); v.AsInt() != 9 {
		t.Fatalf("non-matching churn leaked: %v", c.Rec)
	}

	st := w.Stats()
	if st.Events == 0 || st.Reloads != 1 || st.Pos == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if w.Err() != nil {
		t.Fatalf("live watch has terminal error %v", w.Err())
	}
}

// TestWatcherLossless is the drop-resync contract: a stalled consumer lets
// the commit subscription overflow, and every committed change still arrives
// exactly once, in order, recovered from the journal.
func TestWatcherLossless(t *testing.T) {
	ctrl := newCtrl(t)
	def, err := ParseQuery("SELECT x FROM f")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open(ctrl, def, Options{Buffer: 1, SubBuffer: 1, Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const n = 200
	// Nobody drains the watch: after a couple of events the watcher goroutine
	// blocks, the 1-deep subscription overflows, and the tailer must recover
	// the dropped range from the journal file.
	for i := int64(1); i <= n; i++ {
		insertXY(t, ctrl, i, 0)
	}

	seen := make(map[int64]int)
	var lastPos uint64
	ready := false
	for len(seen) < n {
		c := next(t, w)
		switch c.Op {
		case OpLoad:
			// Rows committed before the (late) snapshot load.
			v, _ := c.Rec.Get("x")
			seen[v.AsInt()]++
		case OpReady:
			ready = true
		case OpInsert:
			v, _ := c.Rec.Get("x")
			seen[v.AsInt()]++
			if c.Pos <= lastPos {
				t.Fatalf("position went backwards: %d after %d", c.Pos, lastPos)
			}
			lastPos = c.Pos
		case OpResync:
			// Journal compaction never happens here; resyncs are internal.
			t.Fatalf("unexpected resync")
		default:
			t.Fatalf("unexpected %s", c.Op)
		}
	}
	if !ready {
		t.Fatal("no OpReady before the changes")
	}
	for i := int64(1); i <= n; i++ {
		if seen[i] != 1 {
			t.Fatalf("x=%d delivered %d times, want exactly once", i, seen[i])
		}
	}
	st := w.Stats()
	if st.Dropped == 0 || st.Resyncs == 0 {
		t.Fatalf("expected drops and resyncs with a 1-deep subscription: %+v", st)
	}
}

func TestTailerDirect(t *testing.T) {
	ctrl := newCtrl(t)
	tl := NewTailer(ctrl, 16, time.Millisecond)
	tl.Reset(0)
	defer tl.Close()

	for i := int64(1); i <= 5; i++ {
		insertXY(t, ctrl, i, 0)
	}
	quit := make(chan struct{})
	var got []Entry
	for len(got) < 5 {
		batch, err := tl.Next(quit)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, batch...)
	}
	for i, e := range got {
		if e.Pos != uint64(i+1) {
			t.Fatalf("entry %d at position %d", i, e.Pos)
		}
		if e.Txn == 0 {
			t.Fatalf("entry %d lost its transaction id", i)
		}
	}
	st := tl.Stats()
	if st.Pos != 5 || st.Delivered != 5 {
		t.Fatalf("stats = %+v", st)
	}

	// Close makes Next return ErrClosed.
	tl.Close()
	if _, err := tl.Next(quit); !errors.Is(err, ErrClosed) {
		t.Fatalf("Next after Close = %v", err)
	}
}

func TestTailerQuit(t *testing.T) {
	ctrl := newCtrl(t)
	tl := NewTailer(ctrl, 16, time.Hour)
	tl.Reset(0)
	defer tl.Close()
	quit := make(chan struct{})
	close(quit)
	if _, err := tl.Next(quit); !errors.Is(err, ErrClosed) {
		t.Fatalf("Next with closed quit = %v", err)
	}
}

func TestOpenErrors(t *testing.T) {
	ctrl := newCtrl(t)
	if _, err := Open(ctrl, Def{}, Options{}); err == nil {
		t.Fatal("empty definition accepted")
	}
	if _, err := OpenView(ctrl, "v", Def{}, Options{}); err == nil {
		t.Fatal("empty view definition accepted")
	}
	if _, err := OpenView(ctrl, "v", Def{File: "nosuch"}, Options{}); err == nil {
		t.Fatal("view over an unknown file accepted")
	}
	if _, err := OpenView(ctrl, "v", Def{File: "f", Cols: []string{"zz"}}, Options{}); err == nil {
		t.Fatal("view over an unknown attribute accepted")
	}
}

// recompute answers the view query directly against the kernel.
func recompute(t *testing.T, ctrl *kc.Controller, minX int64) []string {
	t.Helper()
	res, err := ctrl.Exec(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("f")},
		abdm.Predicate{Attr: "x", Op: abdm.OpGe, Val: abdm.Int(minX)}), abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, sr := range res.Records {
		x, _ := sr.Rec.Get("x")
		y, _ := sr.Rec.Get("y")
		out = append(out, fmt.Sprintf("%d:%d=%d", sr.ID, x.AsInt(), y.AsInt()))
	}
	sort.Strings(out)
	return out
}

func viewRows(v *View) []string {
	var out []string
	for _, sr := range v.Rows() {
		x, _ := sr.Rec.Get("x")
		y, _ := sr.Rec.Get("y")
		out = append(out, fmt.Sprintf("%d:%d=%d", sr.ID, x.AsInt(), y.AsInt()))
	}
	sort.Strings(out)
	return out
}

// TestViewMatchesRecompute holds the view's defining equality — incremental
// contents == full recomputation — across inserts, updates (including
// membership transitions) and deletes.
func TestViewMatchesRecompute(t *testing.T) {
	ctrl := newCtrl(t)
	insertXY(t, ctrl, 1, 10)
	insertXY(t, ctrl, 5, 50)

	def, err := ParseQuery("SELECT x, y FROM f WHERE x >= 2")
	if err != nil {
		t.Fatal(err)
	}
	v, err := OpenView(ctrl, "big", def, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	<-v.Ready()
	if err := v.Err(); err != nil {
		t.Fatal(err)
	}

	check := func(phase string) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := v.WaitCaughtUp(ctx); err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		want := recompute(t, ctrl, 2)
		got := viewRows(v)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: view %v != recompute %v", phase, got, want)
		}
	}
	check("initial load")

	insertXY(t, ctrl, 7, 70)
	check("after insert")

	updateWhereX(t, ctrl, 7, abdl.Modifier{Attr: "y", Val: abdm.Int(71)})
	check("after update")

	updateWhereX(t, ctrl, 1, abdl.Modifier{Attr: "x", Val: abdm.Int(3)}) // into the view
	check("after membership entry")

	updateWhereX(t, ctrl, 5, abdl.Modifier{Attr: "x", Val: abdm.Int(0)}) // out of the view
	check("after membership exit")

	deleteWhereX(t, ctrl, 7)
	check("after delete")

	st := v.Stats()
	if st.Events == 0 || st.Reloads != 1 {
		t.Fatalf("view stats = %+v", st)
	}
	if v.Pos() == 0 {
		t.Fatal("view position never advanced")
	}
}

func TestPipe(t *testing.T) {
	closed := 0
	w := NewPipe(func() { closed++ })
	w.Feed(Change{Op: OpLoad, ID: 1})
	w.Feed(Change{Op: OpReady, Epoch: 2})
	w.Feed(Change{Op: OpInsert, ID: 3})
	for i, want := range []Op{OpLoad, OpReady, OpInsert} {
		c := next(t, w)
		if c.Op != want {
			t.Fatalf("event %d = %s, want %s", i, c.Op, want)
		}
	}
	if st := w.Stats(); st.Events != 3 {
		t.Fatalf("pipe stats = %+v", st)
	}
	// Consumer-side close runs onClose exactly once and closes C.
	w.Close()
	w.Close()
	if closed != 1 {
		t.Fatalf("onClose ran %d times", closed)
	}
	if _, ok := <-w.C; ok {
		t.Fatal("C still open after Close")
	}
	// Feeding a closed pipe is a no-op.
	w.Feed(Change{Op: OpInsert})
	if w.Err() != nil {
		t.Fatalf("clean close left error %v", w.Err())
	}
}

func TestPipeFail(t *testing.T) {
	w := NewPipe(nil)
	w.Feed(Change{Op: OpReady})
	boom := errors.New("conn lost")
	w.Fail(boom)
	// Buffered events drain before C closes.
	if c := next(t, w); c.Op != OpReady {
		t.Fatalf("buffered event = %v", c)
	}
	if _, ok := <-w.C; ok {
		t.Fatal("C open after Fail")
	}
	if !errors.Is(w.Err(), boom) {
		t.Fatalf("Err = %v", w.Err())
	}
	w.Close()
}

func TestPipeCleanServerClose(t *testing.T) {
	w := NewPipe(nil)
	w.Fail(nil)
	if _, ok := <-w.C; ok {
		t.Fatal("C open after clean Fail(nil)")
	}
	if w.Err() != nil {
		t.Fatalf("Err = %v", w.Err())
	}
}

// newBareCtrl builds a controller with NO journal file attached — the
// default production configuration (embedded systems and cmd/mldsserver
// attach none). Change capture must still work there: the sink counts
// positions without a file, and a dropped range that cannot be re-read
// rebuilds from a fresh snapshot (OpResync + reload).
func newBareCtrl(t *testing.T) *kc.Controller {
	t.Helper()
	dir := abdm.NewDirectory()
	for _, attr := range []string{"x", "y"} {
		if err := dir.DefineAttr(attr, abdm.KindInt); err != nil {
			t.Fatal(err)
		}
	}
	if err := dir.DefineFile("f", []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	sys, err := mbds.New(dir, mbds.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return kc.New(sys)
}

// TestWatchNoJournalFile is the production-default regression: a watch on a
// controller without a journal file must deliver the load and then live
// inserts, updates and deletes — positions counted by the sink alone.
func TestWatchNoJournalFile(t *testing.T) {
	c := newBareCtrl(t)
	insertXY(t, c, 1, 10)
	def, err := ParseQuery("WATCH SELECT x, y FROM f WHERE x >= 0")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open(c, def, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if rows := drainLoad(t, w); len(rows) != 1 {
		t.Fatalf("load = %v, want 1 row", rows)
	}

	insertXY(t, c, 2, 20)
	if ch := next(t, w); ch.Op != OpInsert {
		t.Fatalf("after insert: %s", ch)
	} else if v, _ := ch.Rec.Get("x"); v.AsInt() != 2 {
		t.Fatalf("insert carried %s", ch)
	}
	updateWhereX(t, c, 2, abdl.Modifier{Attr: "y", Val: abdm.Int(21)})
	if ch := next(t, w); ch.Op != OpUpdate {
		t.Fatalf("after update: %s", ch)
	}
	deleteWhereX(t, c, 1)
	if ch := next(t, w); ch.Op != OpDelete {
		t.Fatalf("after delete: %s", ch)
	}
	if st := w.Stats(); st.Pos == 0 || st.Dropped != 0 {
		t.Fatalf("stats %+v: want counted positions and no drops", st)
	}
}

// TestWatchNoJournalDropRebuilds forces a subscription overflow on a
// journal-less controller: the dropped range cannot be re-read from disk, so
// the watch must announce OpResync and rebuild from a fresh snapshot — and
// still converge to every committed row, with live delivery working after.
func TestWatchNoJournalDropRebuilds(t *testing.T) {
	c := newBareCtrl(t)
	def, err := ParseQuery("WATCH SELECT x, y FROM f WHERE x >= 0")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open(c, def, Options{Buffer: 1, SubBuffer: 1, Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	drainLoad(t, w)

	// Burst without consuming: the one-slot subscription must drop.
	want := make(map[int64]bool)
	for x := int64(1); x <= 64; x++ {
		insertXY(t, c, x, 0)
		want[x] = true
		if w.Stats().Dropped > 0 {
			break
		}
	}
	if w.Stats().Dropped == 0 {
		t.Fatalf("64-insert burst never overflowed the one-slot subscription (stats %+v)", w.Stats())
	}

	// Consume: inserts and at least one OpResync + reload, converging on
	// exactly the committed set.
	got := make(map[int64]bool)
	ready, resyncs := true, 0
	record := func(ch Change) {
		v, _ := ch.Rec.Get("x")
		got[v.AsInt()] = true
	}
	deadline := time.After(20 * time.Second)
	for len(got) < len(want) || !ready {
		select {
		case ch, ok := <-w.C:
			if !ok {
				t.Fatalf("watch closed early: %v", w.Err())
			}
			switch ch.Op {
			case OpInsert:
				if !ready {
					t.Fatalf("insert during reload: %s", ch)
				}
				record(ch)
			case OpResync:
				// The reload repeats initial state: start over.
				ready, resyncs = false, resyncs+1
				got = make(map[int64]bool)
			case OpLoad:
				if ready {
					t.Fatalf("load row outside a reload: %s", ch)
				}
				record(ch)
			case OpReady:
				ready = true
			default:
				t.Fatalf("unexpected %s", ch)
			}
		case <-deadline:
			t.Fatalf("no convergence: %d/%d rows, ready=%v, resyncs=%d (stats %+v)",
				len(got), len(want), ready, resyncs, w.Stats())
		}
	}
	if resyncs == 0 {
		t.Fatalf("drop never forced a rebuild (stats %+v)", w.Stats())
	}
	for x := range want {
		if !got[x] {
			t.Fatalf("row %d lost after rebuild", x)
		}
	}

	// Live delivery resumes after the rebuild.
	insertXY(t, c, 999, 0)
	for {
		ch := next(t, w)
		if ch.Op == OpInsert {
			if v, _ := ch.Rec.Get("x"); v.AsInt() == 999 {
				return
			}
			continue
		}
		if ch.Op == OpResync || ch.Op == OpLoad || ch.Op == OpReady {
			continue // a trailing rebuild may still be in flight
		}
		t.Fatalf("unexpected %s after rebuild", ch)
	}
}
