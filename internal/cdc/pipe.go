package cdc

import "sync"

// NewPipe builds a remote-fed Watcher: C is supplied by Feed instead of a
// local stream — the network client's read loop pushes decoded server events
// in. Feeding is buffered without bound so the read loop never blocks behind
// a slow watch consumer (server-side flow control bounds what is in flight
// on the wire; the pipe only smooths delivery order). onClose, if non-nil,
// runs once when the pipe closes from the consumer side — the client uses it
// to tell the server the watch is gone.
func NewPipe(onClose func()) *Watcher {
	w := newWatcher(64)
	w.onClose = onClose
	p := &pipe{w: w}
	p.cond = sync.NewCond(&p.mu)
	w.feed = p.feed
	w.failFeed = p.fail
	w.wake = func() { p.fail(nil) }
	go p.run()
	return w
}

// Feed hands one event to a remote-fed watcher. It never blocks. Events fed
// after the pipe closes are discarded.
func (w *Watcher) Feed(c Change) {
	if w.feed != nil {
		w.feed(c)
	}
}

// Fail terminates a remote-fed watcher with err (nil for a clean server-side
// close): buffered events still drain, then C closes.
func (w *Watcher) Fail(err error) {
	if w.failFeed != nil {
		w.failFeed(err)
	}
}

// pipe is the unbounded queue between Feed and the watcher channel.
type pipe struct {
	w      *Watcher
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Change
	closed bool
}

func (p *pipe) feed(c Change) {
	p.mu.Lock()
	if !p.closed {
		p.queue = append(p.queue, c)
		p.cond.Signal()
	}
	p.mu.Unlock()
}

func (p *pipe) fail(err error) {
	if err != nil {
		p.w.fail(err)
	}
	p.mu.Lock()
	p.closed = true
	p.cond.Signal()
	p.mu.Unlock()
}

// run drains the queue into the watcher channel until the pipe fails or the
// consumer closes the watch.
func (p *pipe) run() {
	defer p.w.finish()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		batch := p.queue
		p.queue = nil
		p.mu.Unlock()
		for _, c := range batch {
			if !p.w.emit(c) {
				return
			}
		}
	}
}
