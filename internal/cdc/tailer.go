package cdc

import (
	"errors"
	"sync/atomic"
	"time"

	"mlds/internal/kc"
	"mlds/internal/txn"
)

// ErrClosed reports a tailer whose subscription or owner shut down.
var ErrClosed = errors.New("cdc: tailer closed")

// DefaultPoll is the tailer's catch-up poll period: how often an idle tailer
// compares its position against the journal's, so records dropped from the
// subscription buffer are recovered even when no later commit arrives to
// expose the gap.
const DefaultPoll = 25 * time.Millisecond

// Entry is one committed journal entry delivered by a tailer, in commit
// order with its exact journal position. Rec carries the mutating request in
// wire form plus the database keys it touched.
type Entry struct {
	Pos   uint64
	Epoch uint64 // commit epoch; 0 when recovered from the journal file
	Txn   uint64
	Rec   txn.JournalRec
}

// TailerStats is a point-in-time snapshot of a tailer's delivery accounting.
type TailerStats struct {
	Pos       uint64 // last delivered journal position
	Epoch     uint64 // last delivered commit epoch (live records only)
	Delivered uint64 // entries delivered
	Dropped   uint64 // commit records the subscription buffer dropped
	Resyncs   uint64 // journal re-reads that recovered dropped ranges
}

// Tailer is a lossless cursor over one controller's committed-change stream.
// The live path is a commit-stream subscription; when the subscription's
// buffer overflows (publication never blocks group commit), the tailer
// detects the positional gap and re-reads exactly the missed range from the
// journal file. Next never returns a position twice and never skips one —
// unless the journal was compacted past the cursor, which Next reports as
// kc.ErrCompacted so the owner can rebuild from a fresh snapshot.
//
// A Tailer is single-consumer: Next must not be called concurrently.
type Tailer struct {
	ctrl *kc.Controller
	sub  *txn.CommitSub
	tick *time.Ticker

	after     uint64 // last delivered position
	epoch     atomic.Uint64
	pos       atomic.Uint64
	delivered atomic.Uint64
	resyncs   atomic.Uint64
}

// NewTailer subscribes to the controller's commit stream with the given
// buffer (minimum 1) and poll period (0 = DefaultPoll). Subscribe before
// taking the snapshot that anchors the cursor, then call Reset with the
// snapshot's position: every later committed entry arrives on the
// subscription or is recovered from the journal.
func NewTailer(ctrl *kc.Controller, buf int, poll time.Duration) *Tailer {
	if poll <= 0 {
		poll = DefaultPoll
	}
	return &Tailer{
		ctrl: ctrl,
		sub:  ctrl.SubscribeCommits(buf),
		tick: time.NewTicker(poll),
	}
}

// Reset anchors the cursor: entries at positions <= pos are considered
// delivered (they are visible in the snapshot the caller loaded).
func (t *Tailer) Reset(pos uint64) {
	t.after = pos
	t.pos.Store(pos)
}

// Close cancels the subscription. A concurrent Next returns ErrClosed.
func (t *Tailer) Close() {
	t.sub.Close()
	t.tick.Stop()
}

// Stats returns the tailer's delivery accounting.
func (t *Tailer) Stats() TailerStats {
	return TailerStats{
		Pos:       t.pos.Load(),
		Epoch:     t.epoch.Load(),
		Delivered: t.delivered.Load(),
		Dropped:   t.sub.Dropped(),
		Resyncs:   t.resyncs.Load(),
	}
}

// Next blocks until committed entries past the cursor are available and
// returns them in commit order, advancing the cursor. It returns ErrClosed
// when the subscription or the quit channel closes, and kc.ErrCompacted (or
// another journal-read error) when dropped entries cannot be recovered —
// the cursor is then unusable until Reset.
func (t *Tailer) Next(quit <-chan struct{}) ([]Entry, error) {
	for {
		select {
		case rec, ok := <-t.sub.C:
			if !ok {
				return nil, ErrClosed
			}
			batch, err := t.fromRecord(rec)
			if err != nil {
				return nil, err
			}
			if len(batch) == 0 {
				continue
			}
			return batch, nil
		case <-t.tick.C:
			// Idle catch-up: if the journal moved past the cursor and no
			// record announced it (the announcement was dropped and nothing
			// committed since), recover from the journal directly. Pending
			// live records are processed first — they cover the gap without a
			// re-read, and on journal-less controllers a re-read isn't
			// possible at all.
			if len(t.sub.C) > 0 || t.ctrl.JournalPos() <= t.after {
				continue
			}
			batch, err := t.resync()
			if err != nil {
				return nil, err
			}
			if len(batch) == 0 {
				continue
			}
			return batch, nil
		case <-quit:
			return nil, ErrClosed
		}
	}
}

// fromRecord converts one live commit record into deliverable entries,
// resynchronizing from the journal first if records before it were dropped.
func (t *Tailer) fromRecord(rec txn.CommitRecord) ([]Entry, error) {
	if rec.Epoch != 0 {
		t.epoch.Store(rec.Epoch)
	}
	if rec.Pos == 0 {
		// No position accounting (a sink that does not count positions):
		// nothing to anchor lossless delivery to; deliver nothing rather
		// than guess. Controllers count positions even without a journal
		// file, so this only guards foreign sinks.
		return nil, nil
	}
	start := rec.Pos - uint64(len(rec.Entries))
	if start > t.after {
		// Records between the cursor and this one were dropped from the
		// subscription buffer. They were durable in the journal before they
		// were published, so the journal has them — and it has this record's
		// entries too, so the resync read covers everything through rec.Pos.
		return t.resync()
	}
	var out []Entry
	for i, e := range rec.Entries {
		pos := start + uint64(i) + 1
		if pos <= t.after {
			continue // already recovered by an earlier resync
		}
		out = append(out, Entry{Pos: pos, Epoch: rec.Epoch, Txn: rec.ID, Rec: e})
	}
	if rec.Pos > t.after {
		t.advance(rec.Pos, uint64(len(out)))
	}
	return out, nil
}

// resync re-reads every committed entry past the cursor from the journal
// file and advances the cursor over them.
func (t *Tailer) resync() ([]Entry, error) {
	entries, err := t.ctrl.ReadCommitted(t.after)
	if err != nil {
		return nil, err
	}
	t.resyncs.Add(1)
	var out []Entry
	last := t.after
	for _, e := range entries {
		if e.Pos <= t.after {
			continue
		}
		out = append(out, Entry{
			Pos: e.Pos,
			Txn: e.Txn,
			Rec: txn.JournalRec{Req: e.Req, Key: e.Key, Affected: e.Affected},
		})
		if e.Pos > last {
			last = e.Pos
		}
	}
	if last > t.after {
		t.advance(last, uint64(len(out)))
	}
	return out, nil
}

func (t *Tailer) advance(pos, delivered uint64) {
	t.after = pos
	t.pos.Store(pos)
	t.delivered.Add(delivered)
}
