package cdc

import (
	"context"
	"sync"
	"time"

	"mlds/internal/kc"
	"mlds/internal/obs"
)

// Options tunes a watcher or view.
type Options struct {
	// Buffer is the event channel's depth (0 = 64). A consumer that stops
	// draining blocks the watcher's goroutine, which in turn lets the commit
	// subscription overflow — the tailer then recovers losslessly from the
	// journal, so slow consumers cost resyncs, never correctness.
	Buffer int
	// SubBuffer is the commit-stream subscription depth (0 = 256).
	SubBuffer int
	// Poll is the idle catch-up period (0 = DefaultPoll).
	Poll time.Duration
	// Metrics registers the watch gauges (active watches, per-watch lag);
	// DB and Name label them. A nil registry disables them.
	Metrics *obs.Registry
	DB      string
	Name    string
}

func (o Options) withDefaults() Options {
	if o.Buffer <= 0 {
		o.Buffer = 64
	}
	if o.SubBuffer <= 0 {
		o.SubBuffer = 256
	}
	return o
}

// WatcherStats extends the tailer's accounting with the watcher's own.
type WatcherStats struct {
	TailerStats
	Events  uint64 // changes delivered on C
	Reloads uint64 // full snapshot reloads (initial load + compaction resyncs)
}

// Watcher is one live WATCH: C delivers a snapshot-consistent initial load
// (OpLoad rows, then OpReady at the snapshot epoch) followed by exactly the
// committed changes past that epoch, in commit order. If the dropped range
// cannot be re-read — the journal was compacted past the watcher's position,
// or the controller has no journal file at all — C delivers OpResync
// followed by a fresh load: the only case initial state repeats.
// C closes when the watch ends; Err reports why (nil on a clean Close).
type Watcher struct {
	C <-chan Change

	ch   chan Change
	quit chan struct{}
	done chan struct{}
	once sync.Once

	mu      sync.Mutex
	err     error
	events  uint64
	reloads uint64

	s        *stream // nil for remote-fed pipes
	onClose  func()
	wake     func()       // pipe: wake the drain goroutine on Close
	feed     func(Change) // pipe: enqueue one remote event
	failFeed func(error)  // pipe: terminal close from the feeding side

	gWatches *obs.Gauge
	gLag     *obs.Gauge
}

// Open starts a watch over the controller for the given definition.
func Open(ctrl *kc.Controller, def Def, o Options) (*Watcher, error) {
	if def.File == "" {
		return nil, errEmptyDef
	}
	o = o.withDefaults()
	w := newWatcher(o.Buffer)
	w.s = newStream(ctrl, def, o.SubBuffer, o.Poll)
	w.bindGauges(o)
	go w.run(ctrl)
	return w, nil
}

var errEmptyDef = errorString("cdc: watch definition names no file")

type errorString string

func (e errorString) Error() string { return string(e) }

func newWatcher(buf int) *Watcher {
	ch := make(chan Change, buf)
	return &Watcher{
		C:    ch,
		ch:   ch,
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// bindGauges registers the active-watch count and per-watch lag gauges.
func (w *Watcher) bindGauges(o Options) {
	if o.Metrics == nil {
		return
	}
	dbL, watchL := obs.L("db", o.DB), obs.L("watch", o.Name)
	w.gWatches = o.Metrics.Gauge("mlds_watches",
		"watches and materialized views currently tailing the commit stream", dbL)
	w.gLag = o.Metrics.Gauge("mlds_watch_lag_epochs",
		"commit epochs between the database's clock and the watch's last delivered change", dbL, watchL)
	w.gWatches.Inc()
}

// run is the watcher's goroutine: load, then tail, reloading on compaction.
func (w *Watcher) run(ctrl *kc.Controller) {
	defer w.finish()
	ctx := context.Background()
	emit := w.emit
	if err := w.s.load(ctx, emit); err != nil {
		w.fail(err)
		return
	}
	w.noteReload()
	for {
		changes, _, err := w.s.next(w.quit)
		switch {
		case err == nil:
		case err == ErrClosed:
			return
		default:
			// The journal no longer holds the range past our cursor (or the
			// read failed outright): announce the discontinuity and rebuild
			// from a fresh snapshot.
			if !emit(Change{Op: OpResync}) {
				return
			}
			if err := w.s.load(ctx, emit); err != nil {
				w.fail(err)
				return
			}
			w.noteReload()
			continue
		}
		for _, c := range changes {
			if !emit(c) {
				return
			}
		}
		w.updateLag(ctrl)
	}
}

func (w *Watcher) updateLag(ctrl *kc.Controller) {
	if w.gLag == nil {
		return
	}
	st := w.s.stats()
	clock := ctrl.Txns().MVCCStats().Epoch
	if st.Epoch == 0 || clock < st.Epoch {
		w.gLag.Set(0)
		return
	}
	w.gLag.Set(int64(clock - st.Epoch))
}

// emit delivers one change, blocking until the consumer drains or the watch
// closes. It reports false when the watch is closing.
func (w *Watcher) emit(c Change) bool {
	select {
	case w.ch <- c:
		w.mu.Lock()
		w.events++
		w.mu.Unlock()
		return true
	case <-w.quit:
		return false
	}
}

func (w *Watcher) noteReload() {
	w.mu.Lock()
	w.reloads++
	w.mu.Unlock()
}

// fail records the watch's terminal error.
func (w *Watcher) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

// finish tears the watch down from the inside: release the subscription and
// gauges, then close C so consumers see end-of-stream.
func (w *Watcher) finish() {
	if w.s != nil {
		w.s.close()
	}
	if w.gWatches != nil {
		w.gWatches.Dec()
	}
	if w.gLag != nil {
		w.gLag.Set(0)
	}
	if w.onClose != nil {
		w.onClose()
	}
	close(w.ch)
	close(w.done)
}

// Close ends the watch and waits for C to close. Safe to call repeatedly and
// concurrently with consumption.
func (w *Watcher) Close() {
	w.once.Do(func() {
		close(w.quit)
		if w.wake != nil {
			w.wake()
		}
	})
	<-w.done
}

// Err reports why the watch ended; nil while live or after a clean Close.
func (w *Watcher) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Stats reports the watch's delivery accounting. Remote watches (pipes)
// report only Events and Reloads; the tailer figures live server-side.
func (w *Watcher) Stats() WatcherStats {
	w.mu.Lock()
	st := WatcherStats{Events: w.events, Reloads: w.reloads}
	w.mu.Unlock()
	if w.s != nil {
		st.TailerStats = w.s.stats()
	}
	return st
}
