package cdc

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kc"
	"mlds/internal/mbds"
	"mlds/internal/txn"
)

// chaosSeen accumulates one watcher's view of the stream.
type chaosSeen struct {
	mu   sync.Mutex
	seen map[int64]int // x value -> delivery count
	errs []string
}

func (s *chaosSeen) record(x int64) {
	s.mu.Lock()
	s.seen[x]++
	s.mu.Unlock()
}

func (s *chaosSeen) fail(format string, args ...any) {
	s.mu.Lock()
	s.errs = append(s.errs, fmt.Sprintf(format, args...))
	s.mu.Unlock()
}

// covered reports whether every value in want has been delivered.
func (s *chaosSeen) covered(want map[int64]bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range want {
		if s.seen[v] == 0 {
			return false
		}
	}
	return true
}

// TestCDCChaos is the subsystem's -race chaos tier: concurrent writers (auto
// commits, explicit transactions, aborts) race elastic-membership churn —
// joins, rebalances, drains and outright backend kills — while watchers with
// deliberately starved buffers tail the commit stream through the journal
// resync path. Every acknowledged commit must reach every watcher exactly
// once; no aborted insert may ever surface.
func TestCDCChaos(t *testing.T) {
	dir := abdm.NewDirectory()
	for _, attr := range []string{"x", "y"} {
		if err := dir.DefineAttr(attr, abdm.KindInt); err != nil {
			t.Fatal(err)
		}
	}
	if err := dir.DefineFile("f", []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	cfg := mbds.DefaultConfig(3)
	cfg.Replicas = 1
	cfg.FaultInjection = true
	cfg.BreakerThreshold = 2
	cfg.ProbePeriod = time.Hour // a killed backend stays down until failover
	cfg.FailoverAfter = 60 * time.Millisecond
	cfg.FailoverCheck = 15 * time.Millisecond
	sys, err := mbds.New(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	c := kc.New(sys)
	jf, err := kc.OpenJournalFile(filepath.Join(t.TempDir(), "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachJournalFile(jf); err != nil {
		t.Fatal(err)
	}
	defer jf.Close()

	ins := func(x int64) *abdl.Request {
		return abdl.NewInsert(abdm.NewRecord("f",
			abdm.Keyword{Attr: "x", Val: abdm.Int(x)},
			abdm.Keyword{Attr: "y", Val: abdm.Int(x % 7)}))
	}
	retrieve := func(x int64) *abdl.Request {
		return abdl.NewRetrieve(abdm.And(
			abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(x)}), abdl.AllAttrs)
	}

	// Watchers open before the storm: one starved down to a single-slot
	// subscription (every burst overflows it, forcing journal resyncs), one
	// mildly buffered, one with defaults. All three must converge identically.
	def, err := ParseQuery("WATCH SELECT x, y FROM f WHERE x >= 0")
	if err != nil {
		t.Fatal(err)
	}
	watchOpts := []Options{
		{Buffer: 1, SubBuffer: 1, Poll: 2 * time.Millisecond},
		{Buffer: 4, SubBuffer: 8, Poll: 5 * time.Millisecond},
		{},
	}
	// The starved watcher's consumer dawdles on every event so its one-slot
	// subscription genuinely overflows: drops, then journal resyncs, are the
	// path under test. The delays are atomic because the starvation phase
	// below turns the dawdle up while the consumers are running.
	delays := make([]atomic.Int64, len(watchOpts))
	delays[0].Store(int64(500 * time.Microsecond))
	watchers := make([]*Watcher, len(watchOpts))
	views := make([]*chaosSeen, len(watchOpts))
	var consumers sync.WaitGroup
	for i, o := range watchOpts {
		w, err := Open(c, def, o)
		if err != nil {
			t.Fatal(err)
		}
		watchers[i] = w
		s := &chaosSeen{seen: make(map[int64]int)}
		views[i] = s
		consumers.Add(1)
		go func(i int, w *Watcher, s *chaosSeen) {
			defer consumers.Done()
			ready := false
			for ch := range w.C {
				if d := delays[i].Load(); d > 0 {
					time.Sleep(time.Duration(d))
				}
				switch ch.Op {
				case OpLoad:
					if ready {
						s.fail("watcher %d: load row after ready", i)
					}
					v, _ := ch.Rec.Get("x")
					s.record(v.AsInt())
				case OpReady:
					ready = true
				case OpInsert:
					if !ready {
						s.fail("watcher %d: insert before ready", i)
					}
					v, _ := ch.Rec.Get("x")
					s.record(v.AsInt())
				case OpResync:
					// The journal is never compacted here (no checkpointer
					// runs), so a resync marker means the tailer lost its
					// place — a correctness bug, not a tuning artifact.
					s.fail("watcher %d: unexpected resync", i)
				default:
					s.fail("watcher %d: unexpected %s", i, ch.Op)
				}
			}
		}(i, w, s)
	}

	// The write storm: inserts acknowledged to workers are the ground truth
	// the watchers must reproduce; aborted inserts must vanish.
	const workers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	type workerState struct {
		committed []int64
		aborted   []int64
		failures  []error
	}
	states := make([]workerState, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &states[w]
			next := int64(w)*1_000_000 + 1
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 4 {
				case 0, 1: // auto-commit insert
					next++
					if _, err := c.Exec(ins(next)); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					st.committed = append(st.committed, next)
				case 2: // explicit transaction, committed
					tx := c.Txns().Begin()
					ctx := txn.NewContext(context.Background(), tx)
					a, b := next+1, next+2
					next += 2
					if _, err := c.ExecCtx(ctx, ins(a)); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					if _, err := c.ExecCtx(ctx, ins(b)); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					if err := c.Txns().Commit(tx); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					st.committed = append(st.committed, a, b)
				case 3: // aborted transaction: the insert must never surface
					tx := c.Txns().Begin()
					ctx := txn.NewContext(context.Background(), tx)
					next++
					if _, err := c.ExecCtx(ctx, ins(next)); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					if err := c.Txns().Abort(tx); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					st.aborted = append(st.aborted, next)
				}
			}
		}(w)
	}

	// The chaos script: grow, rebalance, drain, kill — the fleet always
	// recovering — while the storm and the watchers run.
	waitBackends := func(n int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for sys.Backends() != n {
			if time.Now().After(deadline) {
				t.Fatalf("fleet stuck at %d backends, want %d (health %v)",
					sys.Backends(), n, sys.Health())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	for round := 0; round < 2; round++ {
		pos, err := sys.AddBackend()
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Rebalance(pos); err != nil {
			t.Fatal(err)
		}
		if err := sys.DrainBackend(1); err != nil {
			t.Fatal(err)
		}
		n := sys.Backends()
		sys.Fault(n - 1).Fail(true)
		for i := 0; i < 4; i++ {
			_, _ = c.Exec(retrieve(-1))
			time.Sleep(5 * time.Millisecond)
		}
		waitBackends(n - 1)
		if _, err := sys.AddBackend(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	for w := range states {
		if len(states[w].failures) > 0 {
			t.Fatalf("worker %d: %d failed requests, first: %v",
				w, len(states[w].failures), states[w].failures[0])
		}
	}
	acked := make(map[int64]bool)
	aborted := make(map[int64]bool)
	for w := range states {
		for _, v := range states[w].committed {
			acked[v] = true
		}
		for _, v := range states[w].aborted {
			aborted[v] = true
		}
	}

	// Deterministic starvation: if the storm alone never overflowed the
	// starved watcher's one-slot subscription (its consumer can keep pace on
	// a fast machine), stall that consumer outright and burst auto-commits at
	// it until the publisher provably drops. The burst values join the ground
	// truth, so the convergence check below is exactly the losslessness
	// claim: dropped records must come back through the journal resync.
	if watchers[0].Stats().Dropped == 0 {
		delays[0].Store(int64(5 * time.Millisecond))
		next := int64(9_000_000)
		for burst := 0; watchers[0].Stats().Dropped == 0 && burst < 512; burst++ {
			next++
			if _, err := c.Exec(ins(next)); err != nil {
				t.Fatalf("starvation burst insert: %v", err)
			}
			acked[next] = true
		}
		delays[0].Store(int64(500 * time.Microsecond))
		if watchers[0].Stats().Dropped == 0 {
			t.Fatalf("starved watcher survived a %d-commit burst without dropping (stats %+v); tighten its buffers",
				512, watchers[0].Stats())
		}
	}

	// Convergence: every watcher eventually holds every acknowledged commit.
	deadline := time.Now().Add(30 * time.Second)
	for i, s := range views {
		for !s.covered(acked) {
			if time.Now().After(deadline) {
				s.mu.Lock()
				missing := 0
				for v := range acked {
					if s.seen[v] == 0 {
						missing++
					}
				}
				s.mu.Unlock()
				t.Fatalf("watcher %d: %d of %d acknowledged commits undelivered (stats %+v)",
					i, missing, len(acked), watchers[i].Stats())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	for _, w := range watchers {
		w.Close()
	}
	consumers.Wait()

	// Exactness: delivered exactly once, nothing aborted, nothing invented.
	for i, s := range views {
		for _, msg := range s.errs {
			t.Error(msg)
		}
		for v := range acked {
			if n := s.seen[v]; n != 1 {
				t.Errorf("watcher %d: committed value %d delivered %d times", i, v, n)
			}
		}
		for v, n := range s.seen {
			if aborted[v] {
				t.Errorf("watcher %d: aborted value %d surfaced %d times", i, v, n)
			} else if !acked[v] {
				t.Errorf("watcher %d: unknown value %d delivered %d times", i, v, n)
			}
		}
		if t.Failed() {
			t.Fatalf("watcher %d diverged: %d committed, %d delivered (stats %+v)",
				i, len(acked), len(s.seen), watchers[i].Stats())
		}
	}
	// The starved watcher must actually have exercised the resync path —
	// otherwise the test proved nothing about losslessness under drops. The
	// starvation phase above guarantees Dropped > 0.
	if st := watchers[0].Stats(); st.Dropped == 0 || st.Resyncs == 0 {
		t.Errorf("starved watcher never dropped/resynced (stats %+v); tighten its buffers", st)
	}
}
