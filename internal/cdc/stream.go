package cdc

import (
	"context"
	"fmt"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kc"
	"mlds/internal/txn"
)

// stream is the shared engine under watchers and views: a snapshot-consistent
// load followed by a lossless tail, with a mirror of the watched file so
// UPDATE deltas resolve to full post-images and predicate-membership
// transitions become inserts and deletes. A stream is single-goroutine: the
// owner calls load once (and again after a compaction resync), then next in
// a loop.
type stream struct {
	ctrl   *kc.Controller
	def    Def
	tailer *Tailer
	mirror map[uint64]*abdm.Record // every live record of the watched file
}

func newStream(ctrl *kc.Controller, def Def, buf int, poll time.Duration) *stream {
	// Subscribe before snapshotting: every commit past the snapshot's
	// position is then either on the subscription or recoverable from the
	// journal — nothing can fall between the snapshot and the tail.
	return &stream{
		ctrl:   ctrl,
		def:    def,
		tailer: NewTailer(ctrl, buf, poll),
		mirror: make(map[uint64]*abdm.Record),
	}
}

// load pins a snapshot, reads the watched file through it, anchors the
// tailer at the snapshot's journal position, and emits the initial result —
// OpLoad per matching row, closed by OpReady at the snapshot epoch. emit
// returning false aborts (the owner is shutting down).
func (s *stream) load(ctx context.Context, emit func(Change) bool) error {
	tx, pos := s.ctrl.WatchSnapshot()
	defer s.ctrl.Txns().Commit(tx)
	epoch := tx.SnapshotEpoch()

	req := abdl.NewRetrieve(abdm.Query{{abdm.Predicate{
		Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(s.def.File),
	}}}, abdl.AllAttrs)
	res, err := s.ctrl.ExecCtx(txn.NewContext(ctx, tx), req)
	if err != nil {
		return fmt.Errorf("cdc: initial load of %s: %w", s.def.File, err)
	}
	s.mirror = make(map[uint64]*abdm.Record, len(res.Records))
	for _, sr := range res.Records {
		id := uint64(sr.ID)
		s.mirror[id] = sr.Rec
		if !s.def.matches(sr.Rec) {
			continue
		}
		if !emit(Change{Op: OpLoad, File: s.def.File, ID: id, Rec: s.def.project(sr.Rec), Pos: pos, Epoch: epoch}) {
			return ErrClosed
		}
	}
	s.tailer.Reset(pos)
	if !emit(Change{Op: OpReady, File: s.def.File, Pos: pos, Epoch: epoch}) {
		return ErrClosed
	}
	return nil
}

// next waits for the tail to advance and returns the resulting row changes
// (possibly none — entries for other files still advance the position).
// The second result is the new journal position. kc.ErrCompacted means the
// owner must clear state, emit OpResync and call load again.
func (s *stream) next(quit <-chan struct{}) ([]Change, uint64, error) {
	entries, err := s.tailer.Next(quit)
	if err != nil {
		return nil, s.tailer.Stats().Pos, err
	}
	var out []Change
	for _, e := range entries {
		out = s.apply(e, out)
	}
	return out, s.tailer.Stats().Pos, nil
}

// apply folds one committed journal entry into the mirror and appends the
// row changes it implies for the watched query.
func (s *stream) apply(e Entry, out []Change) []Change {
	req, err := e.Rec.Req.ToRequest()
	if err != nil {
		return out // unknown/corrupt request forms carry no row semantics
	}
	switch req.Kind {
	case abdl.Insert:
		if req.Record == nil || req.Record.File() != s.def.File {
			return out
		}
		id := uint64(req.ForceID)
		if id == 0 && len(e.Rec.Affected) > 0 {
			id = e.Rec.Affected[0]
		}
		if id == 0 {
			return out
		}
		rec := req.Record.Clone()
		s.mirror[id] = rec
		if s.def.matches(rec) {
			out = append(out, s.change(OpInsert, id, rec, e))
		}
	case abdl.Update:
		if !s.queryTouches(req.Query) {
			return out
		}
		for _, id := range e.Rec.Affected {
			old, ok := s.mirror[id]
			if !ok {
				continue // a key of another file sharing the qualification
			}
			rec := old.Clone()
			for _, m := range req.Mods {
				rec.Set(m.Attr, m.Val)
			}
			s.mirror[id] = rec
			was, is := s.def.matches(old), s.def.matches(rec)
			switch {
			case !was && is:
				out = append(out, s.change(OpInsert, id, rec, e))
			case was && !is:
				out = append(out, s.change(OpDelete, id, nil, e))
			case was && is:
				out = append(out, s.change(OpUpdate, id, rec, e))
			}
		}
	case abdl.Delete:
		if !s.queryTouches(req.Query) && req.ForceID == 0 {
			return out
		}
		for _, id := range e.Rec.Affected {
			old, ok := s.mirror[id]
			if !ok {
				continue
			}
			delete(s.mirror, id)
			if s.def.matches(old) {
				out = append(out, s.change(OpDelete, id, nil, e))
			}
		}
	}
	return out
}

func (s *stream) change(op Op, id uint64, rec *abdm.Record, e Entry) Change {
	c := Change{Op: op, File: s.def.File, ID: id, Pos: e.Pos, Epoch: e.Epoch, Txn: e.Txn}
	if rec != nil {
		c.Rec = s.def.project(rec)
	}
	return c
}

// queryTouches reports whether a mutation's qualification can reach the
// watched file. An unconfined query (no leading FILE predicate in some
// conjunction) conservatively touches everything.
func (s *stream) queryTouches(q abdm.Query) bool {
	files, ok := q.Files()
	if !ok {
		return true
	}
	for _, f := range files {
		if f == s.def.File {
			return true
		}
	}
	return false
}

// close releases the tail subscription.
func (s *stream) close() { s.tailer.Close() }

// stats exposes the tailer's accounting.
func (s *stream) stats() TailerStats { return s.tailer.Stats() }
