// Package cdc is the change-data-capture subsystem of the multi-lingual
// database system: it turns journal v2 — the totally-ordered, durable
// committed-transaction stream behind group commit — into consumable change
// feeds and incrementally-maintained materialized views.
//
// Three layers stack on the journal:
//
//   - Tailer: a lossless cursor over the commit stream. It rides
//     txn.Manager.SubscribeCommits for the live path, and when the
//     subscription's buffer drops records (publication never blocks commits)
//     it detects the gap from the per-record journal positions and re-reads
//     exactly the missed range from the journal file (kc.ReadCommitted).
//     Delivery is therefore gap-free and duplicate-free as long as the
//     journal retains the range; a checkpoint rotation that truncates past
//     the cursor surfaces as ErrCompacted, the signal to rebuild from a
//     fresh snapshot.
//
//   - Watcher: WATCH <query> — a snapshot-consistent initial load (OpLoad
//     rows then OpReady, pinned at one MVCC epoch via kc.WatchSnapshot)
//     followed by exactly the committed changes past that epoch, expressed
//     as row-level inserts, updates and deletes against the query's
//     predicate. Membership transitions are computed against a mirror of the
//     watched file, so a record UPDATEd into (or out of) the predicate
//     arrives as an insert (or delete).
//
//   - View: CREATE VIEW v AS <query> — a Watcher whose changes are applied
//     against the view's own kdb store, keyed by the base records' database
//     keys. View contents equal a full recomputation of the query at every
//     quiescent point, at incremental cost.
//
// All of it is cross-model by construction: the query names a kernel file,
// and every data model of the system (relational, functional, network,
// hierarchical, raw ABDL) stores its records in kernel files — so a
// relational-style view can be maintained over a functional database's
// changes, the Multi-SQL direction the MLDS thesis points at.
package cdc

import (
	"fmt"

	"mlds/internal/abdm"
)

// Op classifies one change event.
type Op byte

// Change operations. Load rows arrive first, closed by one Ready carrying
// the snapshot epoch; Insert/Update/Delete follow in commit order. Resync
// announces that the journal was compacted past the watcher's position and a
// fresh snapshot-consistent load (Load... Ready) follows.
const (
	OpLoad Op = iota
	OpReady
	OpInsert
	OpUpdate
	OpDelete
	OpResync
)

var opNames = [...]string{"load", "ready", "insert", "update", "delete", "resync"}

// String names the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Change is one event on a watch: a row entering, changing within, or
// leaving the watched query's result, or a lifecycle marker (Ready, Resync).
type Change struct {
	Op   Op
	File string // watched kernel file
	ID   uint64 // database key of the row (Load/Insert/Update/Delete)
	// Rec is the projected post-image for Load/Insert/Update; nil for
	// Delete and the lifecycle markers.
	Rec *abdm.Record
	// Pos is the journal position the change was produced at (for
	// Load/Ready: the snapshot's position). Positions are non-decreasing on
	// one watch, so consumers can checkpoint their progress.
	Pos uint64
	// Epoch is the commit epoch (Ready: the snapshot epoch; 0 on changes
	// replayed from the journal, which stores no epochs).
	Epoch uint64
	// Txn is the committing transaction's id (0 for Load/Ready/Resync and
	// legacy auto-committed entries).
	Txn uint64
}

// String renders the change for logs and rendered watch output.
func (c Change) String() string {
	switch c.Op {
	case OpReady:
		return fmt.Sprintf("ready epoch=%d", c.Epoch)
	case OpResync:
		return "resync"
	case OpDelete:
		return fmt.Sprintf("delete %s id=%d", c.File, c.ID)
	}
	return fmt.Sprintf("%s %s id=%d %s", c.Op, c.File, c.ID, renderRec(c.Rec))
}

func renderRec(r *abdm.Record) string {
	if r == nil {
		return "<nil>"
	}
	s := "("
	for i, attr := range r.Attrs() {
		if attr == abdm.FileAttr {
			continue
		}
		if i > 0 && len(s) > 1 {
			s += ", "
		}
		v, _ := r.Get(attr)
		s += fmt.Sprintf("%s=%s", attr, v)
	}
	return s + ")"
}
