package cdc

import (
	"fmt"
	"strings"

	"mlds/internal/abdm"
	"mlds/internal/sql"
)

// Def defines what a watch or view observes: one kernel file, a predicate in
// disjunctive normal form over its attributes, and a projection. The query
// form is the SQL subset (SELECT cols FROM file [WHERE ...]), but the file
// it names is a kernel file — which every data model's records live in — so
// the same definition watches relational tables, Daplex entity sets, CODASYL
// record types or DL/I segments alike.
type Def struct {
	File  string
	Where abdm.Query // predicate without the (FILE = ...) conjunct; nil = all rows
	Cols  []string   // projection; nil = every attribute
}

// CompileSelect compiles a parsed SELECT into a watchable definition.
// Aggregates, GROUP BY and ORDER BY have no incremental row-delta form and
// are rejected.
func CompileSelect(st *sql.Select) (Def, error) {
	d := Def{File: st.Table}
	if d.File == "" {
		return Def{}, fmt.Errorf("cdc: query names no file")
	}
	if st.GroupBy != "" {
		return Def{}, fmt.Errorf("cdc: GROUP BY cannot be watched incrementally")
	}
	if st.OrderBy != "" {
		return Def{}, fmt.Errorf("cdc: ORDER BY has no meaning on a change stream")
	}
	for _, it := range st.Items {
		if it.Agg != sql.AggNone {
			return Def{}, fmt.Errorf("cdc: aggregate %s cannot be watched incrementally", it)
		}
		if it.Column == "*" {
			d.Cols = nil
			break
		}
		d.Cols = append(d.Cols, it.Column)
	}
	for _, conds := range st.Where {
		var conj abdm.Conjunction
		for _, c := range conds {
			conj = append(conj, abdm.Predicate{Attr: c.Column, Op: c.Op, Val: c.Val})
		}
		d.Where = append(d.Where, conj)
	}
	return d, nil
}

// ParseQuery compiles a SQL-subset query text ("SELECT ... FROM file
// [WHERE ...]", with an optional leading WATCH keyword) into a Def.
func ParseQuery(text string) (Def, error) {
	text = strings.TrimSpace(text)
	if rest, ok := cutKeyword(text, "WATCH"); ok {
		text = rest
	}
	st, err := sql.Parse(text)
	if err != nil {
		return Def{}, err
	}
	sel, ok := st.(*sql.Select)
	if !ok {
		if w, isWatch := st.(*sql.Watch); isWatch {
			return CompileSelect(w.Inner)
		}
		return Def{}, fmt.Errorf("cdc: only SELECT queries can be watched, not %T", st)
	}
	return CompileSelect(sel)
}

// cutKeyword strips one leading keyword (case-insensitive, word-bounded).
func cutKeyword(text, kw string) (string, bool) {
	if len(text) < len(kw) || !strings.EqualFold(text[:len(kw)], kw) {
		return text, false
	}
	rest := text[len(kw):]
	if rest != "" && !isSpace(rest[0]) {
		return text, false
	}
	return strings.TrimSpace(rest), true
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

// matches reports whether a record of the watched file satisfies the
// definition's predicate.
func (d Def) matches(r *abdm.Record) bool {
	if r == nil || r.File() != d.File {
		return false
	}
	if len(d.Where) == 0 {
		return true
	}
	return d.Where.Matches(r)
}

// project builds the watched row image: the definition's columns (or every
// attribute), always carrying the FILE keyword so the image is itself a
// valid kernel record of the watched file.
func (d Def) project(r *abdm.Record) *abdm.Record {
	if d.Cols == nil {
		return r.Clone()
	}
	out := abdm.NewRecord(d.File)
	for _, col := range d.Cols {
		if v, ok := r.Get(col); ok {
			out.Set(col, v)
		} else {
			out.Set(col, abdm.Null())
		}
	}
	return out
}

// String renders the definition as its canonical query text.
func (d Def) String() string {
	cols := "*"
	if d.Cols != nil {
		cols = strings.Join(d.Cols, ", ")
	}
	s := fmt.Sprintf("SELECT %s FROM %s", cols, d.File)
	if len(d.Where) > 0 {
		s += " WHERE " + d.Where.String()
	}
	return s
}
