// Package hiemodel implements the hierarchical data model for the MLDS DL/I
// language interface: a forest of segment types, each with typed fields and
// at most one parent — the IMS-style database description (DBD).
package hiemodel

import (
	"fmt"
	"strconv"
	"strings"
)

// FieldType classifies segment fields.
type FieldType byte

// Field types.
const (
	FieldInt    FieldType = 'I'
	FieldFloat  FieldType = 'F'
	FieldString FieldType = 'C'
)

// String returns the DBD spelling.
func (t FieldType) String() string {
	switch t {
	case FieldInt:
		return "INT"
	case FieldFloat:
		return "FLOAT"
	case FieldString:
		return "CHAR"
	default:
		return fmt.Sprintf("fieldtype(%c)", byte(t))
	}
}

// Field is one segment field.
type Field struct {
	Name   string
	Type   FieldType
	Length int
}

// Segment is one segment type.
type Segment struct {
	Name   string
	Parent string // "" for root segments
	Fields []*Field
}

// Field returns the named field.
func (s *Segment) Field(name string) (*Field, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// Schema is a hierarchical database description: segments in declaration
// order, which defines the hierarchic (preorder sibling) order.
type Schema struct {
	Name     string
	Segments []*Segment
}

// Segment returns the named segment type.
func (s *Schema) Segment(name string) (*Segment, bool) {
	for _, seg := range s.Segments {
		if seg.Name == name {
			return seg, true
		}
	}
	return nil, false
}

// Children lists the child segment types of the named segment (or the roots
// for ""), in declaration order.
func (s *Schema) Children(parent string) []*Segment {
	var out []*Segment
	for _, seg := range s.Segments {
		if seg.Parent == parent {
			out = append(out, seg)
		}
	}
	return out
}

// Roots lists the root segment types in declaration order.
func (s *Schema) Roots() []*Segment { return s.Children("") }

// AncestorPath returns the segment names from the root down to (and
// including) the named segment.
func (s *Schema) AncestorPath(name string) ([]string, bool) {
	var path []string
	cur := name
	for cur != "" {
		seg, ok := s.Segment(cur)
		if !ok {
			return nil, false
		}
		path = append([]string{cur}, path...)
		cur = seg.Parent
	}
	return path, true
}

// Validate checks segment-name uniqueness, parent resolution, acyclicity and
// field sanity.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("hiemodel: schema has no name")
	}
	segs := make(map[string]*Segment)
	for _, seg := range s.Segments {
		if seg.Name == "" {
			return fmt.Errorf("hiemodel: segment with empty name")
		}
		if _, dup := segs[seg.Name]; dup {
			return fmt.Errorf("hiemodel: duplicate segment %q", seg.Name)
		}
		segs[seg.Name] = seg
		fields := make(map[string]bool)
		for _, f := range seg.Fields {
			if f.Name == "" {
				return fmt.Errorf("hiemodel: segment %q has a field with no name", seg.Name)
			}
			if fields[f.Name] {
				return fmt.Errorf("hiemodel: segment %q declares field %q twice", seg.Name, f.Name)
			}
			fields[f.Name] = true
			switch f.Type {
			case FieldInt, FieldFloat, FieldString:
			default:
				return fmt.Errorf("hiemodel: segment %q field %q has invalid type", seg.Name, f.Name)
			}
		}
	}
	for _, seg := range s.Segments {
		if seg.Parent == "" {
			continue
		}
		if _, ok := segs[seg.Parent]; !ok {
			return fmt.Errorf("hiemodel: segment %q names unknown parent %q", seg.Name, seg.Parent)
		}
		// Acyclic: walking parents must reach a root.
		seen := map[string]bool{}
		cur := seg.Name
		for cur != "" {
			if seen[cur] {
				return fmt.Errorf("hiemodel: parent cycle through %q", cur)
			}
			seen[cur] = true
			cur = segs[cur].Parent
		}
	}
	if len(s.Roots()) == 0 {
		return fmt.Errorf("hiemodel: schema has no root segment")
	}
	return nil
}

// DBD renders the schema as the textual DBD accepted by Parse.
func (s *Schema) DBD() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DBD NAME IS %s\n", s.Name)
	for _, seg := range s.Segments {
		fmt.Fprintf(&b, "\nSEGMENT NAME IS %s", seg.Name)
		if seg.Parent != "" {
			fmt.Fprintf(&b, " PARENT IS %s", seg.Parent)
		}
		b.WriteString("\n")
		for _, f := range seg.Fields {
			fmt.Fprintf(&b, "    FIELD %s %s", f.Name, f.Type)
			if f.Type == FieldString && f.Length > 0 {
				fmt.Fprintf(&b, " %d", f.Length)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Parse parses a textual DBD.
func Parse(src string) (*Schema, error) {
	var s *Schema
	var cur *Segment
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "--") || strings.HasPrefix(line, "*") {
			continue
		}
		errf := func(format string, args ...any) error {
			return fmt.Errorf("hiemodel: line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		switch {
		case hasPrefixFold(line, "DBD NAME IS"):
			if s != nil {
				return nil, errf("duplicate DBD NAME IS")
			}
			name := strings.TrimSpace(line[len("DBD NAME IS"):])
			if name == "" {
				return nil, errf("DBD NAME IS requires a name")
			}
			s = &Schema{Name: name}
		case hasPrefixFold(line, "SEGMENT NAME IS"):
			if s == nil {
				return nil, errf("SEGMENT before DBD NAME IS")
			}
			rest := strings.TrimSpace(line[len("SEGMENT NAME IS"):])
			cur = &Segment{}
			if idx := indexFold(rest, "PARENT IS"); idx >= 0 {
				cur.Name = strings.TrimSpace(rest[:idx])
				cur.Parent = strings.TrimSpace(rest[idx+len("PARENT IS"):])
			} else {
				cur.Name = rest
			}
			if cur.Name == "" {
				return nil, errf("SEGMENT NAME IS requires a name")
			}
			s.Segments = append(s.Segments, cur)
		case hasPrefixFold(line, "FIELD"):
			if cur == nil {
				return nil, errf("FIELD outside a segment")
			}
			parts := strings.Fields(line)
			if len(parts) < 3 {
				return nil, errf("FIELD requires a name and a type")
			}
			f := &Field{Name: parts[1]}
			switch strings.ToUpper(parts[2]) {
			case "INT", "INTEGER", "FIXED":
				f.Type = FieldInt
			case "FLOAT", "REAL":
				f.Type = FieldFloat
			case "CHAR", "CHARACTER":
				f.Type = FieldString
			default:
				return nil, errf("unknown field type %q", parts[2])
			}
			if len(parts) > 3 {
				n, err := strconv.Atoi(parts[3])
				if err != nil || n <= 0 {
					return nil, errf("bad field length %q", parts[3])
				}
				f.Length = n
			}
			cur.Fields = append(cur.Fields, f)
		default:
			return nil, errf("cannot parse %q", line)
		}
	}
	if s == nil {
		return nil, fmt.Errorf("hiemodel: no DBD NAME IS declaration found")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func hasPrefixFold(s, prefix string) bool {
	return len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix)
}

func indexFold(s, sub string) int {
	up := strings.ToUpper(s)
	return strings.Index(up, strings.ToUpper(sub))
}
