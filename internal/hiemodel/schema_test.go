package hiemodel

import (
	"strings"
	"testing"
)

const schoolDBD = `
DBD NAME IS school

SEGMENT NAME IS dept
    FIELD dname CHAR 20
    FIELD floor INT

SEGMENT NAME IS course PARENT IS dept
    FIELD title CHAR 30

SEGMENT NAME IS enroll PARENT IS course
    FIELD sname CHAR 20
    FIELD grade FLOAT
`

func TestParseDBD(t *testing.T) {
	s, err := Parse(schoolDBD)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "school" || len(s.Segments) != 3 {
		t.Fatalf("schema = %+v", s)
	}
	course, ok := s.Segment("course")
	if !ok || course.Parent != "dept" {
		t.Fatalf("course = %+v", course)
	}
	dname, _ := mustSeg(t, s, "dept").Field("dname")
	if dname == nil || dname.Type != FieldString || dname.Length != 20 {
		t.Errorf("dname = %+v", dname)
	}
	grade, _ := mustSeg(t, s, "enroll").Field("grade")
	if grade == nil || grade.Type != FieldFloat {
		t.Errorf("grade = %+v", grade)
	}
}

func mustSeg(t *testing.T, s *Schema, name string) *Segment {
	t.Helper()
	seg, ok := s.Segment(name)
	if !ok {
		t.Fatalf("segment %q missing", name)
	}
	return seg
}

func TestChildrenAndRoots(t *testing.T) {
	s, _ := Parse(schoolDBD)
	roots := s.Roots()
	if len(roots) != 1 || roots[0].Name != "dept" {
		t.Fatalf("roots = %v", roots)
	}
	kids := s.Children("dept")
	if len(kids) != 1 || kids[0].Name != "course" {
		t.Fatalf("children = %v", kids)
	}
	path, ok := s.AncestorPath("enroll")
	if !ok || strings.Join(path, "/") != "dept/course/enroll" {
		t.Fatalf("path = %v", path)
	}
	if _, ok := s.AncestorPath("nosuch"); ok {
		t.Error("phantom path")
	}
}

func TestDBDRoundTrip(t *testing.T) {
	s1, err := Parse(schoolDBD)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(s1.DBD())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s1.DBD())
	}
	if s2.DBD() != s1.DBD() {
		t.Error("DBD round trip unstable")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := map[string]string{
		"no dbd":        "SEGMENT NAME IS x",
		"dup dbd":       "DBD NAME IS a\nDBD NAME IS b",
		"dup segment":   "DBD NAME IS d\nSEGMENT NAME IS x\nSEGMENT NAME IS x",
		"ghost parent":  "DBD NAME IS d\nSEGMENT NAME IS x PARENT IS nosuch",
		"cycle":         "DBD NAME IS d\nSEGMENT NAME IS a PARENT IS b\nSEGMENT NAME IS b PARENT IS a",
		"no root":       "DBD NAME IS d",
		"dup field":     "DBD NAME IS d\nSEGMENT NAME IS x\nFIELD a INT\nFIELD a CHAR",
		"bad type":      "DBD NAME IS d\nSEGMENT NAME IS x\nFIELD a BLOB",
		"bad length":    "DBD NAME IS d\nSEGMENT NAME IS x\nFIELD a CHAR zero",
		"field outside": "DBD NAME IS d\nFIELD a INT",
		"garbage":       "DBD NAME IS d\nWHAT IS THIS",
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMultiRootForest(t *testing.T) {
	s, err := Parse("DBD NAME IS f\nSEGMENT NAME IS a\nFIELD x INT\nSEGMENT NAME IS b\nFIELD y INT\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Roots()) != 2 {
		t.Errorf("roots = %v", s.Roots())
	}
}
