// Package netmodel implements the CODASYL network data model: record types
// with typed data items, and set types — one-to-many relationships with an
// owner record type, a member record type, and insertion, retention and
// selection rules. The structures mirror the thesis's shared network data
// structures (net_dbid_node, nrec_node, nattr_node, nset_node,
// set_select_node).
package netmodel

import (
	"fmt"
	"strings"
)

// SystemOwner is the distinguished owner of singular sets: every record type
// transformed from a functional entity type is a member of a set owned by
// SYSTEM.
const SystemOwner = "SYSTEM"

// AttrType classifies network data items, mirroring the nattr_node type
// flags: integer, floating point, or character string.
type AttrType byte

// Attribute types.
const (
	AttrInt    AttrType = 'I'
	AttrFloat  AttrType = 'F'
	AttrString AttrType = 'C'
)

// String returns the CODASYL DDL spelling of the type.
func (t AttrType) String() string {
	switch t {
	case AttrInt:
		return "FIXED"
	case AttrFloat:
		return "FLOAT"
	case AttrString:
		return "CHARACTER"
	default:
		return fmt.Sprintf("type(%c)", byte(t))
	}
}

// InsertMode is a set's insertion rule (nsn_insert_mode).
type InsertMode byte

// Insertion modes.
const (
	InsertAutomatic InsertMode = 'a'
	InsertManual    InsertMode = 'm'
)

// String returns the DDL spelling.
func (m InsertMode) String() string {
	if m == InsertAutomatic {
		return "AUTOMATIC"
	}
	return "MANUAL"
}

// RetentionMode is a set's retention rule (nsn_retent_mode).
type RetentionMode byte

// Retention modes.
const (
	RetentionFixed     RetentionMode = 'f'
	RetentionMandatory RetentionMode = 'm'
	RetentionOptional  RetentionMode = 'o'
)

// String returns the DDL spelling.
func (m RetentionMode) String() string {
	switch m {
	case RetentionFixed:
		return "FIXED"
	case RetentionMandatory:
		return "MANDATORY"
	default:
		return "OPTIONAL"
	}
}

// SelectMode is a set's selection rule (set_select_node).
type SelectMode byte

// Selection modes.
const (
	SelectByValue       SelectMode = 'v'
	SelectByStructural  SelectMode = 's'
	SelectByApplication SelectMode = 'a'
)

// String returns the DDL spelling.
func (m SelectMode) String() string {
	switch m {
	case SelectByValue:
		return "BY VALUE"
	case SelectByStructural:
		return "BY STRUCTURAL"
	default:
		return "BY APPLICATION"
	}
}

// Attribute is one data item of a record type (nattr_node).
type Attribute struct {
	Name      string
	Level     int // COBOL-style level number; 2 for ordinary items
	Type      AttrType
	Length    int  // maximum value length
	DecLength int  // decimal places, for floats
	DupFlag   bool // true = duplicates allowed (the nan_dup_flag default)
}

// RecordType is a network record type (nrec_node).
type RecordType struct {
	Name       string
	Attributes []*Attribute
}

// Attribute returns the named data item.
func (r *RecordType) Attribute(name string) (*Attribute, bool) {
	for _, a := range r.Attributes {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// NoDupAttrs lists the data items flagged DUPLICATES ARE NOT ALLOWED.
func (r *RecordType) NoDupAttrs() []string {
	var out []string
	for _, a := range r.Attributes {
		if !a.DupFlag {
			out = append(out, a.Name)
		}
	}
	return out
}

// SetType is a network set type (nset_node): a named one-to-many
// relationship from one owner record type to one member record type.
type SetType struct {
	Name      string
	Owner     string // record type name or SystemOwner
	Member    string
	Insertion InsertMode
	Retention RetentionMode
	Selection SelectMode
}

// SystemOwned reports whether the set is owned by SYSTEM.
func (s *SetType) SystemOwned() bool { return s.Owner == SystemOwner }

// Schema is a network database schema (net_dbid_node): records and sets.
type Schema struct {
	Name    string
	Records []*RecordType
	Sets    []*SetType
}

// Record returns the named record type.
func (s *Schema) Record(name string) (*RecordType, bool) {
	for _, r := range s.Records {
		if r.Name == name {
			return r, true
		}
	}
	return nil, false
}

// Set returns the named set type.
func (s *Schema) Set(name string) (*SetType, bool) {
	for _, st := range s.Sets {
		if st.Name == name {
			return st, true
		}
	}
	return nil, false
}

// SetsOwnedBy lists the sets whose owner is the named record type.
func (s *Schema) SetsOwnedBy(owner string) []*SetType {
	var out []*SetType
	for _, st := range s.Sets {
		if st.Owner == owner {
			out = append(out, st)
		}
	}
	return out
}

// SetsWithMember lists the sets whose member is the named record type.
func (s *Schema) SetsWithMember(member string) []*SetType {
	var out []*SetType
	for _, st := range s.Sets {
		if st.Member == member {
			out = append(out, st)
		}
	}
	return out
}

// Validate checks schema integrity: unique record and set names, set owners
// and members resolving to record types (or SYSTEM for owners), and data
// items unique within their record.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("netmodel: schema has no name")
	}
	recs := make(map[string]bool)
	for _, r := range s.Records {
		if r.Name == "" {
			return fmt.Errorf("netmodel: record type with empty name")
		}
		if recs[r.Name] {
			return fmt.Errorf("netmodel: duplicate record type %q", r.Name)
		}
		recs[r.Name] = true
		attrs := make(map[string]bool)
		for _, a := range r.Attributes {
			if a.Name == "" {
				return fmt.Errorf("netmodel: record %q has a data item with no name", r.Name)
			}
			if attrs[a.Name] {
				return fmt.Errorf("netmodel: record %q declares data item %q twice", r.Name, a.Name)
			}
			attrs[a.Name] = true
			switch a.Type {
			case AttrInt, AttrFloat, AttrString:
			default:
				return fmt.Errorf("netmodel: record %q item %q has invalid type %q", r.Name, a.Name, a.Type)
			}
		}
	}
	sets := make(map[string]bool)
	for _, st := range s.Sets {
		if st.Name == "" {
			return fmt.Errorf("netmodel: set type with empty name")
		}
		if sets[st.Name] {
			return fmt.Errorf("netmodel: duplicate set type %q", st.Name)
		}
		sets[st.Name] = true
		if !st.SystemOwned() && !recs[st.Owner] {
			return fmt.Errorf("netmodel: set %q names unknown owner %q", st.Name, st.Owner)
		}
		if !recs[st.Member] {
			return fmt.Errorf("netmodel: set %q names unknown member %q", st.Name, st.Member)
		}
		if st.Owner == st.Member {
			// Legal in CODASYL generally, but never produced by the
			// functional transformation; allow it.
			_ = st
		}
	}
	return nil
}

// String renders a compact summary.
func (s *Schema) String() string {
	return fmt.Sprintf("network schema %s: %d record types, %d set types", s.Name, len(s.Records), len(s.Sets))
}

// DDL renders the schema as CODASYL DDL text in the style of Figure 5.1.
func (s *Schema) DDL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCHEMA NAME IS %s\n", s.Name)
	for _, r := range s.Records {
		b.WriteString("\n")
		fmt.Fprintf(&b, "RECORD NAME IS %s\n", r.Name)
		for _, a := range r.Attributes {
			lvl := a.Level
			if lvl == 0 {
				lvl = 2
			}
			fmt.Fprintf(&b, "    %02d %s TYPE IS %s", lvl, a.Name, a.Type)
			switch a.Type {
			case AttrString:
				if a.Length > 0 {
					fmt.Fprintf(&b, " %d", a.Length)
				}
			case AttrFloat:
				if a.Length > 0 {
					fmt.Fprintf(&b, " %d", a.Length)
					if a.DecLength > 0 {
						fmt.Fprintf(&b, ",%d", a.DecLength)
					}
				}
			}
			b.WriteString("\n")
		}
		if nd := r.NoDupAttrs(); len(nd) > 0 {
			fmt.Fprintf(&b, "    DUPLICATES ARE NOT ALLOWED FOR %s\n", strings.Join(nd, ", "))
		}
	}
	for _, st := range s.Sets {
		b.WriteString("\n")
		fmt.Fprintf(&b, "SET NAME IS %s;\n", st.Name)
		fmt.Fprintf(&b, "    OWNER IS %s;\n", st.Owner)
		fmt.Fprintf(&b, "    MEMBER IS %s;\n", st.Member)
		fmt.Fprintf(&b, "    INSERTION IS %s;\n", st.Insertion)
		fmt.Fprintf(&b, "    RETENTION IS %s;\n", st.Retention)
		fmt.Fprintf(&b, "    SET SELECTION IS %s;\n", st.Selection)
	}
	return b.String()
}
