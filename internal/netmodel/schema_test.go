package netmodel

import (
	"strings"
	"testing"
)

func sampleSchema() *Schema {
	return &Schema{
		Name: "univ",
		Records: []*RecordType{
			{Name: "course", Attributes: []*Attribute{
				{Name: "title", Level: 2, Type: AttrString, Length: 30, DupFlag: false},
				{Name: "semester", Level: 2, Type: AttrString, Length: 10, DupFlag: false},
				{Name: "credits", Level: 2, Type: AttrInt, DupFlag: true},
				{Name: "rating", Level: 2, Type: AttrFloat, Length: 5, DecLength: 2, DupFlag: true},
			}},
			{Name: "faculty", Attributes: []*Attribute{
				{Name: "rank", Level: 2, Type: AttrString, Length: 10, DupFlag: true},
			}},
		},
		Sets: []*SetType{
			{Name: "system_course", Owner: SystemOwner, Member: "course",
				Insertion: InsertAutomatic, Retention: RetentionFixed, Selection: SelectByApplication},
			{Name: "teaching", Owner: "faculty", Member: "course",
				Insertion: InsertManual, Retention: RetentionOptional, Selection: SelectByApplication},
		},
	}
}

func TestSchemaValidateOK(t *testing.T) {
	if err := sampleSchema().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaValidateCatches(t *testing.T) {
	mutate := map[string]func(*Schema){
		"no name":    func(s *Schema) { s.Name = "" },
		"dup record": func(s *Schema) { s.Records = append(s.Records, &RecordType{Name: "course"}) },
		"dup set": func(s *Schema) {
			s.Sets = append(s.Sets, &SetType{Name: "teaching", Owner: "faculty", Member: "course"})
		},
		"bad owner":  func(s *Schema) { s.Sets[1].Owner = "ghost" },
		"bad member": func(s *Schema) { s.Sets[1].Member = "ghost" },
		"dup item": func(s *Schema) {
			r := s.Records[0]
			r.Attributes = append(r.Attributes, &Attribute{Name: "title", Type: AttrString})
		},
		"bad item type": func(s *Schema) { s.Records[0].Attributes[0].Type = 'X' },
	}
	for name, f := range mutate {
		s := sampleSchema()
		f(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSchemaLookups(t *testing.T) {
	s := sampleSchema()
	r, ok := s.Record("course")
	if !ok || r.Name != "course" {
		t.Fatal("Record lookup failed")
	}
	a, ok := r.Attribute("credits")
	if !ok || a.Type != AttrInt {
		t.Fatal("Attribute lookup failed")
	}
	if _, ok := r.Attribute("ghost"); ok {
		t.Error("phantom attribute")
	}
	st, ok := s.Set("teaching")
	if !ok || st.Owner != "faculty" {
		t.Fatal("Set lookup failed")
	}
	if len(s.SetsOwnedBy("faculty")) != 1 || len(s.SetsWithMember("course")) != 2 {
		t.Error("set queries wrong")
	}
	if !s.Sets[0].SystemOwned() || s.Sets[1].SystemOwned() {
		t.Error("SystemOwned wrong")
	}
}

func TestNoDupAttrs(t *testing.T) {
	s := sampleSchema()
	r, _ := s.Record("course")
	nd := r.NoDupAttrs()
	if len(nd) != 2 || nd[0] != "title" || nd[1] != "semester" {
		t.Errorf("NoDupAttrs = %v", nd)
	}
}

func TestModeStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{InsertAutomatic.String(), "AUTOMATIC"},
		{InsertManual.String(), "MANUAL"},
		{RetentionFixed.String(), "FIXED"},
		{RetentionMandatory.String(), "MANDATORY"},
		{RetentionOptional.String(), "OPTIONAL"},
		{SelectByApplication.String(), "BY APPLICATION"},
		{SelectByValue.String(), "BY VALUE"},
		{SelectByStructural.String(), "BY STRUCTURAL"},
		{AttrInt.String(), "FIXED"},
		{AttrFloat.String(), "FLOAT"},
		{AttrString.String(), "CHARACTER"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestDDLOutputShape(t *testing.T) {
	ddl := sampleSchema().DDL()
	for _, want := range []string{
		"SCHEMA NAME IS univ",
		"RECORD NAME IS course",
		"02 title TYPE IS CHARACTER 30",
		"02 credits TYPE IS FIXED",
		"02 rating TYPE IS FLOAT 5,2",
		"DUPLICATES ARE NOT ALLOWED FOR title, semester",
		"SET NAME IS teaching;",
		"OWNER IS faculty;",
		"MEMBER IS course;",
		"INSERTION IS MANUAL;",
		"RETENTION IS OPTIONAL;",
		"SET SELECTION IS BY APPLICATION;",
		"OWNER IS SYSTEM;",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
}
