package sql

import (
	"strings"
	"testing"
)

// FuzzParse: the SQL parser must never panic and never accept a statement
// without producing one. The seed corpus under testdata/fuzz/FuzzParse —
// including past crashers, kept as regression inputs — runs on every plain
// `go test`.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT * FROM emp",
		"SELECT ename, pay FROM emp WHERE pay >= 800 AND dept = 'CS' ORDER BY pay",
		"SELECT dept, COUNT(*), AVG(pay) FROM emp GROUP BY dept",
		"INSERT INTO emp (ename, pay) VALUES ('Ann', 900)",
		"INSERT INTO emp (ename) VALUES ('O''Brien')",
		"UPDATE emp SET pay = 950, dept = NULL WHERE ename = 'Ann' OR ename = 'Bob'",
		"DELETE FROM emp WHERE pay < 0",
		"SELECT MAX(pay) FROM emp WHERE pay <> 3.5e2",
		"select * from emp where a = 1 and b = 2 or c = 3",
		"WATCH SELECT * FROM emp",
		"WATCH SELECT ename, pay FROM emp WHERE pay >= 800",
		"CREATE VIEW wellpaid AS SELECT ename, pay FROM emp WHERE pay >= 800",
		"create view v as select * from dept",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		if st == nil {
			t.Fatalf("Parse(%q) accepted without a statement", src)
		}
	})
}

// FuzzParseDDL: CREATE TABLE parsing must never panic, and an accepted
// schema must validate.
func FuzzParseDDL(f *testing.F) {
	for _, seed := range []string{
		"CREATE TABLE emp (ename CHAR(20), pay INTEGER);",
		"CREATE TABLE t (a INTEGER NOT NULL, b FLOAT, c CHAR(1));",
		"CREATE TABLE a (x INTEGER);\nCREATE TABLE b (y INTEGER);",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseDDL("fuzz", src)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ParseDDL accepted an invalid schema: %v\n%q", err, src)
		}
	})
}

// TestParseCrashers pins inputs that once crashed or misbehaved in a parser
// of this family (unterminated strings, lone operators, truncated clauses,
// deep nesting) — they must all return an error or a statement, never panic.
func TestParseCrashers(t *testing.T) {
	crashers := []string{
		"",
		";",
		"'",
		"SELECT",
		"SELECT FROM",
		"SELECT * FROM",
		"SELECT * FROM emp WHERE",
		"SELECT * FROM emp WHERE a =",
		"SELECT * FROM emp GROUP BY",
		"SELECT * FROM emp ORDER BY",
		"SELECT COUNT( FROM emp",
		"INSERT INTO",
		"INSERT INTO emp VALUES",
		"INSERT INTO emp (a VALUES (1)",
		"INSERT INTO emp (a) VALUES ('unterminated",
		"UPDATE emp SET",
		"UPDATE emp SET a",
		"UPDATE emp SET a = WHERE b = 1",
		"DELETE",
		"DELETE FROM emp WHERE (((",
		"SELECT * FROM emp WHERE a = 'it''s' AND",
		"SELECT * FROM emp WHERE a = 1e",
		"SELECT * FROM emp WHERE a = -",
		"WATCH",
		"WATCH SELECT",
		"WATCH WATCH SELECT * FROM emp",
		"WATCH INSERT INTO emp (a) VALUES (1)",
		"CREATE VIEW",
		"CREATE VIEW v",
		"CREATE VIEW v AS",
		"CREATE VIEW v AS SELECT",
		"CREATE VIEW AS SELECT * FROM emp",
		"CREATE VIEW v AS DELETE FROM emp",
		strings.Repeat("SELECT * FROM emp WHERE a = 1 AND ", 200) + "b = 2",
	}
	for _, src := range crashers {
		// The only failure mode is a panic; err/ok are both acceptable.
		if st, err := Parse(src); err == nil && st == nil {
			t.Errorf("Parse(%q) = nil, nil", src)
		}
	}
}
