// Package sql implements the SQL subset of the MLDS relational language
// interface: CREATE TABLE as the DDL, and SELECT / INSERT / UPDATE / DELETE
// as the DML, with WHERE conditions (AND/OR), aggregates, GROUP BY and
// ORDER BY.
package sql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"mlds/internal/abdm"
	"mlds/internal/relmodel"
)

// Stmt is one SQL DML statement.
type Stmt interface{ sqlStmt() }

// Agg is an aggregate applied to a select item.
type Agg int

// Aggregates.
const (
	AggNone Agg = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = [...]string{"", "COUNT", "SUM", "AVG", "MIN", "MAX"}

// String returns the SQL spelling.
func (a Agg) String() string { return aggNames[a] }

// SelectItem is one output column, optionally aggregated. Column "*" with
// AggNone selects every column.
type SelectItem struct {
	Agg    Agg
	Column string
}

// String renders the item.
func (it SelectItem) String() string {
	if it.Agg == AggNone {
		return it.Column
	}
	return fmt.Sprintf("%s(%s)", it.Agg, it.Column)
}

// Cond is one WHERE comparison.
type Cond struct {
	Column string
	Op     abdm.Op
	Val    abdm.Value
}

// Where is the WHERE clause in disjunctive normal form.
type Where [][]Cond

// Select is a single-table SELECT.
type Select struct {
	Items   []SelectItem
	Table   string
	Where   Where
	GroupBy string
	OrderBy string
	Desc    bool
}

func (*Select) sqlStmt() {}

// Insert is INSERT INTO t (cols) VALUES (lits).
type Insert struct {
	Table   string
	Columns []string
	Values  []abdm.Value
}

func (*Insert) sqlStmt() {}

// Update is UPDATE t SET col = lit, ... [WHERE ...].
type Update struct {
	Table string
	Set   []Assign
	Where Where
}

// Assign is one SET column = literal.
type Assign struct {
	Column string
	Val    abdm.Value
}

func (*Update) sqlStmt() {}

// Delete is DELETE FROM t [WHERE ...].
type Delete struct {
	Table string
	Where Where
}

func (*Delete) sqlStmt() {}

// Watch is WATCH SELECT ...: a change subscription on the inner query — a
// snapshot-consistent initial load followed by the committed row changes.
// Aggregates, GROUP BY and ORDER BY are accepted by the grammar but rejected
// at watch-open time (they have no incremental row-delta form).
type Watch struct {
	Inner *Select
}

func (*Watch) sqlStmt() {}

// CreateView is CREATE VIEW v AS SELECT ...: an incrementally-maintained
// materialized view over the inner query.
type CreateView struct {
	Name  string
	Inner *Select
}

func (*CreateView) sqlStmt() {}

// --- lexer -----------------------------------------------------------------

type tkind int

const (
	tEOF tkind = iota
	tWord
	tNumber
	tString
	tPunct
)

type token struct {
	kind tkind
	text string
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

func lex(src string) ([]token, error) {
	var out []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			out = append(out, token{tWord, src[start:i]})
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			start := i
			i++
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			out = append(out, token{tNumber, src[start:i]})
		case c == '\'':
			i++
			var b strings.Builder
			for {
				if i >= len(src) {
					return nil, fmt.Errorf("sql: unterminated string literal")
				}
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				b.WriteByte(src[i])
				i++
			}
			out = append(out, token{tString, b.String()})
		default:
			for _, p := range []string{"<=", ">=", "<>", "!="} {
				if strings.HasPrefix(src[i:], p) {
					out = append(out, token{tPunct, p})
					i += len(p)
					goto next
				}
			}
			switch c {
			case '(', ')', ',', ';', '*', '=', '<', '>':
				out = append(out, token{tPunct, string(c)})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q", c)
			}
		next:
		}
	}
	return append(out, token{kind: tEOF}), nil
}

// --- parser ----------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

func (p *parser) tok() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) done() bool { return p.tok().kind == tEOF }
func (p *parser) is(w string) bool {
	t := p.tok()
	return t.kind == tWord && strings.EqualFold(t.text, w)
}

func (p *parser) eat(w string) bool {
	if p.is(w) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectWord(w string) error {
	if !p.eat(w) {
		return fmt.Errorf("sql: expected %q, found %s", w, p.tok())
	}
	return nil
}

func (p *parser) expectPunct(ch string) error {
	t := p.tok()
	if t.kind != tPunct || t.text != ch {
		return fmt.Errorf("sql: expected %q, found %s", ch, t)
	}
	p.advance()
	return nil
}

func (p *parser) ident(what string) (string, error) {
	t := p.tok()
	if t.kind != tWord {
		return "", fmt.Errorf("sql: expected %s, found %s", what, t)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) literal() (abdm.Value, error) {
	t := p.tok()
	switch t.kind {
	case tString:
		p.advance()
		return abdm.String(t.text), nil
	case tNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return abdm.Value{}, fmt.Errorf("sql: bad number %q", t.text)
			}
			return abdm.Float(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return abdm.Value{}, fmt.Errorf("sql: bad number %q", t.text)
		}
		return abdm.Int(n), nil
	case tWord:
		if strings.EqualFold(t.text, "NULL") {
			p.advance()
			return abdm.Null(), nil
		}
		return abdm.Value{}, fmt.Errorf("sql: expected a literal, found %s", t)
	default:
		return abdm.Value{}, fmt.Errorf("sql: expected a literal, found %s", t)
	}
}

// finishEnd consumes an optional semicolon and requires end of input.
func (p *parser) finishEnd() error {
	if t := p.tok(); t.kind == tPunct && t.text == ";" {
		p.advance()
	}
	if !p.done() {
		return fmt.Errorf("sql: trailing input after statement: %s", p.tok())
	}
	return nil
}

// ParseDDL parses one or more CREATE TABLE statements into a schema named
// name.
func ParseDDL(name, src string) (*relmodel.Schema, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s := &relmodel.Schema{Name: name}
	for !p.done() {
		if err := p.expectWord("CREATE"); err != nil {
			return nil, err
		}
		if err := p.expectWord("TABLE"); err != nil {
			return nil, err
		}
		tname, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		table := &relmodel.Table{Name: tname}
		for {
			col, err := p.parseColumn()
			if err != nil {
				return nil, err
			}
			table.Columns = append(table.Columns, col)
			if t := p.tok(); t.kind == tPunct && t.text == "," {
				p.advance()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if t := p.tok(); t.kind == tPunct && t.text == ";" {
			p.advance()
		}
		s.Tables = append(s.Tables, table)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) parseColumn() (*relmodel.Column, error) {
	name, err := p.ident("column name")
	if err != nil {
		return nil, err
	}
	col := &relmodel.Column{Name: name}
	switch {
	case p.eat("INTEGER") || p.eat("INT"):
		col.Type = relmodel.ColInt
	case p.eat("FLOAT") || p.eat("REAL"):
		col.Type = relmodel.ColFloat
	case p.eat("CHAR") || p.eat("VARCHAR") || p.eat("CHARACTER"):
		col.Type = relmodel.ColString
		if t := p.tok(); t.kind == tPunct && t.text == "(" {
			p.advance()
			n := p.tok()
			if n.kind != tNumber {
				return nil, fmt.Errorf("sql: expected a length, found %s", n)
			}
			length, err := strconv.Atoi(n.text)
			if err != nil || length <= 0 {
				return nil, fmt.Errorf("sql: bad length %q", n.text)
			}
			col.Length = length
			p.advance()
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("sql: column %q has unknown type %s", name, p.tok())
	}
	for {
		switch {
		case p.eat("NOT"):
			if err := p.expectWord("NULL"); err != nil {
				return nil, err
			}
			col.NotNull = true
		case p.eat("UNIQUE"):
			col.Unique = true
		default:
			return col, nil
		}
	}
}

// Parse parses one SQL DML statement.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var st Stmt
	switch {
	case p.eat("SELECT"):
		st, err = p.parseSelect()
	case p.eat("INSERT"):
		st, err = p.parseInsert()
	case p.eat("UPDATE"):
		st, err = p.parseUpdate()
	case p.eat("DELETE"):
		st, err = p.parseDelete()
	case p.eat("WATCH"):
		st, err = p.parseWatch()
	case p.eat("CREATE"):
		st, err = p.parseCreateView()
	default:
		return nil, fmt.Errorf("sql: unknown statement starting with %s", p.tok())
	}
	if err != nil {
		return nil, err
	}
	if err := p.finishEnd(); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseSelect() (Stmt, error) {
	sel := &Select{}
	for {
		if t := p.tok(); t.kind == tPunct && t.text == "*" {
			p.advance()
			sel.Items = append(sel.Items, SelectItem{Column: "*"})
		} else {
			word, err := p.ident("column or aggregate")
			if err != nil {
				return nil, err
			}
			agg := AggNone
			switch strings.ToUpper(word) {
			case "COUNT":
				agg = AggCount
			case "SUM":
				agg = AggSum
			case "AVG":
				agg = AggAvg
			case "MIN":
				agg = AggMin
			case "MAX":
				agg = AggMax
			}
			if agg != AggNone && p.tok().kind == tPunct && p.tok().text == "(" {
				p.advance()
				var col string
				if t := p.tok(); t.kind == tPunct && t.text == "*" {
					p.advance()
					col = "*"
				} else {
					c, err := p.ident("aggregate column")
					if err != nil {
						return nil, err
					}
					col = c
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				sel.Items = append(sel.Items, SelectItem{Agg: agg, Column: col})
			} else {
				sel.Items = append(sel.Items, SelectItem{Column: word})
			}
		}
		if t := p.tok(); t.kind == tPunct && t.text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectWord("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	sel.Table = table
	if sel.Where, err = p.parseWhere(); err != nil {
		return nil, err
	}
	if p.eat("GROUP") {
		if err := p.expectWord("BY"); err != nil {
			return nil, err
		}
		if sel.GroupBy, err = p.ident("group column"); err != nil {
			return nil, err
		}
	}
	if p.eat("ORDER") {
		if err := p.expectWord("BY"); err != nil {
			return nil, err
		}
		if sel.OrderBy, err = p.ident("order column"); err != nil {
			return nil, err
		}
		if p.eat("DESC") {
			sel.Desc = true
		} else {
			p.eat("ASC")
		}
	}
	return sel, nil
}

// parseWhere parses [WHERE cond {AND|OR cond}...] into DNF (AND binds
// tighter than OR).
func (p *parser) parseWhere() (Where, error) {
	if !p.eat("WHERE") {
		return nil, nil
	}
	var dnf Where
	conj := []Cond{}
	for {
		col, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		t := p.tok()
		if t.kind != tPunct {
			return nil, fmt.Errorf("sql: expected a comparison operator, found %s", t)
		}
		op, err := abdm.ParseOp(t.text)
		if err != nil {
			return nil, err
		}
		p.advance()
		val, err := p.literal()
		if err != nil {
			return nil, err
		}
		conj = append(conj, Cond{Column: col, Op: op, Val: val})
		switch {
		case p.eat("AND"):
			continue
		case p.eat("OR"):
			dnf = append(dnf, conj)
			conj = []Cond{}
			continue
		default:
			dnf = append(dnf, conj)
			return dnf, nil
		}
	}
}

func (p *parser) parseInsert() (Stmt, error) {
	if err := p.expectWord("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		ins.Columns = append(ins.Columns, col)
		if t := p.tok(); t.kind == tPunct && t.text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectWord("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		ins.Values = append(ins.Values, v)
		if t := p.tok(); t.kind == tPunct && t.text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if len(ins.Columns) != len(ins.Values) {
		return nil, fmt.Errorf("sql: %d columns but %d values", len(ins.Columns), len(ins.Values))
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	table, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	upd := &Update{Table: table}
	if err := p.expectWord("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val, err := p.literal()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assign{Column: col, Val: val})
		if t := p.tok(); t.kind == tPunct && t.text == "," {
			p.advance()
			continue
		}
		break
	}
	if upd.Where, err = p.parseWhere(); err != nil {
		return nil, err
	}
	return upd, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	if err := p.expectWord("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	var werr error
	if del.Where, werr = p.parseWhere(); werr != nil {
		return nil, werr
	}
	return del, nil
}

// parseWatch parses the query after WATCH: a full SELECT.
func (p *parser) parseWatch() (Stmt, error) {
	if err := p.expectWord("SELECT"); err != nil {
		return nil, err
	}
	inner, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &Watch{Inner: inner.(*Select)}, nil
}

// parseCreateView parses CREATE VIEW v AS SELECT ... (CREATE TABLE is DDL;
// see ParseDDL).
func (p *parser) parseCreateView() (Stmt, error) {
	if err := p.expectWord("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.ident("view name")
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("AS"); err != nil {
		return nil, err
	}
	if err := p.expectWord("SELECT"); err != nil {
		return nil, err
	}
	inner, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &CreateView{Name: name, Inner: inner.(*Select)}, nil
}
