package sql

import (
	"testing"

	"mlds/internal/abdm"
	"mlds/internal/relmodel"
)

const shopDDL = `
CREATE TABLE dept (
    dname CHAR(20) NOT NULL UNIQUE,
    floor INTEGER
);
CREATE TABLE emp (
    ename CHAR(20) NOT NULL,
    dept CHAR(20),
    pay FLOAT
);
`

func TestParseDDL(t *testing.T) {
	s, err := ParseDDL("shop", shopDDL)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "shop" || len(s.Tables) != 2 {
		t.Fatalf("schema = %v", s)
	}
	dept, ok := s.Table("dept")
	if !ok {
		t.Fatal("dept missing")
	}
	dname, _ := dept.Column("dname")
	if dname == nil || dname.Type != relmodel.ColString || dname.Length != 20 || !dname.NotNull || !dname.Unique {
		t.Errorf("dname = %+v", dname)
	}
	floor, _ := dept.Column("floor")
	if floor == nil || floor.Type != relmodel.ColInt || floor.NotNull {
		t.Errorf("floor = %+v", floor)
	}
	pay, _ := mustTable(t, s, "emp").Column("pay")
	if pay == nil || pay.Type != relmodel.ColFloat {
		t.Errorf("pay = %+v", pay)
	}
}

func mustTable(t *testing.T, s *relmodel.Schema, name string) *relmodel.Table {
	t.Helper()
	tab, ok := s.Table(name)
	if !ok {
		t.Fatalf("table %q missing", name)
	}
	return tab
}

func TestParseDDLRoundTrip(t *testing.T) {
	s, err := ParseDDL("shop", shopDDL)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseDDL("shop", s.DDL())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s.DDL())
	}
	if again.DDL() != s.DDL() {
		t.Error("DDL round trip unstable")
	}
}

func TestParseDDLErrors(t *testing.T) {
	bad := []string{
		"CREATE dept (x INTEGER)",
		"CREATE TABLE (x INTEGER)",
		"CREATE TABLE t ()",
		"CREATE TABLE t (x BLOB)",
		"CREATE TABLE t (x CHAR(0))",
		"CREATE TABLE t (x INTEGER); CREATE TABLE t (y INTEGER);",
		"CREATE TABLE t (x INTEGER, x FLOAT)",
		"CREATE TABLE t (x INTEGER NOT)",
	}
	for _, src := range bad {
		if _, err := ParseDDL("s", src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseSelect(t *testing.T) {
	st, err := Parse("SELECT ename, pay FROM emp WHERE dept = 'CS' AND pay >= 500 OR dept = 'EE' ORDER BY pay DESC;")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*Select)
	if sel.Table != "emp" || len(sel.Items) != 2 {
		t.Fatalf("sel = %+v", sel)
	}
	// DNF: (dept=CS AND pay>=500) OR (dept=EE).
	if len(sel.Where) != 2 || len(sel.Where[0]) != 2 || len(sel.Where[1]) != 1 {
		t.Fatalf("where = %+v", sel.Where)
	}
	if sel.OrderBy != "pay" || !sel.Desc {
		t.Errorf("order = %q desc=%v", sel.OrderBy, sel.Desc)
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM emp").(*Select)
	if len(sel.Items) != 1 || sel.Items[0].Column != "*" {
		t.Fatalf("items = %+v", sel.Items)
	}
}

func TestParseSelectAggregates(t *testing.T) {
	sel := mustParse(t, "SELECT COUNT(*), AVG(pay), MAX(pay) FROM emp GROUP BY dept").(*Select)
	if len(sel.Items) != 3 {
		t.Fatalf("items = %+v", sel.Items)
	}
	if sel.Items[0].Agg != AggCount || sel.Items[0].Column != "*" {
		t.Errorf("item0 = %+v", sel.Items[0])
	}
	if sel.Items[1].Agg != AggAvg || sel.Items[1].Column != "pay" {
		t.Errorf("item1 = %+v", sel.Items[1])
	}
	if sel.GroupBy != "dept" {
		t.Errorf("group = %q", sel.GroupBy)
	}
}

func TestParseInsert(t *testing.T) {
	ins := mustParse(t, "INSERT INTO emp (ename, dept, pay) VALUES ('Ann', 'CS', 900.5)").(*Insert)
	if ins.Table != "emp" || len(ins.Columns) != 3 || len(ins.Values) != 3 {
		t.Fatalf("ins = %+v", ins)
	}
	if ins.Values[2].Kind() != abdm.KindFloat {
		t.Errorf("pay kind = %v", ins.Values[2].Kind())
	}
}

func TestParseUpdate(t *testing.T) {
	upd := mustParse(t, "UPDATE emp SET pay = 1000.0, dept = 'EE' WHERE ename = 'Ann'").(*Update)
	if upd.Table != "emp" || len(upd.Set) != 2 || len(upd.Where) != 1 {
		t.Fatalf("upd = %+v", upd)
	}
}

func TestParseDelete(t *testing.T) {
	del := mustParse(t, "DELETE FROM emp WHERE pay < 100").(*Delete)
	if del.Table != "emp" || len(del.Where) != 1 {
		t.Fatalf("del = %+v", del)
	}
	del = mustParse(t, "DELETE FROM emp").(*Delete)
	if len(del.Where) != 0 {
		t.Fatalf("del = %+v", del)
	}
}

func TestParseWatch(t *testing.T) {
	w := mustParse(t, "WATCH SELECT ename, pay FROM emp WHERE pay >= 800;").(*Watch)
	if w.Inner == nil || w.Inner.Table != "emp" || len(w.Inner.Items) != 2 {
		t.Fatalf("watch = %+v", w)
	}
	if len(w.Inner.Where) != 1 || len(w.Inner.Where[0]) != 1 {
		t.Fatalf("where = %+v", w.Inner.Where)
	}
	w = mustParse(t, "watch select * from dept").(*Watch)
	if w.Inner.Table != "dept" || w.Inner.Items[0].Column != "*" {
		t.Fatalf("watch = %+v", w.Inner)
	}
}

func TestParseCreateView(t *testing.T) {
	cv := mustParse(t, "CREATE VIEW wellpaid AS SELECT ename, pay FROM emp WHERE pay >= 800").(*CreateView)
	if cv.Name != "wellpaid" || cv.Inner == nil || cv.Inner.Table != "emp" {
		t.Fatalf("view = %+v", cv)
	}
	cv = mustParse(t, "create view v as select * from dept;").(*CreateView)
	if cv.Name != "v" || cv.Inner.Table != "dept" {
		t.Fatalf("view = %+v", cv)
	}
}

func TestParseWatchErrors(t *testing.T) {
	bad := []string{
		"WATCH",
		"WATCH SELECT",
		"WATCH INSERT INTO emp (a) VALUES (1)",
		"WATCH SELECT * FROM emp extra",
		"CREATE VIEW",
		"CREATE VIEW v",
		"CREATE VIEW v AS",
		"CREATE VIEW v AS UPDATE emp SET a = 1",
		"CREATE VIEW v SELECT * FROM emp",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseNullLiteral(t *testing.T) {
	upd := mustParse(t, "UPDATE emp SET dept = NULL WHERE ename = 'Ann'").(*Update)
	if !upd.Set[0].Val.IsNull() {
		t.Error("NULL lost")
	}
}

func TestParseStatementErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a ==",
		"INSERT emp (a) VALUES (1)",
		"INSERT INTO emp (a, b) VALUES (1)",
		"INSERT INTO emp (a) VALUES (1) extra",
		"UPDATE emp SET",
		"UPDATE emp SET a 1",
		"DELETE emp",
		"SELECT * FROM t ORDER pay",
		"SELECT 'str' FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func mustParse(t *testing.T, src string) Stmt {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}
