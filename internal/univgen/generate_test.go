package univgen

import (
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Instance.Records()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Instance.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("record counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if !ra[i].Equal(rb[i]) {
			t.Fatalf("record %d differs between runs", i)
		}
	}
}

func TestGenerateLoadsAndCounts(t *testing.T) {
	cfg := SmallConfig()
	db, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := db.NewKernel(3)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	n, err := db.Load(sys)
	if err != nil {
		t.Fatal(err)
	}
	if n != sys.Len() {
		t.Errorf("loaded %d but kernel holds %d", n, sys.Len())
	}
	count := func(file string) int {
		res, err := sys.Exec(abdl.NewRetrieve(abdm.And(
			abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(file)},
		), file)) // project to the key attr
		if err != nil {
			t.Fatal(err)
		}
		keys := map[int64]bool{}
		for _, sr := range res.Records {
			if v, ok := sr.Rec.Get(file); ok {
				keys[v.AsInt()] = true
			}
		}
		return len(keys)
	}
	if got := count("course"); got != cfg.Courses {
		t.Errorf("courses = %d, want %d", got, cfg.Courses)
	}
	if got := count("student"); got != cfg.Students {
		t.Errorf("students = %d, want %d", got, cfg.Students)
	}
	if got := count("faculty"); got != cfg.Faculty {
		t.Errorf("faculty = %d, want %d", got, cfg.Faculty)
	}
	// Persons = students + faculty + staff.
	if got := count("person"); got != cfg.Students+cfg.Faculty+cfg.Staff {
		t.Errorf("persons = %d", got)
	}
	// Links = faculty × teach-per-faculty.
	if got := count("LINK_1"); got != cfg.Faculty*cfg.TeachPerFaculty {
		t.Errorf("links = %d", got)
	}
}

func TestGenerateSSNsUnique(t *testing.T) {
	db, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := db.Instance.Records()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]int64{} // ssn → key
	for _, r := range recs {
		if r.File() != "person" {
			continue
		}
		ssn, _ := r.Get("ssn")
		key, _ := r.Get("person")
		if prev, dup := seen[ssn.AsInt()]; dup && prev != key.AsInt() {
			t.Fatalf("ssn %d assigned to two entities", ssn.AsInt())
		}
		seen[ssn.AsInt()] = key.AsInt()
	}
	if len(seen) == 0 {
		t.Fatal("no persons generated")
	}
}

func TestCourseTitle(t *testing.T) {
	if CourseTitle(0) != AdvancedDatabaseTitle {
		t.Error("course 0 must be the thesis's example course")
	}
	if CourseTitle(1) == CourseTitle(2) {
		t.Error("course titles must be distinct")
	}
}
