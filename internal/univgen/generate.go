// Package univgen generates deterministic University database instances —
// the workloads every experiment loads into the kernel.
package univgen

import (
	"fmt"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/loader"
	"mlds/internal/mbds"
	"mlds/internal/univ"
	"mlds/internal/xform"
)

// Config sizes a generated University database instance. All content is a
// deterministic function of the configuration — no randomness — so every
// experiment run sees the same database.
type Config struct {
	Departments      int
	Courses          int
	Faculty          int
	Students         int
	Staff            int
	EnrollPerStudent int
	TeachPerFaculty  int
}

// SmallConfig is a compact instance for functional tests.
func SmallConfig() Config {
	return Config{
		Departments: 3, Courses: 12, Faculty: 6, Students: 18, Staff: 4,
		EnrollPerStudent: 3, TeachPerFaculty: 2,
	}
}

// Majors used round-robin by the generator; the first matches the thesis's
// Chapter VI example query.
var Majors = []string{"Computer Science", "Mathematics", "Physics"}

// Ranks used round-robin, matching the schema's rank_type enumeration.
var Ranks = []string{"instructor", "assistant", "associate", "professor"}

// Semesters used round-robin.
var Semesters = []string{"Fall", "Winter", "Spring", "Summer"}

// AdvancedDatabaseTitle is the course title of the thesis's FIND ANY example.
const AdvancedDatabaseTitle = "Advanced Database"

// Database is a generated University instance: the schema transformation,
// kernel schema, and loadable content.
type Database struct {
	Mapping  *xform.Mapping
	AB       *xform.ABSchema
	Instance *loader.Instance
	Config   Config
}

// Generate builds the transformed schema and a deterministic instance.
func Generate(cfg Config) (*Database, error) {
	m, err := xform.FunToNet(univ.Schema())
	if err != nil {
		return nil, err
	}
	ab, err := xform.DeriveAB(m)
	if err != nil {
		return nil, err
	}
	inst, err := Populate(m, ab, cfg)
	if err != nil {
		return nil, err
	}
	return &Database{Mapping: m, AB: ab, Instance: inst, Config: cfg}, nil
}

// Populate builds a deterministic University instance against an existing
// transformation of the University schema (e.g. a database created through
// the engine's catalog).
func Populate(m *xform.Mapping, ab *xform.ABSchema, cfg Config) (*loader.Instance, error) {
	inst := loader.New(m, ab)

	var depts, courses, faculty, students, staff []*loader.Entity

	for i := 0; i < cfg.Departments; i++ {
		e, err := inst.NewEntity("department")
		if err != nil {
			return nil, err
		}
		set(inst, e, "dname", abdm.String(deptName(i)))
		set(inst, e, "building", abdm.String(fmt.Sprintf("Hall %c", 'A'+i%20)))
		depts = append(depts, e)
	}
	for i := 0; i < cfg.Courses; i++ {
		e, err := inst.NewEntity("course")
		if err != nil {
			return nil, err
		}
		set(inst, e, "title", abdm.String(CourseTitle(i)))
		set(inst, e, "semester", abdm.String(Semesters[i%len(Semesters)]))
		set(inst, e, "credits", abdm.Int(int64(2+i%4)))
		courses = append(courses, e)
	}
	ssn := int64(100_00_0000)
	for i := 0; i < cfg.Faculty; i++ {
		e, err := inst.NewEntity("faculty")
		if err != nil {
			return nil, err
		}
		ssn++
		set(inst, e, "pname", abdm.String(fmt.Sprintf("Faculty %03d", i)))
		set(inst, e, "ssn", abdm.Int(ssn))
		set(inst, e, "salary", abdm.Int(int64(50000+1000*(i%20))))
		set(inst, e, "rank", abdm.String(Ranks[i%len(Ranks)]))
		if len(depts) > 0 {
			if err := inst.SetRef(e, "dept", depts[i%len(depts)]); err != nil {
				return nil, err
			}
		}
		for j := 0; j < cfg.TeachPerFaculty && len(courses) > 0; j++ {
			c := courses[(i*cfg.TeachPerFaculty+j)%len(courses)]
			if err := inst.Link("teaching", e, c); err != nil {
				return nil, err
			}
		}
		faculty = append(faculty, e)
	}
	for i := 0; i < cfg.Students; i++ {
		e, err := inst.NewEntity("student")
		if err != nil {
			return nil, err
		}
		ssn++
		set(inst, e, "pname", abdm.String(fmt.Sprintf("Student %04d", i)))
		set(inst, e, "ssn", abdm.Int(ssn))
		set(inst, e, "major", abdm.String(Majors[i%len(Majors)]))
		set(inst, e, "gpa", abdm.Float(2.0+float64(i%21)/10))
		if len(faculty) > 0 {
			if err := inst.SetRef(e, "advisor", faculty[i%len(faculty)]); err != nil {
				return nil, err
			}
		}
		for j := 0; j < cfg.EnrollPerStudent && len(courses) > 0; j++ {
			c := courses[(i+j*7)%len(courses)]
			if err := inst.AddRef(e, "enrollments", c); err != nil {
				return nil, err
			}
		}
		students = append(students, e)
	}
	for i := 0; i < cfg.Staff; i++ {
		e, err := inst.NewEntity("support_staff")
		if err != nil {
			return nil, err
		}
		ssn++
		set(inst, e, "pname", abdm.String(fmt.Sprintf("Staff %03d", i)))
		set(inst, e, "ssn", abdm.Int(ssn))
		set(inst, e, "salary", abdm.Int(int64(30000+500*(i%10))))
		if len(faculty) > 0 {
			if err := inst.SetRef(e, "supervisor", faculty[i%len(faculty)]); err != nil {
				return nil, err
			}
		}
		for _, sk := range []string{"typing", "filing", "scheduling"}[:1+i%3] {
			if err := inst.AddValue(e, "skills", abdm.String(sk)); err != nil {
				return nil, err
			}
		}
		staff = append(staff, e)
	}
	_ = students
	_ = staff
	return inst, nil
}

// set panics on a scalar assignment error: generator values are
// compile-time-correct by construction, so an error is a programming bug.
func set(inst *loader.Instance, e *loader.Entity, fn string, v abdm.Value) {
	if err := inst.Set(e, fn, v); err != nil {
		panic(fmt.Sprintf("univ: %v", err))
	}
}

// CourseTitle names the i-th generated course; course 0 is the thesis's
// "Advanced Database".
func CourseTitle(i int) string {
	if i == 0 {
		return AdvancedDatabaseTitle
	}
	return fmt.Sprintf("Course %03d", i)
}

func deptName(i int) string {
	if i < len(Majors) {
		return Majors[i]
	}
	return fmt.Sprintf("Department %02d", i)
}

// LoadBatchSize is how many inserts Load hands the kernel per batched round.
const LoadBatchSize = 256

// Load executes the instance's INSERT transaction against a kernel database
// system in batched rounds and returns the number of kernel records loaded.
// On failure the returned count is the start of the failed round.
func (d *Database) Load(sys *mbds.System) (int, error) {
	tx, err := d.Instance.Requests()
	if err != nil {
		return 0, err
	}
	for off := 0; off < len(tx); off += LoadBatchSize {
		end := min(off+LoadBatchSize, len(tx))
		if _, _, err := sys.ExecBatch(tx[off:end]); err != nil {
			return off, fmt.Errorf("univ: loading records %d..%d: %w", off, end-1, err)
		}
	}
	return len(tx), nil
}

// NewKernel builds an MBDS instance over the database's kernel directory.
func (d *Database) NewKernel(backends int) (*mbds.System, error) {
	return mbds.New(d.AB.Dir, mbds.DefaultConfig(backends))
}

var _ = abdl.Transaction(nil)
