package kc

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
	"mlds/internal/pager"
)

func fleetPath(tmp string, pos int) string {
	return filepath.Join(tmp, fmt.Sprintf("part%d.pgf", pos))
}

// fleetController builds an n-backend controller where partition pos lives
// in tmp/part{pos}.pgf. Existing page files are mounted — at the cut when
// bound is non-nil (fleet recovery), newest otherwise — and missing ones are
// created fresh.
func fleetController(t *testing.T, tmp string, n int, bound *uint64) (*Controller, []*kdb.Store, []pager.Meta) {
	t.Helper()
	dir := abdm.NewDirectory()
	if err := dir.DefineAttr("x", abdm.KindInt); err != nil {
		t.Fatal(err)
	}
	if err := dir.DefineFile("f", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	metas := make([]pager.Meta, n)
	cfg := mbds.DefaultConfig(n)
	cfg.StoreOpener = func(pos int, d *abdm.Directory, opts []kdb.Option) (*kdb.Store, error) {
		path := fleetPath(tmp, pos)
		if _, err := os.Stat(path); err == nil {
			var (
				st  *kdb.Store
				m   pager.Meta
				err error
			)
			if bound != nil {
				st, m, err = kdb.OpenBackedAt(path, d, *bound, opts...)
			} else {
				st, m, err = kdb.OpenBacked(path, d, opts...)
			}
			metas[pos] = m
			return st, err
		}
		return kdb.CreateBacked(path, d, opts...)
	}
	sys, err := mbds.New(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*kdb.Store, n)
	var maxID uint64
	for i := range stores {
		stores[i] = sys.Store(i)
		if stores[i] == nil || !stores[i].Backed() {
			t.Fatalf("backend %d has no paged backing", i)
		}
		if metas[i].NextID > maxID {
			maxID = metas[i].NextID
		}
	}
	if maxID > 0 {
		sys.SeedIDs(maxID)
	}
	t.Cleanup(func() {
		for _, st := range stores {
			st.CloseBacking()
		}
		sys.Close()
	})
	return New(sys), stores, metas
}

// recoverFleet is the full fleet crash-recovery path: compute the cut from
// the page files, mount every partition at it, and replay the shared
// journal's tail once.
func recoverFleet(t *testing.T, tmp string, n int, journalPath string) (*Controller, []*kdb.Store, []pager.Meta, int, uint64) {
	t.Helper()
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fleetPath(tmp, i)
	}
	cut, err := FleetCut(paths)
	if err != nil {
		t.Fatal(err)
	}
	c, stores, metas := fleetController(t, tmp, n, &cut)
	f, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	replayed, err := c.RecoverFleet(f, cut, metas...)
	if err != nil {
		t.Fatal(err)
	}
	return c, stores, metas, replayed, cut
}

// TestFleetCheckpointConsistentCut is the coordinated-checkpoint acceptance
// path: three partitions behind one journal checkpoint at a single barrier
// position, a tail accumulates, and crash recovery replays exactly that tail
// against all three images — then the recovered fleet checkpoints again and
// the next recovery replays nothing.
func TestFleetCheckpointConsistentCut(t *testing.T) {
	tmp := t.TempDir()
	journalPath := filepath.Join(tmp, "journal.gob")
	const n = 3

	c, stores, _ := fleetController(t, tmp, n, nil)
	attachJournalFile(t, c, journalPath)
	for v := int64(1); v <= 9; v++ {
		if _, err := c.Exec(insertX(v)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := c.CheckpointFleet(stores)
	if err != nil {
		t.Fatal(err)
	}
	if info.Meta.Entries != 9 {
		t.Fatalf("fleet checkpoint covers %d entries, want 9", info.Meta.Entries)
	}
	if !info.Rotated || info.Tail != 0 {
		t.Fatalf("fleet checkpoint with no tail: rotated=%v tail=%d, want rotation", info.Rotated, info.Tail)
	}
	for v := int64(10); v <= 14; v++ {
		if _, err := c.Exec(insertX(v)); err != nil {
			t.Fatal(err)
		}
	}

	// Crash. Every page file must be stamped at the same barrier position.
	c2, stores2, metas2, replayed, cut := recoverFleet(t, tmp, n, journalPath)
	if cut != 9 {
		t.Fatalf("fleet cut = %d, want the barrier position 9", cut)
	}
	for i, m := range metas2 {
		if m.Entries != 9 {
			t.Fatalf("partition %d mounted at %d entries, want 9", i, m.Entries)
		}
	}
	if replayed != 5 {
		t.Fatalf("recovery replayed %d entries, want exactly the 5-entry tail", replayed)
	}
	for v := int64(1); v <= 14; v++ {
		if cnt := countX(t, c2, v); cnt != 1 {
			t.Fatalf("x=%d recovered %d times, want 1", v, cnt)
		}
	}

	// The recovered fleet checkpoints again at the recovered position, and a
	// second recovery replays nothing.
	attachJournalFile(t, c2, journalPath)
	info, err = c2.CheckpointFleet(stores2)
	if err != nil {
		t.Fatalf("fleet checkpoint after recovery: %v", err)
	}
	if info.Meta.Entries != 14 {
		t.Fatalf("post-recovery fleet checkpoint covers %d entries, want 14", info.Meta.Entries)
	}
	c3, _, _, replayed, cut := recoverFleet(t, tmp, n, journalPath)
	if cut != 14 || replayed != 0 {
		t.Fatalf("recovery after clean fleet checkpoint: cut=%d replayed=%d, want 14/0", cut, replayed)
	}
	for v := int64(1); v <= 14; v++ {
		if cnt := countX(t, c3, v); cnt != 1 {
			t.Fatalf("x=%d recovered %d times after re-checkpoint", v, cnt)
		}
	}
}

// TestFleetCrashBetweenImageCommits drives the fleet checkpoint's worst
// crash window by hand: the barrier fences both stores, store 0's image
// commits at the new position, and the crash hits before store 1's commit
// (and before the marker). Recovery must bring BOTH partitions back to the
// previous barrier — store 0's newer generation is passed over and sealed —
// and replay the whole tail once. Never a blend of positions.
func TestFleetCrashBetweenImageCommits(t *testing.T) {
	tmp := t.TempDir()
	journalPath := filepath.Join(tmp, "journal.gob")
	const n = 2

	c, stores, _ := fleetController(t, tmp, n, nil)
	attachJournalFile(t, c, journalPath)
	for v := int64(1); v <= 8; v++ {
		if _, err := c.Exec(insertX(v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CheckpointFleet(stores); err != nil {
		t.Fatal(err)
	}
	for v := int64(9); v <= 14; v++ {
		if _, err := c.Exec(insertX(v)); err != nil {
			t.Fatal(err)
		}
	}

	// A fleet checkpoint that dies between the two image commits: begin-all
	// under the barrier, flush store 0 only, crash (no marker).
	var (
		epochs = make([]uint64, n)
		pos    uint64
		maxKey int64
	)
	c.txns.WithStampBarrier(func() {
		for i, st := range stores {
			e, err := st.CheckpointBegin()
			if err != nil {
				t.Errorf("begin %d: %v", i, err)
				return
			}
			epochs[i] = e
		}
		c.mu.Lock()
		pos, maxKey = c.jEntries, c.jMaxKey
		c.mu.Unlock()
	})
	if t.Failed() {
		t.FailNow()
	}
	if pos != 14 {
		t.Fatalf("barrier position = %d, want 14", pos)
	}
	if err := stores[0].CheckpointFlush(pager.Meta{Epoch: epochs[0], Entries: pos, MaxKey: maxKey}); err != nil {
		t.Fatal(err)
	}
	for _, st := range stores {
		st.CheckpointRelease()
	}

	// On disk: part0 newest at 14, part1 newest at 8. The cut is 8 and every
	// partition mounts there.
	c2, _, metas2, replayed, cut := recoverFleet(t, tmp, n, journalPath)
	if cut != 8 {
		t.Fatalf("fleet cut = %d, want the last complete barrier 8", cut)
	}
	for i, m := range metas2 {
		if m.Entries != 8 {
			t.Fatalf("partition %d mounted at %d entries, want 8 (no blend)", i, m.Entries)
		}
	}
	if replayed != 6 {
		t.Fatalf("recovery replayed %d entries, want the 6-entry tail", replayed)
	}
	for v := int64(1); v <= 14; v++ {
		if cnt := countX(t, c2, v); cnt != 1 {
			t.Fatalf("x=%d recovered %d times, want 1", v, cnt)
		}
	}

	// The abandoned 14-entry generation was sealed at mount: a later
	// unbounded open of part0 must see the 8-entry generation as newest, not
	// resurrect the orphan.
	metas, err := pager.Metas(fleetPath(tmp, 0))
	if err != nil {
		t.Fatal(err)
	}
	if metas[0].Entries != 8 {
		t.Fatalf("part0 newest generation covers %d entries after sealing, want 8", metas[0].Entries)
	}
}

// TestFleetCheckpointBeginFailureAborts: when one store cannot begin (here:
// no paged backing), the whole fleet checkpoint fails and the stores already
// fenced are released — a follow-up checkpoint of the healthy fleet works.
func TestFleetCheckpointBeginFailureAborts(t *testing.T) {
	tmp := t.TempDir()
	c, stores, _ := fleetController(t, tmp, 2, nil)
	if _, err := c.Exec(insertX(1)); err != nil {
		t.Fatal(err)
	}

	dir := abdm.NewDirectory()
	mem := kdb.NewStore(dir) // no backing: CheckpointBegin must fail
	if _, err := c.CheckpointFleet([]*kdb.Store{stores[0], stores[1], mem}); !errors.Is(err, kdb.ErrNoBacking) {
		t.Fatalf("fleet checkpoint with an unbacked store = %v, want ErrNoBacking", err)
	}
	if _, err := c.CheckpointFleet(stores); err != nil {
		t.Fatalf("fleet checkpoint after aborted begin: %v", err)
	}

	if _, err := c.CheckpointFleet(nil); !errors.Is(err, ErrEmptyFleet) {
		t.Fatal("empty fleet checkpoint did not fail")
	}
	if _, err := FleetCut(nil); !errors.Is(err, ErrEmptyFleet) {
		t.Fatal("empty fleet cut did not fail")
	}
}
