package kc

import (
	"context"
	"sync"
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/mbds"
	"mlds/internal/txn"
)

// TestMembershipChaos drives random joins, rebalances, drains and outright
// backend kills under a concurrent mixed read/write/transaction workload and
// asserts the elastic-membership contract: zero failed requests, reads that
// match the committed-write oracle exactly (no lost committed insert, no
// aborted insert resurrected, no duplicate), and a restored replication
// factor once the churn stops. Run under -race it doubles as the membership
// data-race suite.
func TestMembershipChaos(t *testing.T) {
	dir := abdm.NewDirectory()
	if err := dir.DefineAttr("x", abdm.KindInt); err != nil {
		t.Fatal(err)
	}
	if err := dir.DefineFile("f", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	cfg := mbds.DefaultConfig(3)
	cfg.Replicas = 1
	cfg.FaultInjection = true
	cfg.BreakerThreshold = 2
	cfg.ProbePeriod = time.Hour // a killed backend stays down until failover
	cfg.FailoverAfter = 60 * time.Millisecond
	cfg.FailoverCheck = 15 * time.Millisecond
	sys, err := mbds.New(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	c := New(sys)

	// Independent oracle: the group-commit leader publishes every committed
	// redo log after flush and stamp, so this stream is exactly the set of
	// writes the system acknowledged as durable.
	sub := c.SubscribeCommits(1 << 16)
	defer sub.Close()

	const workers = 6
	var wg sync.WaitGroup
	stop := make(chan struct{})
	type workerState struct {
		committed []int64 // x values the worker saw acknowledged
		failures  []error
	}
	states := make([]workerState, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &states[w]
			next := int64(w) * 1_000_000
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 5 {
				case 0, 1: // auto-commit insert
					next++
					if _, err := c.Exec(insertX(next)); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					st.committed = append(st.committed, next)
				case 2: // explicit transaction: two inserts, committed
					tx := c.Txns().Begin()
					ctx := txn.NewContext(context.Background(), tx)
					a, b := next+1, next+2
					next += 2
					if _, err := c.ExecCtx(ctx, insertX(a)); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					if _, err := c.ExecCtx(ctx, insertX(b)); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					if err := c.Txns().Commit(tx); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					st.committed = append(st.committed, a, b)
				case 3: // aborted transaction: its insert must vanish
					tx := c.Txns().Begin()
					ctx := txn.NewContext(context.Background(), tx)
					next++
					if _, err := c.ExecCtx(ctx, insertX(next)); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					if err := c.Txns().Abort(tx); err != nil {
						st.failures = append(st.failures, err)
						return
					}
				case 4: // read
					if _, err := c.Exec(retrieveX(next)); err != nil {
						st.failures = append(st.failures, err)
						return
					}
				}
			}
		}(w)
	}

	// The chaos script: grow, rebalance, drain, kill — serialized, with the
	// fleet always recovering to at least two live backends.
	waitBackends := func(n int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for sys.Backends() != n {
			if time.Now().After(deadline) {
				t.Fatalf("fleet stuck at %d backends, want %d (health %v)",
					sys.Backends(), n, sys.Health())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	for round := 0; round < 2; round++ {
		pos, err := sys.AddBackend()
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Rebalance(pos); err != nil {
			t.Fatal(err)
		}
		if err := sys.DrainBackend(1); err != nil {
			t.Fatal(err)
		}
		// Kill a backend outright; the failover monitor must remove it.
		n := sys.Backends()
		sys.Fault(n - 1).Fail(true)
		// A few broadcasts trip the breaker (reads tolerate the loss).
		for i := 0; i < 4; i++ {
			_, _ = c.Exec(retrieveX(-1))
			time.Sleep(5 * time.Millisecond)
		}
		waitBackends(n - 1)
		if _, err := sys.AddBackend(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	for w := range states {
		if len(states[w].failures) > 0 {
			t.Fatalf("worker %d: %d failed requests, first: %v",
				w, len(states[w].failures), states[w].failures[0])
		}
	}

	// Collect the subscription's view of committed inserts.
	sub.Close()
	oracle := make(map[int64]bool)
	for rec := range sub.C {
		for _, e := range rec.Entries {
			if e.Req.Kind != int(abdl.Insert) {
				continue
			}
			r, err := e.Req.Record.ToRecord()
			if err != nil {
				t.Fatal(err)
			}
			if v, ok := r.Get("x"); ok {
				oracle[v.AsInt()] = true
			}
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("commit oracle dropped %d records; buffer too small for the workload", sub.Dropped())
	}
	acked := make(map[int64]bool)
	for w := range states {
		for _, v := range states[w].committed {
			acked[v] = true
		}
	}
	for v := range acked {
		if !oracle[v] {
			t.Fatalf("value %d acknowledged to a worker but never published as committed", v)
		}
	}

	// Exactness: the surviving fleet holds every committed insert exactly
	// once and nothing else.
	res, err := c.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[int64]int)
	for _, sr := range res.Records {
		v, _ := sr.Rec.Get("x")
		got[v.AsInt()]++
	}
	for v := range acked {
		switch got[v] {
		case 1:
		case 0:
			t.Errorf("committed value %d lost", v)
		default:
			t.Errorf("committed value %d appears %d times", v, got[v])
		}
	}
	for v, n := range got {
		if !acked[v] {
			t.Errorf("uncommitted value %d present (%d copies) — aborted insert resurrected?", v, n)
		}
	}
	if t.Failed() {
		t.Fatalf("exactness violated: %d committed, %d present, %d backends %v",
			len(acked), len(got), sys.Backends(), sys.PartitionSizes())
	}

	// Replica restoration: once churn and background re-replication settle,
	// every record has exactly Replicas+1 copies.
	want := 2 * len(acked)
	deadline := time.Now().Add(15 * time.Second)
	for sys.Len() != want {
		if time.Now().After(deadline) {
			t.Fatalf("replication factor not restored: %d copies of %d records, want %d (sizes %v)",
				sys.Len(), len(acked), want, sys.PartitionSizes())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
