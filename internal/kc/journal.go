package kc

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"mlds/internal/kdb"
	"mlds/internal/txn"
	"mlds/internal/wire"
)

// journalEntry is one record of the journal stream (format v2). Data entries
// carry a mutating request plus the controller's key-allocator position so
// STORE-assigned database keys replay identically; marker entries frame a
// transaction's data entries with begin/commit (written together at commit
// time) or note an abort. A v1 journal decodes as Txn 0, Marker data — the
// auto-committed legacy form — so old journals replay unchanged.
type journalEntry struct {
	Req    wire.Request
	Key    int64
	Txn    uint64 // owning transaction id; 0 = legacy auto-committed entry
	Marker byte   // markerData, markerBegin, markerCommit, markerAbort, markerCheckpoint

	// Checkpoint markers (markerCheckpoint) only: the commit epoch a page
	// image was taken at and the count of committed data entries that image
	// covers. Gob omits zero fields, so pre-checkpoint journals decode
	// unchanged.
	CkptEpoch   uint64
	CkptEntries uint64

	// Affected pins the database keys the mutation touched (insert id,
	// update/delete victims), so change-data-capture readers apply deltas by
	// key. Gob omits empty slices, so pre-CDC journals decode unchanged.
	Affected []uint64
}

// Journal markers. Data must be zero so v1 entries decode as data.
const (
	markerData       byte = 0
	markerBegin      byte = 1
	markerCommit     byte = 2
	markerAbort      byte = 3
	markerCheckpoint byte = 4
)

// AttachJournal starts logging committed mutations (INSERT, DELETE, UPDATE)
// as a gob stream on w. Writes are buffered and flushed once per commit
// batch — the group-commit window — so a crash can tear at most the final
// in-flight batch, which recovery treats as clean end-of-log. Replaying the
// stream against a freshly-loaded database reproduces the committed
// mutations in order. Retrievals and aborted transactions are not logged.
func (c *Controller) AttachJournal(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jw = bufio.NewWriter(w)
	c.journal = gob.NewEncoder(c.jw)
}

// DetachJournal flushes any buffered entries and stops journalling.
func (c *Controller) DetachJournal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jw != nil {
		c.jw.Flush()
	}
	c.journal = nil
	c.jw = nil
}

// JournalError reports a mutation the kernel applied that the journal
// failed to record: the store and the recovery log have diverged, and a
// replay of the journal will not reproduce the current database. Applied
// carries the kernel results of the requests that did execute, so callers
// can keep the outcome (the data is durable in the kernel) while handling
// the divergence — typically by re-snapshotting rather than trusting the
// journal.
type JournalError struct {
	Applied []*kdb.Result // results of the round that executed before the journal failed
	Err     error         // the underlying journal write failure
}

// Error describes the divergence.
func (e *JournalError) Error() string {
	return fmt.Sprintf("kc: mutation applied to the kernel but not journalled (store and journal have diverged): %v", e.Err)
}

// Unwrap exposes the underlying journal write failure.
func (e *JournalError) Unwrap() error { return e.Err }

// journalSink adapts the controller to txn.CommitSink: the transaction
// manager hands it commit batches and abort notices.
type journalSink struct{ c *Controller }

// WriteCommits persists a commit batch: each transaction's entries framed by
// begin and commit markers, then one flush for the entire batch. That single
// flush is what makes group commit cheaper than per-statement flushing.
func (s journalSink) WriteCommits(recs []txn.CommitRecord) error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		// No journal writer, but position accounting still runs: committed
		// data entries are counted so commit records carry exact positions
		// and live change capture works on journal-less controllers. Only
		// re-reading history (ReadCommitted) needs the file; a tailer that
		// drops records there rebuilds from a fresh snapshot instead.
		for _, rec := range recs {
			for _, e := range rec.Entries {
				c.jEntries++
				if e.Key > c.jMaxKey {
					c.jMaxKey = e.Key
				}
			}
		}
		return nil
	}
	for _, rec := range recs {
		if err := c.journal.Encode(&journalEntry{Txn: rec.ID, Marker: markerBegin}); err != nil {
			return fmt.Errorf("kc: journal write: %w", err)
		}
		for _, e := range rec.Entries {
			entry := journalEntry{Req: e.Req, Key: e.Key, Txn: rec.ID, Marker: markerData, Affected: e.Affected}
			if err := c.journal.Encode(&entry); err != nil {
				return fmt.Errorf("kc: journal write: %w", err)
			}
			c.jEntries++
			if e.Key > c.jMaxKey {
				c.jMaxKey = e.Key
			}
		}
		if err := c.journal.Encode(&journalEntry{Txn: rec.ID, Marker: markerCommit}); err != nil {
			return fmt.Errorf("kc: journal write: %w", err)
		}
	}
	if err := c.jw.Flush(); err != nil {
		return fmt.Errorf("kc: journal write: %w", err)
	}
	return nil
}

// NoteEpoch pairs a just-published commit epoch with the journal position its
// batch was flushed at — the cumulative committed data-entry count and the
// key-allocator high water. A checkpoint whose image is exact at that epoch
// covers exactly that prefix of the journal. Called by the group-commit
// leader under the stamp barrier, after the batch's WriteCommits.
func (s journalSink) NoteEpoch(epoch uint64) {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jPairs == nil {
		c.jPairs = make(map[uint64]ckptPair)
	}
	c.jPairs[epoch] = ckptPair{entries: c.jEntries, maxKey: c.jMaxKey}
	c.jNoted = c.jEntries
}

// JournalPos implements txn.PosReader: the cumulative count of committed
// data entries written to the journal. The group-commit leader reads it once
// per flushed batch to stamp positions onto published CommitRecords.
func (s journalSink) JournalPos() uint64 {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jEntries
}

// WriteAbort notes a rolled-back transaction in the journal. Aborted
// transactions never journal data (redo buffers only reach the journal at
// commit), so the marker is documentation for log readers, not a recovery
// requirement.
func (s journalSink) WriteAbort(id uint64) error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	if err := c.journal.Encode(&journalEntry{Txn: id, Marker: markerAbort}); err != nil {
		return fmt.Errorf("kc: journal write: %w", err)
	}
	if err := c.jw.Flush(); err != nil {
		return fmt.Errorf("kc: journal write: %w", err)
	}
	return nil
}

// ReplayJournal reads a journal stream and re-executes every data entry on
// the controller, restoring the key allocator as it goes. It returns the
// number of entries applied. A torn final entry — a crash mid-write — is
// treated as clean end-of-log. Use RecoverJournal to honour commit
// boundaries; ReplayJournal replays the raw redo stream.
func (c *Controller) ReplayJournal(r io.Reader) (int, error) {
	n, _, err := c.replay(r, false, 0)
	return n, err
}

// RecoverJournal reads a journal stream and re-executes exactly the
// mutations of committed transactions, in commit order: data entries are
// buffered per transaction and applied when the transaction's commit marker
// arrives, so a transaction torn mid-commit-batch (no commit marker
// survives) leaves no trace. Legacy entries with no transaction framing are
// auto-committed and apply immediately. It returns the number of entries
// applied; a torn final entry is clean end-of-log.
func (c *Controller) RecoverJournal(r io.Reader) (int, error) {
	n, _, err := c.replay(r, true, 0)
	return n, err
}

// RecoverJournalFrom is RecoverJournal starting past a checkpoint: the first
// skip committed data entries — already reflected in the mounted page image —
// advance the key allocator but are not re-executed; only the tail past them
// is applied. It returns the number of entries applied and the journal's
// total committed-entry position, the figure a subsequent checkpoint resumes
// accounting from. A journal whose leading checkpoint marker claims more
// entries than skip covers a gap the image cannot fill and is refused.
func (c *Controller) RecoverJournalFrom(r io.Reader, skip uint64) (int, uint64, error) {
	return c.replay(r, true, skip)
}

func (c *Controller) replay(r io.Reader, committedOnly bool, skip uint64) (int, uint64, error) {
	dec := gob.NewDecoder(r)
	n := 0
	pos := uint64(0) // committed data entries seen, in commit order
	var pending map[uint64][]journalEntry
	if committedOnly {
		pending = make(map[uint64][]journalEntry)
	}
	apply := func(entry *journalEntry) error {
		pos++
		c.SeedKeys(entry.Key)
		if pos <= skip {
			// Covered by the checkpoint image: the effect is already in the
			// store; only the allocator bookkeeping above matters.
			return nil
		}
		req, err := entry.Req.ToRequest()
		if err != nil {
			return fmt.Errorf("kc: journal entry %d: %w", n+1, err)
		}
		if _, _, err := c.sys.ExecTimed(req); err != nil {
			return fmt.Errorf("kc: replaying entry %d: %w", n+1, err)
		}
		n++
		return nil
	}
	for {
		var entry journalEntry
		if err := dec.Decode(&entry); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				// End of log — including a final entry torn by a crash
				// mid-write. Everything before it applied cleanly.
				return n, pos, nil
			}
			return n, pos, fmt.Errorf("kc: journal entry %d: %w", n+1, err)
		}
		switch entry.Marker {
		case markerBegin:
			// Frame start; data entries follow under the same txn id.
		case markerCommit:
			if committedOnly {
				for i := range pending[entry.Txn] {
					if err := apply(&pending[entry.Txn][i]); err != nil {
						return n, pos, err
					}
				}
				delete(pending, entry.Txn)
			}
		case markerAbort:
			if committedOnly {
				delete(pending, entry.Txn)
			}
		case markerCheckpoint:
			// A rotated journal opens with one: entries before CkptEntries
			// were truncated away, their effects held by a page image. The
			// image being replayed against must cover at least that prefix.
			if entry.CkptEntries > skip && entry.CkptEntries > pos {
				return n, pos, fmt.Errorf(
					"kc: journal entry %d: checkpoint marker covers %d entries but the image covers only %d — journal and image do not match",
					n+1, entry.CkptEntries, skip)
			}
			if entry.CkptEntries > pos {
				pos = entry.CkptEntries
			}
			c.SeedKeys(entry.Key)
		case markerData:
			if committedOnly && entry.Txn != 0 {
				pending[entry.Txn] = append(pending[entry.Txn], entry)
				continue
			}
			if err := apply(&entry); err != nil {
				return n, pos, err
			}
		default:
			return n, pos, fmt.Errorf("kc: journal entry %d: unknown marker %d", n+1, entry.Marker)
		}
	}
}
