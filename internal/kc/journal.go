package kc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"mlds/internal/abdl"
	"mlds/internal/kdb"
	"mlds/internal/wire"
)

// journalEntry is one logged mutation. Key carries the controller's key
// allocator position so STORE-assigned database keys replay identically.
type journalEntry struct {
	Req wire.Request
	Key int64
}

// AttachJournal starts logging every mutating request (INSERT, DELETE,
// UPDATE) the controller executes, as a gob stream on w. Replaying the
// stream against a freshly-loaded database reproduces the mutations in
// order — the recovery log of a production deployment. Retrievals are not
// logged.
func (c *Controller) AttachJournal(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = gob.NewEncoder(w)
}

// DetachJournal stops journalling.
func (c *Controller) DetachJournal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = nil
}

// JournalError reports a mutation the kernel applied that the journal
// failed to record: the store and the recovery log have diverged, and a
// replay of the journal will not reproduce the current database. Applied
// carries the kernel results of the requests that did execute, so callers
// can keep the outcome (the data is durable in the kernel) while handling
// the divergence — typically by re-snapshotting rather than trusting the
// journal.
type JournalError struct {
	Applied []*kdb.Result // results of the round that executed before the journal failed
	Err     error         // the underlying journal write failure
}

// Error describes the divergence.
func (e *JournalError) Error() string {
	return fmt.Sprintf("kc: mutation applied to the kernel but not journalled (store and journal have diverged): %v", e.Err)
}

// Unwrap exposes the underlying journal write failure.
func (e *JournalError) Unwrap() error { return e.Err }

// logMutation writes one entry; called with a successful mutating request.
func (c *Controller) logMutation(req *abdl.Request) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	entry := journalEntry{Req: wire.FromRequest(req), Key: c.nextKey}
	if err := c.journal.Encode(&entry); err != nil {
		return fmt.Errorf("kc: journal write: %w", err)
	}
	return nil
}

// logMutations journals every mutating request of a batch under one lock
// acquisition — one journal flush per batch, not one per request.
// Retrievals are skipped.
func (c *Controller) logMutations(reqs []*abdl.Request) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	for _, req := range reqs {
		switch req.Kind {
		case abdl.Insert, abdl.Delete, abdl.Update:
			entry := journalEntry{Req: wire.FromRequest(req), Key: c.nextKey}
			if err := c.journal.Encode(&entry); err != nil {
				return fmt.Errorf("kc: journal write: %w", err)
			}
		}
	}
	return nil
}

// ReplayJournal reads a journal stream and re-executes every mutation on the
// controller, restoring the key allocator as it goes. It returns the number
// of entries applied.
func (c *Controller) ReplayJournal(r io.Reader) (int, error) {
	dec := gob.NewDecoder(r)
	n := 0
	for {
		var entry journalEntry
		if err := dec.Decode(&entry); err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, fmt.Errorf("kc: journal entry %d: %w", n+1, err)
		}
		req, err := entry.Req.ToRequest()
		if err != nil {
			return n, fmt.Errorf("kc: journal entry %d: %w", n+1, err)
		}
		if _, _, err := c.sys.ExecTimed(req); err != nil {
			return n, fmt.Errorf("kc: replaying entry %d: %w", n+1, err)
		}
		c.SeedKeys(entry.Key)
		n++
	}
}
