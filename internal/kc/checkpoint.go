package kc

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"time"

	"mlds/internal/kdb"
	"mlds/internal/pager"
)

// Fuzzy checkpoints.
//
// A checkpoint binds a page-file generation to an exact journal position:
// the image holds the effects of precisely the first N committed data
// entries, so recovery mounts the image and replays only the tail past N.
// Exactness matters — journal replay is not idempotent (an UPDATE's
// qualification can re-match records its own earlier replay rewrote) — and
// is obtained from two fences:
//
//   - The transaction manager's stamp barrier: CheckpointBegin runs inside
//     it, so the backing's applied epoch is a whole-batch boundary, never
//     the middle of a stamp broadcast.
//   - The sink's epoch pairing: the group-commit leader calls NoteEpoch
//     after each batch is durable and stamped, still under the barrier, so
//     the controller knows the exact journal prefix every epoch corresponds
//     to.
//
// Between CheckpointBegin and CheckpointCommit the store defers
// write-throughs behind its fence while group commit, stamping and reads
// all proceed — the checkpoint's pool flush and page-file commit never
// stall the commit path.

// ckptPair is the journal position a commit epoch was published at.
type ckptPair struct {
	entries uint64 // cumulative committed data entries in the journal
	maxKey  int64  // key-allocator position as of that prefix
}

// ErrCheckpointUnaligned reports a checkpoint attempt at an epoch the
// journal has no position pairing for — typically a store whose backing
// applied epochs the attached journal never saw (mixed direct writes), or a
// controller that was not seeded after recovery (SeedRecovery).
var ErrCheckpointUnaligned = errors.New("kc: checkpoint epoch has no journal position")

// CheckpointInfo describes a completed checkpoint.
type CheckpointInfo struct {
	Meta    pager.Meta // metadata committed into the page file
	Rotated bool       // the journal was truncated to a fresh file
	Tail    uint64     // committed entries past the checkpoint still in the journal
}

// Checkpoint takes a fuzzy checkpoint of the backed store: fence the
// backing at a whole commit epoch, flush the buffer pool and commit a page
// generation stamped with that epoch's exact journal position, write a
// checkpoint marker to the journal, and — when no committed entries have
// accumulated past the checkpoint — rotate the journal down to just the
// marker. Group commit keeps running throughout; only write-throughs queue
// behind the store fence.
func (c *Controller) Checkpoint(st *kdb.Store) (CheckpointInfo, error) {
	var (
		info  CheckpointInfo
		epoch uint64
		err   error
	)
	c.txns.WithStampBarrier(func() {
		epoch, err = st.CheckpointBegin()
	})
	if err != nil {
		return info, err
	}
	c.mu.Lock()
	pair, ok := c.jPairs[epoch]
	if !ok && epoch <= 1 && len(c.jPairs) == 0 {
		// A store that has never committed through this journal: the image
		// covers an empty prefix.
		pair, ok = ckptPair{entries: 0, maxKey: int64(c.nextKey)}, true
	}
	c.mu.Unlock()
	if !ok {
		st.CheckpointAbort()
		return info, fmt.Errorf("%w: epoch %d", ErrCheckpointUnaligned, epoch)
	}
	meta := pager.Meta{Epoch: epoch, Entries: pair.entries, MaxKey: pair.maxKey}
	if err := st.CheckpointCommit(meta); err != nil {
		return info, err
	}
	info.Meta = meta

	// The image is durable; note it in the journal. With no committed tail
	// past the checkpoint the whole journal is covered by the image and can
	// shrink to just the marker; otherwise the marker rides the existing
	// stream and replay uses the image's Entries to skip the covered prefix.
	c.mu.Lock()
	defer c.mu.Unlock()
	info.Tail = c.jEntries - pair.entries
	marker := journalEntry{Marker: markerCheckpoint, Key: pair.maxKey,
		CkptEpoch: epoch, CkptEntries: pair.entries}
	if c.journal != nil {
		if c.jf != nil && info.Tail == 0 {
			if err := c.rotateJournalLocked(&marker); err != nil {
				return info, err
			}
			info.Rotated = true
		} else {
			if err := c.journal.Encode(&marker); err != nil {
				return info, fmt.Errorf("kc: checkpoint marker: %w", err)
			}
			if err := c.jw.Flush(); err != nil {
				return info, fmt.Errorf("kc: checkpoint marker: %w", err)
			}
		}
	}
	c.lastCkpt = epoch
	for e := range c.jPairs {
		if e < epoch {
			delete(c.jPairs, e)
		}
	}
	return info, nil
}

// SeedRecovery primes the controller's checkpoint accounting after mounting
// a page image and replaying the journal tail: the commit clock continues
// past the image's epoch, the key allocator past its high water, and the
// journal position counters resume from the recovered total so the next
// checkpoint pairs exactly. entries is the position RecoverJournalFrom
// returned (or meta.Entries when there was no journal to replay).
func (c *Controller) SeedRecovery(meta pager.Meta, entries uint64) {
	c.txns.SeedClock(meta.Epoch)
	c.SeedKeys(meta.MaxKey)
	c.mu.Lock()
	defer c.mu.Unlock()
	if entries < meta.Entries {
		entries = meta.Entries
	}
	c.jEntries = entries
	c.jNoted = entries
	if int64(c.nextKey) > c.jMaxKey {
		c.jMaxKey = int64(c.nextKey)
	}
	if c.jPairs == nil {
		c.jPairs = make(map[uint64]ckptPair)
	}
	// The backing's applied epoch after recovery is the image's epoch — or 1,
	// since replayed tail entries auto-stamp at the store's floor epoch.
	// Either way the restored state now covers every recovered entry.
	pair := ckptPair{entries: entries, maxKey: c.jMaxKey}
	c.jPairs[meta.Epoch] = pair
	c.jPairs[max(meta.Epoch, 1)] = pair
	c.lastCkpt = meta.Epoch
}

// StartCheckpointer checkpoints st every interval until the returned stop
// function is called. Checkpoint errors are remembered and returned by stop;
// the loop keeps running after one (a transient unaligned epoch resolves at
// the next tick).
func (c *Controller) StartCheckpointer(st *kdb.Store, interval time.Duration) (stop func() error) {
	c.mu.Lock()
	c.ckptStop = make(chan struct{})
	c.ckptDone = make(chan struct{})
	stopCh, doneCh := c.ckptStop, c.ckptDone
	c.mu.Unlock()
	var firstErr error
	go func() {
		defer close(doneCh)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if _, err := c.Checkpoint(st); err != nil && firstErr == nil {
					firstErr = err
				}
			case <-stopCh:
				return
			}
		}
	}()
	return func() error {
		close(stopCh)
		<-doneCh
		return firstErr
	}
}

// JournalFile is an on-disk journal the controller can rotate at a
// checkpoint. A gob stream cannot be appended to by a new encoder (the
// decoder rejects the duplicate type definitions), so every attach and
// every rotation begins a fresh stream — written to a temporary file,
// synced, and renamed into place, preserving the prior journal on a crash
// at any point. Opening removes any stale temporary a crashed rotation left
// behind (its rename never happened, so the original is intact).
type JournalFile struct {
	path string
	f    *os.File
}

// OpenJournalFile prepares the journal at path for attachment. It does not
// read or modify an existing journal at path — recover from it first;
// AttachJournalFile then replaces it with a fresh stream.
func OpenJournalFile(path string) (*JournalFile, error) {
	os.Remove(path + ".tmp")
	return &JournalFile{path: path}, nil
}

// Path returns the journal's file path.
func (j *JournalFile) Path() string { return j.path }

// Close closes the underlying file.
func (j *JournalFile) Close() error {
	if j.f == nil {
		return nil
	}
	return j.f.Close()
}

// AttachJournalFile is AttachJournal over a rotatable journal file. It
// begins a fresh journal stream headed by a checkpoint marker carrying the
// controller's current covered position (zero on a fresh controller; the
// recovered total after SeedRecovery), replacing any previous journal at
// the path. The caller must ensure the store's durable image covers that
// position first — recover, checkpoint, then attach; an attach that
// truncates an uncovered journal is caught at the next recovery by the
// marker/image mismatch check rather than passing silently.
func (c *Controller) AttachJournalFile(j *JournalFile) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jf = j
	marker := journalEntry{Marker: markerCheckpoint, Key: c.jMaxKey,
		CkptEpoch: c.lastCkpt, CkptEntries: c.jEntries}
	if err := c.rotateJournalLocked(&marker); err != nil {
		c.jf = nil
		return err
	}
	return nil
}

// rotateJournalLocked replaces the journal with a fresh stream whose first
// entry is the checkpoint marker: marker to a temporary file, sync, rename
// over the journal. The encoder that wrote the marker stays attached — the
// whole file remains one gob stream. A crash at any point leaves either the
// old journal or the new one, both consistent with the last committed
// image. Caller holds c.mu and has verified the image covers every
// committed entry of the journal being replaced.
func (c *Controller) rotateJournalLocked(marker *journalEntry) error {
	tmp := c.jf.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("kc: journal rotation: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := gob.NewEncoder(w)
	if err := enc.Encode(marker); err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("kc: journal rotation: %w", err)
	}
	if err := os.Rename(tmp, c.jf.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("kc: journal rotation: %w", err)
	}
	old := c.jf.f
	c.jf.f = f
	c.jw = w
	c.journal = enc
	if old != nil {
		old.Close()
	}
	return nil
}
