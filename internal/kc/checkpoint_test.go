package kc

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
	"mlds/internal/pager"
)

// backedController builds a single-backend controller whose partition lives
// in the page file at pagePath. When the file exists it is opened (recovery
// path) and the image metadata is returned; otherwise it is created fresh.
func backedController(t *testing.T, pagePath string) (*Controller, *kdb.Store, pager.Meta) {
	t.Helper()
	dir := abdm.NewDirectory()
	if err := dir.DefineAttr("x", abdm.KindInt); err != nil {
		t.Fatal(err)
	}
	if err := dir.DefineFile("f", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	var meta pager.Meta
	cfg := mbds.DefaultConfig(1)
	cfg.StoreOpener = func(pos int, d *abdm.Directory, opts []kdb.Option) (*kdb.Store, error) {
		if _, err := os.Stat(pagePath); err == nil {
			st, m, err := kdb.OpenBacked(pagePath, d, opts...)
			meta = m
			return st, err
		}
		return kdb.CreateBacked(pagePath, d, opts...)
	}
	sys, err := mbds.New(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NextID > 0 {
		sys.SeedIDs(meta.NextID)
	}
	st := sys.Store(0)
	if st == nil || !st.Backed() {
		t.Fatal("backend 0 has no paged backing")
	}
	t.Cleanup(func() {
		st.CloseBacking()
		sys.Close()
	})
	return New(sys), st, meta
}

// recoverBacked reopens the page file and journal after a crash: mount the
// image, replay only the journal tail past it, and seed the controller for
// further checkpoints. Returns the controller plus the replayed-entry count.
func recoverBacked(t *testing.T, pagePath, journalPath string) (*Controller, *kdb.Store, int) {
	t.Helper()
	c, st, meta := backedController(t, pagePath)
	f, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	replayed, total, err := c.RecoverJournalFrom(f, meta.Entries)
	if err != nil {
		t.Fatal(err)
	}
	c.SeedRecovery(meta, total)
	return c, st, replayed
}

func attachJournalFile(t *testing.T, c *Controller, journalPath string) {
	t.Helper()
	jf, err := OpenJournalFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachJournalFile(jf); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jf.Close() })
}

// TestCheckpointBoundsRecovery is the end-to-end acceptance path: commit,
// checkpoint, commit a tail, crash, and recover — the replay must apply
// exactly the tail past the checkpoint, never the covered prefix.
func TestCheckpointBoundsRecovery(t *testing.T) {
	tmp := t.TempDir()
	pagePath := filepath.Join(tmp, "part0.pgf")
	journalPath := filepath.Join(tmp, "journal.gob")

	c, st, _ := backedController(t, pagePath)
	attachJournalFile(t, c, journalPath)
	for v := int64(1); v <= 10; v++ {
		if _, err := c.Exec(insertX(v)); err != nil {
			t.Fatal(err)
		}
	}
	// A non-idempotent mutation before the checkpoint: if recovery ever
	// replayed the covered prefix, this update would re-fire against the
	// restored state and corrupt it.
	if _, err := c.Exec(abdl.NewUpdate(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(3)}),
		abdl.Modifier{Attr: "x", Val: abdm.Int(30)})); err != nil {
		t.Fatal(err)
	}

	info, err := c.Checkpoint(st)
	if err != nil {
		t.Fatal(err)
	}
	if info.Meta.Entries != 11 {
		t.Fatalf("checkpoint covers %d entries, want 11", info.Meta.Entries)
	}
	if !info.Rotated || info.Tail != 0 {
		t.Fatalf("checkpoint with no tail: rotated=%v tail=%d, want rotation", info.Rotated, info.Tail)
	}

	// The tail past the checkpoint: three inserts and one update.
	for v := int64(11); v <= 13; v++ {
		if _, err := c.Exec(insertX(v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Exec(abdl.NewUpdate(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(30)}),
		abdl.Modifier{Attr: "x", Val: abdm.Int(31)})); err != nil {
		t.Fatal(err)
	}

	// Crash: nothing else is flushed or committed.
	c2, _, replayed := recoverBacked(t, pagePath, journalPath)
	if replayed != 4 {
		t.Fatalf("recovery replayed %d entries, want exactly the 4-entry tail", replayed)
	}
	for v := int64(1); v <= 13; v++ {
		want := 1
		if v == 3 { // updated twice: 3 → 30 → 31
			want = 0
		}
		if n := countX(t, c2, v); n != want {
			t.Fatalf("x=%d recovered %d times, want %d", v, n, want)
		}
	}
	if n := countX(t, c2, 31); n != 1 {
		t.Fatalf("tail update recovered %d times, want 1", n)
	}
	if n := countX(t, c2, 30); n != 0 {
		t.Fatal("pre-checkpoint update value resurfaced: covered prefix was replayed")
	}
}

// TestCheckpointAfterRecovery: a recovered controller checkpoints again, and
// the next recovery replays nothing.
func TestCheckpointAfterRecovery(t *testing.T) {
	tmp := t.TempDir()
	pagePath := filepath.Join(tmp, "part0.pgf")
	journalPath := filepath.Join(tmp, "journal.gob")

	c, st, _ := backedController(t, pagePath)
	attachJournalFile(t, c, journalPath)
	for v := int64(1); v <= 5; v++ {
		if _, err := c.Exec(insertX(v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	for v := int64(6); v <= 8; v++ {
		if _, err := c.Exec(insertX(v)); err != nil {
			t.Fatal(err)
		}
	}

	c2, st2, replayed := recoverBacked(t, pagePath, journalPath)
	if replayed != 3 {
		t.Fatalf("first recovery replayed %d, want 3", replayed)
	}
	info, err := c2.Checkpoint(st2)
	if err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
	if info.Meta.Entries != 8 {
		t.Fatalf("post-recovery checkpoint covers %d entries, want 8", info.Meta.Entries)
	}
	attachJournalFile(t, c2, journalPath)
	for v := int64(9); v <= 10; v++ {
		if _, err := c2.Exec(insertX(v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c2.Checkpoint(st2); err != nil {
		t.Fatal(err)
	}

	c3, _, replayed := recoverBacked(t, pagePath, journalPath)
	if replayed != 0 {
		t.Fatalf("recovery after clean checkpoint replayed %d entries, want 0", replayed)
	}
	for v := int64(1); v <= 10; v++ {
		if n := countX(t, c3, v); n != 1 {
			t.Fatalf("x=%d recovered %d times", v, n)
		}
	}
}

// TestCheckpointUnaligned: mounting an image without seeding the controller
// (SeedRecovery) leaves the commit epoch with no journal pairing — the
// checkpoint must refuse rather than guess a position.
func TestCheckpointUnaligned(t *testing.T) {
	tmp := t.TempDir()
	pagePath := filepath.Join(tmp, "part0.pgf")
	journalPath := filepath.Join(tmp, "journal.gob")

	c, st, _ := backedController(t, pagePath)
	attachJournalFile(t, c, journalPath)
	for v := int64(1); v <= 3; v++ {
		if _, err := c.Exec(insertX(v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Checkpoint(st); err != nil {
		t.Fatal(err)
	}

	// Remount the image but skip SeedRecovery: the image's epoch is unknown
	// to the fresh controller.
	c2, st2, _ := backedController(t, pagePath)
	if _, err := c2.Checkpoint(st2); !errors.Is(err, ErrCheckpointUnaligned) {
		t.Fatalf("checkpoint without SeedRecovery = %v, want ErrCheckpointUnaligned", err)
	}
}

// TestRecoveryRefusesMismatchedImage: a rotated journal's leading checkpoint
// marker claims a prefix the image does not cover — replaying it against a
// fresh (empty) store must fail loudly, not silently lose the prefix.
func TestRecoveryRefusesMismatchedImage(t *testing.T) {
	tmp := t.TempDir()
	pagePath := filepath.Join(tmp, "part0.pgf")
	journalPath := filepath.Join(tmp, "journal.gob")

	c, st, _ := backedController(t, pagePath)
	attachJournalFile(t, c, journalPath)
	for v := int64(1); v <= 4; v++ {
		if _, err := c.Exec(insertX(v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Checkpoint(st); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	fresh := newController(t)
	if _, _, err := fresh.RecoverJournalFrom(bytes.NewReader(data), 0); err == nil {
		t.Fatal("rotated journal accepted against an image that covers none of it")
	}
}

// TestCheckpointerDoesNotStallCommits runs the background checkpointer at an
// aggressive interval under a stream of commits: every commit must succeed,
// the checkpointer must not error, and the final state must recover exactly.
func TestCheckpointerDoesNotStallCommits(t *testing.T) {
	tmp := t.TempDir()
	pagePath := filepath.Join(tmp, "part0.pgf")
	journalPath := filepath.Join(tmp, "journal.gob")

	c, st, _ := backedController(t, pagePath)
	attachJournalFile(t, c, journalPath)
	stop := c.StartCheckpointer(st, 2*time.Millisecond)
	const n = 60
	for v := int64(1); v <= n; v++ {
		if _, err := c.Exec(insertX(v)); err != nil {
			stop()
			t.Fatalf("commit under background checkpointing: %v", err)
		}
	}
	if err := stop(); err != nil {
		t.Fatalf("background checkpointer: %v", err)
	}
	if _, err := c.Checkpoint(st); err != nil {
		t.Fatal(err)
	}

	c2, _, _ := recoverBacked(t, pagePath, journalPath)
	for v := int64(1); v <= n; v++ {
		if cnt := countX(t, c2, v); cnt != 1 {
			t.Fatalf("x=%d recovered %d times after checkpointed run", v, cnt)
		}
	}
}
