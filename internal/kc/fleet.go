package kc

import (
	"errors"
	"fmt"
	"io"

	"mlds/internal/kdb"
	"mlds/internal/pager"
)

// Fleet checkpoints.
//
// A multi-backend system puts every partition's backed store behind ONE
// controller and ONE journal. Checkpointing the stores one at a time with
// Checkpoint would stamp each page file with a different journal position,
// and recovery — which replays the shared journal exactly once, with a
// single skip count — could not pick a position valid for all of them.
// CheckpointFleet fences every store inside the same stamp barrier, so all
// images are exact at one journal position and recovery has a single
// consistent cut.
//
// The rule a shared-journal fleet must follow: checkpoint only through
// CheckpointFleet (or with one store only, Checkpoint — a fleet of one).
// Mixing per-store Checkpoint calls into a fleet leaves page files stamped
// at interleaved positions; FleetCut then recovers to the oldest of them
// and the marker/image mismatch check in RecoverJournalFrom refuses any
// rotated journal whose marker claims a newer prefix.

// ErrEmptyFleet reports a fleet operation over no stores.
var ErrEmptyFleet = errors.New("kc: empty fleet")

// CheckpointFleet takes one coordinated fuzzy checkpoint of several backed
// stores. All stores are fenced inside a single stamp barrier and the
// journal position is captured under the same barrier, so every image
// commits exact at that one position; each page file keeps its own applied
// epoch. After all images are durable, one checkpoint marker is written (the
// journal rotates when no committed entries have accumulated past the
// barrier). Any failure before the first image commit aborts the whole
// checkpoint; a failure between image commits leaves the already-committed
// generations in place — they are stamped with barrier positions, so fleet
// recovery (FleetCut + OpenBackedAt) still mounts a consistent cut, never a
// blend.
func (c *Controller) CheckpointFleet(stores []*kdb.Store) (CheckpointInfo, error) {
	var info CheckpointInfo
	if len(stores) == 0 {
		return info, ErrEmptyFleet
	}
	var (
		epochs = make([]uint64, len(stores))
		pos    uint64
		maxKey int64
		err    error
	)
	c.txns.WithStampBarrier(func() {
		for i, st := range stores {
			epochs[i], err = st.CheckpointBegin()
			if err != nil {
				for _, fenced := range stores[:i] {
					fenced.CheckpointAbort()
				}
				return
			}
		}
		c.mu.Lock()
		pos, maxKey = c.jEntries, c.jMaxKey
		if int64(c.nextKey) > maxKey {
			maxKey = int64(c.nextKey)
		}
		c.mu.Unlock()
	})
	if err != nil {
		return info, err
	}

	// Fences are up; flush and commit every image at the barrier position.
	// Group commit keeps running — new batches land past pos and replay as
	// tail. On a flush failure the remaining stores are not committed, but
	// generations already committed stand: each is exact at pos, and
	// recovery's cut is the minimum position across the fleet.
	for i, st := range stores {
		meta := pager.Meta{Epoch: epochs[i], Entries: pos, MaxKey: maxKey}
		if ferr := st.CheckpointFlush(meta); ferr != nil {
			err = fmt.Errorf("kc: fleet checkpoint, store %d: %w", i, ferr)
			break
		}
	}
	for _, st := range stores {
		st.CheckpointRelease()
	}
	if err != nil {
		return info, err
	}

	maxEpoch, minEpoch := epochs[0], epochs[0]
	for _, e := range epochs[1:] {
		if e > maxEpoch {
			maxEpoch = e
		}
		if e < minEpoch {
			minEpoch = e
		}
	}
	info.Meta = pager.Meta{Epoch: maxEpoch, Entries: pos, MaxKey: maxKey}

	// Every image is durable; note the barrier in the journal, exactly as a
	// single-store checkpoint would.
	c.mu.Lock()
	defer c.mu.Unlock()
	info.Tail = c.jEntries - pos
	marker := journalEntry{Marker: markerCheckpoint, Key: maxKey,
		CkptEpoch: maxEpoch, CkptEntries: pos}
	if c.journal != nil {
		if c.jf != nil && info.Tail == 0 {
			if err := c.rotateJournalLocked(&marker); err != nil {
				return info, err
			}
			info.Rotated = true
		} else {
			if err := c.journal.Encode(&marker); err != nil {
				return info, fmt.Errorf("kc: checkpoint marker: %w", err)
			}
			if err := c.jw.Flush(); err != nil {
				return info, fmt.Errorf("kc: checkpoint marker: %w", err)
			}
		}
	}
	c.lastCkpt = maxEpoch
	for e := range c.jPairs {
		if e < minEpoch {
			delete(c.jPairs, e)
		}
	}
	return info, nil
}

// FleetCut computes the recovery position for a fleet of page files sharing
// one journal: the largest journal position every file has a committed
// generation at or below — the minimum, across the fleet, of each file's
// newest generation position. Mount each store with kdb.OpenBackedAt at the
// cut, then replay the shared journal once past it (RecoverFleet). Because
// fleet checkpoints stamp every generation at barrier positions, a crash
// between two stores' image commits recovers the laggard's previous barrier
// for everyone, never a blend of positions.
func FleetCut(paths []string) (uint64, error) {
	if len(paths) == 0 {
		return 0, ErrEmptyFleet
	}
	var cut uint64
	for i, p := range paths {
		metas, err := pager.Metas(p)
		if err != nil {
			return 0, fmt.Errorf("kc: fleet cut: %s: %w", p, err)
		}
		if len(metas) == 0 {
			return 0, fmt.Errorf("kc: fleet cut: %s: no valid generation", p)
		}
		if i == 0 || metas[0].Entries < cut {
			cut = metas[0].Entries
		}
	}
	return cut, nil
}

// RecoverFleet replays the shared journal past a fleet cut and seeds the
// controller's clock, key allocator and checkpoint accounting from the
// mounted images. Call it after opening every store of the fleet with
// kdb.OpenBackedAt(path, dir, cut) and registering them on the system —
// replay fans the tail back out through normal request routing. metas are
// the mounted stores' page metadata (kdb.Store.BackingMeta or
// pager.File.Meta); it returns the number of tail entries applied.
func (c *Controller) RecoverFleet(r io.Reader, cut uint64, metas ...pager.Meta) (int, error) {
	n, total, err := c.RecoverJournalFrom(r, cut)
	if err != nil {
		return n, err
	}
	seed := pager.Meta{Entries: cut}
	for _, m := range metas {
		if m.Epoch > seed.Epoch {
			seed.Epoch = m.Epoch
		}
		if m.MaxKey > seed.MaxKey {
			seed.MaxKey = m.MaxKey
		}
	}
	c.SeedRecovery(seed, total)
	// Any store whose image epoch lags the fleet maximum still covers the
	// whole recovered prefix — nothing touched it between its epoch and the
	// barrier — so pair every mounted epoch with the recovered position.
	c.mu.Lock()
	pair := ckptPair{entries: c.jEntries, maxKey: c.jMaxKey}
	for _, m := range metas {
		c.jPairs[m.Epoch] = pair
	}
	c.mu.Unlock()
	return n, nil
}
