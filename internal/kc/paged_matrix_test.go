package kc

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
	"mlds/internal/pager"
	"mlds/internal/txn"
)

// smallPagedController is backedController with the page file tuned so the
// whole file stays a few KiB: the torn-write matrix below replays a
// byte-granular crash sweep over it.
func smallPagedController(t *testing.T, pagePath string) (*Controller, *kdb.Store) {
	t.Helper()
	dir := abdm.NewDirectory()
	if err := dir.DefineAttr("x", abdm.KindInt); err != nil {
		t.Fatal(err)
	}
	if err := dir.DefineFile("f", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	cfg := mbds.DefaultConfig(1)
	cfg.StoreOpener = func(pos int, d *abdm.Directory, opts []kdb.Option) (*kdb.Store, error) {
		opts = append(opts, kdb.WithPageSize(pager.MinPageSize), kdb.WithPoolPages(4))
		return kdb.CreateBacked(pagePath, d, opts...)
	}
	sys, err := mbds.New(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Store(0)
	t.Cleanup(func() {
		st.CloseBacking()
		sys.Close()
	})
	return New(sys), st
}

// TestRecoveryMatrixTornIndexPages sweeps a crash through the page file
// itself, at every byte of the window a checkpoint writes: heap writebacks,
// the persisted index's blob pages, everything up to — but not including —
// the superblock flip. The copy-on-write contract says any such torn state
// still mounts the PREVIOUS generation exactly, the journal tail replays,
// and the database equals the post-crash-window committed state. The final
// iteration flips the superblock too (crash after commit, before journal
// rotation) and must replay nothing.
func TestRecoveryMatrixTornIndexPages(t *testing.T) {
	tmp := t.TempDir()
	pagePath := filepath.Join(tmp, "part0.pgf")
	journalPath := filepath.Join(tmp, "journal.gob")

	c, st := smallPagedController(t, pagePath)
	attachJournalFile(t, c, journalPath)
	ctx := context.Background()

	// Transaction A, captured by checkpoint 1: x=1 and x=2.
	a := c.Txns().Begin()
	actx := txn.NewContext(ctx, a)
	for _, v := range []int64{1, 2} {
		if _, err := c.ExecCtx(actx, insertX(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Txns().Commit(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	s1, err := os.ReadFile(pagePath)
	if err != nil {
		t.Fatal(err)
	}

	// Transaction C, the tail checkpoint 2 will try to capture: insert x=4,
	// rewrite x=1 to x=5.
	cw := c.Txns().Begin()
	cctx := txn.NewContext(ctx, cw)
	if _, err := c.ExecCtx(cctx, insertX(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecCtx(cctx, abdl.NewUpdate(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(1)}),
		abdl.Modifier{Attr: "x", Val: abdm.Int(5)})); err != nil {
		t.Fatal(err)
	}
	if err := c.Txns().Commit(cw); err != nil {
		t.Fatal(err)
	}
	// The journal as the crash sees it: checkpoint 1's marker plus C's
	// frames. Checkpoint 2 crashes before rotating it.
	jMid, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := c.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	s2, err := os.ReadFile(pagePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2) <= len(s1) {
		t.Fatalf("checkpoint 2 appended nothing: %d -> %d bytes", len(s1), len(s2))
	}

	// A torn file is checkpoint 2's data region under checkpoint 1's
	// superblocks (pages are fsynced before the superblock flips, so every
	// real crash state has the old superblocks), truncated at the crash byte.
	super := 2 * pager.MinPageSize
	verify := func(t *testing.T, file []byte, wantReplayed int, label string) {
		t.Helper()
		dir := t.TempDir()
		pp := filepath.Join(dir, "part0.pgf")
		jp := filepath.Join(dir, "journal.gob")
		if err := os.WriteFile(pp, file, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jp, jMid, 0o644); err != nil {
			t.Fatal(err)
		}
		c2, _, replayed := recoverBacked(t, pp, jp)
		if replayed != wantReplayed {
			t.Fatalf("%s: replayed %d entries, want %d", label, replayed, wantReplayed)
		}
		for v, want := range map[int64]int{1: 0, 2: 1, 4: 1, 5: 1} {
			if n := countX(t, c2, v); n != want {
				t.Fatalf("%s: x=%d recovered %d times, want %d", label, v, n, want)
			}
		}
	}
	for cut := len(s1); cut <= len(s2); cut++ {
		torn := append([]byte{}, s1[:super]...)
		torn = append(torn, s2[super:cut]...)
		verify(t, torn, 2, "torn cut at byte "+itoa(cut))
	}
	// Superblock flipped, journal not yet rotated: the image covers C, so
	// nothing replays.
	verify(t, s2, 0, "committed superblock")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestRecoveryMatrixFleetBarrier extends the truncate-at-every-byte matrix
// to the coordinated fleet checkpoint: two paged partitions behind one
// journal checkpoint at a barrier, a transaction commits past it, and the
// journal is cut at every byte — inside the barrier marker, inside the
// transaction's frames, everywhere. Every cut must recover BOTH partitions
// to the barrier state or to the tail transaction's state, never a blend,
// and never replay the barrier-covered prefix.
func TestRecoveryMatrixFleetBarrier(t *testing.T) {
	tmp := t.TempDir()
	journalPath := filepath.Join(tmp, "journal.gob")
	const n = 2

	c, stores, _ := fleetController(t, tmp, n, nil)
	attachJournalFile(t, c, journalPath)
	ctx := context.Background()

	a := c.Txns().Begin()
	actx := txn.NewContext(ctx, a)
	for _, v := range []int64{1, 2} {
		if _, err := c.ExecCtx(actx, insertX(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Txns().Commit(a); err != nil {
		t.Fatal(err)
	}

	info, err := c.CheckpointFleet(stores)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Rotated || info.Meta.Entries != 2 {
		t.Fatalf("fleet checkpoint info = %+v, want rotation covering 2 entries", info)
	}

	cw := c.Txns().Begin()
	cctx := txn.NewContext(ctx, cw)
	if _, err := c.ExecCtx(cctx, insertX(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecCtx(cctx, abdl.NewUpdate(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(1)}),
		abdl.Modifier{Attr: "x", Val: abdm.Int(5)})); err != nil {
		t.Fatal(err)
	}
	if err := c.Txns().Commit(cw); err != nil {
		t.Fatal(err)
	}

	journal, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	images := make([][]byte, n)
	for i := range images {
		if images[i], err = os.ReadFile(fleetPath(tmp, i)); err != nil {
			t.Fatal(err)
		}
	}

	for cut := 0; cut <= len(journal); cut++ {
		dir := t.TempDir()
		for i := range images {
			if err := os.WriteFile(fleetPath(dir, i), images[i], 0o644); err != nil {
				t.Fatal(err)
			}
		}
		jp := filepath.Join(dir, "journal.gob")
		if err := os.WriteFile(jp, journal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		c2, _, _, replayed, barrier := recoverFleet(t, dir, n, jp)
		if barrier != 2 {
			t.Fatalf("cut at byte %d: fleet cut %d, want the barrier 2", cut, barrier)
		}
		if replayed != 0 && replayed != 2 {
			t.Fatalf("cut at byte %d: replayed %d entries, want 0 or the whole commit", cut, replayed)
		}
		if cnt := countX(t, c2, 2); cnt != 1 {
			t.Fatalf("cut at byte %d: barrier-covered record lost (%d copies)", cut, cnt)
		}
		old, upd, ins := countX(t, c2, 1), countX(t, c2, 5), countX(t, c2, 4)
		switch {
		case old == 1 && upd == 0 && ins == 0:
			// Barrier state across both partitions.
		case old == 0 && upd == 1 && ins == 1:
			// Tail transaction recovered whole.
		default:
			t.Fatalf("cut at byte %d: blended state x1=%d x5=%d x4=%d", cut, old, upd, ins)
		}
	}
}
