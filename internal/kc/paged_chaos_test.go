package kc

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
	"mlds/internal/pager"
	"mlds/internal/txn"
)

// TestPagedFleetChaos is the larger-than-RAM chaos suite: a three-partition
// demand-paged fleet behind 4-frame pools takes concurrent writers and a
// live commit-stream watcher while a barrier-checkpoint loop runs, and a
// backend is drained in the middle of it. The contract under all that churn:
//
//   - zero failed requests;
//   - the watcher's committed-insert stream is exactly the set of values
//     writers saw acknowledged, and the fleet holds each exactly once;
//   - the pools stayed tiny while the dataset did not — real eviction
//     pressure on every surviving partition;
//   - after a crash, mounting the survivors at the fleet cut and replaying
//     the shared journal reproduces the exact same set.
//
// Run under -race this doubles as the demand-paging data-race suite.
func TestPagedFleetChaos(t *testing.T) {
	tmp := t.TempDir()
	journalPath := filepath.Join(tmp, "journal.gob")
	dir := abdm.NewDirectory()
	if err := dir.DefineAttr("x", abdm.KindInt); err != nil {
		t.Fatal(err)
	}
	if err := dir.DefineFile("f", []string{"x"}); err != nil {
		t.Fatal(err)
	}

	// Every partition a backed store over its own page file, 4 frames each.
	// Track which page file each store got: the drain will retire one, and
	// recovery mounts only the survivors.
	var (
		openMu  sync.Mutex
		created []*kdb.Store
		pathOf  = map[*kdb.Store]string{}
	)
	tiny := func(opts []kdb.Option) []kdb.Option {
		return append(opts, kdb.WithPageSize(pager.MinPageSize), kdb.WithPoolPages(4))
	}
	cfg := mbds.DefaultConfig(3)
	cfg.StoreOpener = func(pos int, d *abdm.Directory, opts []kdb.Option) (*kdb.Store, error) {
		path := filepath.Join(tmp, "part"+itoa(pos)+".pgf")
		st, err := kdb.CreateBacked(path, d, tiny(opts)...)
		if err != nil {
			return nil, err
		}
		openMu.Lock()
		created = append(created, st)
		pathOf[st] = path
		openMu.Unlock()
		return st, nil
	}
	sys, err := mbds.New(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, st := range created {
			st.CloseBacking()
		}
		sys.Close()
	})
	c := New(sys)
	attachJournalFile(t, c, journalPath)

	// The watcher: a live subscriber to the group-commit stream. Its view of
	// committed inserts is the oracle the final states are held against.
	sub := c.SubscribeCommits(1 << 16)
	var (
		oracleMu sync.Mutex
		oracle   = map[int64]bool{}
	)
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		for rec := range sub.C {
			for _, e := range rec.Entries {
				if e.Req.Kind != int(abdl.Insert) {
					continue
				}
				r, err := e.Req.Record.ToRecord()
				if err != nil {
					continue
				}
				if v, ok := r.Get("x"); ok {
					oracleMu.Lock()
					oracle[v.AsInt()] = true
					oracleMu.Unlock()
				}
			}
		}
	}()

	const workers = 4
	var wg sync.WaitGroup
	stopW := make(chan struct{})
	type workerState struct {
		committed []int64
		failures  []error
	}
	states := make([]workerState, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &states[w]
			next := int64(w) * 1_000_000
			for i := 0; ; i++ {
				select {
				case <-stopW:
					return
				default:
				}
				switch i % 5 {
				case 0, 1: // auto-commit insert
					next++
					if _, err := c.Exec(insertX(next)); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					st.committed = append(st.committed, next)
				case 2: // explicit transaction, committed
					tx := c.Txns().Begin()
					ctx := txn.NewContext(context.Background(), tx)
					a, b := next+1, next+2
					next += 2
					if _, err := c.ExecCtx(ctx, insertX(a)); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					if _, err := c.ExecCtx(ctx, insertX(b)); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					if err := c.Txns().Commit(tx); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					st.committed = append(st.committed, a, b)
				case 3: // aborted transaction: must vanish
					tx := c.Txns().Begin()
					ctx := txn.NewContext(context.Background(), tx)
					next++
					if _, err := c.ExecCtx(ctx, insertX(next)); err != nil {
						st.failures = append(st.failures, err)
						return
					}
					if err := c.Txns().Abort(tx); err != nil {
						st.failures = append(st.failures, err)
						return
					}
				case 4: // read while everything churns
					if _, err := c.Exec(retrieveX(next)); err != nil {
						st.failures = append(st.failures, err)
						return
					}
				}
			}
		}(w)
	}

	// The barrier-checkpoint loop: the whole fleet, over and over, while
	// writers write and the drain runs. Membership churn between listing the
	// fleet and fencing it can surface as a begin error; the loop just takes
	// the next lap. The post-drain checkpoint below must succeed for real.
	stopC := make(chan struct{})
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		for {
			select {
			case <-stopC:
				return
			default:
			}
			fleet := liveFleet(sys)
			if len(fleet) > 0 {
				_, _ = c.CheckpointFleet(fleet)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// The chaos: drain a partition in the middle of the checkpoint cadence.
	time.Sleep(25 * time.Millisecond)
	if err := sys.DrainBackend(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(25 * time.Millisecond)
	close(stopC)
	<-ckptDone

	// A guaranteed post-drain barrier, then a journal tail behind it.
	survivors := liveFleet(sys)
	if len(survivors) != 2 {
		t.Fatalf("drain left %d live partitions, want 2", len(survivors))
	}
	info, err := c.CheckpointFleet(survivors)
	if err != nil {
		t.Fatalf("post-drain fleet checkpoint: %v", err)
	}
	time.Sleep(15 * time.Millisecond)
	close(stopW)
	wg.Wait()
	sub.Close()
	<-watcherDone
	if sub.Dropped() != 0 {
		t.Fatalf("watcher dropped %d commit records", sub.Dropped())
	}

	for w := range states {
		if len(states[w].failures) > 0 {
			t.Fatalf("worker %d: %d failed requests, first: %v",
				w, len(states[w].failures), states[w].failures[0])
		}
	}
	acked := map[int64]bool{}
	for w := range states {
		for _, v := range states[w].committed {
			acked[v] = true
		}
	}
	oracleMu.Lock()
	for v := range acked {
		if !oracle[v] {
			t.Fatalf("value %d acknowledged to a worker but never reached the watcher", v)
		}
	}
	oracleMu.Unlock()

	assertExactly := func(t *testing.T, res *kdb.Result, label string) {
		t.Helper()
		got := map[int64]int{}
		for _, sr := range res.Records {
			v, _ := sr.Rec.Get("x")
			got[v.AsInt()]++
		}
		for v := range acked {
			if got[v] != 1 {
				t.Errorf("%s: committed value %d present %d times", label, v, got[v])
			}
		}
		for v, n := range got {
			if !acked[v] {
				t.Errorf("%s: uncommitted value %d present (%d copies)", label, v, n)
			}
		}
		if t.Failed() {
			t.Fatalf("%s: exactness violated over %d committed values", label, len(acked))
		}
	}
	res, err := c.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	assertExactly(t, res, "live fleet")

	// Larger than RAM, for real: each survivor's heap dwarfs its pool and
	// the pool paid for it in evictions.
	survivorPaths := make([]string, len(survivors))
	for i, st := range survivors {
		openMu.Lock()
		survivorPaths[i] = pathOf[st]
		openMu.Unlock()
		stats, pages, backed := st.BackingStats()
		if !backed {
			t.Fatalf("survivor %d lost its backing", i)
		}
		if pages <= 4 || stats.Evictions == 0 {
			t.Fatalf("survivor %d: %d pages, %d evictions — no paging pressure", i, pages, stats.Evictions)
		}
	}

	// Crash the whole fleet and recover the survivors at the fleet cut.
	c.DetachJournal()
	sys.Close()
	for _, st := range created {
		st.CloseBacking()
	}

	cut, err := FleetCut(survivorPaths)
	if err != nil {
		t.Fatal(err)
	}
	if cut < info.Meta.Entries {
		t.Fatalf("fleet cut %d behind the post-drain barrier %d", cut, info.Meta.Entries)
	}
	metas := make([]pager.Meta, len(survivorPaths))
	cfg2 := mbds.DefaultConfig(len(survivorPaths))
	cfg2.StoreOpener = func(pos int, d *abdm.Directory, opts []kdb.Option) (*kdb.Store, error) {
		st, m, err := kdb.OpenBackedAt(survivorPaths[pos], d, cut, tiny(opts)...)
		metas[pos] = m
		return st, err
	}
	sys2, err := mbds.New(dir, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := New(sys2)
	t.Cleanup(func() {
		for i := range survivorPaths {
			if st := sys2.Store(i); st != nil {
				st.CloseBacking()
			}
		}
		sys2.Close()
	})
	var maxID uint64
	for _, m := range metas {
		if m.NextID > maxID {
			maxID = m.NextID
		}
	}
	sys2.SeedIDs(maxID)
	jr, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if _, err := c2.RecoverFleet(jr, cut, metas...); err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	assertExactly(t, res2, "recovered fleet")
}

// liveFleet lists the current live partitions' stores, deduplicated against
// membership churn racing the position scan.
func liveFleet(sys *mbds.System) []*kdb.Store {
	seen := map[*kdb.Store]bool{}
	var out []*kdb.Store
	for pos := 0; pos < sys.Backends(); pos++ {
		if st := sys.Store(pos); st != nil && !seen[st] {
			seen[st] = true
			out = append(out, st)
		}
	}
	return out
}
