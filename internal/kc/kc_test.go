package kc

import (
	"bytes"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/mbds"
)

func newController(t *testing.T) *Controller {
	t.Helper()
	dir := abdm.NewDirectory()
	if err := dir.DefineAttr("x", abdm.KindInt); err != nil {
		t.Fatal(err)
	}
	if err := dir.DefineFile("f", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	sys, err := mbds.New(dir, mbds.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return New(sys)
}

func TestControllerExec(t *testing.T) {
	c := newController(t)
	ins := abdl.NewInsert(abdm.NewRecord("f", abdm.Keyword{Attr: "x", Val: abdm.Int(1)}))
	if _, err := c.Exec(ins); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(1)}), abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Errorf("records = %d", len(res.Records))
	}
	if c.SimTime() <= 0 {
		t.Error("simulated time should accumulate")
	}
	if c.System() == nil {
		t.Error("System() nil")
	}
}

func TestControllerKeys(t *testing.T) {
	c := newController(t)
	if k := c.NextKey(); k != 1 {
		t.Errorf("first key = %d", k)
	}
	c.SeedKeys(100)
	if k := c.NextKey(); k != 101 {
		t.Errorf("seeded key = %d", k)
	}
	// Seeding backwards must not rewind.
	c.SeedKeys(5)
	if k := c.NextKey(); k != 102 {
		t.Errorf("key after backwards seed = %d", k)
	}
}

func TestControllerTrace(t *testing.T) {
	c := newController(t)
	req := abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(1)}), abdl.AllAttrs)
	// Not tracing yet.
	if _, err := c.Exec(req); err != nil {
		t.Fatal(err)
	}
	if len(c.Trace()) != 0 {
		t.Error("trace recorded while off")
	}
	c.StartTrace()
	if _, err := c.Exec(req); err != nil {
		t.Fatal(err)
	}
	tr := c.Trace()
	if len(tr) != 1 || tr[0] != req.String() {
		t.Errorf("trace = %v", tr)
	}
	c.StopTrace()
	if _, err := c.Exec(req); err != nil {
		t.Fatal(err)
	}
	if len(c.Trace()) != 1 {
		t.Error("trace grew after StopTrace")
	}
	// StartTrace clears the old trace.
	c.StartTrace()
	if len(c.Trace()) != 0 {
		t.Error("StartTrace did not clear")
	}
}

func TestControllerExecError(t *testing.T) {
	c := newController(t)
	bad := abdl.NewInsert(abdm.NewRecord("nosuchfile"))
	if _, err := c.Exec(bad); err == nil {
		t.Error("invalid request accepted")
	}
}

func TestJournalReplay(t *testing.T) {
	// Mutations on one controller replay onto a fresh kernel.
	c1 := newController(t)
	var journal bytes.Buffer
	c1.AttachJournal(&journal)
	for i := int64(1); i <= 5; i++ {
		ins := abdl.NewInsert(abdm.NewRecord("f", abdm.Keyword{Attr: "x", Val: abdm.Int(i)}))
		if _, err := c1.Exec(ins); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c1.Exec(abdl.NewUpdate(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(3)}),
		abdl.Modifier{Attr: "x", Val: abdm.Int(30)})); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec(abdl.NewDelete(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(1)}))); err != nil {
		t.Fatal(err)
	}
	c1.SeedKeys(42)
	ins := abdl.NewInsert(abdm.NewRecord("f", abdm.Keyword{Attr: "x", Val: abdm.Int(99)}))
	if _, err := c1.Exec(ins); err != nil {
		t.Fatal(err)
	}
	// Retrievals are not journalled.
	if _, err := c1.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs)); err != nil {
		t.Fatal(err)
	}

	c2 := newController(t)
	n, err := c2.ReplayJournal(&journal)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 { // 5 inserts + update + delete + final insert
		t.Errorf("replayed %d entries", n)
	}
	a, err := c1.System().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c2.System().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("snapshots differ in size: %d vs %d", len(a), len(b))
	}
	seen := map[string]int{}
	for _, sr := range a {
		seen[sr.Rec.Key()]++
	}
	for _, sr := range b {
		seen[sr.Rec.Key()]--
	}
	for k, v := range seen {
		if v != 0 {
			t.Fatalf("content diverged at %q", k)
		}
	}
	// Key allocator restored past the seed.
	if k := c2.NextKey(); k <= 42 {
		t.Errorf("replayed key allocator = %d, want > 42", k)
	}
}

func TestJournalDetach(t *testing.T) {
	c := newController(t)
	var journal bytes.Buffer
	c.AttachJournal(&journal)
	ins := abdl.NewInsert(abdm.NewRecord("f", abdm.Keyword{Attr: "x", Val: abdm.Int(1)}))
	if _, err := c.Exec(ins); err != nil {
		t.Fatal(err)
	}
	size := journal.Len()
	if size == 0 {
		t.Fatal("nothing journalled")
	}
	c.DetachJournal()
	if _, err := c.Exec(ins); err != nil {
		t.Fatal(err)
	}
	if journal.Len() != size {
		t.Error("journal grew after detach")
	}
}

func TestJournalReplayGarbage(t *testing.T) {
	c := newController(t)
	// A complete but corrupt gob message must be rejected. (A *truncated*
	// trailing message is different: that is the torn final entry of a
	// crash mid-write, which replay treats as clean end-of-log.)
	corrupt := []byte{0x01, 0x00} // one-byte message carrying type id 0
	if _, err := c.ReplayJournal(bytes.NewReader(corrupt)); err == nil {
		t.Error("corrupt journal accepted")
	}
}
