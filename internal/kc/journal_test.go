package kc

import (
	"bytes"
	"errors"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

// failWriter fails every write after the first n bytes succeed.
type failWriter struct {
	n    int
	seen int
}

var errDiskFull = errors.New("disk full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.seen >= w.n {
		return 0, errDiskFull
	}
	w.seen += len(p)
	return len(p), nil
}

func insertX(v int64) *abdl.Request {
	return abdl.NewInsert(abdm.NewRecord("f", abdm.Keyword{Attr: "x", Val: abdm.Int(v)}))
}

// TestJournalFailureSurfacesDivergence covers the store/journal divergence:
// a mutation that applies to the kernel but fails to journal must come back
// as a JournalError carrying the applied result, not as a plain failure —
// and the record must actually be in the store.
func TestJournalFailureSurfacesDivergence(t *testing.T) {
	c := newController(t)
	c.AttachJournal(&failWriter{}) // fails from the first byte

	_, err := c.Exec(insertX(7))
	if err == nil {
		t.Fatal("journalled insert with a failing journal succeeded silently")
	}
	var je *JournalError
	if !errors.As(err, &je) {
		t.Fatalf("error is %T (%v), want *JournalError", err, err)
	}
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("JournalError does not unwrap to the write failure: %v", err)
	}
	if len(je.Applied) != 1 || je.Applied[0] == nil || je.Applied[0].Count != 1 {
		t.Fatalf("JournalError.Applied = %+v, want the applied insert result", je.Applied)
	}
	// The divergence is real: the kernel holds the record the journal lost.
	res, err := c.Exec(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(7)}), abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("kernel holds %d records for x=7, want 1 (the un-journalled mutation)", len(res.Records))
	}
}

// TestExecBatchJournalsMutations checks a batched round journals its
// mutations (and only those) so a replay reproduces the batch.
func TestExecBatchJournalsMutations(t *testing.T) {
	c1 := newController(t)
	var journal bytes.Buffer
	c1.AttachJournal(&journal)
	reqs := []*abdl.Request{
		insertX(1),
		insertX(2),
		abdl.NewRetrieve(abdm.And(abdm.Predicate{Attr: "x", Op: abdm.OpGe, Val: abdm.Int(0)}), abdl.AllAttrs),
		abdl.NewUpdate(abdm.And(abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(2)}),
			abdl.Modifier{Attr: "x", Val: abdm.Int(3)}),
	}
	results, err := c1.ExecBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("batch returned %d results, want 4", len(results))
	}
	if len(results[2].Records) != 2 {
		t.Fatalf("batched retrieve saw %d records, want 2", len(results[2].Records))
	}

	c2 := newController(t)
	n, err := c2.ReplayJournal(&journal)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d journal entries, want 3 (retrieve is not journalled)", n)
	}
	res, err := c2.Exec(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(3)}), abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("replayed database has %d records with x=3, want 1", len(res.Records))
	}
}

// TestExecBatchJournalFailure: a batch whose journal write fails surfaces
// one JournalError carrying every applied result.
func TestExecBatchJournalFailure(t *testing.T) {
	c := newController(t)
	c.AttachJournal(&failWriter{})
	_, err := c.ExecBatch([]*abdl.Request{insertX(1), insertX(2)})
	var je *JournalError
	if !errors.As(err, &je) {
		t.Fatalf("error is %T (%v), want *JournalError", err, err)
	}
	if len(je.Applied) != 2 {
		t.Fatalf("JournalError.Applied has %d results, want both applied inserts", len(je.Applied))
	}
}
