package kc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"mlds/internal/txn"
	"mlds/internal/wire"
)

// ErrCompacted reports a journal read that asked for positions a checkpoint
// has already truncated away: the requested range is covered only by a page
// image, from which per-record deltas cannot be reconstructed. Tailers that
// hit it must re-snapshot instead of resuming.
var ErrCompacted = errors.New("kc: journal compacted past the requested position")

// ErrNoJournalFile reports that the controller's journal is not file-backed
// (AttachJournal on a plain writer, or no journal at all), so committed
// history cannot be re-read for resynchronization.
var ErrNoJournalFile = errors.New("kc: journal is not file-backed; cannot re-read committed history")

// CommittedEntry is one committed journal data entry in commit order. Pos is
// its 1-based position among all committed data entries — the same counting
// replay and the fuzzy-checkpoint epoch pairing use — so a tailer that knows
// the last position it delivered can ask for exactly the rest.
type CommittedEntry struct {
	Pos      uint64
	Txn      uint64
	Req      wire.Request
	Key      int64
	Affected []uint64
}

// JournalPos reports the journal's committed data-entry count: the position
// a fully caught-up tailer sits at.
func (c *Controller) JournalPos() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jEntries
}

// WatchSnapshot begins a snapshot transaction and returns it together with
// the journal position its pinned epoch corresponds to: every committed data
// entry at a position <= pos is visible inside the snapshot, and every entry
// past it is not. A watch loads its initial state through the transaction and
// tails the journal from pos — no gaps, no duplicates.
//
// The snapshot is taken under the stamp barrier: the clock cannot move
// between pinning the epoch and reading its position pairing, so a pairing
// miss can only mean the epoch was never produced by a stamp (a fresh or
// just-recovered controller). Its position is then the last noted one —
// jEntries itself would be wrong there, because a batch that has flushed but
// not yet stamped is counted in jEntries yet invisible to the snapshot.
func (c *Controller) WatchSnapshot() (*txn.Txn, uint64) {
	var (
		tx  *txn.Txn
		pos uint64
	)
	c.txns.WithStampBarrier(func() {
		tx = c.txns.BeginSnapshot()
		epoch := tx.SnapshotEpoch()
		c.mu.Lock()
		defer c.mu.Unlock()
		if pair, ok := c.jPairs[epoch]; ok {
			pos = pair.entries
			return
		}
		pos = c.jNoted
	})
	return tx, pos
}

// ReadCommitted re-reads the attached journal file and returns every
// committed data entry with position > after, in commit order. It is the
// resynchronization path of a lossless tailer: when the live commit stream
// drops records, the dropped range is re-read from disk. Entries are durable
// before commit records are published, so any range a subscriber ever saw
// announced is readable here — unless a checkpoint rotation truncated it,
// which returns ErrCompacted.
func (c *Controller) ReadCommitted(after uint64) ([]CommittedEntry, error) {
	c.mu.Lock()
	jf := c.jf
	if jf == nil {
		c.mu.Unlock()
		return nil, ErrNoJournalFile
	}
	path := jf.Path()
	c.mu.Unlock()

	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kc: read journal: %w", err)
	}
	defer f.Close()
	return readCommitted(f, after)
}

// readCommitted scans one journal stream, mirroring replay's commit-order
// position accounting, and collects committed data entries past after.
func readCommitted(r io.Reader, after uint64) ([]CommittedEntry, error) {
	dec := gob.NewDecoder(r)
	pos := uint64(0)
	pending := make(map[uint64][]journalEntry)
	var out []CommittedEntry
	commit := func(entry *journalEntry) {
		pos++
		if pos > after {
			out = append(out, CommittedEntry{
				Pos:      pos,
				Txn:      entry.Txn,
				Req:      entry.Req,
				Key:      entry.Key,
				Affected: entry.Affected,
			})
		}
	}
	for {
		var entry journalEntry
		if err := dec.Decode(&entry); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				// End of log, including a final entry torn by a concurrent
				// buffered write: everything durable decoded cleanly, and
				// anything torn was never published to a subscriber.
				return out, nil
			}
			return nil, fmt.Errorf("kc: journal read: %w", err)
		}
		switch entry.Marker {
		case markerBegin:
		case markerCommit:
			for i := range pending[entry.Txn] {
				commit(&pending[entry.Txn][i])
			}
			delete(pending, entry.Txn)
		case markerAbort:
			delete(pending, entry.Txn)
		case markerCheckpoint:
			// A rotated journal opens with one: entries at positions up to
			// CkptEntries were truncated away. If the caller still needs any
			// of them, the range is unrecoverable from the log.
			if entry.CkptEntries > pos {
				pos = entry.CkptEntries
			}
			if after < pos {
				return nil, ErrCompacted
			}
		case markerData:
			if entry.Txn != 0 {
				pending[entry.Txn] = append(pending[entry.Txn], entry)
				continue
			}
			// Legacy auto-committed entry: applies immediately.
			commit(&entry)
		default:
			return out, fmt.Errorf("kc: journal read: unknown marker %d", entry.Marker)
		}
	}
}
