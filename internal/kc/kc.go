// Package kc implements the kernel controller subsystem (KCS) of a language
// interface: it forwards the ABDL requests produced by the kernel mapping
// system to the kernel database system (MBDS), collects results into result
// buffers, allocates logical database keys, and keeps a trace of every
// request it executes — the trace is what the experiment goldens compare
// against the thesis's worked translations.
package kc

import (
	"context"
	"encoding/gob"
	"strconv"
	"sync"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/currency"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
	"mlds/internal/obs"
)

// Controller mediates between one language interface and the kernel
// database system.
type Controller struct {
	sys *mbds.System

	mu      sync.Mutex
	nextKey currency.Key
	trace   []string
	tracing bool
	simTime time.Duration
	journal *gob.Encoder
}

// New builds a controller over a kernel database system.
func New(sys *mbds.System) *Controller {
	return &Controller{sys: sys}
}

// System exposes the underlying kernel database system.
func (c *Controller) System() *mbds.System { return c.sys }

// Exec validates and executes one ABDL request, recording it in the trace.
func (c *Controller) Exec(req *abdl.Request) (*kdb.Result, error) {
	return c.ExecCtx(context.Background(), req)
}

// ExecCtx is Exec carrying a request context. When the context holds an obs
// trace, the request becomes a "kc.exec" span (with the rendered ABDL as an
// attribute and the simulated kernel time charged to it) whose children are
// the per-backend fan-out spans recorded by MBDS.
func (c *Controller) ExecCtx(ctx context.Context, req *abdl.Request) (*kdb.Result, error) {
	c.mu.Lock()
	if c.tracing {
		c.trace = append(c.trace, req.String())
	}
	c.mu.Unlock()
	ctx, span := obs.StartSpan(ctx, "kc.exec")
	span.SetAttr("abdl", req.String())
	res, t, err := c.sys.ExecTimedCtx(ctx, req)
	if err != nil {
		span.SetAttr("error", err.Error())
		span.End()
		return nil, err
	}
	span.AddSim(t)
	span.End()
	c.mu.Lock()
	c.simTime += t
	c.mu.Unlock()
	switch req.Kind {
	case abdl.Insert, abdl.Delete, abdl.Update:
		if err := c.logMutation(req); err != nil {
			// The kernel applied the mutation but the journal did not take
			// it: surface the divergence with the applied result attached
			// rather than pretending the request failed outright.
			return nil, &JournalError{Applied: []*kdb.Result{res}, Err: err}
		}
	}
	return res, nil
}

// ExecBatch validates and executes a slice of ABDL requests as one kernel
// round, recording each in the trace and journalling every mutation in one
// pass.
func (c *Controller) ExecBatch(reqs []*abdl.Request) ([]*kdb.Result, error) {
	return c.ExecBatchCtx(context.Background(), reqs)
}

// ExecBatchCtx is ExecBatch carrying a request context. The round becomes a
// single "kc.batch" span; its children are MBDS's per-backend batch spans.
// Mutations are journalled after the round under one journal lock — a single
// flush per batch — so a journal failure surfaces as one JournalError
// carrying every applied result.
func (c *Controller) ExecBatchCtx(ctx context.Context, reqs []*abdl.Request) ([]*kdb.Result, error) {
	c.mu.Lock()
	if c.tracing {
		for _, req := range reqs {
			c.trace = append(c.trace, req.String())
		}
	}
	c.mu.Unlock()
	ctx, span := obs.StartSpan(ctx, "kc.batch")
	span.SetAttr("requests", strconv.Itoa(len(reqs)))
	results, t, err := c.sys.ExecBatchCtx(ctx, reqs)
	if err != nil {
		span.SetAttr("error", err.Error())
		span.End()
		return nil, err
	}
	span.AddSim(t)
	span.End()
	c.mu.Lock()
	c.simTime += t
	c.mu.Unlock()
	if err := c.logMutations(reqs); err != nil {
		return nil, &JournalError{Applied: results, Err: err}
	}
	return results, nil
}

// NextKey allocates a fresh logical database key.
func (c *Controller) NextKey() currency.Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextKey++
	return c.nextKey
}

// SeedKeys advances the key allocator past max, so bulk-loaded keys and
// session-allocated keys never collide.
func (c *Controller) SeedKeys(max currency.Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if max > c.nextKey {
		c.nextKey = max
	}
}

// StartTrace begins recording executed requests, clearing any prior trace.
func (c *Controller) StartTrace() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracing = true
	c.trace = nil
}

// Trace returns the requests executed since StartTrace.
func (c *Controller) Trace() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.trace...)
}

// StopTrace stops recording.
func (c *Controller) StopTrace() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracing = false
}

// SimTime reports the accumulated simulated kernel response time.
func (c *Controller) SimTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simTime
}
