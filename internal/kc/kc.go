// Package kc implements the kernel controller subsystem (KCS) of a language
// interface: it forwards the ABDL requests produced by the kernel mapping
// system to the kernel database system (MBDS), collects results into result
// buffers, allocates logical database keys, and keeps a trace of every
// request it executes — the trace is what the experiment goldens compare
// against the thesis's worked translations.
package kc

import (
	"context"
	"encoding/gob"
	"sync"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/currency"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
	"mlds/internal/obs"
)

// Controller mediates between one language interface and the kernel
// database system.
type Controller struct {
	sys *mbds.System

	mu      sync.Mutex
	nextKey currency.Key
	trace   []string
	tracing bool
	simTime time.Duration
	journal *gob.Encoder
}

// New builds a controller over a kernel database system.
func New(sys *mbds.System) *Controller {
	return &Controller{sys: sys}
}

// System exposes the underlying kernel database system.
func (c *Controller) System() *mbds.System { return c.sys }

// Exec validates and executes one ABDL request, recording it in the trace.
func (c *Controller) Exec(req *abdl.Request) (*kdb.Result, error) {
	return c.ExecCtx(context.Background(), req)
}

// ExecCtx is Exec carrying a request context. When the context holds an obs
// trace, the request becomes a "kc.exec" span (with the rendered ABDL as an
// attribute and the simulated kernel time charged to it) whose children are
// the per-backend fan-out spans recorded by MBDS.
func (c *Controller) ExecCtx(ctx context.Context, req *abdl.Request) (*kdb.Result, error) {
	c.mu.Lock()
	if c.tracing {
		c.trace = append(c.trace, req.String())
	}
	c.mu.Unlock()
	ctx, span := obs.StartSpan(ctx, "kc.exec")
	span.SetAttr("abdl", req.String())
	res, t, err := c.sys.ExecTimedCtx(ctx, req)
	if err != nil {
		span.SetAttr("error", err.Error())
		span.End()
		return nil, err
	}
	span.AddSim(t)
	span.End()
	c.mu.Lock()
	c.simTime += t
	c.mu.Unlock()
	switch req.Kind {
	case abdl.Insert, abdl.Delete, abdl.Update:
		if err := c.logMutation(req); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// NextKey allocates a fresh logical database key.
func (c *Controller) NextKey() currency.Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextKey++
	return c.nextKey
}

// SeedKeys advances the key allocator past max, so bulk-loaded keys and
// session-allocated keys never collide.
func (c *Controller) SeedKeys(max currency.Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if max > c.nextKey {
		c.nextKey = max
	}
}

// StartTrace begins recording executed requests, clearing any prior trace.
func (c *Controller) StartTrace() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracing = true
	c.trace = nil
}

// Trace returns the requests executed since StartTrace.
func (c *Controller) Trace() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.trace...)
}

// StopTrace stops recording.
func (c *Controller) StopTrace() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracing = false
}

// SimTime reports the accumulated simulated kernel response time.
func (c *Controller) SimTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simTime
}
