// Package kc implements the kernel controller subsystem (KCS) of a language
// interface: it forwards the ABDL requests produced by the kernel mapping
// system to the kernel database system (MBDS), collects results into result
// buffers, allocates logical database keys, and keeps a trace of every
// request it executes — the trace is what the experiment goldens compare
// against the thesis's worked translations.
//
// Every request executes inside a transaction. Requests whose context
// carries one (txn.FromContext) join it; all other callers are auto-commit —
// the controller wraps each request (or batch) in its own transaction and
// commits it immediately, so single-statement traffic pays one group-commit
// flush and gains 2PL isolation without code changes.
package kc

import (
	"bufio"
	"context"
	"encoding/gob"
	"strconv"
	"sync"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/currency"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
	"mlds/internal/obs"
	"mlds/internal/txn"
)

// Controller mediates between one language interface and the kernel
// database system.
type Controller struct {
	sys  *mbds.System
	txns *txn.Manager

	mu      sync.Mutex
	nextKey currency.Key
	trace   []string
	tracing bool
	simTime time.Duration
	journal *gob.Encoder
	jw      *bufio.Writer

	// Fuzzy-checkpoint bookkeeping (see checkpoint.go). jEntries counts
	// committed data entries ever written to the journal, jMaxKey the key
	// allocator's high water among them; jPairs maps each published commit
	// epoch to the journal position its batch flushed at. jf is the journal's
	// file handle when attached via AttachJournalFile — what rotation swaps.
	jEntries uint64
	jNoted   uint64 // jEntries as of the last NoteEpoch (or recovery seed)
	jMaxKey  int64
	jPairs   map[uint64]ckptPair
	lastCkpt uint64
	jf       *JournalFile

	// Background checkpointer (StartCheckpointer).
	ckptStop chan struct{}
	ckptDone chan struct{}
}

// Option configures a controller.
type Option func(*options)

type options struct {
	metrics     *obs.Registry
	db          string
	lockTimeout time.Duration
}

// WithMetrics labels the controller's transaction metrics with the database
// name and registers them on reg.
func WithMetrics(reg *obs.Registry, db string) Option {
	return func(o *options) { o.metrics, o.db = reg, db }
}

// WithLockTimeout bounds every transaction lock wait.
func WithLockTimeout(d time.Duration) Option {
	return func(o *options) { o.lockTimeout = d }
}

// New builds a controller over a kernel database system.
func New(sys *mbds.System, opts ...Option) *Controller {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	c := &Controller{sys: sys}
	c.txns = txn.NewManager(txn.Config{
		Exec:        sys,
		Sink:        journalSink{c},
		KeyPos:      c.keyPos,
		LockTimeout: o.lockTimeout,
		Metrics:     o.metrics,
		DB:          o.db,
		MVCC:        true,
	})
	return c
}

// System exposes the underlying kernel database system.
func (c *Controller) System() *mbds.System { return c.sys }

// Txns exposes the controller's transaction manager. Sessions use it to
// begin explicit transactions and to commit or roll them back.
func (c *Controller) Txns() *txn.Manager { return c.txns }

// SubscribeCommits streams the manager's committed redo logs with the given
// channel buffer. Chaos drills and failover oracles use it to know exactly
// which writes were acknowledged as committed; close the subscription when
// done.
func (c *Controller) SubscribeCommits(buf int) *txn.CommitSub {
	return c.txns.SubscribeCommits(buf)
}

// keyPos reports the key allocator's position for journal records.
func (c *Controller) keyPos() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(c.nextKey)
}

// Exec validates and executes one ABDL request, recording it in the trace.
func (c *Controller) Exec(req *abdl.Request) (*kdb.Result, error) {
	return c.ExecCtx(context.Background(), req)
}

// ExecCtx is Exec carrying a request context. When the context holds an obs
// trace, the request becomes a "kc.exec" span (with the rendered ABDL as an
// attribute and the simulated kernel time charged to it) whose children are
// the per-backend fan-out spans recorded by MBDS. When the context carries a
// transaction the statement joins it — locks accumulate, undo is buffered,
// and the mutation reaches the journal only if that transaction commits;
// otherwise the statement runs auto-commit.
func (c *Controller) ExecCtx(ctx context.Context, req *abdl.Request) (*kdb.Result, error) {
	c.mu.Lock()
	if c.tracing {
		c.trace = append(c.trace, req.String())
	}
	c.mu.Unlock()
	ctx, span := obs.StartSpan(ctx, "kc.exec")
	span.SetAttr("abdl", req.String())
	var (
		res *kdb.Result
		t   time.Duration
		err error
	)
	if tx, ok := txn.FromContext(ctx); ok {
		res, t, err = c.txns.Exec(ctx, tx, req)
	} else {
		res, t, err = c.execAuto(ctx, req)
	}
	if err != nil {
		span.SetAttr("error", err.Error())
		span.End()
		return nil, err
	}
	span.AddSim(t)
	span.End()
	c.mu.Lock()
	c.simTime += t
	c.mu.Unlock()
	return res, nil
}

// execAuto wraps one statement in its own transaction and commits it. A
// commit whose journal write fails surfaces the store/journal divergence as
// a JournalError carrying the applied result (the data is durable in the
// kernel; the recovery log is what lost it).
func (c *Controller) execAuto(ctx context.Context, req *abdl.Request) (*kdb.Result, time.Duration, error) {
	tx := c.txns.Begin()
	res, t, err := c.txns.Exec(ctx, tx, req)
	if err != nil {
		c.txns.Abort(tx)
		return nil, t, err
	}
	if err := c.txns.Commit(tx); err != nil {
		return nil, t, &JournalError{Applied: []*kdb.Result{res}, Err: err}
	}
	return res, t, nil
}

// ExecBatch validates and executes a slice of ABDL requests as one kernel
// round, recording each in the trace and journalling every mutation in one
// pass.
func (c *Controller) ExecBatch(reqs []*abdl.Request) ([]*kdb.Result, error) {
	return c.ExecBatchCtx(context.Background(), reqs)
}

// ExecBatchCtx is ExecBatch carrying a request context. The round becomes a
// single "kc.batch" span; its children are MBDS's per-backend batch spans.
// The batch joins the context's transaction if one is present; otherwise it
// runs as one auto-committed transaction — a single journal flush per batch,
// with a journal failure surfacing as one JournalError carrying every
// applied result.
func (c *Controller) ExecBatchCtx(ctx context.Context, reqs []*abdl.Request) ([]*kdb.Result, error) {
	c.mu.Lock()
	if c.tracing {
		for _, req := range reqs {
			c.trace = append(c.trace, req.String())
		}
	}
	c.mu.Unlock()
	ctx, span := obs.StartSpan(ctx, "kc.batch")
	span.SetAttr("requests", strconv.Itoa(len(reqs)))
	var (
		results []*kdb.Result
		t       time.Duration
		err     error
	)
	if tx, ok := txn.FromContext(ctx); ok {
		results, t, err = c.txns.ExecBatch(ctx, tx, reqs)
	} else {
		results, t, err = c.execBatchAuto(ctx, reqs)
	}
	if err != nil {
		span.SetAttr("error", err.Error())
		span.End()
		return nil, err
	}
	span.AddSim(t)
	span.End()
	c.mu.Lock()
	c.simTime += t
	c.mu.Unlock()
	return results, nil
}

func (c *Controller) execBatchAuto(ctx context.Context, reqs []*abdl.Request) ([]*kdb.Result, time.Duration, error) {
	tx := c.txns.Begin()
	results, t, err := c.txns.ExecBatch(ctx, tx, reqs)
	if err != nil {
		c.txns.Abort(tx)
		return nil, t, err
	}
	if err := c.txns.Commit(tx); err != nil {
		return nil, t, &JournalError{Applied: results, Err: err}
	}
	return results, t, nil
}

// NextKey allocates a fresh logical database key.
func (c *Controller) NextKey() currency.Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextKey++
	return c.nextKey
}

// SeedKeys advances the key allocator past max, so bulk-loaded keys and
// session-allocated keys never collide.
func (c *Controller) SeedKeys(max currency.Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if max > c.nextKey {
		c.nextKey = max
	}
}

// StartTrace begins recording executed requests, clearing any prior trace.
func (c *Controller) StartTrace() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracing = true
	c.trace = nil
}

// Trace returns the requests executed since StartTrace.
func (c *Controller) Trace() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.trace...)
}

// StopTrace stops recording.
func (c *Controller) StopTrace() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracing = false
}

// SimTime reports the accumulated simulated kernel response time.
func (c *Controller) SimTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simTime
}
