package kc

import (
	"bytes"
	"context"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/txn"
)

func retrieveX(v int64) *abdl.Request {
	return abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(v)}), abdl.AllAttrs)
}

// TestReplayTornTail is the regression test for crash-torn journals: a
// journal truncated at every byte offset of its final commit batch must
// replay the untouched prefix cleanly — no error — rather than failing on
// the torn entry.
func TestReplayTornTail(t *testing.T) {
	c := newController(t)
	var journal bytes.Buffer
	c.AttachJournal(&journal)

	// Three auto-committed statements; record the journal size after each
	// flush so the final batch's byte range is known exactly.
	var offsets []int
	for v := int64(1); v <= 3; v++ {
		if _, err := c.Exec(insertX(v)); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, journal.Len())
	}
	full := journal.Bytes()
	lastStart, lastEnd := offsets[1], offsets[2]
	if lastStart >= lastEnd {
		t.Fatalf("final batch is empty: offsets %v", offsets)
	}

	for cut := lastStart; cut < lastEnd; cut++ {
		c2 := newController(t)
		n, err := c2.ReplayJournal(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut at byte %d of [%d,%d): replay error %v", cut, lastStart, lastEnd, err)
		}
		// The two committed prefix statements always replay; the torn batch
		// contributes its data entry only if the cut fell after it.
		if n < 2 || n > 3 {
			t.Fatalf("cut at byte %d: replayed %d entries, want 2 or 3", cut, n)
		}
		res, err := c2.Exec(retrieveX(2))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != 1 {
			t.Fatalf("cut at byte %d: prefix statement lost", cut)
		}
	}

	// The untruncated journal replays everything.
	c3 := newController(t)
	if n, err := c3.ReplayJournal(bytes.NewReader(full)); err != nil || n != 3 {
		t.Fatalf("full replay: n=%d err=%v, want 3, nil", n, err)
	}
}

// TestRecoverJournalCommittedOnly proves crash consistency: after a
// simulated crash mid-commit, RecoverJournal restores exactly the state of
// committed transactions — an uncommitted transaction's statements and a
// torn final commit batch leave no trace.
func TestRecoverJournalCommittedOnly(t *testing.T) {
	c := newController(t)
	var journal bytes.Buffer
	c.AttachJournal(&journal)
	ctx := context.Background()

	// Transaction A: committed. Its two inserts must survive recovery.
	a := c.Txns().Begin()
	actx := txn.NewContext(ctx, a)
	for _, v := range []int64{1, 2} {
		if _, err := c.ExecCtx(actx, insertX(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Txns().Commit(a); err != nil {
		t.Fatal(err)
	}
	committedLen := journal.Len()

	// Transaction C: commits, but the crash tears its flush mid-batch.
	cc := c.Txns().Begin()
	cctx := txn.NewContext(ctx, cc)
	if _, err := c.ExecCtx(cctx, insertX(20)); err != nil {
		t.Fatal(err)
	}
	if err := c.Txns().Commit(cc); err != nil {
		t.Fatal(err)
	}
	if journal.Len() == committedLen {
		t.Fatal("transaction C journalled nothing")
	}

	// Transaction B: executed but never committed — the crash happens with
	// B in flight, so B's insert reaches the store but not the journal
	// (redo buffers until COMMIT).
	b := c.Txns().Begin()
	bctx := txn.NewContext(ctx, b)
	if _, err := c.ExecCtx(bctx, insertX(10)); err != nil {
		t.Fatal(err)
	}
	torn := append([]byte(nil), journal.Bytes()...)
	torn = torn[:committedLen+(journal.Len()-committedLen)/2]

	c2 := newController(t)
	n, err := c2.RecoverJournal(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if n != 2 {
		t.Fatalf("recovered %d entries, want exactly transaction A's 2", n)
	}
	for v, want := range map[int64]int{1: 1, 2: 1, 10: 0, 20: 0} {
		res, err := c2.Exec(retrieveX(v))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != want {
			t.Errorf("after recovery, count(x=%d) = %d, want %d", v, len(res.Records), want)
		}
	}

	// The untorn journal recovers A and C but still not the uncommitted B.
	c3 := newController(t)
	if n, err := c3.RecoverJournal(bytes.NewReader(journal.Bytes())); err != nil || n != 3 {
		t.Fatalf("full recover: n=%d err=%v, want 3, nil", n, err)
	}
	if res, _ := c3.Exec(retrieveX(10)); len(res.Records) != 0 {
		t.Error("uncommitted transaction B resurrected by recovery")
	}
}

// TestAbortInvalidatesRetrieveCache: a retrieve cached inside a transaction
// must not survive that transaction's rollback — undo bumps the store's
// generation counters like any mutation.
func TestAbortInvalidatesRetrieveCache(t *testing.T) {
	c := newController(t)
	if _, err := c.Exec(insertX(5)); err != nil {
		t.Fatal(err)
	}

	tx := c.Txns().Begin()
	tctx := txn.NewContext(context.Background(), tx)
	if _, err := c.ExecCtx(tctx, abdl.NewUpdate(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(5)}),
		abdl.Modifier{Attr: "x", Val: abdm.Int(6)})); err != nil {
		t.Fatal(err)
	}
	// Prime the result cache with post-update state, twice so the second
	// read is served from cache while the transaction is still open.
	for i := 0; i < 2; i++ {
		res, err := c.ExecCtx(tctx, retrieveX(5))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != 0 {
			t.Fatalf("in-txn read %d: x=5 visible after update", i)
		}
	}
	if err := c.Txns().Abort(tx); err != nil {
		t.Fatal(err)
	}

	res, err := c.Exec(retrieveX(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("post-abort read served stale cache: %d records with x=5, want 1", len(res.Records))
	}
	if res2, _ := c.Exec(retrieveX(6)); len(res2.Records) != 0 {
		t.Fatalf("aborted update visible: %d records with x=6", len(res2.Records))
	}
}

// TestExplicitTxnJournalsOnceAtCommit: a multi-statement transaction reaches
// the journal only at COMMIT, as one framed batch.
func TestExplicitTxnJournalsOnceAtCommit(t *testing.T) {
	c := newController(t)
	var journal bytes.Buffer
	c.AttachJournal(&journal)

	tx := c.Txns().Begin()
	tctx := txn.NewContext(context.Background(), tx)
	for v := int64(1); v <= 3; v++ {
		if _, err := c.ExecCtx(tctx, insertX(v)); err != nil {
			t.Fatal(err)
		}
	}
	if journal.Len() != 0 {
		t.Fatalf("journal has %d bytes before commit, want 0 (redo buffers until COMMIT)", journal.Len())
	}
	if err := c.Txns().Commit(tx); err != nil {
		t.Fatal(err)
	}
	if journal.Len() == 0 {
		t.Fatal("commit flushed nothing")
	}

	c2 := newController(t)
	if n, err := c2.RecoverJournal(&journal); err != nil || n != 3 {
		t.Fatalf("recover: n=%d err=%v, want 3, nil", n, err)
	}
}
