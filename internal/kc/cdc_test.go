package kc

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/txn"
	"mlds/internal/wire"
)

// journalStream builds a synthetic journal v2 gob stream.
func journalStream(t *testing.T, entries ...journalEntry) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for i := range entries {
		if err := enc.Encode(&entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	return &buf
}

func dataEntry(txnID uint64, x int64, affected ...uint64) journalEntry {
	req := abdl.NewInsert(abdm.NewRecord("f", abdm.Keyword{Attr: "x", Val: abdm.Int(x)}))
	return journalEntry{Req: wire.FromRequest(req), Txn: txnID, Marker: markerData, Affected: affected}
}

// TestReadCommittedOrdering: positions count committed data entries in commit
// order — an early-begun transaction that commits late sits after the one
// that committed first, aborted transactions vanish, and legacy Txn==0
// entries auto-commit in place.
func TestReadCommittedOrdering(t *testing.T) {
	stream := journalStream(t,
		journalEntry{Txn: 1, Marker: markerBegin},
		dataEntry(1, 10, 101), // txn 1 writes first...
		journalEntry{Txn: 2, Marker: markerBegin},
		dataEntry(2, 20, 102),
		journalEntry{Txn: 2, Marker: markerCommit}, // ...but txn 2 commits first
		dataEntry(0, 30, 103),                      // legacy auto-commit
		journalEntry{Txn: 3, Marker: markerBegin},
		dataEntry(3, 40, 104),
		journalEntry{Txn: 3, Marker: markerAbort}, // aborted: no positions
		journalEntry{Txn: 1, Marker: markerCommit},
	)
	got, err := readCommitted(stream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d entries, want 3: %+v", len(got), got)
	}
	wantTxns := []uint64{2, 0, 1}
	for i, e := range got {
		if e.Pos != uint64(i+1) {
			t.Errorf("entry %d at pos %d", i, e.Pos)
		}
		if e.Txn != wantTxns[i] {
			t.Errorf("entry %d from txn %d, want %d", i, e.Txn, wantTxns[i])
		}
	}
	if len(got[0].Affected) != 1 || got[0].Affected[0] != 102 {
		t.Errorf("affected keys lost: %+v", got[0])
	}
}

// TestReadCommittedAfter: the cursor argument skips exactly the delivered
// prefix.
func TestReadCommittedAfter(t *testing.T) {
	stream := journalStream(t,
		journalEntry{Txn: 1, Marker: markerBegin},
		dataEntry(1, 10),
		dataEntry(1, 20),
		dataEntry(1, 30),
		journalEntry{Txn: 1, Marker: markerCommit},
	)
	got, err := readCommitted(stream, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Pos != 3 {
		t.Fatalf("after=2 returned %+v, want only position 3", got)
	}
}

// TestReadCommittedCompacted: a rotated journal's leading checkpoint marker
// refuses cursors that predate the truncation, and accepts ones past it.
func TestReadCommittedCompacted(t *testing.T) {
	entries := []journalEntry{
		{Marker: markerCheckpoint, CkptEpoch: 7, CkptEntries: 5},
		{Txn: 9, Marker: markerBegin},
		dataEntry(9, 60),
		{Txn: 9, Marker: markerCommit},
	}
	if _, err := readCommitted(journalStream(t, entries...), 3); !errors.Is(err, ErrCompacted) {
		t.Fatalf("cursor inside the truncated range: err = %v, want ErrCompacted", err)
	}
	got, err := readCommitted(journalStream(t, entries...), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Pos != 6 {
		t.Fatalf("post-checkpoint read = %+v, want position 6", got)
	}
}

// TestReadCommittedTornTail: a final entry torn mid-write is clean
// end-of-log — everything before it is returned without error.
func TestReadCommittedTornTail(t *testing.T) {
	stream := journalStream(t,
		journalEntry{Txn: 1, Marker: markerBegin},
		dataEntry(1, 10),
		journalEntry{Txn: 1, Marker: markerCommit},
		journalEntry{Txn: 2, Marker: markerBegin},
		dataEntry(2, 20),
	)
	full := stream.Bytes()
	torn := full[:len(full)-3]
	got, err := readCommitted(bytes.NewReader(torn), 0)
	if err != nil {
		t.Fatalf("torn tail: %v", err)
	}
	if len(got) != 1 || got[0].Pos != 1 {
		t.Fatalf("torn tail returned %+v, want just the committed entry", got)
	}
	// An uncommitted trailing transaction (intact but no commit marker) also
	// yields nothing.
	got, err = readCommitted(bytes.NewReader(full), 0)
	if err != nil || len(got) != 1 {
		t.Fatalf("uncommitted tail: %v, %+v", err, got)
	}
}

func TestReadCommittedUnknownMarker(t *testing.T) {
	stream := journalStream(t, journalEntry{Marker: 99})
	if _, err := readCommitted(stream, 0); err == nil {
		t.Fatal("unknown marker accepted")
	}
}

// TestReadCommittedNoFile: a controller journalling to a plain writer cannot
// re-read history.
func TestReadCommittedNoFile(t *testing.T) {
	c := newController(t)
	if _, err := c.ReadCommitted(0); !errors.Is(err, ErrNoJournalFile) {
		t.Fatalf("no journal: %v", err)
	}
	var buf bytes.Buffer
	c.AttachJournal(&buf)
	if _, err := c.ReadCommitted(0); !errors.Is(err, ErrNoJournalFile) {
		t.Fatalf("plain-writer journal: %v", err)
	}
}

// TestWatchSnapshotExact: the position returned with a watch snapshot is
// exactly the committed prefix the snapshot sees — entries past it are
// invisible inside the transaction and re-readable from the journal.
func TestWatchSnapshotExact(t *testing.T) {
	c := newController(t)
	jf, err := OpenJournalFile(filepath.Join(t.TempDir(), "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachJournalFile(jf); err != nil {
		t.Fatal(err)
	}
	defer jf.Close()

	tx0, pos0 := c.WatchSnapshot()
	if pos0 != 0 {
		t.Fatalf("fresh controller snapshot at position %d", pos0)
	}
	c.Txns().Commit(tx0)

	for v := int64(1); v <= 3; v++ {
		if _, err := c.Exec(insertX(v)); err != nil {
			t.Fatal(err)
		}
	}
	tx, pos := c.WatchSnapshot()
	defer c.Txns().Commit(tx)
	if pos != 3 {
		t.Fatalf("snapshot position = %d, want 3", pos)
	}
	// A commit after the snapshot is invisible inside it...
	if _, err := c.Exec(insertX(4)); err != nil {
		t.Fatal(err)
	}
	res, err := c.ExecCtx(txn.NewContext(context.Background(), tx),
		abdl.NewRetrieve(abdm.And(abdm.Predicate{Attr: "x", Op: abdm.OpGe, Val: abdm.Int(0)}), abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 3 {
		t.Fatalf("snapshot sees %d records, want the 3 before it", len(res.Records))
	}
	// ...and exactly recoverable from the journal past pos.
	tail, err := c.ReadCommitted(pos)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0].Pos != 4 {
		t.Fatalf("journal tail past the snapshot = %+v", tail)
	}
}

// TestWatchSnapshotUnderLoad hammers WatchSnapshot against a concurrent
// writer: for every snapshot, the visible row count must equal the returned
// journal position (each commit writes exactly one entry). This is the
// gap/duplicate seam of the whole CDC pipeline.
func TestWatchSnapshotUnderLoad(t *testing.T) {
	c := newController(t)
	jf, err := OpenJournalFile(filepath.Join(t.TempDir(), "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachJournalFile(jf); err != nil {
		t.Fatal(err)
	}
	defer jf.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := int64(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Exec(insertX(v)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		tx, pos := c.WatchSnapshot()
		res, err := c.ExecCtx(txn.NewContext(context.Background(), tx),
			abdl.NewRetrieve(abdm.And(abdm.Predicate{Attr: "x", Op: abdm.OpGe, Val: abdm.Int(0)}), abdl.AllAttrs))
		c.Txns().Commit(tx)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(len(res.Records)) != pos {
			close(stop)
			wg.Wait()
			t.Fatalf("snapshot %d: sees %d rows but claims journal position %d", i, len(res.Records), pos)
		}
	}
	close(stop)
	wg.Wait()
}

// TestCommitRecordStamping: published commit records carry the journal
// position and commit epoch the lossless tailer keys on.
func TestCommitRecordStamping(t *testing.T) {
	c := newController(t)
	var buf bytes.Buffer
	c.AttachJournal(&buf)
	sub := c.SubscribeCommits(16)
	defer sub.Close()

	if _, err := c.Exec(insertX(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecBatch([]*abdl.Request{insertX(2), insertX(3)}); err != nil {
		t.Fatal(err)
	}
	rec1 := <-sub.C
	rec2 := <-sub.C
	if rec1.Pos != 1 || len(rec1.Entries) != 1 {
		t.Fatalf("first record stamped %+v, want pos 1", rec1)
	}
	if rec2.Pos != 3 || len(rec2.Entries) != 2 {
		t.Fatalf("batch record stamped pos %d with %d entries, want pos 3", rec2.Pos, len(rec2.Entries))
	}
	if rec1.Epoch == 0 || rec2.Epoch <= rec1.Epoch {
		t.Fatalf("epochs not increasing: %d then %d", rec1.Epoch, rec2.Epoch)
	}
	if len(rec1.Entries[0].Affected) != 1 {
		t.Fatalf("commit record lost affected keys: %+v", rec1.Entries[0])
	}
}
