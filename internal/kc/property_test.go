package kc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/mbds"
	"mlds/internal/txn"
)

// Property-based schedule test for the lock manager and MVCC layered on it.
//
// K counter files each hold one record. Every writer transaction increments
// ALL K counters by one, touching the files in a random order — the random
// lock orders produce deadlocks, aborts, and retries, so the schedules the
// test explores include every 2PL recovery path. Snapshot readers run
// concurrently, each pinning a snapshot and reading all K counters (twice).
//
// Invariants checked, over every random schedule:
//
//  1. No lost updates: after the run, every counter equals the number of
//     transactions that committed (strict 2PL serializes the increments).
//  2. Snapshots observe a committed prefix: a committed transaction moves
//     every counter together, so a consistent snapshot must see all K
//     counters EQUAL — any mixed values would be a torn (non-atomic) view.
//  3. Snapshot repeatability: the two reads inside one snapshot agree even
//     while writers commit between them.

const propFiles = 3

func propController(t *testing.T) *Controller {
	t.Helper()
	dir := abdm.NewDirectory()
	if err := dir.DefineAttr("v", abdm.KindInt); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < propFiles; i++ {
		if err := dir.DefineFile(fmt.Sprintf("c%d", i), []string{"v"}); err != nil {
			t.Fatal(err)
		}
	}
	sys, err := mbds.New(dir, mbds.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	c := New(sys, WithLockTimeout(2*time.Second))
	for i := 0; i < propFiles; i++ {
		file := fmt.Sprintf("c%d", i)
		rec := abdm.NewRecord(file, abdm.Keyword{Attr: "v", Val: abdm.Int(0)})
		if _, err := c.Exec(abdl.NewInsert(rec)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func fileQuery(i int) abdm.Query {
	return abdm.And(abdm.Predicate{
		Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(fmt.Sprintf("c%d", i))})
}

// readCounter reads counter i inside the given transaction context.
func readCounter(ctx context.Context, c *Controller, i int) (int64, error) {
	res, err := c.ExecCtx(ctx, abdl.NewRetrieve(fileQuery(i), "v"))
	if err != nil {
		return 0, err
	}
	if len(res.Records) != 1 {
		return 0, fmt.Errorf("counter %d has %d records", i, len(res.Records))
	}
	v, _ := res.Records[0].Rec.Get("v")
	return v.AsInt(), nil
}

// incrementAll runs one writer transaction: read-modify-write every counter,
// in the given file order. Returns a *txn.AbortedError when chosen as a
// deadlock victim.
func incrementAll(c *Controller, order []int) error {
	tx := c.Txns().Begin()
	ctx := txn.NewContext(context.Background(), tx)
	for _, i := range order {
		v, err := readCounter(ctx, c, i)
		if err != nil {
			return err // manager already rolled back on abort
		}
		up := abdl.NewUpdate(fileQuery(i), abdl.Modifier{Attr: "v", Val: abdm.Int(v + 1)})
		if _, err := c.ExecCtx(ctx, up); err != nil {
			return err
		}
	}
	return c.Txns().Commit(tx)
}

func TestPropertyScheduleMVCC(t *testing.T) {
	const writers, rounds, readers = 6, 15, 4
	c := propController(t)

	var commits atomic.Int64
	var stop atomic.Bool
	var wgReaders, wgWriters sync.WaitGroup

	// Snapshot readers: pin, read all counters twice, check both invariants.
	for r := 0; r < readers; r++ {
		wgReaders.Add(1)
		go func(seed int64) {
			defer wgReaders.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				tx := c.Txns().BeginSnapshot()
				ctx := txn.NewContext(context.Background(), tx)
				var first []int64
				torn := false
				for pass := 0; pass < 2; pass++ {
					vals := make([]int64, propFiles)
					for i := range vals {
						v, err := readCounter(ctx, c, i)
						if err != nil {
							t.Errorf("snapshot read: %v", err)
							torn = true
							break
						}
						vals[i] = v
					}
					if torn {
						break
					}
					for _, v := range vals {
						if v != vals[0] {
							t.Errorf("torn snapshot: counters %v are not a committed prefix", vals)
							torn = true
						}
					}
					if pass == 0 {
						first = vals
					} else if !torn && fmt.Sprint(vals) != fmt.Sprint(first) {
						t.Errorf("unrepeatable snapshot: %v then %v", first, vals)
					}
				}
				c.Txns().Commit(tx)
				if torn {
					return
				}
				time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
			}
		}(int64(1000 + r))
	}

	// Writers: every transaction increments all counters in a random order,
	// retrying when aborted by deadlock detection or lock timeout.
	for w := 0; w < writers; w++ {
		wgWriters.Add(1)
		go func(seed int64) {
			defer wgWriters.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				order := rng.Perm(propFiles)
				for {
					err := incrementAll(c, order)
					if err == nil {
						commits.Add(1)
						break
					}
					var ae *txn.AbortedError
					if !errors.As(err, &ae) {
						t.Errorf("writer failed outside 2PL recovery: %v", err)
						return
					}
					time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
				}
			}
		}(int64(w))
	}

	wgWriters.Wait()
	stop.Store(true)
	wgReaders.Wait()
	if t.Failed() {
		return
	}

	// Invariant 1: no lost updates.
	want := commits.Load()
	if want != writers*rounds {
		t.Fatalf("committed %d of %d transactions", want, writers*rounds)
	}
	for i := 0; i < propFiles; i++ {
		v, err := readCounter(context.Background(), c, i)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Errorf("counter %d = %d, want %d: updates lost", i, v, want)
		}
	}

	st := c.Txns().MVCCStats()
	if st.SnapshotReads == 0 {
		t.Error("no snapshot reads were exercised")
	}
	t.Logf("commits=%d deadlocks=%d snapshot-reads=%d gc-pruned=%d epoch=%d",
		want, c.Txns().Stats().Deadlocks, st.SnapshotReads, st.GCPruned, st.Epoch)
}
