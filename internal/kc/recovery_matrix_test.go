package kc

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/txn"
)

// retrieveX queries file f for records with x = v.
func retrieveXEq(v int64) *abdl.Request {
	return abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(v)}), abdl.AllAttrs)
}

func countX(t *testing.T, c *Controller, v int64) int {
	t.Helper()
	res, err := c.Exec(retrieveXEq(v))
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Records)
}

// TestRecoveryMatrixMixedOutcomes extends the torn-tail regression to a
// crash DURING the group-commit flush with every transaction outcome in the
// torn window at once: a committed prefix transaction, an aborted writer, a
// read-only snapshot transaction, and a final committed writer whose commit
// batch the crash tears. The journal is truncated at EVERY byte of the mixed
// window and recovered; at every cut the database must be exactly one of the
// two committed states — never a blend, never anything of the aborted or
// read-only transactions.
func TestRecoveryMatrixMixedOutcomes(t *testing.T) {
	c := newController(t)
	var journal bytes.Buffer
	c.AttachJournal(&journal)
	ctx := context.Background()

	// Prefix transaction A, committed before the crash window: x=1 and x=2.
	a := c.Txns().Begin()
	actx := txn.NewContext(ctx, a)
	for _, v := range []int64{1, 2} {
		if _, err := c.ExecCtx(actx, insertX(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Txns().Commit(a); err != nil {
		t.Fatal(err)
	}
	prefix := journal.Len()

	// Aborted writer B: its insert executes against the kernel and is undone;
	// only an abort marker reaches the journal. x=3 must NEVER recover.
	b := c.Txns().Begin()
	if _, err := c.ExecCtx(txn.NewContext(ctx, b), insertX(3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Txns().Abort(b); err != nil {
		t.Fatal(err)
	}

	// Read-only snapshot transaction R: reads journal nothing at all.
	beforeRO := journal.Len()
	r := c.Txns().BeginSnapshot()
	if _, _, err := c.Txns().Exec(txn.NewContext(ctx, r), r, retrieveXEq(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Txns().Commit(r); err != nil {
		t.Fatal(err)
	}
	if journal.Len() != beforeRO {
		t.Fatalf("read-only transaction wrote %d journal bytes", journal.Len()-beforeRO)
	}

	// Committed writer C, the transaction the crash tears: inserts x=4 and
	// rewrites x=1 to x=5. Its two effects must recover together or not at
	// all — a cut inside its commit batch must leave A's state untouched.
	cw := c.Txns().Begin()
	cctx := txn.NewContext(ctx, cw)
	if _, err := c.ExecCtx(cctx, insertX(4)); err != nil {
		t.Fatal(err)
	}
	up := abdl.NewUpdate(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(1)}),
		abdl.Modifier{Attr: "x", Val: abdm.Int(5)})
	if _, err := c.ExecCtx(cctx, up); err != nil {
		t.Fatal(err)
	}
	if err := c.Txns().Commit(cw); err != nil {
		t.Fatal(err)
	}

	full := journal.Bytes()
	if prefix >= len(full) {
		t.Fatalf("mixed window is empty: prefix=%d len=%d", prefix, len(full))
	}
	for cut := prefix; cut <= len(full); cut++ {
		c2 := newController(t)
		if _, err := c2.RecoverJournal(bytes.NewReader(full[:cut])); err != nil {
			t.Fatalf("cut at byte %d of [%d,%d]: recover error %v", cut, prefix, len(full), err)
		}
		if n := countX(t, c2, 3); n != 0 {
			t.Fatalf("cut at byte %d: aborted transaction's record recovered", cut)
		}
		if n := countX(t, c2, 2); n != 1 {
			t.Fatalf("cut at byte %d: committed prefix record lost (%d copies)", cut, n)
		}
		old, upd, ins := countX(t, c2, 1), countX(t, c2, 5), countX(t, c2, 4)
		switch {
		case old == 1 && upd == 0 && ins == 0:
			// State as of A: the torn commit left no trace.
		case old == 0 && upd == 1 && ins == 1:
			// State as of C: the whole commit recovered.
		default:
			t.Fatalf("cut at byte %d: blended state x1=%d x5=%d x4=%d", cut, old, upd, ins)
		}
	}
}

// TestRecoveryMatrixConcurrentGroupCommit drives concurrent committing and
// aborting writers (plus snapshot readers) through one journal so the
// group-commit leader batches multiple transactions per flush, then
// truncates the journal at every byte and recovers. The per-transaction
// atomicity invariant must hold at every single cut, whatever interleaving
// the group-commit window produced: each committed writer's record pair is
// recovered completely or not at all, and aborted writers leave no trace.
func TestRecoveryMatrixConcurrentGroupCommit(t *testing.T) {
	c := newController(t)
	var journal bytes.Buffer
	c.AttachJournal(&journal)
	ctx := context.Background()

	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := c.Txns().Begin()
			tctx := txn.NewContext(ctx, tx)
			for _, v := range []int64{int64(w + 10), int64(w + 110)} {
				if _, err := c.ExecCtx(tctx, insertX(v)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
			if w%2 == 1 { // odd writers abort: nothing of theirs may recover
				if err := c.Txns().Abort(tx); err != nil {
					t.Errorf("writer %d abort: %v", w, err)
				}
				return
			}
			if err := c.Txns().Commit(tx); err != nil {
				t.Errorf("writer %d commit: %v", w, err)
			}
		}(w)
		// Snapshot readers overlap the writers without journalling anything.
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := c.Txns().BeginSnapshot()
			_, _, _ = c.Txns().Exec(txn.NewContext(ctx, tx), tx, retrieveXEq(10))
			_ = c.Txns().Commit(tx)
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	full := journal.Bytes()
	for cut := 0; cut <= len(full); cut++ {
		c2 := newController(t)
		if _, err := c2.RecoverJournal(bytes.NewReader(full[:cut])); err != nil {
			t.Fatalf("cut at byte %d of %d: recover error %v", cut, len(full), err)
		}
		for w := 0; w < writers; w++ {
			lo, hi := countX(t, c2, int64(w+10)), countX(t, c2, int64(w+110))
			if w%2 == 1 {
				if lo != 0 || hi != 0 {
					t.Fatalf("cut at byte %d: aborted writer %d recovered (%d,%d)", cut, w, lo, hi)
				}
				continue
			}
			if lo != hi {
				t.Fatalf("cut at byte %d: writer %d recovered partially (%d,%d)", cut, w, lo, hi)
			}
			if lo > 1 {
				t.Fatalf("cut at byte %d: writer %d recovered %d times", cut, w, lo)
			}
		}
	}
	// Sanity on the untruncated journal: every committed pair is present.
	c3 := newController(t)
	if _, err := c3.RecoverJournal(bytes.NewReader(full)); err != nil {
		t.Fatal(err)
	}
	var present []string
	for w := 0; w < writers; w += 2 {
		if countX(t, c3, int64(w+10)) != 1 {
			t.Errorf("committed writer %d lost on full recovery", w)
		}
		present = append(present, fmt.Sprintf("w%d", w))
	}
	t.Logf("journal=%dB, committed writers recovered: %v", len(full), present)
}

// TestRecoveryMatrixPagedCheckpoint extends the truncate-at-every-byte
// matrix to the paged storage engine: a checkpointed page image plus a
// rotated journal whose head is a checkpoint marker. The journal is cut at
// every byte — inside the marker, inside the post-checkpoint transaction's
// frames, everywhere — and recovered against a copy of the image. At every
// cut the database must be exactly the checkpoint state or exactly the
// post-checkpoint commit's state, with the image's covered prefix never
// replayed.
func TestRecoveryMatrixPagedCheckpoint(t *testing.T) {
	tmp := t.TempDir()
	pagePath := filepath.Join(tmp, "part0.pgf")
	journalPath := filepath.Join(tmp, "journal.gob")

	c, st, _ := backedController(t, pagePath)
	attachJournalFile(t, c, journalPath)
	ctx := context.Background()

	// Transaction A, covered by the checkpoint: x=1 and x=2.
	a := c.Txns().Begin()
	actx := txn.NewContext(ctx, a)
	for _, v := range []int64{1, 2} {
		if _, err := c.ExecCtx(actx, insertX(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Txns().Commit(a); err != nil {
		t.Fatal(err)
	}

	// The crash window this matrix probes FIRST: the image is durable but the
	// journal has not been truncated yet. Recovery must skip the image's
	// covered prefix of the old journal at every cut of it.
	preRotation, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}

	info, err := c.Checkpoint(st)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Rotated || info.Meta.Entries != 2 {
		t.Fatalf("checkpoint info = %+v, want rotation covering 2 entries", info)
	}

	// Transaction C, past the checkpoint: insert x=4, rewrite x=1 to x=5.
	// Its effects must recover atomically against the image.
	cw := c.Txns().Begin()
	cctx := txn.NewContext(ctx, cw)
	if _, err := c.ExecCtx(cctx, insertX(4)); err != nil {
		t.Fatal(err)
	}
	up := abdl.NewUpdate(abdm.And(
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(1)}),
		abdl.Modifier{Attr: "x", Val: abdm.Int(5)})
	if _, err := c.ExecCtx(cctx, up); err != nil {
		t.Fatal(err)
	}
	if err := c.Txns().Commit(cw); err != nil {
		t.Fatal(err)
	}

	rotated, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	image, err := os.ReadFile(pagePath)
	if err != nil {
		t.Fatal(err)
	}

	recoverCut := func(t *testing.T, journal []byte, cut int) (*Controller, int) {
		t.Helper()
		dir := t.TempDir()
		pp := filepath.Join(dir, "part0.pgf")
		jp := filepath.Join(dir, "journal.gob")
		if err := os.WriteFile(pp, image, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jp, journal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		c2, _, replayed := recoverBacked(t, pp, jp)
		return c2, replayed
	}

	// Crash between image commit and journal truncation: the OLD journal (no
	// checkpoint marker for this image, every entry covered by it) cut at
	// every byte. Nothing may replay, nothing may double-apply.
	for cut := 0; cut <= len(preRotation); cut++ {
		c2, replayed := recoverCut(t, preRotation, cut)
		if replayed != 0 {
			t.Fatalf("pre-rotation cut at byte %d: replayed %d covered entries", cut, replayed)
		}
		for _, v := range []int64{1, 2} {
			if n := countX(t, c2, v); n != 1 {
				t.Fatalf("pre-rotation cut at byte %d: x=%d recovered %d times", cut, v, n)
			}
		}
	}

	// The rotated journal — checkpoint marker head plus transaction C — cut
	// at every byte against the same image.
	for cut := 0; cut <= len(rotated); cut++ {
		c2, replayed := recoverCut(t, rotated, cut)
		if replayed != 0 && replayed != 2 {
			t.Fatalf("cut at byte %d: replayed %d entries, want 0 or the whole 2-entry commit", cut, replayed)
		}
		if n := countX(t, c2, 2); n != 1 {
			t.Fatalf("cut at byte %d: checkpointed record lost (%d copies)", cut, n)
		}
		old, upd, ins := countX(t, c2, 1), countX(t, c2, 5), countX(t, c2, 4)
		switch {
		case old == 1 && upd == 0 && ins == 0:
			// Checkpoint state: the torn tail left no trace.
		case old == 0 && upd == 1 && ins == 1:
			// Transaction C recovered whole.
		default:
			t.Fatalf("cut at byte %d: blended state x1=%d x5=%d x4=%d", cut, old, upd, ins)
		}
	}
}
