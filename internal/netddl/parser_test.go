package netddl

import (
	"testing"

	"mlds/internal/netmodel"
)

const sampleDDL = `
SCHEMA NAME IS univ

RECORD NAME IS course
    02 title TYPE IS CHARACTER 30
    02 semester TYPE IS CHARACTER 10
    02 credits TYPE IS FIXED
    02 rating TYPE IS FLOAT 5,2
    DUPLICATES ARE NOT ALLOWED FOR title, semester

RECORD NAME IS faculty
    02 rank TYPE IS CHARACTER 10

SET NAME IS system_course;
    OWNER IS SYSTEM;
    MEMBER IS course;
    INSERTION IS AUTOMATIC;
    RETENTION IS FIXED;
    SET SELECTION IS BY APPLICATION;

SET NAME IS teaching;
    OWNER IS faculty;
    MEMBER IS course;
    INSERTION IS MANUAL;
    RETENTION IS OPTIONAL;
    SET SELECTION IS BY APPLICATION;
`

func TestParseSample(t *testing.T) {
	s, err := Parse(sampleDDL)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "univ" || len(s.Records) != 2 || len(s.Sets) != 2 {
		t.Fatalf("shape: %s", s)
	}
	course, ok := s.Record("course")
	if !ok || len(course.Attributes) != 4 {
		t.Fatalf("course = %+v", course)
	}
	title, _ := course.Attribute("title")
	if title.Type != netmodel.AttrString || title.Length != 30 || title.DupFlag {
		t.Errorf("title = %+v", title)
	}
	credits, _ := course.Attribute("credits")
	if credits.Type != netmodel.AttrInt || !credits.DupFlag {
		t.Errorf("credits = %+v", credits)
	}
	rating, _ := course.Attribute("rating")
	if rating.Type != netmodel.AttrFloat || rating.Length != 5 || rating.DecLength != 2 {
		t.Errorf("rating = %+v", rating)
	}
	teach, _ := s.Set("teaching")
	if teach.Owner != "faculty" || teach.Member != "course" ||
		teach.Insertion != netmodel.InsertManual ||
		teach.Retention != netmodel.RetentionOptional ||
		teach.Selection != netmodel.SelectByApplication {
		t.Errorf("teaching = %+v", teach)
	}
	sys, _ := s.Set("system_course")
	if !sys.SystemOwned() || sys.Insertion != netmodel.InsertAutomatic || sys.Retention != netmodel.RetentionFixed {
		t.Errorf("system_course = %+v", sys)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	s1, err := Parse(sampleDDL)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(s1.DDL())
	if err != nil {
		t.Fatalf("reparse of DDL() failed: %v\n%s", err, s1.DDL())
	}
	if s2.DDL() != s1.DDL() {
		t.Errorf("DDL round trip unstable:\n--- first\n%s\n--- second\n%s", s1.DDL(), s2.DDL())
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"no schema":     "RECORD NAME IS x",
		"dup schema":    "SCHEMA NAME IS a\nSCHEMA NAME IS b",
		"empty schema":  "SCHEMA NAME IS",
		"dup rec":       "SCHEMA NAME IS s\nRECORD NAME IS x\nRECORD NAME IS x\nSET NAME IS q;\nOWNER IS x;\nMEMBER IS x;",
		"dups unknown":  "SCHEMA NAME IS s\nRECORD NAME IS x\n02 a TYPE IS FIXED\nDUPLICATES ARE NOT ALLOWED FOR zz",
		"bad type":      "SCHEMA NAME IS s\nRECORD NAME IS x\n02 a TYPE IS BLOB",
		"bad insertion": "SCHEMA NAME IS s\nRECORD NAME IS x\nSET NAME IS q;\nOWNER IS x;\nMEMBER IS x;\nINSERTION IS SOMETIMES;",
		"ghost owner":   "SCHEMA NAME IS s\nRECORD NAME IS x\nSET NAME IS q;\nOWNER IS nosuch;\nMEMBER IS x;",
		"garbage":       "SCHEMA NAME IS s\nWHAT EVEN IS THIS",
		"bad length":    "SCHEMA NAME IS s\nRECORD NAME IS x\n02 a TYPE IS CHARACTER abc",
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	src := `
-- a comment
SCHEMA NAME IS s

* another comment style
RECORD NAME IS x
    02 a TYPE IS FIXED
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Records) != 1 {
		t.Errorf("records = %d", len(s.Records))
	}
}

func TestParseDefaultsForItem(t *testing.T) {
	// An item without TYPE clause defaults to level-2 character.
	s, err := Parse("SCHEMA NAME IS s\nRECORD NAME IS x\n02 flag\n")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := s.Record("x")
	a, ok := r.Attribute("flag")
	if !ok || a.Type != netmodel.AttrString || a.Level != 2 || !a.DupFlag {
		t.Errorf("flag = %+v", a)
	}
}
