// Package netddl parses CODASYL schema DDL text of the form printed by
// netmodel.Schema.DDL (the style of the thesis's Figure 5.1) back into a
// netmodel.Schema, so network databases can be defined directly by users of
// the network language interface.
package netddl

import (
	"fmt"
	"strconv"
	"strings"

	"mlds/internal/netmodel"
)

// Parse parses CODASYL DDL text.
func Parse(src string) (*netmodel.Schema, error) {
	p := &parser{}
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "--") || strings.HasPrefix(line, "*") {
			continue
		}
		line = strings.TrimSuffix(line, ";")
		line = strings.TrimSpace(line)
		if err := p.consume(line); err != nil {
			return nil, fmt.Errorf("netddl: line %d: %w", ln+1, err)
		}
	}
	if p.schema == nil {
		return nil, fmt.Errorf("netddl: no SCHEMA NAME IS declaration found")
	}
	p.flush()
	if err := p.schema.Validate(); err != nil {
		return nil, err
	}
	return p.schema, nil
}

type parser struct {
	schema *netmodel.Schema
	rec    *netmodel.RecordType
	set    *netmodel.SetType
}

// flush commits any open record or set declaration.
func (p *parser) flush() {
	if p.rec != nil {
		p.schema.Records = append(p.schema.Records, p.rec)
		p.rec = nil
	}
	if p.set != nil {
		p.schema.Sets = append(p.schema.Sets, p.set)
		p.set = nil
	}
}

// after matches a case-insensitive keyword prefix and returns the remainder.
func after(line, prefix string) (string, bool) {
	if len(line) >= len(prefix) && strings.EqualFold(line[:len(prefix)], prefix) {
		return strings.TrimSpace(line[len(prefix):]), true
	}
	return "", false
}

func (p *parser) consume(line string) error {
	if rest, ok := after(line, "SCHEMA NAME IS"); ok {
		if p.schema != nil {
			return fmt.Errorf("duplicate SCHEMA NAME IS")
		}
		if rest == "" {
			return fmt.Errorf("SCHEMA NAME IS requires a name")
		}
		p.schema = &netmodel.Schema{Name: rest}
		return nil
	}
	if p.schema == nil {
		return fmt.Errorf("expected SCHEMA NAME IS before %q", line)
	}
	if rest, ok := after(line, "RECORD NAME IS"); ok {
		p.flush()
		if rest == "" {
			return fmt.Errorf("RECORD NAME IS requires a name")
		}
		p.rec = &netmodel.RecordType{Name: rest}
		return nil
	}
	if rest, ok := after(line, "SET NAME IS"); ok {
		p.flush()
		if rest == "" {
			return fmt.Errorf("SET NAME IS requires a name")
		}
		p.set = &netmodel.SetType{
			Name:      rest,
			Insertion: netmodel.InsertManual,
			Retention: netmodel.RetentionOptional,
			Selection: netmodel.SelectByApplication,
		}
		return nil
	}
	if rest, ok := after(line, "DUPLICATES ARE NOT ALLOWED FOR"); ok {
		if p.rec == nil {
			return fmt.Errorf("DUPLICATES clause outside a record declaration")
		}
		for _, name := range strings.Split(rest, ",") {
			name = strings.TrimSpace(name)
			a, ok := p.rec.Attribute(name)
			if !ok {
				return fmt.Errorf("DUPLICATES clause names unknown item %q", name)
			}
			a.DupFlag = false
		}
		return nil
	}
	if p.set != nil {
		if rest, ok := after(line, "OWNER IS"); ok {
			p.set.Owner = rest
			return nil
		}
		if rest, ok := after(line, "MEMBER IS"); ok {
			p.set.Member = rest
			return nil
		}
		if rest, ok := after(line, "INSERTION IS"); ok {
			switch strings.ToUpper(rest) {
			case "AUTOMATIC":
				p.set.Insertion = netmodel.InsertAutomatic
			case "MANUAL":
				p.set.Insertion = netmodel.InsertManual
			default:
				return fmt.Errorf("unknown insertion mode %q", rest)
			}
			return nil
		}
		if rest, ok := after(line, "RETENTION IS"); ok {
			switch strings.ToUpper(rest) {
			case "FIXED":
				p.set.Retention = netmodel.RetentionFixed
			case "MANDATORY":
				p.set.Retention = netmodel.RetentionMandatory
			case "OPTIONAL":
				p.set.Retention = netmodel.RetentionOptional
			default:
				return fmt.Errorf("unknown retention mode %q", rest)
			}
			return nil
		}
		if rest, ok := after(line, "SET SELECTION IS"); ok {
			switch strings.ToUpper(rest) {
			case "BY VALUE":
				p.set.Selection = netmodel.SelectByValue
			case "BY STRUCTURAL":
				p.set.Selection = netmodel.SelectByStructural
			case "BY APPLICATION":
				p.set.Selection = netmodel.SelectByApplication
			default:
				return fmt.Errorf("unknown selection mode %q", rest)
			}
			return nil
		}
	}
	if p.rec != nil {
		return p.consumeItem(line)
	}
	return fmt.Errorf("cannot parse %q", line)
}

// consumeItem parses a data-item line: "02 name TYPE IS CHARACTER 30".
func (p *parser) consumeItem(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return fmt.Errorf("cannot parse data item %q", line)
	}
	a := &netmodel.Attribute{Level: 2, Type: netmodel.AttrString, DupFlag: true}
	i := 0
	if lvl, err := strconv.Atoi(fields[0]); err == nil {
		a.Level = lvl
		i = 1
	}
	if i >= len(fields) {
		return fmt.Errorf("data item %q has no name", line)
	}
	a.Name = fields[i]
	i++
	if i < len(fields) {
		if !strings.EqualFold(fields[i], "TYPE") {
			return fmt.Errorf("expected TYPE IS in %q", line)
		}
		i++
		if i < len(fields) && strings.EqualFold(fields[i], "IS") {
			i++
		}
		if i >= len(fields) {
			return fmt.Errorf("TYPE IS requires a type in %q", line)
		}
		switch strings.ToUpper(fields[i]) {
		case "FIXED", "INTEGER":
			a.Type = netmodel.AttrInt
		case "FLOAT", "REAL":
			a.Type = netmodel.AttrFloat
		case "CHARACTER", "CHAR":
			a.Type = netmodel.AttrString
		default:
			return fmt.Errorf("unknown item type %q", fields[i])
		}
		i++
		if i < len(fields) {
			spec := fields[i]
			parts := strings.SplitN(spec, ",", 2)
			n, err := strconv.Atoi(parts[0])
			if err != nil {
				return fmt.Errorf("bad length %q", spec)
			}
			a.Length = n
			if len(parts) == 2 {
				d, err := strconv.Atoi(parts[1])
				if err != nil {
					return fmt.Errorf("bad decimal length %q", spec)
				}
				a.DecLength = d
			}
		}
	}
	p.rec.Attributes = append(p.rec.Attributes, a)
	return nil
}
