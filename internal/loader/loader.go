// Package loader materialises functional database instances in the kernel
// representation: given a transformed schema, it builds the AB(functional)
// records — entity records across their subtype hierarchy files with shared
// keys, record copies for multi-valued function values, and LINK records for
// many-to-many pairs — and emits the ABDL INSERT requests that load them.
package loader

import (
	"fmt"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/currency"
	"mlds/internal/funcmodel"
	"mlds/internal/xform"
)

// Instance is a functional database instance under construction.
type Instance struct {
	mapping  *xform.Mapping
	ab       *xform.ABSchema
	entities []*Entity
	links    []linkRec
	nextKey  currency.Key
}

type linkRec struct {
	file  string
	key   currency.Key
	attrs map[string]currency.Key // set attr → owner key
}

// Entity is one entity instance: it belongs to its declared type and every
// ancestor type, sharing one database key across those files.
type Entity struct {
	Key   currency.Key
	Types []string // declared type first, then ancestors

	scalars map[string]abdm.Value   // function → value
	singles map[string]*Entity      // single-valued entity function → target
	multis  map[string][]*Entity    // one-to-many multi-valued → targets
	mscal   map[string][]abdm.Value // scalar multi-valued → values
}

// New starts an empty instance for a transformed schema.
func New(m *xform.Mapping, ab *xform.ABSchema) *Instance {
	return &Instance{mapping: m, ab: ab}
}

// MaxKey reports the highest key allocated so far.
func (i *Instance) MaxKey() currency.Key { return i.nextKey }

// NewEntity creates an entity of the named type (entity type or subtype).
func (i *Instance) NewEntity(typeName string) (*Entity, error) {
	fun := i.mapping.Fun
	if !fun.IsType(typeName) {
		return nil, fmt.Errorf("loader: unknown type %q", typeName)
	}
	i.nextKey++
	e := &Entity{
		Key:     i.nextKey,
		Types:   append([]string{typeName}, fun.AncestorChain(typeName)...),
		scalars: make(map[string]abdm.Value),
		singles: make(map[string]*Entity),
		multis:  make(map[string][]*Entity),
		mscal:   make(map[string][]abdm.Value),
	}
	i.entities = append(i.entities, e)
	return e, nil
}

// findFunc resolves a function visible on the entity, returning it and its
// home type.
func (i *Instance) findFunc(e *Entity, fn string) (string, *funcmodel.Function, error) {
	home, f, ok := i.mapping.Fun.FunctionHome(fn)
	if !ok {
		return "", nil, fmt.Errorf("loader: unknown function %q", fn)
	}
	for _, t := range e.Types {
		if t == home {
			return home, f, nil
		}
	}
	return "", nil, fmt.Errorf("loader: function %q (of %q) not applicable to %v", fn, home, e.Types)
}

// Set assigns a scalar function value.
func (i *Instance) Set(e *Entity, fn string, v abdm.Value) error {
	_, f, err := i.findFunc(e, fn)
	if err != nil {
		return err
	}
	if f.Result.IsEntity() || f.SetValued {
		return fmt.Errorf("loader: function %q is not a scalar single-valued function", fn)
	}
	want, _ := i.ab.Dir.AttrKind(fn)
	if !v.IsNull() && v.Kind() != want {
		return fmt.Errorf("loader: function %q wants %v, got %v", fn, want, v.Kind())
	}
	e.scalars[fn] = v
	return nil
}

// SetRef assigns a single-valued entity function.
func (i *Instance) SetRef(e *Entity, fn string, target *Entity) error {
	_, f, err := i.findFunc(e, fn)
	if err != nil {
		return err
	}
	if !f.Result.IsEntity() || f.SetValued {
		return fmt.Errorf("loader: function %q is not a single-valued entity function", fn)
	}
	e.singles[fn] = target
	return nil
}

// AddRef appends a target to a one-to-many multi-valued entity function.
func (i *Instance) AddRef(e *Entity, fn string, target *Entity) error {
	_, f, err := i.findFunc(e, fn)
	if err != nil {
		return err
	}
	si, ok := i.mapping.SetFor(fn)
	if !ok || !f.SetValued || !f.Result.IsEntity() {
		return fmt.Errorf("loader: function %q is not a multi-valued entity function", fn)
	}
	if si.ManyToMany {
		return fmt.Errorf("loader: function %q is many-to-many; use Link", fn)
	}
	e.multis[fn] = append(e.multis[fn], target)
	return nil
}

// AddValue appends a value to a scalar multi-valued function.
func (i *Instance) AddValue(e *Entity, fn string, v abdm.Value) error {
	_, f, err := i.findFunc(e, fn)
	if err != nil {
		return err
	}
	if f.Result.IsEntity() || !f.SetValued {
		return fmt.Errorf("loader: function %q is not a scalar multi-valued function", fn)
	}
	e.mscal[fn] = append(e.mscal[fn], v)
	return nil
}

// Link relates two entities through a many-to-many function pair: fn is the
// function on a's side (e.g. teaching for a faculty/course pair). One LINK
// record is created per call.
func (i *Instance) Link(fn string, a, b *Entity) error {
	si, ok := i.mapping.SetFor(fn)
	if !ok || !si.ManyToMany {
		return fmt.Errorf("loader: function %q is not half of a many-to-many pair", fn)
	}
	if _, _, err := i.findFunc(a, fn); err != nil {
		return err
	}
	i.nextKey++
	i.links = append(i.links, linkRec{
		file: si.LinkRecord,
		key:  i.nextKey,
		attrs: map[string]currency.Key{
			fn:         a.Key,
			si.PairSet: b.Key,
		},
	})
	return nil
}

// Records builds the kernel records of the instance: for each entity, one
// file per type in its hierarchy; scalar attributes repeated per copy; one
// record copy per multi-valued value (padded with NULL so every copy set has
// uniform attributes); one record per LINK.
func (i *Instance) Records() ([]*abdm.Record, error) {
	var out []*abdm.Record
	for _, e := range i.entities {
		recs, err := i.entityRecords(e)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	for _, l := range i.links {
		rec := abdm.NewRecord(l.file)
		rec.Set(i.ab.KeyOf(l.file), abdm.Int(l.key))
		tmpl, _ := i.ab.Dir.FileTemplate(l.file)
		for _, attr := range tmpl {
			if attr == i.ab.KeyOf(l.file) {
				continue
			}
			if k, ok := l.attrs[attr]; ok {
				rec.Set(attr, abdm.Int(k))
			} else {
				rec.Set(attr, abdm.Null())
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

// entityRecords builds the records of one entity across its hierarchy.
func (i *Instance) entityRecords(e *Entity) ([]*abdm.Record, error) {
	var out []*abdm.Record
	for _, typeName := range e.Types {
		tmpl, ok := i.ab.Dir.FileTemplate(typeName)
		if !ok {
			return nil, fmt.Errorf("loader: type %q has no kernel file", typeName)
		}
		key := i.ab.KeyOf(typeName)

		// Identify this file's multi-valued attributes and their values:
		// each multi-valued value occupies its own record copy, NULL-padded
		// so every copy carries the full attribute set.
		mv := make(map[string][]abdm.Value)
		rows := 1
		for _, attr := range tmpl {
			if attr == key {
				continue
			}
			if vs, ok := e.mscal[attr]; ok {
				mv[attr] = vs
			} else if targets, ok := e.multis[attr]; ok {
				vals := make([]abdm.Value, len(targets))
				for j, tgt := range targets {
					vals[j] = abdm.Int(tgt.Key)
				}
				mv[attr] = vals
			}
			if len(mv[attr]) > rows {
				rows = len(mv[attr])
			}
		}

		for row := 0; row < rows; row++ {
			rec := abdm.NewRecord(typeName)
			rec.Set(key, abdm.Int(e.Key))
			for _, attr := range tmpl {
				if attr == key || rec.Has(attr) {
					continue
				}
				if vals, isMV := mv[attr]; isMV {
					if row < len(vals) {
						rec.Set(attr, vals[row])
					} else {
						rec.Set(attr, abdm.Null())
					}
					continue
				}
				if v, ok := e.scalars[attr]; ok {
					rec.Set(attr, v)
				} else if tgt, ok := e.singles[attr]; ok {
					rec.Set(attr, abdm.Int(tgt.Key))
				} else {
					rec.Set(attr, abdm.Null())
				}
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

// Requests converts the instance to the INSERT transaction that loads it.
func (i *Instance) Requests() (abdl.Transaction, error) {
	recs, err := i.Records()
	if err != nil {
		return nil, err
	}
	tx := make(abdl.Transaction, len(recs))
	for j, r := range recs {
		tx[j] = abdl.NewInsert(r)
	}
	return tx, nil
}
