package loader

import (
	"testing"

	"mlds/internal/abdm"
	"mlds/internal/univ"
	"mlds/internal/xform"
)

func newInstance(t *testing.T) (*Instance, *xform.Mapping, *xform.ABSchema) {
	t.Helper()
	m, err := xform.FunToNet(univ.Schema())
	if err != nil {
		t.Fatal(err)
	}
	ab, err := xform.DeriveAB(m)
	if err != nil {
		t.Fatal(err)
	}
	return New(m, ab), m, ab
}

func TestEntityHierarchyRecords(t *testing.T) {
	inst, _, ab := newInstance(t)
	e, err := inst.NewEntity("faculty")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Types) != 3 || e.Types[0] != "faculty" || e.Types[1] != "employee" || e.Types[2] != "person" {
		t.Fatalf("types = %v", e.Types)
	}
	if err := inst.Set(e, "pname", abdm.String("Prof")); err != nil {
		t.Fatal(err)
	}
	if err := inst.Set(e, "salary", abdm.Int(60000)); err != nil {
		t.Fatal(err)
	}
	if err := inst.Set(e, "rank", abdm.String("professor")); err != nil {
		t.Fatal(err)
	}
	recs, err := inst.Records()
	if err != nil {
		t.Fatal(err)
	}
	// One record per hierarchy file: faculty, employee, person.
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	byFile := map[string]*abdm.Record{}
	for _, r := range recs {
		byFile[r.File()] = r
	}
	for _, f := range []string{"faculty", "employee", "person"} {
		r, ok := byFile[f]
		if !ok {
			t.Fatalf("missing %s record", f)
		}
		if v, _ := r.Get(ab.KeyOf(f)); v.AsInt() != int64(e.Key) {
			t.Errorf("%s key = %v, want %d (shared key)", f, v, e.Key)
		}
	}
	if v, _ := byFile["person"].Get("pname"); v.AsString() != "Prof" {
		t.Error("pname not placed in the person file")
	}
	if v, _ := byFile["faculty"].Get("rank"); v.AsString() != "professor" {
		t.Error("rank not placed in the faculty file")
	}
}

func TestMultiValuedCopies(t *testing.T) {
	inst, _, _ := newInstance(t)
	c1, _ := inst.NewEntity("course")
	c2, _ := inst.NewEntity("course")
	s, err := inst.NewEntity("student")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.AddRef(s, "enrollments", c1); err != nil {
		t.Fatal(err)
	}
	if err := inst.AddRef(s, "enrollments", c2); err != nil {
		t.Fatal(err)
	}
	recs, err := inst.Records()
	if err != nil {
		t.Fatal(err)
	}
	var studentCopies []*abdm.Record
	for _, r := range recs {
		if r.File() == "student" {
			studentCopies = append(studentCopies, r)
		}
	}
	if len(studentCopies) != 2 {
		t.Fatalf("student copies = %d, want 2 (one per enrollment)", len(studentCopies))
	}
	vals := map[int64]bool{}
	for _, r := range studentCopies {
		if v, ok := r.Get("enrollments"); ok && !v.IsNull() {
			vals[v.AsInt()] = true
		}
	}
	if !vals[int64(c1.Key)] || !vals[int64(c2.Key)] {
		t.Errorf("enrollment values = %v", vals)
	}
}

func TestScalarMultiValuedPadding(t *testing.T) {
	inst, _, _ := newInstance(t)
	ss, err := inst.NewEntity("support_staff")
	if err != nil {
		t.Fatal(err)
	}
	for _, sk := range []string{"typing", "filing", "scheduling"} {
		if err := inst.AddValue(ss, "skills", abdm.String(sk)); err != nil {
			t.Fatal(err)
		}
	}
	recs, _ := inst.Records()
	copies := 0
	for _, r := range recs {
		if r.File() == "support_staff" {
			copies++
			// Every copy must carry the full attribute set (supervisor
			// padded with NULL).
			if !r.Has("supervisor") {
				t.Error("copy missing padded attribute")
			}
		}
	}
	if copies != 3 {
		t.Errorf("support_staff copies = %d, want 3", copies)
	}
}

func TestLinkRecords(t *testing.T) {
	inst, _, ab := newInstance(t)
	f, _ := inst.NewEntity("faculty")
	c, _ := inst.NewEntity("course")
	if err := inst.Link("teaching", f, c); err != nil {
		t.Fatal(err)
	}
	// Linking via the other side works too.
	if err := inst.Link("taught_by", c, f); err != nil {
		t.Fatal(err)
	}
	recs, _ := inst.Records()
	links := 0
	for _, r := range recs {
		if r.File() == "LINK_1" {
			links++
			if v, _ := r.Get(ab.KeyOf("LINK_1")); v.IsNull() {
				t.Error("link record lacks a key")
			}
		}
	}
	if links != 2 {
		t.Errorf("link records = %d, want 2", links)
	}
}

func TestLoaderValidation(t *testing.T) {
	inst, _, _ := newInstance(t)
	if _, err := inst.NewEntity("nosuch"); err == nil {
		t.Error("unknown type accepted")
	}
	s, _ := inst.NewEntity("student")
	c, _ := inst.NewEntity("course")
	f, _ := inst.NewEntity("faculty")
	cases := []error{
		inst.Set(s, "nosuch", abdm.Int(1)),            // unknown function
		inst.Set(s, "rank", abdm.String("professor")), // not applicable to student
		inst.Set(s, "advisor", abdm.Int(1)),           // entity-valued via Set
		inst.Set(s, "gpa", abdm.String("high")),       // kind mismatch
		inst.SetRef(s, "gpa", f),                      // scalar via SetRef
		inst.SetRef(s, "enrollments", c),              // multi-valued via SetRef
		inst.AddRef(s, "advisor", f),                  // single-valued via AddRef
		inst.AddRef(f, "teaching", c),                 // many-to-many via AddRef
		inst.AddValue(s, "major", abdm.String("x")),   // single-valued via AddValue
		inst.Link("enrollments", s, c),                // one-to-many via Link
		inst.Link("teaching", s, c),                   // wrong side entity
	}
	for i, err := range cases {
		if err == nil {
			t.Errorf("case %d: invalid loader call accepted", i)
		}
	}
}

func TestRequestsValidateAgainstDirectory(t *testing.T) {
	inst, _, ab := newInstance(t)
	d, _ := inst.NewEntity("department")
	if err := inst.Set(d, "dname", abdm.String("CS")); err != nil {
		t.Fatal(err)
	}
	tx, err := inst.Requests()
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range tx {
		if err := ab.Dir.ValidateRecord(req.Record); err != nil {
			t.Errorf("generated record invalid: %v", err)
		}
	}
}

func TestMaxKeyMonotonic(t *testing.T) {
	inst, _, _ := newInstance(t)
	prev := inst.MaxKey()
	for i := 0; i < 5; i++ {
		if _, err := inst.NewEntity("course"); err != nil {
			t.Fatal(err)
		}
		if inst.MaxKey() <= prev {
			t.Fatal("MaxKey not monotonic")
		}
		prev = inst.MaxKey()
	}
}
