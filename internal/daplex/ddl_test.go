package daplex

import (
	"strings"
	"testing"

	"mlds/internal/funcmodel"
)

const miniDDL = `
-- a small test schema
DATABASE mini IS

TYPE short_name IS STRING(10);
TYPE color IS (red, green, blue);
TYPE year IS INTEGER RANGE 1900..2100;
TYPE ratio IS FLOAT;
TYPE max_load IS CONSTANT 21;

ENTITY dept IS
    dname : short_name;
END ENTITY;

TYPE person IS
ENTITY
    pname : STRING(30);
    ssn   : INTEGER;
END ENTITY;

SUBTYPE worker OF person IS
    pay  : INTEGER;
    unit : dept;
    tags : SET OF STRING(8);
END SUBTYPE;

TYPE boss IS SUBTYPE OF worker IS
    reports : SET OF worker;
END SUBTYPE;

UNIQUE ssn WITHIN person;
OVERLAP boss WITH boss;

END DATABASE;
`

func TestParseSchemaMini(t *testing.T) {
	s, err := ParseSchema(miniDDL)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "mini" {
		t.Errorf("name = %q", s.Name)
	}
	if len(s.NonEntities) != 5 {
		t.Errorf("non-entities = %d, want 5", len(s.NonEntities))
	}
	if len(s.Entities) != 2 || len(s.Subtypes) != 2 {
		t.Errorf("entities=%d subtypes=%d", len(s.Entities), len(s.Subtypes))
	}
	if len(s.Uniques) != 1 || len(s.Overlaps) != 1 {
		t.Errorf("uniques=%d overlaps=%d", len(s.Uniques), len(s.Overlaps))
	}
}

func TestParseNonEntityKinds(t *testing.T) {
	s, err := ParseSchema(miniDDL)
	if err != nil {
		t.Fatal(err)
	}
	nm, _ := s.NonEntity("short_name")
	if nm.Type != funcmodel.TypeString || nm.Length != 10 {
		t.Errorf("short_name = %+v", nm)
	}
	col, _ := s.NonEntity("color")
	if col.Type != funcmodel.TypeEnum || len(col.Values) != 3 || col.Length != len("green") {
		t.Errorf("color = %+v", col)
	}
	yr, _ := s.NonEntity("year")
	if yr.Type != funcmodel.TypeInt || !yr.HasRange || yr.Lo != 1900 || yr.Hi != 2100 {
		t.Errorf("year = %+v", yr)
	}
	ml, _ := s.NonEntity("max_load")
	if !ml.Constant || ml.ConstVal != 21 || ml.Type != funcmodel.TypeInt {
		t.Errorf("max_load = %+v", ml)
	}
}

func TestParseFunctionClassification(t *testing.T) {
	s, err := ParseSchema(miniDDL)
	if err != nil {
		t.Fatal(err)
	}
	// dname uses a named non-entity type.
	f, ok := s.FindFunction("dept", "dname")
	if !ok || f.Result.NonEntity != "short_name" || f.Result.Scalar != funcmodel.TypeString {
		t.Errorf("dname = %+v", f)
	}
	// unit is a single-valued entity function.
	f, ok = s.FindFunction("worker", "unit")
	if !ok || f.Result.Entity != "dept" || f.SetValued {
		t.Errorf("unit = %+v", f)
	}
	// tags is a scalar multi-valued function.
	f, ok = s.FindFunction("worker", "tags")
	if !ok || !f.SetValued || f.Result.IsEntity() || f.Result.Scalar != funcmodel.TypeString {
		t.Errorf("tags = %+v", f)
	}
	// reports is a multi-valued entity function.
	f, ok = s.FindFunction("boss", "reports")
	if !ok || !f.SetValued || f.Result.Entity != "worker" {
		t.Errorf("reports = %+v", f)
	}
}

func TestParseSubtypeHierarchy(t *testing.T) {
	s, err := ParseSchema(miniDDL)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := s.Subtype("boss")
	if !ok || len(b.Supertypes) != 1 || b.Supertypes[0] != "worker" {
		t.Fatalf("boss = %+v", b)
	}
	chain := s.AncestorChain("boss")
	if len(chain) != 2 || chain[0] != "worker" || chain[1] != "person" {
		t.Errorf("ancestors of boss = %v", chain)
	}
	inh := s.InheritedFunctions("boss")
	var names []string
	for _, f := range inh {
		names = append(names, f.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"reports", "pay", "unit", "pname", "ssn"} {
		if !strings.Contains(joined, want) {
			t.Errorf("inherited functions missing %q: %v", want, names)
		}
	}
	if !s.IsTerminal("boss") || s.IsTerminal("worker") || s.IsTerminal("person") {
		t.Error("terminal flags wrong")
	}
}

func TestParseUniqueMarksAttrLevel(t *testing.T) {
	s, err := ParseSchema(miniDDL)
	if err != nil {
		t.Fatal(err)
	}
	if s.Uniques[0].Within != "person" || s.Uniques[0].Functions[0] != "ssn" {
		t.Errorf("unique = %+v", s.Uniques[0])
	}
}

func TestParseForwardReference(t *testing.T) {
	src := `
DATABASE fwd IS
ENTITY a IS
    link : b;
END ENTITY;
ENTITY b IS
    back : a;
END ENTITY;
END DATABASE;
`
	s, err := ParseSchema(src)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := s.FindFunction("a", "link")
	if f.Result.Entity != "b" {
		t.Errorf("forward reference not resolved: %+v", f)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	bad := map[string]string{
		"no database":       `ENTITY x IS END ENTITY;`,
		"missing end":       `DATABASE d IS ENTITY x IS a : INTEGER;`,
		"unknown type":      `DATABASE d IS ENTITY x IS a : nosuch; END ENTITY; END DATABASE;`,
		"unknown supertype": `DATABASE d IS SUBTYPE s OF nothing IS END SUBTYPE; END DATABASE;`,
		"unique unknown fn": `DATABASE d IS ENTITY x IS a : INTEGER; END ENTITY; UNIQUE b WITHIN x; END DATABASE;`,
		"unique non scalar": `DATABASE d IS ENTITY x IS a : x; END ENTITY; UNIQUE a WITHIN x; END DATABASE;`,
		"overlap non-sub":   `DATABASE d IS ENTITY x IS END ENTITY; OVERLAP x WITH x; END DATABASE;`,
		"dup entity":        `DATABASE d IS ENTITY x IS END ENTITY; ENTITY x IS END ENTITY; END DATABASE;`,
		"dup function":      `DATABASE d IS ENTITY x IS a : INTEGER; END ENTITY; ENTITY y IS a : INTEGER; END ENTITY; END DATABASE;`,
		"reversed range":    `DATABASE d IS TYPE t IS INTEGER RANGE 9..1; END DATABASE;`,
		"bad string length": `DATABASE d IS TYPE t IS STRING(0); END DATABASE;`,
		"cycle":             `DATABASE d IS SUBTYPE a OF b IS END SUBTYPE; SUBTYPE b OF a IS END SUBTYPE; END DATABASE;`,
		"trailing":          `DATABASE d IS END DATABASE; ENTITY x IS END ENTITY;`,
	}
	for name, src := range bad {
		if _, err := ParseSchema(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseEmptyEntityAllowed(t *testing.T) {
	s, err := ParseSchema(`DATABASE d IS ENTITY x IS END ENTITY; END DATABASE;`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Entity("x"); !ok {
		t.Error("entity missing")
	}
}

func TestParseComments(t *testing.T) {
	src := "DATABASE d IS -- comment\nENTITY x IS -- another\n a : INTEGER; END ENTITY;\nEND DATABASE;"
	if _, err := ParseSchema(src); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapAllowed(t *testing.T) {
	s, err := ParseSchema(`
DATABASE d IS
ENTITY p IS END ENTITY;
SUBTYPE a OF p IS END SUBTYPE;
SUBTYPE b OF p IS END SUBTYPE;
SUBTYPE c OF p IS END SUBTYPE;
OVERLAP a WITH b;
END DATABASE;`)
	if err != nil {
		t.Fatal(err)
	}
	if !s.OverlapAllowed("a", "b") || !s.OverlapAllowed("b", "a") {
		t.Error("declared overlap not recognised")
	}
	if s.OverlapAllowed("a", "c") {
		t.Error("undeclared overlap allowed")
	}
	if !s.OverlapAllowed("a", "a") {
		t.Error("self overlap must be allowed")
	}
}
