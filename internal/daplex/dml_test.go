package daplex

import (
	"testing"

	"mlds/internal/abdm"
)

func mustDML(t *testing.T, src string) DMLStmt {
	t.Helper()
	st, err := ParseDML(src)
	if err != nil {
		t.Fatalf("ParseDML(%q): %v", src, err)
	}
	return st
}

func TestParseForEach(t *testing.T) {
	st := mustDML(t, "FOR EACH student WHERE major = 'CS' AND gpa >= 3.0 PRINT pname, gpa;")
	fe, ok := st.(*ForEach)
	if !ok {
		t.Fatalf("parsed %T", st)
	}
	if fe.Type != "student" || len(fe.Where) != 2 || len(fe.Print) != 2 {
		t.Fatalf("fe = %+v", fe)
	}
	if fe.Where[0].Func != "major" || fe.Where[0].Op != abdm.OpEq || fe.Where[0].Val.AsString() != "CS" {
		t.Errorf("cond0 = %+v", fe.Where[0])
	}
	if fe.Where[1].Op != abdm.OpGe || fe.Where[1].Val.Kind() != abdm.KindFloat {
		t.Errorf("cond1 = %+v", fe.Where[1])
	}
}

func TestParseForEachNoWhere(t *testing.T) {
	fe := mustDML(t, "FOR EACH course PRINT title").(*ForEach)
	if len(fe.Where) != 0 || fe.Print[0] != "title" {
		t.Fatalf("fe = %+v", fe)
	}
}

func TestParseCreate(t *testing.T) {
	c := mustDML(t, "CREATE student (pname := 'Zed', ssn := 42, gpa := 3.5);").(*Create)
	if c.Type != "student" || len(c.Assigns) != 3 {
		t.Fatalf("c = %+v", c)
	}
	if c.Assigns[0].Val.AsString() != "Zed" || c.Assigns[1].Val.AsInt() != 42 || c.Assigns[2].Val.AsFloat() != 3.5 {
		t.Errorf("assigns = %+v", c.Assigns)
	}
}

func TestParseLet(t *testing.T) {
	l := mustDML(t, "LET gpa OF student WHERE ssn = 42 BE 4.0;").(*Let)
	if l.Func != "gpa" || l.Type != "student" || len(l.Where) != 1 || l.Val.AsFloat() != 4.0 {
		t.Fatalf("l = %+v", l)
	}
	// NULL assignment.
	l = mustDML(t, "LET advisor OF student WHERE ssn = 42 BE NULL;").(*Let)
	if !l.Val.IsNull() {
		t.Error("NULL literal lost")
	}
}

func TestParseDestroy(t *testing.T) {
	d := mustDML(t, "DESTROY person WHERE ssn = 42;").(*Destroy)
	if d.Type != "person" || len(d.Where) != 1 {
		t.Fatalf("d = %+v", d)
	}
}

func TestParseIncludeEntityTarget(t *testing.T) {
	in := mustDML(t, "INCLUDE course WHERE title = 'X' IN enrollments OF student WHERE ssn = 42;").(*Include)
	if in.HasScalar || in.TargetType != "course" || len(in.TargetWhere) != 1 {
		t.Fatalf("in = %+v", in)
	}
	if in.Func != "enrollments" || in.Type != "student" || len(in.Where) != 1 {
		t.Fatalf("in = %+v", in)
	}
}

func TestParseIncludeScalarTarget(t *testing.T) {
	in := mustDML(t, "INCLUDE 'typing' IN skills OF support_staff WHERE ssn = 42;").(*Include)
	if !in.HasScalar || in.ScalarVal.AsString() != "typing" || in.TargetType != "" {
		t.Fatalf("in = %+v", in)
	}
}

func TestParseExclude(t *testing.T) {
	ex := mustDML(t, "EXCLUDE course WHERE title = 'X' FROM enrollments OF student WHERE ssn = 42;").(*Exclude)
	if ex.TargetType != "course" || ex.Func != "enrollments" || ex.Type != "student" {
		t.Fatalf("ex = %+v", ex)
	}
	ex = mustDML(t, "EXCLUDE 9 FROM skills OF support_staff;").(*Exclude)
	if !ex.HasScalar || ex.ScalarVal.AsInt() != 9 || len(ex.Where) != 0 {
		t.Fatalf("ex = %+v", ex)
	}
}

func TestParseDMLLiterals(t *testing.T) {
	fe := mustDML(t, "FOR EACH faculty WHERE rank = professor PRINT pname").(*ForEach)
	if fe.Where[0].Val.AsString() != "professor" {
		t.Error("bare-word literal lost")
	}
	fe = mustDML(t, "FOR EACH x WHERE flag = TRUE PRINT y").(*ForEach)
	if fe.Where[0].Val.AsString() != "true" {
		t.Error("boolean literal lost")
	}
}

func TestParseDMLErrors(t *testing.T) {
	bad := []string{
		"",
		"FROB x;",
		"FOR student PRINT x;",
		"FOR EACH student PRINT;",
		"FOR EACH student WHERE PRINT x;",
		"FOR EACH student WHERE a ? 1 PRINT x;",
		"CREATE student;",
		"CREATE student (a = 1);",
		"CREATE student (a := );",
		"LET gpa OF student BE;",
		"LET gpa student BE 1;",
		"DESTROY;",
		"INCLUDE course IN OF student;",
		"EXCLUDE course IN enrollments OF student;", // wrong joiner
		"FOR EACH x PRINT y; trailing",
	}
	for _, src := range bad {
		if _, err := ParseDML(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseDMLSemicolonOptional(t *testing.T) {
	if _, err := ParseDML("FOR EACH x PRINT y"); err != nil {
		t.Error(err)
	}
	if _, err := ParseDML("FOR EACH x PRINT y;"); err != nil {
		t.Error(err)
	}
}
