package daplex

import (
	"strings"
	"testing"

	"mlds/internal/funcmodel"
)

// TestFormatParseRoundTrip: formatting a parsed schema and reparsing it must
// yield a structurally identical schema.
func TestFormatParseRoundTrip(t *testing.T) {
	s1, err := ParseSchema(miniDDL)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatSchema(s1)
	s2, err := ParseSchema(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if len(s2.Entities) != len(s1.Entities) || len(s2.Subtypes) != len(s1.Subtypes) ||
		len(s2.NonEntities) != len(s1.NonEntities) ||
		len(s2.Uniques) != len(s1.Uniques) || len(s2.Overlaps) != len(s1.Overlaps) {
		t.Fatalf("shape changed:\n%s", text)
	}
	// Formatting must be a fixed point after one round.
	if FormatSchema(s2) != text {
		t.Error("FormatSchema not stable across round trip")
	}
	// Functions preserved with their classifications.
	for _, typeName := range []string{"dept", "person", "worker", "boss"} {
		f1 := s1.FunctionsOf(typeName)
		f2 := s2.FunctionsOf(typeName)
		if len(f1) != len(f2) {
			t.Fatalf("%s function count changed", typeName)
		}
		for i := range f1 {
			if f1[i].Name != f2[i].Name || f1[i].SetValued != f2[i].SetValued ||
				f1[i].Result.Entity != f2[i].Result.Entity ||
				f1[i].Result.NonEntity != f2[i].Result.NonEntity {
				t.Errorf("function %s changed: %+v vs %+v", f1[i].Name, f1[i], f2[i])
			}
		}
	}
}

func TestFormatNonEntityVariants(t *testing.T) {
	cases := []struct {
		ne   *funcmodel.NonEntity
		want string
	}{
		{&funcmodel.NonEntity{Name: "a", Type: funcmodel.TypeString, Length: 9}, "TYPE a IS STRING(9);"},
		{&funcmodel.NonEntity{Name: "b", Type: funcmodel.TypeInt, HasRange: true, Lo: 1, Hi: 5}, "TYPE b IS INTEGER RANGE 1..5;"},
		{&funcmodel.NonEntity{Name: "c", Type: funcmodel.TypeEnum, Values: []string{"x", "y"}}, "TYPE c IS (x, y);"},
		{&funcmodel.NonEntity{Name: "d", Type: funcmodel.TypeInt, Constant: true, ConstVal: 7}, "TYPE d IS CONSTANT 7;"},
		{&funcmodel.NonEntity{Name: "e", Type: funcmodel.TypeBool}, "TYPE e IS BOOLEAN;"},
		{&funcmodel.NonEntity{Name: "f", Kind: funcmodel.NonEntitySub, Base: "a"}, "TYPE f IS a;"},
	}
	for _, c := range cases {
		if got := strings.TrimSpace(formatNonEntity(c.ne)); got != c.want {
			t.Errorf("formatNonEntity = %q, want %q", got, c.want)
		}
	}
}
