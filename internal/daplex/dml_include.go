package daplex

import "mlds/internal/abdm"

// Include adds members to a multi-valued function over the matching
// entities:
//
//	INCLUDE course WHERE title = 'X' IN enrollments OF student WHERE ssn = 1;
//	INCLUDE 'typing' IN skills OF support_staff WHERE ssn = 2;
//
// Either a target entity selection (TargetType + TargetWhere) or a scalar
// literal (ScalarVal) is given, depending on the function's range.
type Include struct {
	TargetType  string
	TargetWhere []Cond
	ScalarVal   abdm.Value
	HasScalar   bool
	Func        string
	Type        string
	Where       []Cond
}

func (*Include) dmlStmt() {}

// Exclude removes members from a multi-valued function, mirroring Include:
//
//	EXCLUDE course WHERE title = 'X' FROM enrollments OF student WHERE ssn = 1;
//	EXCLUDE 'typing' FROM skills OF support_staff WHERE ssn = 2;
type Exclude struct {
	TargetType  string
	TargetWhere []Cond
	ScalarVal   abdm.Value
	HasScalar   bool
	Func        string
	Type        string
	Where       []Cond
}

func (*Exclude) dmlStmt() {}

// parseIncludeExclude parses the shared body of INCLUDE/EXCLUDE after the
// keyword; joiner is "IN" or "FROM".
func (p *dmlParser) parseIncludeExclude(joiner string) (target string, targetWhere []Cond, scalar abdm.Value, hasScalar bool, fn, typ string, where []Cond, err error) {
	// Target: a literal or a type name.
	if p.tok.kind == tString || p.tok.kind == tNumber {
		scalar, err = p.literal()
		if err != nil {
			return
		}
		hasScalar = true
	} else {
		target, err = p.ident("target type or literal")
		if err != nil {
			return
		}
		targetWhere, err = p.parseWhere()
		if err != nil {
			return
		}
	}
	if err = p.word(joiner); err != nil {
		return
	}
	fn, err = p.ident("function name")
	if err != nil {
		return
	}
	if err = p.word("OF"); err != nil {
		return
	}
	typ, err = p.ident("type name")
	if err != nil {
		return
	}
	where, err = p.parseWhere()
	return
}
