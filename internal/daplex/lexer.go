// Package daplex implements the Daplex language of the functional data
// model: the schema definition language (DDL) that declares entity types,
// subtypes, non-entity types and constraints, and a data manipulation
// subset (FOR EACH / CREATE / LET / DESTROY / PRINT) that the MLDS Daplex
// language interface translates to ABDL.
package daplex

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString // 'quoted' or "quoted"
	tPunct  // ( ) , ; : . .. = < > >= <= <>
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// is reports a case-insensitive match on an identifier token.
func (t token) is(word string) bool {
	return t.kind == tIdent && strings.EqualFold(t.text, word)
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tEOF, line: l.line}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isLetter(rune(c)):
		l.pos++
		for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{tIdent, l.src[start:l.pos], l.line}, nil
	case c >= '0' && c <= '9':
		l.pos++
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if d >= '0' && d <= '9' {
				l.pos++
				continue
			}
			// Avoid swallowing the ".." of a range as a decimal point.
			if d == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] != '.' {
				l.pos++
				continue
			}
			break
		}
		return token{tNumber, l.src[start:l.pos], l.line}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("daplex: line %d: unterminated string", l.line)
			}
			if l.src[l.pos] == quote {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
					b.WriteByte(quote)
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			if l.src[l.pos] == '\n' {
				l.line++
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{tString, b.String(), l.line}, nil
	default:
		// Multi-character punctuation first.
		for _, p := range []string{"..", ">=", "<=", "<>", "->>", "->"} {
			if strings.HasPrefix(l.src[l.pos:], p) {
				l.pos += len(p)
				return token{tPunct, p, l.line}, nil
			}
		}
		switch c {
		case '(', ')', ',', ';', ':', '.', '=', '<', '>':
			l.pos++
			return token{tPunct, string(c), l.line}, nil
		}
		return token{}, fmt.Errorf("daplex: line %d: unexpected character %q", l.line, c)
	}
}

func isLetter(r rune) bool    { return r == '_' || unicode.IsLetter(r) }
func isIdentRune(r rune) bool { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
