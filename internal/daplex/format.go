package daplex

import (
	"fmt"
	"strings"

	"mlds/internal/funcmodel"
)

// FormatSchema renders a functional schema as Daplex DDL text that
// ParseSchema accepts — the inverse of parsing, used when databases are
// saved and by schema tooling.
func FormatSchema(s *funcmodel.Schema) string {
	var b strings.Builder
	fmt.Fprintf(&b, "DATABASE %s IS\n\n", s.Name)
	for _, ne := range s.NonEntities {
		b.WriteString(formatNonEntity(ne))
	}
	if len(s.NonEntities) > 0 {
		b.WriteString("\n")
	}
	for _, e := range s.Entities {
		fmt.Fprintf(&b, "ENTITY %s IS\n", e.Name)
		for _, f := range e.Functions {
			fmt.Fprintf(&b, "    %s : %s;\n", f.Name, formatResult(f))
		}
		b.WriteString("END ENTITY;\n\n")
	}
	for _, st := range s.Subtypes {
		fmt.Fprintf(&b, "SUBTYPE %s OF %s IS\n", st.Name, strings.Join(st.Supertypes, ", "))
		for _, f := range st.Functions {
			fmt.Fprintf(&b, "    %s : %s;\n", f.Name, formatResult(f))
		}
		b.WriteString("END SUBTYPE;\n\n")
	}
	for _, u := range s.Uniques {
		fmt.Fprintf(&b, "UNIQUE %s WITHIN %s;\n", strings.Join(u.Functions, ", "), u.Within)
	}
	for _, o := range s.Overlaps {
		fmt.Fprintf(&b, "OVERLAP %s WITH %s;\n", strings.Join(o.Left, ", "), strings.Join(o.Right, ", "))
	}
	b.WriteString("\nEND DATABASE;\n")
	return b.String()
}

func formatNonEntity(ne *funcmodel.NonEntity) string {
	var rhs string
	switch {
	case ne.Kind == funcmodel.NonEntitySub:
		rhs = ne.Base
	case ne.Constant:
		if ne.Type == funcmodel.TypeFloat {
			rhs = fmt.Sprintf("CONSTANT %g", ne.ConstVal)
		} else {
			rhs = fmt.Sprintf("CONSTANT %d", int64(ne.ConstVal))
		}
	case ne.Type == funcmodel.TypeEnum:
		rhs = "(" + strings.Join(ne.Values, ", ") + ")"
	case ne.Type == funcmodel.TypeString:
		if ne.Length > 0 {
			rhs = fmt.Sprintf("STRING(%d)", ne.Length)
		} else {
			rhs = "STRING"
		}
	case ne.Type == funcmodel.TypeInt:
		rhs = "INTEGER"
		if ne.HasRange {
			rhs += fmt.Sprintf(" RANGE %d..%d", int64(ne.Lo), int64(ne.Hi))
		}
	case ne.Type == funcmodel.TypeFloat:
		rhs = "FLOAT"
		if ne.HasRange {
			rhs += fmt.Sprintf(" RANGE %g..%g", ne.Lo, ne.Hi)
		}
	case ne.Type == funcmodel.TypeBool:
		rhs = "BOOLEAN"
	default:
		rhs = "STRING"
	}
	return fmt.Sprintf("TYPE %s IS %s;\n", ne.Name, rhs)
}

func formatResult(f *funcmodel.Function) string {
	var core string
	switch {
	case f.Result.Entity != "":
		core = f.Result.Entity
	case f.Result.NonEntity != "":
		core = f.Result.NonEntity
	default:
		switch f.Result.Scalar {
		case funcmodel.TypeInt:
			core = "INTEGER"
		case funcmodel.TypeFloat:
			core = "FLOAT"
		case funcmodel.TypeBool:
			core = "BOOLEAN"
		case funcmodel.TypeString:
			if f.Result.Length > 0 {
				core = fmt.Sprintf("STRING(%d)", f.Result.Length)
			} else {
				core = "STRING"
			}
		default:
			core = "STRING"
		}
	}
	if f.SetValued {
		return "SET OF " + core
	}
	return core
}
