package daplex

import (
	"fmt"
	"strconv"
	"strings"

	"mlds/internal/funcmodel"
)

// ParseSchema parses a Daplex schema definition and returns the validated
// functional schema. The grammar follows the thesis's declarations
// (Figures 2.1, 5.2 and 5.4):
//
//	DATABASE university IS
//
//	TYPE name IS STRING(30);
//	TYPE rank IS (instructor, assistant, associate, full);
//	TYPE year IS INTEGER RANGE 1900..2100;
//
//	ENTITY person IS
//	    pname : name;
//	    ssn   : INTEGER;
//	END ENTITY;
//
//	SUBTYPE student OF person IS
//	    major       : STRING(20);
//	    advisor     : faculty;           -- single-valued function
//	    enrollments : SET OF course;     -- multi-valued function
//	END SUBTYPE;
//
//	UNIQUE title, semester WITHIN course;
//	OVERLAP student WITH faculty;
//
//	END DATABASE;
//
// The alternative spellings "TYPE x IS ENTITY ... END ENTITY" and
// "TYPE y IS SUBTYPE OF a,b ... END SUBTYPE" are also accepted.
func ParseSchema(src string) (*funcmodel.Schema, error) {
	p := &ddlParser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	s, err := p.parseDatabase()
	if err != nil {
		return nil, err
	}
	if err := resolveFunctionResults(s); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

type ddlParser struct {
	lex *lexer
	tok token
}

func (p *ddlParser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *ddlParser) errf(format string, args ...any) error {
	return fmt.Errorf("daplex: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *ddlParser) expectWord(word string) error {
	if !p.tok.is(word) {
		return p.errf("expected %q, found %s", word, p.tok)
	}
	return p.advance()
}

func (p *ddlParser) expectPunct(ch string) error {
	if p.tok.kind != tPunct || p.tok.text != ch {
		return p.errf("expected %q, found %s", ch, p.tok)
	}
	return p.advance()
}

func (p *ddlParser) ident(what string) (string, error) {
	if p.tok.kind != tIdent {
		return "", p.errf("expected %s, found %s", what, p.tok)
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *ddlParser) parseDatabase() (*funcmodel.Schema, error) {
	if err := p.expectWord("DATABASE"); err != nil {
		return nil, err
	}
	name, err := p.ident("database name")
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("IS"); err != nil {
		return nil, err
	}
	s := &funcmodel.Schema{Name: name}
	for {
		switch {
		case p.tok.is("END"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.is("DATABASE") || p.tok.is(name) {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if p.tok.kind == tPunct && p.tok.text == ";" {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if p.tok.kind != tEOF {
				return nil, p.errf("trailing input after END DATABASE")
			}
			return s, nil
		case p.tok.is("TYPE"):
			if err := p.parseTypeDecl(s); err != nil {
				return nil, err
			}
		case p.tok.is("ENTITY"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.parseEntityBody(s, ""); err != nil {
				return nil, err
			}
		case p.tok.is("SUBTYPE"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.parseSubtypeBody(s, ""); err != nil {
				return nil, err
			}
		case p.tok.is("UNIQUE"):
			if err := p.parseUnique(s); err != nil {
				return nil, err
			}
		case p.tok.is("OVERLAP"):
			if err := p.parseOverlap(s); err != nil {
				return nil, err
			}
		case p.tok.kind == tEOF:
			return nil, p.errf("missing END DATABASE")
		default:
			return nil, p.errf("unexpected %s at top level", p.tok)
		}
	}
}

// parseTypeDecl handles TYPE name IS <non-entity | ENTITY... | SUBTYPE...>.
func (p *ddlParser) parseTypeDecl(s *funcmodel.Schema) error {
	if err := p.advance(); err != nil { // consume TYPE
		return err
	}
	name, err := p.ident("type name")
	if err != nil {
		return err
	}
	if err := p.expectWord("IS"); err != nil {
		return err
	}
	switch {
	case p.tok.is("ENTITY"):
		if err := p.advance(); err != nil {
			return err
		}
		return p.parseEntityFields(s, name)
	case p.tok.is("SUBTYPE"):
		if err := p.advance(); err != nil {
			return err
		}
		return p.parseSubtypeOf(s, name)
	default:
		ne, err := p.parseNonEntityType(name)
		if err != nil {
			return err
		}
		s.NonEntities = append(s.NonEntities, ne)
		return p.expectPunct(";")
	}
}

// parseNonEntityType parses the right-hand side of a non-entity TYPE
// declaration: STRING(n), INTEGER, FLOAT, BOOLEAN, (enum, items),
// INTEGER RANGE lo..hi, FLOAT RANGE lo..hi, CONSTANT n, or SUBTYPE/DERIVED
// spellings over a named base.
func (p *ddlParser) parseNonEntityType(name string) (*funcmodel.NonEntity, error) {
	ne := &funcmodel.NonEntity{Name: name, Kind: funcmodel.NonEntityBase}
	switch {
	case p.tok.is("STRING"):
		ne.Type = funcmodel.TypeString
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.optionalLength()
		if err != nil {
			return nil, err
		}
		ne.Length = n
	case p.tok.is("INTEGER"), p.tok.is("FLOAT"):
		if p.tok.is("INTEGER") {
			ne.Type = funcmodel.TypeInt
		} else {
			ne.Type = funcmodel.TypeFloat
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.is("RANGE") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			lo, hi, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			ne.HasRange, ne.Lo, ne.Hi = true, lo, hi
		}
	case p.tok.is("BOOLEAN"):
		ne.Type = funcmodel.TypeBool
		if err := p.advance(); err != nil {
			return nil, err
		}
	case p.tok.is("CONSTANT"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tNumber {
			return nil, p.errf("CONSTANT requires a numeric value")
		}
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errf("bad constant %q", p.tok.text)
		}
		ne.Constant, ne.ConstVal = true, v
		if strings.Contains(p.tok.text, ".") {
			ne.Type = funcmodel.TypeFloat
		} else {
			ne.Type = funcmodel.TypeInt
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	case p.tok.kind == tPunct && p.tok.text == "(":
		ne.Type = funcmodel.TypeEnum
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			lit, err := p.ident("enumeration literal")
			if err != nil {
				return nil, err
			}
			ne.Values = append(ne.Values, lit)
			if len(lit) > ne.Length {
				ne.Length = len(lit)
			}
			if p.tok.kind == tPunct && p.tok.text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	case p.tok.kind == tIdent:
		// Non-entity subtype over a named base: TYPE short_name IS name;
		ne.Kind = funcmodel.NonEntitySub
		ne.Base = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	default:
		return nil, p.errf("cannot parse non-entity type after IS")
	}
	return ne, nil
}

func (p *ddlParser) optionalLength() (int, error) {
	if p.tok.kind != tPunct || p.tok.text != "(" {
		return 0, nil
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	if p.tok.kind != tNumber {
		return 0, p.errf("expected string length")
	}
	n, err := strconv.Atoi(p.tok.text)
	if err != nil || n <= 0 {
		return 0, p.errf("bad string length %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	return n, p.expectPunct(")")
}

func (p *ddlParser) parseRange() (lo, hi float64, err error) {
	parse := func() (float64, error) {
		if p.tok.kind != tNumber {
			return 0, p.errf("expected range bound")
		}
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return 0, p.errf("bad range bound %q", p.tok.text)
		}
		return v, p.advance()
	}
	if lo, err = parse(); err != nil {
		return
	}
	if err = p.expectPunct(".."); err != nil {
		return
	}
	hi, err = parse()
	if err == nil && hi < lo {
		err = p.errf("range bounds reversed: %g..%g", lo, hi)
	}
	return
}

// parseEntityBody handles ENTITY name IS fields END ENTITY;.
func (p *ddlParser) parseEntityBody(s *funcmodel.Schema, preName string) error {
	name := preName
	if name == "" {
		n, err := p.ident("entity name")
		if err != nil {
			return err
		}
		name = n
		if err := p.expectWord("IS"); err != nil {
			return err
		}
	}
	return p.parseEntityFields(s, name)
}

func (p *ddlParser) parseEntityFields(s *funcmodel.Schema, name string) error {
	fns, err := p.parseFunctionList(name, "ENTITY")
	if err != nil {
		return err
	}
	s.Entities = append(s.Entities, &funcmodel.Entity{Name: name, Functions: fns})
	return nil
}

// parseSubtypeBody handles SUBTYPE name OF sup1,sup2 IS fields END SUBTYPE;.
func (p *ddlParser) parseSubtypeBody(s *funcmodel.Schema, preName string) error {
	name := preName
	if name == "" {
		n, err := p.ident("subtype name")
		if err != nil {
			return err
		}
		name = n
	}
	return p.parseSubtypeOf(s, name)
}

func (p *ddlParser) parseSubtypeOf(s *funcmodel.Schema, name string) error {
	if err := p.expectWord("OF"); err != nil {
		return err
	}
	var sups []string
	for {
		sup, err := p.ident("supertype name")
		if err != nil {
			return err
		}
		sups = append(sups, sup)
		if p.tok.kind == tPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		break
	}
	if err := p.expectWord("IS"); err != nil {
		return err
	}
	fns, err := p.parseFunctionList(name, "SUBTYPE")
	if err != nil {
		return err
	}
	s.Subtypes = append(s.Subtypes, &funcmodel.Subtype{Name: name, Supertypes: sups, Functions: fns})
	return nil
}

// parseFunctionList parses "name : type ; ... END <closer> ;".
func (p *ddlParser) parseFunctionList(owner, closer string) ([]*funcmodel.Function, error) {
	var fns []*funcmodel.Function
	for {
		if p.tok.is("END") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectWord(closer); err != nil {
				return nil, err
			}
			return fns, p.expectPunct(";")
		}
		fname, err := p.ident("function name")
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		fn := &funcmodel.Function{Name: fname, Owner: owner}
		if p.tok.is("SET") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectWord("OF"); err != nil {
				return nil, err
			}
			fn.SetValued = true
		}
		res, err := p.parseResultType()
		if err != nil {
			return nil, err
		}
		fn.Result = res
		fns = append(fns, fn)
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
}

// parseResultType parses a function result: INTEGER, FLOAT, STRING(n),
// BOOLEAN, or a name that resolves later to a non-entity type or an entity
// type/subtype (forward references are allowed).
func (p *ddlParser) parseResultType() (funcmodel.FuncResult, error) {
	var r funcmodel.FuncResult
	switch {
	case p.tok.is("INTEGER"):
		r.Scalar = funcmodel.TypeInt
		return r, p.advance()
	case p.tok.is("FLOAT"):
		r.Scalar = funcmodel.TypeFloat
		return r, p.advance()
	case p.tok.is("BOOLEAN"):
		r.Scalar = funcmodel.TypeBool
		return r, p.advance()
	case p.tok.is("STRING"):
		if err := p.advance(); err != nil {
			return r, err
		}
		n, err := p.optionalLength()
		if err != nil {
			return r, err
		}
		r.Scalar, r.Length = funcmodel.TypeString, n
		return r, nil
	case p.tok.kind == tIdent:
		// Recorded as entity for now; resolveFunctionResults reclassifies
		// names that turn out to be non-entity types.
		r.Entity = p.tok.text
		return r, p.advance()
	default:
		return r, p.errf("expected a result type, found %s", p.tok)
	}
}

func (p *ddlParser) parseUnique(s *funcmodel.Schema) error {
	if err := p.advance(); err != nil {
		return err
	}
	var fns []string
	for {
		f, err := p.ident("function name")
		if err != nil {
			return err
		}
		fns = append(fns, f)
		if p.tok.kind == tPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		break
	}
	if err := p.expectWord("WITHIN"); err != nil {
		return err
	}
	within, err := p.ident("type name")
	if err != nil {
		return err
	}
	s.Uniques = append(s.Uniques, funcmodel.Unique{Functions: fns, Within: within})
	return p.expectPunct(";")
}

func (p *ddlParser) parseOverlap(s *funcmodel.Schema) error {
	if err := p.advance(); err != nil {
		return err
	}
	parseList := func() ([]string, error) {
		var out []string
		for {
			n, err := p.ident("subtype name")
			if err != nil {
				return nil, err
			}
			out = append(out, n)
			if p.tok.kind == tPunct && p.tok.text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			return out, nil
		}
	}
	left, err := parseList()
	if err != nil {
		return err
	}
	if err := p.expectWord("WITH"); err != nil {
		return err
	}
	right, err := parseList()
	if err != nil {
		return err
	}
	s.Overlaps = append(s.Overlaps, funcmodel.Overlap{Left: left, Right: right})
	return p.expectPunct(";")
}

// resolveFunctionResults reclassifies function results recorded as entity
// names: a name matching a non-entity type becomes a typed scalar result.
func resolveFunctionResults(s *funcmodel.Schema) error {
	fix := func(fns []*funcmodel.Function) error {
		for _, f := range fns {
			if f.Result.Entity == "" {
				continue
			}
			if ne, ok := s.NonEntity(f.Result.Entity); ok {
				f.Result.NonEntity = ne.Name
				f.Result.Entity = ""
				f.Result.Scalar = ne.Type
				f.Result.Length = ne.Length
				continue
			}
			if !s.IsType(f.Result.Entity) {
				return fmt.Errorf("daplex: function %q names unknown type %q", f.Name, f.Result.Entity)
			}
		}
		return nil
	}
	for _, e := range s.Entities {
		if err := fix(e.Functions); err != nil {
			return err
		}
	}
	for _, st := range s.Subtypes {
		if err := fix(st.Functions); err != nil {
			return err
		}
	}
	return nil
}
