package daplex

import (
	"fmt"
	"strconv"
	"strings"

	"mlds/internal/abdm"
)

// The Daplex DML subset: enough of Shipman's language for the functional
// language interface to query and update a functional database natively.
//
//	FOR EACH student WHERE major = 'Computer Science' AND gpa > 3.0
//	    PRINT pname, major, gpa;
//	CREATE student (pname := 'Zed', ssn := 123, major := 'CS');
//	LET gpa OF student WHERE ssn = 123 BE 3.75;
//	DESTROY student WHERE ssn = 123;

// DMLStmt is one Daplex DML statement.
type DMLStmt interface{ dmlStmt() }

// CondOp is a comparison operator in a WHERE clause.
type CondOp = abdm.Op

// Cond is one WHERE condition: function op literal.
type Cond struct {
	Func string
	Op   CondOp
	Val  abdm.Value
}

// ForEach is the retrieval statement: iterate entities of a type, optionally
// filtered, printing function values.
type ForEach struct {
	Type  string
	Where []Cond
	Print []string
}

func (*ForEach) dmlStmt() {}

// Create makes a new entity of a type with the given function assignments.
type Create struct {
	Type    string
	Assigns []Assign
}

func (*Create) dmlStmt() {}

// Assign is one function := literal assignment.
type Assign struct {
	Func string
	Val  abdm.Value
}

// Let updates a function value over the entities matching the WHERE clause.
type Let struct {
	Func  string
	Type  string
	Where []Cond
	Val   abdm.Value
}

func (*Let) dmlStmt() {}

// Destroy removes the entities of a type matching the WHERE clause, along
// with their subtype hierarchy.
type Destroy struct {
	Type  string
	Where []Cond
}

func (*Destroy) dmlStmt() {}

// ParseDML parses one Daplex DML statement (a trailing semicolon is
// optional).
func ParseDML(src string) (DMLStmt, error) {
	p := &dmlParser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tPunct && p.tok.text == ";" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tEOF {
		return nil, fmt.Errorf("daplex: trailing input after statement: %s", p.tok)
	}
	return st, nil
}

type dmlParser struct {
	lex *lexer
	tok token
}

func (p *dmlParser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *dmlParser) errf(format string, args ...any) error {
	return fmt.Errorf("daplex: %s", fmt.Sprintf(format, args...))
}

func (p *dmlParser) word(w string) error {
	if !p.tok.is(w) {
		return p.errf("expected %q, found %s", w, p.tok)
	}
	return p.advance()
}

func (p *dmlParser) ident(what string) (string, error) {
	if p.tok.kind != tIdent {
		return "", p.errf("expected %s, found %s", what, p.tok)
	}
	n := p.tok.text
	return n, p.advance()
}

func (p *dmlParser) literal() (abdm.Value, error) {
	switch p.tok.kind {
	case tString:
		v := abdm.String(p.tok.text)
		return v, p.advance()
	case tNumber:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return abdm.Value{}, err
		}
		if strings.ContainsAny(text, ".eE") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return abdm.Value{}, p.errf("bad number %q", text)
			}
			return abdm.Float(f), nil
		}
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return abdm.Value{}, p.errf("bad number %q", text)
		}
		return abdm.Int(n), nil
	case tIdent:
		if p.tok.is("NULL") {
			return abdm.Null(), p.advance()
		}
		if p.tok.is("TRUE") || p.tok.is("FALSE") {
			v := abdm.String(strings.ToLower(p.tok.text))
			return v, p.advance()
		}
		// Bare word (e.g. an enumeration literal).
		v := abdm.String(p.tok.text)
		return v, p.advance()
	default:
		return abdm.Value{}, p.errf("expected a literal, found %s", p.tok)
	}
}

func (p *dmlParser) parseStmt() (DMLStmt, error) {
	switch {
	case p.tok.is("FOR"):
		return p.parseForEach()
	case p.tok.is("CREATE"):
		return p.parseCreate()
	case p.tok.is("LET"):
		return p.parseLet()
	case p.tok.is("DESTROY"):
		return p.parseDestroy()
	case p.tok.is("INCLUDE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		target, tw, scalar, hasScalar, fn, typ, where, err := p.parseIncludeExclude("IN")
		if err != nil {
			return nil, err
		}
		return &Include{TargetType: target, TargetWhere: tw, ScalarVal: scalar, HasScalar: hasScalar,
			Func: fn, Type: typ, Where: where}, nil
	case p.tok.is("EXCLUDE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		target, tw, scalar, hasScalar, fn, typ, where, err := p.parseIncludeExclude("FROM")
		if err != nil {
			return nil, err
		}
		return &Exclude{TargetType: target, TargetWhere: tw, ScalarVal: scalar, HasScalar: hasScalar,
			Func: fn, Type: typ, Where: where}, nil
	default:
		return nil, p.errf("unknown DML statement starting with %s", p.tok)
	}
}

func (p *dmlParser) parseWhere() ([]Cond, error) {
	if !p.tok.is("WHERE") {
		return nil, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var conds []Cond
	for {
		fn, err := p.ident("function name")
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tPunct {
			return nil, p.errf("expected a comparison operator, found %s", p.tok)
		}
		op, err := abdm.ParseOp(p.tok.text)
		if err != nil {
			return nil, err
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		val, err := p.literal()
		if err != nil {
			return nil, err
		}
		conds = append(conds, Cond{Func: fn, Op: op, Val: val})
		if p.tok.is("AND") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		return conds, nil
	}
}

func (p *dmlParser) parseForEach() (DMLStmt, error) {
	if err := p.word("FOR"); err != nil {
		return nil, err
	}
	if err := p.word("EACH"); err != nil {
		return nil, err
	}
	typ, err := p.ident("type name")
	if err != nil {
		return nil, err
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	if err := p.word("PRINT"); err != nil {
		return nil, err
	}
	var prints []string
	for {
		fn, err := p.ident("function name")
		if err != nil {
			return nil, err
		}
		prints = append(prints, fn)
		if p.tok.kind == tPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	return &ForEach{Type: typ, Where: where, Print: prints}, nil
}

func (p *dmlParser) parseCreate() (DMLStmt, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	typ, err := p.ident("type name")
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tPunct || p.tok.text != "(" {
		return nil, p.errf("CREATE requires an assignment list")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var assigns []Assign
	for {
		fn, err := p.ident("function name")
		if err != nil {
			return nil, err
		}
		// := spelled as ':' '='.
		if p.tok.kind != tPunct || p.tok.text != ":" {
			return nil, p.errf("expected ':=' after %q", fn)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tPunct || p.tok.text != "=" {
			return nil, p.errf("expected ':=' after %q", fn)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		val, err := p.literal()
		if err != nil {
			return nil, err
		}
		assigns = append(assigns, Assign{Func: fn, Val: val})
		if p.tok.kind == tPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.tok.kind != tPunct || p.tok.text != ")" {
		return nil, p.errf("expected ')' closing assignment list")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return &Create{Type: typ, Assigns: assigns}, nil
}

func (p *dmlParser) parseLet() (DMLStmt, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	fn, err := p.ident("function name")
	if err != nil {
		return nil, err
	}
	if err := p.word("OF"); err != nil {
		return nil, err
	}
	typ, err := p.ident("type name")
	if err != nil {
		return nil, err
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	if err := p.word("BE"); err != nil {
		return nil, err
	}
	val, err := p.literal()
	if err != nil {
		return nil, err
	}
	return &Let{Func: fn, Type: typ, Where: where, Val: val}, nil
}

func (p *dmlParser) parseDestroy() (DMLStmt, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	typ, err := p.ident("type name")
	if err != nil {
		return nil, err
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	return &Destroy{Type: typ, Where: where}, nil
}
