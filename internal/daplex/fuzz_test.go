package daplex

import "testing"

// FuzzParseSchema: the DDL parser must never panic; accepted schemas must
// survive a format/reparse round trip.
func FuzzParseSchema(f *testing.F) {
	f.Add(miniDDL)
	f.Add("DATABASE d IS ENTITY x IS a : INTEGER; END ENTITY; END DATABASE;")
	f.Add("DATABASE d IS TYPE c IS (r, g, b); END DATABASE;")
	f.Add("DATABASE d IS TYPE y IS INTEGER RANGE 1..2; END DATABASE;")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseSchema(src)
		if err != nil {
			return
		}
		text := FormatSchema(s)
		if _, err := ParseSchema(text); err != nil {
			t.Fatalf("formatted schema rejected: %v\n%s", err, text)
		}
	})
}

// FuzzParseDML: the Daplex DML parser must never panic.
func FuzzParseDML(f *testing.F) {
	f.Add("FOR EACH s WHERE a = 1 AND b >= 'x' PRINT c, d;")
	f.Add("CREATE s (a := 1, b := 'x');")
	f.Add("LET a OF s WHERE b = 2 BE NULL;")
	f.Add("DESTROY s WHERE a <> 3;")
	f.Add("INCLUDE c WHERE t = 'x' IN f OF s WHERE k = 1;")
	f.Add("EXCLUDE 'v' FROM f OF s;")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseDML(src)
	})
}
