package relkms

import (
	"strings"
	"testing"

	"mlds/internal/abdm"
	"mlds/internal/kc"
	"mlds/internal/mbds"
	"mlds/internal/sql"
)

const shopDDL = `
CREATE TABLE dept (
    dname CHAR(20) NOT NULL UNIQUE,
    floor INTEGER
);
CREATE TABLE emp (
    ename CHAR(20) NOT NULL,
    dept CHAR(20),
    pay FLOAT
);
`

func newInterface(t *testing.T) *Interface {
	t.Helper()
	schema, err := sql.ParseDDL("shop", shopDDL)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := DeriveAB(schema)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := mbds.New(dir, mbds.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return New(schema, kc.New(sys))
}

func exec(t *testing.T, i *Interface, src string) *ResultSet {
	t.Helper()
	rs, err := i.ExecText(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return rs
}

func loadShop(t *testing.T, i *Interface) {
	t.Helper()
	stmts := []string{
		"INSERT INTO dept (dname, floor) VALUES ('CS', 2)",
		"INSERT INTO dept (dname, floor) VALUES ('EE', 3)",
		"INSERT INTO emp (ename, dept, pay) VALUES ('Ann', 'CS', 900.0)",
		"INSERT INTO emp (ename, dept, pay) VALUES ('Bob', 'CS', 800.0)",
		"INSERT INTO emp (ename, dept, pay) VALUES ('Cey', 'EE', 950.0)",
	}
	for _, s := range stmts {
		exec(t, i, s)
	}
}

func TestDeriveABTemplates(t *testing.T) {
	schema, _ := sql.ParseDDL("shop", shopDDL)
	dir, err := DeriveAB(schema)
	if err != nil {
		t.Fatal(err)
	}
	tmpl, ok := dir.FileTemplate("emp")
	if !ok || len(tmpl) != 3 {
		t.Fatalf("emp template = %v", tmpl)
	}
	if k, _ := dir.AttrKind("pay"); k != abdm.KindFloat {
		t.Errorf("pay kind = %v", k)
	}
}

func TestSelectWhereOrderBy(t *testing.T) {
	i := newInterface(t)
	loadShop(t, i)
	rs := exec(t, i, "SELECT ename, pay FROM emp WHERE dept = 'CS' ORDER BY pay DESC")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if rs.Rows[0][0].AsString() != "Ann" || rs.Rows[1][0].AsString() != "Bob" {
		t.Errorf("order wrong: %v", rs.Rows)
	}
	if rs.Columns[0] != "ename" || rs.Columns[1] != "pay" {
		t.Errorf("columns = %v", rs.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	i := newInterface(t)
	loadShop(t, i)
	rs := exec(t, i, "SELECT * FROM dept ORDER BY dname")
	if len(rs.Columns) != 2 || len(rs.Rows) != 2 {
		t.Fatalf("rs = %+v", rs)
	}
	if rs.Rows[0][0].AsString() != "CS" {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestSelectDisjunction(t *testing.T) {
	i := newInterface(t)
	loadShop(t, i)
	rs := exec(t, i, "SELECT ename FROM emp WHERE pay > 900 OR dept = 'CS'")
	if len(rs.Rows) != 3 {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestSelectAggregates(t *testing.T) {
	i := newInterface(t)
	loadShop(t, i)
	rs := exec(t, i, "SELECT COUNT(*), AVG(pay), MAX(pay) FROM emp")
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	row := rs.Rows[0]
	if row[0].AsInt() != 3 {
		t.Errorf("count = %v", row[0])
	}
	if row[1].AsFloat() != (900.0+800.0+950.0)/3 {
		t.Errorf("avg = %v", row[1])
	}
	if row[2].AsFloat() != 950.0 {
		t.Errorf("max = %v", row[2])
	}
}

func TestSelectGroupBy(t *testing.T) {
	i := newInterface(t)
	loadShop(t, i)
	rs := exec(t, i, "SELECT dept, COUNT(*) FROM emp GROUP BY dept")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	counts := map[string]int64{}
	for _, row := range rs.Rows {
		counts[row[0].AsString()] = row[len(row)-1].AsInt()
	}
	if counts["CS"] != 2 || counts["EE"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestInsertConstraints(t *testing.T) {
	i := newInterface(t)
	loadShop(t, i)
	if _, err := i.ExecText("INSERT INTO dept (dname, floor) VALUES ('CS', 9)"); err == nil || !strings.Contains(err.Error(), "UNIQUE") {
		t.Errorf("unique violation: %v", err)
	}
	if _, err := i.ExecText("INSERT INTO dept (floor) VALUES (1)"); err == nil || !strings.Contains(err.Error(), "NOT NULL") {
		t.Errorf("not-null violation: %v", err)
	}
	if _, err := i.ExecText("INSERT INTO dept (nosuch) VALUES (1)"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := i.ExecText("INSERT INTO dept (dname, floor) VALUES ('X', 'high')"); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestInsertDefaultsNull(t *testing.T) {
	i := newInterface(t)
	exec(t, i, "INSERT INTO emp (ename) VALUES ('Solo')")
	rs := exec(t, i, "SELECT ename, dept, pay FROM emp WHERE ename = 'Solo'")
	if len(rs.Rows) != 1 || !rs.Rows[0][1].IsNull() || !rs.Rows[0][2].IsNull() {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestUpdateAndDelete(t *testing.T) {
	i := newInterface(t)
	loadShop(t, i)
	rs := exec(t, i, "UPDATE emp SET pay = 1000.0 WHERE dept = 'CS'")
	if rs.Count != 2 {
		t.Fatalf("updated %d", rs.Count)
	}
	rows := exec(t, i, "SELECT ename FROM emp WHERE pay = 1000.0")
	if len(rows.Rows) != 2 {
		t.Errorf("rows = %v", rows.Rows)
	}
	// NOT NULL enforcement on update.
	if _, err := i.ExecText("UPDATE emp SET ename = NULL"); err == nil {
		t.Error("NOT NULL update accepted")
	}
	del := exec(t, i, "DELETE FROM emp WHERE dept = 'EE'")
	if del.Count != 1 {
		t.Errorf("deleted %d", del.Count)
	}
	left := exec(t, i, "SELECT COUNT(*) FROM emp")
	if left.Rows[0][0].AsInt() != 2 {
		t.Errorf("remaining = %v", left.Rows)
	}
}

func TestIntFloatCoercion(t *testing.T) {
	i := newInterface(t)
	// pay is FLOAT; an integer literal must coerce.
	exec(t, i, "INSERT INTO emp (ename, pay) VALUES ('N', 700)")
	rs := exec(t, i, "SELECT pay FROM emp WHERE pay = 700")
	if len(rs.Rows) != 1 || rs.Rows[0][0].Kind() != abdm.KindFloat {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	i := newInterface(t)
	if _, err := i.ExecText("SELECT * FROM nosuch"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := i.ExecText("SELECT nosuch FROM emp"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := i.ExecText("SELECT ename FROM emp WHERE nosuch = 1"); err == nil {
		t.Error("unknown where column accepted")
	}
	if _, err := i.ExecText("SELECT ename FROM emp ORDER BY pay"); err == nil {
		t.Error("ORDER BY outside select list accepted")
	}
}
