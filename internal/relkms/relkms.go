// Package relkms implements the kernel mapping system of the SQL language
// interface: the relational→ABDM schema transformation (a file per table, an
// attribute per column) and the translation of the SQL DML subset into ABDL
// requests.
package relkms

import (
	"context"

	"fmt"
	"sort"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kc"
	"mlds/internal/relmodel"
	"mlds/internal/sql"
)

// DeriveAB maps a relational schema onto a kernel directory: each table
// becomes a file whose template is its column list.
func DeriveAB(s *relmodel.Schema) (*abdm.Directory, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	dir := abdm.NewDirectory()
	for _, t := range s.Tables {
		var tmpl []string
		for _, c := range t.Columns {
			var kind abdm.Kind
			switch c.Type {
			case relmodel.ColInt:
				kind = abdm.KindInt
			case relmodel.ColFloat:
				kind = abdm.KindFloat
			default:
				kind = abdm.KindString
			}
			if err := dir.DefineAttr(c.Name, kind); err != nil {
				return nil, fmt.Errorf("relkms: table %q: %w", t.Name, err)
			}
			tmpl = append(tmpl, c.Name)
		}
		if err := dir.DefineFile(t.Name, tmpl); err != nil {
			return nil, err
		}
	}
	return dir, nil
}

// Interface is one user's SQL session over a relational database.
type Interface struct {
	schema *relmodel.Schema
	kc     *kc.Controller
	reqCtx context.Context // set by ExecCtx for the statement's duration
}

// New builds a SQL interface.
func New(s *relmodel.Schema, ctrl *kc.Controller) *Interface {
	return &Interface{schema: s, kc: ctrl}
}

// ResultSet is the outcome of one SQL statement: result rows for SELECT,
// the affected-row count otherwise.
type ResultSet struct {
	Columns []string
	Rows    [][]abdm.Value
	Count   int
}

// ExecText parses and executes one SQL statement.
func (i *Interface) ExecText(src string) (*ResultSet, error) {
	st, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	return i.Exec(st)
}

// Exec executes one parsed statement.
func (i *Interface) Exec(st sql.Stmt) (*ResultSet, error) {
	switch v := st.(type) {
	case *sql.Select:
		return i.execSelect(v)
	case *sql.Insert:
		return i.execInsert(v)
	case *sql.Update:
		return i.execUpdate(v)
	case *sql.Delete:
		return i.execDelete(v)
	case *sql.Watch, *sql.CreateView:
		// Change subscriptions and view maintenance live above the mapping
		// system (the session layer intercepts these verbs before parsing).
		return nil, fmt.Errorf("relkms: %T is handled by the session layer, not the mapping system", st)
	default:
		return nil, fmt.Errorf("relkms: unsupported statement %T", st)
	}
}

// query builds the ABDL qualification for a table and WHERE clause: the
// first predicate of every conjunction is (FILE = table).
func (i *Interface) query(table *relmodel.Table, where sql.Where) (abdm.Query, error) {
	filePred := abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(table.Name)}
	if len(where) == 0 {
		return abdm.Query{{filePred}}, nil
	}
	var q abdm.Query
	for _, conds := range where {
		conj := abdm.Conjunction{filePred}
		for _, c := range conds {
			col, ok := table.Column(c.Column)
			if !ok {
				return nil, fmt.Errorf("relkms: table %q has no column %q", table.Name, c.Column)
			}
			val, err := coerce(c.Val, col)
			if err != nil {
				return nil, fmt.Errorf("relkms: column %q: %w", c.Column, err)
			}
			conj = append(conj, abdm.Predicate{Attr: c.Column, Op: c.Op, Val: val})
		}
		q = append(q, conj)
	}
	return q, nil
}

func coerce(v abdm.Value, col *relmodel.Column) (abdm.Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch col.Type {
	case relmodel.ColInt:
		if v.Kind() == abdm.KindInt {
			return v, nil
		}
		if v.Kind() == abdm.KindFloat && v.AsFloat() == float64(int64(v.AsFloat())) {
			return abdm.Int(int64(v.AsFloat())), nil
		}
	case relmodel.ColFloat:
		if v.Kind() == abdm.KindFloat {
			return v, nil
		}
		if v.Kind() == abdm.KindInt {
			return abdm.Float(float64(v.AsInt())), nil
		}
	default:
		if v.Kind() == abdm.KindString {
			return v, nil
		}
	}
	return abdm.Value{}, fmt.Errorf("value %s does not fit %s", v, col.Type)
}

func (i *Interface) table(name string) (*relmodel.Table, error) {
	t, ok := i.schema.Table(name)
	if !ok {
		return nil, fmt.Errorf("relkms: no table named %q", name)
	}
	return t, nil
}

func (i *Interface) execSelect(st *sql.Select) (*ResultSet, error) {
	table, err := i.table(st.Table)
	if err != nil {
		return nil, err
	}
	q, err := i.query(table, st.Where)
	if err != nil {
		return nil, err
	}
	// Resolve the output columns.
	hasAgg := false
	for _, it := range st.Items {
		if it.Column != "*" {
			if _, ok := table.Column(it.Column); !ok {
				return nil, fmt.Errorf("relkms: table %q has no column %q", st.Table, it.Column)
			}
		}
		if it.Agg != sql.AggNone {
			hasAgg = true
		}
	}
	req := &abdl.Request{Kind: abdl.Retrieve, Query: q}
	for _, it := range st.Items {
		target := abdl.TargetItem{Attr: it.Column}
		if it.Column == "*" {
			target.Attr = abdl.AllAttrs
		}
		switch it.Agg {
		case sql.AggCount:
			target.Agg = abdl.AggCount
		case sql.AggSum:
			target.Agg = abdl.AggSum
		case sql.AggAvg:
			target.Agg = abdl.AggAvg
		case sql.AggMin:
			target.Agg = abdl.AggMin
		case sql.AggMax:
			target.Agg = abdl.AggMax
		}
		if target.Agg != abdl.AggNone && target.Attr == abdl.AllAttrs {
			// COUNT(*) counts rows: count the first column, which every row
			// carries (possibly as NULL — count FILE instead, always present).
			target.Attr = abdm.FileAttr
		}
		req.Target = append(req.Target, target)
	}
	if st.GroupBy != "" {
		if _, ok := table.Column(st.GroupBy); !ok {
			return nil, fmt.Errorf("relkms: table %q has no column %q", st.Table, st.GroupBy)
		}
		req.By = st.GroupBy
	}
	res, err := i.kcExec(req)
	if err != nil {
		return nil, err
	}

	out := &ResultSet{}
	if hasAgg {
		// Aggregate output: one row per group (or one row total). The group
		// key column leads unless the select list already names it.
		groupInItems := false
		for _, it := range st.Items {
			if it.Agg == sql.AggNone && it.Column == st.GroupBy {
				groupInItems = true
			}
		}
		leadGroup := st.GroupBy != "" && !groupInItems
		if leadGroup {
			out.Columns = append(out.Columns, st.GroupBy)
		}
		for _, it := range st.Items {
			out.Columns = append(out.Columns, it.String())
		}
		for _, g := range res.Groups {
			var row []abdm.Value
			if leadGroup {
				row = append(row, g.By)
			}
			a := 0
			for _, it := range st.Items {
				if it.Agg == sql.AggNone {
					// Plain column in an aggregate select: group key only.
					if it.Column == st.GroupBy {
						row = append(row, g.By)
					} else {
						row = append(row, abdm.Null())
					}
					continue
				}
				if a < len(g.Aggs) {
					row = append(row, g.Aggs[a].Val)
					a++
				}
			}
			out.Rows = append(out.Rows, row)
		}
		out.Count = len(out.Rows)
		return out, nil
	}

	// Plain rows.
	if len(st.Items) == 1 && st.Items[0].Column == "*" {
		for _, c := range table.Columns {
			out.Columns = append(out.Columns, c.Name)
		}
	} else {
		for _, it := range st.Items {
			out.Columns = append(out.Columns, it.Column)
		}
	}
	for _, sr := range res.Records {
		row := make([]abdm.Value, len(out.Columns))
		for n, col := range out.Columns {
			if v, ok := sr.Rec.Get(col); ok {
				row[n] = v
			} else {
				row[n] = abdm.Null()
			}
		}
		out.Rows = append(out.Rows, row)
	}
	if st.OrderBy != "" {
		idx := -1
		for n, col := range out.Columns {
			if col == st.OrderBy {
				idx = n
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("relkms: ORDER BY column %q not in the select list", st.OrderBy)
		}
		sort.SliceStable(out.Rows, func(a, b int) bool {
			cmp, err := out.Rows[a][idx].Compare(out.Rows[b][idx])
			if err != nil {
				return false
			}
			if st.Desc {
				return cmp > 0
			}
			return cmp < 0
		})
	}
	out.Count = len(out.Rows)
	return out, nil
}

func (i *Interface) execInsert(st *sql.Insert) (*ResultSet, error) {
	table, err := i.table(st.Table)
	if err != nil {
		return nil, err
	}
	rec := abdm.NewRecord(st.Table)
	assigned := make(map[string]bool)
	for n, colName := range st.Columns {
		col, ok := table.Column(colName)
		if !ok {
			return nil, fmt.Errorf("relkms: table %q has no column %q", st.Table, colName)
		}
		val, err := coerce(st.Values[n], col)
		if err != nil {
			return nil, fmt.Errorf("relkms: column %q: %w", colName, err)
		}
		rec.Set(colName, val)
		assigned[colName] = true
	}
	for _, col := range table.Columns {
		if assigned[col.Name] {
			continue
		}
		rec.Set(col.Name, abdm.Null())
	}
	// Constraints: NOT NULL and UNIQUE.
	for _, col := range table.Columns {
		v, _ := rec.Get(col.Name)
		if col.NotNull && v.IsNull() {
			return nil, fmt.Errorf("relkms: column %q is NOT NULL", col.Name)
		}
		if col.Unique && !v.IsNull() {
			res, err := i.kcExec(abdl.NewRetrieve(abdm.And(
				abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(st.Table)},
				abdm.Predicate{Attr: col.Name, Op: abdm.OpEq, Val: v},
			), col.Name))
			if err != nil {
				return nil, err
			}
			if len(res.Records) > 0 {
				return nil, fmt.Errorf("relkms: UNIQUE violation on %s.%s", st.Table, col.Name)
			}
		}
	}
	if _, err := i.kcExec(abdl.NewInsert(rec)); err != nil {
		return nil, err
	}
	return &ResultSet{Count: 1}, nil
}

func (i *Interface) execUpdate(st *sql.Update) (*ResultSet, error) {
	table, err := i.table(st.Table)
	if err != nil {
		return nil, err
	}
	q, err := i.query(table, st.Where)
	if err != nil {
		return nil, err
	}
	var mods []abdl.Modifier
	for _, a := range st.Set {
		col, ok := table.Column(a.Column)
		if !ok {
			return nil, fmt.Errorf("relkms: table %q has no column %q", st.Table, a.Column)
		}
		val, err := coerce(a.Val, col)
		if err != nil {
			return nil, fmt.Errorf("relkms: column %q: %w", a.Column, err)
		}
		if col.NotNull && val.IsNull() {
			return nil, fmt.Errorf("relkms: column %q is NOT NULL", a.Column)
		}
		mods = append(mods, abdl.Modifier{Attr: a.Column, Val: val})
	}
	res, err := i.kcExec(abdl.NewUpdate(q, mods...))
	if err != nil {
		return nil, err
	}
	return &ResultSet{Count: res.Count}, nil
}

func (i *Interface) execDelete(st *sql.Delete) (*ResultSet, error) {
	table, err := i.table(st.Table)
	if err != nil {
		return nil, err
	}
	q, err := i.query(table, st.Where)
	if err != nil {
		return nil, err
	}
	res, err := i.kcExec(abdl.NewDelete(q))
	if err != nil {
		return nil, err
	}
	return &ResultSet{Count: res.Count}, nil
}
