package abdm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Int(42), KindInt},
		{Float(3.5), KindFloat},
		{String("x"), KindString},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind() = %v, want %v", c.v.Kind(), c.kind)
		}
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull misclassifies")
	}
}

func TestValueCompareNumeric(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{Float(1.5), Int(2), -1},
		{Float(2.5), Int(2), 1},
		{Float(2.5), Float(2.5), 0},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareLargeInts(t *testing.T) {
	// Integers that are adjacent but indistinguishable as float64 must still
	// order correctly.
	a, b := Int(math.MaxInt64-1), Int(math.MaxInt64)
	if c, _ := a.Compare(b); c != -1 {
		t.Errorf("large-int compare = %d, want -1", c)
	}
}

func TestValueCompareStrings(t *testing.T) {
	if c, _ := String("abc").Compare(String("abd")); c != -1 {
		t.Error("string compare failed")
	}
	if !String("x").Equal(String("x")) {
		t.Error("equal strings not Equal")
	}
}

func TestValueCompareMismatch(t *testing.T) {
	if _, err := String("1").Compare(Int(1)); err == nil {
		t.Error("expected error comparing string with int")
	}
	if Int(1).Equal(String("1")) {
		t.Error("cross-kind values must not be Equal")
	}
}

func TestValueNullOrdering(t *testing.T) {
	if c, _ := Null().Compare(Null()); c != 0 {
		t.Error("NULL != NULL")
	}
	if c, _ := Null().Compare(Int(0)); c != -1 {
		t.Error("NULL should sort below values")
	}
	if c, _ := Int(0).Compare(Null()); c != 1 {
		t.Error("values should sort above NULL")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(-7), "-7"},
		{Float(2.5), "2.5"},
		{String("Advanced Database"), "'Advanced Database'"},
		{String("it's"), "'it''s'"},
		{Null(), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(KindInt, " 42 ")
	if err != nil || v.AsInt() != 42 {
		t.Errorf("ParseValue int: %v %v", v, err)
	}
	v, err = ParseValue(KindFloat, "2.75")
	if err != nil || v.AsFloat() != 2.75 {
		t.Errorf("ParseValue float: %v %v", v, err)
	}
	v, err = ParseValue(KindString, "hello")
	if err != nil || v.AsString() != "hello" {
		t.Errorf("ParseValue string: %v %v", v, err)
	}
	if _, err = ParseValue(KindInt, "xyz"); err == nil {
		t.Error("ParseValue should reject bad int")
	}
}

func TestInferValue(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"42", Int(42)},
		{"-3", Int(-3)},
		{"2.5", Float(2.5)},
		{"'hi'", String("hi")},
		{"'it''s'", String("it's")},
		{"NULL", Null()},
		{"word", String("word")},
	}
	for _, c := range cases {
		got := InferValue(c.in)
		if got.Kind() != c.want.Kind() || !got.Equal(c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("InferValue(%q) = %v (%v), want %v", c.in, got, got.Kind(), c.want)
		}
	}
}

// Property: String() followed by InferValue round-trips ints and floats.
func TestValueRoundTripProperty(t *testing.T) {
	f := func(n int64) bool {
		v := Int(n)
		return InferValue(v.String()).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(s string) bool {
		v := String(s)
		return InferValue(v.String()).Equal(v)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric over ints and strings.
func TestValueCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		x, _ := Int(a).Compare(Int(b))
		y, _ := Int(b).Compare(Int(a))
		return x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		x, _ := String(a).Compare(String(b))
		y, _ := String(b).Compare(String(a))
		return x == -y
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}
