// Package abdm implements the attribute-based data model (ABDM), the kernel
// data model of the Multi-Lingual Database System.
//
// ABDM represents every logical concept as a record: a set of attribute-value
// pairs (keywords) plus an optional textual remainder. Records are grouped
// into files, identified by the conventional FILE attribute. The model is
// queried with keyword predicates combined in disjunctive normal form.
package abdm

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind byte

// Value kinds. The single-letter values mirror the type flags used by the
// MLDS data structures ('i', 'f', 's').
const (
	KindNull   Kind = 0
	KindInt    Kind = 'i'
	KindFloat  Kind = 'f'
	KindString Kind = 's'
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Value is an immutable typed attribute value. The zero Value is NULL, which
// is the state a keyword assumes after a DISCONNECT nulls it out.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; it is 0 unless Kind is KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float payload. Integer values are widened so numeric
// comparison code can treat both uniformly.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload; it is "" unless Kind is KindString.
func (v Value) AsString() string { return v.s }

// numeric reports whether the value is an int or a float.
func (v Value) numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare orders v against o. Integers and floats compare numerically with
// each other; strings compare lexicographically; NULL compares equal only to
// NULL and less than everything else. Comparing a string against a number is
// an error: ABDM keyword predicates are only satisfied when the attribute
// types agree.
func (v Value) Compare(o Value) (int, error) {
	switch {
	case v.kind == KindNull || o.kind == KindNull:
		if v.kind == o.kind {
			return 0, nil
		}
		if v.kind == KindNull {
			return -1, nil
		}
		return 1, nil
	case v.numeric() && o.numeric():
		a, b := v.AsFloat(), o.AsFloat()
		// Preserve full precision for pure-integer comparison.
		if v.kind == KindInt && o.kind == KindInt {
			switch {
			case v.i < o.i:
				return -1, nil
			case v.i > o.i:
				return 1, nil
			}
			return 0, nil
		}
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		}
		return 0, nil
	case v.kind == KindString && o.kind == KindString:
		return strings.Compare(v.s, o.s), nil
	default:
		return 0, fmt.Errorf("abdm: cannot compare %s with %s", v.kind, o.kind)
	}
}

// Equal reports whether the two values compare equal. Values of incomparable
// kinds are never equal.
func (v Value) Equal(o Value) bool {
	c, err := v.Compare(o)
	return err == nil && c == 0
}

// String renders the value in ABDL literal syntax: integers and floats bare,
// strings single-quoted with embedded quotes doubled, NULL as the literal
// NULL.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	default:
		return fmt.Sprintf("<bad value kind %d>", v.kind)
	}
}

// ParseValue converts literal text into a Value of the requested kind.
// String parsing does not interpret quotes; callers pass the bare text.
func ParseValue(kind Kind, text string) (Value, error) {
	switch kind {
	case KindNull:
		return Null(), nil
	case KindInt:
		n, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("abdm: bad integer literal %q", text)
		}
		return Int(n), nil
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
		if err != nil {
			return Value{}, fmt.Errorf("abdm: bad float literal %q", text)
		}
		return Float(f), nil
	case KindString:
		return String(text), nil
	default:
		return Value{}, fmt.Errorf("abdm: unknown kind %q", kind)
	}
}

// InferValue parses a literal the way the ABDL scanner does: quoted text is a
// string, text with a decimal point or exponent is a float, digits are an
// integer, the bare word NULL is null, and anything else is a string.
func InferValue(text string) Value {
	t := strings.TrimSpace(text)
	if t == "NULL" {
		return Null()
	}
	if len(t) >= 2 && t[0] == '\'' && t[len(t)-1] == '\'' {
		return String(strings.ReplaceAll(t[1:len(t)-1], "''", "'"))
	}
	if n, err := strconv.ParseInt(t, 10, 64); err == nil {
		return Int(n)
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return Float(f)
	}
	return String(t)
}
