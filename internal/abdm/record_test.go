package abdm

import (
	"testing"
	"testing/quick"
)

func sampleRecord() *Record {
	return NewRecord("course",
		Keyword{"title", String("Advanced Database")},
		Keyword{"credits", Int(4)},
		Keyword{"rating", Float(4.5)},
	)
}

func TestNewRecordFileFirst(t *testing.T) {
	r := sampleRecord()
	if r.Keywords[0].Attr != FileAttr {
		t.Fatalf("first keyword = %q, want FILE", r.Keywords[0].Attr)
	}
	if r.File() != "course" {
		t.Errorf("File() = %q, want course", r.File())
	}
}

func TestRecordGetSet(t *testing.T) {
	r := sampleRecord()
	v, ok := r.Get("credits")
	if !ok || v.AsInt() != 4 {
		t.Fatalf("Get(credits) = %v,%v", v, ok)
	}
	r.Set("credits", Int(3))
	if v, _ := r.Get("credits"); v.AsInt() != 3 {
		t.Error("Set did not replace")
	}
	if n := len(r.Keywords); n != 4 {
		t.Errorf("Set duplicated keyword: %d keywords", n)
	}
	r.Set("dept", String("CS"))
	if !r.Has("dept") {
		t.Error("Set did not append new attribute")
	}
}

func TestRecordAtMostOneKeywordPerAttr(t *testing.T) {
	// NewRecord must collapse duplicate attributes passed by the caller.
	r := NewRecord("f", Keyword{"a", Int(1)}, Keyword{"a", Int(2)})
	if n := len(r.Keywords); n != 2 { // FILE + a
		t.Fatalf("got %d keywords, want 2", n)
	}
	if v, _ := r.Get("a"); v.AsInt() != 2 {
		t.Error("later duplicate should win")
	}
}

func TestRecordDelete(t *testing.T) {
	r := sampleRecord()
	if !r.Delete("rating") {
		t.Fatal("Delete returned false for present attr")
	}
	if r.Has("rating") {
		t.Error("attribute still present after Delete")
	}
	if r.Delete("rating") {
		t.Error("Delete returned true for absent attr")
	}
}

func TestRecordCloneIndependence(t *testing.T) {
	r := sampleRecord()
	cp := r.Clone()
	cp.Set("credits", Int(99))
	if v, _ := r.Get("credits"); v.AsInt() != 4 {
		t.Error("Clone shares storage with original")
	}
	if !r.Equal(r.Clone()) {
		t.Error("Clone not Equal to original")
	}
}

func TestRecordEqualOrderInsensitive(t *testing.T) {
	a := &Record{Keywords: []Keyword{{"x", Int(1)}, {"y", Int(2)}}}
	b := &Record{Keywords: []Keyword{{"y", Int(2)}, {"x", Int(1)}}}
	if !a.Equal(b) {
		t.Error("keyword order should not affect equality")
	}
	c := &Record{Keywords: []Keyword{{"x", Int(1)}, {"y", Int(3)}}}
	if a.Equal(c) {
		t.Error("differing values reported equal")
	}
}

func TestRecordKeyCanonical(t *testing.T) {
	a := &Record{Keywords: []Keyword{{"x", Int(1)}, {"y", Int(2)}}}
	b := &Record{Keywords: []Keyword{{"y", Int(2)}, {"x", Int(1)}}}
	if a.Key() != b.Key() {
		t.Error("Key should be order-insensitive")
	}
	c := &Record{Keywords: []Keyword{{"x", Int(1)}}}
	if a.Key() == c.Key() {
		t.Error("distinct records share a Key")
	}
}

func TestRecordString(t *testing.T) {
	r := NewRecord("course", Keyword{"title", String("DB")})
	want := "(<FILE, 'course'>, <title, 'DB'>)"
	if got := r.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: Set then Get returns what was set, for any attribute/value.
func TestRecordSetGetProperty(t *testing.T) {
	f := func(attr string, val int64) bool {
		if attr == "" {
			return true
		}
		r := NewRecord("f")
		r.Set(attr, Int(val))
		got, ok := r.Get(attr)
		return ok && got.AsInt() == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal records have equal Keys.
func TestRecordKeyEqualConsistency(t *testing.T) {
	f := func(a, b int64, s string) bool {
		r1 := NewRecord("f", Keyword{"a", Int(a)}, Keyword{"b", Int(b)}, Keyword{"s", String(s)})
		r2 := r1.Clone()
		return r1.Equal(r2) && r1.Key() == r2.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
