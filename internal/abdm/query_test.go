package abdm

import (
	"testing"
	"testing/quick"
)

func TestOpHolds(t *testing.T) {
	cases := []struct {
		op   Op
		cmp  int
		want bool
	}{
		{OpEq, 0, true}, {OpEq, 1, false},
		{OpNe, 0, false}, {OpNe, -1, true},
		{OpLt, -1, true}, {OpLt, 0, false},
		{OpLe, 0, true}, {OpLe, 1, false},
		{OpGt, 1, true}, {OpGt, 0, false},
		{OpGe, 0, true}, {OpGe, -1, false},
	}
	for _, c := range cases {
		if got := c.op.Holds(c.cmp); got != c.want {
			t.Errorf("%v.Holds(%d) = %v, want %v", c.op, c.cmp, got, c.want)
		}
	}
}

func TestParseOp(t *testing.T) {
	for spell, want := range map[string]Op{
		"=": OpEq, "==": OpEq, "!=": OpNe, "<>": OpNe,
		"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	} {
		got, err := ParseOp(spell)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v,%v want %v", spell, got, err, want)
		}
	}
	if _, err := ParseOp("~"); err == nil {
		t.Error("ParseOp should reject unknown operator")
	}
}

func TestPredicateMatches(t *testing.T) {
	r := sampleRecord()
	cases := []struct {
		p    Predicate
		want bool
	}{
		{Predicate{"title", OpEq, String("Advanced Database")}, true},
		{Predicate{"title", OpEq, String("Intro")}, false},
		{Predicate{"credits", OpGe, Int(4)}, true},
		{Predicate{"credits", OpGt, Int(4)}, false},
		{Predicate{"rating", OpLt, Float(5)}, true},
		{Predicate{"missing", OpEq, Int(1)}, false},     // absent attribute
		{Predicate{"credits", OpNe, String("x")}, true}, // incomparable kinds satisfy only !=
		{Predicate{"credits", OpEq, String("x")}, false},
	}
	for _, c := range cases {
		if got := c.p.Matches(r); got != c.want {
			t.Errorf("%v.Matches = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPredicateNull(t *testing.T) {
	r := NewRecord("f", Keyword{"a", Null()})
	if !(Predicate{"a", OpEq, Null()}).Matches(r) {
		t.Error("NULL = NULL should match")
	}
	if (Predicate{"a", OpEq, Int(0)}).Matches(r) {
		t.Error("NULL should not equal 0")
	}
}

func TestConjunctionMatches(t *testing.T) {
	r := sampleRecord()
	c := Conjunction{
		{FileAttr, OpEq, String("course")},
		{"credits", OpEq, Int(4)},
	}
	if !c.Matches(r) {
		t.Error("conjunction should match")
	}
	c = append(c, Predicate{"title", OpEq, String("nope")})
	if c.Matches(r) {
		t.Error("conjunction with false predicate matched")
	}
	if !(Conjunction{}).Matches(r) {
		t.Error("empty conjunction should match everything")
	}
}

func TestConjunctionFile(t *testing.T) {
	c := Conjunction{{FileAttr, OpEq, String("course")}, {"x", OpEq, Int(1)}}
	f, ok := c.File()
	if !ok || f != "course" {
		t.Errorf("File() = %q,%v", f, ok)
	}
	if _, ok := (Conjunction{{"x", OpEq, Int(1)}}).File(); ok {
		t.Error("File() should be false without FILE predicate")
	}
}

func TestQueryDNF(t *testing.T) {
	r := sampleRecord()
	q := Query{
		{{"title", OpEq, String("zzz")}}, // false
		{{"credits", OpEq, Int(4)}},      // true
	}
	if !q.Matches(r) {
		t.Error("DNF: one true conjunction should suffice")
	}
	q = Query{
		{{"title", OpEq, String("zzz")}},
		{{"credits", OpEq, Int(99)}},
	}
	if q.Matches(r) {
		t.Error("DNF: all-false query matched")
	}
	if !(Query{}).Matches(r) {
		t.Error("empty query should match everything")
	}
}

func TestQueryFiles(t *testing.T) {
	q := Query{
		{{FileAttr, OpEq, String("a")}},
		{{FileAttr, OpEq, String("b")}},
		{{FileAttr, OpEq, String("a")}},
	}
	files, ok := q.Files()
	if !ok || len(files) != 2 {
		t.Fatalf("Files() = %v,%v", files, ok)
	}
	q = append(q, Conjunction{{"x", OpEq, Int(1)}})
	if _, ok := q.Files(); ok {
		t.Error("Files() should fail when a conjunction lacks FILE")
	}
}

func TestQueryString(t *testing.T) {
	q := And(
		Predicate{FileAttr, OpEq, String("course")},
		Predicate{"title", OpEq, String("DB")},
	)
	want := "((FILE = 'course') AND (title = 'DB'))"
	if got := q.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: DNF semantics — a query matches iff some conjunction matches.
func TestQueryDNFProperty(t *testing.T) {
	f := func(a, b, v int64) bool {
		r := NewRecord("f", Keyword{"x", Int(v)})
		q := Query{
			{{"x", OpEq, Int(a)}},
			{{"x", OpEq, Int(b)}},
		}
		want := v == a || v == b
		return q.Matches(r) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: predicate and its negation partition records with the attribute.
func TestPredicateNegationProperty(t *testing.T) {
	f := func(v, bound int64) bool {
		r := NewRecord("f", Keyword{"x", Int(v)})
		lt := Predicate{"x", OpLt, Int(bound)}.Matches(r)
		ge := Predicate{"x", OpGe, Int(bound)}.Matches(r)
		return lt != ge
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
