package abdm

import (
	"fmt"
	"strings"
)

// Op is a relational operator of a keyword predicate.
type Op byte

// Relational operators.
const (
	OpEq Op = iota // =
	OpNe           // !=
	OpLt           // <
	OpLe           // <=
	OpGt           // >
	OpGe           // >=
)

var opNames = [...]string{"=", "!=", "<", "<=", ">", ">="}

// String returns the operator's ABDL spelling.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// ParseOp recognises an operator spelling.
func ParseOp(s string) (Op, error) {
	switch s {
	case "=", "==":
		return OpEq, nil
	case "!=", "<>":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	}
	return 0, fmt.Errorf("abdm: unknown relational operator %q", s)
}

// Holds applies the operator to a comparison result.
func (o Op) Holds(cmp int) bool {
	switch o {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

// Predicate is a keyword predicate (attribute, relational operator,
// attribute-value). A record satisfies the predicate when it carries a
// keyword for the attribute whose value stands in the stated relation to the
// predicate's value.
type Predicate struct {
	Attr string
	Op   Op
	Val  Value
}

// Matches reports whether the record satisfies the predicate. A record with
// no keyword for the attribute does not satisfy it; values of incomparable
// kinds satisfy only != .
func (p Predicate) Matches(r *Record) bool {
	v, ok := r.Get(p.Attr)
	if !ok {
		return false
	}
	cmp, err := v.Compare(p.Val)
	if err != nil {
		return p.Op == OpNe
	}
	return p.Op.Holds(cmp)
}

// String renders the predicate as (attr op value).
func (p Predicate) String() string {
	return "(" + p.Attr + " " + p.Op.String() + " " + p.Val.String() + ")"
}

// Conjunction is a set of predicates that must all hold.
type Conjunction []Predicate

// Matches reports whether every predicate holds for the record. The empty
// conjunction matches every record.
func (c Conjunction) Matches(r *Record) bool {
	for _, p := range c {
		if !p.Matches(r) {
			return false
		}
	}
	return true
}

// File returns the value of the conjunction's FILE equality predicate, if it
// has one. Request routing uses this to confine execution to one file.
func (c Conjunction) File() (string, bool) {
	for _, p := range c {
		if p.Attr == FileAttr && p.Op == OpEq && p.Val.Kind() == KindString {
			return p.Val.AsString(), true
		}
	}
	return "", false
}

// String renders the conjunction with AND separators.
func (c Conjunction) String() string {
	parts := make([]string, len(c))
	for i, p := range c {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}

// Query is a disjunctive-normal-form combination of keyword predicates: a
// record satisfies the query when it satisfies at least one conjunction.
type Query []Conjunction

// And builds a single-conjunction query from predicates.
func And(ps ...Predicate) Query { return Query{Conjunction(ps)} }

// Matches reports whether the record satisfies the query. The empty query
// matches every record (an unqualified request addresses the whole store).
func (q Query) Matches(r *Record) bool {
	if len(q) == 0 {
		return true
	}
	for _, c := range q {
		if c.Matches(r) {
			return true
		}
	}
	return false
}

// Files returns the set of files named by FILE equality predicates when
// every conjunction names one; ok is false if any conjunction lacks a file
// restriction (the query may then touch any file).
func (q Query) Files() (files []string, ok bool) {
	seen := make(map[string]bool)
	for _, c := range q {
		f, has := c.File()
		if !has {
			return nil, false
		}
		if !seen[f] {
			seen[f] = true
			files = append(files, f)
		}
	}
	return files, true
}

// String renders the query with OR separators between parenthesised
// conjunctions; the whole disjunction is wrapped in one outer pair of
// parentheses so the text reparses as a single query.
func (q Query) String() string {
	if len(q) == 0 {
		return "()"
	}
	if len(q) == 1 {
		return "(" + q[0].String() + ")"
	}
	parts := make([]string, len(q))
	for i, c := range q {
		parts[i] = "(" + c.String() + ")"
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}
