package abdm

import (
	"fmt"
	"sort"
	"strings"
)

// FileAttr is the conventional first attribute of every ABDM record; its
// value names the file the record belongs to.
const FileAttr = "FILE"

// RecordID identifies a stored record. IDs are allocated by the storage layer
// and are unique within one kernel database. Zero is never a valid ID.
type RecordID uint64

// Keyword is an attribute-value pair, the fundamental ABDM construct.
type Keyword struct {
	Attr string
	Val  Value
}

// String renders the keyword in ABDL angle-bracket syntax.
func (k Keyword) String() string { return "<" + k.Attr + ", " + k.Val.String() + ">" }

// Record is an ABDM record: at most one keyword per attribute plus an
// optional free-text remainder. Keyword order is preserved because the FILE
// keyword conventionally comes first and schema mappings assign meaning to
// the second keyword as well.
type Record struct {
	Keywords []Keyword
	Text     string
}

// NewRecord builds a record for the named file followed by the given
// keywords.
func NewRecord(file string, kws ...Keyword) *Record {
	r := &Record{Keywords: make([]Keyword, 0, len(kws)+1)}
	r.Keywords = append(r.Keywords, Keyword{FileAttr, String(file)})
	for _, kw := range kws {
		r.Set(kw.Attr, kw.Val)
	}
	return r
}

// File returns the record's file name, or "" if the record carries no FILE
// keyword.
func (r *Record) File() string {
	if v, ok := r.Get(FileAttr); ok && v.Kind() == KindString {
		return v.AsString()
	}
	return ""
}

// Get returns the value paired with attr.
func (r *Record) Get(attr string) (Value, bool) {
	for _, kw := range r.Keywords {
		if kw.Attr == attr {
			return kw.Val, true
		}
	}
	return Value{}, false
}

// Has reports whether the record carries a keyword for attr.
func (r *Record) Has(attr string) bool {
	_, ok := r.Get(attr)
	return ok
}

// Set assigns attr = val, replacing any existing keyword for attr and
// appending otherwise. The "at most one keyword per attribute" record
// invariant is maintained here.
func (r *Record) Set(attr string, val Value) {
	for i, kw := range r.Keywords {
		if kw.Attr == attr {
			r.Keywords[i].Val = val
			return
		}
	}
	r.Keywords = append(r.Keywords, Keyword{attr, val})
}

// Delete removes the keyword for attr, reporting whether one was present.
func (r *Record) Delete(attr string) bool {
	for i, kw := range r.Keywords {
		if kw.Attr == attr {
			r.Keywords = append(r.Keywords[:i], r.Keywords[i+1:]...)
			return true
		}
	}
	return false
}

// Attrs returns the record's attribute names in keyword order.
func (r *Record) Attrs() []string {
	out := make([]string, len(r.Keywords))
	for i, kw := range r.Keywords {
		out[i] = kw.Attr
	}
	return out
}

// Clone returns a deep copy of the record.
func (r *Record) Clone() *Record {
	cp := &Record{Keywords: make([]Keyword, len(r.Keywords)), Text: r.Text}
	copy(cp.Keywords, r.Keywords)
	return cp
}

// Equal reports whether two records carry the same keywords (order
// insensitive) and the same text.
func (r *Record) Equal(o *Record) bool {
	if r == nil || o == nil {
		return r == o
	}
	if len(r.Keywords) != len(o.Keywords) || r.Text != o.Text {
		return false
	}
	for _, kw := range r.Keywords {
		ov, ok := o.Get(kw.Attr)
		if !ok || !kw.Val.Equal(ov) {
			return false
		}
	}
	return true
}

// Key returns a canonical string identifying the record's full keyword
// content; records with equal keyword sets produce equal keys. Used for
// duplicate detection and result-set comparison.
func (r *Record) Key() string {
	parts := make([]string, len(r.Keywords))
	for i, kw := range r.Keywords {
		parts[i] = kw.Attr + "=" + kw.Val.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x1f") + "\x1e" + r.Text
}

// String renders the record as an ABDL keyword list:
// (<FILE, course>, <title, 'Database'>, ...).
func (r *Record) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, kw := range r.Keywords {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(kw.String())
	}
	b.WriteByte(')')
	if r.Text != "" {
		fmt.Fprintf(&b, " %q", r.Text)
	}
	return b.String()
}
