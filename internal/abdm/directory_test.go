package abdm

import "testing"

func univDir(t *testing.T) *Directory {
	t.Helper()
	d := NewDirectory()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.DefineAttr("title", KindString))
	must(d.DefineAttr("credits", KindInt))
	must(d.DefineAttr("rating", KindFloat))
	must(d.DefineFile("course", []string{"title", "credits", "rating"}))
	return d
}

func TestDirectoryDefineAttr(t *testing.T) {
	d := univDir(t)
	if k, ok := d.AttrKind("title"); !ok || k != KindString {
		t.Errorf("AttrKind(title) = %v,%v", k, ok)
	}
	if err := d.DefineAttr("title", KindString); err != nil {
		t.Errorf("idempotent redeclare failed: %v", err)
	}
	if err := d.DefineAttr("title", KindInt); err == nil {
		t.Error("conflicting redeclare should fail")
	}
	if _, ok := d.AttrKind(FileAttr); !ok {
		t.Error("FILE should be pre-declared")
	}
}

func TestDirectoryDefineFile(t *testing.T) {
	d := univDir(t)
	if err := d.DefineFile("bad", []string{"nosuch"}); err == nil {
		t.Error("DefineFile should reject undeclared attributes")
	}
	tmpl, ok := d.FileTemplate("course")
	if !ok || len(tmpl) != 3 || tmpl[0] != "title" {
		t.Errorf("FileTemplate = %v,%v", tmpl, ok)
	}
	files := d.Files()
	if len(files) != 1 || files[0] != "course" {
		t.Errorf("Files() = %v", files)
	}
}

func TestDirectoryValidateRecord(t *testing.T) {
	d := univDir(t)
	good := NewRecord("course", Keyword{"title", String("DB")}, Keyword{"credits", Int(4)})
	if err := d.ValidateRecord(good); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	nullOK := NewRecord("course", Keyword{"credits", Null()})
	if err := d.ValidateRecord(nullOK); err != nil {
		t.Errorf("NULL value rejected: %v", err)
	}
	cases := []*Record{
		{Keywords: []Keyword{{"title", String("x")}}},           // no FILE
		NewRecord("nosuchfile"),                                 // undeclared file
		NewRecord("course", Keyword{"bogus", Int(1)}),           // undeclared attr
		NewRecord("course", Keyword{"credits", String("four")}), // kind mismatch
	}
	for i, r := range cases {
		if err := d.ValidateRecord(r); err == nil {
			t.Errorf("case %d: invalid record accepted", i)
		}
	}
}

func TestDirectoryValidateQuery(t *testing.T) {
	d := univDir(t)
	ok := And(
		Predicate{FileAttr, OpEq, String("course")},
		Predicate{"credits", OpGe, Int(3)},
	)
	if err := d.ValidateQuery(ok); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	// int attribute compared with float literal: allowed (numeric family).
	numOK := And(Predicate{"credits", OpLt, Float(3.5)})
	if err := d.ValidateQuery(numOK); err != nil {
		t.Errorf("numeric-family query rejected: %v", err)
	}
	bad := And(Predicate{"credits", OpEq, String("four")})
	if err := d.ValidateQuery(bad); err == nil {
		t.Error("kind-mismatched query accepted")
	}
	unk := And(Predicate{"nosuch", OpEq, Int(1)})
	if err := d.ValidateQuery(unk); err == nil {
		t.Error("query on undeclared attribute accepted")
	}
}

func TestDirectoryClone(t *testing.T) {
	d := univDir(t)
	cp := d.Clone()
	if err := cp.DefineAttr("extra", KindInt); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.AttrKind("extra"); ok {
		t.Error("Clone shares attribute map with original")
	}
	if _, ok := cp.FileTemplate("course"); !ok {
		t.Error("Clone lost file template")
	}
}
