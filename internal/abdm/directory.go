package abdm

import (
	"fmt"
	"sort"
	"sync"
)

// Directory is the kernel database's attribute catalog: it records the
// declared type of every attribute and the set of files the database holds.
// MBDS uses the directory both to validate incoming records and to decide
// which attributes are indexed ("directory attributes").
type Directory struct {
	mu    sync.RWMutex
	attrs map[string]Kind
	files map[string][]string // file -> attribute template, in declaration order
}

// NewDirectory returns an empty directory with FILE pre-declared as a string
// attribute.
func NewDirectory() *Directory {
	d := &Directory{
		attrs: make(map[string]Kind),
		files: make(map[string][]string),
	}
	d.attrs[FileAttr] = KindString
	return d
}

// DefineAttr declares an attribute's type. Redeclaring an attribute with the
// same kind is a no-op; with a different kind it is an error — ABDM attribute
// names are global to the database.
func (d *Directory) DefineAttr(name string, kind Kind) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if k, ok := d.attrs[name]; ok && k != kind {
		return fmt.Errorf("abdm: attribute %q already declared as %s, cannot redeclare as %s", name, k, kind)
	}
	d.attrs[name] = kind
	return nil
}

// AttrKind reports an attribute's declared kind.
func (d *Directory) AttrKind(name string) (Kind, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	k, ok := d.attrs[name]
	return k, ok
}

// DefineFile declares a file and its attribute template (the attributes its
// records are expected to carry, FILE excluded). All template attributes must
// already be declared.
func (d *Directory) DefineFile(name string, template []string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, a := range template {
		if _, ok := d.attrs[a]; !ok {
			return fmt.Errorf("abdm: file %q template names undeclared attribute %q", name, a)
		}
	}
	d.files[name] = append([]string(nil), template...)
	return nil
}

// FileTemplate returns the declared attribute template of a file.
func (d *Directory) FileTemplate(name string) ([]string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.files[name]
	if !ok {
		return nil, false
	}
	return append([]string(nil), t...), true
}

// Files lists the declared file names, sorted.
func (d *Directory) Files() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.files))
	for f := range d.files {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Attrs lists the declared attribute names, sorted.
func (d *Directory) Attrs() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.attrs))
	for a := range d.attrs {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// ValidateRecord checks a record against the directory: every keyword's
// attribute must be declared and its value must be NULL or of the declared
// kind, and the record must carry a FILE keyword naming a declared file.
func (d *Directory) ValidateRecord(r *Record) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	file := r.File()
	if file == "" {
		return fmt.Errorf("abdm: record lacks a FILE keyword")
	}
	if _, ok := d.files[file]; !ok {
		return fmt.Errorf("abdm: record names undeclared file %q", file)
	}
	for _, kw := range r.Keywords {
		k, ok := d.attrs[kw.Attr]
		if !ok {
			return fmt.Errorf("abdm: record keyword names undeclared attribute %q", kw.Attr)
		}
		if !kw.Val.IsNull() && kw.Val.Kind() != k {
			return fmt.Errorf("abdm: attribute %q declared %s but value is %s", kw.Attr, k, kw.Val.Kind())
		}
	}
	return nil
}

// ValidateQuery checks that every predicate names a declared attribute and
// compares it with a value of the declared kind (or NULL). Numeric kinds are
// interchangeable in predicates.
func (d *Directory) ValidateQuery(q Query) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, c := range q {
		for _, p := range c {
			k, ok := d.attrs[p.Attr]
			if !ok {
				return fmt.Errorf("abdm: query names undeclared attribute %q", p.Attr)
			}
			if p.Val.IsNull() {
				continue
			}
			vk := p.Val.Kind()
			numeric := func(x Kind) bool { return x == KindInt || x == KindFloat }
			if vk != k && !(numeric(vk) && numeric(k)) {
				return fmt.Errorf("abdm: predicate on %q (%s) uses %s value", p.Attr, k, vk)
			}
		}
	}
	return nil
}

// Clone returns an independent copy of the directory. Backends each hold a
// copy so that directory lookups never cross goroutine boundaries.
func (d *Directory) Clone() *Directory {
	d.mu.RLock()
	defer d.mu.RUnlock()
	cp := NewDirectory()
	for a, k := range d.attrs {
		cp.attrs[a] = k
	}
	for f, t := range d.files {
		cp.files[f] = append([]string(nil), t...)
	}
	return cp
}
