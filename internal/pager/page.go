// Package pager is the on-disk storage engine under internal/kdb: slotted
// record pages in a copy-on-write page file, cached by a pinning buffer
// pool, with a record heap on top.
//
// The file layer commits whole generations atomically (dual superblocks,
// shadow-paged data, a copy-on-write page table), and every committed
// generation embeds checkpoint metadata — the MVCC epoch and the count of
// journalled entries the image reflects — so the kernel controller can
// bound crash recovery to the journal tail written after the last
// checkpoint.
package pager

import (
	"encoding/binary"
	"errors"
)

// Page geometry. Every page starts with a fixed header; cells grow upward
// from the header, the slot directory grows downward from the page end.
//
//	[0:4)   crc32 (castagnoli) over page[4:], set at write time
//	[4:6)   slot count
//	[6:8)   freeOff: first free byte after the last cell
//	[8:10)  dead: bytes held by deleted cells, reclaimable by compaction
//	[10:12) reserved
const (
	pageHeaderSize = 12
	slotSize       = 4

	// MinPageSize is small enough for tests to force page churn; DefaultPageSize
	// is the production geometry.
	MinPageSize     = 128
	DefaultPageSize = 4096

	// deadSlot marks a slot whose cell was deleted; the slot is reusable.
	deadSlot = 0xFFFF
)

// ErrTooLarge reports a record too big for a single page's cell area.
var ErrTooLarge = errors.New("pager: record exceeds page capacity")

type page []byte

func initPage(p page) {
	for i := range p {
		p[i] = 0
	}
	binary.LittleEndian.PutUint16(p[6:8], pageHeaderSize)
}

func (p page) slotCount() int { return int(binary.LittleEndian.Uint16(p[4:6])) }
func (p page) freeOff() int   { return int(binary.LittleEndian.Uint16(p[6:8])) }
func (p page) dead() int      { return int(binary.LittleEndian.Uint16(p[8:10])) }

func (p page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p[4:6], uint16(n)) }
func (p page) setFreeOff(n int)   { binary.LittleEndian.PutUint16(p[6:8], uint16(n)) }
func (p page) setDead(n int)      { binary.LittleEndian.PutUint16(p[8:10], uint16(n)) }

// slot returns the offset/length pair of slot i. A dead slot has off ==
// deadSlot.
func (p page) slot(i int) (off, ln int) {
	base := len(p) - (i+1)*slotSize
	return int(binary.LittleEndian.Uint16(p[base : base+2])),
		int(binary.LittleEndian.Uint16(p[base+2 : base+4]))
}

func (p page) setSlot(i, off, ln int) {
	base := len(p) - (i+1)*slotSize
	binary.LittleEndian.PutUint16(p[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(p[base+2:base+4], uint16(ln))
}

// cell returns the stored bytes of slot i, nil if the slot is dead or out of
// range. The returned slice aliases the page.
func (p page) cell(i int) []byte {
	if i < 0 || i >= p.slotCount() {
		return nil
	}
	off, ln := p.slot(i)
	if off == deadSlot {
		return nil
	}
	return p[off : off+ln]
}

// contiguous reports the free bytes between the cell area and the slot
// directory.
func (p page) contiguous() int {
	return len(p) - p.slotCount()*slotSize - p.freeOff()
}

// usable reports the bytes an insert could claim after compaction, assuming
// it may need a fresh slot.
func (p page) usable() int { return p.contiguous() + p.dead() }

// pageCapacity is the largest cell a page of the given size can hold.
func pageCapacity(pageSize int) int { return pageSize - pageHeaderSize - slotSize }

// insert stores the cell and returns its slot, or false if the page cannot
// hold it even after compaction.
func (p page) insert(cell []byte) (int, bool) {
	need := len(cell)
	slot := -1
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off == deadSlot {
			slot = i
			break
		}
	}
	if slot == -1 {
		need += slotSize
	}
	if p.contiguous() < need {
		if p.usable() < need {
			return 0, false
		}
		p.compact()
	}
	if slot == -1 {
		slot = p.slotCount()
		p.setSlotCount(slot + 1)
	}
	off := p.freeOff()
	copy(p[off:], cell)
	p.setSlot(slot, off, len(cell))
	p.setFreeOff(off + len(cell))
	return slot, true
}

// del removes the cell in slot i; the space is reclaimed lazily by compact.
func (p page) del(i int) bool {
	if i < 0 || i >= p.slotCount() {
		return false
	}
	off, ln := p.slot(i)
	if off == deadSlot {
		return false
	}
	p.setSlot(i, deadSlot, 0)
	p.setDead(p.dead() + ln)
	return true
}

// compact rewrites live cells contiguously from the header, erasing dead
// space. Slot numbers are stable; only offsets move.
func (p page) compact() {
	n := p.slotCount()
	type ent struct{ slot, off, ln int }
	live := make([]ent, 0, n)
	for i := 0; i < n; i++ {
		if off, ln := p.slot(i); off != deadSlot {
			live = append(live, ent{i, off, ln})
		}
	}
	// Cells are copied in ascending offset order so each move writes into
	// space already vacated.
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j-1].off > live[j].off; j-- {
			live[j-1], live[j] = live[j], live[j-1]
		}
	}
	w := pageHeaderSize
	for _, e := range live {
		copy(p[w:], p[e.off:e.off+e.ln])
		p.setSlot(e.slot, w, e.ln)
		w += e.ln
	}
	p.setFreeOff(w)
	p.setDead(0)
}

// liveCells calls fn for every live cell on the page.
func (p page) liveCells(fn func(slot int, cell []byte)) {
	for i := 0; i < p.slotCount(); i++ {
		if c := p.cell(i); c != nil {
			fn(i, c)
		}
	}
}
