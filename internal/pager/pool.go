package pager

import (
	"fmt"
	"sync"
)

// Pool is a pinning buffer pool over a File. Pages are pinned into frames
// for access and unpinned (optionally dirty) when done; when the pool is at
// capacity, the least-recently-used unpinned frame is evicted, writing it
// back through the file's shadow-paging layer first if dirty. If every
// frame is pinned the pool grows past its capacity rather than deadlock —
// the overflow shows up in Stats.
type Pool struct {
	f   *File
	cap int

	mu     sync.Mutex
	frames map[uint32]*frame
	tick   uint64
	stats  PoolStats
}

type frame struct {
	data  []byte
	pins  int
	dirty bool
	used  uint64
}

// PoolStats counts buffer-pool traffic since the pool was created, plus a
// snapshot of current residency.
type PoolStats struct {
	Hits       uint64 // pins served from a resident frame
	Misses     uint64 // pins that read the page from disk
	Evictions  uint64 // frames dropped to make room
	Writebacks uint64 // dirty frames written back (evictions + flushes)
	Overflow   uint64 // pins forced past capacity because all frames were pinned
	Resident   int    // frames resident right now (snapshot, not a counter)
	Pinned     int    // frames pinned right now (snapshot, not a counter)
}

// NewPool builds a pool of at most capPages resident pages over the file.
func NewPool(f *File, capPages int) *Pool {
	if capPages < 1 {
		capPages = 1
	}
	return &Pool{f: f, cap: capPages, frames: make(map[uint32]*frame)}
}

// File returns the underlying page file.
func (p *Pool) File() *File { return p.f }

// Pin makes the page resident and returns its frame bytes. The slice stays
// valid until the matching Unpin. Concurrent pins of the same page share
// one frame.
func (p *Pool) Pin(id uint32) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tick++
	if fr, ok := p.frames[id]; ok {
		fr.pins++
		fr.used = p.tick
		p.stats.Hits++
		return fr.data, nil
	}
	if err := p.evictLocked(); err != nil {
		return nil, err
	}
	buf := make([]byte, p.f.PageSize())
	if err := p.f.ReadPage(id, buf); err != nil {
		return nil, err
	}
	fr := &frame{data: buf, pins: 1, used: p.tick}
	p.frames[id] = fr
	p.stats.Misses++
	return fr.data, nil
}

// Alloc allocates a fresh logical page, pinned and initialized as an empty
// slotted page.
func (p *Pool) Alloc() (uint32, []byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tick++
	if err := p.evictLocked(); err != nil {
		return 0, nil, err
	}
	id := p.f.Alloc()
	buf := make([]byte, p.f.PageSize())
	initPage(buf)
	p.frames[id] = &frame{data: buf, pins: 1, dirty: true, used: p.tick}
	return id, buf, nil
}

// evictLocked makes room for one more frame, writing back a dirty victim.
func (p *Pool) evictLocked() error {
	if len(p.frames) < p.cap {
		return nil
	}
	victim := uint32(0)
	var vf *frame
	for id, fr := range p.frames {
		if fr.pins > 0 {
			continue
		}
		if vf == nil || fr.used < vf.used {
			victim, vf = id, fr
		}
	}
	if vf == nil {
		p.stats.Overflow++
		return nil
	}
	if vf.dirty {
		if err := p.f.WritePage(victim, vf.data); err != nil {
			return err
		}
		p.stats.Writebacks++
	}
	delete(p.frames, victim)
	p.stats.Evictions++
	return nil
}

// Unpin releases one pin; dirty marks the frame as modified since it was
// pinned.
func (p *Pool) Unpin(id uint32, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr, ok := p.frames[id]
	if !ok || fr.pins == 0 {
		panic(fmt.Sprintf("pager: Unpin of unpinned page %d", id))
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
}

// FlushAll writes every dirty frame back through the file's shadow layer.
// Frames stay resident; a following File.Commit makes them durable.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, fr := range p.frames {
		if !fr.dirty {
			continue
		}
		if err := p.f.WritePage(id, fr.data); err != nil {
			return err
		}
		fr.dirty = false
		p.stats.Writebacks++
	}
	return nil
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Resident = len(p.frames)
	for _, fr := range p.frames {
		if fr.pins > 0 {
			s.Pinned++
		}
	}
	return s
}

// Cap returns the pool's frame capacity.
func (p *Pool) Cap() int { return p.cap }

// Invalidate drops the frames of the given pages without writing them back
// — for pages the caller has freed in the file, whose cached contents are
// garbage. Pinned frames are left alone; freeing a pinned page is a caller
// bug that surfaces as a read error later.
func (p *Pool) Invalidate(ids []uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range ids {
		if fr, ok := p.frames[id]; ok && fr.pins == 0 {
			delete(p.frames, id)
		}
	}
}
