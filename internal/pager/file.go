package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
)

// File is a copy-on-write page file. Logical pages are the unit the buffer
// pool and heap work with; the file maps them to physical pages through a
// page table that is itself rewritten copy-on-write on every Commit.
// Between commits every write goes to a shadow physical page that the last
// durable generation does not reference, so a crash at any byte leaves the
// previous generation fully intact: Open picks the newest superblock whose
// checksum validates and mounts exactly that state.
//
// Physical layout: physical pages 0 and 1 hold the two superblock slots
// (generation g writes slot g%2); all other physical pages hold data or
// page-table runs.
type File struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	pageSize int
	gen      uint64
	meta     Meta

	durable     []uint32        // logical -> physical, last committed generation
	work        []uint32        // logical -> physical, working generation
	shadowed    map[uint32]bool // logical pages already remapped this generation
	tablePhys   []uint32        // physical pages of the durable generation's table
	free        []uint32        // physical pages no generation references
	freeLogical []uint32        // logical pages freed and reusable by Alloc
	physEnd     uint32          // next never-used physical page
}

// Meta is the checkpoint metadata embedded in every committed generation.
// It binds the page image to an exact journal position: the image is the
// database state after precisely Entries committed journal data entries,
// stamped through MVCC epoch Epoch.
type Meta struct {
	Epoch   uint64 // MVCC epoch the image is exact at
	Entries uint64 // committed journal data entries the image reflects
	MaxKey  int64  // kernel-controller currency-key high water
	NextID  uint64 // record-id high water ever stored

	// HasIndex/IndexRoot locate the root blob page of the persisted index
	// the store wrote with this generation, so reopening loads indexes from
	// their pages instead of rebuilding them by scanning the heap. Absent on
	// version-1 files and on generations committed without an index image.
	HasIndex  bool
	IndexRoot uint32
}

const (
	magic         = "MLDSPGF1"
	formatVersion = 2 // current write format; version-1 files still mount

	superGen     = 16 // superblock field offsets
	superCount   = 24
	superTableAt = 28
	superTableN  = 32
	superPhysEnd = 36
	superEpoch   = 40
	superEntries = 48
	superMaxKey  = 56
	superNextID  = 64

	// Version 1 ends at its checksum; version 2 appends the index root (page
	// id + 1, zero meaning no persisted index) before its own checksum.
	superCRCv1 = 72

	superIndexRoot = 72
	superCRC       = 76
	superSize      = 80

	// invalidPhys marks a logical page allocated but never written; Commit
	// refuses to persist one. freedPhys marks a logical page returned to the
	// allocator; unlike invalidPhys it is persisted in the page table, so the
	// free slot survives remounts.
	invalidPhys = 0xFFFFFFFF
	freedPhys   = 0xFFFFFFFE
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports an unreadable page file: no valid superblock, or a data
// page whose checksum does not match.
var ErrCorrupt = errors.New("pager: corrupt page file")

// Create creates a new page file at path with the given page size, truncating
// any existing file. Generation 0 (an empty database) is committed
// immediately, so a crash right after Create still mounts.
func Create(path string, pageSize int) (*File, error) {
	if pageSize < MinPageSize {
		return nil, fmt.Errorf("pager: page size %d below minimum %d", pageSize, MinPageSize)
	}
	fd, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	f := &File{
		f: fd, path: path, pageSize: pageSize,
		shadowed: make(map[uint32]bool),
		physEnd:  2,
	}
	if err := f.Commit(Meta{}); err != nil {
		fd.Close()
		return nil, err
	}
	return f, nil
}

// Open mounts the newest valid generation of an existing page file.
func Open(path string) (*File, error) { return openPath(path, nil) }

// OpenAt mounts the newest valid generation whose committed journal
// position (Meta.Entries) is at most maxEntries. Fleet recovery uses it to
// bring every store of a multi-backend system to one common checkpoint
// position before replaying the shared journal tail. It fails when no
// surviving generation is old enough.
func OpenAt(path string, maxEntries uint64) (*File, error) {
	return openPath(path, &maxEntries)
}

func openPath(path string, maxEntries *uint64) (*File, error) {
	fd, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	f, err := open(fd, path, maxEntries)
	if err != nil {
		fd.Close()
		return nil, err
	}
	return f, nil
}

// candidateSizes lists the page sizes worth probing for: the one slot 0
// advertises when it validates, or every standard size when slot 0 is torn.
func candidateSizes(fd *os.File) []int {
	if ps, ok := probePageSize(fd, 0); ok {
		return []int{ps}
	}
	sizes := []int{DefaultPageSize}
	for s := MinPageSize; s <= 64*1024; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

// validSupers reads both superblock slots at the given page size and
// returns the ones that validate, newest generation first.
func validSupers(fd *os.File, ps int) [][]byte {
	var supers [][]byte
	for slot := 0; slot < 2; slot++ {
		buf := make([]byte, superSize)
		if _, err := fd.ReadAt(buf, int64(slot*ps)); err != nil {
			continue
		}
		if superValid(buf, ps) {
			supers = append(supers, buf)
		}
	}
	sort.Slice(supers, func(i, j int) bool {
		return binary.LittleEndian.Uint64(supers[i][superGen:]) >
			binary.LittleEndian.Uint64(supers[j][superGen:])
	})
	return supers
}

func open(fd *os.File, path string, maxEntries *uint64) (*File, error) {
	// The page size lives in the superblock; bootstrap by reading the
	// largest supported superblock prefix from both slots at the two
	// candidate offsets. Slot 0 is always at byte 0; slot 1 is one page in,
	// so its location depends on the page size we are trying to discover.
	// Read slot 0 first for the page size, falling back to a scan of
	// standard sizes if slot 0 is the torn one.
	for _, ps := range candidateSizes(fd) {
		// Newest valid superblock first; fall back to the older generation if
		// the newer one's extent turns out torn, and skip generations past
		// the caller's position bound.
		for _, super := range validSupers(fd, ps) {
			if maxEntries != nil && superMeta(super).Entries > *maxEntries {
				continue
			}
			f, err := mount(fd, path, ps, super)
			if err == nil {
				return f, nil
			}
			if !errors.Is(err, ErrCorrupt) {
				return nil, err
			}
		}
	}
	if maxEntries != nil {
		return nil, fmt.Errorf("%w: no valid superblock at or before journal position %d in %s",
			ErrCorrupt, *maxEntries, path)
	}
	return nil, fmt.Errorf("%w: no valid superblock in %s", ErrCorrupt, path)
}

// Metas reports the checkpoint metadata of every valid superblock of the
// file at path — newest generation first — without mounting it. Fleet
// recovery reads these to compute the newest journal position every store
// of a system can mount at.
func Metas(path string) ([]Meta, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	for _, ps := range candidateSizes(fd) {
		supers := validSupers(fd, ps)
		if len(supers) == 0 {
			continue
		}
		metas := make([]Meta, len(supers))
		for i, super := range supers {
			metas[i] = superMeta(super)
		}
		return metas, nil
	}
	return nil, fmt.Errorf("%w: no valid superblock in %s", ErrCorrupt, path)
}

// probePageSize reads just enough of a superblock slot to learn the page
// size, without trusting anything else in it.
func probePageSize(fd *os.File, off int64) (int, bool) {
	buf := make([]byte, superSize)
	if _, err := fd.ReadAt(buf, off); err != nil {
		return 0, false
	}
	if string(buf[:8]) != magic {
		return 0, false
	}
	ps := int(binary.LittleEndian.Uint32(buf[12:16]))
	if ps < MinPageSize || ps > 1<<24 {
		return 0, false
	}
	return ps, superValid(buf, ps)
}

func superValid(buf []byte, pageSize int) bool {
	if string(buf[:8]) != magic {
		return false
	}
	version := binary.LittleEndian.Uint16(buf[8:10])
	if version < 1 || version > formatVersion {
		return false
	}
	if int(binary.LittleEndian.Uint32(buf[12:16])) != pageSize {
		return false
	}
	crcOff := superCRC
	if version == 1 {
		crcOff = superCRCv1
	}
	want := binary.LittleEndian.Uint32(buf[crcOff:])
	return crc32.Checksum(buf[:crcOff], crcTable) == want
}

// superMeta decodes the checkpoint metadata of a validated superblock.
func superMeta(buf []byte) Meta {
	m := Meta{
		Epoch:   binary.LittleEndian.Uint64(buf[superEpoch:]),
		Entries: binary.LittleEndian.Uint64(buf[superEntries:]),
		MaxKey:  int64(binary.LittleEndian.Uint64(buf[superMaxKey:])),
		NextID:  binary.LittleEndian.Uint64(buf[superNextID:]),
	}
	if binary.LittleEndian.Uint16(buf[8:10]) >= 2 {
		if root := binary.LittleEndian.Uint32(buf[superIndexRoot:]); root != 0 {
			m.HasIndex, m.IndexRoot = true, root-1
		}
	}
	return m
}

func mount(fd *os.File, path string, pageSize int, super []byte) (*File, error) {
	f := &File{
		f: fd, path: path, pageSize: pageSize,
		shadowed: make(map[uint32]bool),
	}
	f.gen = binary.LittleEndian.Uint64(super[superGen:])
	count := binary.LittleEndian.Uint32(super[superCount:])
	tableAt := binary.LittleEndian.Uint32(super[superTableAt:])
	tableN := binary.LittleEndian.Uint32(super[superTableN:])
	f.physEnd = binary.LittleEndian.Uint32(super[superPhysEnd:])
	// Every physical page below physEnd was written and synced before the
	// superblock that references it; a shorter file is torn.
	if st, err := fd.Stat(); err != nil {
		return nil, err
	} else if st.Size() < int64(f.physEnd)*int64(pageSize) {
		return nil, fmt.Errorf("%w: file truncated below generation %d's extent", ErrCorrupt, f.gen)
	}
	f.meta = superMeta(super)

	// Read the page table: count entries of 4 bytes over tableN physical
	// pages starting at tableAt (a contiguous run).
	f.durable = make([]uint32, count)
	if count > 0 {
		raw := make([]byte, int(tableN)*pageSize)
		if _, err := fd.ReadAt(raw, int64(tableAt)*int64(pageSize)); err != nil {
			return nil, fmt.Errorf("%w: page table unreadable: %v", ErrCorrupt, err)
		}
		for i := range f.durable {
			f.durable[i] = binary.LittleEndian.Uint32(raw[i*4:])
		}
		for i := uint32(0); i < tableN; i++ {
			f.tablePhys = append(f.tablePhys, tableAt+i)
		}
	}
	f.work = append([]uint32(nil), f.durable...)
	for id, p := range f.work {
		if p == freedPhys {
			f.freeLogical = append(f.freeLogical, uint32(id))
		}
	}
	f.rebuildFree()
	return f, nil
}

// rebuildFree recomputes the free list: every physical page below physEnd
// that neither the durable mapping nor the durable table occupies.
func (f *File) rebuildFree() {
	used := make(map[uint32]bool, len(f.work)+len(f.tablePhys)+2)
	used[0], used[1] = true, true
	for _, p := range f.work {
		if p != invalidPhys && p != freedPhys {
			used[p] = true
		}
	}
	for _, p := range f.tablePhys {
		used[p] = true
	}
	f.free = f.free[:0]
	for p := uint32(2); p < f.physEnd; p++ {
		if !used[p] {
			f.free = append(f.free, p)
		}
	}
}

// Meta returns the checkpoint metadata of the last committed generation.
func (f *File) Meta() Meta {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.meta
}

// Generation returns the last committed generation number.
func (f *File) Generation() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}

// PageSize returns the page size the file was created with.
func (f *File) PageSize() int { return f.pageSize }

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// Pages returns the number of logical pages in the working generation.
func (f *File) Pages() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.work)
}

// Alloc returns a fresh logical page id, reusing a freed slot when one
// exists and extending the working generation otherwise. The page must be
// written before the next Commit.
func (f *File) Alloc() uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n := len(f.freeLogical); n > 0 {
		id := f.freeLogical[n-1]
		f.freeLogical = f.freeLogical[:n-1]
		f.work[id] = invalidPhys
		f.shadowed[id] = true
		return id
	}
	id := uint32(len(f.work))
	f.work = append(f.work, invalidPhys)
	f.shadowed[id] = true
	return id
}

// FreeLogical returns a logical page to the allocator. The physical page a
// durable generation maps it to stays reserved until the next Commit stops
// referencing it, so a crash still mounts the previous generation intact; a
// shadow page written only this generation is reclaimed immediately.
func (f *File) FreeLogical(id uint32) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if int(id) >= len(f.work) {
		return fmt.Errorf("pager: FreeLogical of unallocated page %d", id)
	}
	p := f.work[id]
	if p == freedPhys {
		return nil
	}
	if f.shadowed[id] && p != invalidPhys {
		f.free = append(f.free, p)
	}
	f.work[id] = freedPhys
	f.shadowed[id] = true
	f.freeLogical = append(f.freeLogical, id)
	return nil
}

// IsFree reports whether logical page id is currently on the free list.
func (f *File) IsFree(id uint32) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int(id) < len(f.work) && f.work[id] == freedPhys
}

// allocPhysLocked claims a physical page no live generation references.
func (f *File) allocPhysLocked() uint32 {
	if n := len(f.free); n > 0 {
		p := f.free[n-1]
		f.free = f.free[:n-1]
		return p
	}
	p := f.physEnd
	f.physEnd++
	return p
}

// allocRunLocked claims n consecutive physical pages, reusing a free run
// when one exists so steady-state commits do not grow the file.
func (f *File) allocRunLocked(n uint32) uint32 {
	sort.Slice(f.free, func(i, j int) bool { return f.free[i] < f.free[j] })
	for i := 0; i+int(n) <= len(f.free); i++ {
		if f.free[i+int(n)-1] == f.free[i]+n-1 {
			start := f.free[i]
			f.free = append(f.free[:i], f.free[i+int(n):]...)
			return start
		}
	}
	start := f.physEnd
	f.physEnd += n
	return start
}

// WritePage writes a logical page. The first write of a generation goes to
// a fresh shadow physical page; later writes to the same logical page land
// in place, since the shadow is not yet referenced by any durable state.
// The page's checksum field (bytes 0:4) is filled in here; data must be
// exactly one page long.
func (f *File) WritePage(id uint32, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(data) != f.pageSize {
		return fmt.Errorf("pager: WritePage got %d bytes, want %d", len(data), f.pageSize)
	}
	if int(id) >= len(f.work) {
		return fmt.Errorf("pager: WritePage of unallocated page %d", id)
	}
	if f.work[id] == freedPhys {
		return fmt.Errorf("pager: WritePage of freed page %d", id)
	}
	if !f.shadowed[id] {
		f.work[id] = f.allocPhysLocked()
		f.shadowed[id] = true
	} else if f.work[id] == invalidPhys {
		f.work[id] = f.allocPhysLocked()
	}
	binary.LittleEndian.PutUint32(data[0:4], crc32.Checksum(data[4:], crcTable))
	_, err := f.f.WriteAt(data, int64(f.work[id])*int64(f.pageSize))
	return err
}

// ReadPage reads a logical page into buf (one page long) and verifies its
// checksum.
func (f *File) ReadPage(id uint32, buf []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(buf) != f.pageSize {
		return fmt.Errorf("pager: ReadPage got %d-byte buffer, want %d", len(buf), f.pageSize)
	}
	if int(id) >= len(f.work) {
		return fmt.Errorf("pager: ReadPage of unallocated page %d", id)
	}
	phys := f.work[id]
	if phys == invalidPhys {
		return fmt.Errorf("pager: ReadPage of never-written page %d", id)
	}
	if phys == freedPhys {
		return fmt.Errorf("pager: ReadPage of freed page %d", id)
	}
	if _, err := f.f.ReadAt(buf, int64(phys)*int64(f.pageSize)); err != nil {
		return err
	}
	if crc32.Checksum(buf[4:], crcTable) != binary.LittleEndian.Uint32(buf[0:4]) {
		return fmt.Errorf("%w: page %d checksum mismatch", ErrCorrupt, id)
	}
	return nil
}

// Commit makes the working generation durable with the given checkpoint
// metadata: page table to fresh physical pages, data fsync, superblock to
// the alternate slot, superblock fsync. After Commit the previous
// generation's shadow-replaced pages return to the free list.
func (f *File) Commit(meta Meta) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for id, p := range f.work {
		if p == invalidPhys {
			return fmt.Errorf("pager: Commit with never-written page %d", id)
		}
	}

	// Write the table into physical pages referenced by neither the durable
	// nor the working generation. The run must be contiguous; fresh pages
	// from physEnd always are.
	tableBytes := len(f.work) * 4
	tableN := uint32(0)
	tableAt := uint32(0)
	var newTable []uint32
	if tableBytes > 0 {
		tableN = uint32((tableBytes + f.pageSize - 1) / f.pageSize)
		tableAt = f.allocRunLocked(tableN)
		raw := make([]byte, int(tableN)*f.pageSize)
		for i, p := range f.work {
			binary.LittleEndian.PutUint32(raw[i*4:], p)
		}
		if _, err := f.f.WriteAt(raw, int64(tableAt)*int64(f.pageSize)); err != nil {
			return err
		}
		for i := uint32(0); i < tableN; i++ {
			newTable = append(newTable, tableAt+i)
		}
	}
	if err := f.f.Sync(); err != nil {
		return err
	}

	gen := f.gen + 1
	super := make([]byte, superSize)
	copy(super, magic)
	binary.LittleEndian.PutUint16(super[8:10], formatVersion)
	binary.LittleEndian.PutUint32(super[12:16], uint32(f.pageSize))
	binary.LittleEndian.PutUint64(super[superGen:], gen)
	binary.LittleEndian.PutUint32(super[superCount:], uint32(len(f.work)))
	binary.LittleEndian.PutUint32(super[superTableAt:], tableAt)
	binary.LittleEndian.PutUint32(super[superTableN:], tableN)
	binary.LittleEndian.PutUint32(super[superPhysEnd:], f.physEnd)
	binary.LittleEndian.PutUint64(super[superEpoch:], meta.Epoch)
	binary.LittleEndian.PutUint64(super[superEntries:], meta.Entries)
	binary.LittleEndian.PutUint64(super[superMaxKey:], uint64(meta.MaxKey))
	binary.LittleEndian.PutUint64(super[superNextID:], meta.NextID)
	if meta.HasIndex {
		binary.LittleEndian.PutUint32(super[superIndexRoot:], meta.IndexRoot+1)
	}
	binary.LittleEndian.PutUint32(super[superCRC:], crc32.Checksum(super[:superCRC], crcTable))
	if _, err := f.f.WriteAt(super, int64(gen%2)*int64(f.pageSize)); err != nil {
		return err
	}
	if err := f.f.Sync(); err != nil {
		return err
	}

	f.gen = gen
	f.meta = meta
	f.durable = append(f.durable[:0], f.work...)
	f.tablePhys = newTable
	f.shadowed = make(map[uint32]bool)
	f.rebuildFree()
	return nil
}

// Close closes the underlying file without committing.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.f.Close()
}
