package pager

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// TestPoolPropertySchedules drives the buffer pool through random
// pin/read/mutate/evict/checkpoint schedules against a reference model of
// every page's expected contents, checking the pool's core invariants after
// each step:
//
//   - a pinned frame is never evicted: under full eviction pressure a re-pin
//     of a held page is a hit, never a disk read;
//   - pool residency never exceeds the configured capacity (the schedules
//     never pin every frame at once, so overflow must stay zero);
//   - every pin observes exactly the bytes the model last wrote, so a page
//     that was evicted and reloaded is byte-identical;
//   - dirty pages are written back exactly once per generation: write-backs
//     never outrun dirty events, and a flush right after a flush adds none.
//
// After the schedule the file is committed, closed, and reopened: every page
// on disk must equal the model.
func TestPoolPropertySchedules(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runPoolSchedule(t, rand.New(rand.NewSource(seed)))
		})
	}
}

func runPoolSchedule(t *testing.T, rng *rand.Rand) {
	const (
		capPages = 4
		nPages   = 24
		steps    = 400
	)
	path := filepath.Join(t.TempDir(), "pool.pgf")
	f, err := Create(path, MinPageSize)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			f.Close()
		}
	}()
	pool := NewPool(f, capPages)

	// The model: what every page must read as. Pages start as what Alloc
	// initialised them to.
	model := make(map[uint32][]byte, nPages)
	ids := make([]uint32, 0, nPages)
	for i := 0; i < nPages; i++ {
		id, buf, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		model[id] = append([]byte(nil), buf...)
		ids = append(ids, id)
		pool.Unpin(id, true)
	}
	dirtyEvents := uint64(nPages) // Alloc marks every new frame dirty
	epoch := uint64(1)

	// Bytes 0:4 of every page are the checksum slot WritePage stamps in
	// place, so the model never writes or compares them.
	mutate := func(id uint32, buf []byte) {
		off := 4 + rng.Intn(len(buf)-12)
		rng.Read(buf[off : off+8])
		copy(model[id], buf)
	}
	samePage := func(a, b []byte) bool { return bytes.Equal(a[4:], b[4:]) }
	check := func(step int) {
		t.Helper()
		s := pool.Stats()
		if s.Resident > capPages {
			t.Fatalf("step %d: %d frames resident, cap %d", step, s.Resident, capPages)
		}
		if s.Overflow != 0 {
			t.Fatalf("step %d: pool overflowed %d times with at most 2 held pins", step, s.Overflow)
		}
		if s.Writebacks > dirtyEvents {
			t.Fatalf("step %d: %d write-backs outran %d dirty events", step, s.Writebacks, dirtyEvents)
		}
	}
	pinCheck := func(step int, id uint32) []byte {
		t.Helper()
		buf, err := pool.Pin(id)
		if err != nil {
			t.Fatalf("step %d: pin %d: %v", step, id, err)
		}
		if !samePage(buf, model[id]) {
			t.Fatalf("step %d: page %d diverged from the model after reload", step, id)
		}
		return buf
	}

	for step := 0; step < steps; step++ {
		i := rng.Intn(len(ids))
		id := ids[i]
		switch op := rng.Intn(10); {
		case op < 6: // pin, verify, maybe mutate, unpin
			buf := pinCheck(step, id)
			dirty := rng.Intn(2) == 0
			if dirty {
				mutate(id, buf)
				dirtyEvents++
			}
			pool.Unpin(id, dirty)

		case op < 8: // hold a pin through full eviction pressure
			buf := pinCheck(step, id)
			for j := 1; j <= capPages+2; j++ {
				other := ids[(i+j)%len(ids)]
				_ = pinCheck(step, other)
				pool.Unpin(other, false)
			}
			before := pool.Stats()
			again := pinCheck(step, id)
			after := pool.Stats()
			if after.Misses != before.Misses {
				t.Fatalf("step %d: re-pin of held page %d went to disk — pinned frame was evicted", step, id)
			}
			if &again[0] != &buf[0] {
				t.Fatalf("step %d: re-pin of held page %d returned a different frame", step, id)
			}
			pool.Unpin(id, false)
			pool.Unpin(id, false)

		default: // checkpoint: flush everything, commit a generation
			if err := pool.FlushAll(); err != nil {
				t.Fatalf("step %d: flush: %v", step, err)
			}
			flushed := pool.Stats().Writebacks
			if err := pool.FlushAll(); err != nil {
				t.Fatalf("step %d: reflush: %v", step, err)
			}
			if again := pool.Stats().Writebacks; again != flushed {
				t.Fatalf("step %d: second flush wrote %d more pages — dirty flag not cleared",
					step, again-flushed)
			}
			epoch++
			if err := f.Commit(Meta{Epoch: epoch}); err != nil {
				t.Fatalf("step %d: commit: %v", step, err)
			}
		}
		check(step)
	}

	// The schedule must actually have exercised eviction and reload.
	final := pool.Stats()
	if final.Evictions == 0 {
		t.Fatal("schedule never evicted — pool pressure too low to test anything")
	}
	if final.Misses <= uint64(nPages)/2 {
		t.Fatalf("only %d misses over %d pages — evicted pages were never reloaded", final.Misses, nPages)
	}

	// Final checkpoint, then reopen the file cold: disk must equal the model.
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	epoch++
	if err := f.Commit(Meta{Epoch: epoch}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	closed = true
	f2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if got := f2.Meta().Epoch; got != epoch {
		t.Fatalf("reopened at epoch %d, committed %d", got, epoch)
	}
	buf := make([]byte, MinPageSize)
	for _, id := range ids {
		if err := f2.ReadPage(id, buf); err != nil {
			t.Fatalf("reopen read page %d: %v", id, err)
		}
		if !samePage(buf, model[id]) {
			t.Fatalf("page %d on disk diverged from the model after reopen", id)
		}
	}
}
