package pager

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func newFile(t *testing.T, pageSize int) *File {
	t.Helper()
	f, err := Create(filepath.Join(t.TempDir(), "pages.db"), pageSize)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestPageInsertDeleteCompact(t *testing.T) {
	p := make(page, MinPageSize)
	initPage(p)
	var slots []int
	for i := 0; ; i++ {
		s, ok := p.insert([]byte(fmt.Sprintf("rec-%02d", i)))
		if !ok {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 5 {
		t.Fatalf("only %d records fit in a %d-byte page", len(slots), MinPageSize)
	}
	// Delete every other record, then fill the reclaimed space: insert must
	// compact and reuse dead slots.
	freed := 0
	for i := 0; i < len(slots); i += 2 {
		if !p.del(slots[i]) {
			t.Fatalf("del slot %d failed", slots[i])
		}
		freed++
	}
	if p.dead() == 0 {
		t.Fatal("expected dead bytes after deletes")
	}
	refilled := 0
	for ; ; refilled++ {
		if _, ok := p.insert([]byte("fill-xx")); !ok {
			break
		}
	}
	if refilled < freed-1 {
		t.Fatalf("refilled only %d cells after freeing %d", refilled, freed)
	}
	// Survivors are intact after compaction.
	for i := 1; i < len(slots); i += 2 {
		want := fmt.Sprintf("rec-%02d", i)
		if got := p.cell(slots[i]); string(got) != want {
			t.Fatalf("slot %d = %q, want %q", slots[i], got, want)
		}
	}
	if p.del(999) {
		t.Fatal("del of out-of-range slot succeeded")
	}
	if p.cell(999) != nil {
		t.Fatal("cell of out-of-range slot returned data")
	}
}

func TestFileCommitAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := Create(path, MinPageSize)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	buf := make([]byte, MinPageSize)
	for i := 0; i < 5; i++ {
		id := f.Alloc()
		initPage(buf)
		page(buf).insert([]byte(fmt.Sprintf("page-%d", i)))
		if err := f.WritePage(id, buf); err != nil {
			t.Fatalf("WritePage %d: %v", id, err)
		}
	}
	meta := Meta{Epoch: 7, Entries: 42, MaxKey: 99, NextID: 12}
	if err := f.Commit(meta); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	f.Close()

	g, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer g.Close()
	if g.Meta() != meta {
		t.Fatalf("Meta = %+v, want %+v", g.Meta(), meta)
	}
	if g.Pages() != 5 {
		t.Fatalf("Pages = %d, want 5", g.Pages())
	}
	for i := 0; i < 5; i++ {
		if err := g.ReadPage(uint32(i), buf); err != nil {
			t.Fatalf("ReadPage %d: %v", i, err)
		}
		want := fmt.Sprintf("page-%d", i)
		if got := page(buf).cell(0); string(got) != want {
			t.Fatalf("page %d cell = %q, want %q", i, got, want)
		}
	}
}

// TestFileCrashKeepsPreviousGeneration overwrites pages and then corrupts
// the newest superblock: Open must mount the previous generation intact.
func TestFileCrashKeepsPreviousGeneration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := Create(path, MinPageSize)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	buf := make([]byte, MinPageSize)
	id := f.Alloc()
	initPage(buf)
	page(buf).insert([]byte("generation-1"))
	if err := f.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(Meta{Entries: 1}); err != nil {
		t.Fatal(err)
	}
	gen1 := f.Generation()
	initPage(buf)
	page(buf).insert([]byte("generation-2"))
	if err := f.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(Meta{Entries: 2}); err != nil {
		t.Fatal(err)
	}
	gen2 := f.Generation()
	f.Close()

	// Tear the newest superblock (slot gen2%2).
	fd, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fd.WriteAt([]byte{0xDE, 0xAD}, int64(gen2%2)*MinPageSize+superCRC); err != nil {
		t.Fatal(err)
	}
	fd.Close()

	g, err := Open(path)
	if err != nil {
		t.Fatalf("Open after torn superblock: %v", err)
	}
	defer g.Close()
	if g.Generation() != gen1 {
		t.Fatalf("mounted generation %d, want %d", g.Generation(), gen1)
	}
	if g.Meta().Entries != 1 {
		t.Fatalf("Meta.Entries = %d, want 1", g.Meta().Entries)
	}
	if err := g.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if got := page(buf).cell(0); string(got) != "generation-1" {
		t.Fatalf("cell = %q, want generation-1", got)
	}
}

func TestFileOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.db")
	if err := os.WriteFile(path, bytes.Repeat([]byte{0x42}, 4*MinPageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open(garbage) = %v, want ErrCorrupt", err)
	}
}

func TestFileDetectsTornDataPage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := Create(path, MinPageSize)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, MinPageSize)
	id := f.Alloc()
	initPage(buf)
	page(buf).insert([]byte("victim"))
	if err := f.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(Meta{}); err != nil {
		t.Fatal(err)
	}
	phys := f.work[id]
	f.Close()

	fd, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte mid-cell without fixing the checksum.
	if _, err := fd.WriteAt([]byte{0xFF}, int64(phys)*MinPageSize+pageHeaderSize+2); err != nil {
		t.Fatal(err)
	}
	fd.Close()

	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.ReadPage(id, buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadPage(torn) = %v, want ErrCorrupt", err)
	}
}

// TestFileSteadyStateSize commits repeatedly with a fixed working set and
// checks the file stops growing: shadow pages and table runs must recycle.
func TestFileSteadyStateSize(t *testing.T) {
	f := newFile(t, MinPageSize)
	buf := make([]byte, MinPageSize)
	const pages = 8
	for i := 0; i < pages; i++ {
		id := f.Alloc()
		initPage(buf)
		if err := f.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Commit(Meta{}); err != nil {
		t.Fatal(err)
	}
	var grown uint32
	for round := 0; round < 20; round++ {
		for id := uint32(0); id < pages; id++ {
			initPage(buf)
			page(buf).insert([]byte(fmt.Sprintf("round-%d", round)))
			if err := f.WritePage(id, buf); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Commit(Meta{Entries: uint64(round)}); err != nil {
			t.Fatal(err)
		}
		if round == 5 {
			grown = f.physEnd
		}
	}
	if f.physEnd > grown {
		t.Fatalf("file kept growing: physEnd %d after warmup, %d after 20 rounds", grown, f.physEnd)
	}
}

func TestPoolEvictionAndWriteback(t *testing.T) {
	f := newFile(t, MinPageSize)
	pool := NewPool(f, 4)
	// Create 16 pages through a 4-frame pool; every page keeps its content.
	var ids []uint32
	for i := 0; i < 16; i++ {
		id, data, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		page(data).insert([]byte(fmt.Sprintf("content-%02d", i)))
		pool.Unpin(id, true)
		ids = append(ids, id)
	}
	for i, id := range ids {
		data, err := pool.Pin(id)
		if err != nil {
			t.Fatalf("Pin %d: %v", id, err)
		}
		want := fmt.Sprintf("content-%02d", i)
		if got := page(data).cell(0); string(got) != want {
			t.Fatalf("page %d = %q, want %q", id, got, want)
		}
		pool.Unpin(id, false)
	}
	st := pool.Stats()
	if st.Evictions == 0 || st.Writebacks == 0 {
		t.Fatalf("expected evictions and writebacks, got %+v", st)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(Meta{}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolPinnedFramesOverflow(t *testing.T) {
	f := newFile(t, MinPageSize)
	pool := NewPool(f, 2)
	var ids []uint32
	for i := 0; i < 4; i++ {
		id, _, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id) // hold every pin
	}
	if st := pool.Stats(); st.Overflow == 0 {
		t.Fatalf("expected overflow with all frames pinned, got %+v", st)
	}
	for _, id := range ids {
		pool.Unpin(id, true)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapPutGetDeleteUpdateScan(t *testing.T) {
	f := newFile(t, MinPageSize)
	h, err := NewHeap(NewPool(f, 8))
	if err != nil {
		t.Fatal(err)
	}
	recs := make(map[RID]string)
	for i := 0; i < 100; i++ {
		body := fmt.Sprintf("record-%03d", i)
		rid, err := h.Put([]byte(body))
		if err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		recs[rid] = body
	}
	for rid, want := range recs {
		got, err := h.Get(rid)
		if err != nil || string(got) != want {
			t.Fatalf("Get(%v) = %q, %v; want %q", rid, got, err, want)
		}
	}
	// Delete a third, update a third.
	i := 0
	for rid := range recs {
		switch i % 3 {
		case 0:
			if err := h.Delete(rid); err != nil {
				t.Fatalf("Delete(%v): %v", rid, err)
			}
			delete(recs, rid)
		case 1:
			nr, err := h.Update(rid, []byte("updated-"+recs[rid]))
			if err != nil {
				t.Fatalf("Update(%v): %v", rid, err)
			}
			body := "updated-" + recs[rid]
			delete(recs, rid)
			recs[nr] = body
		}
		i++
	}
	seen := make(map[RID]string)
	if err := h.Scan(func(rid RID, cell []byte) error {
		seen[rid] = string(cell)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(recs) {
		t.Fatalf("Scan saw %d records, want %d", len(seen), len(recs))
	}
	for rid, want := range recs {
		if seen[rid] != want {
			t.Fatalf("Scan[%v] = %q, want %q", rid, seen[rid], want)
		}
	}
	// Typed errors.
	if _, err := h.Get(RID{Page: 0, Slot: 9999}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(bad slot) = %v, want ErrNotFound", err)
	}
	big := make([]byte, MinPageSize)
	if _, err := h.Put(big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Put(big) = %v, want ErrTooLarge", err)
	}
}

// TestHeapReopen round-trips a heap through flush/commit/close/open and
// checks the rebuilt free-space map accepts new records into old pages.
func TestHeapReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := Create(path, MinPageSize)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeap(NewPool(f, 8))
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 40; i++ {
		rid, err := h.Put([]byte(fmt.Sprintf("persisted-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i := 0; i < 40; i += 2 {
		if err := h.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(Meta{Entries: 40}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	h2, err := NewHeap(NewPool(g, 8))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := h2.Scan(func(RID, []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 20 {
		t.Fatalf("reopened heap has %d records, want 20", count)
	}
	for i := 1; i < 40; i += 2 {
		got, err := h2.Get(rids[i])
		if err != nil || string(got) != fmt.Sprintf("persisted-%02d", i) {
			t.Fatalf("Get(%v) = %q, %v", rids[i], got, err)
		}
	}
	before := g.Pages()
	// The deleted half left holes; new records must reuse them without
	// allocating fresh pages.
	for i := 0; i < 10; i++ {
		if _, err := h2.Put([]byte("reused-slot")); err != nil {
			t.Fatal(err)
		}
	}
	if g.Pages() > before+1 {
		t.Fatalf("free-space map not rebuilt: pages grew %d -> %d", before, g.Pages())
	}
}

// TestFileTruncatedAtEveryPage chops the file after a commit at every page
// boundary and verifies Open either mounts a consistent generation or
// reports corruption — never panics or mounts a torn state.
func TestFileTruncatedAtEveryPage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := Create(path, MinPageSize)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, MinPageSize)
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < 4; i++ {
			var id uint32
			if gen == 0 {
				id = f.Alloc()
			} else {
				id = uint32(i)
			}
			initPage(buf)
			page(buf).insert(binary.LittleEndian.AppendUint64(nil, uint64(gen*10+i)))
			if err := f.WritePage(id, buf); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Commit(Meta{Entries: uint64(gen)}); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(whole); cut += MinPageSize {
		trunc := filepath.Join(t.TempDir(), fmt.Sprintf("cut-%d.db", cut))
		if err := os.WriteFile(trunc, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		g, err := Open(trunc)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("cut %d: unexpected error %v", cut, err)
			}
			continue
		}
		// Whatever generation mounted must read clean.
		rb := make([]byte, MinPageSize)
		for id := 0; id < g.Pages(); id++ {
			if err := g.ReadPage(uint32(id), rb); err != nil {
				t.Fatalf("cut %d: ReadPage %d: %v", cut, id, err)
			}
		}
		g.Close()
	}
}
