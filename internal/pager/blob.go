package pager

import (
	"encoding/binary"
	"fmt"
)

// Blob pages carry raw payloads — the persisted index structures the store
// writes at checkpoint time — in the same logical page space as the record
// heap. A kind byte in the shared page header (byte 10, reserved and always
// zero in slotted heap pages, including every page of a version-1 file)
// tells the heap's scans to skip them.
//
// Blob page layout:
//
//	[0:4)   crc32 (castagnoli) over page[4:], set at write time
//	[4:8)   payload length
//	[8:10)  unused
//	[10]    page kind (PageKindIndex)
//	[11]    unused
//	[12:16) next page of the chain + 1; 0 ends the chain
//	[16:)   payload
const (
	blobHeaderSize = 16
	pageKindOff    = 10
)

// Page kinds, stored in byte 10 of every page.
const (
	PageKindHeap  byte = 0 // slotted record page owned by the heap
	PageKindIndex byte = 1 // raw blob page owned by the persisted index
)

// PageKindOf reports the kind byte of a raw page image.
func PageKindOf(data []byte) byte { return data[pageKindOff] }

// BlobCapacity is the payload bytes a single blob page holds.
func BlobCapacity(pageSize int) int { return pageSize - blobHeaderSize }

// writeBlobPage writes payload into a fresh logical page as one blob page
// whose next-pointer is next (page id + 1; 0 for none).
func (f *File) writeBlobPage(payload []byte, next uint32) (uint32, error) {
	if len(payload) > BlobCapacity(f.pageSize) {
		return 0, fmt.Errorf("pager: blob payload %d bytes exceeds page capacity %d",
			len(payload), BlobCapacity(f.pageSize))
	}
	buf := make([]byte, f.pageSize)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	buf[pageKindOff] = PageKindIndex
	binary.LittleEndian.PutUint32(buf[12:16], next)
	copy(buf[blobHeaderSize:], payload)
	id := f.Alloc()
	if err := f.WritePage(id, buf); err != nil {
		return 0, err
	}
	return id, nil
}

// WriteBlob stores payload as a chain of freshly allocated blob pages,
// bypassing the buffer pool, and returns their ids head-first. The pages
// become durable at the next Commit; when the blob is superseded the caller
// frees them with FreeLogical.
func (f *File) WriteBlob(payload []byte) ([]uint32, error) {
	capacity := BlobCapacity(f.PageSize())
	var chunks [][]byte
	for len(payload) > capacity {
		chunks = append(chunks, payload[:capacity])
		payload = payload[capacity:]
	}
	chunks = append(chunks, payload)
	// The last chunk is written first so every page knows its successor.
	ids := make([]uint32, len(chunks))
	next := uint32(0)
	for i := len(chunks) - 1; i >= 0; i-- {
		id, err := f.writeBlobPage(chunks[i], next)
		if err != nil {
			return nil, err
		}
		ids[i] = id
		next = id + 1
	}
	return ids, nil
}

// ReadBlob reads a blob chain through the pool, returning the reassembled
// payload and the chain's page ids head-first.
func ReadBlob(pool *Pool, head uint32) ([]byte, []uint32, error) {
	var out []byte
	var ids []uint32
	next := head + 1
	for next != 0 {
		id := next - 1
		if len(ids) >= pool.File().Pages() {
			return nil, nil, fmt.Errorf("%w: blob chain cycle at page %d", ErrCorrupt, id)
		}
		ids = append(ids, id)
		payload, nx, err := readBlobPage(pool, id)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, payload...)
		next = nx
	}
	return out, ids, nil
}

// ReadBlobPage pins one blob page and returns a copy of its payload.
func ReadBlobPage(pool *Pool, id uint32) ([]byte, error) {
	payload, _, err := readBlobPage(pool, id)
	return payload, err
}

func readBlobPage(pool *Pool, id uint32) (payload []byte, next uint32, err error) {
	data, err := pool.Pin(id)
	if err != nil {
		return nil, 0, err
	}
	defer pool.Unpin(id, false)
	if PageKindOf(data) != PageKindIndex {
		return nil, 0, fmt.Errorf("%w: page %d is not a blob page", ErrCorrupt, id)
	}
	n := int(binary.LittleEndian.Uint32(data[4:8]))
	if n > len(data)-blobHeaderSize {
		return nil, 0, fmt.Errorf("%w: blob page %d claims %d payload bytes", ErrCorrupt, id, n)
	}
	payload = make([]byte, n)
	copy(payload, data[blobHeaderSize:blobHeaderSize+n])
	return payload, binary.LittleEndian.Uint32(data[12:16]), nil
}
