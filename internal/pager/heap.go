package pager

import (
	"errors"
	"fmt"
	"sync"
)

// RID addresses one record cell: a logical page and a slot within it.
type RID struct {
	Page uint32
	Slot uint16
}

// ErrNotFound reports a RID whose slot is dead or out of range.
var ErrNotFound = errors.New("pager: record not found")

// Heap is an unordered record heap over a buffer pool: records go wherever
// they fit, addressed by RID. Free space per page is tracked in memory and
// rebuilt by scanning on open.
type Heap struct {
	pool *Pool

	mu    sync.Mutex
	avail map[uint32]int // page -> usable bytes (after compaction)
}

// NewHeap opens a heap over the pool, scanning existing pages to rebuild
// the free-space map. Freed pages and index blob pages are skipped. On a
// freshly created file the scan is empty.
func NewHeap(pool *Pool) (*Heap, error) {
	h := &Heap{pool: pool, avail: make(map[uint32]int)}
	n := pool.File().Pages()
	for id := uint32(0); int(id) < n; id++ {
		if pool.File().IsFree(id) {
			continue
		}
		data, err := pool.Pin(id)
		if err != nil {
			return nil, err
		}
		if PageKindOf(data) == PageKindHeap {
			h.avail[id] = page(data).usable()
		}
		pool.Unpin(id, false)
	}
	return h, nil
}

// NewHeapAt opens a heap whose free-space map was persisted alongside a
// checkpoint image, skipping NewHeap's full-file scan: avail maps heap page
// id to usable bytes exactly as AvailSnapshot reported it.
func NewHeapAt(pool *Pool, avail map[uint32]int) *Heap {
	h := &Heap{pool: pool, avail: make(map[uint32]int, len(avail))}
	for id, n := range avail {
		h.avail[id] = n
	}
	return h
}

// AvailSnapshot returns a copy of the free-space map — heap page id to
// usable bytes — for persisting alongside a checkpoint image.
func (h *Heap) AvailSnapshot() map[uint32]int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[uint32]int, len(h.avail))
	for id, n := range h.avail {
		out[id] = n
	}
	return out
}

// Put stores a record and returns its RID.
func (h *Heap) Put(rec []byte) (RID, error) {
	if len(rec) > pageCapacity(h.pool.File().PageSize()) {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(rec))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	need := len(rec) + slotSize
	for id, free := range h.avail {
		if free < need {
			continue
		}
		rid, ok, err := h.tryPut(id, rec)
		if err != nil {
			return RID{}, err
		}
		if ok {
			return rid, nil
		}
	}
	id, data, err := h.pool.Alloc()
	if err != nil {
		return RID{}, err
	}
	slot, _ := page(data).insert(rec)
	h.avail[id] = page(data).usable()
	h.pool.Unpin(id, true)
	return RID{Page: id, Slot: uint16(slot)}, nil
}

func (h *Heap) tryPut(id uint32, rec []byte) (RID, bool, error) {
	data, err := h.pool.Pin(id)
	if err != nil {
		return RID{}, false, err
	}
	slot, ok := page(data).insert(rec)
	h.avail[id] = page(data).usable()
	h.pool.Unpin(id, ok)
	if !ok {
		return RID{}, false, nil
	}
	return RID{Page: id, Slot: uint16(slot)}, true, nil
}

// Get returns a copy of the record at rid.
func (h *Heap) Get(rid RID) ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	data, err := h.pool.Pin(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unpin(rid.Page, false)
	cell := page(data).cell(int(rid.Slot))
	if cell == nil {
		return nil, ErrNotFound
	}
	out := make([]byte, len(cell))
	copy(out, cell)
	return out, nil
}

// Delete removes the record at rid.
func (h *Heap) Delete(rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	data, err := h.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	ok := page(data).del(int(rid.Slot))
	h.avail[rid.Page] = page(data).usable()
	h.pool.Unpin(rid.Page, ok)
	if !ok {
		return ErrNotFound
	}
	return nil
}

// Update replaces the record at rid, in place when the page still fits it,
// otherwise moving it and returning the new RID.
func (h *Heap) Update(rid RID, rec []byte) (RID, error) {
	if len(rec) > pageCapacity(h.pool.File().PageSize()) {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(rec))
	}
	h.mu.Lock()
	data, err := h.pool.Pin(rid.Page)
	if err != nil {
		h.mu.Unlock()
		return RID{}, err
	}
	p := page(data)
	if p.cell(int(rid.Slot)) == nil {
		h.pool.Unpin(rid.Page, false)
		h.mu.Unlock()
		return RID{}, ErrNotFound
	}
	p.del(int(rid.Slot))
	if slot, ok := p.insert(rec); ok {
		h.avail[rid.Page] = p.usable()
		h.pool.Unpin(rid.Page, true)
		h.mu.Unlock()
		return RID{Page: rid.Page, Slot: uint16(slot)}, nil
	}
	h.avail[rid.Page] = p.usable()
	h.pool.Unpin(rid.Page, true)
	h.mu.Unlock()
	return h.Put(rec)
}

// Scan calls fn for every live record in page order, skipping freed pages
// and index blob pages. fn's cell slice is only valid during the call.
func (h *Heap) Scan(fn func(rid RID, cell []byte) error) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.pool.File().Pages()
	for id := uint32(0); int(id) < n; id++ {
		if h.pool.File().IsFree(id) {
			continue
		}
		data, err := h.pool.Pin(id)
		if err != nil {
			return err
		}
		if PageKindOf(data) != PageKindHeap {
			h.pool.Unpin(id, false)
			continue
		}
		var inner error
		page(data).liveCells(func(slot int, cell []byte) {
			if inner == nil {
				inner = fn(RID{Page: id, Slot: uint16(slot)}, cell)
			}
		})
		h.pool.Unpin(id, false)
		if inner != nil {
			return inner
		}
	}
	return nil
}

// GetMany looks up many records with one pin per distinct page: rids must
// be grouped by page (callers sort by page id to visit the heap in page
// order). fn receives the index into rids and the cell bytes, valid only
// during the call; a rid whose slot is dead fails with ErrNotFound.
func (h *Heap) GetMany(rids []RID, fn func(i int, cell []byte) error) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := 0; i < len(rids); {
		id := rids[i].Page
		data, err := h.pool.Pin(id)
		if err != nil {
			return err
		}
		var inner error
		for ; i < len(rids) && rids[i].Page == id; i++ {
			if inner != nil {
				continue
			}
			cell := page(data).cell(int(rids[i].Slot))
			if cell == nil {
				inner = fmt.Errorf("%w: page %d slot %d", ErrNotFound, rids[i].Page, rids[i].Slot)
				continue
			}
			inner = fn(i, cell)
		}
		h.pool.Unpin(id, false)
		if inner != nil {
			return inner
		}
	}
	return nil
}

// Flush writes all buffered changes through the pool; the caller commits
// the file to make them durable.
func (h *Heap) Flush() error {
	return h.pool.FlushAll()
}
