package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/cdc"
	"mlds/internal/kc"
	"mlds/internal/mbds"
)

// E18 sizes. The latency phase commits e18Commits single-record transactions
// and measures how long each takes to surface on a live watch; the view phase
// runs e18Inserts+e18Updates+e18Deletes mutations against an incrementally
// maintained materialized view and compares the cost of staying fresh against
// recomputing the view query after every change.
const (
	e18Commits   = 400
	e18Inserts   = 800
	e18Updates   = 200
	e18Deletes   = 100
	e18Threshold = 500 // view predicate: x >= e18Threshold
)

// e18Controller builds a two-backend journalled controller over f(x, y) —
// the full lossless change-capture configuration.
func e18Controller(dir string) (*kc.Controller, func(), error) {
	d := abdm.NewDirectory()
	for _, attr := range []string{"x", "y"} {
		if err := d.DefineAttr(attr, abdm.KindInt); err != nil {
			return nil, nil, err
		}
	}
	if err := d.DefineFile("f", []string{"x", "y"}); err != nil {
		return nil, nil, err
	}
	sys, err := mbds.New(d, mbds.DefaultConfig(2))
	if err != nil {
		return nil, nil, err
	}
	c := kc.New(sys)
	jf, err := kc.OpenJournalFile(filepath.Join(dir, "journal.gob"))
	if err != nil {
		sys.Close()
		return nil, nil, err
	}
	if err := c.AttachJournalFile(jf); err != nil {
		sys.Close()
		jf.Close()
		return nil, nil, err
	}
	return c, func() { sys.Close(); jf.Close() }, nil
}

func e18Insert(x int64) *abdl.Request {
	return abdl.NewInsert(abdm.NewRecord("f",
		abdm.Keyword{Attr: "x", Val: abdm.Int(x)},
		abdm.Keyword{Attr: "y", Val: abdm.Int(x % 7)}))
}

func e18WhereX(x int64) abdm.Query {
	return abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("f")},
		abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(x)})
}

// e18Recompute runs the view's defining query in full against the base table
// and returns the matching x values, sorted.
func e18Recompute(c *kc.Controller) ([]int64, time.Duration, error) {
	start := time.Now()
	res, err := c.Exec(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("f")},
		abdm.Predicate{Attr: "x", Op: abdm.OpGe, Val: abdm.Int(e18Threshold)}),
		"x", "y"))
	wall := time.Since(start)
	if err != nil {
		return nil, wall, err
	}
	xs := make([]int64, 0, len(res.Records))
	for _, sr := range res.Records {
		v, _ := sr.Rec.Get("x")
		xs = append(xs, v.AsInt())
	}
	sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
	return xs, wall, nil
}

// percentile returns the p-th percentile of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// E18ChangeCapture regenerates the change-data-capture subsystem's two
// claims:
//
//  1. Commit-to-watcher latency: a live WATCH over the commit stream sees
//     each acknowledged commit promptly — every one of e18Commits inserts is
//     delivered exactly once, and the p50/p99 from commit acknowledgement to
//     watch delivery stay in interactive territory.
//  2. Incremental view maintenance beats recomputation: after a mixed
//     insert/update/delete workload, the materialized view equals a full
//     recomputation of its query, and the time it needs to catch up after
//     the last commit is far below what recomputing the query after every
//     mutation would have cost.
func E18ChangeCapture() *Report {
	const id, title = "E18", "Change capture — commit→watcher latency; incremental view vs full recompute"
	var b strings.Builder
	ok := true

	// Claim 1: commit→watcher latency under a steady single-writer stream.
	dir, err := os.MkdirTemp("", "mlds-e18-lat-")
	if err != nil {
		return failf(id, title, "tempdir: %v", err)
	}
	defer os.RemoveAll(dir)
	c, cleanup, err := e18Controller(dir)
	if err != nil {
		return failf(id, title, "controller: %v", err)
	}
	def, err := cdc.ParseQuery("WATCH SELECT x, y FROM f WHERE x >= 0")
	if err != nil {
		cleanup()
		return failf(id, title, "parse watch query: %v", err)
	}
	w, err := cdc.Open(c, def, cdc.Options{})
	if err != nil {
		cleanup()
		return failf(id, title, "open watch: %v", err)
	}
	var (
		mu   sync.Mutex
		recv = make(map[int64]time.Time, e18Commits)
	)
	delivered := make(chan struct{})
	go func() {
		defer close(delivered)
		n := 0
		for ch := range w.C {
			if ch.Op != cdc.OpInsert && ch.Op != cdc.OpLoad {
				continue
			}
			v, _ := ch.Rec.Get("x")
			mu.Lock()
			recv[v.AsInt()] = time.Now()
			mu.Unlock()
			if n++; n == e18Commits {
				return
			}
		}
	}()
	acked := make(map[int64]time.Time, e18Commits)
	for i := int64(1); i <= e18Commits; i++ {
		if _, err := c.Exec(e18Insert(i)); err != nil {
			cleanup()
			return failf(id, title, "insert %d: %v", i, err)
		}
		acked[i] = time.Now()
	}
	select {
	case <-delivered:
	case <-time.After(30 * time.Second):
		cleanup()
		return failf(id, title, "watch delivered only %d of %d commits in 30s", len(recv), e18Commits)
	}
	w.Close()
	lats := make([]time.Duration, 0, e18Commits)
	for x, t0 := range acked {
		t1, seen := recv[x]
		if !seen {
			ok = false
			fmt.Fprintf(&b, "MISSING: commit x=%d never delivered\n", x)
			continue
		}
		lat := t1.Sub(t0)
		if lat < 0 {
			lat = 0 // delivered before the ack returned to the writer
		}
		lats = append(lats, lat)
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	p50, p99 := percentile(lats, 0.50), percentile(lats, 0.99)
	st := w.Stats()
	fmt.Fprintf(&b, "latency   : %d commits watched, p50 %v, p99 %v (delivered %d, dropped %d, resyncs %d)\n",
		len(lats), p50.Round(time.Microsecond), p99.Round(time.Microsecond),
		st.Delivered, st.Dropped, st.Resyncs)
	if len(lats) != e18Commits || p99 > 2*time.Second {
		ok = false
	}
	cleanup()

	// Claim 2: incremental maintenance vs recompute-per-change.
	dir2, err := os.MkdirTemp("", "mlds-e18-view-")
	if err != nil {
		return failf(id, title, "tempdir: %v", err)
	}
	defer os.RemoveAll(dir2)
	c2, cleanup2, err := e18Controller(dir2)
	if err != nil {
		return failf(id, title, "controller: %v", err)
	}
	defer cleanup2()
	vdef, err := cdc.ParseQuery(fmt.Sprintf("SELECT x, y FROM f WHERE x >= %d", e18Threshold))
	if err != nil {
		return failf(id, title, "parse view query: %v", err)
	}
	view, err := cdc.OpenView(c2, "wellpaid", vdef, cdc.Options{})
	if err != nil {
		return failf(id, title, "open view: %v", err)
	}
	defer view.Close()
	<-view.Ready()

	workStart := time.Now()
	// Inserts: x = 1..e18Inserts, half of them below the predicate.
	for i := int64(1); i <= e18Inserts; i++ {
		if _, err := c2.Exec(e18Insert(i)); err != nil {
			return failf(id, title, "view insert %d: %v", i, err)
		}
	}
	// Updates: lift e18Updates sub-threshold records across it (membership
	// entry), the expensive transition for any maintenance scheme.
	for i := int64(1); i <= e18Updates; i++ {
		req := abdl.NewUpdate(e18WhereX(i), abdl.Modifier{Attr: "x", Val: abdm.Int(i + 2000)})
		if _, err := c2.Exec(req); err != nil {
			return failf(id, title, "view update %d: %v", i, err)
		}
	}
	// Deletes: drop e18Deletes records from inside the predicate.
	for i := int64(e18Threshold); i < e18Threshold+e18Deletes; i++ {
		if _, err := c2.Exec(abdl.NewDelete(e18WhereX(i))); err != nil {
			return failf(id, title, "view delete %d: %v", i, err)
		}
	}
	workWall := time.Since(workStart)
	catchStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = view.WaitCaughtUp(ctx)
	cancel()
	if err != nil {
		return failf(id, title, "view catch-up: %v", err)
	}
	catchWall := time.Since(catchStart)

	// Exactness at the quiescent point: view contents == full recomputation.
	want, recomputeWall, err := e18Recompute(c2)
	if err != nil {
		return failf(id, title, "recompute: %v", err)
	}
	got := make([]int64, 0, len(want))
	for _, row := range view.Rows() {
		v, _ := row.Rec.Get("x")
		got = append(got, v.AsInt())
	}
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	exact := len(got) == len(want)
	if exact {
		for i := range got {
			if got[i] != want[i] {
				exact = false
				break
			}
		}
	}
	mutations := e18Inserts + e18Updates + e18Deletes
	fullTotal := time.Duration(mutations) * recomputeWall
	vst := view.Stats()
	fmt.Fprintf(&b, "view      : %d mutations in %v; caught up %v after the last commit (%d changes applied)\n",
		mutations, workWall.Round(time.Millisecond), catchWall.Round(time.Millisecond), vst.Events)
	fmt.Fprintf(&b, "exactness : view rows %d == recompute rows %d: %v\n", len(got), len(want), exact)
	fmt.Fprintf(&b, "recompute : one full recompute %v; per-change recompute would cost %d x %v = %v\n",
		recomputeWall.Round(time.Microsecond), mutations,
		recomputeWall.Round(time.Microsecond), fullTotal.Round(time.Millisecond))
	if !exact || catchWall >= fullTotal {
		ok = false
	}

	r := report(id, title, ok, b.String())
	r.Sim = p99
	return r
}
