package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kc"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
	"mlds/internal/pager"
)

// E17 drives the paged on-disk storage engine at a scale no prior
// experiment touches: a bulk load of e17Records records (an order of
// magnitude past the kernel-store datasets elsewhere in this suite) through
// a buffer pool holding a small fraction of the pages, then a
// recovery-time-vs-checkpoint-interval sweep — crash the engine after the
// load and measure how much journal each checkpoint cadence leaves to
// replay.
const (
	e17Records   = 5000
	e17PoolPages = 64
	e17Batch     = 250
)

// e17Engine is one paged single-backend instance: a kernel controller over
// an MBDS whose partition is a page file, journalled to a rotatable journal
// file.
type e17Engine struct {
	ctl   *kc.Controller
	sys   *mbds.System
	store *kdb.Store
	jf    *kc.JournalFile
}

// openE17 builds the engine over dir/part0.pgf and dir/journal.gob,
// creating them on first use and recovering from them otherwise. It returns
// the engine plus the recovery figures (entries replayed, recovery wall
// time) — both zero on a fresh create.
func openE17(dir string) (*e17Engine, int, time.Duration, error) {
	pagePath := filepath.Join(dir, "part0.pgf")
	journalPath := filepath.Join(dir, "journal.gob")
	d := abdm.NewDirectory()
	if err := d.DefineAttr("x", abdm.KindInt); err != nil {
		return nil, 0, 0, err
	}
	if err := d.DefineAttr("payload", abdm.KindString); err != nil {
		return nil, 0, 0, err
	}
	if err := d.DefineFile("f", []string{"x", "payload"}); err != nil {
		return nil, 0, 0, err
	}

	_, statErr := os.Stat(pagePath)
	existing := statErr == nil
	var meta pager.Meta
	cfg := mbds.DefaultConfig(1)
	cfg.StoreOpener = func(pos int, dd *abdm.Directory, opts []kdb.Option) (*kdb.Store, error) {
		opts = append(opts, kdb.WithPoolPages(e17PoolPages))
		if existing {
			st, m, err := kdb.OpenBacked(pagePath, dd, opts...)
			meta = m
			return st, err
		}
		return kdb.CreateBacked(pagePath, dd, opts...)
	}
	sys, err := mbds.New(d, cfg)
	if err != nil {
		return nil, 0, 0, err
	}
	e := &e17Engine{sys: sys, store: sys.Store(0), ctl: kc.New(sys)}

	var replayed int
	var recoverWall time.Duration
	if existing {
		sys.SeedIDs(meta.NextID)
		start := time.Now()
		f, err := os.Open(journalPath)
		if err != nil {
			e.close()
			return nil, 0, 0, err
		}
		n, total, err := e.ctl.RecoverJournalFrom(f, meta.Entries)
		f.Close()
		if err != nil {
			e.close()
			return nil, 0, 0, err
		}
		e.ctl.SeedRecovery(meta, total)
		replayed, recoverWall = n, time.Since(start)
	}

	jf, err := kc.OpenJournalFile(journalPath)
	if err != nil {
		e.close()
		return nil, 0, 0, err
	}
	if existing {
		// An attach truncates the journal down to what the image covers, so a
		// recovered engine must checkpoint first.
		if _, err := e.ctl.Checkpoint(e.store); err != nil {
			e.close()
			return nil, 0, 0, err
		}
	}
	if err := e.ctl.AttachJournalFile(jf); err != nil {
		e.close()
		return nil, 0, 0, err
	}
	e.jf = jf
	return e, replayed, recoverWall, nil
}

// crash abandons the engine without checkpointing: in-memory state is gone,
// the page file keeps its last committed generation, the journal keeps its
// flushed entries.
func (e *e17Engine) crash() {
	e.sys.Close()
	e.store.CloseBacking()
	if e.jf != nil {
		e.jf.Close()
	}
}

func (e *e17Engine) close() { e.crash() }

// e17Load bulk-loads n records in e17Batch-sized kernel rounds,
// checkpointing every ckptEvery records (0 = never). Returns load wall time
// and checkpoint count.
func (e *e17Engine) load(n, ckptEvery int) (time.Duration, int, error) {
	payload := strings.Repeat("p", 64)
	start := time.Now()
	ckpts := 0
	sinceCkpt := 0
	for off := 0; off < n; off += e17Batch {
		end := min(off+e17Batch, n)
		reqs := make([]*abdl.Request, 0, end-off)
		for i := off; i < end; i++ {
			reqs = append(reqs, abdl.NewInsert(abdm.NewRecord("f",
				abdm.Keyword{Attr: "x", Val: abdm.Int(int64(i))},
				abdm.Keyword{Attr: "payload", Val: abdm.String(payload)})))
		}
		if _, err := e.ctl.ExecBatch(reqs); err != nil {
			return 0, 0, fmt.Errorf("load records %d..%d: %w", off, end-1, err)
		}
		sinceCkpt += end - off
		if ckptEvery > 0 && sinceCkpt >= ckptEvery {
			if _, err := e.ctl.Checkpoint(e.store); err != nil {
				return 0, 0, fmt.Errorf("checkpoint at %d: %w", end, err)
			}
			ckpts++
			sinceCkpt = 0
		}
	}
	return time.Since(start), ckpts, nil
}

// count scans the store through the kernel path.
func (e *e17Engine) count() (int, time.Duration, error) {
	res, rt, err := e.sys.ExecTimed(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("f")}), "x"))
	if err != nil {
		return 0, 0, err
	}
	return len(res.Records), rt, nil
}

// E17PagedStorage regenerates the paged storage engine's two claims:
//
//  1. Bulk load and scan at 10x scale hold up behind a buffer pool a
//     fraction of the dataset's size — the pool must actually evict and
//     write back, bounding IO-path memory, with the full scan still exact.
//  2. Recovery time tracks the checkpoint interval: the journal tail a
//     crash leaves to replay is bounded by the interval, so tighter
//     checkpoint cadences give strictly less replay than none at all.
func E17PagedStorage() *Report {
	const id, title = "E17", "Paged storage — 10x bulk load through a bounded pool; recovery vs checkpoint interval"
	var b strings.Builder
	ok := true

	// Claim 1: bulk load + scan through the bounded pool.
	dir, err := os.MkdirTemp("", "mlds-e17-load-")
	if err != nil {
		return failf(id, title, "tempdir: %v", err)
	}
	defer os.RemoveAll(dir)
	eng, _, _, err := openE17(dir)
	if err != nil {
		return failf(id, title, "create: %v", err)
	}
	loadWall, _, err := eng.load(e17Records, 0)
	if err != nil {
		eng.close()
		return failf(id, title, "bulk load: %v", err)
	}
	got, scanSim, err := eng.count()
	if err != nil {
		eng.close()
		return failf(id, title, "scan: %v", err)
	}
	stats, pages, backed := eng.store.BackingStats()
	fmt.Fprintf(&b, "bulk load : %d records in %v (%d heap pages, pool %d frames)\n",
		e17Records, loadWall.Round(time.Millisecond), pages, e17PoolPages)
	fmt.Fprintf(&b, "pool      : %d hits, %d misses, %d evictions, %d writebacks\n",
		stats.Hits, stats.Misses, stats.Evictions, stats.Writebacks)
	fmt.Fprintf(&b, "scan      : %d records, simulated %v\n", got, scanSim)
	if got != e17Records || !backed || pages <= e17PoolPages || stats.Evictions == 0 || stats.Writebacks == 0 {
		ok = false
	}
	eng.close()

	// Claim 2: recovery time vs checkpoint interval. Load the same dataset
	// under three cadences, crash, and recover: the replayed tail must be
	// bounded by the interval, and every recovery must be exact.
	fmt.Fprintf(&b, "\n%-22s %-12s %-10s %s\n", "checkpoint interval", "checkpoints", "replayed", "recovery")
	prevReplayed := -1
	for _, interval := range []int{0, 2000, 500} {
		dir, err := os.MkdirTemp("", "mlds-e17-rec-")
		if err != nil {
			return failf(id, title, "tempdir: %v", err)
		}
		defer os.RemoveAll(dir)
		eng, _, _, err := openE17(dir)
		if err != nil {
			return failf(id, title, "create (interval %d): %v", interval, err)
		}
		_, ckpts, err := eng.load(e17Records, interval)
		if err != nil {
			eng.close()
			return failf(id, title, "load (interval %d): %v", interval, err)
		}
		eng.crash()

		eng2, replayed, recWall, err := openE17(dir)
		if err != nil {
			return failf(id, title, "recover (interval %d): %v", interval, err)
		}
		got, _, err := eng2.count()
		eng2.close()
		if err != nil {
			return failf(id, title, "post-recovery scan (interval %d): %v", interval, err)
		}
		label := "none"
		bound := e17Records
		if interval > 0 {
			label = fmt.Sprintf("every %d", interval)
			bound = interval
		}
		fmt.Fprintf(&b, "%-22s %-12d %-10d %v\n", label, ckpts, replayed, recWall.Round(time.Millisecond))
		if got != e17Records || replayed > bound {
			ok = false
		}
		if prevReplayed >= 0 && replayed >= prevReplayed {
			ok = false // tighter cadence must strictly shrink the replayed tail
		}
		prevReplayed = replayed
	}

	r := report(id, title, ok, b.String())
	r.Sim = scanSim
	return r
}
