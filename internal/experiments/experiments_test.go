package experiments

import (
	"strings"
	"testing"
)

// These tests pin every experiment to the paper's expected shape; the IDs
// match DESIGN.md's experiment index.

func assertOK(t *testing.T, r *Report) {
	t.Helper()
	if !r.OK {
		t.Fatalf("%s failed:\n%s", r.ID, r.Body)
	}
}

func TestE1_UniversitySchema(t *testing.T) {
	r := E1SchemaParse()
	assertOK(t, r)
	for _, want := range []string{"entity  person", "subtype faculty", "UNIQUE [title semester] WITHIN course", "OVERLAP [student] WITH [faculty support_staff]"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("E1 missing %q:\n%s", want, r.Body)
		}
	}
}

func TestE2_FunctionalToNetwork(t *testing.T) {
	r := E2Transform()
	assertOK(t, r)
	if !strings.Contains(r.Body, "RECORD NAME IS LINK_1") {
		t.Error("E2 missing the LINK record")
	}
}

func TestE3_ABFunctionalMapping(t *testing.T) {
	assertOK(t, E3ABMapping())
}

func TestE4_EntityAndSubtypeGoldens(t *testing.T) {
	assertOK(t, E4EntitySubtypeGoldens())
}

func TestE5_Translations(t *testing.T) {
	r := E5Translations()
	assertOK(t, r)
	if strings.Contains(r.Body, "!! aborted") {
		t.Errorf("E5 had aborted statements:\n%s", r.Body)
	}
}

func TestE6_ResponseTimeReciprocal(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	assertOK(t, E6BackendsScaling())
}

func TestE7_CapacityInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	assertOK(t, E7CapacityGrowth())
}

func TestE8_CrossModelEquivalence(t *testing.T) {
	assertOK(t, E8CrossModel())
}

func TestE9_SharedKernel(t *testing.T) {
	assertOK(t, E9SharedKernel())
}

func TestAblation_IndexVsScan(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	assertOK(t, AblationIndexVsScan())
}

func TestAblation_DirectVsPreprocess(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	assertOK(t, AblationDirectVsPreprocess())
}

func TestE13_GroupCommit(t *testing.T) {
	r := E13GroupCommit()
	assertOK(t, r)
	for _, want := range []string{"auto-commit", "one explicit txn", "recovery"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("E13 missing %q:\n%s", want, r.Body)
		}
	}
}

// TestE14_SnapshotReads runs the reader/writer mix behind mldsbench
// -readers/-writers: snapshot readers must beat locked readers under the
// same write load, with zero torn reads in either mode and no lost updates.
func TestE14_SnapshotReads(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := E14SnapshotScaling()
	assertOK(t, r)
	if !strings.Contains(r.Body, "speedup") {
		t.Errorf("E14 missing the throughput comparison:\n%s", r.Body)
	}
}

// TestTxnContention runs the mldsbench -txn workload at a small scale: with
// every operation hitting the shared hot record, the no-lost-updates check
// is exactly the serializability claim of the transaction subsystem.
func TestTxnContention(t *testing.T) {
	assertOK(t, TxnContention(4, 6, 2, 1.0))
}

// TestE17_PagedStorage runs the paged storage engine's bulk-load/scan and
// recovery-vs-checkpoint-interval sweep: the buffer pool must evict and
// write back under the 10x load, and tighter checkpoint cadences must leave
// strictly less journal to replay after a crash.
func TestE17_PagedStorage(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := E17PagedStorage()
	assertOK(t, r)
	for _, want := range []string{"evictions", "checkpoint interval", "every 500"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("E17 missing %q:\n%s", want, r.Body)
		}
	}
}

// TestE18_ChangeCapture runs the CDC experiment: every commit must surface
// on the watch with bounded latency, and the materialized view must equal a
// full recomputation while catching up far faster than per-change recompute.
func TestE18_ChangeCapture(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := E18ChangeCapture()
	assertOK(t, r)
	for _, want := range []string{"p99", "exactness", "recompute"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("E18 missing %q:\n%s", want, r.Body)
		}
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	for _, r := range All() {
		if !r.OK {
			t.Errorf("%s: MISMATCH\n%s", r.ID, r.Body)
		}
	}
}

func TestE10_FiveInterfaces(t *testing.T) {
	r := E10FiveInterfaces()
	assertOK(t, r)
	for _, want := range []string{"functional/Daplex", "network/CODASYL-DML", "relational/SQL", "hierarchical/DL-I", "attribute-based/ABDL"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("E10 missing %q:\n%s", want, r.Body)
		}
	}
}

// TestE15_ElasticScaling grows and shrinks one live fleet under a write
// workload: E6's scaling curve must hold elastically, with zero failed
// requests and the writer's records intact.
func TestE15_ElasticScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := E15ElasticScaling()
	assertOK(t, r)
	for _, want := range []string{"grown (add+rebalance)", "drained back", "0 failures"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("E15 missing %q:\n%s", want, r.Body)
		}
	}
}
