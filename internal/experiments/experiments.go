// Package experiments regenerates every figure and table of the paper's
// evaluation-relevant content: the schema figures (2.1, 3.3, 5.1–5.5), the
// Chapter VI worked translations, the two MBDS performance claims, and the
// cross-model goal. The command mldsbench prints these reports; the
// top-level benchmarks time their workloads; EXPERIMENTS.md records
// paper-vs-measured for each.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"mlds/internal/daplex"
	"mlds/internal/funcmodel"
	"mlds/internal/netddl"
	"mlds/internal/netmodel"
	"mlds/internal/univ"
	"mlds/internal/xform"
)

// mustUniv parses the embedded University schema.
func mustUniv() *funcmodel.Schema { return univ.Schema() }

// reparse round-trips network DDL text (the two-step preprocessing path).
func reparse(ddl string) (*netmodel.Schema, error) { return netddl.Parse(ddl) }

// Report is one experiment's regenerated artifact.
type Report struct {
	ID    string
	Title string
	Body  string
	OK    bool

	// Wall is the wall-clock time the experiment took (stamped by Timed).
	Wall time.Duration
	// Sim is the simulated kernel time the experiment charged, where the
	// experiment has a simulated-time figure; zero for pure-schema work.
	Sim time.Duration
}

func (r *Report) String() string {
	status := "OK"
	if !r.OK {
		status = "MISMATCH"
	}
	return fmt.Sprintf("=== %s: %s [%s] ===\n%s", r.ID, r.Title, status, r.Body)
}

// All runs every experiment in order, stamping wall-clock times.
func All() []*Report {
	runners := []func() *Report{
		E1SchemaParse,
		E2Transform,
		E3ABMapping,
		E4EntitySubtypeGoldens,
		E5Translations,
		E6BackendsScaling,
		E7CapacityGrowth,
		E8CrossModel,
		E9SharedKernel,
		E10FiveInterfaces,
		E11FaultTolerance,
		E12BatchedLoad,
		E13GroupCommit,
		E14SnapshotScaling,
		E15ElasticScaling,
		func() *Report { return E16NetServing(0) },
		E17PagedStorage,
		E18ChangeCapture,
		E19DemandPaging,
		AblationIndexVsScan,
		AblationParallelVsSerial,
		AblationDirectVsPreprocess,
	}
	out := make([]*Report, 0, len(runners))
	for _, run := range runners {
		out = append(out, Timed(run))
	}
	return out
}

// Timed runs one experiment and stamps its wall-clock time.
func Timed(run func() *Report) *Report {
	start := time.Now()
	r := run()
	r.Wall = time.Since(start)
	return r
}

func report(id, title string, ok bool, body string) *Report {
	return &Report{ID: id, Title: title, Body: body, OK: ok}
}

func failf(id, title, format string, args ...any) *Report {
	return report(id, title, false, fmt.Sprintf(format, args...))
}

// E1SchemaParse regenerates Figure 2.1: the University functional schema.
func E1SchemaParse() *Report {
	const id, title = "E1", "Figure 2.1 — University functional schema (Daplex)"
	s, err := daplex.ParseSchema(univ.SchemaDDL)
	if err != nil {
		return failf(id, title, "parse: %v", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s)
	for _, e := range s.Entities {
		fmt.Fprintf(&b, "  entity  %-14s %d functions\n", e.Name, len(e.Functions))
	}
	for _, st := range s.Subtypes {
		fmt.Fprintf(&b, "  subtype %-14s of %v, %d functions\n", st.Name, st.Supertypes, len(st.Functions))
	}
	for _, u := range s.Uniques {
		fmt.Fprintf(&b, "  UNIQUE %v WITHIN %s\n", u.Functions, u.Within)
	}
	for _, o := range s.Overlaps {
		fmt.Fprintf(&b, "  OVERLAP %v WITH %v\n", o.Left, o.Right)
	}
	ok := len(s.Entities) == 3 && len(s.Subtypes) == 4 && len(s.Uniques) == 2 && len(s.Overlaps) == 1
	return report(id, title, ok, b.String())
}

// E2Transform regenerates Figure 5.1: the functional schema transformed to a
// network schema, as CODASYL DDL.
func E2Transform() *Report {
	const id, title = "E2", "Figure 5.1 — functional schema transformed to network DDL"
	m, err := xform.FunToNet(univ.Schema())
	if err != nil {
		return failf(id, title, "transform: %v", err)
	}
	ddl := m.Net.DDL()
	// The figure's landmark clauses must all be present.
	landmarks := []string{
		"SET NAME IS supervisor;", "OWNER IS employee;", "MEMBER IS support_staff;",
		"SET NAME IS employee_support_staff;", "INSERTION IS AUTOMATIC;", "RETENTION IS FIXED;",
		"SET NAME IS teaching;", "MEMBER IS LINK_1;",
		"SET NAME IS taught_by;", "OWNER IS course;",
		"SET NAME IS dept;", "OWNER IS department;", "MEMBER IS faculty;",
		"SET NAME IS employee_faculty;",
		"SET NAME IS advisor;", "OWNER IS faculty;", "MEMBER IS student;",
		"INSERTION IS MANUAL;", "RETENTION IS OPTIONAL;", "SET SELECTION IS BY APPLICATION;",
		"DUPLICATES ARE NOT ALLOWED FOR title, semester",
	}
	ok := true
	var missing []string
	for _, l := range landmarks {
		if !strings.Contains(ddl, l) {
			ok = false
			missing = append(missing, l)
		}
	}
	body := ddl
	if len(missing) > 0 {
		body += "\nMISSING: " + strings.Join(missing, " | ")
	}
	return report(id, title, ok, body)
}

// E3ABMapping regenerates Figure 3.3: the AB(functional) University schema.
func E3ABMapping() *Report {
	const id, title = "E3", "Figure 3.3 — the AB(functional) University database schema"
	m, err := xform.FunToNet(univ.Schema())
	if err != nil {
		return failf(id, title, "transform: %v", err)
	}
	ab, err := xform.DeriveAB(m)
	if err != nil {
		return failf(id, title, "derive: %v", err)
	}
	body := ab.Describe()
	ok := strings.Contains(body, "(<FILE, student>") &&
		strings.Contains(body, "<advisor, *>") &&
		strings.Contains(body, "(<FILE, LINK_1>")
	return report(id, title, ok, body)
}

// E4EntitySubtypeGoldens regenerates Figures 5.2–5.5: the entity type and
// entity subtype declarations and their network representations.
func E4EntitySubtypeGoldens() *Report {
	const id, title = "E4", "Figures 5.2–5.5 — entity/subtype declarations and network representations"
	// A miniature schema holding exactly one entity (course) and one subtype
	// (student of person), transformed in isolation.
	src := `
DATABASE figures IS
ENTITY person IS
    pname : STRING(30);
END ENTITY;
ENTITY course IS
    title    : STRING(30);
    semester : STRING(10);
    credits  : INTEGER;
END ENTITY;
SUBTYPE student OF person IS
    major : STRING(20);
END SUBTYPE;
UNIQUE title, semester WITHIN course;
END DATABASE;
`
	fun, err := daplex.ParseSchema(src)
	if err != nil {
		return failf(id, title, "parse: %v", err)
	}
	m, err := xform.FunToNet(fun)
	if err != nil {
		return failf(id, title, "transform: %v", err)
	}
	ddl := m.Net.DDL()
	ok := strings.Contains(ddl, "RECORD NAME IS course") &&
		strings.Contains(ddl, "DUPLICATES ARE NOT ALLOWED FOR title, semester") &&
		strings.Contains(ddl, "SET NAME IS person_student;") &&
		strings.Contains(ddl, "SET NAME IS system_course;")
	return report(id, title, ok, ddl)
}
