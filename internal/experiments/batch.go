package experiments

import (
	"fmt"
	"time"

	"mlds/internal/univgen"
)

// loadBatchSize mirrors the bulk loaders' round size.
const loadBatchSize = 256

// E12BatchedLoad regenerates the batching and caching claims of the batched
// execution path. Bulk-loading the University instance in batched kernel
// rounds must beat per-request execution in simulated response time — a
// batch pays the bus latency once per round instead of once per record —
// and produce the same database. A repeated retrieval must then be served
// from the backends' per-file result caches, observable as cache hits in
// the kernel store statistics.
func E12BatchedLoad() *Report {
	const id, title = "E12", "Batched bulk load vs per-request, repeated query via result cache"
	db, err := univgen.Generate(scaleConfig(2))
	if err != nil {
		return failf(id, title, "generate: %v", err)
	}
	tx, err := db.Instance.Requests()
	if err != nil {
		return failf(id, title, "requests: %v", err)
	}

	// Per-request load: one bus round per record.
	seqSys, err := db.NewKernel(4)
	if err != nil {
		return failf(id, title, "kernel: %v", err)
	}
	defer seqSys.Close()
	var seqSim time.Duration
	seqStart := time.Now()
	for i, req := range tx {
		_, rt, err := seqSys.ExecTimed(req)
		if err != nil {
			return failf(id, title, "per-request load, record %d: %v", i, err)
		}
		seqSim += rt
	}
	seqWall := time.Since(seqStart)

	// Batched load: one bus round per loadBatchSize records.
	batSys, err := db.NewKernel(4)
	if err != nil {
		return failf(id, title, "kernel: %v", err)
	}
	defer batSys.Close()
	var batSim time.Duration
	batStart := time.Now()
	for off := 0; off < len(tx); off += loadBatchSize {
		end := min(off+loadBatchSize, len(tx))
		_, rt, err := batSys.ExecBatch(tx[off:end])
		if err != nil {
			return failf(id, title, "batched load, records %d..%d: %v", off, end-1, err)
		}
		batSim += rt
	}
	batWall := time.Since(batStart)

	sameDB := seqSys.Len() == batSys.Len()

	// Repeated query: the first run fills the per-file result caches, the
	// second is served from them.
	if _, _, err := batSys.ExecTimed(sweepQuery); err != nil {
		return failf(id, title, "query: %v", err)
	}
	before := batSys.StoreStats()
	if _, _, err := batSys.ExecTimed(sweepQuery); err != nil {
		return failf(id, title, "repeated query: %v", err)
	}
	after := batSys.StoreStats()
	hits := after.CacheHits - before.CacheHits
	exam := after.RecordsExam - before.RecordsExam

	ok := sameDB && batSim < seqSim && hits > 0
	body := fmt.Sprintf(
		"%-22s %-14s %-14s %s\n%-22s %-14v %-14v %d\n%-22s %-14v %-14v %d\n\n"+
			"batched/per-request simulated time: %.2fx\n"+
			"repeated query: %d cache hit(s), %d records examined on the cached run\n",
		"load path", "sim", "wall", "records",
		"per-request", seqSim, seqWall, seqSys.Len(),
		fmt.Sprintf("batched (x%d)", loadBatchSize), batSim, batWall, batSys.Len(),
		float64(batSim)/float64(seqSim), hits, exam)
	r := report(id, title, ok, body)
	r.Sim = seqSim + batSim
	return r
}
