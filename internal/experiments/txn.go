package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/core"
	"mlds/internal/kc"
	"mlds/internal/mbds"
	"mlds/internal/txn"
)

// countingWriter counts the journal's physical writes. The controller wraps
// the journal in a buffered writer flushed once per commit batch, so every
// Write here is one group-commit flush reaching stable storage. A non-zero
// delay models the fsync latency of a real log device — the window during
// which concurrent committers pile onto the leader's next batch.
type countingWriter struct {
	buf    bytes.Buffer
	writes int
	delay  time.Duration
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.delay > 0 {
		time.Sleep(w.delay)
	}
	return w.buf.Write(p)
}

// txnKernel builds a kernel controller over nFiles single-attribute files
// f0..f{n-1}, each holding records with one int attribute x.
func txnKernel(nFiles int) (*kc.Controller, *mbds.System, error) {
	dir := abdm.NewDirectory()
	if err := dir.DefineAttr("x", abdm.KindInt); err != nil {
		return nil, nil, err
	}
	for i := 0; i < nFiles; i++ {
		if err := dir.DefineFile(fmt.Sprintf("f%d", i), []string{"x"}); err != nil {
			return nil, nil, err
		}
	}
	sys, err := mbds.New(dir, mbds.DefaultConfig(2))
	if err != nil {
		return nil, nil, err
	}
	return kc.New(sys), sys, nil
}

func insertInto(file string, v int64) *abdl.Request {
	return abdl.NewInsert(abdm.NewRecord(file, abdm.Keyword{Attr: "x", Val: abdm.Int(v)}))
}

// E13GroupCommit measures the journal-flush economics of the transaction
// subsystem and proves recovery fidelity. Auto-commit pays one flush per
// statement; an explicit transaction of the same statements pays one flush
// total; concurrent committers share flushes through the group-commit
// leader. RecoverJournal then rebuilds exactly the committed state.
func E13GroupCommit() *Report {
	const id, title = "E13", "Group commit: journal flushes per commit, crash-recovery fidelity"
	const stmts = 64

	// Auto-commit: every statement is its own transaction and commit batch.
	autoC, autoSys, err := txnKernel(1)
	if err != nil {
		return failf(id, title, "kernel: %v", err)
	}
	defer autoSys.Close()
	autoW := &countingWriter{}
	autoC.AttachJournal(autoW)
	for v := int64(0); v < stmts; v++ {
		if _, err := autoC.Exec(insertInto("f0", v)); err != nil {
			return failf(id, title, "auto-commit insert %d: %v", v, err)
		}
	}

	// One explicit transaction: the same statements, one commit, one flush.
	oneC, oneSys, err := txnKernel(1)
	if err != nil {
		return failf(id, title, "kernel: %v", err)
	}
	defer oneSys.Close()
	oneW := &countingWriter{}
	oneC.AttachJournal(oneW)
	tx := oneC.Txns().Begin()
	ctx := txn.NewContext(context.Background(), tx)
	for v := int64(0); v < stmts; v++ {
		if _, err := oneC.ExecCtx(ctx, insertInto("f0", v)); err != nil {
			return failf(id, title, "txn insert %d: %v", v, err)
		}
	}
	if err := oneC.Txns().Commit(tx); err != nil {
		return failf(id, title, "commit: %v", err)
	}

	// Concurrent committers on disjoint files: overlapping commits ride the
	// same group-commit flush, so flushes <= commits.
	const workers, each = 8, 16
	grpC, grpSys, err := txnKernel(workers)
	if err != nil {
		return failf(id, title, "kernel: %v", err)
	}
	defer grpSys.Close()
	grpW := &countingWriter{delay: 200 * time.Microsecond}
	grpC.AttachJournal(grpW)
	var wg sync.WaitGroup
	var werr atomic.Value
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			file := fmt.Sprintf("f%d", i)
			for v := int64(0); v < each; v++ {
				tx := grpC.Txns().Begin()
				ctx := txn.NewContext(context.Background(), tx)
				if _, err := grpC.ExecCtx(ctx, insertInto(file, v)); err != nil {
					werr.Store(err)
					return
				}
				if err := grpC.Txns().Commit(tx); err != nil {
					werr.Store(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err, _ := werr.Load().(error); err != nil {
		return failf(id, title, "concurrent commit: %v", err)
	}
	commits := int(grpC.Txns().Stats().Commits)

	// Crash recovery: replaying the concurrent journal into a fresh kernel
	// restores exactly the committed statements.
	recC, recSys, err := txnKernel(workers)
	if err != nil {
		return failf(id, title, "kernel: %v", err)
	}
	defer recSys.Close()
	recovered, err := recC.RecoverJournal(bytes.NewReader(grpW.buf.Bytes()))
	if err != nil {
		return failf(id, title, "recover: %v", err)
	}

	ok := autoW.writes >= stmts && oneW.writes == 1 &&
		grpW.writes <= commits && recovered == workers*each
	body := fmt.Sprintf(
		"%-34s %-10s %s\n%-34s %-10d %d\n%-34s %-10d %d\n%-34s %-10d %d\n\n"+
			"group-commit flushes/commit: %.2f\n"+
			"recovery: %d/%d committed statements restored\n",
		"commit path", "commits", "journal flushes",
		fmt.Sprintf("auto-commit (%d stmts)", stmts), stmts, autoW.writes,
		fmt.Sprintf("one explicit txn (%d stmts)", stmts), 1, oneW.writes,
		fmt.Sprintf("concurrent (%dx%d txns)", workers, each), commits, grpW.writes,
		float64(grpW.writes)/float64(commits),
		recovered, workers*each)
	return report(id, title, ok, body)
}

// TxnContention is the mixed read/write contention workload behind the
// mldsbench -txn flag: sessions run multi-statement read-modify-write
// transactions through core ABDL sessions, each operation hitting one
// shared hot record with probability conflict and a session-private record
// otherwise. It reports commit throughput, abort rate, and deadlocks, and
// verifies serializability — the hot record's final balance must equal the
// committed hot increments (no lost updates).
func TxnContention(sessions, txnsPer, opsPer int, conflict float64) *Report {
	const id = "TXN"
	title := fmt.Sprintf("Transaction contention: %d sessions x %d txns x %d ops, %.0f%% conflict",
		sessions, txnsPer, opsPer, conflict*100)

	sys := core.NewSystem(core.Config{Kernel: mbds.DefaultConfig(2)})
	defer sys.Close()
	db, err := sys.CreateRelational("txnbench", "CREATE TABLE acct (owner INTEGER, bal INTEGER);")
	if err != nil {
		return failf(id, title, "create: %v", err)
	}
	if _, err := db.ExecABDL("INSERT (<FILE, acct>, <owner, -1>, <bal, 0>)"); err != nil {
		return failf(id, title, "seed hot record: %v", err)
	}
	for i := 0; i < sessions; i++ {
		if _, err := db.ExecABDL(fmt.Sprintf("INSERT (<FILE, acct>, <owner, %d>, <bal, 0>)", i)); err != nil {
			return failf(id, title, "seed session %d: %v", i, err)
		}
	}
	base := db.Ctrl.Txns().Stats()

	// bump reads owner's balance and writes back balance+1 inside the open
	// transaction.
	bump := func(sess *core.ABDLSession, owner int) error {
		out, err := sess.Execute(fmt.Sprintf("RETRIEVE ((FILE = acct) AND (owner = %d)) (bal)", owner))
		if err != nil {
			return err
		}
		if len(out.Kernel.Records) != 1 {
			return fmt.Errorf("owner %d: %d records", owner, len(out.Kernel.Records))
		}
		bal, _ := out.Kernel.Records[0].Rec.Get("bal")
		_, err = sess.Execute(fmt.Sprintf("UPDATE ((FILE = acct) AND (owner = %d)) (bal = %d)",
			owner, bal.AsInt()+1))
		return err
	}

	var hotCommitted atomic.Int64
	var wg sync.WaitGroup
	var werr atomic.Value
	start := time.Now()
	for i := 0; i < sessions; i++ {
		sess, err := sys.OpenABDL("txnbench")
		if err != nil {
			return failf(id, title, "open session %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int, sess *core.ABDLSession) {
			defer wg.Done()
			defer sess.Close()
			rng := rand.New(rand.NewSource(int64(i)))
			for t := 0; t < txnsPer; t++ {
				if err := sess.Begin(); err != nil {
					werr.Store(err)
					return
				}
				hot := 0
				aborted := false
				for o := 0; o < opsPer; o++ {
					owner := i
					if rng.Float64() < conflict {
						owner = -1
					}
					if err := bump(sess, owner); err != nil {
						var ae *txn.AbortedError
						if errors.As(err, &ae) {
							// Deadlock victim or lock timeout: the manager
							// already rolled the transaction back; the
							// workload moves on to its next transaction.
							aborted = true
							break
						}
						werr.Store(err)
						return
					}
					if owner == -1 {
						hot++
					}
				}
				if aborted {
					continue
				}
				if err := sess.Commit(); err != nil {
					werr.Store(err)
					return
				}
				hotCommitted.Add(int64(hot))
			}
		}(i, sess)
	}
	wg.Wait()
	wall := time.Since(start)
	if err, _ := werr.Load().(error); err != nil {
		return failf(id, title, "workload: %v", err)
	}

	stats := db.Ctrl.Txns().Stats()
	commits := stats.Commits - base.Commits
	aborts := stats.Aborts - base.Aborts
	deadlocks := stats.Deadlocks - base.Deadlocks
	out, err := db.ExecABDL("RETRIEVE ((FILE = acct) AND (owner = -1)) (bal)")
	if err != nil {
		return failf(id, title, "final read: %v", err)
	}
	finalHot, _ := out.Records[0].Rec.Get("bal")

	ok := commits > 0 && finalHot.AsInt() == hotCommitted.Load()
	body := fmt.Sprintf(
		"commits    %d (%.0f/sec)\naborts     %d (%.1f%% abort rate)\ndeadlocks  %d\n\n"+
			"hot record: %d committed increments, final balance %d (must match: no lost updates)\n",
		commits, float64(commits)/wall.Seconds(),
		aborts, 100*float64(aborts)/float64(commits+aborts),
		deadlocks,
		hotCommitted.Load(), finalHot.AsInt())
	return report(id, title, ok, body)
}
