package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/codasyl"
	"mlds/internal/dapkms"
	"mlds/internal/kc"
	"mlds/internal/kms"
	"mlds/internal/mbds"
	"mlds/internal/univgen"
	"mlds/internal/xform"
)

// session bundles a loaded University database with both interfaces.
type session struct {
	db   *univgen.Database
	sys  *mbds.System
	ctrl *kc.Controller
}

func newSession(cfg univgen.Config, backends int) (*session, error) {
	db, err := univgen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	sys, err := db.NewKernel(backends)
	if err != nil {
		return nil, err
	}
	if _, err := db.Load(sys); err != nil {
		sys.Close()
		return nil, err
	}
	ctrl := kc.New(sys)
	ctrl.SeedKeys(db.Instance.MaxKey())
	return &session{db: db, sys: sys, ctrl: ctrl}, nil
}

func (s *session) close() { s.sys.Close() }

func (s *session) dml() *kms.Translator {
	return kms.NewFunctional(s.db.Mapping, s.db.AB, s.ctrl)
}

func (s *session) daplex() *dapkms.Interface {
	return dapkms.New(s.db.Mapping, s.db.AB, s.ctrl)
}

// E5Translations regenerates the Chapter VI worked translations: each DML
// statement with the ABDL requests KMS generated for it.
func E5Translations() *Report {
	const id, title = "E5", "Chapter VI — CODASYL-DML statements and their ABDL translations"
	s, err := newSession(univgen.SmallConfig(), 2)
	if err != nil {
		return failf(id, title, "setup: %v", err)
	}
	defer s.close()
	tr := s.dml()
	var b strings.Builder
	ok := true
	run := func(line string, wantReq ...string) {
		st, err := codasyl.ParseStmt(line)
		if err != nil {
			ok = false
			fmt.Fprintf(&b, "%s\n  !! parse: %v\n", line, err)
			return
		}
		out, err := tr.Exec(st)
		fmt.Fprintf(&b, "%s\n", line)
		if err != nil {
			fmt.Fprintf(&b, "  !! aborted: %v\n", err)
		}
		if out != nil {
			for _, r := range out.Requests {
				fmt.Fprintf(&b, "  -> %s\n", r)
			}
			for _, w := range wantReq {
				if !outHas(out, w) {
					ok = false
					fmt.Fprintf(&b, "  MISSING EXPECTED: %s\n", w)
				}
			}
		}
	}
	// VI.B.1 FIND ANY — the thesis's 'Advanced Database' example.
	run("MOVE 'Advanced Database' TO title IN course")
	run("FIND ANY course USING title IN course",
		"RETRIEVE ((FILE = 'course') AND (title = 'Advanced Database')) (all attributes)")
	// VI.C GET.
	run("GET course")
	// VI.B.4 FIND FIRST over an ISA set.
	run("MOVE 'Student 0000' TO pname IN person")
	run("FIND ANY person USING pname IN person")
	run("FIND FIRST student WITHIN person_student", "(FILE = 'student')")
	// VI.B.5 FIND OWNER.
	run("FIND OWNER WITHIN advisor", "(FILE = 'faculty')")
	// VI.G STORE with duplicate check.
	run("MOVE 'Trans Course' TO title IN course")
	run("MOVE 'Fall' TO semester IN course")
	run("MOVE 3 TO credits IN course")
	run("STORE course", "RETRIEVE ((FILE = 'course') AND (title = 'Trans Course') AND (semester = 'Fall')) (course)", "INSERT (<FILE, 'course'>")
	// VI.F MODIFY.
	run("MOVE 4 TO credits IN course")
	run("MODIFY credits IN course", "UPDATE ((FILE = 'course') AND (course = ")
	// VI.H ERASE of the fresh course.
	run("ERASE course", "DELETE ((FILE = 'course') AND (course = ")
	r := report(id, title, ok, b.String())
	r.Sim = s.ctrl.SimTime()
	return r
}

func outHas(out *kms.Outcome, substr string) bool {
	for _, r := range out.Requests {
		if strings.Contains(r, substr) {
			return true
		}
	}
	return false
}

// scaleConfig returns the University configuration scaled for the MBDS
// sweeps.
func scaleConfig(scale int) univgen.Config {
	cfg := univgen.SmallConfig()
	cfg.Students *= 24 * scale
	cfg.Faculty *= 8 * scale
	cfg.Courses *= 8 * scale
	cfg.Staff *= 8 * scale
	return cfg
}

// sweepQuery is the broad retrieval both MBDS sweeps time.
var sweepQuery = abdl.NewRetrieve(abdm.And(
	abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("student")},
	abdm.Predicate{Attr: "major", Op: abdm.OpEq, Val: abdm.String("Computer Science")},
), "gpa")

// ResponseTime loads a University instance at the scale and measures the
// simulated response time of the sweep query on n backends.
func ResponseTime(n, scale int) (time.Duration, error) {
	s, err := newSession(scaleConfig(scale), n)
	if err != nil {
		return 0, err
	}
	defer s.close()
	_, rt, err := s.sys.ExecTimed(sweepQuery)
	return rt, err
}

// E6BackendsScaling regenerates MBDS claim 1: response time versus backend
// count at fixed database size.
func E6BackendsScaling() *Report {
	const id, title = "E6", "MBDS claim 1 — response time vs backends, fixed database"
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-14s %s\n", "backends", "response", "speedup")
	var base time.Duration
	ok := true
	var prev, sim time.Duration
	for _, n := range []int{1, 2, 4, 8} {
		rt, err := ResponseTime(n, 1)
		if err != nil {
			return failf(id, title, "sweep: %v", err)
		}
		sim += rt
		if n == 1 {
			base = rt
		} else if float64(rt) > 0.8*float64(prev) {
			ok = false // each doubling must cut at least 20%
		}
		prev = rt
		fmt.Fprintf(&b, "%-10d %-14v %.2fx\n", n, rt, float64(base)/float64(rt))
	}
	r := report(id, title, ok, b.String())
	r.Sim = sim
	return r
}

// E7CapacityGrowth regenerates MBDS claim 2: response-time invariance when
// the database grows proportionally with the backends.
func E7CapacityGrowth() *Report {
	const id, title = "E7", "MBDS claim 2 — response time with database ∝ backends"
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-10s %s\n", "backends", "scale", "response")
	var times []time.Duration
	var sim time.Duration
	for _, n := range []int{1, 2, 4, 8} {
		rt, err := ResponseTime(n, n)
		if err != nil {
			return failf(id, title, "sweep: %v", err)
		}
		times = append(times, rt)
		sim += rt
		fmt.Fprintf(&b, "%-10d %-10d %v\n", n, n, rt)
	}
	ok := true
	for _, rt := range times[1:] {
		ratio := float64(rt) / float64(times[0])
		if ratio > 1.2 || ratio < 0.8 {
			ok = false
		}
	}
	r := report(id, title, ok, b.String())
	r.Sim = sim
	return r
}

// E8CrossModel verifies the thesis goal: the same question answered by the
// Daplex interface and by translated CODASYL-DML returns identical entities.
func E8CrossModel() *Report {
	const id, title = "E8", "Cross-model equivalence — Daplex vs CODASYL-DML on one functional database"
	s, err := newSession(univgen.SmallConfig(), 2)
	if err != nil {
		return failf(id, title, "setup: %v", err)
	}
	defer s.close()

	rows, err := s.daplex().ExecText("FOR EACH student WHERE major = 'Computer Science' PRINT pname;")
	if err != nil {
		return failf(id, title, "daplex: %v", err)
	}
	var want []string
	for _, r := range rows {
		want = append(want, r.Values["pname"][0].AsString())
	}
	sort.Strings(want)

	tr := s.dml()
	var got []string
	step := func(line string) (*kms.Outcome, error) {
		st, err := codasyl.ParseStmt(line)
		if err != nil {
			return nil, err
		}
		return tr.Exec(st)
	}
	if _, err := step("FIND FIRST person WITHIN system_person"); err != nil {
		return failf(id, title, "dml: %v", err)
	}
	for {
		out, err := step("FIND FIRST student WITHIN person_student")
		if err != nil {
			return failf(id, title, "dml: %v", err)
		}
		if out.Found {
			g, err := step("GET major IN student")
			if err != nil {
				return failf(id, title, "dml: %v", err)
			}
			if g.Values["major"].AsString() == "Computer Science" {
				if _, err := step("FIND OWNER WITHIN person_student"); err != nil {
					return failf(id, title, "dml: %v", err)
				}
				n, err := step("GET pname IN person")
				if err != nil {
					return failf(id, title, "dml: %v", err)
				}
				got = append(got, n.Values["pname"].AsString())
			}
		}
		nxt, err := step("FIND NEXT person WITHIN system_person")
		if err != nil {
			return failf(id, title, "dml: %v", err)
		}
		if nxt.EndOfSet {
			break
		}
	}
	sort.Strings(got)
	ok := strings.Join(want, "|") == strings.Join(got, "|") && len(want) > 0
	body := fmt.Sprintf("daplex      : %v\ncodasyl-dml : %v\nequal       : %v\n", want, got, ok)
	return report(id, title, ok, body)
}

// E9SharedKernel verifies Figure 1.2's structure: multiple language
// interfaces over one kernel database system, updates mutually visible.
func E9SharedKernel() *Report {
	const id, title = "E9", "Shared kernel — updates cross language interfaces"
	s, err := newSession(univgen.SmallConfig(), 2)
	if err != nil {
		return failf(id, title, "setup: %v", err)
	}
	defer s.close()
	dap := s.daplex()
	tr := s.dml()
	if _, err := dap.ExecText("LET credits OF course WHERE title = 'Advanced Database' BE 9;"); err != nil {
		return failf(id, title, "let: %v", err)
	}
	for _, line := range []string{
		"MOVE 'Advanced Database' TO title IN course",
		"FIND ANY course USING title IN course",
	} {
		st, _ := codasyl.ParseStmt(line)
		if _, err := tr.Exec(st); err != nil {
			return failf(id, title, "dml: %v", err)
		}
	}
	st, _ := codasyl.ParseStmt("GET credits IN course")
	out, err := tr.Exec(st)
	if err != nil {
		return failf(id, title, "get: %v", err)
	}
	ok := out.Values["credits"].AsInt() == 9
	body := fmt.Sprintf("Daplex LET credits := 9; CODASYL-DML GET sees credits = %s\n", out.Values["credits"])
	return report(id, title, ok, body)
}

// AblationIndexVsScan compares the kernel's directory-indexed access path
// against forced full-file scans.
func AblationIndexVsScan() *Report {
	const id, title = "A1", "Ablation — directory indexes vs full scans"
	timeFor := func(noIndex bool) (time.Duration, int, error) {
		db, err := univgen.Generate(scaleConfig(2))
		if err != nil {
			return 0, 0, err
		}
		cfg := mbds.DefaultConfig(2)
		cfg.NoIndexes = noIndex
		sys, err := mbds.New(db.AB.Dir, cfg)
		if err != nil {
			return 0, 0, err
		}
		defer sys.Close()
		if _, err := db.Load(sys); err != nil {
			return 0, 0, err
		}
		res, rt, err := sys.ExecTimed(sweepQuery)
		if err != nil {
			return 0, 0, err
		}
		return rt, res.Cost.RecordsExam, nil
	}
	idxT, idxExam, err := timeFor(false)
	if err != nil {
		return failf(id, title, "%v", err)
	}
	scanT, scanExam, err := timeFor(true)
	if err != nil {
		return failf(id, title, "%v", err)
	}
	ok := idxExam < scanExam
	body := fmt.Sprintf("%-10s %-14s %s\n%-10s %-14v %d\n%-10s %-14v %d\n",
		"path", "response", "records examined",
		"indexed", idxT, idxExam,
		"scan", scanT, scanExam)
	r := report(id, title, ok, body)
	r.Sim = idxT + scanT
	return r
}

// AblationParallelVsSerial compares parallel broadcast against serial
// dispatch to the backends.
func AblationParallelVsSerial() *Report {
	const id, title = "A2", "Ablation — parallel vs serial backend dispatch"
	wall := func(serial bool) (time.Duration, error) {
		db, err := univgen.Generate(scaleConfig(2))
		if err != nil {
			return 0, err
		}
		cfg := mbds.DefaultConfig(4)
		cfg.Serial = serial
		sys, err := mbds.New(db.AB.Dir, cfg)
		if err != nil {
			return 0, err
		}
		defer sys.Close()
		if _, err := db.Load(sys); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < 200; i++ {
			if _, err := sys.Exec(sweepQuery); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	par, err := wall(false)
	if err != nil {
		return failf(id, title, "%v", err)
	}
	ser, err := wall(true)
	if err != nil {
		return failf(id, title, "%v", err)
	}
	body := fmt.Sprintf("parallel broadcast: %v for 200 requests\nserial dispatch   : %v for 200 requests\n", par, ser)
	return report(id, title, true, body)
}

// AblationDirectVsPreprocess compares the thesis's chosen strategy (the
// direct language interface: one-step in-memory schema transformation)
// against high-level preprocessing (a two-step pipeline through the textual
// network DDL, as a CODASYL-DML-to-Daplex preprocessor would require).
func AblationDirectVsPreprocess() *Report {
	const id, title = "A3", "Ablation — direct language interface vs high-level preprocessing"
	fun := mustUniv()
	const iters = 200

	start := time.Now()
	for i := 0; i < iters; i++ {
		m, err := xform.FunToNet(fun)
		if err != nil {
			return failf(id, title, "direct: %v", err)
		}
		if _, err := xform.DeriveAB(m); err != nil {
			return failf(id, title, "direct: %v", err)
		}
	}
	direct := time.Since(start)

	start = time.Now()
	for i := 0; i < iters; i++ {
		m, err := xform.FunToNet(fun)
		if err != nil {
			return failf(id, title, "preprocess: %v", err)
		}
		// The two-step path externalises the intermediate schema as DDL text
		// and re-derives the kernel schema from the reparsed result.
		net, err := reparse(m.Net.DDL())
		if err != nil {
			return failf(id, title, "preprocess: %v", err)
		}
		if _, err := xform.DeriveABNative(net); err != nil {
			return failf(id, title, "preprocess: %v", err)
		}
	}
	pre := time.Since(start)
	ok := direct < pre
	body := fmt.Sprintf("direct (one-step)        : %v for %d transformations\npreprocess (two-step DDL): %v for %d transformations\n", direct, iters, pre, iters)
	return report(id, title, ok, body)
}
