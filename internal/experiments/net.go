package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mlds/client"
	"mlds/internal/core"
	"mlds/internal/mbds"
	"mlds/internal/server"
	"mlds/internal/univ"
)

// E16NetServing measures the network serving tier: one mldsserver front end
// multiplexing at least a thousand concurrent remote sessions — spread over
// a handful of TCP connections and all five language interfaces — with zero
// failed requests. Every session is opened before any statement runs, so
// the peak session count is truly concurrent, then each session executes a
// short read-heavy script (every tenth one inside an explicit read-only
// snapshot transaction) and closes. Latencies are measured at the client,
// so they include the wire round trip.
//
// sessions <= 0 runs the default 1000.
func E16NetServing(sessions int) *Report {
	const id, title = "E16", "Network serving tier — multiplexed remote sessions"
	if sessions <= 0 {
		sessions = 1000
	}
	var b strings.Builder
	fail := func(format string, args ...any) *Report {
		fmt.Fprintf(&b, format+"\n", args...)
		return report(id, title, false, b.String())
	}

	sys := core.NewSystem(core.Config{Kernel: mbds.DefaultConfig(2)})
	defer sys.Close()
	if err := seedServingDBs(sys); err != nil {
		return fail("seed: %v", err)
	}
	srv, err := server.Listen("127.0.0.1:0", sys, server.Config{})
	if err != nil {
		return fail("listen: %v", err)
	}
	defer srv.Close()

	const conns = 8
	ctx := context.Background()
	clients := make([]*client.Client, conns)
	for i := range clients {
		if clients[i], err = client.Dial(ctx, srv.Addr()); err != nil {
			return fail("dial: %v", err)
		}
		defer clients[i].Close()
	}

	// The five language scripts, all read-only against the seeded data. The
	// CODASYL MOVE only writes the session's working area.
	scripts := []struct {
		db, lang string
		stmts    []string
	}{
		{"university", "daplex", []string{"FOR EACH department PRINT dname;"}},
		{"university", "dml", []string{
			"MOVE 'History' TO dname IN department",
			"FIND ANY department USING dname IN department",
			"GET dname IN department",
		}},
		{"shop", "sql", []string{"SELECT COUNT(*) FROM emp"}},
		{"school", "dli", []string{"GU dept (dname = 'CS')"}},
		{"university", "abdl", []string{"RETRIEVE ((FILE = department)) (dname)"}},
	}

	// Phase 1: open every session, so the server holds `sessions` live
	// multiplexed sessions at once.
	type task struct {
		sess  *client.Session
		stmts []string
		txn   bool
	}
	tasks := make([]task, sessions)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []string
	)
	note := func(format string, args ...any) {
		mu.Lock()
		if len(failures) < 8 {
			failures = append(failures, fmt.Sprintf(format, args...))
		} else if len(failures) == 8 {
			failures = append(failures, "...")
		}
		mu.Unlock()
	}
	for i := range tasks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := scripts[i%len(scripts)]
			sess, err := clients[i%conns].Open(ctx, sc.db, sc.lang)
			if err != nil {
				note("open %s/%s: %v", sc.db, sc.lang, err)
				return
			}
			tasks[i] = task{sess: sess, stmts: sc.stmts, txn: i%10 == 0}
		}(i)
	}
	wg.Wait()
	if len(failures) > 0 {
		return fail("session opens failed: %s", strings.Join(failures, "; "))
	}
	peak := srv.Sessions()

	// Phase 2: every session runs its script concurrently.
	latencies := make([][]time.Duration, sessions)
	start := time.Now()
	for i := range tasks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk := tasks[i]
			run := func(stmt string) bool {
				t0 := time.Now()
				if _, err := tk.sess.ExecuteCtx(ctx, stmt); err != nil {
					note("%s: %v", stmt, err)
					return false
				}
				latencies[i] = append(latencies[i], time.Since(t0))
				return true
			}
			if tk.txn {
				if err := tk.sess.BeginSnapshot(); err != nil {
					note("begin: %v", err)
					return
				}
			}
			for _, stmt := range tk.stmts {
				if !run(stmt) {
					return
				}
			}
			if tk.txn {
				if err := tk.sess.Commit(); err != nil {
					note("commit: %v", err)
					return
				}
			}
			if err := tk.sess.Close(); err != nil {
				note("close: %v", err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	cores := runtime.NumCPU()
	ok := len(failures) == 0 && peak >= sessions && srv.Sessions() == 0
	fmt.Fprintf(&b, "concurrent sessions    %d (peak live %d) over %d connections\n", sessions, peak, conns)
	fmt.Fprintf(&b, "languages              daplex, codasyl-dml, sql, dli, abdl\n")
	fmt.Fprintf(&b, "statements executed    %d, failed %d\n", len(all), len(failures))
	fmt.Fprintf(&b, "latency p50 / p99      %.2f ms / %.2f ms (client-measured)\n",
		float64(pct(0.50).Microseconds())/1000, float64(pct(0.99).Microseconds())/1000)
	fmt.Fprintf(&b, "wall for all scripts   %v\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "sessions per core      %.0f (%d cores)\n", float64(sessions)/float64(cores), cores)
	if len(failures) > 0 {
		fmt.Fprintf(&b, "failures: %s\n", strings.Join(failures, "; "))
	}
	if srv.Sessions() != 0 {
		fmt.Fprintf(&b, "sessions leaked: %d still live\n", srv.Sessions())
	}
	return report(id, title, ok, b.String())
}

// seedServingDBs creates the three databases the serving-tier workloads
// read: the functional University, a relational shop, a hierarchical school.
func seedServingDBs(sys *core.System) error {
	if _, err := sys.CreateFunctional("university", univ.SchemaDDL); err != nil {
		return err
	}
	dap, err := sys.Open("university", "daplex")
	if err != nil {
		return err
	}
	if _, err := dap.Execute("CREATE department (dname := 'History', building := 'Hall H');"); err != nil {
		return err
	}
	if err := dap.Close(); err != nil {
		return err
	}
	if _, err := sys.CreateRelational("shop",
		"CREATE TABLE emp (ename CHAR(20) NOT NULL, pay INTEGER);"); err != nil {
		return err
	}
	sq, err := sys.Open("shop", "sql")
	if err != nil {
		return err
	}
	if _, err := sq.Execute("INSERT INTO emp (ename, pay) VALUES ('Ann', 900)"); err != nil {
		return err
	}
	if err := sq.Close(); err != nil {
		return err
	}
	if _, err := sys.CreateHierarchical("school",
		"DBD NAME IS school\nSEGMENT NAME IS dept\n    FIELD dname CHAR 20\n"); err != nil {
		return err
	}
	dl, err := sys.Open("school", "dli")
	if err != nil {
		return err
	}
	if _, err := dl.Execute("ISRT dept (dname = 'CS')"); err != nil {
		return err
	}
	return dl.Close()
}
