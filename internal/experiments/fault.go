package experiments

import (
	"fmt"
	"strings"
	"time"

	"mlds/internal/mbds"
	"mlds/internal/univgen"
)

// E11FaultTolerance demonstrates degraded-mode reads: with one replica per
// record, a backend forced down mid-workload leaves retrieval results
// identical to the healthy run, the controller's health view reports the
// backend down, and the recovery probe brings it back.
func E11FaultTolerance() *Report {
	const id, title = "E11", "Fault tolerance — degraded reads with a backend down, Replicas=1"
	const backends = 4

	db, err := univgen.Generate(scaleConfig(1))
	if err != nil {
		return failf(id, title, "generate: %v", err)
	}
	cfg := mbds.DefaultConfig(backends)
	cfg.FaultInjection = true
	cfg.Replicas = 1
	cfg.RequestTimeout = 100 * time.Millisecond
	cfg.MaxRetries = 1
	cfg.RetryBackoff = time.Millisecond
	cfg.BreakerThreshold = 2
	cfg.ProbePeriod = 5 * time.Millisecond
	sys, err := mbds.New(db.AB.Dir, cfg)
	if err != nil {
		return failf(id, title, "kernel: %v", err)
	}
	defer sys.Close()
	if _, err := db.Load(sys); err != nil {
		return failf(id, title, "load: %v", err)
	}

	count := func() (int, error) {
		res, err := sys.Exec(sweepQuery)
		if err != nil {
			return 0, err
		}
		return len(res.Records), nil
	}
	healthLine := func(label string) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%s:\n", label)
		for _, h := range sys.Health() {
			fmt.Fprintf(&b, "  %s\n", h)
		}
		return b.String()
	}

	healthy, err := count()
	if err != nil {
		return failf(id, title, "healthy retrieve: %v", err)
	}

	// Kill one backend mid-workload and read through the failure.
	const victim = 2
	sys.Fault(victim).Fail(true)
	degraded, err := count()
	if err != nil {
		return failf(id, title, "degraded retrieve: %v", err)
	}
	down := !sys.Health()[victim].Up
	downView := healthLine("health with backend 2 killed")

	// Clear the fault; the next requests probe the backend back up.
	sys.Fault(victim).SetPlan(nil)
	recovered := false
	for i := 0; i < 200 && !recovered; i++ {
		time.Sleep(2 * time.Millisecond)
		if _, err := count(); err != nil {
			return failf(id, title, "probe retrieve: %v", err)
		}
		recovered = sys.Health()[victim].Up
	}
	final, err := count()
	if err != nil {
		return failf(id, title, "recovered retrieve: %v", err)
	}

	ok := healthy > 0 && degraded == healthy && final == healthy && down && recovered
	body := fmt.Sprintf(
		"healthy run       : %d records\nbackend 2 killed  : %d records (identical: %v)\nafter recovery    : %d records\nbreaker opened    : %v\nprobe recovered   : %v\n%s%s",
		healthy, degraded, degraded == healthy, final, down, recovered,
		downView, healthLine("health after recovery"))
	return report(id, title, ok, body)
}
