package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

// E15ElasticScaling extends E6's scaling claim to a live fleet: instead of
// constructing a fresh system per backend count, ONE system under a live
// write workload grows from two to four backends (AddBackend + Rebalance),
// is probed, and is drained back down — with zero failed requests and the
// writer's records intact throughout. The probe response times must trace
// E6's curve: the doubling cuts simulated response by at least 20%, and the
// drain restores the two-backend figure.
func E15ElasticScaling() *Report {
	const id, title = "E15", "Elastic membership — E6's scaling curve on one live fleet"
	s, err := newSession(scaleConfig(1), 2)
	if err != nil {
		return failf(id, title, "setup: %v", err)
	}
	defer s.close()

	probe := func() (time.Duration, error) {
		_, rt, err := s.sys.ExecTimed(sweepQuery)
		return rt, err
	}

	// The live writer: a stream of new course records, keyed past the loaded
	// instance so surrogate keys stay unique. It runs across every join,
	// migration, and drain; one failed insert fails the experiment.
	courseKey := s.db.AB.KeyOf("course")
	tmpl, _ := s.db.AB.Dir.FileTemplate("course")
	nextKey := int64(s.db.Instance.MaxKey()) + 1
	var (
		wg       sync.WaitGroup
		inserted atomic.Int64
		failures atomic.Int64
	)
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rec := abdm.NewRecord("course")
			rec.Set(courseKey, abdm.Int(nextKey))
			nextKey++
			for _, attr := range tmpl {
				if rec.Has(attr) {
					continue
				}
				switch attr {
				case "title":
					rec.Set(attr, abdm.String(fmt.Sprintf("Elastic Course %05d", i)))
				case "semester":
					rec.Set(attr, abdm.String("Elastic"))
				case "credits":
					rec.Set(attr, abdm.Int(3))
				default:
					rec.Set(attr, abdm.Null())
				}
			}
			if _, err := s.sys.Exec(abdl.NewInsert(rec)); err != nil {
				failures.Add(1)
				return
			}
			inserted.Add(1)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-10s %s\n", "fleet", "backends", "response")
	var sim time.Duration
	rt2, err := probe()
	if err != nil {
		return failf(id, title, "probe: %v", err)
	}
	sim += rt2
	fmt.Fprintf(&b, "%-22s %-10d %v\n", "initial", s.sys.Backends(), rt2)

	for i := 0; i < 2; i++ {
		pos, err := s.sys.AddBackend()
		if err != nil {
			return failf(id, title, "add: %v", err)
		}
		if err := s.sys.Rebalance(pos); err != nil {
			return failf(id, title, "rebalance: %v", err)
		}
	}
	rt4, err := probe()
	if err != nil {
		return failf(id, title, "probe: %v", err)
	}
	sim += rt4
	fmt.Fprintf(&b, "%-22s %-10d %v\n", "grown (add+rebalance)", s.sys.Backends(), rt4)

	if err := s.sys.DrainBackend(3); err != nil {
		return failf(id, title, "drain: %v", err)
	}
	if err := s.sys.DrainBackend(2); err != nil {
		return failf(id, title, "drain: %v", err)
	}
	rtBack, err := probe()
	if err != nil {
		return failf(id, title, "probe: %v", err)
	}
	sim += rtBack
	fmt.Fprintf(&b, "%-22s %-10d %v\n", "drained back", s.sys.Backends(), rtBack)

	close(stop)
	wg.Wait()

	// The writer's records survived the churn, each exactly once.
	res, err := s.sys.Exec(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")},
		abdm.Predicate{Attr: "semester", Op: abdm.OpEq, Val: abdm.String("Elastic")},
	), "title"))
	if err != nil {
		return failf(id, title, "final read: %v", err)
	}
	st := s.sys.MigrationStats()
	fmt.Fprintf(&b, "live writer: %d inserts, %d failures, %d found after churn\n",
		inserted.Load(), failures.Load(), len(res.Records))
	fmt.Fprintf(&b, "migration  : %d keys, %d bytes, %d catch-up entries, epoch %d\n",
		st.Keys, st.Bytes, st.CatchupEntries, st.Epoch)

	ok := failures.Load() == 0 &&
		int64(len(res.Records)) == inserted.Load() &&
		float64(rt4) <= 0.8*float64(rt2) && // the doubling pays, as in E6
		float64(rtBack) <= 1.2*float64(rt2) && // and the drain gives it back
		float64(rtBack) >= 0.8*float64(rt2)
	r := report(id, title, ok, b.String())
	r.Sim = sim
	return r
}
