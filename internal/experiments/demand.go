package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/kc"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
	"mlds/internal/obs"
	"mlds/internal/pager"
)

// E19 regenerates the demand-paging claim: a database several times the
// buffer pool's size serves exact point reads and full scans straight off
// the page file, with the record bodies materialised in RAM bounded by the
// pool — not by the dataset. Two paged partitions share one journal and
// checkpoint through the coordinated fleet barrier; the reopened (cold)
// system restores its access structures from the persisted index image
// without scanning the heap.
const (
	e19Records   = 8000
	e19PoolPages = 48 // per partition
	e19PageSize  = 1024
	e19Batch     = 250
	e19Backends  = 2
)

// e19Engine is a two-partition paged fleet behind one controller and one
// rotatable journal, with metrics on so the memory gauges are observable.
type e19Engine struct {
	ctl    *kc.Controller
	sys    *mbds.System
	stores []*kdb.Store
	jf     *kc.JournalFile
	reg    *obs.Registry
}

func e19Dir() (*abdm.Directory, error) {
	d := abdm.NewDirectory()
	if err := d.DefineAttr("x", abdm.KindInt); err != nil {
		return nil, err
	}
	if err := d.DefineAttr("payload", abdm.KindString); err != nil {
		return nil, err
	}
	if err := d.DefineFile("f", []string{"x", "payload"}); err != nil {
		return nil, err
	}
	return d, nil
}

// openE19 builds the fleet over dir/part{0,1}.pgf and dir/journal.gob. On
// first use the page files are created; otherwise the fleet recovers — every
// partition mounts at the common cut and the shared journal tail replays
// once.
func openE19(dir string) (*e19Engine, int, error) {
	journalPath := filepath.Join(dir, "journal.gob")
	paths := make([]string, e19Backends)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("part%d.pgf", i))
	}
	d, err := e19Dir()
	if err != nil {
		return nil, 0, err
	}

	_, statErr := os.Stat(paths[0])
	existing := statErr == nil
	var cut uint64
	if existing {
		if cut, err = kc.FleetCut(paths); err != nil {
			return nil, 0, err
		}
	}
	metas := make([]pager.Meta, e19Backends)
	reg := obs.NewRegistry()
	cfg := mbds.DefaultConfig(e19Backends)
	cfg.Metrics, cfg.DBName = reg, "e19"
	cfg.StoreOpener = func(pos int, dd *abdm.Directory, opts []kdb.Option) (*kdb.Store, error) {
		opts = append(opts, kdb.WithPoolPages(e19PoolPages), kdb.WithPageSize(e19PageSize))
		if existing {
			st, m, err := kdb.OpenBackedAt(paths[pos], dd, cut, opts...)
			metas[pos] = m
			return st, err
		}
		return kdb.CreateBacked(paths[pos], dd, opts...)
	}
	sys, err := mbds.New(d, cfg)
	if err != nil {
		return nil, 0, err
	}
	e := &e19Engine{sys: sys, ctl: kc.New(sys), reg: reg}
	for i := 0; i < e19Backends; i++ {
		e.stores = append(e.stores, sys.Store(i))
	}

	replayed := 0
	if existing {
		var maxID uint64
		for _, m := range metas {
			if m.NextID > maxID {
				maxID = m.NextID
			}
		}
		sys.SeedIDs(maxID)
		f, err := os.Open(journalPath)
		if err != nil {
			e.close()
			return nil, 0, err
		}
		replayed, err = e.ctl.RecoverFleet(f, cut, metas...)
		f.Close()
		if err != nil {
			e.close()
			return nil, 0, err
		}
	}

	jf, err := kc.OpenJournalFile(journalPath)
	if err != nil {
		e.close()
		return nil, 0, err
	}
	if existing {
		// Attaching truncates the journal to what the images cover, so a
		// recovered fleet checkpoints (at the barrier) first.
		if _, err := e.ctl.CheckpointFleet(e.stores); err != nil {
			e.close()
			return nil, 0, err
		}
	}
	if err := e.ctl.AttachJournalFile(jf); err != nil {
		e.close()
		return nil, 0, err
	}
	e.jf = jf
	return e, replayed, nil
}

// crash abandons the fleet: page files keep their last committed
// generations, the journal its flushed entries.
func (e *e19Engine) crash() {
	e.sys.Close()
	for _, st := range e.stores {
		st.CloseBacking()
	}
	if e.jf != nil {
		e.jf.Close()
	}
}

func (e *e19Engine) close() { e.crash() }

func (e *e19Engine) load(n int) error {
	payload := strings.Repeat("p", 64)
	for off := 0; off < n; off += e19Batch {
		end := min(off+e19Batch, n)
		reqs := make([]*abdl.Request, 0, end-off)
		for i := off; i < end; i++ {
			reqs = append(reqs, abdl.NewInsert(abdm.NewRecord("f",
				abdm.Keyword{Attr: "x", Val: abdm.Int(int64(i))},
				abdm.Keyword{Attr: "payload", Val: abdm.String(payload)})))
		}
		if _, err := e.ctl.ExecBatch(reqs); err != nil {
			return fmt.Errorf("load records %d..%d: %w", off, end-1, err)
		}
	}
	return nil
}

func (e *e19Engine) count() (int, time.Duration, error) {
	res, rt, err := e.sys.ExecTimed(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("f")}), "x"))
	if err != nil {
		return 0, 0, err
	}
	return len(res.Records), rt, nil
}

// gaugeValues collects every series of one metric family from the registry's
// Prometheus exposition — one value per labelled backend.
func gaugeValues(reg *obs.Registry, name string) []float64 {
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		return nil
	}
	var out []float64
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, name) || !strings.HasPrefix(line[len(name):], "{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			out = append(out, v)
		}
	}
	return out
}

// E19DemandPaging regenerates the larger-than-RAM serving claim:
//
//  1. A dataset whose heap is at least 4x the buffer pool per partition is
//     bulk-loaded, fleet-checkpointed at one barrier position, and reopened
//     cold. The cold open restores membership and indexes from the persisted
//     image in a fraction of the heap's pages — no full scan.
//  2. Cold point reads and a cold full scan are exact, served by demand
//     paging: the pool misses and evicts, pool residency stays at its cap,
//     and the store's resident-record gauge stays bounded by the pool — RAM
//     is bounded by pool frames, not dataset size.
func E19DemandPaging() *Report {
	const id, title = "E19", "Demand paging — larger-than-RAM database served off the page file"
	var b strings.Builder
	ok := true

	dir, err := os.MkdirTemp("", "mlds-e19-")
	if err != nil {
		return failf(id, title, "tempdir: %v", err)
	}
	defer os.RemoveAll(dir)

	eng, _, err := openE19(dir)
	if err != nil {
		return failf(id, title, "create: %v", err)
	}
	if err := eng.load(e19Records); err != nil {
		eng.close()
		return failf(id, title, "bulk load: %v", err)
	}
	if _, err := eng.ctl.CheckpointFleet(eng.stores); err != nil {
		eng.close()
		return failf(id, title, "fleet checkpoint: %v", err)
	}
	eng.crash()

	// Cold restart: everything now comes off the page files.
	eng2, replayed, err := openE19(dir)
	if err != nil {
		return failf(id, title, "cold open: %v", err)
	}
	defer eng2.close()
	var openMisses, heapPages uint64
	for i, st := range eng2.stores {
		stats, pages, backed := st.BackingStats()
		if !backed {
			eng2.close()
			return failf(id, title, "partition %d not backed", i)
		}
		openMisses += stats.Misses
		heapPages += uint64(pages)
		if pages < 4*e19PoolPages {
			ok = false // dataset must dwarf the pool
		}
	}
	fmt.Fprintf(&b, "dataset   : %d records, %d heap pages over %d partitions (pool %d frames each, %.1fx)\n",
		e19Records, heapPages, e19Backends, e19PoolPages,
		float64(heapPages)/float64(e19Backends*e19PoolPages))
	fmt.Fprintf(&b, "cold open : %d page reads to restore access structures (replayed %d journal entries)\n",
		openMisses, replayed)
	if openMisses >= heapPages/2 {
		ok = false // image-based open must beat rescanning the heap
	}

	// Cold point reads through the persisted index.
	exactPoints := true
	for _, x := range []int64{0, e19Records / 2, e19Records - 1} {
		r, _, err := eng2.sys.ExecTimed(abdl.NewRetrieve(abdm.And(
			abdm.Predicate{Attr: "x", Op: abdm.OpEq, Val: abdm.Int(x)}), "x"))
		if err != nil || len(r.Records) != 1 {
			exactPoints = false
		}
	}
	fmt.Fprintf(&b, "point read: 3 cold keyed lookups, exact=%v\n", exactPoints)
	if !exactPoints {
		ok = false
	}

	// Cold full scan: every record pages through the pool exactly once per
	// frame residency; none of them stays materialised in RAM.
	got, scanSim, err := eng2.count()
	if err != nil {
		return failf(id, title, "cold scan: %v", err)
	}
	var scanMisses, scanEvictions, poolResident uint64
	for _, st := range eng2.stores {
		stats, _, _ := st.BackingStats()
		scanMisses += stats.Misses
		scanEvictions += stats.Evictions
		poolResident += uint64(stats.Resident)
	}
	fmt.Fprintf(&b, "cold scan : %d records (want %d), simulated %v; %d pool misses, %d evictions\n",
		got, e19Records, scanSim, scanMisses, scanEvictions)
	if got != e19Records || scanEvictions == 0 {
		ok = false
	}

	// The memory bound, read off the gauges the serving tier exports.
	residents := gaugeValues(eng2.reg, "mlds_backing_resident_records")
	poolGauges := gaugeValues(eng2.reg, "mlds_backing_pool_pages")
	if len(residents) != e19Backends || len(poolGauges) != e19Backends {
		ok = false
	}
	for _, v := range residents {
		if v > e19PoolPages {
			ok = false // resident bodies must be bounded by the pool, not the dataset
		}
	}
	for _, v := range poolGauges {
		if v > e19PoolPages {
			ok = false // the pool must never exceed its configured frame cap
		}
	}
	fmt.Fprintf(&b, "gauges    : resident records %v, pool pages %v (cap %d/partition, dataset %d)\n",
		residents, poolGauges, e19PoolPages, e19Records)

	r := report(id, title, ok, b.String())
	r.Sim = scanSim
	return r
}
