package experiments

import (
	"fmt"
	"strings"

	"mlds/internal/core"
	"mlds/internal/mbds"
	"mlds/internal/univ"
)

// E10FiveInterfaces regenerates Figure 1.2: one MLDS serving all five data
// models via their model-based data languages — hierarchical/DL-I,
// relational/SQL, network/CODASYL-DML, functional/Daplex, and the
// attribute-based kernel language.
func E10FiveInterfaces() *Report {
	const id, title = "E10", "Figure 1.2 — five language interfaces over one MLDS"
	sys := core.NewSystem(core.Config{Kernel: mbds.DefaultConfig(2)})
	defer sys.Close()
	var b strings.Builder
	ok := true
	check := func(label string, err error) bool {
		if err != nil {
			ok = false
			fmt.Fprintf(&b, "%-22s FAILED: %v\n", label, err)
			return false
		}
		return true
	}

	// Functional / Daplex.
	fdb, err := sys.CreateFunctional("university", univ.SchemaDDL)
	if !check("create functional", err) {
		return report(id, title, false, b.String())
	}
	dap, _ := sys.OpenDaplex("university")
	if _, err := dap.Execute("CREATE department (dname := 'History', building := 'Hall H');"); check("daplex CREATE", err) {
		rows, err := dap.Execute("FOR EACH department PRINT dname;")
		if check("daplex FOR EACH", err) {
			fmt.Fprintf(&b, "%-22s %d departments via Daplex\n", "functional/Daplex", len(rows.Rows))
		}
	}

	// Network / CODASYL-DML on the same functional database.
	dml, _ := sys.OpenDML("university")
	for _, stmt := range []string{
		"MOVE 'History' TO dname IN department",
		"FIND ANY department USING dname IN department",
		"GET dname IN department",
	} {
		out, err := dml.Execute(stmt)
		if !check("codasyl "+stmt, err) {
			break
		}
		if v, okv := out.DML.Values["dname"]; okv {
			fmt.Fprintf(&b, "%-22s GET dname = %s (on the functional database)\n", "network/CODASYL-DML", v)
		}
	}

	// Relational / SQL.
	_, err = sys.CreateRelational("shop", "CREATE TABLE emp (ename CHAR(20) NOT NULL, pay INTEGER);")
	if check("create relational", err) {
		sq, _ := sys.OpenSQL("shop")
		_, err = sq.Execute("INSERT INTO emp (ename, pay) VALUES ('Ann', 900)")
		if check("sql INSERT", err) {
			rs, err := sq.Execute("SELECT COUNT(*) FROM emp")
			if check("sql SELECT", err) {
				fmt.Fprintf(&b, "%-22s COUNT(*) = %s\n", "relational/SQL", rs.SQL.Rows[0][0])
			}
		}
	}

	// Hierarchical / DL-I.
	_, err = sys.CreateHierarchical("school", "DBD NAME IS school\nSEGMENT NAME IS dept\n    FIELD dname CHAR 20\nSEGMENT NAME IS course PARENT IS dept\n    FIELD ctitle CHAR 30\n")
	if check("create hierarchical", err) {
		dl, _ := sys.OpenDLI("school")
		for _, call := range []string{
			"ISRT dept (dname = 'CS')",
			"ISRT course (ctitle = 'DB')",
		} {
			if _, err := dl.Execute(call); !check("dli "+call, err) {
				break
			}
		}
		out, err := dl.Execute("GU dept (dname = 'CS') course (ctitle = 'DB')")
		if check("dli GU", err) {
			if out.DLI.Status != "" {
				ok = false
				fmt.Fprintf(&b, "dli GU status %q\n", out.DLI.Status)
			} else {
				fmt.Fprintf(&b, "%-22s GU course ctitle = %s\n", "hierarchical/DL-I", out.DLI.Values["ctitle"])
			}
		}
	}

	// Attribute-based / ABDL: the kernel language, direct.
	res, err := fdb.ExecABDL("RETRIEVE ((FILE = department)) (COUNT(dname))")
	if check("abdl RETRIEVE", err) {
		fmt.Fprintf(&b, "%-22s COUNT(dname) = %s\n", "attribute-based/ABDL", res.Groups[0].Aggs[0].Val)
	}
	return report(id, title, ok, b.String())
}
