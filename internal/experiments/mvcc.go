package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/txn"
)

// E14SnapshotScaling is the fixed-shape E14 run used by `mldsbench` and the
// test suite; mldsbench -readers/-writers runs E14ReaderWriter directly at
// the requested scale.
func E14SnapshotScaling() *Report { return E14ReaderWriter(4, 2) }

// E14ReaderWriter measures read-only throughput under a concurrent
// read-modify-write load, twice: once with readers as ordinary locking
// transactions (they queue behind the writers' exclusive locks and join
// their deadlock cycles) and once as MVCC snapshot transactions (they skip
// the lock table and read committed versions). The claim under test is the
// multiversion one: snapshot readers complete more read-only transactions
// under the same write load, with zero consistency anomalies — every read
// transaction in either mode must observe all counters equal, the committed
// prefix of the writers' uniform increments.
func E14ReaderWriter(readers, writers int) *Report {
	const id = "E14"
	title := fmt.Sprintf("Snapshot reads: %d readers x %d writers, locked vs MVCC", readers, writers)
	const files = 4
	const writerRounds = 20

	type mixResult struct {
		reads     int64 // completed read-only transactions
		anomalies int64 // read transactions that saw a torn (non-prefix) state
		wall      time.Duration
	}

	// run drives the mix once. Writers increment every counter file per
	// transaction, in random lock order, retrying when chosen as deadlock
	// victims; readers loop until the writers finish.
	run := func(snapshot bool) (mixResult, error) {
		c, sys, err := txnKernel(files)
		if err != nil {
			return mixResult{}, err
		}
		defer sys.Close()
		readAll := func(ctx context.Context) ([]int64, error) {
			vals := make([]int64, files)
			for i := range vals {
				res, err := c.ExecCtx(ctx, abdl.NewRetrieve(abdm.And(abdm.Predicate{
					Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(fmt.Sprintf("f%d", i))}), "x"))
				if err != nil {
					return nil, err
				}
				if len(res.Records) != 1 {
					return nil, fmt.Errorf("file f%d: %d records", i, len(res.Records))
				}
				v, _ := res.Records[0].Rec.Get("x")
				vals[i] = v.AsInt()
			}
			return vals, nil
		}
		for i := 0; i < files; i++ {
			if _, err := c.Exec(insertInto(fmt.Sprintf("f%d", i), 0)); err != nil {
				return mixResult{}, err
			}
		}

		var res mixResult
		var done atomic.Bool
		var werr atomic.Value
		var wgR, wgW sync.WaitGroup
		start := time.Now()
		for r := 0; r < readers; r++ {
			wgR.Add(1)
			go func(seed int64) {
				defer wgR.Done()
				for !done.Load() {
					var tx *txn.Txn
					if snapshot {
						tx = c.Txns().BeginSnapshot()
					} else {
						tx = c.Txns().Begin()
					}
					vals, err := readAll(txn.NewContext(context.Background(), tx))
					if err != nil {
						var ae *txn.AbortedError
						if errors.As(err, &ae) {
							continue // deadlock victim: the locking mode's cost
						}
						werr.Store(err)
						return
					}
					if err := c.Txns().Commit(tx); err != nil {
						werr.Store(err)
						return
					}
					for _, v := range vals {
						if v != vals[0] {
							atomic.AddInt64(&res.anomalies, 1)
							break
						}
					}
					atomic.AddInt64(&res.reads, 1)
				}
			}(int64(r))
		}
		for w := 0; w < writers; w++ {
			wgW.Add(1)
			go func(seed int64) {
				defer wgW.Done()
				rng := rand.New(rand.NewSource(seed))
				for round := 0; round < writerRounds; round++ {
					order := rng.Perm(files)
					for {
						err := func() error {
							tx := c.Txns().Begin()
							ctx := txn.NewContext(context.Background(), tx)
							for _, i := range order {
								res, err := c.ExecCtx(ctx, abdl.NewRetrieve(abdm.And(abdm.Predicate{
									Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(fmt.Sprintf("f%d", i))}), "x"))
								if err != nil {
									return err
								}
								v, _ := res.Records[0].Rec.Get("x")
								up := abdl.NewUpdate(abdm.And(abdm.Predicate{
									Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(fmt.Sprintf("f%d", i))}),
									abdl.Modifier{Attr: "x", Val: abdm.Int(v.AsInt() + 1)})
								if _, err := c.ExecCtx(ctx, up); err != nil {
									return err
								}
							}
							return c.Txns().Commit(tx)
						}()
						if err == nil {
							break
						}
						var ae *txn.AbortedError
						if !errors.As(err, &ae) {
							werr.Store(err)
							return
						}
					}
				}
			}(int64(100 + w))
		}
		wgW.Wait()
		done.Store(true)
		wgR.Wait()
		res.wall = time.Since(start)
		if err, _ := werr.Load().(error); err != nil {
			return mixResult{}, err
		}

		// No lost updates, whichever mode the readers ran in.
		finals, err := readAll(context.Background())
		if err != nil {
			return mixResult{}, err
		}
		want := int64(writers * writerRounds)
		for i, v := range finals {
			if v != want {
				return mixResult{}, fmt.Errorf("counter f%d = %d, want %d: updates lost", i, v, want)
			}
		}
		return res, nil
	}

	locked, err := run(false)
	if err != nil {
		return failf(id, title, "locked mix: %v", err)
	}
	mvcc, err := run(true)
	if err != nil {
		return failf(id, title, "mvcc mix: %v", err)
	}

	lockedRate := float64(locked.reads) / locked.wall.Seconds()
	mvccRate := float64(mvcc.reads) / mvcc.wall.Seconds()
	ok := locked.anomalies == 0 && mvcc.anomalies == 0 &&
		mvcc.reads > 0 && mvccRate > lockedRate
	body := fmt.Sprintf(
		"%-28s %-12s %-12s %s\n%-28s %-12d %-12.0f %d\n%-28s %-12d %-12.0f %d\n\n"+
			"speedup: %.1fx read-only throughput with snapshot reads\n",
		"reader mode", "read txns", "reads/sec", "anomalies",
		"locked (2PL shared locks)", locked.reads, lockedRate, locked.anomalies,
		"MVCC snapshot", mvcc.reads, mvccRate, mvcc.anomalies,
		mvccRate/lockedRate)
	return report(id, title, ok, body)
}
