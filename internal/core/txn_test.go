package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mlds/internal/txn"
)

// newBank creates a relational database with a one-row account file the
// transaction tests contend on, plus a spare file for deadlock staging.
func newBank(t *testing.T, s *System) *Database {
	t.Helper()
	db, err := s.CreateRelational("bank", `
CREATE TABLE acct (bal INTEGER);
CREATE TABLE dl (v INTEGER);
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecABDL("INSERT (<FILE, acct>, <bal, 0>)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecABDL("INSERT (<FILE, dl>, <v, 0>)"); err != nil {
		t.Fatal(err)
	}
	return db
}

// increment runs one read-modify-write round as an explicit multi-statement
// transaction: BEGIN, read the balance, write back balance+1, COMMIT. Under
// strict 2PL the read's S lock is held to commit, so two concurrent rounds
// can never both base their write on the same starting balance.
func increment(sess *ABDLSession) error {
	if _, err := sess.Execute("BEGIN WORK"); err != nil {
		return err
	}
	out, err := sess.Execute("RETRIEVE ((FILE = acct)) (bal)")
	if err != nil {
		return err
	}
	if len(out.Kernel.Records) != 1 {
		return fmt.Errorf("read %d acct records, want 1", len(out.Kernel.Records))
	}
	bal, _ := out.Kernel.Records[0].Rec.Get("bal")
	if _, err := sess.Execute(fmt.Sprintf("UPDATE ((FILE = acct)) (bal = %d)", bal.AsInt()+1)); err != nil {
		return err
	}
	_, err = sess.Execute("COMMIT WORK")
	return err
}

// forceDeadlock stages a guaranteed S→X upgrade deadlock on the dl file:
// both sessions read under S, then both try to write, each waiting on the
// other's read lock. It returns the victim's error; the survivor commits.
func forceDeadlock(t *testing.T, a, b *ABDLSession) error {
	t.Helper()
	for _, sess := range []*ABDLSession{a, b} {
		if _, err := sess.Execute("BEGIN WORK"); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Execute("RETRIEVE ((FILE = dl)) (v)"); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, 2)
	for _, sess := range []*ABDLSession{a, b} {
		sess := sess
		go func() {
			_, err := sess.Execute("UPDATE ((FILE = dl)) (v = 1)")
			if err == nil {
				_, err = sess.Execute("COMMIT WORK")
			}
			errs <- err
		}()
	}
	e1, e2 := <-errs, <-errs
	if (e1 == nil) == (e2 == nil) {
		t.Fatalf("want exactly one deadlock victim, got errors %v / %v", e1, e2)
	}
	if e1 != nil {
		return e1
	}
	return e2
}

// TestConcurrentTxnSerializable is the transaction subsystem's acceptance
// test: 8 sessions run conflicting read-modify-write transactions on one
// shared balance, retrying when aborted as a deadlock victim. Strict 2PL
// makes the outcome serializable — the final balance equals the number of
// committed increments, i.e. no update is ever lost — and the wait-for
// graph detects at least one deadlock along the way. Run with -race.
func TestConcurrentTxnSerializable(t *testing.T) {
	const sessions, rounds = 8, 25
	s := newSystem(t)
	db := newBank(t, s)

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		sess, err := s.OpenABDL("bank")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sess.Close()
			for r := 0; r < rounds; r++ {
				for {
					err := increment(sess)
					if err == nil {
						break
					}
					var ae *txn.AbortedError
					if !errors.As(err, &ae) {
						t.Errorf("non-abort error: %v", err)
						return
					}
					// Deadlock victim or lock timeout: the manager rolled the
					// transaction back and the session handle is clear — the
					// round retries from BEGIN, as any 2PL client must.
					if sess.InTxn() {
						t.Error("session still in txn after manager abort")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	out, err := db.ExecABDL("RETRIEVE ((FILE = acct)) (bal)")
	if err != nil {
		t.Fatal(err)
	}
	bal, _ := out.Records[0].Rec.Get("bal")
	if got := bal.AsInt(); got != sessions*rounds {
		t.Errorf("final balance = %d, want %d: %d updates lost",
			got, sessions*rounds, sessions*rounds-int(got))
	}

	// The S→X upgrade pattern all but guarantees deadlocks above, but the
	// scheduler could serialize every round; stage a deterministic one if so.
	if db.Ctrl.Txns().Stats().Deadlocks == 0 {
		a, _ := s.OpenABDL("bank")
		b, _ := s.OpenABDL("bank")
		defer a.Close()
		defer b.Close()
		verr := forceDeadlock(t, a, b)
		if !errors.Is(verr, txn.ErrDeadlock) {
			t.Errorf("victim error = %v, want ErrDeadlock", verr)
		}
	}
	if n := db.Ctrl.Txns().Stats().Deadlocks; n == 0 {
		t.Error("no deadlock was ever detected")
	} else {
		t.Logf("deadlocks detected and recovered: %d", n)
	}
}

// TestDeadlockVictimRecovers: the victim of a staged deadlock gets an error
// unwrapping to ErrDeadlock, its session drops out of the transaction, and
// the survivor's committed write is the one that sticks.
func TestDeadlockVictimRecovers(t *testing.T) {
	s := newSystem(t)
	db := newBank(t, s)
	a, _ := s.OpenABDL("bank")
	b, _ := s.OpenABDL("bank")
	defer a.Close()
	defer b.Close()

	verr := forceDeadlock(t, a, b)
	if !errors.Is(verr, txn.ErrDeadlock) {
		t.Fatalf("victim error = %v, want ErrDeadlock", verr)
	}
	var ae *txn.AbortedError
	if !errors.As(verr, &ae) {
		t.Fatalf("victim error %T does not carry the aborted transaction", verr)
	}
	if a.InTxn() || b.InTxn() {
		t.Error("a session is still in a transaction after the deadlock resolved")
	}
	out, err := db.ExecABDL("RETRIEVE ((FILE = dl)) (v)")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out.Records[0].Rec.Get("v"); v.AsInt() != 1 {
		t.Errorf("survivor's write lost: v = %v", v)
	}
	if db.Ctrl.Txns().Stats().Deadlocks == 0 {
		t.Error("deadlock not counted")
	}
}

// TestTxnVerbsAcrossInterfaces: every language interface accepts the shared
// transaction-control spellings before its own parser ever runs.
func TestTxnVerbsAcrossInterfaces(t *testing.T) {
	s := newSystem(t)
	newLoadedUniv(t, s)
	if _, err := s.CreateRelational("shop", "CREATE TABLE emp (ename CHAR(20), pay INTEGER);"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateHierarchical("school", "DBD NAME IS school\nSEGMENT NAME IS dept\n    FIELD dname CHAR 20\n"); err != nil {
		t.Fatal(err)
	}

	open := []struct {
		lang, db string
	}{
		{"dml", "university"},
		{"daplex", "university"},
		{"sql", "shop"},
		{"dli", "school"},
		{"abdl", "university"},
	}
	for _, o := range open {
		sess, err := s.Open(o.db, o.lang)
		if err != nil {
			t.Fatalf("%s: %v", o.lang, err)
		}
		if sess.InTxn() {
			t.Errorf("%s: fresh session already in txn", o.lang)
		}
		for _, step := range []struct{ stmt, want string }{
			{"BEGIN WORK", "begin"},
			{"COMMIT", "commit"},
			{"start transaction;", "begin"},
			{"Rollback Work", "rollback"},
			{"BEGIN", "begin"},
			{"ABORT", "rollback"},
		} {
			out, err := sess.Execute(step.stmt)
			if err != nil {
				t.Fatalf("%s: %q: %v", o.lang, step.stmt, err)
			}
			if out.Rendered != step.want {
				t.Errorf("%s: %q rendered %q, want %q", o.lang, step.stmt, out.Rendered, step.want)
			}
			if want := step.want == "begin"; sess.InTxn() != want {
				t.Errorf("%s: after %q InTxn = %v", o.lang, step.stmt, sess.InTxn())
			}
		}
		// Verb misuse is reported, not executed by the language parser.
		if _, err := sess.Execute("COMMIT"); err == nil {
			t.Errorf("%s: COMMIT with no open transaction accepted", o.lang)
		}
		if err := sess.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := sess.Begin(); err == nil || !strings.Contains(err.Error(), "already open") {
			t.Errorf("%s: nested BEGIN accepted (%v)", o.lang, err)
		}
		// Close aborts the abandoned transaction so its locks die with it.
		if err := sess.Close(); err != nil {
			t.Fatalf("%s: close with open txn: %v", o.lang, err)
		}
	}
}

// TestExplicitRollbackAcrossStatements: a SQL session's multi-statement
// transaction is atomic — its inserts are visible inside the transaction
// and fully undone by ROLLBACK, while a committed one persists.
func TestExplicitRollbackAcrossStatements(t *testing.T) {
	s := newSystem(t)
	if _, err := s.CreateRelational("shop", "CREATE TABLE emp (ename CHAR(20), pay INTEGER);"); err != nil {
		t.Fatal(err)
	}
	sess, err := s.OpenSQL("shop")
	if err != nil {
		t.Fatal(err)
	}
	count := func() int {
		rs, err := sess.Execute("SELECT ename FROM emp")
		if err != nil {
			t.Fatal(err)
		}
		return len(rs.SQL.Rows)
	}

	if _, err := sess.Execute("BEGIN WORK"); err != nil {
		t.Fatal(err)
	}
	for _, stmt := range []string{
		"INSERT INTO emp (ename, pay) VALUES ('Ann', 900)",
		"INSERT INTO emp (ename, pay) VALUES ('Bob', 700)",
	} {
		if _, err := sess.Execute(stmt); err != nil {
			t.Fatal(err)
		}
	}
	if n := count(); n != 2 {
		t.Fatalf("inside txn: %d rows, want 2 (reads see own writes)", n)
	}
	if _, err := sess.Execute("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 0 {
		t.Fatalf("after rollback: %d rows, want 0", n)
	}

	if _, err := sess.Execute("BEGIN WORK"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("INSERT INTO emp (ename, pay) VALUES ('Cay', 800)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("COMMIT WORK"); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 1 {
		t.Fatalf("after commit: %d rows, want 1", n)
	}
}
