package core

import (
	"errors"

	"mlds/internal/mbdsnet"
	"mlds/internal/txn"
	"mlds/internal/wire"
)

// This file maps core errors onto the frozen wire.Code table so remote
// clients get machine-readable outcomes without parsing error strings. The
// table itself lives in internal/wire (codes.go); core owns only the
// error→code classification, which the serving tier and the Outcome carry.

// ErrUnknownLanguage reports a language name System.Open does not recognise.
// Open errors wrap it, so callers can errors.Is against it.
var ErrUnknownLanguage = errors.New("core: unknown language")

// ErrNoTxn reports a COMMIT or ROLLBACK with no explicit transaction open.
var ErrNoTxn = errors.New("core: no transaction open")

// ErrNoView reports a DROP VIEW naming no live view.
var ErrNoView = errors.New("core: no such view")

// ErrDupView reports a CREATE VIEW reusing a live view's name.
var ErrDupView = errors.New("core: view already exists")

// ParseError marks a statement the language front end rejected. It wraps the
// parser's error verbatim (same text), adding only the classification.
type ParseError struct{ Err error }

func (e *ParseError) Error() string { return e.Err.Error() }
func (e *ParseError) Unwrap() error { return e.Err }

// CodeOf classifies an error from Open, Execute or the transaction methods
// into its stable wire code. nil maps to CodeOK; anything unrecognised is
// CodeInternal.
func CodeOf(err error) wire.Code {
	if err == nil {
		return wire.CodeOK
	}
	var ae *txn.AbortedError
	var pe *ParseError
	var de *mbdsnet.DrainingError
	switch {
	case errors.As(err, &pe):
		return wire.CodeParse
	case errors.Is(err, ErrNoDatabase):
		return wire.CodeNoDatabase
	case errors.Is(err, ErrWrongModel):
		return wire.CodeWrongModel
	case errors.Is(err, ErrUnknownLanguage):
		return wire.CodeUnknownLanguage
	case errors.Is(err, txn.ErrReadOnly):
		return wire.CodeReadOnly
	case errors.Is(err, ErrNoTxn):
		return wire.CodeNoTxn
	case errors.Is(err, ErrNoView), errors.Is(err, ErrDupView):
		return wire.CodeView
	case errors.As(err, &de):
		return wire.CodeDraining
	case errors.As(err, &ae):
		switch {
		case errors.Is(ae.Cause, txn.ErrDeadlock):
			return wire.CodeDeadlock
		case errors.Is(ae.Cause, txn.ErrLockTimeout):
			return wire.CodeLockTimeout
		default:
			return wire.CodeTxnAborted
		}
	default:
		return wire.CodeInternal
	}
}
