package core

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"mlds/internal/mbds"
	"mlds/internal/univ"
	"mlds/internal/univgen"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	s := NewSystem(Config{Kernel: mbds.DefaultConfig(2)})
	t.Cleanup(s.Close)
	return s
}

// newLoadedUniv creates and populates the University functional database.
func newLoadedUniv(t *testing.T, s *System) *Database {
	t.Helper()
	db, err := s.CreateFunctional("university", univ.SchemaDDL)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := univgen.Populate(db.Mapping, db.AB, univgen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadInstance(inst); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateFunctionalDatabase(t *testing.T) {
	s := newSystem(t)
	db := newLoadedUniv(t, s)
	if db.Model != FunctionalModel || db.Mapping == nil || db.Net == nil {
		t.Fatalf("db = %+v", db)
	}
	if _, ok := s.Database("university"); !ok {
		t.Error("catalog lookup failed")
	}
	if _, err := s.CreateFunctional("university", univ.SchemaDDL); err == nil {
		t.Error("duplicate database name accepted")
	}
	infos := s.Databases()
	if len(infos) != 1 || infos[0].Name != "university" || infos[0].Model != FunctionalModel {
		t.Errorf("Databases() = %v", infos)
	}
	if infos[0].Backends != 2 || infos[0].Records == 0 {
		t.Errorf("DatabaseInfo = %+v", infos[0])
	}
}

func TestCreateNetworkDatabase(t *testing.T) {
	s := newSystem(t)
	db, err := s.CreateNetwork("shop", `
SCHEMA NAME IS shop
RECORD NAME IS dept
    02 dname TYPE IS CHARACTER 20
RECORD NAME IS emp
    02 ename TYPE IS CHARACTER 20
    02 pay TYPE IS FIXED
SET NAME IS works_in;
    OWNER IS dept;
    MEMBER IS emp;
    INSERTION IS MANUAL;
    RETENTION IS OPTIONAL;
`)
	if err != nil {
		t.Fatal(err)
	}
	if db.Model != NetworkModel {
		t.Fatalf("model = %v", db.Model)
	}
	// Native DML session: store a dept and an emp, connect, navigate.
	sess, err := s.OpenDML("shop")
	if err != nil {
		t.Fatal(err)
	}
	steps := []string{
		"MOVE 'Sales' TO dname IN dept",
		"STORE dept",
		"MOVE 'Ann' TO ename IN emp",
		"MOVE 900 TO pay IN emp",
		"STORE emp",
		"CONNECT emp TO works_in",
		"FIND OWNER WITHIN works_in",
	}
	for _, line := range steps {
		if _, err := sess.Execute(line); err != nil {
			t.Fatalf("%s: %v", line, err)
		}
	}
	out, err := sess.Execute("GET dname IN dept")
	if err != nil {
		t.Fatal(err)
	}
	if out.DML.Values["dname"].AsString() != "Sales" {
		t.Errorf("owner dname = %v", out.DML.Values)
	}
}

func TestOpenDMLOnFunctionalDatabase(t *testing.T) {
	// The thesis's goal: a CODASYL-DML session over a functional database.
	s := newSystem(t)
	newLoadedUniv(t, s)
	sess, err := s.OpenDML("university")
	if err != nil {
		t.Fatal(err)
	}
	outs, err := sess.RunScript(`
MOVE 'Advanced Database' TO title IN course
FIND ANY course USING title IN course
GET course
`)
	if err != nil {
		t.Fatal(err)
	}
	last := outs[len(outs)-1]
	if last.Values["title"].AsString() != "Advanced Database" {
		t.Errorf("values = %v", last.Values)
	}
}

func TestOpenDaplexOnNetworkDatabaseFails(t *testing.T) {
	s := newSystem(t)
	if _, err := s.CreateNetwork("n", "SCHEMA NAME IS n\nRECORD NAME IS r\n    02 a TYPE IS FIXED\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenDaplex("n"); err == nil {
		t.Error("Daplex session on a network database accepted")
	}
	if _, err := s.OpenDML("nosuch"); err == nil {
		t.Error("session on unknown database accepted")
	}
}

func TestExecABDLDirect(t *testing.T) {
	s := newSystem(t)
	db := newLoadedUniv(t, s)
	res, err := db.ExecABDL("RETRIEVE ((FILE = course) AND (credits >= 4)) (title, credits)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no records via direct ABDL")
	}
	for _, sr := range res.Records {
		if v, _ := sr.Rec.Get("credits"); v.AsInt() < 4 {
			t.Errorf("record %v violates the qualification", sr.Rec)
		}
	}
}

// TestCrossModelEquivalence is experiment E8: the same functional database
// answers identically through the Daplex interface and through translated
// CODASYL-DML.
func TestCrossModelEquivalence(t *testing.T) {
	s := newSystem(t)
	newLoadedUniv(t, s)

	// Daplex: CS students' names.
	dap, err := s.OpenDaplex("university")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := dap.Execute("FOR EACH student WHERE major = 'Computer Science' PRINT pname;")
	if err != nil {
		t.Fatal(err)
	}
	var daplexNames []string
	for _, r := range rows.Rows {
		daplexNames = append(daplexNames, r.Values["pname"][0].AsString())
	}
	sort.Strings(daplexNames)

	// CODASYL-DML: iterate the person system set, probing the student
	// subtype through the ISA set and filtering by major.
	dml, err := s.OpenDML("university")
	if err != nil {
		t.Fatal(err)
	}
	var dmlNames []string
	if _, err := dml.Execute("FIND FIRST person WITHIN system_person"); err != nil {
		t.Fatal(err)
	}
	for {
		out, err := dml.Execute("FIND FIRST student WITHIN person_student")
		if err != nil {
			t.Fatal(err)
		}
		if out.DML.Found {
			g, err := dml.Execute("GET major IN student")
			if err != nil {
				t.Fatal(err)
			}
			if g.DML.Values["major"].AsString() == "Computer Science" {
				if _, err := dml.Execute("FIND CURRENT person WITHIN person_student"); err == nil {
					t.Fatal("person is the owner of person_student; FIND CURRENT must reject it")
				}
				p, err := dml.Execute("FIND OWNER WITHIN person_student")
				if err != nil {
					t.Fatal(err)
				}
				_ = p
				name, err := dml.Execute("GET pname IN person")
				if err != nil {
					t.Fatal(err)
				}
				dmlNames = append(dmlNames, name.DML.Values["pname"].AsString())
			}
		}
		nxt, err := dml.Execute("FIND NEXT person WITHIN system_person")
		if err != nil {
			t.Fatal(err)
		}
		if nxt.DML.EndOfSet {
			break
		}
	}
	sort.Strings(dmlNames)

	if strings.Join(daplexNames, "|") != strings.Join(dmlNames, "|") {
		t.Errorf("cross-model results differ:\n daplex: %v\n dml:    %v", daplexNames, dmlNames)
	}
	if len(daplexNames) != 6 {
		t.Errorf("CS students = %d, want 6", len(daplexNames))
	}
}

// TestSharedKernel is experiment E9: both interfaces operate on one kernel —
// an update through Daplex is visible to a concurrent CODASYL-DML session.
func TestSharedKernel(t *testing.T) {
	s := newSystem(t)
	newLoadedUniv(t, s)
	dap, _ := s.OpenDaplex("university")
	dml, _ := s.OpenDML("university")

	if _, err := dap.Execute("LET credits OF course WHERE title = 'Advanced Database' BE 9;"); err != nil {
		t.Fatal(err)
	}
	if _, err := dml.Execute("MOVE 'Advanced Database' TO title IN course"); err != nil {
		t.Fatal(err)
	}
	if _, err := dml.Execute("FIND ANY course USING title IN course"); err != nil {
		t.Fatal(err)
	}
	out, err := dml.Execute("GET credits IN course")
	if err != nil {
		t.Fatal(err)
	}
	if out.DML.Values["credits"].AsInt() != 9 {
		t.Errorf("Daplex update invisible to DML session: %v", out.DML.Values)
	}
	// And the reverse: a DML MODIFY visible to Daplex.
	if _, err := dml.Execute("MOVE 2 TO credits IN course"); err != nil {
		t.Fatal(err)
	}
	if _, err := dml.Execute("MODIFY credits IN course"); err != nil {
		t.Fatal(err)
	}
	rows, err := dap.Execute("FOR EACH course WHERE title = 'Advanced Database' PRINT credits;")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 1 || rows.Rows[0].Values["credits"][0].AsInt() != 2 {
		t.Errorf("DML update invisible to Daplex session: %v", rows.Rows)
	}
}

func TestModelString(t *testing.T) {
	if NetworkModel.String() != "network" || FunctionalModel.String() != "functional" {
		t.Error("Model.String wrong")
	}
}

// kernelWith sizes a kernel config for persistence tests.
func kernelWith(n int) mbds.Config { return mbds.DefaultConfig(n) }

func TestRelationalDatabaseSQLSession(t *testing.T) {
	s := newSystem(t)
	db, err := s.CreateRelational("shop", `
CREATE TABLE emp (
    ename CHAR(20) NOT NULL UNIQUE,
    pay INTEGER
);
`)
	if err != nil {
		t.Fatal(err)
	}
	if db.Model != RelationalModel {
		t.Fatalf("model = %v", db.Model)
	}
	sess, err := s.OpenSQL("shop")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("INSERT INTO emp (ename, pay) VALUES ('Ann', 900)"); err != nil {
		t.Fatal(err)
	}
	rs, err := sess.Execute("SELECT ename, pay FROM emp WHERE pay >= 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.SQL.Rows) != 1 || rs.SQL.Rows[0][0].AsString() != "Ann" {
		t.Errorf("rows = %v", rs.SQL.Rows)
	}
	// SQL sessions are only for relational databases.
	if _, err := s.OpenSQL("nosuch"); err == nil {
		t.Error("phantom database accepted")
	}
	newLoadedUniv(t, s)
	if _, err := s.OpenSQL("university"); err == nil {
		t.Error("SQL session on functional database accepted")
	}
	if _, err := s.OpenDML("shop"); err == nil {
		t.Error("DML session on relational database accepted")
	}
	// ABDL works against any model's kernel.
	res, err := db.ExecABDL("RETRIEVE ((FILE = emp)) (COUNT(ename))")
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups[0].Aggs[0].Val.AsInt() != 1 {
		t.Errorf("count = %v", res.Groups[0].Aggs[0].Val)
	}
}

func TestSaveRestoreRelationalDatabase(t *testing.T) {
	s1 := newSystem(t)
	db1, err := s1.CreateRelational("shop", "CREATE TABLE t (a INTEGER, b CHAR(5));")
	if err != nil {
		t.Fatal(err)
	}
	sess, _ := s1.OpenSQL("shop")
	if _, err := sess.Execute("INSERT INTO t (a, b) VALUES (1, 'x')"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := newSystem(t)
	db2, err := s2.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Model != RelationalModel || db2.Kernel.Len() != 1 {
		t.Fatalf("restored %v with %d records", db2.Model, db2.Kernel.Len())
	}
	sess2, _ := s2.OpenSQL("shop")
	rs, err := sess2.Execute("SELECT a, b FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.SQL.Rows) != 1 || rs.SQL.Rows[0][0].AsInt() != 1 {
		t.Errorf("rows = %v", rs.SQL.Rows)
	}
}

func TestHierarchicalDatabaseDLISession(t *testing.T) {
	s := newSystem(t)
	db, err := s.CreateHierarchical("school", `
DBD NAME IS school
SEGMENT NAME IS dept
    FIELD dname CHAR 20
SEGMENT NAME IS course PARENT IS dept
    FIELD title CHAR 30
`)
	if err != nil {
		t.Fatal(err)
	}
	if db.Model != HierarchicalModel {
		t.Fatalf("model = %v", db.Model)
	}
	sess, err := s.OpenDLI("school")
	if err != nil {
		t.Fatal(err)
	}
	steps := []string{
		"ISRT dept (dname = 'CS')",
		"ISRT course (title = 'DB')",
		"ISRT course (title = 'OS')",
	}
	for _, c := range steps {
		out, err := sess.Execute(c)
		if err != nil || out.DLI.Status != "" {
			t.Fatalf("%s: %v %q", c, err, out.DLI.Status)
		}
	}
	out, err := sess.Execute("GU dept (dname = 'CS') course (title = 'OS')")
	if err != nil || out.DLI.Status != "" {
		t.Fatalf("GU: %v %q", err, out.DLI.Status)
	}
	if out.DLI.Values["title"].AsString() != "OS" {
		t.Errorf("values = %v", out.DLI.Values)
	}
	if _, err := s.OpenDLI("nosuch"); err == nil {
		t.Error("phantom database accepted")
	}
	if _, err := s.OpenSQL("school"); err == nil {
		t.Error("SQL session on hierarchical database accepted")
	}

	// Save/restore round trip.
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := newSystem(t)
	db2, err := s2.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := s2.OpenDLI("school")
	if err != nil {
		t.Fatal(err)
	}
	again, err := sess2.Execute("GU dept (dname = 'CS') course (title = 'DB')")
	if err != nil || again.DLI.Status != "" {
		t.Fatalf("restored GU: %v %q", err, again.DLI.Status)
	}
	// Key allocation resumes: a fresh ISRT must not collide.
	nw, err := sess2.Execute("ISRT course (title = 'New')")
	if err != nil || nw.DLI.Status != "" {
		t.Fatal(err)
	}
	if nw.DLI.Key <= again.DLI.Key && db2.Kernel.Len() < 4 {
		t.Errorf("key allocation did not resume: %d", nw.DLI.Key)
	}
}
