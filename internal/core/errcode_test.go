package core

import (
	"errors"
	"testing"

	"mlds/internal/mbdsnet"
	"mlds/internal/txn"
	"mlds/internal/wire"
)

func TestCodeOfClassification(t *testing.T) {
	cases := []struct {
		err  error
		want wire.Code
	}{
		{nil, wire.CodeOK},
		{ErrNoDatabase, wire.CodeNoDatabase},
		{ErrWrongModel, wire.CodeWrongModel},
		{ErrUnknownLanguage, wire.CodeUnknownLanguage},
		{ErrNoTxn, wire.CodeNoTxn},
		{txn.ErrReadOnly, wire.CodeReadOnly},
		{&ParseError{Err: errors.New("sql: bad token")}, wire.CodeParse},
		{&txn.AbortedError{ID: 1, Cause: txn.ErrDeadlock}, wire.CodeDeadlock},
		{&txn.AbortedError{ID: 2, Cause: txn.ErrLockTimeout}, wire.CodeLockTimeout},
		{&txn.AbortedError{ID: 3, Cause: errors.New("explicit")}, wire.CodeTxnAborted},
		{&mbdsnet.DrainingError{Addr: "x"}, wire.CodeDraining},
		{errors.New("anything else"), wire.CodeInternal},
	}
	for _, c := range cases {
		if got := CodeOf(c.err); got != c.want {
			t.Errorf("CodeOf(%v) = %s, want %s", c.err, got, c.want)
		}
	}
}

// TestOutcomeCodes drives real statements end to end and checks the code the
// outcome carries — what a remote client will see on the wire.
func TestOutcomeCodes(t *testing.T) {
	s := newSystem(t)
	newLoadedUniv(t, s)

	// Open-time classification.
	if _, err := s.Open("nope", "sql"); CodeOf(err) != wire.CodeNoDatabase {
		t.Errorf("missing db: CodeOf(%v) = %s", err, CodeOf(err))
	}
	if _, err := s.Open("university", "sql"); CodeOf(err) != wire.CodeWrongModel {
		t.Errorf("wrong model: CodeOf(%v) = %s", err, CodeOf(err))
	}
	if _, err := s.Open("university", "cobol"); CodeOf(err) != wire.CodeUnknownLanguage ||
		!errors.Is(err, ErrUnknownLanguage) {
		t.Errorf("unknown language: CodeOf(%v) = %s", err, CodeOf(err))
	}

	sess, err := s.Open("university", "daplex")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if out, err := sess.Execute("FOR EACH department PRINT dname;"); err != nil || out.Code != wire.CodeOK {
		t.Errorf("good statement: code %v, err %v", out.Code, err)
	}
	if out, err := sess.Execute("THIS IS NOT DAPLEX"); err == nil || out.Code != wire.CodeParse {
		t.Errorf("parse error: code %v, err %v", out.Code, err)
	}
	if out, err := sess.Execute("COMMIT WORK"); err == nil || out.Code != wire.CodeNoTxn {
		t.Errorf("commit without txn: code %v, err %v", out.Code, err)
	}

	// Read-only violation inside a snapshot transaction.
	if err := sess.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	out, err := sess.Execute(`CREATE department (dname := "X");`)
	if err == nil || out.Code != wire.CodeReadOnly {
		t.Errorf("read-only violation: code %v, err %v", out.Code, err)
	}
	if err := sess.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestCanonLanguage(t *testing.T) {
	for in, want := range map[string]string{
		"DML": LangDML, "codasyl": LangDML, " Daplex ": LangDaplex,
		"SQL": LangSQL, "dl/i": LangDLI, "DL1": LangDLI, "abdl": LangABDL,
		"cobol": "",
	} {
		if got := CanonLanguage(in); got != want {
			t.Errorf("CanonLanguage(%q) = %q, want %q", in, got, want)
		}
	}
}
