package core

import (
	"fmt"
	"sort"
	"testing"
)

// The cross-model differential test: the same logical database — employees
// with a name and a pay figure — is defined in all four data models and
// driven through all five language interfaces with equivalent workloads:
//
//	load   Ann 900, Bob 700, Cay 800, Fay 600
//	query  everyone with pay >= 800
//	update Bob's pay to 850
//	delete Fay
//
// After every phase the kernel-level result set — the (ename, pay) pairs a
// raw ABDL RETRIEVE returns from each database's kernel — must be identical
// across the models. The language interfaces differ in how they say it; the
// kernel must not differ in what it stores.

// diffEmp is one employee of the differential workload.
type diffEmp struct {
	name string
	pay  int64
}

// diffDriver loads, updates and deletes employees through one language
// interface.
type diffDriver struct {
	lang   string
	db     *Database
	load   func(t *testing.T, e diffEmp)
	setPay func(t *testing.T, name string, pay int64)
	del    func(t *testing.T, name string)
	// query returns the names with pay >= min, via the language's own
	// query path (not the kernel shortcut).
	query func(t *testing.T, min int64) []string
}

// kernelSet reads the (ename, pay) pairs straight from a database's kernel.
func kernelSet(t *testing.T, db *Database) []string {
	t.Helper()
	res, err := db.ExecABDL("RETRIEVE ((FILE = emp)) (ename, pay)")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(res.Records))
	for _, sr := range res.Records {
		name, _ := sr.Rec.Get("ename")
		pay, _ := sr.Rec.Get("pay")
		out = append(out, fmt.Sprintf("%s=%d", name.AsString(), pay.AsInt()))
	}
	sort.Strings(out)
	return out
}

func newDiffDrivers(t *testing.T, s *System) []*diffDriver {
	t.Helper()
	must := func(sess Session, stmt string) *Outcome {
		t.Helper()
		out, err := sess.Execute(stmt)
		if err != nil {
			t.Fatalf("[%s] %s: %v", sess.Language(), stmt, err)
		}
		return out
	}

	// Relational / SQL.
	relDB, err := s.CreateRelational("diff_rel", "CREATE TABLE emp (ename CHAR(20), pay INTEGER);")
	if err != nil {
		t.Fatal(err)
	}
	sqlSess, err := s.OpenSQL("diff_rel")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sqlSess.Close() })
	sqlDrv := &diffDriver{
		lang: "sql", db: relDB,
		load: func(t *testing.T, e diffEmp) {
			must(sqlSess, fmt.Sprintf("INSERT INTO emp (ename, pay) VALUES ('%s', %d)", e.name, e.pay))
		},
		setPay: func(t *testing.T, name string, pay int64) {
			must(sqlSess, fmt.Sprintf("UPDATE emp SET pay = %d WHERE ename = '%s'", pay, name))
		},
		del: func(t *testing.T, name string) {
			must(sqlSess, fmt.Sprintf("DELETE FROM emp WHERE ename = '%s'", name))
		},
		query: func(t *testing.T, min int64) []string {
			out := must(sqlSess, fmt.Sprintf("SELECT ename FROM emp WHERE pay >= %d", min))
			names := make([]string, 0, len(out.SQL.Rows))
			for _, row := range out.SQL.Rows {
				names = append(names, row[0].AsString())
			}
			return names
		},
	}

	// Hierarchical / DL-I: emp is the root segment.
	hieDB, err := s.CreateHierarchical("diff_hie", "DBD NAME IS payroll\nSEGMENT NAME IS emp\n    FIELD ename CHAR 20\n    FIELD pay INT\n")
	if err != nil {
		t.Fatal(err)
	}
	dliSess, err := s.OpenDLI("diff_hie")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dliSess.Close() })
	dliDrv := &diffDriver{
		lang: "dli", db: hieDB,
		load: func(t *testing.T, e diffEmp) {
			must(dliSess, fmt.Sprintf("ISRT emp (ename = '%s', pay = %d)", e.name, e.pay))
		},
		setPay: func(t *testing.T, name string, pay int64) {
			must(dliSess, fmt.Sprintf("GU emp (ename = '%s')", name))
			must(dliSess, fmt.Sprintf("REPL (pay = %d)", pay))
		},
		del: func(t *testing.T, name string) {
			must(dliSess, fmt.Sprintf("GU emp (ename = '%s')", name))
			must(dliSess, "DLET")
		},
		query: func(t *testing.T, min int64) []string {
			// DL/I has no predicate scan on non-equal comparisons; walk the
			// segment occurrences with GN and filter in the program, as a
			// DL/I application would.
			var names []string
			fresh, err := s.OpenDLI("diff_hie")
			if err != nil {
				t.Fatal(err)
			}
			defer fresh.Close()
			for {
				out, err := fresh.Execute("GN emp")
				if err != nil {
					t.Fatal(err)
				}
				if out.DLI.Status != "" && out.DLI.Status != "OK" {
					break
				}
				if out.DLI.Values["pay"].AsInt() >= min {
					names = append(names, out.DLI.Values["ename"].AsString())
				}
			}
			return names
		},
	}

	// Network / CODASYL-DML.
	netDB, err := s.CreateNetwork("diff_net", `
SCHEMA NAME IS payroll
RECORD NAME IS emp
    02 ename TYPE IS CHARACTER 20
    02 pay TYPE IS FIXED
SET NAME IS system_emp;
    OWNER IS SYSTEM;
    MEMBER IS emp;
    INSERTION IS AUTOMATIC;
    RETENTION IS FIXED;
    SET SELECTION IS BY APPLICATION;
`)
	if err != nil {
		t.Fatal(err)
	}
	dmlSess, err := s.OpenDML("diff_net")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dmlSess.Close() })
	dmlDrv := &diffDriver{
		lang: "dml", db: netDB,
		load: func(t *testing.T, e diffEmp) {
			must(dmlSess, fmt.Sprintf("MOVE '%s' TO ename IN emp", e.name))
			must(dmlSess, fmt.Sprintf("MOVE %d TO pay IN emp", e.pay))
			must(dmlSess, "STORE emp")
		},
		setPay: func(t *testing.T, name string, pay int64) {
			must(dmlSess, fmt.Sprintf("MOVE '%s' TO ename IN emp", name))
			must(dmlSess, "FIND ANY emp USING ename IN emp")
			must(dmlSess, fmt.Sprintf("MOVE %d TO pay IN emp", pay))
			must(dmlSess, "MODIFY pay IN emp")
		},
		del: func(t *testing.T, name string) {
			must(dmlSess, fmt.Sprintf("MOVE '%s' TO ename IN emp", name))
			must(dmlSess, "FIND ANY emp USING ename IN emp")
			must(dmlSess, "ERASE emp")
		},
		query: func(t *testing.T, min int64) []string {
			// CODASYL-DML is record-at-a-time; answer the set query at the
			// kernel level, as the thesis's KMS does for set-oriented reads.
			res, err := netDB.ExecABDL(fmt.Sprintf("RETRIEVE ((FILE = emp) AND (pay >= %d)) (ename)", min))
			if err != nil {
				t.Fatal(err)
			}
			var names []string
			for _, sr := range res.Records {
				v, _ := sr.Rec.Get("ename")
				names = append(names, v.AsString())
			}
			return names
		},
	}

	// Functional / Daplex.
	funDB, err := s.CreateFunctional("diff_fun", `
DATABASE payroll IS
ENTITY emp IS
    ename : STRING(20);
    pay   : INTEGER;
END ENTITY;

END DATABASE;
`)
	if err != nil {
		t.Fatal(err)
	}
	dapSess, err := s.OpenDaplex("diff_fun")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dapSess.Close() })
	dapDrv := &diffDriver{
		lang: "daplex", db: funDB,
		load: func(t *testing.T, e diffEmp) {
			must(dapSess, fmt.Sprintf("CREATE emp (ename := '%s', pay := %d);", e.name, e.pay))
		},
		setPay: func(t *testing.T, name string, pay int64) {
			must(dapSess, fmt.Sprintf("LET pay OF emp WHERE ename = '%s' BE %d;", name, pay))
		},
		del: func(t *testing.T, name string) {
			must(dapSess, fmt.Sprintf("DESTROY emp WHERE ename = '%s';", name))
		},
		query: func(t *testing.T, min int64) []string {
			out := must(dapSess, fmt.Sprintf("FOR EACH emp WHERE pay >= %d PRINT ename;", min))
			var names []string
			for _, row := range out.Rows {
				for _, v := range row.Values["ename"] {
					names = append(names, v.AsString())
				}
			}
			return names
		},
	}

	// Attribute-based / ABDL: the kernel language itself, on its own copy.
	abdlDB, err := s.CreateRelational("diff_abdl", "CREATE TABLE emp (ename CHAR(20), pay INTEGER);")
	if err != nil {
		t.Fatal(err)
	}
	abdlSess, err := s.OpenABDL("diff_abdl")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { abdlSess.Close() })
	abdlDrv := &diffDriver{
		lang: "abdl", db: abdlDB,
		load: func(t *testing.T, e diffEmp) {
			must(abdlSess, fmt.Sprintf("INSERT (<FILE, emp>, <ename, '%s'>, <pay, %d>)", e.name, e.pay))
		},
		setPay: func(t *testing.T, name string, pay int64) {
			must(abdlSess, fmt.Sprintf("UPDATE ((FILE = emp) AND (ename = '%s')) (pay = %d)", name, pay))
		},
		del: func(t *testing.T, name string) {
			must(abdlSess, fmt.Sprintf("DELETE ((FILE = emp) AND (ename = '%s'))", name))
		},
		query: func(t *testing.T, min int64) []string {
			out := must(abdlSess, fmt.Sprintf("RETRIEVE ((FILE = emp) AND (pay >= %d)) (ename)", min))
			var names []string
			for _, sr := range out.Kernel.Records {
				v, _ := sr.Rec.Get("ename")
				names = append(names, v.AsString())
			}
			return names
		},
	}

	return []*diffDriver{sqlDrv, dliDrv, dmlDrv, dapDrv, abdlDrv}
}

// assertAgreement checks that every driver's database holds the same
// kernel-level (ename, pay) set, and that every language's own query path
// names the same employees.
func assertAgreement(t *testing.T, drivers []*diffDriver, phase string, payFloor int64) {
	t.Helper()
	ref := kernelSet(t, drivers[0].db)
	for _, d := range drivers[1:] {
		got := kernelSet(t, d.db)
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Errorf("%s: kernel sets diverge: %s=%v, %s=%v",
				phase, drivers[0].lang, ref, d.lang, got)
		}
	}
	var refNames []string
	for i, d := range drivers {
		names := d.query(t, payFloor)
		sort.Strings(names)
		if i == 0 {
			refNames = names
			continue
		}
		if fmt.Sprint(names) != fmt.Sprint(refNames) {
			t.Errorf("%s: query results diverge: %s=%v, %s=%v",
				phase, drivers[0].lang, refNames, d.lang, names)
		}
	}
}

// TestCrossModelDifferential runs the equivalent load/query/update/delete
// workload through all five language interfaces and asserts kernel-level
// agreement after every phase. Run under -race in make check.
func TestCrossModelDifferential(t *testing.T) {
	s := newSystem(t)
	drivers := newDiffDrivers(t, s)

	emps := []diffEmp{{"Ann", 900}, {"Bob", 700}, {"Cay", 800}, {"Fay", 600}}
	for _, d := range drivers {
		for _, e := range emps {
			d.load(t, e)
		}
	}
	assertAgreement(t, drivers, "after load", 800)

	for _, d := range drivers {
		d.setPay(t, "Bob", 850)
	}
	assertAgreement(t, drivers, "after update", 800)

	for _, d := range drivers {
		d.del(t, "Fay")
	}
	assertAgreement(t, drivers, "after delete", 800)

	want := []string{"Ann=900", "Bob=850", "Cay=800"}
	for _, d := range drivers {
		if got := kernelSet(t, d.db); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s final kernel set = %v, want %v", d.lang, got, want)
		}
	}
}
