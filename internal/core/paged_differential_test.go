package core

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"

	"mlds/internal/abdm"
	"mlds/internal/kdb"
	"mlds/internal/mbds"
	"mlds/internal/pager"
)

// newPagedSystem builds an MLDS instance whose every kernel partition is a
// demand-paged backed store behind a deliberately tiny buffer pool: 8 frames
// of the minimum page size, so any non-trivial corpus is larger than RAM and
// every read path exercises demand paging and eviction. Each store a
// database creates gets its own page file in the test's temp dir.
func newPagedSystem(t *testing.T) *System {
	t.Helper()
	tmp := t.TempDir()
	var seq atomic.Int64
	cfg := mbds.DefaultConfig(2)
	cfg.StoreOpener = func(pos int, d *abdm.Directory, opts []kdb.Option) (*kdb.Store, error) {
		opts = append(opts, kdb.WithPageSize(pager.MinPageSize), kdb.WithPoolPages(8))
		path := filepath.Join(tmp, fmt.Sprintf("store-%d-%d.pgf", seq.Add(1), pos))
		return kdb.CreateBacked(path, d, opts...)
	}
	s := NewSystem(Config{Kernel: cfg})
	t.Cleanup(s.Close)
	return s
}

// TestCrossModelDifferentialPaged is the larger-than-RAM differential suite:
// the cross-model corpus — grown well past the 8-frame pool — is driven
// through all five language interfaces twice, once against the in-memory
// kernel and once against demand-paged backed stores, and the kernel-level
// result sets must be identical (a) across the five models within the paged
// system, after every phase, and (b) between the paged and in-memory runs.
// The paged stores must actually page: more heap pages than pool frames, and
// real evictions. Run under -race in make check.
func TestCrossModelDifferentialPaged(t *testing.T) {
	mem := newSystem(t)
	paged := newPagedSystem(t)
	memDrivers := newDiffDrivers(t, mem)
	pagedDrivers := newDiffDrivers(t, paged)

	// The PR corpus plus a generated bulk that dwarfs the 8-frame pool.
	emps := []diffEmp{{"Ann", 900}, {"Bob", 700}, {"Cay", 800}, {"Fay", 600}}
	for i := 0; i < 120; i++ {
		emps = append(emps, diffEmp{fmt.Sprintf("E%03d", i), int64(100 + i)})
	}
	for _, drivers := range [][]*diffDriver{memDrivers, pagedDrivers} {
		for _, d := range drivers {
			for _, e := range emps {
				d.load(t, e)
			}
		}
	}
	assertAgreement(t, pagedDrivers, "paged after load", 800)
	assertPagedMatchesMemory(t, memDrivers, pagedDrivers, "after load")

	for _, drivers := range [][]*diffDriver{memDrivers, pagedDrivers} {
		for _, d := range drivers {
			d.setPay(t, "Bob", 850)
			d.setPay(t, "E007", 950)
		}
	}
	assertAgreement(t, pagedDrivers, "paged after update", 800)
	assertPagedMatchesMemory(t, memDrivers, pagedDrivers, "after update")

	for _, drivers := range [][]*diffDriver{memDrivers, pagedDrivers} {
		for _, d := range drivers {
			d.del(t, "Fay")
			d.del(t, "E031")
		}
	}
	assertAgreement(t, pagedDrivers, "paged after delete", 800)
	assertPagedMatchesMemory(t, memDrivers, pagedDrivers, "after delete")

	// Honesty check: the paged run must really have been larger than RAM.
	for _, d := range pagedDrivers {
		var pages, evictions, resident uint64
		backends := 0
		for pos := 0; ; pos++ {
			st := d.db.Kernel.Store(pos)
			if st == nil {
				break
			}
			stats, p, backed := st.BackingStats()
			if !backed {
				t.Fatalf("%s: partition %d is not paged", d.lang, pos)
			}
			pages += uint64(p)
			evictions += stats.Evictions
			resident += uint64(stats.Resident)
			if stats.Resident > 8 {
				t.Errorf("%s: partition %d pool holds %d frames, cap 8", d.lang, pos, stats.Resident)
			}
			backends++
		}
		if pages <= uint64(8*backends) {
			t.Errorf("%s: %d heap pages across %d backends does not exceed the pool", d.lang, pages, backends)
		}
		if evictions == 0 {
			t.Errorf("%s: pool never evicted — corpus not larger than RAM", d.lang)
		}
	}
}

// assertPagedMatchesMemory checks, language by language, that the paged
// system's kernel holds exactly what the in-memory system's kernel holds.
func assertPagedMatchesMemory(t *testing.T, mem, paged []*diffDriver, phase string) {
	t.Helper()
	for i := range mem {
		m, p := kernelSet(t, mem[i].db), kernelSet(t, paged[i].db)
		if fmt.Sprint(m) != fmt.Sprint(p) {
			t.Errorf("%s: %s kernel diverges between memory and paged runs:\n  mem   %v\n  paged %v",
				phase, mem[i].lang, m, p)
		}
	}
}
