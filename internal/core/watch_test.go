package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"mlds/internal/cdc"
	"mlds/internal/kc"
	"mlds/internal/wire"
)

// attachJournal gives a database the file-backed journal the lossless watch
// path rides on.
func attachJournal(t *testing.T, db *Database) {
	t.Helper()
	jf, err := kc.OpenJournalFile(filepath.Join(t.TempDir(), db.Name+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ctrl.AttachJournalFile(jf); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jf.Close() })
}

// nextChange reads one change with a deadline.
func nextChange(t *testing.T, w *cdc.Watcher) cdc.Change {
	t.Helper()
	select {
	case c, ok := <-w.C:
		if !ok {
			t.Fatalf("watch closed early: %v", w.Err())
		}
		return c
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a change")
	}
	panic("unreachable")
}

// drainToReady consumes the initial load and returns the loaded ename set.
func drainToReady(t *testing.T, w *cdc.Watcher) []string {
	t.Helper()
	var names []string
	for {
		c := nextChange(t, w)
		switch c.Op {
		case cdc.OpLoad:
			v, _ := c.Rec.Get("ename")
			names = append(names, v.AsString())
		case cdc.OpReady:
			sort.Strings(names)
			return names
		default:
			t.Fatalf("unexpected %s before ready", c.Op)
		}
	}
}

func TestWatchVerbRecognition(t *testing.T) {
	cases := []struct {
		text, verb string
	}{
		{"WATCH SELECT * FROM emp", "watch"},
		{"  watch select x from f ;", "watch"},
		{"CREATE VIEW v AS SELECT * FROM emp", "create-view"},
		{"create view v as select * from emp;", "create-view"},
		{"DROP VIEW v", "drop-view"},
		{"SHOW VIEWS", "show-views"},
		{"show views;", "show-views"},
	}
	for _, c := range cases {
		verb, _, ok := watchVerb(c.text)
		if !ok || verb != c.verb {
			t.Errorf("watchVerb(%q) = %q, %v; want %q", c.text, verb, ok, c.verb)
		}
	}
	for _, text := range []string{
		"WATCH", "SELECT * FROM emp", "CREATE TABLE t (x INTEGER)",
		"DROP VIEW", "DROP VIEW a b", "SHOW VIEWS now", "BEGIN WORK", "",
	} {
		if verb, _, ok := watchVerb(text); ok {
			t.Errorf("watchVerb(%q) matched %q", text, verb)
		}
	}
}

// TestWatchAcrossLanguages opens WATCH through each of the five language
// interfaces — the statement, the initial load, the change feed and the
// predicate-membership transitions must behave identically whatever the data
// model underneath.
func TestWatchAcrossLanguages(t *testing.T) {
	s := newSystem(t)
	drivers := newDiffDrivers(t, s)
	open := map[string]func(string) (Session, error){
		"sql":    func(db string) (Session, error) { return s.OpenSQL(db) },
		"dli":    func(db string) (Session, error) { return s.OpenDLI(db) },
		"dml":    func(db string) (Session, error) { return s.OpenDML(db) },
		"daplex": func(db string) (Session, error) { return s.OpenDaplex(db) },
		"abdl":   func(db string) (Session, error) { return s.OpenABDL(db) },
	}
	for _, d := range drivers {
		t.Run(d.lang, func(t *testing.T) {
			attachJournal(t, d.db)
			sess, err := open[d.lang](d.db.Name)
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()

			out, err := sess.Execute("WATCH SELECT ename, pay FROM emp WHERE pay >= 800")
			if err != nil {
				t.Fatal(err)
			}
			if out.Watch == nil || out.Rendered != "watch established" {
				t.Fatalf("outcome = %+v", out)
			}
			w := out.Watch
			defer w.Close()
			if names := drainToReady(t, w); len(names) != 0 {
				t.Fatalf("initial load of an empty database = %v", names)
			}

			// A qualifying row arrives, in the language's own dialect.
			d.load(t, diffEmp{"Ann", 900})
			c := nextChange(t, w)
			if c.Op != cdc.OpInsert {
				t.Fatalf("after load: %v", c)
			}
			if v, _ := c.Rec.Get("ename"); v.AsString() != "Ann" {
				t.Fatalf("insert image = %v", c.Rec)
			}
			// A non-qualifying row is invisible.
			d.load(t, diffEmp{"Bob", 100})
			// Dropping Ann under the floor leaves the result set.
			d.setPay(t, "Ann", 200)
			c = nextChange(t, w)
			if c.Op != cdc.OpDelete {
				t.Fatalf("after pay cut: %v (Bob's insert leaked?)", c)
			}
			// Raising Bob over the floor enters it.
			d.setPay(t, "Bob", 850)
			c = nextChange(t, w)
			if c.Op != cdc.OpInsert {
				t.Fatalf("after raise: %v", c)
			}
			if v, _ := c.Rec.Get("ename"); v.AsString() != "Bob" {
				t.Fatalf("raise image = %v", c.Rec)
			}
		})
	}
}

// TestSessionWatchChannelAPI is the first-class Go path: Session.Watch
// without statement text.
func TestSessionWatchChannelAPI(t *testing.T) {
	s := newSystem(t)
	db, err := s.CreateRelational("w_rel", "CREATE TABLE emp (ename CHAR(20), pay INTEGER);")
	if err != nil {
		t.Fatal(err)
	}
	attachJournal(t, db)
	sess, err := s.OpenSQL("w_rel")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Execute("INSERT INTO emp (ename, pay) VALUES ('Ann', 900)"); err != nil {
		t.Fatal(err)
	}

	w, err := sess.Watch("SELECT ename FROM emp WHERE pay >= 800")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if names := drainToReady(t, w); len(names) != 1 || names[0] != "Ann" {
		t.Fatalf("initial load = %v", names)
	}
	if _, err := sess.Execute("INSERT INTO emp (ename, pay) VALUES ('Cay', 820)"); err != nil {
		t.Fatal(err)
	}
	if c := nextChange(t, w); c.Op != cdc.OpInsert {
		t.Fatalf("change = %v", c)
	}

	// Bad queries are parse errors, not watches.
	if _, err := sess.Watch("DELETE FROM emp"); err == nil {
		t.Fatal("non-SELECT watch accepted")
	}
	var pe *ParseError
	if _, err := sess.Watch("SELECT COUNT(*) FROM emp"); !errors.As(err, &pe) {
		t.Fatalf("aggregate watch error = %v, want ParseError", err)
	}
}

// viewSet renders a view's rows for comparison with a kernel recompute.
func viewSet(v *cdc.View) []string {
	var out []string
	for _, sr := range v.Rows() {
		name, _ := sr.Rec.Get("ename")
		pay, _ := sr.Rec.Get("pay")
		out = append(out, fmt.Sprintf("%s=%d", name.AsString(), pay.AsInt()))
	}
	sort.Strings(out)
	return out
}

// recomputeSet answers the view's defining query directly against the kernel.
func recomputeSet(t *testing.T, db *Database, minPay int64) []string {
	t.Helper()
	res, err := db.ExecABDL(fmt.Sprintf("RETRIEVE ((FILE = emp) AND (pay >= %d)) (ename, pay)", minPay))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, sr := range res.Records {
		name, _ := sr.Rec.Get("ename")
		pay, _ := sr.Rec.Get("pay")
		out = append(out, fmt.Sprintf("%s=%d", name.AsString(), pay.AsInt()))
	}
	sort.Strings(out)
	return out
}

func waitView(t *testing.T, v *cdc.View) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := v.WaitCaughtUp(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestViewVerbs drives CREATE VIEW / SHOW VIEWS / DROP VIEW through a SQL
// session and checks the registry semantics and error codes.
func TestViewVerbs(t *testing.T) {
	s := newSystem(t)
	db, err := s.CreateRelational("v_rel", "CREATE TABLE emp (ename CHAR(20), pay INTEGER);")
	if err != nil {
		t.Fatal(err)
	}
	attachJournal(t, db)
	sess, err := s.OpenSQL("v_rel")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	must := func(stmt string) *Outcome {
		t.Helper()
		out, err := sess.Execute(stmt)
		if err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		return out
	}

	must("INSERT INTO emp (ename, pay) VALUES ('Ann', 900)")
	must("INSERT INTO emp (ename, pay) VALUES ('Bob', 700)")

	out := must("CREATE VIEW wellpaid AS SELECT ename, pay FROM emp WHERE pay >= 800")
	if out.Rendered != "view wellpaid over emp created" {
		t.Fatalf("rendered = %q", out.Rendered)
	}
	v, ok := db.View("WELLPAID") // lookup is case-insensitive
	if !ok {
		t.Fatal("view not registered")
	}
	// CREATE VIEW blocks on the initial load: queryable immediately.
	if got := viewSet(v); fmt.Sprint(got) != fmt.Sprint([]string{"Ann=900"}) {
		t.Fatalf("initial view = %v", got)
	}

	// Incremental maintenance across the languages' shared kernel.
	must("UPDATE emp SET pay = 850 WHERE ename = 'Bob'")
	waitView(t, v)
	if got, want := viewSet(v), recomputeSet(t, db, 800); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after update: view %v != recompute %v", got, want)
	}

	if _, err := sess.Execute("CREATE VIEW wellpaid AS SELECT ename FROM emp"); !errors.Is(err, ErrDupView) {
		t.Fatalf("duplicate view error = %v", err)
	}
	if CodeOf(errors.Unwrap(fmt.Errorf("w: %w", ErrDupView))) != wire.CodeView {
		t.Fatal("ErrDupView does not map to CodeView")
	}

	show := must("SHOW VIEWS")
	if show.Rendered == "no views" || !strings.Contains(show.Rendered, "wellpaid") {
		t.Fatalf("SHOW VIEWS = %q", show.Rendered)
	}

	if _, err := sess.Execute("CREATE VIEW bad AS SELECT nosuch FROM emp"); err == nil {
		t.Fatal("view over an unknown column accepted")
	}
	if _, ok := db.View("bad"); ok {
		t.Fatal("failed view left registered")
	}

	out = must("DROP VIEW wellpaid")
	if out.Rendered != "view wellpaid dropped" {
		t.Fatalf("rendered = %q", out.Rendered)
	}
	if _, err := sess.Execute("DROP VIEW wellpaid"); !errors.Is(err, ErrNoView) {
		t.Fatalf("double drop error = %v", err)
	}
	if must("SHOW VIEWS").Rendered != "no views" {
		t.Fatal("view survived DROP VIEW")
	}
}

// TestCrossModelView is the tentpole's cross-model case, validated the way
// the cross-model differential suite validates the languages: a
// relational-style materialized view (SQL text, row set semantics) maintained
// over the *functional* database's change stream, driven through Daplex. At
// every quiescent point the view must equal a full recomputation against the
// functional database's kernel.
func TestCrossModelView(t *testing.T) {
	s := newSystem(t)
	db, err := s.CreateFunctional("payroll_fun", `
DATABASE payroll IS
ENTITY emp IS
    ename : STRING(20);
    pay   : INTEGER;
END ENTITY;

END DATABASE;
`)
	if err != nil {
		t.Fatal(err)
	}
	attachJournal(t, db)
	sess, err := s.OpenDaplex("payroll_fun")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	must := func(stmt string) {
		t.Helper()
		if _, err := sess.Execute(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}

	// The view is created through the Daplex session with SQL view text —
	// the cross-model seam itself.
	must("CREATE VIEW wellpaid AS SELECT ename, pay FROM emp WHERE pay >= 800")
	v, ok := db.View("wellpaid")
	if !ok {
		t.Fatal("view not registered")
	}

	check := func(phase string) {
		t.Helper()
		waitView(t, v)
		got, want := viewSet(v), recomputeSet(t, db, 800)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: view %v != functional recompute %v", phase, got, want)
		}
	}

	// The differential suite's workload, spoken in Daplex.
	for _, e := range []diffEmp{{"Ann", 900}, {"Bob", 700}, {"Cay", 800}, {"Fay", 600}} {
		must(fmt.Sprintf("CREATE emp (ename := '%s', pay := %d);", e.name, e.pay))
	}
	check("after load")
	if got := viewSet(v); fmt.Sprint(got) != fmt.Sprint([]string{"Ann=900", "Cay=800"}) {
		t.Fatalf("after load: view = %v", got)
	}

	must("LET pay OF emp WHERE ename = 'Bob' BE 850;")
	check("after update into the view")

	must("LET pay OF emp WHERE ename = 'Cay' BE 100;")
	check("after update out of the view")

	must("DESTROY emp WHERE ename = 'Ann';")
	check("after delete")

	if got := viewSet(v); fmt.Sprint(got) != fmt.Sprint([]string{"Bob=850"}) {
		t.Fatalf("final view = %v", got)
	}
}

// TestSystemCloseStopsViews: System.Close must stop view maintenance before
// the kernels go down, leaving views closed without error.
func TestSystemCloseStopsViews(t *testing.T) {
	s := NewSystem(Config{})
	db, err := s.CreateRelational("c_rel", "CREATE TABLE emp (ename CHAR(20), pay INTEGER);")
	if err != nil {
		t.Fatal(err)
	}
	attachJournal(t, db)
	def, err := cdc.ParseQuery("SELECT ename FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	v, err := db.CreateView("v1", def)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	select {
	case <-v.Ready():
	default:
		t.Fatal("view not settled after Close")
	}
	if err := v.Err(); err != nil {
		t.Fatalf("view ended with error: %v", err)
	}
	if len(db.Views()) != 0 {
		t.Fatal("views survived System.Close")
	}
}
