package core

import (
	"errors"
	"testing"

	"mlds/internal/txn"
)

// TestBeginWorkReadOnly: the BEGIN WORK READ ONLY statement opens a snapshot
// transaction — its reads are repeatable against concurrent committed writes,
// and its mutations fail with txn.ErrReadOnly without ending the transaction.
func TestBeginWorkReadOnly(t *testing.T) {
	s := newSystem(t)
	if _, err := s.CreateRelational("shop", "CREATE TABLE emp (ename CHAR(20), pay INTEGER);"); err != nil {
		t.Fatal(err)
	}
	reader, err := s.OpenSQL("shop")
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	writer, err := s.OpenSQL("shop")
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	if _, err := writer.Execute("INSERT INTO emp (ename, pay) VALUES ('Ann', 900)"); err != nil {
		t.Fatal(err)
	}

	out, err := reader.Execute("BEGIN WORK READ ONLY")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rendered != "begin-ro" {
		t.Fatalf("rendered %q, want begin-ro", out.Rendered)
	}
	if !reader.InTxn() {
		t.Fatal("not in transaction after BEGIN WORK READ ONLY")
	}

	count := func() int {
		rs, err := reader.Execute("SELECT ename FROM emp")
		if err != nil {
			t.Fatal(err)
		}
		return len(rs.SQL.Rows)
	}
	if n := count(); n != 1 {
		t.Fatalf("snapshot sees %d rows, want 1", n)
	}

	// Commit a write after the snapshot pinned; the snapshot must not move.
	if _, err := writer.Execute("INSERT INTO emp (ename, pay) VALUES ('Bob', 700)"); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 1 {
		t.Fatalf("snapshot moved: sees %d rows, want 1", n)
	}

	// Mutations are rejected; the transaction survives the failed statement.
	if _, err := reader.Execute("INSERT INTO emp (ename, pay) VALUES ('Cay', 800)"); !errors.Is(err, txn.ErrReadOnly) {
		t.Fatalf("mutation in read-only txn: %v, want ErrReadOnly", err)
	}
	if !reader.InTxn() {
		t.Fatal("read-only transaction ended by a rejected mutation")
	}
	if n := count(); n != 1 {
		t.Fatalf("snapshot broken after rejected mutation: %d rows", n)
	}

	if _, err := reader.Execute("COMMIT"); err != nil {
		t.Fatal(err)
	}
	// Out of the snapshot: the session reads current state again.
	if n := count(); n != 2 {
		t.Fatalf("after COMMIT sees %d rows, want 2", n)
	}
}

// TestSnapshotSessionOption: a session opened with SnapshotSession runs every
// implicit statement in its own snapshot — reads never block on writers'
// locks and mutations fail with ErrReadOnly.
func TestSnapshotSessionOption(t *testing.T) {
	s := newSystem(t)
	if _, err := s.CreateRelational("shop", "CREATE TABLE emp (ename CHAR(20), pay INTEGER);"); err != nil {
		t.Fatal(err)
	}
	writer, err := s.OpenSQL("shop")
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	if _, err := writer.Execute("INSERT INTO emp (ename, pay) VALUES ('Ann', 900)"); err != nil {
		t.Fatal(err)
	}

	reader, err := s.Open("shop", "sql", SnapshotSession())
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	// The writer holds an exclusive lock in an open transaction; a snapshot
	// read passes straight through and sees only committed state.
	if _, err := writer.Execute("BEGIN WORK"); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Execute("UPDATE emp SET pay = 999 WHERE ename = 'Ann'"); err != nil {
		t.Fatal(err)
	}
	rs, err := reader.Execute("SELECT pay FROM emp WHERE ename = 'Ann'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.SQL.Rows) != 1 {
		t.Fatalf("snapshot session read %d rows, want 1", len(rs.SQL.Rows))
	}
	if got := rs.SQL.Rows[0][0].AsInt(); got != 900 {
		t.Fatalf("snapshot session sees uncommitted pay=%d", got)
	}
	if _, err := writer.Execute("COMMIT"); err != nil {
		t.Fatal(err)
	}

	// A fresh implicit statement pins a fresh snapshot: the commit is seen.
	rs, err = reader.Execute("SELECT pay FROM emp WHERE ename = 'Ann'")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.SQL.Rows[0][0].AsInt(); got != 999 {
		t.Fatalf("snapshot session stuck at pay=%d after commit", got)
	}

	// Mutations through the snapshot session are rejected.
	if _, err := reader.Execute("DELETE FROM emp WHERE ename = 'Ann'"); !errors.Is(err, txn.ErrReadOnly) {
		t.Fatalf("mutation through snapshot session: %v, want ErrReadOnly", err)
	}

	// Explicit transactions still work on the same session.
	if err := reader.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.Execute("SELECT ename FROM emp"); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.Execute("COMMIT"); err != nil {
		t.Fatal(err)
	}
}

// TestReadOnlyVerbAcrossInterfaces: every language interface accepts the
// READ ONLY spellings of BEGIN.
func TestReadOnlyVerbAcrossInterfaces(t *testing.T) {
	s := newSystem(t)
	newLoadedUniv(t, s)
	sess, err := s.Open("university", "abdl")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for _, stmt := range []string{
		"BEGIN READ ONLY",
		"BEGIN WORK READ ONLY;",
		"begin transaction read only",
		"START TRANSACTION READ ONLY",
	} {
		out, err := sess.Execute(stmt)
		if err != nil {
			t.Fatalf("%q: %v", stmt, err)
		}
		if out.Rendered != "begin-ro" {
			t.Fatalf("%q rendered %q", stmt, out.Rendered)
		}
		if _, err := sess.Execute("COMMIT"); err != nil {
			t.Fatal(err)
		}
	}
}
