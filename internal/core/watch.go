package core

import (
	"fmt"
	"sort"
	"strings"

	"mlds/internal/cdc"
	"mlds/internal/sql"
)

// This file is the change-capture surface of the engine: the WATCH and
// CREATE VIEW / DROP VIEW / SHOW VIEWS verbs every language interface
// accepts (intercepted in Database.run, like the transaction verbs, so all
// five front ends share one spelling), the Session.Watch channel API, and
// the database's registry of live materialized views.
//
// The query after WATCH and inside CREATE VIEW ... AS is a single-file SQL
// SELECT over the database's kernel files. Because every data model maps
// onto kernel files, the verbs work identically in every session language —
// a relational view over a functional database is the cross-model case the
// paper's shared-kernel architecture makes cheap.

// openWatch parses the WATCH query and starts a watcher on the database.
func (db *Database) openWatch(text string) (*cdc.Watcher, error) {
	def, err := cdc.ParseQuery(text)
	if err != nil {
		return nil, &ParseError{Err: err}
	}
	db.vmu.Lock()
	db.watchSeq++
	name := fmt.Sprintf("w%d", db.watchSeq)
	db.vmu.Unlock()
	return cdc.Open(db.Ctrl, def, cdc.Options{Metrics: db.reg, DB: db.Name, Name: name})
}

// Watch opens a change subscription on the session's database (txnState
// implements it once for all five local session types).
func (s *txnState) Watch(query string) (*cdc.Watcher, error) {
	return s.db.openWatch(query)
}

// CreateView starts an incrementally-maintained materialized view and
// registers it under name. It blocks until the initial load is applied, so
// the view is queryable the moment the statement returns.
func (db *Database) CreateView(name string, def cdc.Def) (*cdc.View, error) {
	key := strings.ToLower(name)
	db.vmu.Lock()
	if _, dup := db.views[key]; dup {
		db.vmu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDupView, name)
	}
	// Reserve the name before the (slow) initial load so two concurrent
	// CREATE VIEWs cannot both win.
	db.views[key] = nil
	db.vmu.Unlock()
	v, err := cdc.OpenView(db.Ctrl, name, def, cdc.Options{Metrics: db.reg, DB: db.Name})
	if err == nil {
		<-v.Ready()
		if verr := v.Err(); verr != nil {
			v.Close()
			err = verr
		}
	}
	db.vmu.Lock()
	if err != nil {
		delete(db.views, key)
	} else {
		db.views[key] = v
	}
	db.vmu.Unlock()
	return v, err
}

// DropView stops the named view and forgets it.
func (db *Database) DropView(name string) error {
	key := strings.ToLower(name)
	db.vmu.Lock()
	v, ok := db.views[key]
	delete(db.views, key)
	db.vmu.Unlock()
	if !ok || v == nil {
		return fmt.Errorf("%w: %q", ErrNoView, name)
	}
	v.Close()
	return nil
}

// View returns the named live view.
func (db *Database) View(name string) (*cdc.View, bool) {
	db.vmu.Lock()
	defer db.vmu.Unlock()
	v, ok := db.views[strings.ToLower(name)]
	return v, ok && v != nil
}

// Views lists the database's live views sorted by name.
func (db *Database) Views() []*cdc.View {
	db.vmu.Lock()
	out := make([]*cdc.View, 0, len(db.views))
	for _, v := range db.views {
		if v != nil {
			out = append(out, v)
		}
	}
	db.vmu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// closeViews stops every live view; System.Close runs it before the kernel
// goes down so view maintenance never executes against a closed kernel.
func (db *Database) closeViews() {
	for _, v := range db.Views() {
		v.Close()
	}
	db.vmu.Lock()
	db.views = make(map[string]*cdc.View)
	db.vmu.Unlock()
}

// watchVerb recognises the change-capture statements shared by every
// language interface: WATCH <select>, CREATE VIEW <name> AS <select>,
// DROP VIEW <name>, SHOW VIEWS. Like txnVerb it normalises case and a
// trailing semicolon; the statement text itself is returned as arg for the
// verbs that parse further.
func watchVerb(text string) (verb, arg string, ok bool) {
	s := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(text), ";"))
	f := strings.Fields(s)
	up := func(i int) string {
		if i < len(f) {
			return strings.ToUpper(f[i])
		}
		return ""
	}
	switch up(0) {
	case "WATCH":
		if len(f) > 1 {
			return "watch", s, true
		}
	case "CREATE":
		if up(1) == "VIEW" {
			return "create-view", s, true
		}
	case "DROP":
		if up(1) == "VIEW" && len(f) == 3 {
			return "drop-view", f[2], true
		}
	case "SHOW":
		if up(1) == "VIEWS" && len(f) == 2 {
			return "show-views", "", true
		}
	}
	return "", "", false
}

// watchControl applies one change-capture verb, filling the outcome.
func (db *Database) watchControl(verb, arg string, out *Outcome) error {
	switch verb {
	case "watch":
		w, err := db.openWatch(arg)
		if err != nil {
			return err
		}
		out.Watch = w
		out.Rendered = "watch established"
	case "create-view":
		st, err := sql.Parse(arg)
		if err != nil {
			return &ParseError{Err: err}
		}
		cv, isView := st.(*sql.CreateView)
		if !isView {
			return &ParseError{Err: fmt.Errorf("core: %q did not parse as CREATE VIEW", arg)}
		}
		def, err := cdc.CompileSelect(cv.Inner)
		if err != nil {
			return &ParseError{Err: err}
		}
		v, err := db.CreateView(cv.Name, def)
		if err != nil {
			return err
		}
		out.Rendered = fmt.Sprintf("view %s over %s created", v.Name, def.File)
	case "drop-view":
		if err := db.DropView(arg); err != nil {
			return err
		}
		out.Rendered = fmt.Sprintf("view %s dropped", arg)
	case "show-views":
		var b strings.Builder
		for _, v := range db.Views() {
			fmt.Fprintf(&b, "%s: %s (pos %d)\n", v.Name, v.Def.String(), v.Pos())
		}
		if b.Len() == 0 {
			out.Rendered = "no views"
		} else {
			out.Rendered = strings.TrimRight(b.String(), "\n")
		}
	}
	return nil
}
