package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"mlds/internal/mbds"
	"mlds/internal/obs"
)

func newShop(t *testing.T, cfg Config) (*System, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Kernel = mbds.DefaultConfig(2)
	cfg.Metrics = reg
	s := NewSystem(cfg)
	t.Cleanup(s.Close)
	if _, err := s.CreateRelational("shop", "CREATE TABLE emp (ename CHAR(20) NOT NULL, pay INTEGER);"); err != nil {
		t.Fatal(err)
	}
	return s, reg
}

// TestPlanCacheHitsAcrossSessions: re-running a statement — even from a
// different session, even with different whitespace layout — serves the
// cached parse, and the hit/miss counters land in the metrics exposition.
func TestPlanCacheHitsAcrossSessions(t *testing.T) {
	s, reg := newShop(t, Config{})
	sess, err := s.Open("shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("INSERT INTO emp (ename, pay) VALUES ('ann', 10);"); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT ename FROM emp WHERE pay = 10;"
	out1, err := sess.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	// Same shape, different layout, different session.
	sess2, err := s.Open("shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	out2, err := sess2.Execute("SELECT ename\n\tFROM emp   WHERE pay = 10;")
	if err != nil {
		t.Fatal(err)
	}
	if len(out1.SQL.Rows) != 1 || len(out2.SQL.Rows) != 1 {
		t.Fatalf("rows = %d then %d, want 1 and 1", len(out1.SQL.Rows), len(out2.SQL.Rows))
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `mlds_plan_cache_hits_total{db="shop",language="sql"} 1`) {
		t.Errorf("exposition missing the plan-cache hit:\n%s", text)
	}
	if !strings.Contains(text, `mlds_plan_cache_misses_total{db="shop",language="sql"} 2`) {
		t.Errorf("exposition missing the plan-cache misses:\n%s", text)
	}
}

// TestPlanCacheCountersConsistentUnderConcurrency: with many sessions racing
// the same statements, every execution is counted exactly once as either a
// hit or a miss — hits + misses equals the number of statements executed.
// Run under -race.
func TestPlanCacheCountersConsistentUnderConcurrency(t *testing.T) {
	const sessions, rounds, shapes = 8, 30, 4
	s, reg := newShop(t, Config{})
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		sess, err := s.Open("shop", "sql")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sess.Close()
			for r := 0; r < rounds; r++ {
				q := fmt.Sprintf("SELECT ename FROM emp WHERE pay = %d;", r%shapes)
				if _, err := sess.Execute(q); err != nil {
					t.Errorf("%s: %v", q, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	dbL, langL := obs.L("db", "shop"), obs.L("language", "sql")
	hits := reg.Counter("mlds_plan_cache_hits_total", "", dbL, langL).Value()
	misses := reg.Counter("mlds_plan_cache_misses_total", "", dbL, langL).Value()
	if hits+misses != sessions*rounds {
		t.Errorf("hits(%d) + misses(%d) = %d, want %d: an execution was dropped or double-counted",
			hits, misses, hits+misses, sessions*rounds)
	}
	// Every distinct shape misses at least once; the cache must have served
	// the overwhelming remainder.
	if misses < shapes {
		t.Errorf("misses = %d, want >= %d distinct shapes", misses, shapes)
	}
	if hits == 0 {
		t.Error("no plan-cache hits across concurrent repeat executions")
	}
}

// TestPlanCacheLiteralsDoNotCollide: two statements differing only inside a
// quoted literal must not share a plan.
func TestPlanCacheLiteralsDoNotCollide(t *testing.T) {
	s, _ := newShop(t, Config{})
	sess, err := s.Open("shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range []string{
		"INSERT INTO emp (ename, pay) VALUES ('a b', 1);",
		"INSERT INTO emp (ename, pay) VALUES ('a  b', 2);",
	} {
		if _, err := sess.Execute(stmt); err != nil {
			t.Fatal(err)
		}
	}
	out, err := sess.Execute("SELECT ename FROM emp WHERE pay = 2;")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.SQL.Rows) != 1 || out.SQL.Rows[0][0].AsString() != "a  b" {
		t.Fatalf("rows = %v, want the double-spaced literal", out.SQL.Rows)
	}
}

// TestPlanCacheDisabled: a negative PlanCacheSize turns the cache off — every
// statement parses and no hit counter appears.
func TestPlanCacheDisabled(t *testing.T) {
	s, reg := newShop(t, Config{PlanCacheSize: -1})
	sess, err := s.Open("shop", "sql")
	if err != nil {
		t.Fatal(err)
	}
	const q = "SELECT ename FROM emp;"
	for i := 0; i < 2; i++ {
		if _, err := sess.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "mlds_plan_cache") {
		t.Errorf("disabled plan cache still exported counters:\n%s", buf.String())
	}
}
