package core

import (
	"bytes"
	"sort"
	"testing"
)

func TestSaveRestoreFunctionalDatabase(t *testing.T) {
	s1 := newSystem(t)
	db1 := newLoadedUniv(t, s1)

	// Mutate state through both interfaces so the image reflects live data.
	dml, err := s1.OpenDML("university")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"MOVE 'Persisted Person' TO pname IN person",
		"MOVE 424242424 TO ssn IN person",
		"STORE person",
	} {
		if _, err := dml.Execute(line); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := db1.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh system with a different backend count.
	s2 := NewSystem(Config{Kernel: kernelWith(3)})
	t.Cleanup(s2.Close)
	db2, err := s2.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Name != "university" || db2.Model != FunctionalModel {
		t.Fatalf("restored db = %+v", db2)
	}
	if db1.Kernel.Len() != db2.Kernel.Len() {
		t.Fatalf("record counts: %d vs %d", db1.Kernel.Len(), db2.Kernel.Len())
	}

	// The stored person survives with its data.
	dml2, err := s2.OpenDML("university")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dml2.Execute("MOVE 424242424 TO ssn IN person"); err != nil {
		t.Fatal(err)
	}
	out, err := dml2.Execute("FIND ANY person USING ssn IN person")
	if err != nil {
		t.Fatal(err)
	}
	if !out.DML.Found {
		t.Fatal("persisted person lost")
	}
	got, err := dml2.Execute("GET pname IN person")
	if err != nil {
		t.Fatal(err)
	}
	if got.DML.Values["pname"].AsString() != "Persisted Person" {
		t.Errorf("restored values = %v", got.DML.Values)
	}

	// Key allocation resumes past restored keys: a new STORE must not
	// collide with any existing entity key.
	for _, line := range []string{
		"MOVE 'After Restore' TO pname IN person",
		"MOVE 424242425 TO ssn IN person",
	} {
		if _, err := dml2.Execute(line); err != nil {
			t.Fatal(err)
		}
	}
	st, err := dml2.Execute("STORE person")
	if err != nil {
		t.Fatal(err)
	}
	keys := map[int64]bool{}
	snap, err := db2.Kernel.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range snap {
		if sr.Rec.File() != "person" {
			continue
		}
		if v, ok := sr.Rec.Get("person"); ok {
			if keys[v.AsInt()] && v.AsInt() == st.DML.Key {
				// the new key appearing once is fine; collision means the
				// same key on two different ssn values — checked below
				continue
			}
			keys[v.AsInt()] = true
		}
	}
	if !keys[st.DML.Key] {
		t.Error("new person record missing from snapshot")
	}

	// Daplex sees the restored data identically.
	dap, err := s2.OpenDaplex("university")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := dap.Execute("FOR EACH student WHERE major = 'Computer Science' PRINT pname;")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range rows.Rows {
		names = append(names, r.Values["pname"][0].AsString())
	}
	sort.Strings(names)
	if len(names) != 6 {
		t.Errorf("restored CS students = %v", names)
	}
}

func TestSaveRestoreNetworkDatabase(t *testing.T) {
	s1 := newSystem(t)
	db1, err := s1.CreateNetwork("shop", `
SCHEMA NAME IS shop
RECORD NAME IS emp
    02 ename TYPE IS CHARACTER 20
    02 pay TYPE IS FIXED
`)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := s1.OpenDML("shop")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"MOVE 'Ann' TO ename IN emp",
		"MOVE 900 TO pay IN emp",
		"STORE emp",
	} {
		if _, err := sess.Execute(line); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := newSystem(t)
	db2, err := s2.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Model != NetworkModel || db2.Kernel.Len() != 1 {
		t.Fatalf("restored = %+v len=%d", db2.Model, db2.Kernel.Len())
	}
	sess2, err := s2.OpenDML("shop")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Execute("MOVE 'Ann' TO ename IN emp"); err != nil {
		t.Fatal(err)
	}
	out, err := sess2.Execute("FIND ANY emp USING ename IN emp")
	if err != nil {
		t.Fatal(err)
	}
	if !out.DML.Found {
		t.Error("restored network record lost")
	}
}

func TestRestoreGarbage(t *testing.T) {
	s := newSystem(t)
	if _, err := s.Restore(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Error("garbage image accepted")
	}
}

// TestImagePlusJournalRecovery is the production recovery story: restore the
// last saved image, then replay the journal of mutations made since.
func TestImagePlusJournalRecovery(t *testing.T) {
	s1 := newSystem(t)
	db1 := newLoadedUniv(t, s1)

	// Checkpoint.
	var img bytes.Buffer
	if err := db1.Save(&img); err != nil {
		t.Fatal(err)
	}
	// Journal subsequent session mutations.
	var journal bytes.Buffer
	db1.Ctrl.AttachJournal(&journal)
	dml, err := s1.OpenDML("university")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"MOVE 'Post Checkpoint' TO pname IN person",
		"MOVE 777000111 TO ssn IN person",
		"STORE person",
		"MOVE 'Advanced Database' TO title IN course",
		"FIND ANY course USING title IN course",
		"MOVE 6 TO credits IN course",
		"MODIFY credits IN course",
	} {
		if _, err := dml.Execute(line); err != nil {
			t.Fatalf("%s: %v", line, err)
		}
	}

	// "Crash": recover into a fresh system from image + journal.
	s2 := newSystem(t)
	db2, err := s2.Restore(&img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Ctrl.ReplayJournal(&journal); err != nil {
		t.Fatal(err)
	}
	dml2, err := s2.OpenDML("university")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dml2.Execute("MOVE 777000111 TO ssn IN person"); err != nil {
		t.Fatal(err)
	}
	out, err := dml2.Execute("FIND ANY person USING ssn IN person")
	if err != nil {
		t.Fatal(err)
	}
	if !out.DML.Found {
		t.Error("journalled STORE lost in recovery")
	}
	if _, err := dml2.Execute("MOVE 'Advanced Database' TO title IN course"); err != nil {
		t.Fatal(err)
	}
	if _, err := dml2.Execute("FIND ANY course USING title IN course"); err != nil {
		t.Fatal(err)
	}
	got, err := dml2.Execute("GET credits IN course")
	if err != nil {
		t.Fatal(err)
	}
	if got.DML.Values["credits"].AsInt() != 6 {
		t.Errorf("journalled MODIFY lost: credits = %v", got.DML.Values)
	}
}
