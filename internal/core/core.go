// Package core is the MLDS engine: the language interface layer (LIL), the
// database catalog, and the user sessions that tie the kernel mapping,
// kernel controller and kernel formatting subsystems together over the
// Multi-Backend Database System.
//
// The catalog mirrors the dbid_node union of the thesis's shared data
// structures: each database entry carries the model it was defined in. A
// CODASYL-DML session may open either a network database (served natively)
// or a functional database — in which case LIL invokes the schema
// transformer and the session operates on the transformed schema, which is
// the thesis's contribution.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/cdc"
	"mlds/internal/dapkms"
	"mlds/internal/daplex"
	"mlds/internal/funcmodel"
	"mlds/internal/hiekms"
	"mlds/internal/hiemodel"
	"mlds/internal/kc"
	"mlds/internal/kdb"
	"mlds/internal/kms"
	"mlds/internal/loader"
	"mlds/internal/mbds"
	"mlds/internal/netddl"
	"mlds/internal/netmodel"
	"mlds/internal/obs"
	"mlds/internal/plancache"
	"mlds/internal/relkms"
	"mlds/internal/relmodel"
	"mlds/internal/sql"
	"mlds/internal/xform"
)

// Sentinel errors for catalog lookups. Open errors wrap them, so callers
// distinguish "no such database" from "wrong model for this interface" with
// errors.Is.
var (
	// ErrNoDatabase reports a name absent from the catalog.
	ErrNoDatabase = errors.New("core: no such database")
	// ErrWrongModel reports a database whose model the requested language
	// interface cannot serve.
	ErrWrongModel = errors.New("core: language interface cannot serve this database model")
)

// Model identifies the data model a database was defined in. The catalog
// mirrors the full MLDS model set of Figure 1.2.
type Model int

// Database models.
const (
	NetworkModel Model = iota
	FunctionalModel
	HierarchicalModel
	RelationalModel
)

// String names the model.
func (m Model) String() string {
	switch m {
	case NetworkModel:
		return "network"
	case FunctionalModel:
		return "functional"
	case HierarchicalModel:
		return "hierarchical"
	case RelationalModel:
		return "relational"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Config configures the engine's kernel database systems and its
// observability.
type Config struct {
	Kernel mbds.Config // per-database kernel configuration

	// Metrics receives every database's counters and histograms; nil makes
	// the system create its own registry (exposed by System.Metrics).
	Metrics *obs.Registry
	// Tracing records a per-request span tree on every session Outcome.
	Tracing bool
	// SlowThreshold routes statements at or above this wall time into the
	// slow log (System.SlowLog); zero disables it.
	SlowThreshold time.Duration
	// SlowLogSize bounds the slow log ring (default 64).
	SlowLogSize int
	// PlanCacheSize bounds the shared statement-plan cache (parsed ASTs
	// keyed by language and normalized statement shape). Zero uses
	// plancache.DefaultSize; a negative size disables plan caching.
	PlanCacheSize int
	// TxnLockTimeout bounds every transaction lock wait; a waiter past it
	// aborts with txn.ErrLockTimeout. Zero uses txn.DefaultLockTimeout.
	TxnLockTimeout time.Duration
}

// DefaultConfig uses a 4-backend kernel per database.
func DefaultConfig() Config {
	return Config{Kernel: mbds.DefaultConfig(4)}
}

// System is one MLDS instance.
type System struct {
	cfg     Config
	metrics *obs.Registry
	slow    *obs.SlowLog
	plans   *plancache.Cache

	mu  sync.Mutex
	dbs map[string]*Database
}

// Database is one catalog entry: its defining model, schemas, kernel
// database system and controller. A functional database additionally holds
// its transformed network schema (built when it is created, so CODASYL-DML
// sessions can open it immediately).
type Database struct {
	Name    string
	Model   Model
	Fun     *funcmodel.Schema // functional databases
	Mapping *xform.Mapping    // functional databases: the schema transformation
	Net     *netmodel.Schema  // network view (native or transformed)
	Rel     *relmodel.Schema  // relational databases
	Hie     *hiemodel.Schema  // hierarchical databases
	AB      *xform.ABSchema   // kernel schema (network/functional databases)
	Dir     *abdm.Directory   // kernel directory (all models)
	Kernel  *mbds.System
	Ctrl    *kc.Controller

	reg     *obs.Registry    // the system's metrics registry
	slow    *obs.SlowLog     // the system's slow-request log
	plans   *plancache.Cache // the system's shared statement-plan cache
	tracing bool

	// Live materialized views (CREATE VIEW), keyed by lower-cased name. A nil
	// entry is a name reserved by an in-flight CREATE VIEW. watchSeq names
	// anonymous watches for their lag gauges.
	vmu      sync.Mutex
	views    map[string]*cdc.View
	watchSeq uint64
}

// NewSystem builds an empty MLDS instance.
func NewSystem(cfg Config) *System {
	if cfg.Kernel.Backends == 0 {
		cfg.Kernel = mbds.DefaultConfig(4)
	}
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	var plans *plancache.Cache
	if cfg.PlanCacheSize >= 0 {
		plans = plancache.New(cfg.PlanCacheSize)
	}
	return &System{
		cfg:     cfg,
		metrics: metrics,
		slow:    obs.NewSlowLog(cfg.SlowThreshold, cfg.SlowLogSize),
		plans:   plans,
		dbs:     make(map[string]*Database),
	}
}

// Metrics returns the system's metrics registry, ready for exposition via
// obs.Handler or mbdsnet.ServeOps.
func (s *System) Metrics() *obs.Registry { return s.metrics }

// SlowLog returns the system's slow-request log.
func (s *System) SlowLog() *obs.SlowLog { return s.slow }

// Close shuts down every database's views and kernel — views first, so view
// maintenance never executes against a closed kernel.
func (s *System) Close() {
	s.mu.Lock()
	dbs := make([]*Database, 0, len(s.dbs))
	for _, db := range s.dbs {
		dbs = append(dbs, db)
	}
	s.dbs = make(map[string]*Database)
	s.mu.Unlock()
	for _, db := range dbs {
		db.closeViews()
		db.Kernel.Close()
	}
}

// CreateFunctional defines a new functional database from Daplex DDL text.
// The schema transformer runs immediately, so the database is accessible to
// both the Daplex and the CODASYL-DML interfaces.
func (s *System) CreateFunctional(name, ddl string) (*Database, error) {
	fun, err := daplex.ParseSchema(ddl)
	if err != nil {
		return nil, err
	}
	m, err := xform.FunToNet(fun)
	if err != nil {
		return nil, err
	}
	ab, err := xform.DeriveAB(m)
	if err != nil {
		return nil, err
	}
	return s.register(&Database{
		Name: name, Model: FunctionalModel,
		Fun: fun, Mapping: m, Net: m.Net, AB: ab, Dir: ab.Dir,
	})
}

// CreateNetwork defines a new network database from CODASYL DDL text.
func (s *System) CreateNetwork(name, ddl string) (*Database, error) {
	net, err := netddl.Parse(ddl)
	if err != nil {
		return nil, err
	}
	ab, err := xform.DeriveABNative(net)
	if err != nil {
		return nil, err
	}
	return s.register(&Database{
		Name: name, Model: NetworkModel,
		Net: net, AB: ab, Dir: ab.Dir,
	})
}

// CreateHierarchical defines a new hierarchical database from DBD text,
// served by the DL/I language interface.
func (s *System) CreateHierarchical(name, dbd string) (*Database, error) {
	hie, err := hiemodel.Parse(dbd)
	if err != nil {
		return nil, err
	}
	dir, err := hiekms.DeriveAB(hie)
	if err != nil {
		return nil, err
	}
	return s.register(&Database{
		Name: name, Model: HierarchicalModel,
		Hie: hie, Dir: dir,
	})
}

// CreateRelational defines a new relational database from SQL CREATE TABLE
// text, served by the SQL language interface.
func (s *System) CreateRelational(name, ddl string) (*Database, error) {
	rel, err := sql.ParseDDL(name, ddl)
	if err != nil {
		return nil, err
	}
	dir, err := relkms.DeriveAB(rel)
	if err != nil {
		return nil, err
	}
	return s.register(&Database{
		Name: name, Model: RelationalModel,
		Rel: rel, Dir: dir,
	})
}

func (s *System) register(db *Database) (*Database, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.dbs[db.Name]; dup {
		return nil, fmt.Errorf("core: database %q already exists", db.Name)
	}
	kcfg := s.cfg.Kernel
	kcfg.Metrics = s.metrics
	kcfg.DBName = db.Name
	kernel, err := mbds.New(db.Dir, kcfg)
	if err != nil {
		return nil, err
	}
	db.Kernel = kernel
	db.Ctrl = kc.New(kernel,
		kc.WithMetrics(s.metrics, db.Name),
		kc.WithLockTimeout(s.cfg.TxnLockTimeout))
	db.reg = s.metrics
	db.slow = s.slow
	db.plans = s.plans
	db.tracing = s.cfg.Tracing
	db.views = make(map[string]*cdc.View)
	s.dbs[db.Name] = db
	return db, nil
}

// Database looks a database up by name — the LIL flow: the network schemas
// are searched first, then the functional schemas.
func (s *System) Database(name string) (*Database, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.dbs[name]
	return db, ok
}

// DatabaseInfo describes one catalog entry.
type DatabaseInfo struct {
	Name     string
	Model    Model
	Backends int // kernel backends serving the database
	Records  int // record copies currently stored
}

// Databases lists the catalog sorted by name, so every listing (the REPL,
// tests, tooling) is deterministic.
func (s *System) Databases() []DatabaseInfo {
	s.mu.Lock()
	dbs := make([]*Database, 0, len(s.dbs))
	for _, db := range s.dbs {
		dbs = append(dbs, db)
	}
	s.mu.Unlock()
	out := make([]DatabaseInfo, 0, len(dbs))
	for _, db := range dbs {
		out = append(out, DatabaseInfo{
			Name:     db.Name,
			Model:    db.Model,
			Backends: db.Kernel.Backends(),
			Records:  db.Kernel.Len(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// lookup resolves a database name, wrapping ErrNoDatabase on a miss.
func (s *System) lookup(dbname string) (*Database, error) {
	db, ok := s.Database(dbname)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoDatabase, dbname)
	}
	return db, nil
}

// LoadBatchSize is how many requests bulk loaders hand the kernel per
// batched round: large enough to amortize the per-round fan-out (one bus or
// wire message per backend per round), small enough to bound peak memory.
const LoadBatchSize = 256

// LoadInstance bulk-loads a functional database instance built with the
// loader, seeding the key allocator past the loaded keys. Requests go to
// the kernel in batched rounds of LoadBatchSize; on failure the returned
// count is the start of the failed round (later records of that round may
// or may not have applied).
func (db *Database) LoadInstance(inst *loader.Instance) (int, error) {
	tx, err := inst.Requests()
	if err != nil {
		return 0, err
	}
	for off := 0; off < len(tx); off += LoadBatchSize {
		end := min(off+LoadBatchSize, len(tx))
		if _, _, err := db.Kernel.ExecBatch(tx[off:end]); err != nil {
			return off, fmt.Errorf("core: loading records %d..%d: %w", off, end-1, err)
		}
	}
	db.Ctrl.SeedKeys(inst.MaxKey())
	return len(tx), nil
}

// ExecABDL gives direct kernel access: the attribute-based language
// interface of MLDS. The text is one ABDL request.
func (db *Database) ExecABDL(text string) (*kdb.Result, error) {
	req, err := abdl.Parse(text)
	if err != nil {
		return nil, err
	}
	return db.Ctrl.Exec(req)
}

// DMLSession is a CODASYL-DML user session. It serves network databases
// natively and functional databases through their transformed schemas.
type DMLSession struct {
	DB *Database
	Tr *kms.Translator
	txnState
}

// OpenDML opens a CODASYL-DML session on the named database.
//
// Deprecated: use Open(dbname, "dml", opts...); this wrapper remains
// for callers that need the concrete *DMLSession.
func (s *System) OpenDML(dbname string, opts ...SessionOption) (*DMLSession, error) {
	return s.openDML(dbname, opts...)
}

// OpenDML opens a CODASYL-DML session on the named database.
func (s *System) openDML(dbname string, opts ...SessionOption) (*DMLSession, error) {
	db, err := s.lookup(dbname)
	if err != nil {
		return nil, err
	}
	var sess *DMLSession
	switch db.Model {
	case NetworkModel:
		sess = &DMLSession{DB: db, Tr: kms.NewNetwork(db.Net, db.AB, db.Ctrl), txnState: txnState{db: db}}
	case FunctionalModel:
		sess = &DMLSession{DB: db, Tr: kms.NewFunctional(db.Mapping, db.AB, db.Ctrl), txnState: txnState{db: db}}
	default:
		return nil, fmt.Errorf("%w: the CODASYL-DML interface cannot serve a %s database", ErrWrongModel, db.Model)
	}
	sess.apply(opts)
	return sess, nil
}

// DaplexSession is a Daplex user session on a functional database.
type DaplexSession struct {
	DB *Database
	If *dapkms.Interface
	txnState
}

// OpenDaplex opens a Daplex session on the named functional database.
//
// Deprecated: use Open(dbname, "daplex", opts...); this wrapper remains
// for callers that need the concrete *DaplexSession.
func (s *System) OpenDaplex(dbname string, opts ...SessionOption) (*DaplexSession, error) {
	return s.openDaplex(dbname, opts...)
}

// OpenDaplex opens a Daplex session on the named functional database.
func (s *System) openDaplex(dbname string, opts ...SessionOption) (*DaplexSession, error) {
	db, err := s.lookup(dbname)
	if err != nil {
		return nil, err
	}
	if db.Model != FunctionalModel {
		return nil, fmt.Errorf("%w: the Daplex interface cannot serve a %s database", ErrWrongModel, db.Model)
	}
	sess := &DaplexSession{DB: db, If: dapkms.New(db.Mapping, db.AB, db.Ctrl), txnState: txnState{db: db}}
	sess.apply(opts)
	return sess, nil
}

// SQLSession is a SQL user session on a relational database.
type SQLSession struct {
	DB *Database
	If *relkms.Interface
	txnState
}

// OpenSQL opens a SQL session on the named relational database.
//
// Deprecated: use Open(dbname, "sql", opts...); this wrapper remains
// for callers that need the concrete *SQLSession.
func (s *System) OpenSQL(dbname string, opts ...SessionOption) (*SQLSession, error) {
	return s.openSQL(dbname, opts...)
}

// OpenSQL opens a SQL session on the named relational database.
func (s *System) openSQL(dbname string, opts ...SessionOption) (*SQLSession, error) {
	db, err := s.lookup(dbname)
	if err != nil {
		return nil, err
	}
	if db.Model != RelationalModel {
		return nil, fmt.Errorf("%w: the SQL interface cannot serve a %s database", ErrWrongModel, db.Model)
	}
	sess := &SQLSession{DB: db, If: relkms.New(db.Rel, db.Ctrl), txnState: txnState{db: db}}
	sess.apply(opts)
	return sess, nil
}

// DLISession is a DL/I user session on a hierarchical database.
type DLISession struct {
	DB *Database
	If *hiekms.Interface
	txnState
}

// OpenDLI opens a DL/I session on the named hierarchical database.
//
// Deprecated: use Open(dbname, "dli", opts...); this wrapper remains
// for callers that need the concrete *DLISession.
func (s *System) OpenDLI(dbname string, opts ...SessionOption) (*DLISession, error) {
	return s.openDLI(dbname, opts...)
}

// OpenDLI opens a DL/I session on the named hierarchical database.
func (s *System) openDLI(dbname string, opts ...SessionOption) (*DLISession, error) {
	db, err := s.lookup(dbname)
	if err != nil {
		return nil, err
	}
	if db.Model != HierarchicalModel {
		return nil, fmt.Errorf("%w: the DL/I interface cannot serve a %s database", ErrWrongModel, db.Model)
	}
	sess := &DLISession{DB: db, If: hiekms.New(db.Hie, db.Ctrl), txnState: txnState{db: db}}
	sess.apply(opts)
	return sess, nil
}
