package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mlds/internal/mbds"
	"mlds/internal/obs"
	"mlds/internal/univ"
	"mlds/internal/univgen"
)

func TestOpenDispatchesEveryLanguage(t *testing.T) {
	s := newSystem(t)
	newLoadedUniv(t, s)
	if _, err := s.CreateRelational("shop", "CREATE TABLE emp (ename CHAR(20) NOT NULL, pay INTEGER);"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateHierarchical("school", "DBD NAME IS school\nSEGMENT NAME IS dept\n    FIELD dname CHAR 20\n"); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		db, spelling, lang string
	}{
		{"university", "dml", LangDML},
		{"university", "CODASYL", LangDML},
		{"university", "codasyl-dml", LangDML},
		{"university", "Daplex", LangDaplex},
		{"university", "abdl", LangABDL},
		{"shop", "sql", LangSQL},
		{"school", "dli", LangDLI},
		{"school", "DL/I", LangDLI},
	}
	for _, c := range cases {
		sess, err := s.Open(c.db, c.spelling)
		if err != nil {
			t.Fatalf("Open(%q, %q): %v", c.db, c.spelling, err)
		}
		if sess.Language() != c.lang {
			t.Errorf("Open(%q, %q).Language() = %q, want %q", c.db, c.spelling, sess.Language(), c.lang)
		}
		if err := sess.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}

	if _, err := s.Open("university", "cobol"); err == nil {
		t.Error("unknown language accepted")
	}
}

func TestOpenSentinelErrors(t *testing.T) {
	s := newSystem(t)
	newLoadedUniv(t, s)

	if _, err := s.Open("nope", "dml"); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("missing database: err = %v, want ErrNoDatabase", err)
	}
	if _, err := s.OpenSQL("university"); !errors.Is(err, ErrWrongModel) {
		t.Errorf("SQL on functional: err = %v, want ErrWrongModel", err)
	}
	if _, err := s.OpenDLI("university"); !errors.Is(err, ErrWrongModel) {
		t.Errorf("DL/I on functional: err = %v, want ErrWrongModel", err)
	}
	if _, err := s.OpenDaplex("missing"); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("Daplex on missing: err = %v, want ErrNoDatabase", err)
	}
}

func TestSessionExecuteThroughInterface(t *testing.T) {
	s := newSystem(t)
	newLoadedUniv(t, s)
	sess, err := s.Open("university", "daplex")
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Execute("FOR EACH department PRINT dname;")
	if err != nil {
		t.Fatal(err)
	}
	if out.Language != LangDaplex || len(out.Rows) == 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if !strings.Contains(out.Rendered, "dname") {
		t.Errorf("Rendered = %q", out.Rendered)
	}
	if out.Wall <= 0 || out.Sim <= 0 {
		t.Errorf("Wall = %v Sim = %v, want both > 0", out.Wall, out.Sim)
	}
}

// TestTracedDMLRequest is the acceptance scenario: with tracing on, one
// CODASYL-DML Execute against the University database yields parse,
// KMS-translate, per-backend KC exec, and KFS format spans, each with a
// non-zero duration.
func TestTracedDMLRequest(t *testing.T) {
	s := NewSystem(Config{Kernel: mbds.DefaultConfig(2), Tracing: true})
	t.Cleanup(s.Close)
	newLoadedUniv(t, s)
	sess, err := s.OpenDML("university")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("MOVE 'Advanced Database' TO title IN course"); err != nil {
		t.Fatal(err)
	}
	// FIND ANY goes through the whole pipeline: it is translated to a kernel
	// RETRIEVE that fans out to every backend. (GET serves from the cached
	// current record, so it would show no kernel spans.)
	out, err := sess.Execute("FIND ANY course USING title IN course")
	if err != nil {
		t.Fatal(err)
	}

	root := out.Trace
	if root == nil {
		t.Fatal("Tracing on but Outcome.Trace is nil")
	}
	if root.Name != "request" || root.Attr("db") != "university" || root.Attr("language") != LangDML {
		t.Errorf("root span = %s attrs db=%q language=%q", root.Name, root.Attr("db"), root.Attr("language"))
	}
	for _, name := range []string{"parse", "kms.translate", "kc.exec", "kfs.format"} {
		sp := root.Find(name)
		if sp == nil {
			t.Fatalf("span %q missing from trace:\n%s", name, root)
		}
		if sp.Duration() <= 0 {
			t.Errorf("span %q has zero duration", name)
		}
	}
	// The kernel fans the RETRIEVE out to the backends: the kc.exec span
	// holds one backend.exec child per backend that served it.
	execs := root.FindAll("backend.exec")
	if len(execs) == 0 {
		t.Fatalf("no backend.exec spans in trace:\n%s", root)
	}
	for _, sp := range execs {
		if sp.Duration() <= 0 {
			t.Errorf("backend.exec (backend %s) has zero duration", sp.Attr("backend"))
		}
	}
	if root.Find("kc.exec").Sim() <= 0 {
		t.Error("kc.exec span charged no simulated time")
	}
	if out.Sim <= 0 {
		t.Error("outcome charged no simulated time")
	}
}

func TestSessionMetricsAndSlowLog(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSystem(Config{
		Kernel:        mbds.DefaultConfig(2),
		Metrics:       reg,
		SlowThreshold: time.Nanosecond, // everything is slow
		SlowLogSize:   4,
	})
	t.Cleanup(s.Close)
	db, err := s.CreateFunctional("university", univ.SchemaDDL)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := univgen.Populate(db.Mapping, db.AB, univgen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadInstance(inst); err != nil {
		t.Fatal(err)
	}

	sess, err := s.Open("university", "daplex")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("FOR EACH department PRINT dname;"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("THIS IS NOT DAPLEX"); err == nil {
		t.Fatal("parse error expected")
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`mlds_session_requests_total{db="university",language="daplex"} 2`,
		`mlds_session_errors_total{db="university",language="daplex"} 1`,
		`mlds_kernel_requests_total{db="university"}`,
		`mlds_backend_requests_total{backend="0",db="university"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	entries := s.SlowLog().Entries()
	if len(entries) == 0 {
		t.Fatal("slow log empty with a 1ns threshold")
	}
	last := entries[len(entries)-1]
	if last.DB != "university" || last.Language != LangDaplex || last.Wall <= 0 {
		t.Errorf("slow entry = %+v", last)
	}
	if s.SlowLog().Total() < uint64(len(entries)) {
		t.Errorf("Total() = %d < %d entries", s.SlowLog().Total(), len(entries))
	}
}
