package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/cdc"
	"mlds/internal/codasyl"
	"mlds/internal/dapkms"
	"mlds/internal/daplex"
	"mlds/internal/dli"
	"mlds/internal/hiekms"
	"mlds/internal/kdb"
	"mlds/internal/kfs"
	"mlds/internal/kms"
	"mlds/internal/obs"
	"mlds/internal/plancache"
	"mlds/internal/relkms"
	"mlds/internal/sql"
	"mlds/internal/txn"
	"mlds/internal/wire"
)

// Language names, as reported by Session.Language and accepted (among other
// spellings) by System.Open.
const (
	LangDML    = "codasyl-dml"
	LangDaplex = "daplex"
	LangSQL    = "sql"
	LangDLI    = "dli"
	LangABDL   = "abdl"
)

// Outcome is the unified result of one statement through any language
// interface. The language-specific payload lives in the matching field; the
// cross-language envelope (timing, trace, rendered display text) is always
// populated.
type Outcome struct {
	Language string        // which interface executed the statement
	Text     string        // the statement, as submitted
	Code     wire.Code     // stable machine-readable error code (CodeOK on success)
	Rendered string        // KFS display rendering of the result
	Wall     time.Duration // wall-clock time of the whole request
	Sim      time.Duration // simulated kernel response time charged
	Trace    *obs.Span     // root request span; nil unless Config.Tracing

	DML    *kms.Outcome      // CODASYL-DML
	Rows   []dapkms.Row      // Daplex
	SQL    *relkms.ResultSet // SQL
	DLI    *hiekms.Outcome   // DL/I
	Kernel *kdb.Result       // raw ABDL

	// Watch is the live subscription a WATCH statement opened: the caller
	// owns it and must Close it. Nil for every other statement.
	Watch *cdc.Watcher
}

// Session is one user's connection to a database through one language
// interface. All five session types implement it, so callers (the REPL, the
// experiments, load generators) need not switch over concrete types.
//
// Every session is transactional. With no transaction open, each statement
// runs in its own implicit transaction committed as the statement returns
// (auto-commit). Begin — or the statements BEGIN WORK / START TRANSACTION —
// opens an explicit transaction: subsequent statements accumulate strict-2PL
// locks and buffered undo until Commit / Rollback (COMMIT [WORK],
// ROLLBACK [WORK], ABORT). A deadlock or lock-timeout abort by the
// transaction manager surfaces as a *txn.AbortedError and closes the
// transaction; the session must Begin anew.
type Session interface {
	Execute(text string) (*Outcome, error)
	Close() error
	Language() string

	// Begin opens an explicit transaction; it fails if one is already open.
	Begin() error
	// BeginSnapshot opens an explicit read-only transaction pinned at the
	// current commit epoch (the statement form is BEGIN WORK READ ONLY):
	// its reads are lock-free against the pinned snapshot, and mutations
	// fail with txn.ErrReadOnly. End it with Commit or Rollback.
	BeginSnapshot() error
	// Commit commits the open explicit transaction.
	Commit() error
	// Rollback aborts the open explicit transaction, undoing its effects.
	Rollback() error
	// InTxn reports whether an explicit transaction is open.
	InTxn() bool

	// Watch opens a change subscription on the session's database: the
	// returned watcher's channel delivers a snapshot-consistent initial load
	// followed by exactly the changes committed after that snapshot, in
	// commit order. The query is a single-file SQL SELECT, optionally
	// prefixed with WATCH — the same text the WATCH statement accepts in
	// every language. The caller owns the watcher and must Close it.
	Watch(query string) (*cdc.Watcher, error)
}

// SessionOption configures a session at open time.
type SessionOption func(*txnState)

// SnapshotSession makes every implicit (auto-commit) statement of the
// session run inside its own read-only snapshot transaction: reads never
// take locks and never wait on writers, and mutations fail with
// txn.ErrReadOnly. Explicit BEGIN/BEGIN WORK READ ONLY still work as usual.
func SnapshotSession() SessionOption {
	return func(ts *txnState) { ts.snapMode = true }
}

// Open opens a session on the named database in the given language. This is
// the one session constructor: local callers, the REPL and the network
// serving tier all come through here. The language is matched
// case-insensitively and accepts the common aliases ("dml", "codasyl",
// "codasyl-dml"; "daplex"; "sql"; "dli", "dl/i", "dl1"; "abdl"). An
// unrecognised name fails wrapping ErrUnknownLanguage.
func (s *System) Open(dbname, language string, opts ...SessionOption) (Session, error) {
	switch CanonLanguage(language) {
	case LangDML:
		return s.openDML(dbname, opts...)
	case LangDaplex:
		return s.openDaplex(dbname, opts...)
	case LangSQL:
		return s.openSQL(dbname, opts...)
	case LangDLI:
		return s.openDLI(dbname, opts...)
	case LangABDL:
		return s.openABDL(dbname, opts...)
	default:
		return nil, fmt.Errorf("%w: %q (want dml, daplex, sql, dli or abdl)", ErrUnknownLanguage, language)
	}
}

// CanonLanguage normalises a language name or alias to its canonical
// Lang* constant, or "" if unrecognised.
func CanonLanguage(language string) string {
	switch strings.ToLower(strings.TrimSpace(language)) {
	case "dml", "codasyl", "codasyl-dml":
		return LangDML
	case "daplex":
		return LangDaplex
	case "sql":
		return LangSQL
	case "dli", "dl/i", "dl1", "dl/1":
		return LangDLI
	case "abdl":
		return LangABDL
	}
	return ""
}

// txnState carries a session's open explicit transaction. It is embedded in
// every session type, so the Session transaction methods are written once.
type txnState struct {
	db *Database
	// snapMode runs every implicit statement in its own read-only snapshot
	// transaction (SnapshotSession).
	snapMode bool
	mu       sync.Mutex
	tx       *txn.Txn
}

// apply applies session options; the openers call it on the embedded state.
func (s *txnState) apply(opts []SessionOption) {
	for _, o := range opts {
		o(s)
	}
}

// current returns the open explicit transaction, if any.
func (s *txnState) current() *txn.Txn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tx
}

// clearIf forgets tx if it is still the session's open transaction — used
// after the manager rolled it back (deadlock victim, lock timeout).
func (s *txnState) clearIf(tx *txn.Txn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx == tx {
		s.tx = nil
	}
}

// Begin opens an explicit transaction on the session.
func (s *txnState) Begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx != nil {
		return fmt.Errorf("core: transaction %d already open (COMMIT or ROLLBACK first)", s.tx.ID())
	}
	s.tx = s.db.Ctrl.Txns().Begin()
	return nil
}

// BeginSnapshot opens an explicit read-only snapshot transaction.
func (s *txnState) BeginSnapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx != nil {
		return fmt.Errorf("core: transaction %d already open (COMMIT or ROLLBACK first)", s.tx.ID())
	}
	s.tx = s.db.Ctrl.Txns().BeginSnapshot()
	return nil
}

// Commit commits the session's open explicit transaction.
func (s *txnState) Commit() error {
	s.mu.Lock()
	tx := s.tx
	s.tx = nil
	s.mu.Unlock()
	if tx == nil {
		return ErrNoTxn
	}
	return s.db.Ctrl.Txns().Commit(tx)
}

// Rollback aborts the session's open explicit transaction.
func (s *txnState) Rollback() error {
	s.mu.Lock()
	tx := s.tx
	s.tx = nil
	s.mu.Unlock()
	if tx == nil {
		return ErrNoTxn
	}
	return s.db.Ctrl.Txns().Abort(tx)
}

// InTxn reports whether an explicit transaction is open.
func (s *txnState) InTxn() bool { return s.current() != nil }

// endTxn closes any open transaction when the session closes: an abandoned
// transaction must not keep its locks.
func (s *txnState) endTxn() error {
	s.mu.Lock()
	tx := s.tx
	s.tx = nil
	s.mu.Unlock()
	if tx == nil {
		return nil
	}
	return s.db.Ctrl.Txns().Abort(tx)
}

// txnVerb recognises the transaction-control statements every language
// interface accepts, normalising case, interior whitespace and a trailing
// semicolon.
func txnVerb(text string) (string, bool) {
	s := strings.TrimSpace(text)
	s = strings.TrimSpace(strings.TrimSuffix(s, ";"))
	switch strings.ToUpper(strings.Join(strings.Fields(s), " ")) {
	case "BEGIN", "BEGIN WORK", "BEGIN TRANSACTION", "START TRANSACTION":
		return "begin", true
	case "BEGIN READ ONLY", "BEGIN WORK READ ONLY",
		"BEGIN TRANSACTION READ ONLY", "START TRANSACTION READ ONLY":
		return "begin-ro", true
	case "COMMIT", "COMMIT WORK":
		return "commit", true
	case "ROLLBACK", "ROLLBACK WORK", "ABORT":
		return "rollback", true
	}
	return "", false
}

// control applies one transaction-control verb.
func (s *txnState) control(verb string, out *Outcome) error {
	var err error
	switch verb {
	case "begin":
		err = s.Begin()
	case "begin-ro":
		err = s.BeginSnapshot()
	case "commit":
		err = s.Commit()
	case "rollback":
		err = s.Rollback()
	}
	if err == nil {
		out.Rendered = verb
	}
	return err
}

// maxStatementRetries bounds the automatic re-execution of a single
// statement whose implicit transaction was chosen as a deadlock victim.
// Each retry runs under a fresh — and therefore youngest — transaction, so
// under sustained contention the same statement can be re-victimized;
// exponential backoff breaks that livelock.
const maxStatementRetries = 8

// execInTxn runs the statement inside the session's transaction: the open
// explicit transaction if there is one, otherwise a fresh implicit
// transaction committed (or, on error, rolled back) as the statement ends.
//
// An implicit transaction IS the statement, so when the manager aborts it —
// deadlock victim or lock timeout — the store is back to the statement's
// start and the statement simply retries under a new transaction, invisible
// to the caller. An explicit transaction spans statements the session has
// already seen succeed, so its abort must surface: the error is returned
// (*txn.AbortedError) and the session's handle cleared so the next
// statement starts clean.
func (db *Database) execInTxn(ctx context.Context, ts *txnState, out *Outcome, exec func(ctx context.Context, out *Outcome) error) error {
	if ts == nil {
		return exec(ctx, out)
	}
	if tx := ts.current(); tx != nil {
		err := exec(txn.NewContext(ctx, tx), out)
		var ae *txn.AbortedError
		if errors.As(err, &ae) {
			ts.clearIf(tx)
		}
		return err
	}
	if ts.snapMode {
		// A snapshot session runs each implicit statement in its own
		// read-only snapshot transaction: lock-free, so never a deadlock
		// victim — no retry loop. Commit just unregisters the snapshot.
		tx := db.Ctrl.Txns().BeginSnapshot()
		err := exec(txn.NewContext(ctx, tx), out)
		if cerr := db.Ctrl.Txns().Commit(tx); err == nil {
			err = cerr
		}
		return err
	}
	var err error
	for attempt := 0; ; attempt++ {
		tx := db.Ctrl.Txns().Begin()
		err = exec(txn.NewContext(ctx, tx), out)
		var ae *txn.AbortedError
		if errors.As(err, &ae) {
			// Already rolled back by the manager; retry the statement.
			if attempt < maxStatementRetries {
				time.Sleep(time.Duration(1<<attempt) * time.Millisecond)
				continue
			}
			return err
		}
		if err != nil {
			db.Ctrl.Txns().Abort(tx)
			return err
		}
		return db.Ctrl.Txns().Commit(tx)
	}
}

// run executes one statement through the observability envelope shared by
// every session type: it starts the root "request" span when tracing is on,
// times the statement, charges the session metrics, and feeds the slow log.
// exec fills the outcome's language-specific payload and Rendered text.
// Transaction-control statements (BEGIN WORK, COMMIT, ROLLBACK, …) are
// intercepted here — before any language parser — so all five interfaces
// share one spelling; everything else executes inside the session's
// transaction via execInTxn.
func (db *Database) run(ts *txnState, lang, text string, exec func(ctx context.Context, out *Outcome) error) (*Outcome, error) {
	ctx := context.Background()
	out := &Outcome{Language: lang, Text: text}
	var root *obs.Span
	if db.tracing {
		ctx, root = obs.NewTrace(ctx, "request")
		root.SetAttr("db", db.Name)
		root.SetAttr("language", lang)
		out.Trace = root
	}
	start := time.Now()
	simBefore := db.Ctrl.SimTime()
	var err error
	if verb, ok := txnVerb(text); ok && ts != nil {
		err = ts.control(verb, out)
	} else if wv, arg, ok := watchVerb(text); ok {
		err = db.watchControl(wv, arg, out)
	} else {
		err = db.execInTxn(ctx, ts, out, exec)
	}
	out.Wall = time.Since(start)
	out.Code = CodeOf(err)
	out.Sim = db.Ctrl.SimTime() - simBefore
	root.AddSim(out.Sim)
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	root.End()

	dbL, langL := obs.L("db", db.Name), obs.L("language", lang)
	db.reg.Counter("mlds_session_requests_total",
		"statements executed through the language interfaces", dbL, langL).Inc()
	if err != nil {
		db.reg.Counter("mlds_session_errors_total",
			"statements that returned an error", dbL, langL).Inc()
	}
	db.reg.Histogram("mlds_session_seconds",
		"wall-clock latency per statement", nil, dbL, langL).Observe(out.Wall.Seconds())
	if db.slow.Record(obs.SlowEntry{DB: db.Name, Language: lang, Text: text, Wall: out.Wall, Sim: out.Sim}) {
		db.reg.Counter("mlds_slow_requests_total",
			"statements at or above the slow threshold", dbL).Inc()
	}
	return out, err
}

// plan resolves the parsed form of a statement through the system's plan
// cache: statements sharing a language and normalized shape parse once and
// reuse the AST. Every kernel mapping system treats its ASTs as read-only,
// so a cached plan is safe to share across sessions. With caching disabled
// (a nil cache) every statement parses.
func plan[T any](ctx context.Context, db *Database, lang, text string, parse func(string) (T, error)) (T, error) {
	_, pspan := obs.StartSpan(ctx, "parse")
	defer pspan.End()
	key := plancache.Key(lang, text)
	if v, ok := db.plans.Get(key); ok {
		pspan.SetAttr("plan", "hit")
		db.planCount(lang, true)
		return v.(T), nil
	}
	if db.plans != nil {
		db.planCount(lang, false)
	}
	st, err := parse(text)
	if err != nil {
		return st, &ParseError{Err: err}
	}
	db.plans.Put(key, st)
	return st, nil
}

// planCount charges one plan-cache hit or miss to the session metrics.
func (db *Database) planCount(lang string, hit bool) {
	name, help := "mlds_plan_cache_misses_total", "statements parsed because no cached plan matched"
	if hit {
		name, help = "mlds_plan_cache_hits_total", "statements served a cached parse"
	}
	db.reg.Counter(name, help, obs.L("db", db.Name), obs.L("language", lang)).Inc()
}

// Execute parses and runs one DML statement.
func (sess *DMLSession) Execute(text string) (*Outcome, error) {
	return sess.DB.run(&sess.txnState, LangDML, text, func(ctx context.Context, out *Outcome) error {
		st, err := plan(ctx, sess.DB, LangDML, text, codasyl.ParseStmt)
		if err != nil {
			return err
		}
		tctx, tspan := obs.StartSpan(ctx, "kms.translate")
		dmlOut, err := sess.Tr.ExecCtx(tctx, st)
		tspan.End()
		out.DML = dmlOut
		if err != nil {
			return err
		}
		_, fspan := obs.StartSpan(ctx, "kfs.format")
		out.Rendered = kfs.FormatOutcome(dmlOut, sess.Tr.Schema())
		fspan.End()
		return nil
	})
}

// RunScript parses and runs a transaction script (statements plus PERFORM
// loops), returning the typed outcome of every executed statement.
func (sess *DMLSession) RunScript(text string) ([]*kms.Outcome, error) {
	script, err := codasyl.ParseScript(text)
	if err != nil {
		return nil, err
	}
	return sess.Tr.ExecScript(script)
}

// Close releases the session, rolling back any open transaction.
func (sess *DMLSession) Close() error { return sess.endTxn() }

// Language reports the session's language interface.
func (sess *DMLSession) Language() string { return LangDML }

// Execute parses and runs one Daplex DML statement.
func (sess *DaplexSession) Execute(text string) (*Outcome, error) {
	return sess.DB.run(&sess.txnState, LangDaplex, text, func(ctx context.Context, out *Outcome) error {
		st, err := plan(ctx, sess.DB, LangDaplex, text, daplex.ParseDML)
		if err != nil {
			return err
		}
		tctx, tspan := obs.StartSpan(ctx, "kms.translate")
		rows, err := sess.If.ExecCtx(tctx, st)
		tspan.End()
		out.Rows = rows
		if err != nil {
			return err
		}
		_, fspan := obs.StartSpan(ctx, "kfs.format")
		if len(rows) > 0 {
			out.Rendered = kfs.FormatRowsAuto(rows)
		} else {
			out.Rendered = "ok"
		}
		fspan.End()
		return nil
	})
}

// Close releases the session, rolling back any open transaction.
func (sess *DaplexSession) Close() error { return sess.endTxn() }

// Language reports the session's language interface.
func (sess *DaplexSession) Language() string { return LangDaplex }

// Execute parses and runs one SQL statement.
func (sess *SQLSession) Execute(text string) (*Outcome, error) {
	return sess.DB.run(&sess.txnState, LangSQL, text, func(ctx context.Context, out *Outcome) error {
		st, err := plan(ctx, sess.DB, LangSQL, text, sql.Parse)
		if err != nil {
			return err
		}
		tctx, tspan := obs.StartSpan(ctx, "kms.translate")
		rs, err := sess.If.ExecCtx(tctx, st)
		tspan.End()
		out.SQL = rs
		if err != nil {
			return err
		}
		_, fspan := obs.StartSpan(ctx, "kfs.format")
		out.Rendered = kfs.FormatResultSet(rs)
		fspan.End()
		return nil
	})
}

// Close releases the session, rolling back any open transaction.
func (sess *SQLSession) Close() error { return sess.endTxn() }

// Language reports the session's language interface.
func (sess *SQLSession) Language() string { return LangSQL }

// Execute parses and runs one DL/I call.
func (sess *DLISession) Execute(text string) (*Outcome, error) {
	return sess.DB.run(&sess.txnState, LangDLI, text, func(ctx context.Context, out *Outcome) error {
		call, err := plan(ctx, sess.DB, LangDLI, text, dli.Parse)
		if err != nil {
			return err
		}
		tctx, tspan := obs.StartSpan(ctx, "kms.translate")
		res, err := sess.If.ExecCtx(tctx, call)
		tspan.End()
		out.DLI = res
		if err != nil {
			return err
		}
		_, fspan := obs.StartSpan(ctx, "kfs.format")
		out.Rendered = kfs.FormatDLI(res)
		fspan.End()
		return nil
	})
}

// Close releases the session, rolling back any open transaction.
func (sess *DLISession) Close() error { return sess.endTxn() }

// Language reports the session's language interface.
func (sess *DLISession) Language() string { return LangDLI }

// ABDLSession is a raw attribute-based session: statements are single ABDL
// requests executed directly against the kernel — the fifth language
// interface of the paper's Figure 1.2.
type ABDLSession struct {
	DB *Database
	txnState
}

// OpenABDL opens a raw ABDL session.
//
// Deprecated: use Open(dbname, "abdl", opts...); this wrapper remains for
// callers that need the concrete *ABDLSession.
func (s *System) OpenABDL(dbname string, opts ...SessionOption) (*ABDLSession, error) {
	return s.openABDL(dbname, opts...)
}

// openABDL opens a raw ABDL session. Every database model is served: ABDL
// addresses the kernel representation beneath all of them.
func (s *System) openABDL(dbname string, opts ...SessionOption) (*ABDLSession, error) {
	db, err := s.lookup(dbname)
	if err != nil {
		return nil, err
	}
	sess := &ABDLSession{DB: db, txnState: txnState{db: db}}
	sess.apply(opts)
	return sess, nil
}

// Execute parses and runs one ABDL request.
func (sess *ABDLSession) Execute(text string) (*Outcome, error) {
	return sess.DB.run(&sess.txnState, LangABDL, text, func(ctx context.Context, out *Outcome) error {
		req, err := plan(ctx, sess.DB, LangABDL, text, abdl.Parse)
		if err != nil {
			return err
		}
		res, err := sess.DB.Ctrl.ExecCtx(ctx, req)
		out.Kernel = res
		if err != nil {
			return err
		}
		_, fspan := obs.StartSpan(ctx, "kfs.format")
		out.Rendered = kfs.FormatResult(res)
		fspan.End()
		return nil
	})
}

// Close releases the session, rolling back any open transaction.
func (sess *ABDLSession) Close() error { return sess.endTxn() }

// Language reports the session's language interface.
func (sess *ABDLSession) Language() string { return LangABDL }
