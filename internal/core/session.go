package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/codasyl"
	"mlds/internal/dapkms"
	"mlds/internal/daplex"
	"mlds/internal/dli"
	"mlds/internal/hiekms"
	"mlds/internal/kdb"
	"mlds/internal/kfs"
	"mlds/internal/kms"
	"mlds/internal/obs"
	"mlds/internal/plancache"
	"mlds/internal/relkms"
	"mlds/internal/sql"
)

// Language names, as reported by Session.Language and accepted (among other
// spellings) by System.Open.
const (
	LangDML    = "codasyl-dml"
	LangDaplex = "daplex"
	LangSQL    = "sql"
	LangDLI    = "dli"
	LangABDL   = "abdl"
)

// Outcome is the unified result of one statement through any language
// interface. The language-specific payload lives in the matching field; the
// cross-language envelope (timing, trace, rendered display text) is always
// populated.
type Outcome struct {
	Language string        // which interface executed the statement
	Text     string        // the statement, as submitted
	Rendered string        // KFS display rendering of the result
	Wall     time.Duration // wall-clock time of the whole request
	Sim      time.Duration // simulated kernel response time charged
	Trace    *obs.Span     // root request span; nil unless Config.Tracing

	DML    *kms.Outcome      // CODASYL-DML
	Rows   []dapkms.Row      // Daplex
	SQL    *relkms.ResultSet // SQL
	DLI    *hiekms.Outcome   // DL/I
	Kernel *kdb.Result       // raw ABDL
}

// Session is one user's connection to a database through one language
// interface. All five session types implement it, so callers (the REPL, the
// experiments, load generators) need not switch over concrete types.
type Session interface {
	Execute(text string) (*Outcome, error)
	Close() error
	Language() string
}

// Open opens a session on the named database in the given language. The
// language is matched case-insensitively and accepts the common aliases
// ("dml", "codasyl", "codasyl-dml"; "daplex"; "sql"; "dli", "dl/i", "dl1";
// "abdl"). The typed openers remain for callers that need the concrete
// session type.
func (s *System) Open(dbname, language string) (Session, error) {
	switch strings.ToLower(strings.TrimSpace(language)) {
	case "dml", "codasyl", "codasyl-dml":
		return s.OpenDML(dbname)
	case "daplex":
		return s.OpenDaplex(dbname)
	case "sql":
		return s.OpenSQL(dbname)
	case "dli", "dl/i", "dl1", "dl/1":
		return s.OpenDLI(dbname)
	case "abdl":
		return s.OpenABDL(dbname)
	default:
		return nil, fmt.Errorf("core: unknown language %q (want dml, daplex, sql, dli or abdl)", language)
	}
}

// run executes one statement through the observability envelope shared by
// every session type: it starts the root "request" span when tracing is on,
// times the statement, charges the session metrics, and feeds the slow log.
// exec fills the outcome's language-specific payload and Rendered text.
func (db *Database) run(lang, text string, exec func(ctx context.Context, out *Outcome) error) (*Outcome, error) {
	ctx := context.Background()
	out := &Outcome{Language: lang, Text: text}
	var root *obs.Span
	if db.tracing {
		ctx, root = obs.NewTrace(ctx, "request")
		root.SetAttr("db", db.Name)
		root.SetAttr("language", lang)
		out.Trace = root
	}
	start := time.Now()
	simBefore := db.Ctrl.SimTime()
	err := exec(ctx, out)
	out.Wall = time.Since(start)
	out.Sim = db.Ctrl.SimTime() - simBefore
	root.AddSim(out.Sim)
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	root.End()

	dbL, langL := obs.L("db", db.Name), obs.L("language", lang)
	db.reg.Counter("mlds_session_requests_total",
		"statements executed through the language interfaces", dbL, langL).Inc()
	if err != nil {
		db.reg.Counter("mlds_session_errors_total",
			"statements that returned an error", dbL, langL).Inc()
	}
	db.reg.Histogram("mlds_session_seconds",
		"wall-clock latency per statement", nil, dbL, langL).Observe(out.Wall.Seconds())
	if db.slow.Record(obs.SlowEntry{DB: db.Name, Language: lang, Text: text, Wall: out.Wall, Sim: out.Sim}) {
		db.reg.Counter("mlds_slow_requests_total",
			"statements at or above the slow threshold", dbL).Inc()
	}
	return out, err
}

// plan resolves the parsed form of a statement through the system's plan
// cache: statements sharing a language and normalized shape parse once and
// reuse the AST. Every kernel mapping system treats its ASTs as read-only,
// so a cached plan is safe to share across sessions. With caching disabled
// (a nil cache) every statement parses.
func plan[T any](ctx context.Context, db *Database, lang, text string, parse func(string) (T, error)) (T, error) {
	_, pspan := obs.StartSpan(ctx, "parse")
	defer pspan.End()
	key := plancache.Key(lang, text)
	if v, ok := db.plans.Get(key); ok {
		pspan.SetAttr("plan", "hit")
		db.planCount(lang, true)
		return v.(T), nil
	}
	if db.plans != nil {
		db.planCount(lang, false)
	}
	st, err := parse(text)
	if err != nil {
		return st, err
	}
	db.plans.Put(key, st)
	return st, nil
}

// planCount charges one plan-cache hit or miss to the session metrics.
func (db *Database) planCount(lang string, hit bool) {
	name, help := "mlds_plan_cache_misses_total", "statements parsed because no cached plan matched"
	if hit {
		name, help = "mlds_plan_cache_hits_total", "statements served a cached parse"
	}
	db.reg.Counter(name, help, obs.L("db", db.Name), obs.L("language", lang)).Inc()
}

// Execute parses and runs one DML statement.
func (sess *DMLSession) Execute(text string) (*Outcome, error) {
	return sess.DB.run(LangDML, text, func(ctx context.Context, out *Outcome) error {
		st, err := plan(ctx, sess.DB, LangDML, text, codasyl.ParseStmt)
		if err != nil {
			return err
		}
		tctx, tspan := obs.StartSpan(ctx, "kms.translate")
		dmlOut, err := sess.Tr.ExecCtx(tctx, st)
		tspan.End()
		out.DML = dmlOut
		if err != nil {
			return err
		}
		_, fspan := obs.StartSpan(ctx, "kfs.format")
		out.Rendered = kfs.FormatOutcome(dmlOut, sess.Tr.Schema())
		fspan.End()
		return nil
	})
}

// RunScript parses and runs a transaction script (statements plus PERFORM
// loops), returning the typed outcome of every executed statement.
func (sess *DMLSession) RunScript(text string) ([]*kms.Outcome, error) {
	script, err := codasyl.ParseScript(text)
	if err != nil {
		return nil, err
	}
	return sess.Tr.ExecScript(script)
}

// Close releases the session. DML sessions hold no kernel resources beyond
// their currency state, so closing is immediate.
func (sess *DMLSession) Close() error { return nil }

// Language reports the session's language interface.
func (sess *DMLSession) Language() string { return LangDML }

// Execute parses and runs one Daplex DML statement.
func (sess *DaplexSession) Execute(text string) (*Outcome, error) {
	return sess.DB.run(LangDaplex, text, func(ctx context.Context, out *Outcome) error {
		st, err := plan(ctx, sess.DB, LangDaplex, text, daplex.ParseDML)
		if err != nil {
			return err
		}
		tctx, tspan := obs.StartSpan(ctx, "kms.translate")
		rows, err := sess.If.ExecCtx(tctx, st)
		tspan.End()
		out.Rows = rows
		if err != nil {
			return err
		}
		_, fspan := obs.StartSpan(ctx, "kfs.format")
		if len(rows) > 0 {
			out.Rendered = kfs.FormatRowsAuto(rows)
		} else {
			out.Rendered = "ok"
		}
		fspan.End()
		return nil
	})
}

// Close releases the session.
func (sess *DaplexSession) Close() error { return nil }

// Language reports the session's language interface.
func (sess *DaplexSession) Language() string { return LangDaplex }

// Execute parses and runs one SQL statement.
func (sess *SQLSession) Execute(text string) (*Outcome, error) {
	return sess.DB.run(LangSQL, text, func(ctx context.Context, out *Outcome) error {
		st, err := plan(ctx, sess.DB, LangSQL, text, sql.Parse)
		if err != nil {
			return err
		}
		tctx, tspan := obs.StartSpan(ctx, "kms.translate")
		rs, err := sess.If.ExecCtx(tctx, st)
		tspan.End()
		out.SQL = rs
		if err != nil {
			return err
		}
		_, fspan := obs.StartSpan(ctx, "kfs.format")
		out.Rendered = kfs.FormatResultSet(rs)
		fspan.End()
		return nil
	})
}

// Close releases the session.
func (sess *SQLSession) Close() error { return nil }

// Language reports the session's language interface.
func (sess *SQLSession) Language() string { return LangSQL }

// Execute parses and runs one DL/I call.
func (sess *DLISession) Execute(text string) (*Outcome, error) {
	return sess.DB.run(LangDLI, text, func(ctx context.Context, out *Outcome) error {
		call, err := plan(ctx, sess.DB, LangDLI, text, dli.Parse)
		if err != nil {
			return err
		}
		tctx, tspan := obs.StartSpan(ctx, "kms.translate")
		res, err := sess.If.ExecCtx(tctx, call)
		tspan.End()
		out.DLI = res
		if err != nil {
			return err
		}
		_, fspan := obs.StartSpan(ctx, "kfs.format")
		out.Rendered = kfs.FormatDLI(res)
		fspan.End()
		return nil
	})
}

// Close releases the session.
func (sess *DLISession) Close() error { return nil }

// Language reports the session's language interface.
func (sess *DLISession) Language() string { return LangDLI }

// ABDLSession is a raw attribute-based session: statements are single ABDL
// requests executed directly against the kernel — the fifth language
// interface of the paper's Figure 1.2.
type ABDLSession struct {
	DB *Database
}

// OpenABDL opens a raw ABDL session. Every database model is served: ABDL
// addresses the kernel representation beneath all of them.
func (s *System) OpenABDL(dbname string) (*ABDLSession, error) {
	db, err := s.lookup(dbname)
	if err != nil {
		return nil, err
	}
	return &ABDLSession{DB: db}, nil
}

// Execute parses and runs one ABDL request.
func (sess *ABDLSession) Execute(text string) (*Outcome, error) {
	return sess.DB.run(LangABDL, text, func(ctx context.Context, out *Outcome) error {
		req, err := plan(ctx, sess.DB, LangABDL, text, abdl.Parse)
		if err != nil {
			return err
		}
		res, err := sess.DB.Ctrl.ExecCtx(ctx, req)
		out.Kernel = res
		if err != nil {
			return err
		}
		_, fspan := obs.StartSpan(ctx, "kfs.format")
		out.Rendered = kfs.FormatResult(res)
		fspan.End()
		return nil
	})
}

// Close releases the session.
func (sess *ABDLSession) Close() error { return nil }

// Language reports the session's language interface.
func (sess *ABDLSession) Language() string { return LangABDL }
