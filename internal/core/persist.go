package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"mlds/internal/abdl"
	"mlds/internal/currency"
	"mlds/internal/daplex"
	"mlds/internal/wire"
)

// databaseImage is the gob form of a saved database: the schema as DDL text
// (regenerated, so the image is self-contained) plus every kernel record.
type databaseImage struct {
	Name    string
	Model   int
	DDL     string
	Records []wire.Record
}

// Save writes the database — schema and contents — to w. The image can be
// restored into any System, with any backend count; logical database keys
// are attribute values, so they survive exactly.
func (db *Database) Save(w io.Writer) error {
	img := databaseImage{Name: db.Name, Model: int(db.Model)}
	switch db.Model {
	case FunctionalModel:
		img.DDL = daplex.FormatSchema(db.Fun)
	case NetworkModel:
		img.DDL = db.Net.DDL()
	case RelationalModel:
		img.DDL = db.Rel.DDL()
	case HierarchicalModel:
		img.DDL = db.Hie.DBD()
	default:
		return fmt.Errorf("core: cannot save a %s database", db.Model)
	}
	snap, err := db.Kernel.Snapshot()
	if err != nil {
		return fmt.Errorf("core: snapshot of %q for save: %w", db.Name, err)
	}
	for _, sr := range snap {
		img.Records = append(img.Records, wire.FromRecord(sr.Rec))
	}
	return gob.NewEncoder(w).Encode(&img)
}

// Restore reads a database image saved by Save and registers it under its
// original name.
func (s *System) Restore(r io.Reader) (*Database, error) {
	var img databaseImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("core: decoding database image: %w", err)
	}
	var db *Database
	var err error
	switch Model(img.Model) {
	case FunctionalModel:
		db, err = s.CreateFunctional(img.Name, img.DDL)
	case NetworkModel:
		db, err = s.CreateNetwork(img.Name, img.DDL)
	case RelationalModel:
		db, err = s.CreateRelational(img.Name, img.DDL)
	case HierarchicalModel:
		db, err = s.CreateHierarchical(img.Name, img.DDL)
	default:
		return nil, fmt.Errorf("core: image has unsupported model %d", img.Model)
	}
	if err != nil {
		return nil, err
	}
	var maxKey currency.Key
	reqs := make([]*abdl.Request, 0, len(img.Records))
	for i, wr := range img.Records {
		rec, err := wr.ToRecord()
		if err != nil {
			return nil, fmt.Errorf("core: record %d: %w", i, err)
		}
		reqs = append(reqs, abdl.NewInsert(rec))
		var keyAttr string
		switch {
		case db.AB != nil:
			keyAttr = db.AB.KeyOf(rec.File())
		case db.Hie != nil:
			keyAttr = rec.File() // segment keys are named after the segment
		}
		if keyAttr != "" {
			if v, ok := rec.Get(keyAttr); ok && !v.IsNull() && v.AsInt() > maxKey {
				maxKey = v.AsInt()
			}
		}
	}
	for off := 0; off < len(reqs); off += LoadBatchSize {
		end := min(off+LoadBatchSize, len(reqs))
		if _, _, err := db.Kernel.ExecBatch(reqs[off:end]); err != nil {
			return nil, fmt.Errorf("core: restoring records %d..%d: %w", off, end-1, err)
		}
	}
	db.Ctrl.SeedKeys(maxKey)
	return db, nil
}
