package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSessionsIsolatedCurrency: MLDS was designed single-user with
// multi-user as future work; this implementation provides it. Each session
// owns its CIT and UWA, so concurrent run-units navigating different parts
// of the database never disturb each other; only the kernel is shared.
func TestConcurrentSessionsIsolatedCurrency(t *testing.T) {
	s := newSystem(t)
	newLoadedUniv(t, s)

	const users = 8
	var wg sync.WaitGroup
	errs := make(chan error, users)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			sess, err := s.OpenDML("university")
			if err != nil {
				errs <- err
				return
			}
			// Each user navigates a different student and re-reads its own
			// current 50 times; a shared CIT would interleave keys.
			name := fmt.Sprintf("Student %04d", u)
			if _, err := sess.Execute("MOVE '" + name + "' TO pname IN person"); err != nil {
				errs <- err
				return
			}
			out, err := sess.Execute("FIND ANY person USING pname IN person")
			if err != nil {
				errs <- err
				return
			}
			myKey := out.DML.Key
			for i := 0; i < 50; i++ {
				got, err := sess.Execute("GET pname IN person")
				if err != nil {
					errs <- fmt.Errorf("user %d: %w", u, err)
					return
				}
				if got.DML.Values["pname"].AsString() != name {
					errs <- fmt.Errorf("user %d: current drifted to %v", u, got.DML.Values["pname"])
					return
				}
				if sess.Tr.CIT().RunUnit.Key != myKey {
					errs <- fmt.Errorf("user %d: run-unit key drifted", u)
					return
				}
			}
			errs <- nil
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentMixedInterfaces runs Daplex readers against DML writers on
// one kernel; the kernel's locking must keep every request atomic.
func TestConcurrentMixedInterfaces(t *testing.T) {
	s := newSystem(t)
	newLoadedUniv(t, s)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for u := 0; u < 4; u++ {
		wg.Add(2)
		go func() { // reader
			defer wg.Done()
			dap, err := s.OpenDaplex("university")
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 25; i++ {
				rows, err := dap.Execute("FOR EACH course PRINT credits;")
				if err != nil {
					errs <- err
					return
				}
				for _, r := range rows.Rows {
					if len(r.Values["credits"]) != 1 {
						errs <- fmt.Errorf("torn read: %v", r.Values)
						return
					}
				}
			}
			errs <- nil
		}()
		go func(u int) { // writer
			defer wg.Done()
			dap, err := s.OpenDaplex("university")
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 25; i++ {
				stmt := fmt.Sprintf("LET credits OF course WHERE title = 'Course %03d' BE %d;", 1+u, 1+i%5)
				if _, err := dap.Execute(stmt); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
