package kdb

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mlds/internal/abdm"
	"mlds/internal/pager"
)

// Paged backing.
//
// A backed store keeps its committed state in a pager heap; the live maps
// hold the record *membership* (file → id) but not, in general, the record
// bodies: a body is resident only while it differs from the committed heap
// cell (an uncommitted 2PL write, or a committed write whose write-through
// has not caught up). Everything else is paged in from the buffer pool on
// demand, so a database several times the pool size serves reads and scans
// in bounded memory. Every committed effect (an MVCC stamp, an
// immediately-stamped bulk write, a migration import or drop) is written
// through to the heap under the store mutex; once the heap cell matches the
// live value again the body is dropped from RAM.
//
// The pool does no fsync on the write path — durability comes from
// checkpoints, which flush the pool, serialise the committed access
// structures (RID map, free-space map, per-attribute indexes) into blob
// pages, and commit a new page-file generation whose metadata records both
// the image's exact journal position and the index chain's root. Crash
// recovery mounts the last committed generation, loads the index image in
// O(index pages), and replays only the journal tail past the recorded
// position.
//
// While a checkpoint flushes, a fence redirects write-throughs into a
// deferred queue instead of the heap — group commit never waits on
// checkpoint I/O — and the queue drains when the checkpoint finishes.

// ErrNoBacking reports a checkpoint operation on a store without a paged
// backing file.
var ErrNoBacking = errors.New("kdb: store has no paged backing")

// ErrCheckpointActive reports an attempt to begin a checkpoint while one is
// already fencing the store.
var ErrCheckpointActive = errors.New("kdb: checkpoint already in progress")

// backApply is one write-through deferred by a checkpoint fence.
type backApply struct {
	id    abdm.RecordID
	rec   *abdm.Record // nil = delete
	epoch uint64
}

// backing is the paged on-disk side of a Store. All fields are guarded by
// the store mutex except the heap, which has its own lock so checkpoint
// flushes and demand reads can run without stalling the store.
type backing struct {
	file *pager.File
	pool *pager.Pool
	heap *pager.Heap

	rids     map[abdm.RecordID]pager.RID
	fileOfC  map[abdm.RecordID]string // committed file per record (image contents)
	cIndexes map[string]*attrIndex    // attr indexes over committed state only
	pending  map[abdm.RecordID]int    // records with uncommitted versions in RAM

	appliedEpoch uint64 // newest commit epoch written through
	baseEpoch    uint64 // epoch the mounted image was exact at (≥ 1)
	maxID        uint64 // record-id high water ever applied
	fence        bool
	deferred     []backApply
	err          error // first write-through failure; sticky

	indexPages []uint32 // blob pages of the committed generation's image
	ckptPages  []uint32 // blob pages a CheckpointFlush just committed
	ckptOK     bool     // the last flush committed and ckptPages supersede indexPages
}

// WithPageSize sets the page size used by CreateBacked. The default is
// pager.DefaultPageSize.
func WithPageSize(n int) Option { return func(s *Store) { s.pageSize = n } }

// WithPoolPages caps the buffer pool at n resident pages. The default keeps
// 1024 pages (4 MiB at the default page size).
func WithPoolPages(n int) Option { return func(s *Store) { s.poolPages = n } }

const defaultPoolPages = 1024

// CreateBacked builds an empty store whose committed state is written
// through to a new page file at path.
func CreateBacked(path string, dir *abdm.Directory, opts ...Option) (*Store, error) {
	s := NewStore(dir, opts...)
	f, err := pager.Create(path, s.pageSize)
	if err != nil {
		return nil, err
	}
	s.attachBacking(f)
	return s, nil
}

// OpenBacked mounts the page file's last committed generation and builds a
// store from it. A generation carrying a persisted index image (Meta.HasIndex)
// restores the RID map, membership and attribute indexes by reading the
// image's blob chain — O(index pages) — and materialises no record body:
// reads page bodies in on demand. A legacy generation without an image is
// restored by the old full-heap scan (still without materialising bodies).
// The returned metadata carries the checkpoint position for bounded-tail
// journal recovery.
func OpenBacked(path string, dir *abdm.Directory, opts ...Option) (*Store, pager.Meta, error) {
	return openBacked(path, dir, nil, opts)
}

// OpenBackedAt is OpenBacked bounded to the newest committed generation
// whose metadata covers at most maxEntries journal entries — the cut a fleet
// recovery computes so every backend mounts the same coordinated checkpoint.
// When a newer generation is passed over, the choice is sealed by committing
// the chosen generation again, so a later unbounded open cannot resurrect
// the abandoned one.
func OpenBackedAt(path string, dir *abdm.Directory, maxEntries uint64, opts ...Option) (*Store, pager.Meta, error) {
	return openBacked(path, dir, &maxEntries, opts)
}

func openBacked(path string, dir *abdm.Directory, bound *uint64, opts []Option) (*Store, pager.Meta, error) {
	s := NewStore(dir, opts...)
	var (
		f    *pager.File
		err  error
		seal bool
	)
	if bound == nil {
		f, err = pager.Open(path)
	} else {
		var metas []pager.Meta
		metas, err = pager.Metas(path)
		if err != nil {
			return nil, pager.Meta{}, err
		}
		f, err = pager.OpenAt(path, *bound)
		if err == nil && len(metas) > 0 && metas[0].Entries > f.Meta().Entries {
			seal = true
		}
	}
	if err != nil {
		return nil, pager.Meta{}, err
	}
	meta := f.Meta()
	if seal {
		// Abandon the newer generation for good: recommitting the chosen one
		// overwrites the abandoned superblock, so no later open — and no
		// write into what it thought were its pages — can tear it.
		if err := f.Commit(meta); err != nil {
			f.Close()
			return nil, pager.Meta{}, err
		}
		meta = f.Meta()
	}
	pool := pager.NewPool(f, s.poolPages)
	baseEpoch := meta.Epoch
	if baseEpoch == 0 {
		baseEpoch = 1
	}
	s.mvcc.chains = make(map[string]map[abdm.RecordID][]version)
	s.mvcc.pending = make(map[uint64][]chainRef)
	s.mvcc.epoch = baseEpoch
	b := &backing{
		file: f, pool: pool,
		rids:         make(map[abdm.RecordID]pager.RID),
		fileOfC:      make(map[abdm.RecordID]string),
		cIndexes:     make(map[string]*attrIndex),
		pending:      make(map[abdm.RecordID]int),
		appliedEpoch: baseEpoch, baseEpoch: baseEpoch,
		maxID: meta.NextID,
	}
	if meta.HasIndex {
		err = s.openFromImage(b, meta)
	} else {
		err = s.openFromScan(b)
	}
	if err != nil {
		f.Close()
		return nil, pager.Meta{}, err
	}
	if s.seedID != nil {
		s.seedID(abdm.RecordID(b.maxID))
	}
	s.backing = b
	return s, meta, nil
}

// openFromImage restores the access structures from the persisted index
// image — no heap scan, no record bodies.
func (s *Store) openFromImage(b *backing, meta pager.Meta) error {
	payload, pages, err := pager.ReadBlob(b.pool, meta.IndexRoot)
	if err != nil {
		return fmt.Errorf("kdb: reading index image: %w", err)
	}
	img, err := decodeImage(payload)
	if err != nil {
		return err
	}
	b.indexPages = pages
	b.rids = img.rids
	b.fileOfC = img.fileOf
	if img.maxID > b.maxID {
		b.maxID = img.maxID
	}
	b.heap = pager.NewHeapAt(b.pool, img.avail)
	for id, file := range img.fileOf {
		if s.files[file] == nil {
			s.files[file] = make(map[abdm.RecordID]*abdm.Record)
		}
		s.files[file][id] = nil // body paged in on demand
		s.fileOf[id] = file
	}
	switch {
	case s.noIndex:
		// Ablation store: no attribute indexes, whatever the image holds.
	case img.indexed:
		s.indexes = img.indexes
		b.cIndexes = cloneIndexes(img.indexes)
	case len(img.rids) > 0:
		// The image was written by a WithoutIndexes store but this store
		// wants indexes: rebuild them by scanning the heap once.
		err := b.heap.Scan(func(_ pager.RID, cell []byte) error {
			id, rec, err := decodeRecord(cell)
			if err != nil {
				return err
			}
			s.indexRecordLocked(b, id, rec)
			return nil
		})
		if err != nil {
			return fmt.Errorf("kdb: corrupt backing record: %w", err)
		}
	}
	return nil
}

// openFromScan restores a legacy generation (no persisted image) by the old
// full-heap scan, building membership, RID map and indexes — but not
// materialising bodies or version chains.
func (s *Store) openFromScan(b *backing) error {
	heap, err := pager.NewHeap(b.pool)
	if err != nil {
		return err
	}
	b.heap = heap
	err = heap.Scan(func(rid pager.RID, cell []byte) error {
		id, rec, err := decodeRecord(cell)
		if err != nil {
			return err
		}
		file := rec.File()
		if s.files[file] == nil {
			s.files[file] = make(map[abdm.RecordID]*abdm.Record)
		}
		s.files[file][id] = nil
		s.fileOf[id] = file
		b.rids[id] = rid
		b.fileOfC[id] = file
		if !s.noIndex {
			s.indexRecordLocked(b, id, rec)
		}
		if uint64(id) > b.maxID {
			b.maxID = uint64(id)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("kdb: corrupt backing record: %w", err)
	}
	return nil
}

// indexRecordLocked adds one committed record's keywords to both the live
// and the committed index (identical at open).
func (s *Store) indexRecordLocked(b *backing, id abdm.RecordID, rec *abdm.Record) {
	for _, kw := range rec.Keywords {
		ix := s.indexes[kw.Attr]
		if ix == nil {
			ix = newAttrIndex()
			s.indexes[kw.Attr] = ix
		}
		ix.add(kw.Val, id)
		cx := b.cIndexes[kw.Attr]
		if cx == nil {
			cx = newAttrIndex()
			b.cIndexes[kw.Attr] = cx
		}
		cx.add(kw.Val, id)
	}
}

// attachBacking wires a fresh (empty) page file to the store.
func (s *Store) attachBacking(f *pager.File) {
	pool := pager.NewPool(f, s.poolPages)
	heap, _ := pager.NewHeap(pool) // empty file: the scan cannot fail
	s.backing = &backing{
		file: f, pool: pool, heap: heap,
		rids:      make(map[abdm.RecordID]pager.RID),
		fileOfC:   make(map[abdm.RecordID]string),
		cIndexes:  make(map[string]*attrIndex),
		pending:   make(map[abdm.RecordID]int),
		baseEpoch: 1,
	}
}

// Backed reports whether the store writes through to a page file.
func (s *Store) Backed() bool { return s.backing != nil }

// CloseBacking closes the page file without committing; state since the
// last checkpoint survives only in the journal. A store without backing is
// a no-op.
func (s *Store) CloseBacking() error {
	if s.backing == nil {
		return nil
	}
	return s.backing.file.Close()
}

// BackingStats reports the buffer pool counters and heap page count of a
// backed store.
func (s *Store) BackingStats() (pager.PoolStats, int, bool) {
	if s.backing == nil {
		return pager.PoolStats{}, 0, false
	}
	return s.backing.pool.Stats(), s.backing.file.Pages(), true
}

// BackingMeta reports the page file's current committed generation metadata
// — what a crash right now would recover to. Fleet recovery reads it to seed
// the controller after mounting every store at a common cut.
func (s *Store) BackingMeta() (pager.Meta, bool) {
	if s.backing == nil {
		return pager.Meta{}, false
	}
	return s.backing.file.Meta(), true
}

// ResidentRecords reports how many record bodies are materialised in RAM. A
// backed store keeps a body resident only while it differs from its
// committed heap cell; a memory store holds everything.
func (s *Store) ResidentRecords() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.backing != nil {
		return s.resident
	}
	return len(s.fileOf)
}

// applyBacking writes one committed effect through to the heap, or defers
// it while a checkpoint fence is up. Caller holds the write lock.
func (s *Store) applyBacking(id abdm.RecordID, rec *abdm.Record, epoch uint64) {
	b := s.backing
	if b == nil || b.err != nil {
		return
	}
	if b.fence {
		var cp *abdm.Record
		if rec != nil {
			cp = rec.Clone()
		}
		b.deferred = append(b.deferred, backApply{id: id, rec: cp, epoch: epoch})
		return
	}
	s.applyBackingNow(id, rec, epoch)
}

func (s *Store) applyBackingNow(id abdm.RecordID, rec *abdm.Record, epoch uint64) {
	b := s.backing
	if epoch > b.appliedEpoch {
		b.appliedEpoch = epoch
	}
	if uint64(id) > b.maxID {
		b.maxID = uint64(id)
	}
	rid, exists := b.rids[id]
	var err error
	// The committed index is maintained by diffing the heap cell being
	// replaced against the new committed value.
	if exists && !s.noIndex {
		var cell []byte
		if cell, err = b.heap.Get(rid); err == nil {
			var old *abdm.Record
			if _, old, err = decodeRecord(cell); err == nil {
				for _, kw := range old.Keywords {
					if ix := b.cIndexes[kw.Attr]; ix != nil {
						ix.remove(kw.Val, id)
					}
				}
			}
		}
	}
	if err == nil {
		switch {
		case rec == nil && exists:
			err = b.heap.Delete(rid)
			delete(b.rids, id)
			delete(b.fileOfC, id)
		case rec == nil:
			// Delete of a record the image never held: nothing to do.
		case exists:
			var nr pager.RID
			if nr, err = b.heap.Update(rid, encodeRecord(id, rec)); err == nil {
				b.rids[id] = nr
				b.fileOfC[id] = rec.File()
			}
		default:
			var nr pager.RID
			if nr, err = b.heap.Put(encodeRecord(id, rec)); err == nil {
				b.rids[id] = nr
				b.fileOfC[id] = rec.File()
			}
		}
	}
	if err == nil && rec != nil && !s.noIndex {
		for _, kw := range rec.Keywords {
			ix := b.cIndexes[kw.Attr]
			if ix == nil {
				ix = newAttrIndex()
				b.cIndexes[kw.Attr] = ix
			}
			ix.add(kw.Val, id)
		}
	}
	if err == nil {
		s.deresidentLocked(id, rec)
		return
	}
	if b.err == nil {
		b.err = fmt.Errorf("kdb: backing write-through: %w", err)
	}
	s.reresidentLocked(id, rec)
}

// deresidentLocked drops a record body from RAM after a successful
// write-through: the heap cell now matches the live value, so reads can
// page it back in. A record with uncommitted versions stays resident — its
// live value is ahead of the heap.
func (s *Store) deresidentLocked(id abdm.RecordID, rec *abdm.Record) {
	if rec == nil {
		return
	}
	if s.backing.pending[id] > 0 {
		return
	}
	f, live := s.fileOf[id]
	if !live || f != rec.File() {
		return
	}
	if s.files[f][id] != nil {
		s.files[f][id] = nil
		s.resident--
	}
}

// reresidentLocked pins a record body back into RAM after a failed
// write-through, so reads keep serving the committed value the heap never
// received. The sticky backing error keeps the broken image out of any
// checkpoint.
func (s *Store) reresidentLocked(id abdm.RecordID, rec *abdm.Record) {
	if rec == nil {
		return
	}
	f, live := s.fileOf[id]
	if !live || f != rec.File() {
		return
	}
	if s.files[f][id] == nil {
		s.files[f][id] = rec.Clone()
		s.resident++
	}
}

// pendingInc counts one uncommitted version of id held in RAM.
func (s *Store) pendingInc(id abdm.RecordID) {
	if s.backing != nil {
		s.backing.pending[id]++
	}
}

// pendingDec releases one uncommitted version of id.
func (s *Store) pendingDec(id abdm.RecordID) {
	if s.backing == nil {
		return
	}
	if n := s.backing.pending[id]; n > 1 {
		s.backing.pending[id] = n - 1
	} else {
		delete(s.backing.pending, id)
	}
}

// backingStamp writes the newest committed state of each stamped chain
// through to the heap. Caller holds the write lock; refs are the chains the
// stamp touched.
func (s *Store) backingStamp(refs []chainRef, epoch uint64) {
	if s.backing == nil {
		return
	}
	seen := make(map[chainRef]bool, len(refs))
	for _, ref := range refs {
		if seen[ref] {
			continue
		}
		seen[ref] = true
		chain := s.mvcc.chains[ref.file][ref.id]
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].epoch != 0 {
				s.applyBacking(ref.id, chain[i].rec, epoch)
				break
			}
		}
	}
}

// CheckpointBegin fences the store for a fuzzy checkpoint and returns the
// newest commit epoch the backing has applied — the epoch the image will be
// exact at. Write-throughs queue behind the fence until the checkpoint is
// released; the live maps, reads and group commit proceed untouched.
func (s *Store) CheckpointBegin() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.backing == nil {
		return 0, ErrNoBacking
	}
	if s.backing.err != nil {
		return 0, s.backing.err
	}
	if s.backing.fence {
		return 0, ErrCheckpointActive
	}
	s.backing.fence = true
	return s.backing.appliedEpoch, nil
}

// CheckpointFlush flushes the buffer pool, writes the persisted index image
// into fresh blob pages, and commits a new page-file generation carrying
// meta plus the image root (NextID is filled in from the backing's id high
// water). It runs without the store lock — the fence raised by
// CheckpointBegin keeps the committed structures frozen — so concurrent
// commits only ever pay the cost of queueing behind the fence. The fence
// stays up; call CheckpointRelease (or use CheckpointCommit, which is
// flush + release).
func (s *Store) CheckpointFlush(meta pager.Meta) error {
	b := s.backing
	if b == nil {
		return ErrNoBacking
	}
	if meta.NextID < b.maxID {
		meta.NextID = b.maxID
	}
	err := b.heap.Flush()
	if err == nil {
		payload := encodeImage(b.maxID, b.rids, b.fileOfC, b.heap.AvailSnapshot(),
			!s.noIndex, b.cIndexes)
		var pages []uint32
		if pages, err = b.file.WriteBlob(payload); err == nil {
			meta.HasIndex = true
			meta.IndexRoot = pages[0]
			if err = b.file.Commit(meta); err == nil {
				b.ckptPages, b.ckptOK = pages, true
				return nil
			}
			// The image pages never committed; return them to the free list
			// so the next generation doesn't carry garbage.
			for _, id := range pages {
				b.file.FreeLogical(id)
			}
			b.pool.Invalidate(pages)
		}
	}
	b.ckptPages, b.ckptOK = nil, false
	return err
}

// CheckpointRelease lifts the checkpoint fence and drains the deferred
// write-throughs. If the preceding CheckpointFlush committed, the previous
// generation's image pages are freed (durably at the next commit) and the
// new image takes their place; after a failed or skipped flush there is
// nothing to swap.
func (s *Store) CheckpointRelease() {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.backing
	if b == nil {
		return
	}
	if b.ckptOK {
		for _, id := range b.indexPages {
			b.file.FreeLogical(id)
		}
		b.pool.Invalidate(b.indexPages)
		b.indexPages = b.ckptPages
	}
	b.ckptPages, b.ckptOK = nil, false
	b.fence = false
	for _, a := range b.deferred {
		s.applyBackingNow(a.id, a.rec, a.epoch)
	}
	b.deferred = nil
}

// CheckpointCommit is CheckpointFlush followed by CheckpointRelease: the
// single-store checkpoint path.
func (s *Store) CheckpointCommit(meta pager.Meta) error {
	b := s.backing
	if b == nil {
		return ErrNoBacking
	}
	err := s.CheckpointFlush(meta)
	s.CheckpointRelease()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return b.err
}

// CheckpointAbort lifts the fence without treating the checkpoint as
// complete, draining the deferred write-throughs into the working
// generation. (A flush that already committed its generation stands — the
// image is valid on its own — so abort after flush equals release.)
func (s *Store) CheckpointAbort() {
	s.CheckpointRelease()
}

// ScanBacking streams every record in the page image through the buffer
// pool in page order, decoding each cell. It reads the working generation —
// committed state plus any write-throughs since — and takes the store lock
// only briefly to resolve the heap, so it can overlap normal traffic.
func (s *Store) ScanBacking(fn func(id abdm.RecordID, rec *abdm.Record) error) error {
	s.mu.RLock()
	b := s.backing
	s.mu.RUnlock()
	if b == nil {
		return ErrNoBacking
	}
	return b.heap.Scan(func(_ pager.RID, cell []byte) error {
		id, rec, err := decodeRecord(cell)
		if err != nil {
			return err
		}
		return fn(id, rec)
	})
}

// Record codec: a compact binary form for heap cells.
//
//	uvarint id
//	uvarint keyword count
//	per keyword: uvarint len(attr), attr, then the value (kind byte +
//	  payload: int varint; float 8-byte LE bits; string uvarint len, bytes)
//	uvarint len(text), text

func encodeRecord(id abdm.RecordID, rec *abdm.Record) []byte {
	buf := binary.AppendUvarint(nil, uint64(id))
	buf = binary.AppendUvarint(buf, uint64(len(rec.Keywords)))
	for _, kw := range rec.Keywords {
		buf = binary.AppendUvarint(buf, uint64(len(kw.Attr)))
		buf = append(buf, kw.Attr...)
		buf = appendValue(buf, kw.Val)
	}
	buf = binary.AppendUvarint(buf, uint64(len(rec.Text)))
	buf = append(buf, rec.Text...)
	return buf
}

var errShortRecord = errors.New("kdb: truncated record cell")

func decodeRecord(cell []byte) (abdm.RecordID, *abdm.Record, error) {
	idU, n := binary.Uvarint(cell)
	if n <= 0 {
		return 0, nil, errShortRecord
	}
	cell = cell[n:]
	nkw, n := binary.Uvarint(cell)
	if n <= 0 {
		return 0, nil, errShortRecord
	}
	cell = cell[n:]
	rec := &abdm.Record{Keywords: make([]abdm.Keyword, 0, nkw)}
	for i := uint64(0); i < nkw; i++ {
		ln, n := binary.Uvarint(cell)
		if n <= 0 {
			return 0, nil, errShortRecord
		}
		cell = cell[n:]
		if uint64(len(cell)) < ln {
			return 0, nil, errShortRecord
		}
		attr := string(cell[:ln])
		cell = cell[ln:]
		var (
			val abdm.Value
			err error
		)
		if val, cell, err = readValue(cell); err != nil {
			return 0, nil, err
		}
		rec.Keywords = append(rec.Keywords, abdm.Keyword{Attr: attr, Val: val})
	}
	ln, n := binary.Uvarint(cell)
	if n <= 0 {
		return 0, nil, errShortRecord
	}
	cell = cell[n:]
	if uint64(len(cell)) < ln {
		return 0, nil, errShortRecord
	}
	rec.Text = string(cell[:ln])
	return abdm.RecordID(idU), rec, nil
}
