package kdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"mlds/internal/abdm"
	"mlds/internal/pager"
)

// Paged backing.
//
// A backed store keeps its committed state in a pager heap as well as in the
// live maps: every committed effect (an MVCC stamp, an immediately-stamped
// bulk write, a migration import or drop) is written through to the heap's
// buffer pool. The pool does no fsync on the write path — durability comes
// from checkpoints, which flush the pool and commit a new page-file
// generation whose embedded metadata records the exact journal position the
// image reflects. Crash recovery then mounts the last committed generation
// and replays only the journal tail past that position.
//
// The write-through happens under the store mutex, so the image always
// corresponds to a prefix of the store's committed history. While a
// checkpoint flushes, a fence redirects write-throughs into a deferred
// queue instead of the heap — group commit never waits on checkpoint I/O —
// and the queue drains when the checkpoint finishes.

// ErrNoBacking reports a checkpoint operation on a store without a paged
// backing file.
var ErrNoBacking = errors.New("kdb: store has no paged backing")

// ErrCheckpointActive reports an attempt to begin a checkpoint while one is
// already fencing the store.
var ErrCheckpointActive = errors.New("kdb: checkpoint already in progress")

// backApply is one write-through deferred by a checkpoint fence.
type backApply struct {
	id    abdm.RecordID
	rec   *abdm.Record // nil = delete
	epoch uint64
}

// backing is the paged on-disk side of a Store. All fields are guarded by
// the store mutex except the heap, which has its own lock so checkpoint
// flushes can run without stalling the store.
type backing struct {
	file *pager.File
	pool *pager.Pool
	heap *pager.Heap

	rids         map[abdm.RecordID]pager.RID
	appliedEpoch uint64 // newest commit epoch written through
	maxID        uint64 // record-id high water ever applied
	fence        bool
	deferred     []backApply
	err          error // first write-through failure; sticky
}

// WithPageSize sets the page size used by CreateBacked. The default is
// pager.DefaultPageSize.
func WithPageSize(n int) Option { return func(s *Store) { s.pageSize = n } }

// WithPoolPages caps the buffer pool at n resident pages. The default keeps
// 1024 pages (4 MiB at the default page size).
func WithPoolPages(n int) Option { return func(s *Store) { s.poolPages = n } }

const defaultPoolPages = 1024

// CreateBacked builds an empty store whose committed state is written
// through to a new page file at path.
func CreateBacked(path string, dir *abdm.Directory, opts ...Option) (*Store, error) {
	s := NewStore(dir, opts...)
	f, err := pager.Create(path, s.pageSize)
	if err != nil {
		return nil, err
	}
	s.attachBacking(f)
	return s, nil
}

// OpenBacked mounts the page file's last committed generation and builds a
// store from it: live maps and indexes from the heap scan, one committed
// version per record so snapshots and migration see the restored state, and
// the record-id allocator seeded past every id the image has seen. The
// returned metadata carries the checkpoint position for bounded-tail
// journal recovery.
func OpenBacked(path string, dir *abdm.Directory, opts ...Option) (*Store, pager.Meta, error) {
	s := NewStore(dir, opts...)
	f, err := pager.Open(path)
	if err != nil {
		return nil, pager.Meta{}, err
	}
	meta := f.Meta()
	pool := pager.NewPool(f, s.poolPages)
	heap, err := pager.NewHeap(pool)
	if err != nil {
		f.Close()
		return nil, pager.Meta{}, err
	}
	epoch := meta.Epoch
	if epoch == 0 {
		epoch = 1
	}
	s.mvcc.chains = make(map[string]map[abdm.RecordID][]version)
	s.mvcc.pending = make(map[uint64][]chainRef)
	s.mvcc.epoch = epoch
	rids := make(map[abdm.RecordID]pager.RID)
	maxID := meta.NextID
	err = heap.Scan(func(rid pager.RID, cell []byte) error {
		id, rec, err := decodeRecord(cell)
		if err != nil {
			return err
		}
		s.addLocked(id, rec)
		file := rec.File()
		if s.mvcc.chains[file] == nil {
			s.mvcc.chains[file] = make(map[abdm.RecordID][]version)
		}
		s.mvcc.chains[file][id] = []version{{epoch: epoch, rec: rec.Clone()}}
		s.mvcc.versions++
		rids[id] = rid
		if uint64(id) > maxID {
			maxID = uint64(id)
		}
		return nil
	})
	if err != nil {
		f.Close()
		return nil, pager.Meta{}, fmt.Errorf("kdb: corrupt backing record: %w", err)
	}
	if s.seedID != nil {
		s.seedID(abdm.RecordID(maxID))
	}
	s.backing = &backing{file: f, pool: pool, heap: heap, rids: rids,
		appliedEpoch: epoch, maxID: maxID}
	return s, meta, nil
}

// attachBacking wires a fresh (empty) page file to the store.
func (s *Store) attachBacking(f *pager.File) {
	pool := pager.NewPool(f, s.poolPages)
	heap, _ := pager.NewHeap(pool) // empty file: the scan cannot fail
	s.backing = &backing{file: f, pool: pool, heap: heap,
		rids: make(map[abdm.RecordID]pager.RID)}
}

// Backed reports whether the store writes through to a page file.
func (s *Store) Backed() bool { return s.backing != nil }

// CloseBacking closes the page file without committing; state since the
// last checkpoint survives only in the journal. A store without backing is
// a no-op.
func (s *Store) CloseBacking() error {
	if s.backing == nil {
		return nil
	}
	return s.backing.file.Close()
}

// BackingStats reports the buffer pool counters and heap page count of a
// backed store.
func (s *Store) BackingStats() (pager.PoolStats, int, bool) {
	if s.backing == nil {
		return pager.PoolStats{}, 0, false
	}
	return s.backing.pool.Stats(), s.backing.file.Pages(), true
}

// applyBacking writes one committed effect through to the heap, or defers
// it while a checkpoint fence is up. Caller holds the write lock.
func (s *Store) applyBacking(id abdm.RecordID, rec *abdm.Record, epoch uint64) {
	b := s.backing
	if b == nil || b.err != nil {
		return
	}
	if b.fence {
		var cp *abdm.Record
		if rec != nil {
			cp = rec.Clone()
		}
		b.deferred = append(b.deferred, backApply{id: id, rec: cp, epoch: epoch})
		return
	}
	s.applyBackingNow(id, rec, epoch)
}

func (s *Store) applyBackingNow(id abdm.RecordID, rec *abdm.Record, epoch uint64) {
	b := s.backing
	if epoch > b.appliedEpoch {
		b.appliedEpoch = epoch
	}
	if uint64(id) > b.maxID {
		b.maxID = uint64(id)
	}
	rid, exists := b.rids[id]
	var err error
	switch {
	case rec == nil && exists:
		err = b.heap.Delete(rid)
		delete(b.rids, id)
	case rec == nil:
		// Delete of a record the image never held: nothing to do.
	case exists:
		var nr pager.RID
		nr, err = b.heap.Update(rid, encodeRecord(id, rec))
		if err == nil {
			b.rids[id] = nr
		}
	default:
		var nr pager.RID
		nr, err = b.heap.Put(encodeRecord(id, rec))
		if err == nil {
			b.rids[id] = nr
		}
	}
	if err != nil && b.err == nil {
		b.err = fmt.Errorf("kdb: backing write-through: %w", err)
	}
}

// backingStamp writes the newest committed state of each stamped chain
// through to the heap. Caller holds the write lock; refs are the chains the
// stamp touched.
func (s *Store) backingStamp(refs []chainRef, epoch uint64) {
	if s.backing == nil {
		return
	}
	seen := make(map[chainRef]bool, len(refs))
	for _, ref := range refs {
		if seen[ref] {
			continue
		}
		seen[ref] = true
		chain := s.mvcc.chains[ref.file][ref.id]
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].epoch != 0 {
				s.applyBacking(ref.id, chain[i].rec, epoch)
				break
			}
		}
	}
}

// CheckpointBegin fences the store for a fuzzy checkpoint and returns the
// newest commit epoch the backing has applied — the epoch the image will be
// exact at. Write-throughs queue behind the fence until CheckpointCommit or
// CheckpointAbort; the live maps, reads and group commit proceed untouched.
func (s *Store) CheckpointBegin() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.backing == nil {
		return 0, ErrNoBacking
	}
	if s.backing.err != nil {
		return 0, s.backing.err
	}
	if s.backing.fence {
		return 0, ErrCheckpointActive
	}
	s.backing.fence = true
	return s.backing.appliedEpoch, nil
}

// CheckpointCommit flushes the buffer pool and commits a new page-file
// generation carrying meta (NextID is filled in from the backing's id high
// water), then lifts the fence and drains the deferred write-throughs. The
// flush and commit run without the store lock, so concurrent commits only
// ever pay the cost of queueing behind the fence.
func (s *Store) CheckpointCommit(meta pager.Meta) error {
	b := s.backing
	if b == nil {
		return ErrNoBacking
	}
	if meta.NextID < b.maxID {
		meta.NextID = b.maxID
	}
	err := b.heap.Flush()
	if err == nil {
		err = b.file.Commit(meta)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b.fence = false
	for _, a := range b.deferred {
		s.applyBackingNow(a.id, a.rec, a.epoch)
	}
	b.deferred = nil
	if err != nil {
		return err
	}
	return b.err
}

// CheckpointAbort lifts the fence without committing, draining the deferred
// write-throughs into the working generation.
func (s *Store) CheckpointAbort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.backing
	if b == nil {
		return
	}
	b.fence = false
	for _, a := range b.deferred {
		s.applyBackingNow(a.id, a.rec, a.epoch)
	}
	b.deferred = nil
}

// ScanBacking streams every record in the page image through the buffer
// pool in page order, decoding each cell. It reads the working generation —
// committed state plus any write-throughs since — and takes the store lock
// only briefly to resolve the heap, so it can overlap normal traffic.
func (s *Store) ScanBacking(fn func(id abdm.RecordID, rec *abdm.Record) error) error {
	s.mu.RLock()
	b := s.backing
	s.mu.RUnlock()
	if b == nil {
		return ErrNoBacking
	}
	return b.heap.Scan(func(_ pager.RID, cell []byte) error {
		id, rec, err := decodeRecord(cell)
		if err != nil {
			return err
		}
		return fn(id, rec)
	})
}

// Record codec: a compact binary form for heap cells.
//
//	uvarint id
//	uvarint keyword count
//	per keyword: uvarint len(attr), attr, kind byte, payload
//	  (int: varint; float: 8-byte LE bits; string: uvarint len, bytes)
//	uvarint len(text), text

func encodeRecord(id abdm.RecordID, rec *abdm.Record) []byte {
	buf := binary.AppendUvarint(nil, uint64(id))
	buf = binary.AppendUvarint(buf, uint64(len(rec.Keywords)))
	for _, kw := range rec.Keywords {
		buf = binary.AppendUvarint(buf, uint64(len(kw.Attr)))
		buf = append(buf, kw.Attr...)
		buf = append(buf, byte(kw.Val.Kind()))
		switch kw.Val.Kind() {
		case abdm.KindInt:
			buf = binary.AppendVarint(buf, kw.Val.AsInt())
		case abdm.KindFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(kw.Val.AsFloat()))
		case abdm.KindString:
			s := kw.Val.AsString()
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(rec.Text)))
	buf = append(buf, rec.Text...)
	return buf
}

var errShortRecord = errors.New("kdb: truncated record cell")

func decodeRecord(cell []byte) (abdm.RecordID, *abdm.Record, error) {
	idU, n := binary.Uvarint(cell)
	if n <= 0 {
		return 0, nil, errShortRecord
	}
	cell = cell[n:]
	nkw, n := binary.Uvarint(cell)
	if n <= 0 {
		return 0, nil, errShortRecord
	}
	cell = cell[n:]
	rec := &abdm.Record{Keywords: make([]abdm.Keyword, 0, nkw)}
	readBytes := func(ln uint64) ([]byte, error) {
		if uint64(len(cell)) < ln {
			return nil, errShortRecord
		}
		out := cell[:ln]
		cell = cell[ln:]
		return out, nil
	}
	for i := uint64(0); i < nkw; i++ {
		ln, n := binary.Uvarint(cell)
		if n <= 0 {
			return 0, nil, errShortRecord
		}
		cell = cell[n:]
		attr, err := readBytes(ln)
		if err != nil {
			return 0, nil, err
		}
		if len(cell) < 1 {
			return 0, nil, errShortRecord
		}
		kind := abdm.Kind(cell[0])
		cell = cell[1:]
		var val abdm.Value
		switch kind {
		case abdm.KindNull:
			val = abdm.Null()
		case abdm.KindInt:
			v, n := binary.Varint(cell)
			if n <= 0 {
				return 0, nil, errShortRecord
			}
			cell = cell[n:]
			val = abdm.Int(v)
		case abdm.KindFloat:
			raw, err := readBytes(8)
			if err != nil {
				return 0, nil, err
			}
			val = abdm.Float(math.Float64frombits(binary.LittleEndian.Uint64(raw)))
		case abdm.KindString:
			ln, n := binary.Uvarint(cell)
			if n <= 0 {
				return 0, nil, errShortRecord
			}
			cell = cell[n:]
			raw, err := readBytes(ln)
			if err != nil {
				return 0, nil, err
			}
			val = abdm.String(string(raw))
		default:
			return 0, nil, fmt.Errorf("kdb: record cell has unknown value kind %d", kind)
		}
		rec.Keywords = append(rec.Keywords, abdm.Keyword{Attr: string(attr), Val: val})
	}
	ln, n := binary.Uvarint(cell)
	if n <= 0 {
		return 0, nil, errShortRecord
	}
	cell = cell[n:]
	text, err := readBytes(ln)
	if err != nil {
		return 0, nil, err
	}
	rec.Text = string(text)
	return abdm.RecordID(idU), rec, nil
}
