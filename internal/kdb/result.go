package kdb

import (
	"fmt"
	"sort"
	"strings"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

// StoredRecord pairs a record with its database key. The database key is
// what CODASYL currency indicators hold.
type StoredRecord struct {
	ID  abdm.RecordID
	Rec *abdm.Record
}

// AggValue is one computed aggregate of a RETRIEVE target list.
type AggValue struct {
	Item abdl.TargetItem
	Val  abdm.Value
}

// Group is one by-clause group of a RETRIEVE result.
type Group struct {
	By   abdm.Value
	Recs []StoredRecord
	Aggs []AggValue
}

// Result is the outcome of executing one ABDL request.
type Result struct {
	Op      abdl.Kind
	Records []StoredRecord // RETRIEVE: qualifying records, projected
	Groups  []Group        // RETRIEVE with by-clause or aggregates
	Count   int            // INSERT/DELETE/UPDATE: records affected
	// Affected lists the database keys DELETE/UPDATE touched. The
	// multi-backend layer needs them under replicated placement: every
	// replica holder reports the same key, so the controller can count
	// logical records rather than physical copies.
	Affected []abdm.RecordID
	Cost     Cost
	// Versions is the backend's live version-chain entry count after an MVCC
	// administration operation (MVCC-COMMIT/ABORT/GC); the multi-backend
	// merge sums it so the controller can gauge total version footprint.
	Versions int
	// Paths lists the access paths the planner chose, one per conjunction
	// evaluated: "index-eq(attr)", "index-range(attr)", "scan(file)",
	// "empty(attr)" for provably-empty conjunctions. Diagnostic only.
	Paths []string
}

// IDs returns the database keys of the result records in order.
func (r *Result) IDs() []abdm.RecordID {
	out := make([]abdm.RecordID, len(r.Records))
	for i, sr := range r.Records {
		out[i] = sr.ID
	}
	return out
}

// Merge folds another partial result (from a different backend) into r,
// keeping records ordered by ID and re-aggregating groups.
func (r *Result) Merge(o *Result) {
	r.Count += o.Count
	r.Versions += o.Versions
	r.Cost.Add(o.Cost)
	for _, p := range o.Paths {
		seen := false
		for _, q := range r.Paths {
			if q == p {
				seen = true
				break
			}
		}
		if !seen {
			r.Paths = append(r.Paths, p)
		}
	}
	r.Records = append(r.Records, o.Records...)
	sort.Slice(r.Records, func(i, j int) bool { return r.Records[i].ID < r.Records[j].ID })
	r.Affected = append(r.Affected, o.Affected...)
	r.Groups = mergeGroups(r.Groups, o.Groups)
}

// DedupByID collapses duplicate record copies that replicated placement
// returns from a broadcast: result records and group members are
// deduplicated by database key, and Count is recomputed from the distinct
// Affected keys when the operation reported them. Aggregates must be
// recomputed after deduplication.
func (r *Result) DedupByID() {
	r.Records = dedupStored(r.Records)
	for i := range r.Groups {
		r.Groups[i].Recs = dedupStored(r.Groups[i].Recs)
	}
	if len(r.Affected) > 0 {
		seen := make(map[abdm.RecordID]bool, len(r.Affected))
		out := r.Affected[:0]
		for _, id := range r.Affected {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		r.Affected = out
		r.Count = len(out)
	}
}

// dedupStored keeps the first record of each database key, preserving order.
func dedupStored(in []StoredRecord) []StoredRecord {
	if len(in) < 2 {
		return in
	}
	seen := make(map[abdm.RecordID]bool, len(in))
	out := in[:0]
	for _, sr := range in {
		if !seen[sr.ID] {
			seen[sr.ID] = true
			out = append(out, sr)
		}
	}
	return out
}

func mergeGroups(a, b []Group) []Group {
	if len(b) == 0 {
		return a
	}
	byKey := make(map[string]*Group)
	var order []string
	add := func(gs []Group) {
		for _, g := range gs {
			k := g.By.String()
			if ex, ok := byKey[k]; ok {
				ex.Recs = append(ex.Recs, g.Recs...)
			} else {
				cp := g
				cp.Recs = append([]StoredRecord(nil), g.Recs...)
				cp.Aggs = nil // recomputed below
				byKey[k] = &cp
				order = append(order, k)
			}
		}
	}
	add(a)
	add(b)
	sort.Strings(order)
	out := make([]Group, 0, len(order))
	for _, k := range order {
		g := byKey[k]
		sort.Slice(g.Recs, func(i, j int) bool { return g.Recs[i].ID < g.Recs[j].ID })
		out = append(out, *g)
	}
	return out
}

// RecomputeAggregates fills in group aggregates after a merge, using the
// request's target list. Aggregates cannot simply be summed across backends
// (AVG is not distributive over partial averages), so merged results carry
// raw records and aggregate here.
func (r *Result) RecomputeAggregates(target []abdl.TargetItem) {
	hasAgg := false
	for _, t := range target {
		if t.Agg != abdl.AggNone {
			hasAgg = true
		}
	}
	if !hasAgg {
		return
	}
	if len(r.Groups) == 0 && len(r.Records) > 0 {
		r.Groups = []Group{{By: abdm.Null(), Recs: r.Records}}
	}
	for i := range r.Groups {
		r.Groups[i].Aggs = computeAggs(target, r.Groups[i].Recs)
	}
}

func computeAggs(target []abdl.TargetItem, recs []StoredRecord) []AggValue {
	var out []AggValue
	for _, t := range target {
		if t.Agg == abdl.AggNone {
			continue
		}
		out = append(out, AggValue{Item: t, Val: aggregate(t, recs)})
	}
	return out
}

func aggregate(t abdl.TargetItem, recs []StoredRecord) abdm.Value {
	var (
		n     int64
		sum   float64
		allIn = true
		isum  int64
		best  abdm.Value
		have  bool
	)
	for _, sr := range recs {
		v, ok := sr.Rec.Get(t.Attr)
		if !ok || v.IsNull() {
			continue
		}
		n++
		switch t.Agg {
		case abdl.AggSum, abdl.AggAvg:
			sum += v.AsFloat()
			if v.Kind() == abdm.KindInt {
				isum += v.AsInt()
			} else {
				allIn = false
			}
		case abdl.AggMax:
			if !have {
				best, have = v, true
			} else if c, err := v.Compare(best); err == nil && c > 0 {
				best = v
			}
		case abdl.AggMin:
			if !have {
				best, have = v, true
			} else if c, err := v.Compare(best); err == nil && c < 0 {
				best = v
			}
		}
	}
	switch t.Agg {
	case abdl.AggCount:
		return abdm.Int(n)
	case abdl.AggSum:
		if allIn {
			return abdm.Int(isum)
		}
		return abdm.Float(sum)
	case abdl.AggAvg:
		if n == 0 {
			return abdm.Null()
		}
		return abdm.Float(sum / float64(n))
	case abdl.AggMax, abdl.AggMin:
		if !have {
			return abdm.Null()
		}
		return best
	}
	return abdm.Null()
}

// String summarises the result for diagnostics.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: ", r.Op)
	switch r.Op {
	case abdl.Retrieve, abdl.RetrieveCommon:
		fmt.Fprintf(&b, "%d records", len(r.Records))
		if len(r.Groups) > 0 {
			fmt.Fprintf(&b, ", %d groups", len(r.Groups))
		}
	default:
		fmt.Fprintf(&b, "%d affected", r.Count)
	}
	return b.String()
}
