package kdb

import (
	"fmt"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

// exportAll drains every page of an export at the given since bound.
func exportAll(t *testing.T, s *Store, since uint64, limit int) ([]MigRecord, uint64) {
	t.Helper()
	var out []MigRecord
	var after abdm.RecordID
	var epoch uint64
	for {
		recs, next, e, err := s.ExportSince(since, after, limit)
		if err != nil {
			t.Fatal(err)
		}
		if epoch == 0 {
			epoch = e
		}
		out = append(out, recs...)
		if next == 0 {
			return out, epoch
		}
		after = next
	}
}

// TestExportImportRoundTrip: a full export installed on an empty store
// reproduces the source exactly — live records, tombstones, and the version
// history snapshots read.
func TestExportImportRoundTrip(t *testing.T) {
	src := NewStore(testDir(t))
	for i := 0; i < 5; i++ {
		if _, err := src.Insert(courseRec(fmt.Sprintf("C%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	_, pin := src.VersionStats()
	up := abdl.NewUpdate(courseQuery("C2"), abdl.Modifier{Attr: "credits", Val: abdm.Int(99)})
	up.TxnID = 1
	mvccOp(t, src, up)
	mvccOp(t, src, &abdl.Request{Kind: abdl.MvccCommit, TxnID: 1, MvccEpoch: pin + 1})
	del := abdl.NewDelete(courseQuery("C4"))
	del.TxnID = 2
	mvccOp(t, src, del)
	mvccOp(t, src, &abdl.Request{Kind: abdl.MvccCommit, TxnID: 2, MvccEpoch: pin + 2})

	recs, _ := exportAll(t, src, 0, 2)
	dst := NewStore(testDir(t))
	applied, err := dst.ImportPartition(recs)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(recs) {
		t.Fatalf("imported %d of %d records", applied, len(recs))
	}

	if got, want := dst.Len(), src.Len(); got != want {
		t.Fatalf("dst has %d live records, src has %d", got, want)
	}
	srcSnap, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dstSnap, err := dst.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(srcSnap) != len(dstSnap) {
		t.Fatalf("snapshot sizes differ: src %d, dst %d", len(srcSnap), len(dstSnap))
	}
	for i := range srcSnap {
		if srcSnap[i].ID != dstSnap[i].ID || srcSnap[i].Rec.Key() != dstSnap[i].Rec.Key() {
			t.Fatalf("snapshot record %d differs: %v vs %v", i, srcSnap[i], dstSnap[i])
		}
	}
	// History survived the move: a snapshot pinned before the update still
	// sees the old credits value, and C4 is still present before its delete.
	res := snapRetrieve(t, dst, courseQuery("C2"), pin)
	if len(res.Records) != 1 {
		t.Fatalf("dst snapshot lost C2: %d records", len(res.Records))
	}
	if v, _ := res.Records[0].Rec.Get("credits"); v.AsInt() != 2 {
		t.Fatalf("dst snapshot sees credits=%d, want 2", v.AsInt())
	}
	if res := snapRetrieve(t, dst, courseQuery("C4"), pin+1); len(res.Records) != 1 {
		t.Fatalf("dst snapshot before delete lost C4")
	}
	if res := snapRetrieve(t, dst, courseQuery("C4"), pin+2); len(res.Records) != 0 {
		t.Fatalf("dst snapshot after delete still sees C4")
	}
}

// TestExportSincePaging: pages are disjoint, ordered, and cover everything.
func TestExportSincePaging(t *testing.T) {
	s := NewStore(testDir(t))
	const n = 23
	for i := 0; i < n; i++ {
		if _, err := s.Insert(courseRec(fmt.Sprintf("P%02d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	recs, _ := exportAll(t, s, 0, 7)
	if len(recs) != n {
		t.Fatalf("paged export returned %d records, want %d", len(recs), n)
	}
	seen := make(map[abdm.RecordID]bool)
	var last abdm.RecordID
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("record %d exported twice", r.ID)
		}
		if r.ID <= last {
			t.Fatalf("page order broken: %d after %d", r.ID, last)
		}
		seen[r.ID] = true
		last = r.ID
	}
}

// TestExportSinceIncremental: a round bounded by the previous round's epoch
// exports only the records touched since, and the boundary epoch itself is
// re-exported (inclusive bound).
func TestExportSinceIncremental(t *testing.T) {
	s := NewStore(testDir(t))
	// Commit each insert at its own epoch; the inclusive since bound then
	// re-exports only the boundary epoch, not the whole history.
	for i := 0; i < 4; i++ {
		ins := abdl.NewInsert(courseRec(fmt.Sprintf("I%d", i), 1))
		ins.TxnID = uint64(100 + i)
		mvccOp(t, s, ins)
		_, at := s.VersionStats()
		mvccOp(t, s, &abdl.Request{Kind: abdl.MvccCommit, TxnID: ins.TxnID, MvccEpoch: at + 1})
	}
	_, first := exportAll(t, s, 0, 0)

	_, pin := s.VersionStats()
	up := abdl.NewUpdate(courseQuery("I1"), abdl.Modifier{Attr: "credits", Val: abdm.Int(7)})
	up.TxnID = 9
	mvccOp(t, s, up)
	mvccOp(t, s, &abdl.Request{Kind: abdl.MvccCommit, TxnID: 9, MvccEpoch: pin + 1})

	recs, _ := exportAll(t, s, first, 0)
	// Only chains with a version at epoch >= first qualify: the updated
	// record for sure, plus any insert stamped exactly at the boundary.
	found := false
	for _, r := range recs {
		if r.Live != nil {
			if v, ok := r.Live.Get("title"); ok && v.AsString() == "I1" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("incremental export missed the touched record (got %d records)", len(recs))
	}
	if len(recs) == 4 {
		t.Fatalf("incremental export returned everything; epoch bound not applied")
	}
}

// TestImportSkipsNewerDest: an import must not clobber a destination copy
// that concurrent writes have already carried past the exported state.
func TestImportSkipsNewerDest(t *testing.T) {
	src := NewStore(testDir(t))
	id, err := src.Insert(courseRec("X", 1))
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := exportAll(t, src, 0, 0)

	dst := NewStore(testDir(t))
	if _, err := dst.ImportPartition(recs); err != nil {
		t.Fatal(err)
	}
	// The destination moves ahead: a committed update at a later epoch.
	_, pin := dst.VersionStats()
	up := abdl.NewUpdate(courseQuery("X"), abdl.Modifier{Attr: "credits", Val: abdm.Int(42)})
	up.TxnID = 5
	mvccOp(t, dst, up)
	mvccOp(t, dst, &abdl.Request{Kind: abdl.MvccCommit, TxnID: 5, MvccEpoch: pin + 1})

	// Re-importing the stale export is a no-op for this record.
	if applied, err := dst.ImportPartition(recs); err != nil || applied != 0 {
		t.Fatalf("stale import applied %d records (err %v), want 0", applied, err)
	}
	rec, ok := dst.GetByID(id)
	if !ok {
		t.Fatalf("record %d vanished", id)
	}
	if v, _ := rec.Get("credits"); v.AsInt() != 42 {
		t.Fatalf("stale import clobbered the newer copy: credits=%d, want 42", v.AsInt())
	}
}

// TestImportPendingRegistered: pending versions travel with the export and a
// later MVCC-COMMIT on the destination finds and stamps them.
func TestImportPendingRegistered(t *testing.T) {
	src := NewStore(testDir(t))
	ins := abdl.NewInsert(courseRec("PEND", 3))
	ins.TxnID = 11
	mvccOp(t, src, ins)

	recs, _ := exportAll(t, src, 0, 0)
	if len(recs) != 1 {
		t.Fatalf("exported %d records, want the pending one", len(recs))
	}
	dst := NewStore(testDir(t))
	if _, err := dst.ImportPartition(recs); err != nil {
		t.Fatal(err)
	}
	// Idempotent: importing twice must not register the pending ref twice.
	if _, err := dst.ImportPartition(recs); err != nil {
		t.Fatal(err)
	}

	res := mvccOp(t, dst, &abdl.Request{Kind: abdl.MvccCommit, TxnID: 11, MvccEpoch: 8})
	if res.Count != 1 {
		t.Fatalf("commit stamped %d imported pending versions, want 1", res.Count)
	}
	if res := snapRetrieve(t, dst, courseQuery("PEND"), 8); len(res.Records) != 1 {
		t.Fatalf("stamped import invisible to snapshot")
	}
}

// TestDropRecords removes live state and history alike.
func TestDropRecords(t *testing.T) {
	s := NewStore(testDir(t))
	id, err := s.Insert(courseRec("DROP", 2))
	if err != nil {
		t.Fatal(err)
	}
	keep, err := s.Insert(courseRec("KEEP", 2))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.DropRecords([]abdm.RecordID{id}); err != nil || n != 1 {
		t.Fatalf("dropped %d records (err %v), want 1", n, err)
	}
	if _, ok := s.GetByID(id); ok {
		t.Fatalf("dropped record still live")
	}
	if _, ok := s.GetByID(keep); !ok {
		t.Fatalf("drop removed the wrong record")
	}
	if v, _ := s.VersionStats(); v != 1 {
		t.Fatalf("version count %d after drop, want 1", v)
	}
	// Dropping again is a no-op.
	if n, err := s.DropRecords([]abdm.RecordID{id}); err != nil || n != 0 {
		t.Fatalf("re-drop removed %d records (err %v), want 0", n, err)
	}
}
