package kdb

import (
	"fmt"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

func courseRec(title string, credits int64) *abdm.Record {
	return abdm.NewRecord("course",
		abdm.Keyword{Attr: "title", Val: abdm.String(title)},
		abdm.Keyword{Attr: "credits", Val: abdm.Int(credits)},
	)
}

func courseQuery(title string) abdm.Query {
	return abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")},
		abdm.Predicate{Attr: "title", Op: abdm.OpEq, Val: abdm.String(title)},
	)
}

func snapRetrieve(t *testing.T, s *Store, q abdm.Query, at uint64) *Result {
	t.Helper()
	req := abdl.NewRetrieve(q, abdl.AllAttrs)
	req.SnapEpoch = at
	res, err := s.Exec(req)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mvccOp(t *testing.T, s *Store, req *abdl.Request) *Result {
	t.Helper()
	res, err := s.Exec(req)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMVCCPendingInvisible: a version written under a transaction is
// invisible to every snapshot until MVCC-COMMIT stamps it, then visible to
// snapshots at or after its epoch and still invisible before it.
func TestMVCCPendingInvisible(t *testing.T) {
	s := NewStore(testDir(t))
	ins := abdl.NewInsert(courseRec("DB", 4))
	ins.TxnID = 7
	if _, err := s.Exec(ins); err != nil {
		t.Fatal(err)
	}
	if res := snapRetrieve(t, s, courseQuery("DB"), 99); len(res.Records) != 0 {
		t.Fatalf("pending version visible to snapshot: %d records", len(res.Records))
	}
	res := mvccOp(t, s, &abdl.Request{Kind: abdl.MvccCommit, TxnID: 7, MvccEpoch: 5})
	if res.Count != 1 {
		t.Fatalf("stamped %d versions, want 1", res.Count)
	}
	if res := snapRetrieve(t, s, courseQuery("DB"), 5); len(res.Records) != 1 {
		t.Fatalf("stamped version invisible at its epoch: %d records", len(res.Records))
	}
	if res := snapRetrieve(t, s, courseQuery("DB"), 4); len(res.Records) != 0 {
		t.Fatalf("version visible before its epoch: %d records", len(res.Records))
	}
	// Stamping is idempotent: a retried MVCC-COMMIT finds nothing pending.
	if res := mvccOp(t, s, &abdl.Request{Kind: abdl.MvccCommit, TxnID: 7, MvccEpoch: 5}); res.Count != 0 {
		t.Fatalf("re-stamp stamped %d versions, want 0", res.Count)
	}
}

// TestMVCCSnapshotStability: a snapshot pinned before an update and a delete
// keeps seeing the original value while the live read sees the new state.
func TestMVCCSnapshotStability(t *testing.T) {
	s := NewStore(testDir(t))
	if _, err := s.Insert(courseRec("DB", 4)); err != nil {
		t.Fatal(err)
	}
	_, pin := s.VersionStats() // epoch the snapshot pins

	up := abdl.NewUpdate(courseQuery("DB"), abdl.Modifier{Attr: "credits", Val: abdm.Int(5)})
	up.TxnID = 1
	if _, err := s.Exec(up); err != nil {
		t.Fatal(err)
	}
	mvccOp(t, s, &abdl.Request{Kind: abdl.MvccCommit, TxnID: 1, MvccEpoch: pin + 1})

	// Old snapshot: original credits. New snapshot: updated credits.
	res := snapRetrieve(t, s, courseQuery("DB"), pin)
	if len(res.Records) != 1 {
		t.Fatalf("snapshot lost the record: %d", len(res.Records))
	}
	if v, _ := res.Records[0].Rec.Get("credits"); v.AsInt() != 4 {
		t.Fatalf("snapshot sees credits=%d, want 4", v.AsInt())
	}
	res = snapRetrieve(t, s, courseQuery("DB"), pin+1)
	if v, _ := res.Records[0].Rec.Get("credits"); v.AsInt() != 5 {
		t.Fatalf("later snapshot sees credits=%d, want 5", v.AsInt())
	}

	del := abdl.NewDelete(courseQuery("DB"))
	del.TxnID = 2
	if _, err := s.Exec(del); err != nil {
		t.Fatal(err)
	}
	mvccOp(t, s, &abdl.Request{Kind: abdl.MvccCommit, TxnID: 2, MvccEpoch: pin + 2})
	if res := snapRetrieve(t, s, courseQuery("DB"), pin+1); len(res.Records) != 1 {
		t.Fatalf("snapshot before delete lost the record")
	}
	if res := snapRetrieve(t, s, courseQuery("DB"), pin+2); len(res.Records) != 0 {
		t.Fatalf("tombstone not honoured: record visible after delete epoch")
	}
}

// TestMVCCAbortDiscards: MVCC-ABORT removes a transaction's pending versions
// without touching committed history.
func TestMVCCAbortDiscards(t *testing.T) {
	s := NewStore(testDir(t))
	if _, err := s.Insert(courseRec("DB", 4)); err != nil {
		t.Fatal(err)
	}
	_, pin := s.VersionStats()
	up := abdl.NewUpdate(courseQuery("DB"), abdl.Modifier{Attr: "credits", Val: abdm.Int(9)})
	up.TxnID = 3
	if _, err := s.Exec(up); err != nil {
		t.Fatal(err)
	}
	res := mvccOp(t, s, &abdl.Request{Kind: abdl.MvccAbort, TxnID: 3})
	if res.Count != 1 {
		t.Fatalf("discarded %d versions, want 1", res.Count)
	}
	got := snapRetrieve(t, s, courseQuery("DB"), pin+10)
	if len(got.Records) != 1 {
		t.Fatalf("committed record lost after abort: %d", len(got.Records))
	}
	if v, _ := got.Records[0].Rec.Get("credits"); v.AsInt() != 4 {
		t.Fatalf("aborted value leaked: credits=%d", v.AsInt())
	}
}

// TestMVCCNoVersion: a mutation with NoVersion set (the undo path) writes no
// history.
func TestMVCCNoVersion(t *testing.T) {
	s := NewStore(testDir(t))
	before, _ := s.VersionStats()
	ins := abdl.NewInsert(courseRec("DB", 4))
	ins.NoVersion = true
	if _, err := s.Exec(ins); err != nil {
		t.Fatal(err)
	}
	after, _ := s.VersionStats()
	if after != before {
		t.Fatalf("NoVersion mutation grew the version count: %d -> %d", before, after)
	}
}

// TestMVCCGCPrune: GC drops superseded versions below the watermark, keeps
// the survivor each snapshot still needs, and removes trailing-tombstone
// chains entirely.
func TestMVCCGCPrune(t *testing.T) {
	s := NewStore(testDir(t))
	if _, err := s.Insert(courseRec("DB", 1)); err != nil {
		t.Fatal(err)
	}
	_, base := s.VersionStats()
	for i := int64(2); i <= 4; i++ {
		up := abdl.NewUpdate(courseQuery("DB"), abdl.Modifier{Attr: "credits", Val: abdm.Int(i)})
		up.TxnID = uint64(i)
		if _, err := s.Exec(up); err != nil {
			t.Fatal(err)
		}
		mvccOp(t, s, &abdl.Request{Kind: abdl.MvccCommit, TxnID: uint64(i), MvccEpoch: base + uint64(i) - 1})
	}
	versions, _ := s.VersionStats()
	if versions != 4 {
		t.Fatalf("chain length %d, want 4", versions)
	}
	// Watermark at the second update: the first two versions are superseded.
	res := mvccOp(t, s, &abdl.Request{Kind: abdl.MvccGC, MvccEpoch: base + 2})
	if res.Count != 2 {
		t.Fatalf("pruned %d, want 2", res.Count)
	}
	if res.Versions != 2 {
		t.Fatalf("surviving versions %d, want 2", res.Versions)
	}
	// The survivor still answers a snapshot at the watermark.
	got := snapRetrieve(t, s, courseQuery("DB"), base+2)
	if len(got.Records) != 1 {
		t.Fatalf("watermark snapshot lost the record")
	}
	if v, _ := got.Records[0].Rec.Get("credits"); v.AsInt() != 3 {
		t.Fatalf("watermark snapshot sees credits=%d, want 3", v.AsInt())
	}

	// Delete, commit, then GC past the tombstone: the chain disappears.
	del := abdl.NewDelete(courseQuery("DB"))
	del.TxnID = 9
	if _, err := s.Exec(del); err != nil {
		t.Fatal(err)
	}
	mvccOp(t, s, &abdl.Request{Kind: abdl.MvccCommit, TxnID: 9, MvccEpoch: base + 4})
	mvccOp(t, s, &abdl.Request{Kind: abdl.MvccGC, MvccEpoch: base + 5})
	if versions, _ := s.VersionStats(); versions != 0 {
		t.Fatalf("trailing tombstone chain survived GC: %d versions", versions)
	}
}

// TestMVCCSnapshotCacheIsolation: a cached snapshot result must not answer a
// live read, a read at another epoch must not reuse it, and invalidation on
// write applies to snapshot entries too.
func TestMVCCSnapshotCacheIsolation(t *testing.T) {
	s := NewStore(testDir(t), WithResultCache(32))
	if _, err := s.Insert(courseRec("DB", 4)); err != nil {
		t.Fatal(err)
	}
	_, pin := s.VersionStats()

	q := courseQuery("DB")
	if res := snapRetrieve(t, s, q, pin); len(res.Records) != 1 {
		t.Fatal("snapshot read missed")
	}
	// Same epoch again: may come from cache, must be identical.
	if res := snapRetrieve(t, s, q, pin); len(res.Records) != 1 {
		t.Fatal("cached snapshot read diverged")
	}

	// Commit an update at pin+1; a snapshot at pin must still see the old
	// value (cache invalidated by the write, recomputed from the chain).
	up := abdl.NewUpdate(q, abdl.Modifier{Attr: "credits", Val: abdm.Int(8)})
	up.TxnID = 4
	if _, err := s.Exec(up); err != nil {
		t.Fatal(err)
	}
	mvccOp(t, s, &abdl.Request{Kind: abdl.MvccCommit, TxnID: 4, MvccEpoch: pin + 1})

	res := snapRetrieve(t, s, q, pin)
	if len(res.Records) != 1 {
		t.Fatal("old snapshot lost the record after update")
	}
	if v, _ := res.Records[0].Rec.Get("credits"); v.AsInt() != 4 {
		t.Fatalf("old snapshot sees credits=%d, want 4", v.AsInt())
	}
	// Live read sees the new value — a snapshot entry must not shadow it.
	live := retrieveAll(t, s, q)
	if len(live.Records) != 1 {
		t.Fatal("live read lost the record")
	}
	if v, _ := live.Records[0].Rec.Get("credits"); v.AsInt() != 8 {
		t.Fatalf("live read sees credits=%d, want 8", v.AsInt())
	}
}

// TestMVCCSnapshotRetrieveCommon: RETRIEVE-COMMON against a snapshot joins
// the versions visible at the pinned epoch, not the live state.
func TestMVCCSnapshotRetrieveCommon(t *testing.T) {
	s := NewStore(testDir(t))
	for _, title := range []string{"DB", "Algo"} {
		if _, err := s.Insert(abdm.NewRecord("course",
			abdm.Keyword{Attr: "title", Val: abdm.String(title)},
			abdm.Keyword{Attr: "dept", Val: abdm.String("CS")})); err != nil {
			t.Fatal(err)
		}
	}
	_, pin := s.VersionStats()

	// Delete the join partner at a later epoch; the old snapshot still joins.
	del := abdl.NewDelete(courseQuery("Algo"))
	del.TxnID = 5
	if _, err := s.Exec(del); err != nil {
		t.Fatal(err)
	}
	mvccOp(t, s, &abdl.Request{Kind: abdl.MvccCommit, TxnID: 5, MvccEpoch: pin + 1})

	join := func(at uint64) int {
		rc := abdl.NewRetrieveCommon(courseQuery("DB"), "dept", courseQuery("Algo"), "title")
		rc.SnapEpoch = at
		res, err := s.Exec(rc)
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Records)
	}
	if n := join(pin); n != 1 {
		t.Fatalf("snapshot join found %d records, want 1", n)
	}
	if n := join(pin + 1); n != 0 {
		t.Fatalf("join at later epoch resurrected a deleted partner: %d", n)
	}
}

// TestMVCCVersionAccounting: the version gauge tracks inserts, stamps,
// discards and prunes across many records.
func TestMVCCVersionAccounting(t *testing.T) {
	s := NewStore(testDir(t))
	for i := 0; i < 10; i++ {
		if _, err := s.Insert(courseRec(fmt.Sprintf("C%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	versions, epoch := s.VersionStats()
	if versions != 10 {
		t.Fatalf("versions=%d, want 10", versions)
	}
	if epoch == 0 {
		t.Fatal("epoch not initialised")
	}
	res := mvccOp(t, s, &abdl.Request{Kind: abdl.MvccGC, MvccEpoch: epoch + 1})
	if res.Count != 0 {
		t.Fatalf("GC pruned %d base versions, want 0", res.Count)
	}
}
