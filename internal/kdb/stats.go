package kdb

import "sync/atomic"

// Stats is a point-in-time snapshot of a store's lifetime activity, used by
// the daemons' /metrics endpoints to expose per-partition load without
// holding the store lock at scrape time.
type Stats struct {
	Requests    uint64 // ABDL requests executed
	Errors      uint64 // requests that returned an error
	BlocksRead  uint64 // cumulative disk-model blocks read
	BlocksWrit  uint64 // cumulative disk-model blocks written
	RecordsExam uint64 // cumulative records examined
	CacheHits   uint64 // retrieve-result cache hits
	CacheMisses uint64 // retrieve-result cache misses
}

// storeStats is the live atomic counter set behind Stats.
type storeStats struct {
	requests    atomic.Uint64
	errors      atomic.Uint64
	blocksRead  atomic.Uint64
	blocksWrit  atomic.Uint64
	recordsExam atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
}

// note records one executed request and its cost.
func (st *storeStats) note(res *Result, err error) {
	st.requests.Add(1)
	if err != nil {
		st.errors.Add(1)
		return
	}
	if res != nil {
		st.blocksRead.Add(uint64(res.Cost.BlocksRead))
		st.blocksWrit.Add(uint64(res.Cost.BlocksWrit))
		st.recordsExam.Add(uint64(res.Cost.RecordsExam))
	}
}

// Stats snapshots the store's lifetime request and cost counters.
func (s *Store) Stats() Stats {
	return Stats{
		Requests:    s.stats.requests.Load(),
		Errors:      s.stats.errors.Load(),
		BlocksRead:  s.stats.blocksRead.Load(),
		BlocksWrit:  s.stats.blocksWrit.Load(),
		RecordsExam: s.stats.recordsExam.Load(),
		CacheHits:   s.stats.cacheHits.Load(),
		CacheMisses: s.stats.cacheMisses.Load(),
	}
}
