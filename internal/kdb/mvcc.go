package kdb

import (
	"fmt"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

// Multi-version concurrency control.
//
// The live maps (Store.files, Store.indexes) remain the authoritative
// current state, mutated in place under strict 2PL exactly as before. Each
// record additionally carries a version chain — an append-only history of
// its values — which is what lock-free snapshot reads (Request.SnapEpoch)
// resolve against:
//
//   - Every mutation appends a version: the post-image for INSERT/UPDATE, a
//     nil tombstone for DELETE. A mutation executed under a transaction
//     (Request.TxnID != 0) appends it pending (epoch 0, invisible to every
//     snapshot); the transaction manager later broadcasts MVCC-COMMIT to
//     stamp the transaction's pending versions with its commit epoch, or
//     MVCC-ABORT to discard them. A mutation with TxnID 0 (bulk load,
//     journal replay) is stamped immediately at the store's current epoch.
//   - A snapshot read at epoch T sees, per record, the newest version with
//     0 < epoch ≤ T; a tombstone or an empty prefix means the record did
//     not exist at T.
//   - MVCC-GC prunes versions superseded at or below the watermark (the
//     oldest live snapshot's epoch): within each chain every version older
//     than the newest committed version ≤ watermark is unreachable by any
//     current or future snapshot and is dropped.
//
// Within one chain, committed epochs are non-decreasing in append order:
// writers to the same record are serialized by the lock table, and commit
// epochs are issued by a single group-commit leader.

// version is one entry of a record's version chain.
type version struct {
	epoch uint64       // commit epoch; 0 = pending under txn
	txn   uint64       // writing transaction (0 = auto-stamped)
	rec   *abdm.Record // the value as of this version; nil = tombstone
}

// chainRef locates one record's version chain.
type chainRef struct {
	file string
	id   abdm.RecordID
}

// mvccState is the store's version-chain bookkeeping, guarded by the
// store's main mutex like the live maps.
type mvccState struct {
	epoch    uint64                                 // newest commit epoch this store has seen
	chains   map[string]map[abdm.RecordID][]version // file → record → history
	pending  map[uint64][]chainRef                  // txn → chains holding its pending versions
	versions int                                    // live version count, for the gauge
}

// noteVersion appends one version for a mutation of (file, id). rec is the
// post-image (cloned here) or nil for a delete. Caller holds the write lock.
func (s *Store) noteVersion(req *abdl.Request, file string, id abdm.RecordID, rec *abdm.Record) {
	if req != nil && req.NoVersion {
		return
	}
	if s.mvcc.chains == nil {
		s.mvcc.chains = make(map[string]map[abdm.RecordID][]version)
		s.mvcc.pending = make(map[uint64][]chainRef)
		if s.mvcc.epoch == 0 {
			s.mvcc.epoch = 1
		}
	}
	s.seedChainLocked(id)
	v := version{}
	if req != nil {
		v.txn = req.TxnID
	}
	if rec != nil {
		v.rec = rec.Clone()
	}
	if v.txn == 0 {
		// Immediately stamped (bulk load, journal replay): the mutation is
		// committed state, so it writes through to the paged backing now.
		v.epoch = s.mvcc.epoch
		s.applyBacking(id, rec, v.epoch)
	} else {
		s.mvcc.pending[v.txn] = append(s.mvcc.pending[v.txn], chainRef{file, id})
		s.pendingInc(id)
	}
	if s.mvcc.chains[file] == nil {
		s.mvcc.chains[file] = make(map[abdm.RecordID][]version)
	}
	s.mvcc.chains[file][id] = append(s.mvcc.chains[file][id], v)
	s.mvcc.versions++
}

// seedChainLocked gives a paged-in record its base version before its first
// mutation since open: a backed store materialises no chains at open, so the
// first write decodes the committed heap cell into the chain's base entry —
// older snapshots keep seeing the pre-write value. A seed that fails to read
// the heap poisons the backing (sticky error) rather than silently losing
// history.
func (s *Store) seedChainLocked(id abdm.RecordID) {
	b := s.backing
	if b == nil {
		return
	}
	if _, inHeap := b.rids[id]; !inHeap {
		return
	}
	cfile, ok := b.fileOfC[id]
	if !ok || len(s.mvcc.chains[cfile][id]) > 0 {
		return
	}
	base, err := s.fetchLocked(id)
	if err != nil {
		if b.err == nil {
			b.err = fmt.Errorf("kdb: seeding version chain: %w", err)
		}
		return
	}
	if s.mvcc.chains[cfile] == nil {
		s.mvcc.chains[cfile] = make(map[abdm.RecordID][]version)
	}
	s.mvcc.chains[cfile][id] = []version{{epoch: b.baseEpoch, rec: base}}
	s.mvcc.versions++
}

// execMvcc dispatches the kernel-internal MVCC administration operations.
func (s *Store) execMvcc(req *abdl.Request) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res := &Result{Op: req.Kind}
	switch req.Kind {
	case abdl.MvccCommit:
		res.Count = s.stampLocked(req.TxnID, req.MvccEpoch)
	case abdl.MvccAbort:
		res.Count, res.Affected = s.discardLocked(req.TxnID)
	case abdl.MvccGC:
		res.Count, res.Affected = s.pruneLocked(req.MvccEpoch)
	default:
		return nil, fmt.Errorf("kdb: unsupported MVCC operation %v", req.Kind)
	}
	res.Versions = s.mvcc.versions
	return res, nil
}

// stampLocked commits txn's pending versions at the given epoch and advances
// the store's epoch, returning how many versions were stamped. Stamping is
// idempotent: a retried MVCC-COMMIT finds no pending versions left.
func (s *Store) stampLocked(txn, epoch uint64) int {
	if epoch > s.mvcc.epoch {
		s.mvcc.epoch = epoch
	}
	refs := s.mvcc.pending[txn]
	if refs == nil {
		return 0
	}
	delete(s.mvcc.pending, txn)
	n := 0
	for _, ref := range refs {
		chain := s.mvcc.chains[ref.file][ref.id]
		for i := range chain {
			if chain[i].epoch == 0 && chain[i].txn == txn {
				chain[i].epoch = epoch
				n++
				s.pendingDec(ref.id)
			}
		}
	}
	// The stamped versions are now committed state: write each touched
	// chain's newest committed value through to the paged backing.
	s.backingStamp(refs, epoch)
	return n
}

// discardLocked drops txn's pending versions, returning how many were
// removed plus the keys whose chains ended up empty (records whose entire
// history was the aborted transaction — the controller may forget their
// placement). The live store is restored separately by the transaction
// manager's undo; the chain simply forgets the aborted history.
func (s *Store) discardLocked(txn uint64) (int, []abdm.RecordID) {
	refs := s.mvcc.pending[txn]
	if refs == nil {
		return 0, nil
	}
	delete(s.mvcc.pending, txn)
	n := 0
	var emptied []abdm.RecordID
	for _, ref := range refs {
		chain := s.mvcc.chains[ref.file][ref.id]
		kept := chain[:0]
		for _, v := range chain {
			if v.epoch == 0 && v.txn == txn {
				n++
				s.pendingDec(ref.id)
				continue
			}
			kept = append(kept, v)
		}
		if len(kept) == 0 && len(chain) > 0 {
			emptied = append(emptied, ref.id)
		}
		s.setChainLocked(ref.file, ref.id, kept)
	}
	s.mvcc.versions -= n
	return n, emptied
}

// pruneLocked drops every version superseded at or below the watermark: in
// each chain, all versions older than the newest committed version with
// epoch ≤ watermark. If that survivor is a tombstone and nothing follows it,
// the whole chain goes — no snapshot at or after the watermark can resurrect
// a record deleted before it. Returns the number of versions pruned and the
// keys whose whole chains were removed (deleted records no snapshot can
// reach any more — the controller may forget their placement).
func (s *Store) pruneLocked(watermark uint64) (int, []abdm.RecordID) {
	pruned := 0
	var removed []abdm.RecordID
	for file, chains := range s.mvcc.chains {
		for id, chain := range chains {
			keep := 0 // index of the newest committed version ≤ watermark
			found := false
			for i, v := range chain {
				if v.epoch != 0 && v.epoch <= watermark {
					keep, found = i, true
				}
			}
			if !found {
				continue
			}
			if keep == len(chain)-1 && chain[keep].rec == nil {
				pruned += len(chain)
				removed = append(removed, id)
				s.setChainLocked(file, id, nil)
				continue
			}
			if keep > 0 {
				pruned += keep
				s.setChainLocked(file, id, append([]version(nil), chain[keep:]...))
			}
		}
	}
	s.mvcc.versions -= pruned
	return pruned, removed
}

// setChainLocked replaces one record's chain, removing empty map entries.
func (s *Store) setChainLocked(file string, id abdm.RecordID, chain []version) {
	if len(chain) == 0 {
		delete(s.mvcc.chains[file], id)
		if len(s.mvcc.chains[file]) == 0 {
			delete(s.mvcc.chains, file)
		}
		return
	}
	s.mvcc.chains[file][id] = chain
}

// visibleAt resolves the record value a snapshot at epoch sees: the newest
// version with 0 < epoch ≤ at. nil means the record is invisible — deleted,
// not yet created, or only pending at the snapshot.
func visibleAt(chain []version, at uint64) *abdm.Record {
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].epoch != 0 && chain[i].epoch <= at {
			return chain[i].rec
		}
	}
	return nil
}

// snapQualify finds the records visible to a snapshot at the given epoch
// that match the query. In a memory store it reads version chains only —
// never the live maps and never the attribute indexes (which index live
// state). A backed store materialises no chain for a record until its first
// mutation since open, so each file additionally gets a membership pass:
// chainless records are committed base state, visible to every snapshot at
// or past the image's epoch, and their bodies are paged in from the heap.
// Caller must hold at least a read lock.
func (s *Store) snapQualify(q abdm.Query, at uint64, c *Cost) ([]StoredRecord, []string, qualDeps, error) {
	matched := make(map[abdm.RecordID]*abdm.Record)
	deps := qualDeps{files: make(map[string]bool)}
	var paths []string
	scanFile := func(file string, conj abdm.Conjunction) error {
		chains := s.mvcc.chains[file]
		c.BlocksRead += s.disk.blocks(len(chains))
		for id, chain := range chains {
			rec := visibleAt(chain, at)
			if rec == nil {
				continue
			}
			c.RecordsExam++
			if conj == nil || conj.Matches(rec) {
				matched[id] = rec
			}
		}
		b := s.backing
		if b == nil || at < b.baseEpoch {
			return nil
		}
		var misses []abdm.RecordID
		for id := range s.files[file] {
			if _, chained := chains[id]; chained {
				continue
			}
			if cfile, ok := b.fileOfC[id]; !ok || cfile != file {
				continue
			}
			misses = append(misses, id)
		}
		return s.fetchEach(misses, func(id abdm.RecordID, rec *abdm.Record) error {
			c.RecordsExam++
			if conj == nil || conj.Matches(rec) {
				matched[id] = rec
			}
			return nil
		})
	}
	// A backed store's base records live in files without any chain entry,
	// so the all-file walks cover the union of both key sets.
	allFiles := func() map[string]bool {
		set := make(map[string]bool, len(s.mvcc.chains))
		for f := range s.mvcc.chains {
			set[f] = true
		}
		if s.backing != nil {
			for f := range s.files {
				set[f] = true
			}
		}
		return set
	}
	scan := func(conj abdm.Conjunction) (string, error) {
		if file, ok := conj.File(); ok {
			deps.files[file] = true
			return "snap(" + file + ")", scanFile(file, conj)
		}
		deps.allFiles = true
		for file := range allFiles() {
			deps.files[file] = true
			if err := scanFile(file, conj); err != nil {
				return "", err
			}
		}
		return "snap(*)", nil
	}
	for _, conj := range q {
		path, err := scan(conj)
		if err != nil {
			return nil, nil, deps, err
		}
		paths = append(paths, path)
	}
	if len(q) == 0 {
		deps.allFiles = true
		paths = append(paths, "snap(*)")
		for file := range allFiles() {
			deps.files[file] = true
			if err := scanFile(file, nil); err != nil {
				return nil, nil, deps, err
			}
		}
	}
	c.FilesTouched = len(deps.files)
	out := make([]StoredRecord, 0, len(matched))
	for id, r := range matched {
		out = append(out, StoredRecord{ID: id, Rec: r})
	}
	sortStoredByID(out)
	return out, paths, deps, nil
}

// snapCacheKey extends the retrieve-cache key with the snapshot epoch, so a
// snapshot result can never answer a live read (or a read at another epoch)
// and vice versa.
func snapCacheKey(req *abdl.Request) string {
	return fmt.Sprintf("%s @snap=%d", req.String(), req.SnapEpoch)
}

// VersionStats reports the store's MVCC footprint: live version count and
// the newest commit epoch it has seen.
func (s *Store) VersionStats() (versions int, epoch uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mvcc.versions, s.mvcc.epoch
}
