package kdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"mlds/internal/abdm"
	"mlds/internal/pager"
)

// Persisted index image.
//
// A checkpoint of a backed store serialises the store's committed access
// structures — the primary RID map, the heap's free-space map, and the
// per-attribute inverted indexes over committed state — into a chain of
// blob pages inside the page file, and records the chain's head in the
// generation's metadata (pager.Meta.IndexRoot). OpenBacked then rebuilds
// the store by reading O(index pages) instead of scanning O(heap pages),
// and no record body is materialised at all: the live maps start with nil
// bodies that point-reads and scans page in on demand through the buffer
// pool. Page files written before this format (Meta.HasIndex false) still
// open through the legacy full-heap scan.
//
// Image payload layout (all integers varint/uvarint unless noted):
//
//	magic "KIM1"
//	uvarint maxID                      record-id high water
//	uvarint nFiles; per file: uvarint len, name
//	uvarint nRecords; per record, sorted by id:
//	  uvarint idDelta, uvarint fileIdx, uvarint ridPage, uvarint ridSlot
//	uvarint nAvail; per heap page, sorted by page id:
//	  uvarint pageDelta, uvarint availBytes
//	byte indexed (0 = store ran WithoutIndexes, no attr section follows)
//	if indexed: uvarint nAttrs; per attr:
//	  uvarint len(name), name
//	  uvarint nValues; per distinct value:
//	    value (kind byte + payload, the record codec's value form)
//	    uvarint nIDs; per id, sorted: uvarint idDelta

var imageMagic = []byte("KIM1")

// errBadImage reports an index image that cannot be decoded.
var errBadImage = errors.New("kdb: corrupt index image")

// appendValue encodes one abdm value as the record codec does: a kind byte
// followed by the kind's payload.
func appendValue(buf []byte, v abdm.Value) []byte {
	buf = append(buf, byte(v.Kind()))
	switch v.Kind() {
	case abdm.KindInt:
		buf = binary.AppendVarint(buf, v.AsInt())
	case abdm.KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.AsFloat()))
	case abdm.KindString:
		s := v.AsString()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

// readValue decodes one value written by appendValue, returning the rest of
// the buffer.
func readValue(buf []byte) (abdm.Value, []byte, error) {
	if len(buf) < 1 {
		return abdm.Value{}, nil, errShortRecord
	}
	kind := abdm.Kind(buf[0])
	buf = buf[1:]
	switch kind {
	case abdm.KindNull:
		return abdm.Null(), buf, nil
	case abdm.KindInt:
		v, n := binary.Varint(buf)
		if n <= 0 {
			return abdm.Value{}, nil, errShortRecord
		}
		return abdm.Int(v), buf[n:], nil
	case abdm.KindFloat:
		if len(buf) < 8 {
			return abdm.Value{}, nil, errShortRecord
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(buf))
		return abdm.Float(f), buf[8:], nil
	case abdm.KindString:
		ln, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < ln {
			return abdm.Value{}, nil, errShortRecord
		}
		return abdm.String(string(buf[n : n+int(ln)])), buf[n+int(ln):], nil
	default:
		return abdm.Value{}, nil, fmt.Errorf("kdb: unknown value kind %d", kind)
	}
}

// storeImage is the decoded form of a persisted index image.
type storeImage struct {
	maxID   uint64
	rids    map[abdm.RecordID]pager.RID
	fileOf  map[abdm.RecordID]string
	avail   map[uint32]int
	indexed bool
	indexes map[string]*attrIndex
}

// encodeImage serialises the committed access structures. Callers guarantee
// the inputs are frozen (the checkpoint fence is up).
func encodeImage(maxID uint64, rids map[abdm.RecordID]pager.RID,
	fileOf map[abdm.RecordID]string, avail map[uint32]int,
	indexed bool, indexes map[string]*attrIndex) []byte {

	buf := append([]byte(nil), imageMagic...)
	buf = binary.AppendUvarint(buf, maxID)

	// File-name table, sorted for determinism.
	fileIdx := make(map[string]uint64)
	var fileNames []string
	for _, f := range fileOf {
		if _, ok := fileIdx[f]; !ok {
			fileIdx[f] = 0
			fileNames = append(fileNames, f)
		}
	}
	sort.Strings(fileNames)
	for i, f := range fileNames {
		fileIdx[f] = uint64(i)
	}
	buf = binary.AppendUvarint(buf, uint64(len(fileNames)))
	for _, f := range fileNames {
		buf = binary.AppendUvarint(buf, uint64(len(f)))
		buf = append(buf, f...)
	}

	// Primary map, delta-coded by record id.
	ids := make([]abdm.RecordID, 0, len(rids))
	for id := range rids {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	prev := uint64(0)
	for _, id := range ids {
		rid := rids[id]
		buf = binary.AppendUvarint(buf, uint64(id)-prev)
		prev = uint64(id)
		buf = binary.AppendUvarint(buf, fileIdx[fileOf[id]])
		buf = binary.AppendUvarint(buf, uint64(rid.Page))
		buf = binary.AppendUvarint(buf, uint64(rid.Slot))
	}

	// Heap free-space map, delta-coded by page id.
	pages := make([]uint32, 0, len(avail))
	for p := range avail {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	buf = binary.AppendUvarint(buf, uint64(len(pages)))
	prevPage := uint64(0)
	for _, p := range pages {
		buf = binary.AppendUvarint(buf, uint64(p)-prevPage)
		prevPage = uint64(p)
		buf = binary.AppendUvarint(buf, uint64(avail[p]))
	}

	if !indexed {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	attrs := make([]string, 0, len(indexes))
	for a, ix := range indexes {
		if len(ix.postings) > 0 {
			attrs = append(attrs, a)
		}
	}
	sort.Strings(attrs)
	buf = binary.AppendUvarint(buf, uint64(len(attrs)))
	for _, a := range attrs {
		ix := indexes[a]
		buf = binary.AppendUvarint(buf, uint64(len(a)))
		buf = append(buf, a...)
		keys := make([]string, 0, len(ix.postings))
		for k := range ix.postings {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf = binary.AppendUvarint(buf, uint64(len(keys)))
		for _, k := range keys {
			buf = appendValue(buf, ix.values[k])
			post := ix.postings[k]
			buf = binary.AppendUvarint(buf, uint64(len(post)))
			prev := uint64(0)
			for _, id := range post {
				buf = binary.AppendUvarint(buf, uint64(id)-prev)
				prev = uint64(id)
			}
		}
	}
	return buf
}

// decodeImage parses an image payload back into access structures.
func decodeImage(buf []byte) (*storeImage, error) {
	if len(buf) < len(imageMagic) || string(buf[:len(imageMagic)]) != string(imageMagic) {
		return nil, fmt.Errorf("%w: bad magic", errBadImage)
	}
	buf = buf[len(imageMagic):]
	u := func() (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated", errBadImage)
		}
		buf = buf[n:]
		return v, nil
	}
	img := &storeImage{
		rids:   make(map[abdm.RecordID]pager.RID),
		fileOf: make(map[abdm.RecordID]string),
		avail:  make(map[uint32]int),
	}
	var err error
	if img.maxID, err = u(); err != nil {
		return nil, err
	}

	nFiles, err := u()
	if err != nil {
		return nil, err
	}
	names := make([]string, nFiles)
	for i := range names {
		ln, err := u()
		if err != nil {
			return nil, err
		}
		if uint64(len(buf)) < ln {
			return nil, fmt.Errorf("%w: truncated file name", errBadImage)
		}
		names[i] = string(buf[:ln])
		buf = buf[ln:]
	}

	nRecs, err := u()
	if err != nil {
		return nil, err
	}
	prev := uint64(0)
	for i := uint64(0); i < nRecs; i++ {
		d, err := u()
		if err != nil {
			return nil, err
		}
		prev += d
		fi, err := u()
		if err != nil {
			return nil, err
		}
		if fi >= uint64(len(names)) {
			return nil, fmt.Errorf("%w: file index %d out of range", errBadImage, fi)
		}
		page, err := u()
		if err != nil {
			return nil, err
		}
		slot, err := u()
		if err != nil {
			return nil, err
		}
		id := abdm.RecordID(prev)
		img.rids[id] = pager.RID{Page: uint32(page), Slot: uint16(slot)}
		img.fileOf[id] = names[fi]
	}

	nAvail, err := u()
	if err != nil {
		return nil, err
	}
	prevPage := uint64(0)
	for i := uint64(0); i < nAvail; i++ {
		d, err := u()
		if err != nil {
			return nil, err
		}
		prevPage += d
		a, err := u()
		if err != nil {
			return nil, err
		}
		img.avail[uint32(prevPage)] = int(a)
	}

	if len(buf) < 1 {
		return nil, fmt.Errorf("%w: truncated", errBadImage)
	}
	img.indexed = buf[0] == 1
	buf = buf[1:]
	if !img.indexed {
		return img, nil
	}
	img.indexes = make(map[string]*attrIndex)
	nAttrs, err := u()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nAttrs; i++ {
		ln, err := u()
		if err != nil {
			return nil, err
		}
		if uint64(len(buf)) < ln {
			return nil, fmt.Errorf("%w: truncated attr name", errBadImage)
		}
		attr := string(buf[:ln])
		buf = buf[ln:]
		ix := newAttrIndex()
		img.indexes[attr] = ix
		nVals, err := u()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nVals; j++ {
			var v abdm.Value
			v, buf, err = readValue(buf)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", errBadImage, err)
			}
			nIDs, err := u()
			if err != nil {
				return nil, err
			}
			prev := uint64(0)
			for k := uint64(0); k < nIDs; k++ {
				d, err := u()
				if err != nil {
					return nil, err
				}
				prev += d
				ix.add(v, abdm.RecordID(prev))
			}
		}
	}
	return img, nil
}

// cloneIndexes deep-copies an attribute-index set; OpenBacked loads the
// image once and seeds both the live and the committed index from it.
func cloneIndexes(src map[string]*attrIndex) map[string]*attrIndex {
	out := make(map[string]*attrIndex, len(src))
	for a, ix := range src {
		cp := newAttrIndex()
		for k, post := range ix.postings {
			cp.postings[k] = append([]abdm.RecordID(nil), post...)
			cp.values[k] = ix.values[k]
		}
		out[a] = cp
	}
	return out
}
