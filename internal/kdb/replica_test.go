package kdb

import (
	"testing"
	"time"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

func course(title string) *abdm.Record {
	return abdm.NewRecord("course",
		abdm.Keyword{Attr: "title", Val: abdm.String(title)},
		abdm.Keyword{Attr: "dept", Val: abdm.String("CS")},
		abdm.Keyword{Attr: "credits", Val: abdm.Int(3)},
		abdm.Keyword{Attr: "rating", Val: abdm.Float(4.5)},
	)
}

func TestForcedInsertIsIdempotent(t *testing.T) {
	s := NewStore(testDir(t))
	req := abdl.NewInsert(course("Replicated"))
	req.ForceID = 7

	// Applying the same pinned insert twice (a retry after an ambiguous
	// failure) must leave exactly one record under the pinned key.
	for i := 0; i < 2; i++ {
		if _, err := s.Exec(req); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("store has %d records after replayed insert, want 1", s.Len())
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || snap[0].ID != 7 {
		t.Fatalf("snapshot = %+v, want one record under key 7", snap)
	}

	// A later pinned insert under the same key replaces the record, and
	// the secondary index follows: the old title no longer matches.
	repl := abdl.NewInsert(course("Replacement"))
	repl.ForceID = 7
	if _, err := s.Exec(repl); err != nil {
		t.Fatal(err)
	}
	old, err := s.Exec(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: "title", Op: abdm.OpEq, Val: abdm.String("Replicated")},
	), abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	if len(old.Records) != 0 {
		t.Errorf("replaced record still indexed: %v", old.Records)
	}
	cur, err := s.Exec(abdl.NewRetrieve(abdm.And(
		abdm.Predicate{Attr: "title", Op: abdm.OpEq, Val: abdm.String("Replacement")},
	), abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.Records) != 1 || cur.Records[0].ID != 7 {
		t.Errorf("replacement not found under key 7: %v", cur.Records)
	}
}

func TestForcedInsertCoexistsWithAllocator(t *testing.T) {
	// Pinned keys and allocator-assigned keys share the key space without
	// colliding in one store's bookkeeping.
	s := NewStore(testDir(t))
	if _, err := s.Insert(course("auto")); err != nil {
		t.Fatal(err)
	}
	pinned := abdl.NewInsert(course("pinned"))
	pinned.ForceID = 100
	if _, err := s.Exec(pinned); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	seen := map[abdm.RecordID]bool{}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range snap {
		if seen[sr.ID] {
			t.Fatalf("duplicate key %d", sr.ID)
		}
		seen[sr.ID] = true
	}
}

func TestDeleteUpdateReportAffectedKeys(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 9) // depts cycle CS, Math, Physics

	upd, err := s.Exec(abdl.NewUpdate(abdm.And(
		abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
	), abdl.Modifier{Attr: "credits", Val: abdm.Int(9)}))
	if err != nil {
		t.Fatal(err)
	}
	if len(upd.Affected) != upd.Count || upd.Count != 3 {
		t.Fatalf("update Affected = %v (Count %d), want 3 keys", upd.Affected, upd.Count)
	}

	del, err := s.Exec(abdl.NewDelete(abdm.And(
		abdm.Predicate{Attr: "credits", Op: abdm.OpEq, Val: abdm.Int(9)},
	)))
	if err != nil {
		t.Fatal(err)
	}
	if len(del.Affected) != del.Count || del.Count != 3 {
		t.Fatalf("delete Affected = %v (Count %d), want 3 keys", del.Affected, del.Count)
	}
	snap2, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range del.Affected {
		for _, sr := range snap2 {
			if sr.ID == id {
				t.Fatalf("deleted key %d still present", id)
			}
		}
	}
}

func TestDedupByID(t *testing.T) {
	// Two replicas answering for the same keys collapse to one logical
	// result.
	a := &Result{
		Records:  []StoredRecord{{ID: 1, Rec: course("a")}, {ID: 2, Rec: course("b")}},
		Affected: []abdm.RecordID{1, 2},
		Count:    2,
	}
	b := &Result{
		Records:  []StoredRecord{{ID: 2, Rec: course("b")}, {ID: 3, Rec: course("c")}},
		Affected: []abdm.RecordID{2, 3},
		Count:    2,
	}
	a.Merge(b)
	a.DedupByID()
	if len(a.Records) != 3 {
		t.Errorf("deduped records = %d, want 3", len(a.Records))
	}
	if len(a.Affected) != 3 || a.Count != 3 {
		t.Errorf("deduped Affected = %v, Count = %d, want 3 distinct keys", a.Affected, a.Count)
	}
}

func TestDegradedDiskModel(t *testing.T) {
	m := DefaultDiskModel()
	slow := m.Degraded(4)
	if slow.TrackAccess != 4*m.TrackAccess || slow.BlockIO != 4*m.BlockIO || slow.DirAccess != 4*m.DirAccess {
		t.Errorf("Degraded(4) = %+v", slow)
	}
	if slow.BlockFactor != m.BlockFactor || slow.TrackBlocks != m.TrackBlocks {
		t.Error("Degraded must not change geometry")
	}
	c := Cost{BlocksRead: 8, DirProbes: 2}
	if got, want := slow.Time(c), time.Duration(0); got <= want {
		t.Errorf("degraded time = %v", got)
	}
	if slow.Time(c) <= m.Time(c) {
		t.Errorf("degraded model not slower: %v vs %v", slow.Time(c), m.Time(c))
	}
	// Degraded clamps nonsense factors instead of speeding up.
	if fast := m.Degraded(0); fast.BlockIO != m.BlockIO {
		t.Errorf("Degraded(0) changed latency: %+v", fast)
	}
}
