package kdb

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

func testDir(t *testing.T) *abdm.Directory {
	t.Helper()
	d := abdm.NewDirectory()
	for _, def := range []struct {
		name string
		kind abdm.Kind
	}{
		{"title", abdm.KindString},
		{"dept", abdm.KindString},
		{"credits", abdm.KindInt},
		{"rating", abdm.KindFloat},
		{"name", abdm.KindString},
		{"age", abdm.KindInt},
	} {
		if err := d.DefineAttr(def.name, def.kind); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.DefineFile("course", []string{"title", "dept", "credits", "rating"}); err != nil {
		t.Fatal(err)
	}
	if err := d.DefineFile("person", []string{"name", "age"}); err != nil {
		t.Fatal(err)
	}
	return d
}

func loadCourses(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := abdm.NewRecord("course",
			abdm.Keyword{Attr: "title", Val: abdm.String(fmt.Sprintf("Course %03d", i))},
			abdm.Keyword{Attr: "dept", Val: abdm.String([]string{"CS", "Math", "Physics"}[i%3])},
			abdm.Keyword{Attr: "credits", Val: abdm.Int(int64(1 + i%5))},
			abdm.Keyword{Attr: "rating", Val: abdm.Float(float64(i%10) / 2)},
		)
		if _, err := s.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func retrieveAll(t *testing.T, s *Store, q abdm.Query) *Result {
	t.Helper()
	res, err := s.Exec(abdl.NewRetrieve(q, abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStoreInsertRetrieve(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 30)
	if s.Len() != 30 || s.FileLen("course") != 30 {
		t.Fatalf("Len=%d FileLen=%d", s.Len(), s.FileLen("course"))
	}
	res := retrieveAll(t, s, abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")},
		abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
	))
	if len(res.Records) != 10 {
		t.Fatalf("CS courses = %d, want 10", len(res.Records))
	}
	for _, sr := range res.Records {
		if v, _ := sr.Rec.Get("dept"); v.AsString() != "CS" {
			t.Errorf("non-CS record in result: %v", sr.Rec)
		}
	}
}

func TestStoreRetrieveProjection(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 5)
	res, err := s.Exec(abdl.NewRetrieve(
		abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")}),
		"title", "credits",
	))
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res.Records {
		if sr.Rec.Has("dept") || sr.Rec.Has(abdm.FileAttr) {
			t.Errorf("projection leaked attributes: %v", sr.Rec)
		}
		if !sr.Rec.Has("title") || !sr.Rec.Has("credits") {
			t.Errorf("projection dropped attributes: %v", sr.Rec)
		}
	}
}

func TestStoreRetrieveRange(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 25)
	res := retrieveAll(t, s, abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")},
		abdm.Predicate{Attr: "credits", Op: abdm.OpGe, Val: abdm.Int(4)},
	))
	want := 0
	for i := 0; i < 25; i++ {
		if 1+i%5 >= 4 {
			want++
		}
	}
	if len(res.Records) != want {
		t.Errorf("credits>=4: %d, want %d", len(res.Records), want)
	}
}

func TestStoreRetrieveDisjunction(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 9)
	q := abdm.Query{
		{{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")}},
		{{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("Math")}},
	}
	res := retrieveAll(t, s, q)
	if len(res.Records) != 6 {
		t.Errorf("CS OR Math = %d, want 6", len(res.Records))
	}
}

func TestStoreDelete(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 12)
	res, err := s.Exec(abdl.NewDelete(abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")},
		abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
	)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 4 {
		t.Fatalf("deleted %d, want 4", res.Count)
	}
	left := retrieveAll(t, s, abdm.And(
		abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
	))
	if len(left.Records) != 0 {
		t.Errorf("CS records remain after delete: %d", len(left.Records))
	}
	if s.Len() != 8 {
		t.Errorf("Len = %d, want 8", s.Len())
	}
}

func TestStoreUpdate(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 10)
	res, err := s.Exec(abdl.NewUpdate(
		abdm.And(abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")}),
		abdl.Modifier{Attr: "credits", Val: abdm.Int(9)},
	))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 {
		t.Fatal("update affected nothing")
	}
	after := retrieveAll(t, s, abdm.And(
		abdm.Predicate{Attr: "credits", Op: abdm.OpEq, Val: abdm.Int(9)},
	))
	if len(after.Records) != res.Count {
		t.Errorf("index stale after update: %d via index, %d updated", len(after.Records), res.Count)
	}
	// Updated records must keep their database keys.
	for _, sr := range after.Records {
		if v, _ := sr.Rec.Get("dept"); v.AsString() != "CS" {
			t.Errorf("update hit wrong record: %v", sr.Rec)
		}
	}
}

func TestStoreUpdateToNull(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 3)
	_, err := s.Exec(abdl.NewUpdate(
		abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")}),
		abdl.Modifier{Attr: "rating", Val: abdm.Null()},
	))
	if err != nil {
		t.Fatal(err)
	}
	res := retrieveAll(t, s, abdm.And(
		abdm.Predicate{Attr: "rating", Op: abdm.OpEq, Val: abdm.Null()},
	))
	if len(res.Records) != 3 {
		t.Errorf("nulled ratings = %d, want 3", len(res.Records))
	}
}

func TestStoreUpdateRejectsBadModifier(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 1)
	_, err := s.Exec(abdl.NewUpdate(
		abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")}),
		abdl.Modifier{Attr: "credits", Val: abdm.String("four")},
	))
	if err == nil {
		t.Error("kind-mismatched modifier accepted")
	}
	_, err = s.Exec(abdl.NewUpdate(
		abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")}),
		abdl.Modifier{Attr: "nosuch", Val: abdm.Int(1)},
	))
	if err == nil {
		t.Error("modifier on undeclared attribute accepted")
	}
}

func TestStoreAggregates(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 15) // credits cycle 1..5 three times
	res, err := s.Exec(&abdl.Request{
		Kind:  abdl.Retrieve,
		Query: abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")}),
		Target: []abdl.TargetItem{
			{Agg: abdl.AggCount, Attr: "title"},
			{Agg: abdl.AggSum, Attr: "credits"},
			{Agg: abdl.AggAvg, Attr: "credits"},
			{Agg: abdl.AggMax, Attr: "credits"},
			{Agg: abdl.AggMin, Attr: "credits"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(res.Groups))
	}
	aggs := res.Groups[0].Aggs
	wants := []abdm.Value{abdm.Int(15), abdm.Int(45), abdm.Float(3), abdm.Int(5), abdm.Int(1)}
	for i, w := range wants {
		if !aggs[i].Val.Equal(w) {
			t.Errorf("agg %v = %v, want %v", aggs[i].Item, aggs[i].Val, w)
		}
	}
}

func TestStoreGroupBy(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 9)
	res, err := s.Exec(abdl.NewRetrieve(
		abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")}),
		abdl.AllAttrs,
	).WithBy("dept"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Groups))
	}
	total := 0
	for _, g := range res.Groups {
		total += len(g.Recs)
	}
	if total != 9 {
		t.Errorf("grouped records = %d, want 9", total)
	}
}

func TestStoreEmptyQueryTouchesAllFiles(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 4)
	p := abdm.NewRecord("person",
		abdm.Keyword{Attr: "name", Val: abdm.String("Ann")},
		abdm.Keyword{Attr: "age", Val: abdm.Int(30)})
	if _, err := s.Insert(p); err != nil {
		t.Fatal(err)
	}
	res := retrieveAll(t, s, nil)
	if len(res.Records) != 5 {
		t.Errorf("unqualified retrieve = %d, want 5", len(res.Records))
	}
}

func TestStoreGetByID(t *testing.T) {
	s := NewStore(testDir(t))
	id, err := s.Insert(abdm.NewRecord("person",
		abdm.Keyword{Attr: "name", Val: abdm.String("Bob")},
		abdm.Keyword{Attr: "age", Val: abdm.Int(4)}))
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := s.GetByID(id)
	if !ok {
		t.Fatal("GetByID missed")
	}
	if v, _ := rec.Get("name"); v.AsString() != "Bob" {
		t.Errorf("wrong record: %v", rec)
	}
	if _, ok := s.GetByID(9999); ok {
		t.Error("GetByID hit a phantom")
	}
}

func TestStoreRejectsInvalid(t *testing.T) {
	s := NewStore(testDir(t))
	if _, err := s.Insert(abdm.NewRecord("nosuchfile")); err == nil {
		t.Error("insert into undeclared file accepted")
	}
	if _, err := s.Exec(abdl.NewDelete(abdm.And(
		abdm.Predicate{Attr: "nosuch", Op: abdm.OpEq, Val: abdm.Int(1)}))); err == nil {
		t.Error("delete on undeclared attribute accepted")
	}
}

func TestStoreIndexAndScanAgree(t *testing.T) {
	dirA, dirB := testDir(t), testDir(t)
	a := NewStore(dirA)
	b := NewStore(dirB, WithoutIndexes())
	for i := 0; i < 40; i++ {
		rec := abdm.NewRecord("course",
			abdm.Keyword{Attr: "title", Val: abdm.String(fmt.Sprintf("T%02d", i))},
			abdm.Keyword{Attr: "dept", Val: abdm.String([]string{"CS", "EE"}[i%2])},
			abdm.Keyword{Attr: "credits", Val: abdm.Int(int64(i % 7))},
		)
		if _, err := a.Insert(rec); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	queries := []abdm.Query{
		abdm.And(abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")}),
		abdm.And(abdm.Predicate{Attr: "credits", Op: abdm.OpGt, Val: abdm.Int(3)}),
		abdm.And(
			abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("EE")},
			abdm.Predicate{Attr: "credits", Op: abdm.OpLe, Val: abdm.Int(2)},
		),
	}
	for _, q := range queries {
		ra := retrieveAll(t, a, q)
		rb := retrieveAll(t, b, q)
		if len(ra.Records) != len(rb.Records) {
			t.Errorf("query %v: index %d vs scan %d records", q, len(ra.Records), len(rb.Records))
		}
	}
}

func TestStoreNumericIndexCrossKind(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 5) // credits 1..5
	// Float predicate against int attribute must still hit via the index.
	res := retrieveAll(t, s, abdm.And(
		abdm.Predicate{Attr: "credits", Op: abdm.OpEq, Val: abdm.Float(3)},
	))
	if len(res.Records) != 1 {
		t.Errorf("float-eq-int via index = %d, want 1", len(res.Records))
	}
}

func TestStoreCostAccounting(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 64)
	res := retrieveAll(t, s, abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")},
		abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
	))
	if res.Cost.FilesTouched != 1 {
		t.Errorf("FilesTouched = %d, want 1", res.Cost.FilesTouched)
	}
	if res.Cost.BlocksRead == 0 || res.Cost.RecordsExam == 0 {
		t.Errorf("cost not charged: %+v", res.Cost)
	}
	m := DefaultDiskModel()
	if m.Time(res.Cost) <= 0 {
		t.Error("simulated time should be positive")
	}
	// Indexed access must examine fewer records than a scan of the file.
	if res.Cost.RecordsExam >= 64 {
		t.Errorf("index did not prune: examined %d of 64", res.Cost.RecordsExam)
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 20)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 20 {
		t.Fatalf("loaded %d records, want 20", s2.Len())
	}
	a, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Rec.Equal(b[i].Rec) {
			t.Fatalf("record %d differs after round trip", i)
		}
	}
	// New inserts must not collide with loaded keys.
	id, err := s2.Insert(abdm.NewRecord("person",
		abdm.Keyword{Attr: "name", Val: abdm.String("Z")},
		abdm.Keyword{Attr: "age", Val: abdm.Int(1)}))
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range a {
		if sr.ID == id {
			t.Fatal("post-load insert reused a key")
		}
	}
}

func TestStoreInsertWithIDDuplicate(t *testing.T) {
	s := NewStore(testDir(t))
	rec := abdm.NewRecord("person",
		abdm.Keyword{Attr: "name", Val: abdm.String("A")},
		abdm.Keyword{Attr: "age", Val: abdm.Int(1)})
	if err := s.InsertWithID(7, rec); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertWithID(7, rec); err == nil {
		t.Error("duplicate key accepted")
	}
}

// Property: insert then retrieve by unique key returns exactly that record.
func TestStoreInsertRetrieveProperty(t *testing.T) {
	s := NewStore(testDir(t))
	seen := make(map[int64]bool)
	f := func(age int64) bool {
		if seen[age] {
			return true
		}
		seen[age] = true
		rec := abdm.NewRecord("person",
			abdm.Keyword{Attr: "name", Val: abdm.String(fmt.Sprint("p", age))},
			abdm.Keyword{Attr: "age", Val: abdm.Int(age)})
		if _, err := s.Insert(rec); err != nil {
			return false
		}
		res, err := s.Exec(abdl.NewRetrieve(abdm.And(
			abdm.Predicate{Attr: "age", Op: abdm.OpEq, Val: abdm.Int(age)},
		), abdl.AllAttrs))
		if err != nil {
			return false
		}
		return len(res.Records) == 1 && res.Records[0].Rec.Equal(rec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: delete(q) implies retrieve(q) is empty.
func TestStoreDeleteRetrieveProperty(t *testing.T) {
	f := func(vals []int8) bool {
		s := NewStore(abdm.NewDirectory())
		if err := s.Directory().DefineAttr("v", abdm.KindInt); err != nil {
			return false
		}
		if err := s.Directory().DefineFile("f", []string{"v"}); err != nil {
			return false
		}
		for _, v := range vals {
			rec := abdm.NewRecord("f", abdm.Keyword{Attr: "v", Val: abdm.Int(int64(v))})
			if _, err := s.Insert(rec); err != nil {
				return false
			}
		}
		q := abdm.And(abdm.Predicate{Attr: "v", Op: abdm.OpGe, Val: abdm.Int(0)})
		if _, err := s.Exec(abdl.NewDelete(q)); err != nil {
			return false
		}
		res, err := s.Exec(abdl.NewRetrieve(q, abdl.AllAttrs))
		if err != nil {
			return false
		}
		return len(res.Records) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStoreRangeIndexPath(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 80)
	// A range-only conjunction (no usable equality other than FILE) should
	// use the range index: fewer records examined than the file holds.
	res := retrieveAll(t, s, abdm.Query{{
		{Attr: "credits", Op: abdm.OpGe, Val: abdm.Int(4)},
	}})
	want := 0
	for i := 0; i < 80; i++ {
		if 1+i%5 >= 4 {
			want++
		}
	}
	if len(res.Records) != want {
		t.Fatalf("records = %d, want %d", len(res.Records), want)
	}
	if res.Cost.RecordsExam >= 80 {
		t.Errorf("range index did not prune: examined %d of 80", res.Cost.RecordsExam)
	}
	if res.Cost.DirProbes == 0 {
		t.Error("range path should charge directory probes")
	}
}

func TestStoreRangeOnUnstoredAttr(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 5)
	// age is declared but never stored: a range predicate matches nothing,
	// and the planner may prove it without touching records.
	res := retrieveAll(t, s, abdm.Query{{
		{Attr: "age", Op: abdm.OpGt, Val: abdm.Int(0)},
	}})
	if len(res.Records) != 0 {
		t.Errorf("phantom matches: %d", len(res.Records))
	}
}

func TestStoreAccessPaths(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 20)
	cases := []struct {
		q    abdm.Query
		want string
	}{
		{abdm.And(abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")}), "index-eq(dept)"},
		{abdm.Query{{{Attr: "credits", Op: abdm.OpGe, Val: abdm.Int(4)}}}, "index-range(credits)"},
		{abdm.And(abdm.Predicate{Attr: "age", Op: abdm.OpEq, Val: abdm.Int(1)}), "empty(age)"},
		{nil, "scan(*)"},
	}
	for _, c := range cases {
		res := retrieveAll(t, s, c.q)
		if len(res.Paths) != 1 || res.Paths[0] != c.want {
			t.Errorf("query %v paths = %v, want [%s]", c.q, res.Paths, c.want)
		}
	}
	// Scan fallback: no indexes.
	ns := NewStore(testDir(t), WithoutIndexes())
	loadCourses(t, ns, 3)
	res := retrieveAll(t, ns, abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")},
		abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
	))
	if len(res.Paths) != 1 || res.Paths[0] != "scan(course)" {
		t.Errorf("no-index paths = %v", res.Paths)
	}
}
