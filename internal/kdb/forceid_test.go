package kdb

import (
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

// TestInsertReportsAssignedID: every INSERT reports the database key it
// stored the record under — the transaction manager's undo path depends on
// it to erase the record on abort.
func TestInsertReportsAssignedID(t *testing.T) {
	s := NewStore(testDir(t))
	rec := abdm.NewRecord("person", abdm.Keyword{Attr: "name", Val: abdm.String("a")})
	res, err := s.Exec(abdl.NewInsert(rec))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Affected) != 1 || res.Affected[0] == 0 {
		t.Fatalf("insert Affected = %v, want the one assigned id", res.Affected)
	}
	if got, ok := s.GetByID(res.Affected[0]); !ok || !got.Equal(rec) {
		t.Fatalf("GetByID(%d) = %v, %v", res.Affected[0], got, ok)
	}

	forced := abdl.NewInsert(abdm.NewRecord("person",
		abdm.Keyword{Attr: "name", Val: abdm.String("b")}))
	forced.ForceID = 99
	res, err = s.Exec(forced)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Affected) != 1 || res.Affected[0] != 99 {
		t.Fatalf("forced insert Affected = %v, want [99]", res.Affected)
	}
}

// TestDeleteByForceID: a DELETE with a pinned key removes exactly that
// record, ignoring the qualification; a missing key deletes nothing.
func TestDeleteByForceID(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 5)
	before := s.Len()
	res, err := s.Exec(abdl.NewRetrieve(abdm.And(abdm.Predicate{
		Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")}), abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	victim := res.Records[0].ID

	del := abdl.NewDelete(abdm.And(abdm.Predicate{
		Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")}))
	del.ForceID = victim
	dres, err := s.Exec(del)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Count != 1 || len(dres.Affected) != 1 || dres.Affected[0] != victim {
		t.Fatalf("targeted delete: count=%d affected=%v, want exactly %d", dres.Count, dres.Affected, victim)
	}
	if s.Len() != before-1 {
		t.Fatalf("store len = %d, want %d (the qualification must be ignored)", s.Len(), before-1)
	}
	if _, ok := s.GetByID(victim); ok {
		t.Fatal("victim still present")
	}

	// Deleting a key that does not exist is a clean no-op.
	dres, err = s.Exec(del)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Count != 0 || len(dres.Affected) != 0 {
		t.Fatalf("missing-key delete: count=%d affected=%v, want no-op", dres.Count, dres.Affected)
	}
}
