package kdb

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"mlds/internal/abdm"
	"mlds/internal/pager"
)

// fatCourse is a course record with a large free-text body, so the heap's
// size is dominated by record bodies the index image never carries.
func fatCourse(i int) *abdm.Record {
	rec := abdm.NewRecord("course",
		abdm.Keyword{Attr: "title", Val: abdm.String(fmt.Sprintf("Course %03d", i))},
		abdm.Keyword{Attr: "dept", Val: abdm.String([]string{"CS", "Math", "Physics"}[i%3])},
		abdm.Keyword{Attr: "credits", Val: abdm.Int(int64(1 + i%5))},
	)
	rec.Text = strings.Repeat("course syllabus text ", 15)
	return rec
}

// TestOpenBackedReopenCostIndexPages is the regression test for the old
// open-by-full-scan behaviour: reopening an N-record store from a
// checkpointed image must read O(index pages), not O(heap pages). The
// records carry fat bodies so the heap dwarfs the image; an open that
// touches even half the file's pages is a rescan and fails.
func TestOpenBackedReopenCostIndexPages(t *testing.T) {
	const n = 400
	path := filepath.Join(t.TempDir(), "part.pgf")
	s, err := CreateBacked(path, testDir(t), WithPageSize(512), WithPoolPages(16))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := s.Insert(fatCourse(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CheckpointCommitAfterBegin(t, pager.Meta{Epoch: 2, Entries: n, MaxKey: n}); err != nil {
		t.Fatal(err)
	}
	s.CloseBacking()

	s2, meta, err := OpenBacked(path, testDir(t), WithPageSize(512), WithPoolPages(16))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseBacking()
	if !meta.HasIndex {
		t.Fatal("checkpoint committed no index image")
	}
	stats, pages, _ := s2.BackingStats()
	reads := stats.Misses + stats.Hits
	if pages < 4*16 {
		t.Fatalf("dataset too small to prove anything: %d pages", pages)
	}
	if reads*2 >= uint64(pages) {
		t.Fatalf("open read %d of %d pages — that is a heap rescan, not an image restore", reads, pages)
	}
	if s2.Len() != n {
		t.Fatalf("restored %d records, want %d", s2.Len(), n)
	}
	if got := s2.ResidentRecords(); got != 0 {
		t.Fatalf("open materialised %d record bodies; demand paging should load none", got)
	}
	// The restored index answers without scanning: dept=CS matches a third.
	res := retrieveAll(t, s2, abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")},
		abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
	))
	if len(res.Records) != (n+2)/3 {
		t.Fatalf("restored CS courses = %d, want %d", len(res.Records), (n+2)/3)
	}
}

// TestOpenBackedLegacyMetaFallsBackToScan: a generation committed without a
// persisted index image — what every page file written before images looked
// like — must still open, via the one-time full-heap scan: membership, RID
// map, indexes and the id allocator all rebuilt from the heap alone.
func TestOpenBackedLegacyMetaFallsBackToScan(t *testing.T) {
	const n = 30
	path := filepath.Join(t.TempDir(), "part.pgf")
	s, err := CreateBacked(path, testDir(t), WithPageSize(512), WithPoolPages(8))
	if err != nil {
		t.Fatal(err)
	}
	loadCourses(t, s, n)
	// Commit a legacy generation by hand: heap flushed, no image blob, no
	// HasIndex, not even a NextID seed — exactly what an old writer left.
	b := s.backing
	if err := b.heap.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := b.file.Commit(pager.Meta{Epoch: 3, Entries: n, MaxKey: n}); err != nil {
		t.Fatal(err)
	}
	s.CloseBacking()

	s2, meta, err := OpenBacked(path, testDir(t), WithPageSize(512), WithPoolPages(8))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseBacking()
	if meta.HasIndex {
		t.Fatal("legacy generation claims an index image")
	}
	if meta.Epoch != 3 || meta.Entries != n {
		t.Fatalf("meta = %+v, want epoch 3 entries %d", meta, n)
	}
	if s2.Len() != n {
		t.Fatalf("scan restored %d records, want %d", s2.Len(), n)
	}
	// Indexes rebuilt by the scan.
	res := retrieveAll(t, s2, abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")},
		abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
	))
	if len(res.Records) != 10 {
		t.Fatalf("rebuilt CS courses = %d, want 10", len(res.Records))
	}
	// Allocator seeded from the scan's id high-water, not the (absent) meta.
	id, err := s2.Insert(courseRec("Fresh", 1))
	if err != nil {
		t.Fatal(err)
	}
	if id <= n {
		t.Fatalf("fresh insert got id %d inside the scanned key space", id)
	}
}
