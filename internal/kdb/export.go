package kdb

import (
	"sort"

	"mlds/internal/abdm"
)

// Live partition migration support.
//
// A draining (or rebalancing) backend's partition is copied to its new
// holders in epoch-bounded rounds: ExportSince pages out every record whose
// version chain was touched at or after a given commit epoch — live value,
// full chain, pending versions included — and ImportPartition installs those
// records on the destination, replacing its live state and chain for each
// key. The first round (since == 0) copies everything; subsequent rounds
// copy only what changed while the previous round ran, so the residue
// shrinks until the controller can finish under a brief write fence.
//
// The epoch bound is INCLUSIVE (epoch >= since): a mutation stamped at the
// epoch observed when a round started may have landed after that round's
// page passed its record, so the boundary epoch is always re-exported.
// Imports are idempotent replacements, so the overlap is harmless.

// MigVersion is one exported entry of a record's version chain. A nil Rec is
// a tombstone; Epoch 0 marks a version still pending under Txn.
type MigVersion struct {
	Epoch uint64
	Txn   uint64
	Rec   *abdm.Record
}

// MigRecord is one record's exportable state: its live value (nil when the
// record is currently deleted) plus its full version chain.
type MigRecord struct {
	File  string
	ID    abdm.RecordID
	Live  *abdm.Record
	Chain []MigVersion
}

// ApproxBytes estimates the record's wire footprint, for migration metrics.
func (m *MigRecord) ApproxBytes() int {
	size := func(r *abdm.Record) int {
		if r == nil {
			return 0
		}
		n := len(r.Text) + 16
		for _, kw := range r.Keywords {
			n += len(kw.Attr) + 16
		}
		return n
	}
	n := len(m.File) + 16 + size(m.Live)
	for _, v := range m.Chain {
		n += 16 + size(v.Rec)
	}
	return n
}

// ExportSince pages out the records whose version chains hold a version with
// epoch >= since or still pending, ordered by database key, starting after
// the given key, at most limit records (0 = unlimited). It returns the page,
// the key to resume after (0 when the page is the last), and the store's
// commit epoch observed at the start of the call — the inclusive lower bound
// for the next round.
func (s *Store) ExportSince(since uint64, after abdm.RecordID, limit int) ([]MigRecord, abdm.RecordID, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	epoch := s.mvcc.epoch
	if epoch == 0 {
		epoch = 1
	}
	fileFor := make(map[abdm.RecordID]string)
	for file, chains := range s.mvcc.chains {
		for id, chain := range chains {
			if id <= after || !chainTouched(chain, since) {
				continue
			}
			fileFor[id] = file
		}
	}
	if since == 0 {
		// Belt and braces: a live record can predate MVCC bookkeeping (a
		// store populated before chains existed); a full export includes it.
		for id, file := range s.fileOf {
			if id <= after {
				continue
			}
			if _, ok := fileFor[id]; !ok {
				fileFor[id] = file
			}
		}
	}
	ids := make([]abdm.RecordID, 0, len(fileFor))
	for id := range fileFor {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	next := abdm.RecordID(0)
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
		next = ids[len(ids)-1]
	}
	out := make([]MigRecord, 0, len(ids))
	for _, id := range ids {
		file := fileFor[id]
		mr := MigRecord{File: file, ID: id}
		if liveFile, ok := s.fileOf[id]; ok {
			live := s.files[liveFile][id]
			if live == nil {
				var err error
				if live, err = s.fetchLocked(id); err != nil {
					return nil, 0, 0, err
				}
				mr.Live = live
			} else {
				mr.Live = live.Clone()
			}
			mr.File = liveFile
		}
		for _, v := range s.mvcc.chains[file][id] {
			mv := MigVersion{Epoch: v.epoch, Txn: v.txn}
			if v.rec != nil {
				mv.Rec = v.rec.Clone()
			}
			mr.Chain = append(mr.Chain, mv)
		}
		out = append(out, mr)
	}
	return out, next, epoch, nil
}

// chainTouched reports whether any version of the chain is pending or was
// committed at or after since.
func chainTouched(chain []version, since uint64) bool {
	for _, v := range chain {
		if v.epoch == 0 || v.epoch >= since {
			return true
		}
	}
	return false
}

// chainRank orders two states of one record's chain by recency: the newest
// committed epoch, the number of versions at that epoch (one commit batch can
// stamp several writes of a record at a single epoch), then the pending
// count. Migration imports use it to avoid replacing a destination copy that
// concurrent writes have already carried past the exported state.
type chainRank struct {
	newest  uint64
	atTip   int
	pending int
}

func rankOf(newest func(i int) (epoch uint64), n int) chainRank {
	var r chainRank
	for i := 0; i < n; i++ {
		e := newest(i)
		if e == 0 {
			r.pending++
			continue
		}
		if e > r.newest {
			r.newest, r.atTip = e, 1
		} else if e == r.newest {
			r.atTip++
		}
	}
	return r
}

func (r chainRank) newerThan(o chainRank) bool {
	if r.newest != o.newest {
		return r.newest > o.newest
	}
	if r.atTip != o.atTip {
		return r.atTip > o.atTip
	}
	return r.pending > o.pending
}

// ImportPartition installs exported records: for each, the live state and the
// version chain replace the destination's copy, pending versions are
// registered so a later MVCC-COMMIT/ABORT broadcast finds them, and the
// store's epoch advances to the newest imported epoch. A record whose
// destination chain already ranks newer than the import (a concurrent write
// landed after the export) is left alone — the next, fenced, round carries
// its final state. Imports are idempotent. It returns how many records were
// applied.
func (s *Store) ImportPartition(recs []MigRecord) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mvcc.chains == nil {
		s.mvcc.chains = make(map[string]map[abdm.RecordID][]version)
		s.mvcc.pending = make(map[uint64][]chainRef)
		if s.mvcc.epoch == 0 {
			s.mvcc.epoch = 1
		}
	}
	applied := 0
	for i := range recs {
		mr := &recs[i]
		have := s.mvcc.chains[mr.File][mr.ID]
		imp := rankOf(func(i int) uint64 { return mr.Chain[i].Epoch }, len(mr.Chain))
		cur := rankOf(func(i int) uint64 { return have[i].epoch }, len(have))
		if len(have) > 0 && cur.newerThan(imp) {
			continue
		}
		applied++
		// Live state: replace or remove.
		if mr.Live != nil {
			if err := s.insertForcedLocked(mr.ID, mr.Live); err != nil {
				return applied, err
			}
		} else if _, ok := s.fileOf[mr.ID]; ok {
			if err := s.removeByIDLocked(mr.ID); err != nil {
				return applied, err
			}
		} else {
			s.bumpGen(mr.File)
		}
		// Chain: replace, registering imported pending versions. Pending
		// residency moves with the chain: the replaced chain's pending
		// versions are gone, the imported ones take their place.
		for _, v := range have {
			if v.epoch == 0 {
				s.pendingDec(mr.ID)
			}
		}
		chain := make([]version, len(mr.Chain))
		for j, v := range mr.Chain {
			chain[j] = version{epoch: v.Epoch, txn: v.Txn}
			if v.Rec != nil {
				chain[j].rec = v.Rec.Clone()
			}
			if v.Epoch == 0 {
				s.pendingInc(mr.ID)
				if v.Txn != 0 {
					s.addPendingRefLocked(v.Txn, mr.File, mr.ID)
				}
			}
			if v.Epoch > s.mvcc.epoch {
				s.mvcc.epoch = v.Epoch
			}
		}
		if s.mvcc.chains[mr.File] == nil {
			s.mvcc.chains[mr.File] = make(map[abdm.RecordID][]version)
		}
		s.mvcc.versions += len(chain) - len(have)
		s.setChainLocked(mr.File, mr.ID, chain)
		// The paged backing holds committed state only: write through the
		// newest committed version of the imported chain (the live value may
		// include uncommitted 2PL writes that a pending version carries).
		for j := len(chain) - 1; j >= 0; j-- {
			if chain[j].epoch != 0 {
				s.applyBacking(mr.ID, chain[j].rec, chain[j].epoch)
				break
			}
		}
	}
	return applied, nil
}

// addPendingRefLocked registers a pending-version location, skipping exact
// duplicates so repeated imports stay idempotent.
func (s *Store) addPendingRefLocked(txn uint64, file string, id abdm.RecordID) {
	for _, ref := range s.mvcc.pending[txn] {
		if ref.file == file && ref.id == id {
			return
		}
	}
	s.mvcc.pending[txn] = append(s.mvcc.pending[txn], chainRef{file, id})
}

// DropRecords removes the given records entirely — live state, indexes and
// version chains — returning how many held any state. Migration uses it to
// clear copies stranded on backends that left a key's holder set; the key's
// authoritative copies (with full chains) live elsewhere, so snapshots lose
// nothing.
func (s *Store) DropRecords(ids []abdm.RecordID) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, id := range ids {
		hit := false
		if _, ok := s.fileOf[id]; ok {
			if err := s.removeByIDLocked(id); err != nil {
				return n, err
			}
			hit = true
		}
		for file, chains := range s.mvcc.chains {
			if chain, ok := chains[id]; ok {
				for _, v := range chain {
					if v.epoch == 0 {
						s.pendingDec(id)
					}
				}
				s.mvcc.versions -= len(chain)
				s.setChainLocked(file, id, nil)
				s.bumpGen(file)
				hit = true
			}
		}
		if hit {
			n++
			s.applyBacking(id, nil, 0)
		}
	}
	return n, nil
}
