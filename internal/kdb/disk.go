// Package kdb implements the storage engine run by each MBDS backend: an
// attribute-indexed record store executing ABDL requests over its partition
// of the kernel database.
//
// The engine models the paper's backend hardware (a dedicated disk per
// backend) with a synthetic disk-cost model. Every request reports how many
// directory and data-block accesses it performed and the simulated time they
// would have taken; the multi-backend layer aggregates those costs to
// reproduce the MBDS response-time behaviour without real disks.
package kdb

import "time"

// DiskModel is the synthetic cost model for one backend's dedicated disk.
// Costs are charged per request: one track access (seek + rotational delay)
// per track's worth of data blocks transferred, one block transfer per data
// block read or written, and one directory access per index probe. Because
// seeks scale with the data volume each backend touches, partitioning the
// database across backends divides the dominant cost — which is what yields
// the MBDS response-time reciprocity.
type DiskModel struct {
	TrackAccess time.Duration // per track visited (seek + rotational delay)
	BlockIO     time.Duration // per data block transferred
	DirAccess   time.Duration // per directory (index) probe
	BlockFactor int           // records per data block
	TrackBlocks int           // data blocks per track
}

// DefaultDiskModel mirrors late-1980s minicomputer disk behaviour closely
// enough to reproduce the MBDS response-time curves: ~30ms positioning per
// 4-block track, ~5ms per block of 16 records, ~3ms per directory probe.
func DefaultDiskModel() DiskModel {
	return DiskModel{
		TrackAccess: 30 * time.Millisecond,
		BlockIO:     5 * time.Millisecond,
		DirAccess:   3 * time.Millisecond,
		BlockFactor: 16,
		TrackBlocks: 4,
	}
}

// Degraded returns a copy of the model with every latency multiplied by
// factor — a failing disk that still answers, but slowly (recoverable-error
// retries, remapped sectors). The fault-injection harness uses it to model a
// sick backend whose partition costs the same I/O but takes factor times as
// long.
func (m DiskModel) Degraded(factor int) DiskModel {
	if factor < 1 {
		factor = 1
	}
	out := m
	out.TrackAccess = m.TrackAccess * time.Duration(factor)
	out.BlockIO = m.BlockIO * time.Duration(factor)
	out.DirAccess = m.DirAccess * time.Duration(factor)
	return out
}

// Cost is the I/O accounting for one executed request.
type Cost struct {
	FilesTouched int
	BlocksRead   int
	BlocksWrit   int
	DirProbes    int
	RecordsExam  int // records examined (scan or candidate set)
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.FilesTouched += o.FilesTouched
	c.BlocksRead += o.BlocksRead
	c.BlocksWrit += o.BlocksWrit
	c.DirProbes += o.DirProbes
	c.RecordsExam += o.RecordsExam
}

// Time converts the cost to simulated elapsed time under the model.
func (m DiskModel) Time(c Cost) time.Duration {
	tb := m.TrackBlocks
	if tb <= 0 {
		tb = 4
	}
	blocks := c.BlocksRead + c.BlocksWrit
	tracks := (blocks + tb - 1) / tb
	return time.Duration(tracks)*m.TrackAccess +
		time.Duration(blocks)*m.BlockIO +
		time.Duration(c.DirProbes)*m.DirAccess
}

// blocks returns the number of data blocks n records occupy.
func (m DiskModel) blocks(n int) int {
	bf := m.BlockFactor
	if bf <= 0 {
		bf = 16
	}
	if n == 0 {
		return 0
	}
	return (n + bf - 1) / bf
}
