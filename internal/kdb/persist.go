package kdb

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"mlds/internal/abdm"
)

// The persistence format is a fixed header — magic plus format version —
// followed by a gob stream of plain DTO structs, so the model types stay
// free of serialisation concerns. Headerless streams written before the
// header existed (format v0) are still readable.

// snapshotMagic identifies a kdb snapshot stream; the byte after it is the
// format version.
const (
	snapshotMagic   = "MLDSKDB\x00"
	snapshotVersion = 1
)

// ErrCorruptSnapshot reports a snapshot stream that cannot be decoded: a
// bad magic or version header, a torn gob stream, or an impossible value
// inside it.
var ErrCorruptSnapshot = errors.New("kdb: corrupt snapshot")

type kwDTO struct {
	Attr string
	Kind byte
	I    int64
	F    float64
	S    string
}

type recordDTO struct {
	ID       uint64
	Keywords []kwDTO
	Text     string
}

type snapshotDTO struct {
	Attrs   map[string]byte
	Files   map[string][]string
	Records []recordDTO
	NextID  uint64
}

func toKwDTO(kw abdm.Keyword) kwDTO {
	d := kwDTO{Attr: kw.Attr, Kind: byte(kw.Val.Kind())}
	switch kw.Val.Kind() {
	case abdm.KindInt:
		d.I = kw.Val.AsInt()
	case abdm.KindFloat:
		d.F = kw.Val.AsFloat()
	case abdm.KindString:
		d.S = kw.Val.AsString()
	}
	return d
}

func fromKwDTO(d kwDTO) (abdm.Keyword, error) {
	var v abdm.Value
	switch abdm.Kind(d.Kind) {
	case abdm.KindNull:
		v = abdm.Null()
	case abdm.KindInt:
		v = abdm.Int(d.I)
	case abdm.KindFloat:
		v = abdm.Float(d.F)
	case abdm.KindString:
		v = abdm.String(d.S)
	default:
		return abdm.Keyword{}, fmt.Errorf("%w: unknown value kind %d", ErrCorruptSnapshot, d.Kind)
	}
	return abdm.Keyword{Attr: d.Attr, Val: v}, nil
}

// Save writes the store's directory and records to w, prefixed by the
// snapshot magic and format version.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	dto := snapshotDTO{
		Attrs: make(map[string]byte),
		Files: make(map[string][]string),
	}
	for _, a := range s.dir.Attrs() {
		k, _ := s.dir.AttrKind(a)
		dto.Attrs[a] = byte(k)
	}
	for _, f := range s.dir.Files() {
		t, _ := s.dir.FileTemplate(f)
		dto.Files[f] = t
	}
	var maxID abdm.RecordID
	for id, file := range s.fileOf {
		rec := s.files[file][id]
		if rec == nil {
			var err error
			if rec, err = s.fetchLocked(id); err != nil {
				s.mu.RUnlock()
				return err
			}
		}
		rd := recordDTO{ID: uint64(id), Text: rec.Text}
		for _, kw := range rec.Keywords {
			rd.Keywords = append(rd.Keywords, toKwDTO(kw))
		}
		dto.Records = append(dto.Records, rd)
		if id > maxID {
			maxID = id
		}
	}
	dto.NextID = uint64(maxID)
	s.mu.RUnlock()
	if _, err := w.Write(append([]byte(snapshotMagic), snapshotVersion)); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(&dto)
}

// Load reads a snapshot written by Save and returns a fresh store holding
// its contents. New database keys continue after the highest loaded key.
// Headerless v0 snapshots still load; a stream that matches neither form is
// rejected with ErrCorruptSnapshot.
func Load(r io.Reader, opts ...Option) (*Store, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(snapshotMagic) + 1)
	switch {
	case err == nil && bytes.Equal(head[:len(snapshotMagic)], []byte(snapshotMagic)):
		if v := head[len(snapshotMagic)]; v != snapshotVersion {
			return nil, fmt.Errorf("%w: unsupported format version %d", ErrCorruptSnapshot, v)
		}
		if _, err := br.Discard(len(snapshotMagic) + 1); err != nil {
			return nil, err
		}
	case err == nil || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF):
		// No header: either a legacy v0 stream (bare gob) or garbage; the
		// gob decode below settles it.
	default:
		return nil, err
	}
	var dto snapshotDTO
	if err := gob.NewDecoder(br).Decode(&dto); err != nil {
		return nil, fmt.Errorf("%w: decoding stream: %v", ErrCorruptSnapshot, err)
	}
	dir := abdm.NewDirectory()
	for a, k := range dto.Attrs {
		if err := dir.DefineAttr(a, abdm.Kind(k)); err != nil {
			return nil, err
		}
	}
	for f, t := range dto.Files {
		if err := dir.DefineFile(f, t); err != nil {
			return nil, err
		}
	}
	ctr := abdm.RecordID(dto.NextID)
	s := NewStore(dir, opts...)
	s.nextID = func() abdm.RecordID { ctr++; return ctr }
	s.seedID = func(id abdm.RecordID) {
		if id > ctr {
			ctr = id
		}
	}
	for _, rd := range dto.Records {
		rec := &abdm.Record{Text: rd.Text}
		for _, kd := range rd.Keywords {
			kw, err := fromKwDTO(kd)
			if err != nil {
				return nil, err
			}
			rec.Set(kw.Attr, kw.Val)
		}
		if err := s.InsertWithID(abdm.RecordID(rd.ID), rec); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// InsertWithID stores a record under a caller-supplied database key. It is
// used when reloading snapshots and when MBDS redistributes records across
// backends; the key must not already be in use.
func (s *Store) InsertWithID(id abdm.RecordID, rec *abdm.Record) error {
	if err := s.dir.ValidateRecord(rec); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.fileOf[id]; dup {
		return fmt.Errorf("kdb: database key %d already in use", id)
	}
	if s.seedID != nil {
		s.seedID(id)
	}
	cp := rec.Clone()
	file := cp.File()
	if s.files[file] == nil {
		s.files[file] = make(map[abdm.RecordID]*abdm.Record)
	}
	if s.backing != nil {
		s.resident++
	}
	s.files[file][id] = cp
	s.fileOf[id] = file
	if !s.noIndex {
		for _, kw := range cp.Keywords {
			ix := s.indexes[kw.Attr]
			if ix == nil {
				ix = newAttrIndex()
				s.indexes[kw.Attr] = ix
			}
			ix.add(kw.Val, id)
		}
	}
	s.applyBacking(id, cp, 0)
	return nil
}
