package kdb

import (
	"encoding/gob"
	"fmt"
	"io"

	"mlds/internal/abdm"
)

// The persistence format is a gob stream of plain DTO structs so that the
// model types stay free of serialisation concerns.

type kwDTO struct {
	Attr string
	Kind byte
	I    int64
	F    float64
	S    string
}

type recordDTO struct {
	ID       uint64
	Keywords []kwDTO
	Text     string
}

type snapshotDTO struct {
	Attrs   map[string]byte
	Files   map[string][]string
	Records []recordDTO
	NextID  uint64
}

func toKwDTO(kw abdm.Keyword) kwDTO {
	d := kwDTO{Attr: kw.Attr, Kind: byte(kw.Val.Kind())}
	switch kw.Val.Kind() {
	case abdm.KindInt:
		d.I = kw.Val.AsInt()
	case abdm.KindFloat:
		d.F = kw.Val.AsFloat()
	case abdm.KindString:
		d.S = kw.Val.AsString()
	}
	return d
}

func fromKwDTO(d kwDTO) (abdm.Keyword, error) {
	var v abdm.Value
	switch abdm.Kind(d.Kind) {
	case abdm.KindNull:
		v = abdm.Null()
	case abdm.KindInt:
		v = abdm.Int(d.I)
	case abdm.KindFloat:
		v = abdm.Float(d.F)
	case abdm.KindString:
		v = abdm.String(d.S)
	default:
		return abdm.Keyword{}, fmt.Errorf("kdb: corrupt snapshot: unknown value kind %d", d.Kind)
	}
	return abdm.Keyword{Attr: d.Attr, Val: v}, nil
}

// Save writes the store's directory and records to w.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	dto := snapshotDTO{
		Attrs: make(map[string]byte),
		Files: make(map[string][]string),
	}
	for _, a := range s.dir.Attrs() {
		k, _ := s.dir.AttrKind(a)
		dto.Attrs[a] = byte(k)
	}
	for _, f := range s.dir.Files() {
		t, _ := s.dir.FileTemplate(f)
		dto.Files[f] = t
	}
	var maxID abdm.RecordID
	for id, file := range s.fileOf {
		rec := s.files[file][id]
		rd := recordDTO{ID: uint64(id), Text: rec.Text}
		for _, kw := range rec.Keywords {
			rd.Keywords = append(rd.Keywords, toKwDTO(kw))
		}
		dto.Records = append(dto.Records, rd)
		if id > maxID {
			maxID = id
		}
	}
	dto.NextID = uint64(maxID)
	s.mu.RUnlock()
	return gob.NewEncoder(w).Encode(&dto)
}

// Load reads a snapshot written by Save and returns a fresh store holding
// its contents. New database keys continue after the highest loaded key.
func Load(r io.Reader, opts ...Option) (*Store, error) {
	var dto snapshotDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("kdb: decoding snapshot: %w", err)
	}
	dir := abdm.NewDirectory()
	for a, k := range dto.Attrs {
		if err := dir.DefineAttr(a, abdm.Kind(k)); err != nil {
			return nil, err
		}
	}
	for f, t := range dto.Files {
		if err := dir.DefineFile(f, t); err != nil {
			return nil, err
		}
	}
	ctr := abdm.RecordID(dto.NextID)
	s := NewStore(dir, opts...)
	s.nextID = func() abdm.RecordID { ctr++; return ctr }
	for _, rd := range dto.Records {
		rec := &abdm.Record{Text: rd.Text}
		for _, kd := range rd.Keywords {
			kw, err := fromKwDTO(kd)
			if err != nil {
				return nil, err
			}
			rec.Set(kw.Attr, kw.Val)
		}
		if err := s.InsertWithID(abdm.RecordID(rd.ID), rec); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// InsertWithID stores a record under a caller-supplied database key. It is
// used when reloading snapshots and when MBDS redistributes records across
// backends; the key must not already be in use.
func (s *Store) InsertWithID(id abdm.RecordID, rec *abdm.Record) error {
	if err := s.dir.ValidateRecord(rec); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.fileOf[id]; dup {
		return fmt.Errorf("kdb: database key %d already in use", id)
	}
	cp := rec.Clone()
	file := cp.File()
	if s.files[file] == nil {
		s.files[file] = make(map[abdm.RecordID]*abdm.Record)
	}
	s.files[file][id] = cp
	s.fileOf[id] = file
	if !s.noIndex {
		for _, kw := range cp.Keywords {
			ix := s.indexes[kw.Attr]
			if ix == nil {
				ix = newAttrIndex()
				s.indexes[kw.Attr] = ix
			}
			ix.add(kw.Val, id)
		}
	}
	return nil
}
