package kdb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"

	"mlds/internal/abdm"
)

// TestSnapshotHeader: Save writes the magic + version header and Load
// consumes it.
func TestSnapshotHeader(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 3)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	head := buf.Bytes()[:len(snapshotMagic)+1]
	if !bytes.Equal(head[:len(snapshotMagic)], []byte(snapshotMagic)) {
		t.Fatalf("snapshot head = %q, want magic %q", head, snapshotMagic)
	}
	if head[len(snapshotMagic)] != snapshotVersion {
		t.Fatalf("snapshot version byte = %d, want %d", head[len(snapshotMagic)], snapshotVersion)
	}
	s2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("loaded %d records, want 3", s2.Len())
	}
}

// TestSnapshotLegacyV0: a headerless bare-gob stream — the pre-header
// format — still loads.
func TestSnapshotLegacyV0(t *testing.T) {
	dto := snapshotDTO{
		Attrs: map[string]byte{"name": byte(abdm.KindString)},
		Files: map[string][]string{"person": {"name"}},
		Records: []recordDTO{{
			ID: 4,
			Keywords: []kwDTO{
				{Attr: abdm.FileAttr, Kind: byte(abdm.KindString), S: "person"},
				{Attr: "name", Kind: byte(abdm.KindString), S: "legacy"},
			},
		}},
		NextID: 4,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&dto); err != nil {
		t.Fatal(err)
	}
	s, err := Load(&buf)
	if err != nil {
		t.Fatalf("legacy v0 snapshot rejected: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("loaded %d records, want 1", s.Len())
	}
	// The allocator continues past the loaded keys.
	id, err := s.Insert(abdm.NewRecord("person",
		abdm.Keyword{Attr: "name", Val: abdm.String("fresh")}))
	if err != nil {
		t.Fatal(err)
	}
	if id <= 4 {
		t.Fatalf("post-load insert got key %d inside the loaded range", id)
	}
}

// TestSnapshotCorruption: garbage, an unsupported version, and a torn
// stream all come back as ErrCorruptSnapshot — never a silent partial load.
func TestSnapshotCorruption(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte{0x01, 0x00})); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("garbage stream: %v, want ErrCorruptSnapshot", err)
	}

	badVersion := append([]byte(snapshotMagic), snapshotVersion+1)
	if _, err := Load(bytes.NewReader(badVersion)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("future version: %v, want ErrCorruptSnapshot", err)
	}

	s := NewStore(testDir(t))
	loadCourses(t, s, 10)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(torn)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("torn stream: %v, want ErrCorruptSnapshot", err)
	}

	empty := []byte{}
	if _, err := Load(bytes.NewReader(empty)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("empty stream: %v, want ErrCorruptSnapshot", err)
	}
}
