package kdb

import (
	"fmt"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

func benchStore(b *testing.B, n int, opts ...Option) *Store {
	b.Helper()
	d := abdm.NewDirectory()
	for _, def := range []struct {
		name string
		kind abdm.Kind
	}{{"title", abdm.KindString}, {"dept", abdm.KindString}, {"credits", abdm.KindInt}} {
		if err := d.DefineAttr(def.name, def.kind); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.DefineFile("course", []string{"title", "dept", "credits"}); err != nil {
		b.Fatal(err)
	}
	s := NewStore(d, opts...)
	for i := 0; i < n; i++ {
		rec := abdm.NewRecord("course",
			abdm.Keyword{Attr: "title", Val: abdm.String(fmt.Sprintf("T%06d", i))},
			abdm.Keyword{Attr: "dept", Val: abdm.String([]string{"CS", "EE", "ME", "CE"}[i%4])},
			abdm.Keyword{Attr: "credits", Val: abdm.Int(int64(i % 7))},
		)
		if _, err := s.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func BenchmarkStoreInsert(b *testing.B) {
	s := benchStore(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := abdm.NewRecord("course",
			abdm.Keyword{Attr: "title", Val: abdm.String(fmt.Sprintf("T%08d", i))},
			abdm.Keyword{Attr: "dept", Val: abdm.String("CS")},
			abdm.Keyword{Attr: "credits", Val: abdm.Int(int64(i % 7))},
		)
		if _, err := s.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreRetrieveIndexed(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := benchStore(b, n)
			req := abdl.NewRetrieve(abdm.And(
				abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
			), "title")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStoreRetrieveScan(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := benchStore(b, n, WithoutIndexes())
			req := abdl.NewRetrieve(abdm.And(
				abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
			), "title")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStoreRetrieveRange(b *testing.B) {
	s := benchStore(b, 10000)
	req := abdl.NewRetrieve(abdm.Query{{
		{Attr: "credits", Op: abdm.OpGe, Val: abdm.Int(5)},
	}}, "title")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreUpdate(b *testing.B) {
	s := benchStore(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := abdl.NewUpdate(abdm.And(
			abdm.Predicate{Attr: "title", Op: abdm.OpEq, Val: abdm.String(fmt.Sprintf("T%06d", i%10000))},
		), abdl.Modifier{Attr: "credits", Val: abdm.Int(int64(i % 9))})
		if _, err := s.Exec(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreRetrieveCommon(b *testing.B) {
	s := benchStore(b, 10000)
	req := abdl.NewRetrieveCommon(
		abdm.And(abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")}),
		"credits",
		abdm.And(abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("EE")}),
		"title",
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec(req); err != nil {
			b.Fatal(err)
		}
	}
}
