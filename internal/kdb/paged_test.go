package kdb

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/pager"
)

func backedStore(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "part.pgf")
	s, err := CreateBacked(path, testDir(t), WithPageSize(512), WithPoolPages(8))
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func scanBackingIDs(t *testing.T, s *Store) map[abdm.RecordID]*abdm.Record {
	t.Helper()
	out := make(map[abdm.RecordID]*abdm.Record)
	if err := s.ScanBacking(func(id abdm.RecordID, rec *abdm.Record) error {
		out[id] = rec
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRecordCodecRoundTrip: every value kind plus the free-text body
// survives the heap cell codec.
func TestRecordCodecRoundTrip(t *testing.T) {
	rec := abdm.NewRecord("course",
		abdm.Keyword{Attr: "title", Val: abdm.String("Systèmes répartis")},
		abdm.Keyword{Attr: "credits", Val: abdm.Int(-42)},
		abdm.Keyword{Attr: "rating", Val: abdm.Float(3.25)},
		abdm.Keyword{Attr: "dept", Val: abdm.Null()},
	)
	rec.Text = "a body with\nnewlines and ünïcode"
	id, got, err := decodeRecord(encodeRecord(99, rec))
	if err != nil {
		t.Fatal(err)
	}
	if id != 99 {
		t.Fatalf("id = %d, want 99", id)
	}
	if got.Text != rec.Text {
		t.Fatalf("text = %q, want %q", got.Text, rec.Text)
	}
	if len(got.Keywords) != len(rec.Keywords) {
		t.Fatalf("keywords = %d, want %d", len(got.Keywords), len(rec.Keywords))
	}
	for i, kw := range rec.Keywords {
		g := got.Keywords[i]
		if g.Attr != kw.Attr || g.Val.Kind() != kw.Val.Kind() {
			t.Fatalf("keyword %d = %+v, want %+v", i, g, kw)
		}
	}
	if v, _ := got.Get("credits"); v.AsInt() != -42 {
		t.Fatalf("credits = %d", v.AsInt())
	}
	if v, _ := got.Get("rating"); v.AsFloat() != 3.25 {
		t.Fatalf("rating = %v", v.AsFloat())
	}
	if _, _, err := decodeRecord([]byte{0x05}); err == nil {
		t.Fatal("truncated cell decoded without error")
	}
}

// TestBackedWriteThrough: immediately-stamped mutations (TxnID 0) reach the
// page image as they commit — inserts, updates and deletes alike.
func TestBackedWriteThrough(t *testing.T) {
	s, _ := backedStore(t)
	loadCourses(t, s, 10)
	if got := scanBackingIDs(t, s); len(got) != 10 {
		t.Fatalf("backing holds %d records, want 10", len(got))
	}
	upd := abdl.NewUpdate(courseQuery("Course 003"), abdl.Modifier{Attr: "credits", Val: abdm.Int(99)})
	if _, err := s.Exec(upd); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(abdl.NewDelete(courseQuery("Course 004"))); err != nil {
		t.Fatal(err)
	}
	got := scanBackingIDs(t, s)
	if len(got) != 9 {
		t.Fatalf("backing holds %d records after delete, want 9", len(got))
	}
	found := false
	for _, rec := range got {
		if v, _ := rec.Get("title"); v.AsString() == "Course 003" {
			found = true
			if c, _ := rec.Get("credits"); c.AsInt() != 99 {
				t.Fatalf("updated credits = %d in backing, want 99", c.AsInt())
			}
		}
		if v, _ := rec.Get("title"); v.AsString() == "Course 004" {
			t.Fatal("deleted record still in backing")
		}
	}
	if !found {
		t.Fatal("updated record missing from backing")
	}
}

// TestBackedPendingStaysOut: a version pending under a transaction must not
// reach the image until MVCC-COMMIT stamps it; an aborted transaction's
// writes never reach it.
func TestBackedPendingStaysOut(t *testing.T) {
	s, _ := backedStore(t)
	ins := abdl.NewInsert(courseRec("Pending", 1))
	ins.TxnID = 7
	if _, err := s.Exec(ins); err != nil {
		t.Fatal(err)
	}
	if got := scanBackingIDs(t, s); len(got) != 0 {
		t.Fatalf("pending write reached the backing: %d records", len(got))
	}
	mvccOp(t, s, &abdl.Request{Kind: abdl.MvccCommit, TxnID: 7, MvccEpoch: 5})
	got := scanBackingIDs(t, s)
	if len(got) != 1 {
		t.Fatalf("stamped write missing from backing: %d records", len(got))
	}

	ins2 := abdl.NewInsert(courseRec("Doomed", 2))
	ins2.TxnID = 8
	if _, err := s.Exec(ins2); err != nil {
		t.Fatal(err)
	}
	mvccOp(t, s, &abdl.Request{Kind: abdl.MvccAbort, TxnID: 8})
	if got := scanBackingIDs(t, s); len(got) != 1 {
		t.Fatalf("aborted write reached the backing: %d records", len(got))
	}
}

// TestCheckpointFence: between CheckpointBegin and CheckpointCommit,
// write-throughs are deferred — the flushed image holds exactly the state
// fenced at Begin — and they drain into the working generation afterwards.
func TestCheckpointFence(t *testing.T) {
	s, path := backedStore(t)
	loadCourses(t, s, 5)
	epoch, err := s.CheckpointBegin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CheckpointBegin(); !errors.Is(err, ErrCheckpointActive) {
		t.Fatalf("double begin = %v, want ErrCheckpointActive", err)
	}
	// Commits while the fence is up: deferred, not in the image.
	loadCourses(t, s, 3)
	if err := s.CheckpointCommit(pager.Meta{Epoch: epoch, Entries: 5, MaxKey: 5}); err != nil {
		t.Fatal(err)
	}
	// The fence lifted: the deferred writes drained into the working
	// generation.
	if got := scanBackingIDs(t, s); len(got) != 8 {
		t.Fatalf("working generation holds %d records, want 8", len(got))
	}
	if err := s.CloseBacking(); err != nil {
		t.Fatal(err)
	}
	// The durable generation holds only the fenced state.
	s2, meta, err := OpenBacked(path, testDir(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseBacking()
	if meta.Entries != 5 || meta.MaxKey != 5 {
		t.Fatalf("meta = %+v, want Entries 5 MaxKey 5", meta)
	}
	if s2.Len() != 5 {
		t.Fatalf("restored store holds %d records, want 5", s2.Len())
	}
}

// TestCheckpointAbort drains deferred writes without committing them.
func TestCheckpointAbort(t *testing.T) {
	s, _ := backedStore(t)
	if _, err := s.CheckpointBegin(); err != nil {
		t.Fatal(err)
	}
	loadCourses(t, s, 2)
	s.CheckpointAbort()
	if got := scanBackingIDs(t, s); len(got) != 2 {
		t.Fatalf("deferred writes not drained after abort: %d records", len(got))
	}
	plain := NewStore(testDir(t))
	if _, err := plain.CheckpointBegin(); !errors.Is(err, ErrNoBacking) {
		t.Fatalf("checkpoint on plain store = %v, want ErrNoBacking", err)
	}
}

// TestOpenBackedRestoresStore: a checkpointed image reopens with live maps,
// indexes, version chains at the image epoch, and an allocator seeded past
// every restored id.
func TestOpenBackedRestoresStore(t *testing.T) {
	s, path := backedStore(t)
	loadCourses(t, s, 20)
	if err := s.CheckpointCommitAfterBegin(t, pager.Meta{Epoch: 9, Entries: 20, MaxKey: 20}); err != nil {
		t.Fatal(err)
	}
	s.CloseBacking()

	s2, meta, err := OpenBacked(path, testDir(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseBacking()
	if meta.Epoch != 9 {
		t.Fatalf("meta epoch = %d, want 9", meta.Epoch)
	}
	if s2.Len() != 20 {
		t.Fatalf("restored %d records, want 20", s2.Len())
	}
	// Indexes rebuilt: an indexed retrieve matches.
	res := retrieveAll(t, s2, abdm.And(
		abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("course")},
		abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")},
	))
	if len(res.Records) != 7 {
		t.Fatalf("restored CS courses = %d, want 7", len(res.Records))
	}
	// Snapshots at the image epoch see the restored base state even though
	// no version chain is materialised: the membership pass pages it in.
	if res := snapRetrieve(t, s2, courseQuery("Course 001"), 9); len(res.Records) != 1 {
		t.Fatalf("snapshot at image epoch sees %d records, want 1", len(res.Records))
	}
	versions, epoch := s2.VersionStats()
	if versions != 0 || epoch != 9 {
		t.Fatalf("VersionStats = (%d, %d), want (0, 9): chains are lazy now", versions, epoch)
	}
	// Allocator seeded past the image: a fresh insert cannot collide.
	id, err := s2.Insert(courseRec("Fresh", 1))
	if err != nil {
		t.Fatal(err)
	}
	if id <= 20 {
		t.Fatalf("fresh insert got id %d inside the restored key space", id)
	}
}

// CheckpointCommitAfterBegin is a test helper pairing Begin and Commit.
func (s *Store) CheckpointCommitAfterBegin(t *testing.T, meta pager.Meta) error {
	t.Helper()
	if _, err := s.CheckpointBegin(); err != nil {
		return err
	}
	return s.CheckpointCommit(meta)
}

// TestBackedImportAndDrop: migration imports write the newest committed
// version through to the image; drops remove the record from it.
func TestBackedImportAndDrop(t *testing.T) {
	s, _ := backedStore(t)
	rec := courseRec("Imported", 3)
	mig := []MigRecord{{
		File: "course", ID: 41, Live: rec,
		Chain: []MigVersion{
			{Epoch: 2, Rec: courseRec("Imported", 1)},
			{Epoch: 5, Rec: rec},
			{Epoch: 0, Txn: 77, Rec: courseRec("Imported", 9)}, // pending: must not land
		},
	}}
	if n, err := s.ImportPartition(mig); err != nil || n != 1 {
		t.Fatalf("imported %d (err %v), want 1", n, err)
	}
	got := scanBackingIDs(t, s)
	if len(got) != 1 {
		t.Fatalf("backing holds %d records, want 1", len(got))
	}
	if v, _ := got[41].Get("credits"); v.AsInt() != 3 {
		t.Fatalf("backing holds credits %d, want the newest committed 3", v.AsInt())
	}
	if n, err := s.DropRecords([]abdm.RecordID{41}); err != nil || n != 1 {
		t.Fatalf("dropped %d (err %v), want 1", n, err)
	}
	if got := scanBackingIDs(t, s); len(got) != 0 {
		t.Fatalf("dropped record still in backing: %d records", len(got))
	}
}

// TestBackedTombstoneImport: importing a record whose newest committed
// version is a tombstone must erase it from the image.
func TestBackedTombstoneImport(t *testing.T) {
	s, _ := backedStore(t)
	loadCourses(t, s, 1)
	ids := scanBackingIDs(t, s)
	if len(ids) != 1 {
		t.Fatalf("seed record missing")
	}
	var id abdm.RecordID
	for k := range ids {
		id = k
	}
	mig := []MigRecord{{
		File: "course", ID: id, Live: nil,
		Chain: []MigVersion{
			{Epoch: 2, Rec: courseRec("Course 000", 1)},
			{Epoch: 6, Rec: nil}, // tombstone
		},
	}}
	if n, err := s.ImportPartition(mig); err != nil || n != 1 {
		t.Fatalf("imported %d (err %v), want 1", n, err)
	}
	if got := scanBackingIDs(t, s); len(got) != 0 {
		t.Fatalf("tombstoned record still in backing: %d records", len(got))
	}
}

// TestBackingStats: pool counters and page counts are visible, and a pool
// smaller than the dataset evicts and writes back.
func TestBackingStats(t *testing.T) {
	s, _ := backedStore(t) // 8-frame pool
	for i := 0; i < 200; i++ {
		rec := abdm.NewRecord("course",
			abdm.Keyword{Attr: "title", Val: abdm.String(fmt.Sprintf("Bulk %04d", i))},
			abdm.Keyword{Attr: "credits", Val: abdm.Int(int64(i))},
		)
		if _, err := s.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	stats, pages, ok := s.BackingStats()
	if !ok {
		t.Fatal("BackingStats reported no backing")
	}
	if pages < 10 {
		t.Fatalf("heap has %d pages, expected well over the 8-frame pool", pages)
	}
	if stats.Evictions == 0 || stats.Writebacks == 0 {
		t.Fatalf("pool stats %+v: expected evictions and writebacks", stats)
	}
	if got := scanBackingIDs(t, s); len(got) != 200 {
		t.Fatalf("backing holds %d records, want 200 (eviction lost data?)", len(got))
	}
	if _, _, ok := NewStore(testDir(t)).BackingStats(); ok {
		t.Fatal("plain store claims a backing")
	}
}
