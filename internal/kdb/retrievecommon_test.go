package kdb

import (
	"fmt"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

// commonDir declares two files sharing the dept attribute.
func commonDir(t *testing.T) *abdm.Directory {
	t.Helper()
	d := abdm.NewDirectory()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.DefineAttr("name", abdm.KindString))
	must(d.DefineAttr("dept", abdm.KindString))
	must(d.DefineAttr("budget", abdm.KindInt))
	must(d.DefineFile("emp", []string{"name", "dept"}))
	must(d.DefineFile("proj", []string{"name", "dept", "budget"}))
	return d
}

func loadCommon(t *testing.T, s *Store) {
	t.Helper()
	ins := func(file, name, dept string, budget int64) {
		rec := abdm.NewRecord(file,
			abdm.Keyword{Attr: "name", Val: abdm.String(name)},
			abdm.Keyword{Attr: "dept", Val: abdm.String(dept)})
		if file == "proj" {
			rec.Set("budget", abdm.Int(budget))
		}
		if _, err := s.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	ins("emp", "ann", "CS", 0)
	ins("emp", "bob", "EE", 0)
	ins("emp", "cey", "ME", 0)
	ins("proj", "compiler", "CS", 100)
	ins("proj", "radio", "EE", 50)
	ins("proj", "cheap", "EE", 1)
}

func TestRetrieveCommonSemiJoin(t *testing.T) {
	s := NewStore(commonDir(t))
	loadCommon(t, s)
	// Employees whose dept has a project with budget >= 50.
	req := abdl.NewRetrieveCommon(
		abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("emp")}),
		"dept",
		abdm.And(
			abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("proj")},
			abdm.Predicate{Attr: "budget", Op: abdm.OpGe, Val: abdm.Int(50)},
		),
		"name", "dept",
	)
	res, err := s.Exec(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Fatalf("records = %d, want 2 (ann, bob)", len(res.Records))
	}
	names := map[string]bool{}
	for _, sr := range res.Records {
		v, _ := sr.Rec.Get("name")
		names[v.AsString()] = true
		if sr.Rec.Has("budget") {
			t.Error("projection leaked the second query's attributes")
		}
	}
	if !names["ann"] || !names["bob"] || names["cey"] {
		t.Errorf("names = %v", names)
	}
}

func TestRetrieveCommonEmptySecond(t *testing.T) {
	s := NewStore(commonDir(t))
	loadCommon(t, s)
	req := abdl.NewRetrieveCommon(
		abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("emp")}),
		"dept",
		abdm.And(abdm.Predicate{Attr: "budget", Op: abdm.OpGt, Val: abdm.Int(9999)}),
		abdl.AllAttrs,
	)
	res, err := s.Exec(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Errorf("empty semi-join returned %d records", len(res.Records))
	}
}

func TestRetrieveCommonValidation(t *testing.T) {
	s := NewStore(commonDir(t))
	bad := &abdl.Request{
		Kind:   abdl.RetrieveCommon,
		Query:  abdm.And(abdm.Predicate{Attr: "name", Op: abdm.OpEq, Val: abdm.String("x")}),
		Target: []abdl.TargetItem{{Attr: abdl.AllAttrs}},
	}
	if _, err := s.Exec(bad); err == nil {
		t.Error("RETRIEVE-COMMON without COMMON clause accepted")
	}
	bad2 := abdl.NewRetrieveCommon(
		abdm.And(abdm.Predicate{Attr: "name", Op: abdm.OpEq, Val: abdm.String("x")}),
		"nosuch",
		abdm.And(abdm.Predicate{Attr: "name", Op: abdm.OpEq, Val: abdm.String("y")}),
		abdl.AllAttrs,
	)
	if _, err := s.Exec(bad2); err == nil {
		t.Error("undeclared common attribute accepted")
	}
}

func TestRetrieveCommonAggregates(t *testing.T) {
	s := NewStore(commonDir(t))
	loadCommon(t, s)
	req := &abdl.Request{
		Kind:   abdl.RetrieveCommon,
		Query:  abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("emp")}),
		Common: "dept",
		Query2: abdm.And(abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String("proj")}),
		Target: []abdl.TargetItem{{Agg: abdl.AggCount, Attr: "name"}},
	}
	res, err := s.Exec(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || res.Groups[0].Aggs[0].Val.AsInt() != 2 {
		t.Errorf("count = %+v", res.Groups)
	}
}

func TestCommonValuesAndFilter(t *testing.T) {
	recs := []StoredRecord{
		{ID: 1, Rec: abdm.NewRecord("f", abdm.Keyword{Attr: "d", Val: abdm.String("a")})},
		{ID: 2, Rec: abdm.NewRecord("f", abdm.Keyword{Attr: "d", Val: abdm.Null()})},
		{ID: 3, Rec: abdm.NewRecord("f", abdm.Keyword{Attr: "d", Val: abdm.String("b")})},
	}
	vals := CommonValues(recs, "d")
	if len(vals) != 2 {
		t.Fatalf("values = %v", vals)
	}
	kept := FilterByCommon(recs, "d", vals)
	if len(kept) != 2 { // NULL never joins
		t.Errorf("kept = %d", len(kept))
	}
}

// Cross-backend semi-join lives in mbds; this exercises the parse path.
func TestRetrieveCommonParseRoundTrip(t *testing.T) {
	src := "RETRIEVE-COMMON ((FILE = 'emp')) (name) COMMON dept ((FILE = 'proj') AND (budget >= 50))"
	req, err := abdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if req.Kind != abdl.RetrieveCommon || req.Common != "dept" || len(req.Query2) != 1 {
		t.Fatalf("parsed %+v", req)
	}
	if req.String() != src {
		t.Errorf("round trip: %q vs %q", req.String(), src)
	}
	s := NewStore(commonDir(t))
	loadCommon(t, s)
	res, err := s.Exec(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Errorf("records = %d", len(res.Records))
	}
	_ = fmt.Sprint(res)
}
