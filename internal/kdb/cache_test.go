package kdb

import (
	"fmt"
	"sync"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

func fileQuery(file string, ps ...abdm.Predicate) abdm.Query {
	conj := abdm.Conjunction{{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(file)}}
	conj = append(conj, ps...)
	return abdm.Query{conj}
}

// TestConcurrentRangeRetrieves is the -race regression for the lazy sorted
// key cache in attrIndex: many goroutines issuing range retrieves under the
// store's read lock must not race rebuilding ix.sorted.
func TestConcurrentRangeRetrieves(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 200)
	q := fileQuery("course", abdm.Predicate{Attr: "credits", Op: abdm.OpGe, Val: abdm.Int(3)})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := s.Exec(abdl.NewRetrieve(q, abdl.AllAttrs)); err != nil {
					t.Error(err)
					return
				}
				// Interleave mutations so the sorted cache is repeatedly
				// invalidated while other goroutines rebuild it.
				rec := abdm.NewRecord("course",
					abdm.Keyword{Attr: "title", Val: abdm.String(fmt.Sprintf("X%d-%d", i, len(q)))},
					abdm.Keyword{Attr: "credits", Val: abdm.Int(int64(i%7) + 1)},
				)
				if _, err := s.Insert(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestValueKeyBigInt64RoundTrip covers the valueKey canonical form for int64
// values beyond 2^53: adjacent big ints must keep distinct index keys (the
// old float64-based form collapsed them), while equal int/float pairs still
// share one.
func TestValueKeyBigInt64RoundTrip(t *testing.T) {
	a := int64(1) << 53 // representable as float64
	pairs := []struct{ x, y int64 }{
		{a, a + 1},
		{a + 1, a + 2},
		{9223372036854775806, 9223372036854775807},
		{-9223372036854775808, -9223372036854775807},
	}
	for _, p := range pairs {
		if valueKey(abdm.Int(p.x)) == valueKey(abdm.Int(p.y)) {
			t.Errorf("valueKey collides for %d and %d", p.x, p.y)
		}
	}
	// Int/float equality must still canonicalise to one key.
	if valueKey(abdm.Int(42)) != valueKey(abdm.Float(42)) {
		t.Errorf("valueKey(Int(42)) != valueKey(Float(42))")
	}

	// Round-trip through the store: insert two records whose IDs differ only
	// beyond 2^53, then retrieve and delete by exact value.
	d := abdm.NewDirectory()
	if err := d.DefineAttr("serial", abdm.KindInt); err != nil {
		t.Fatal(err)
	}
	if err := d.DefineFile("part", []string{"serial"}); err != nil {
		t.Fatal(err)
	}
	s := NewStore(d)
	for _, v := range []int64{a, a + 1} {
		rec := abdm.NewRecord("part", abdm.Keyword{Attr: "serial", Val: abdm.Int(v)})
		if _, err := s.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	q := fileQuery("part", abdm.Predicate{Attr: "serial", Op: abdm.OpEq, Val: abdm.Int(a + 1)})
	res, err := s.Exec(abdl.NewRetrieve(q, abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("retrieve serial=%d: got %d records, want 1", a+1, len(res.Records))
	}
	if v, _ := res.Records[0].Rec.Get("serial"); v.AsInt() != a+1 {
		t.Fatalf("retrieved serial %d, want %d", v.AsInt(), a+1)
	}
	// Delete must target only the exact value, not its 2^53 neighbour.
	if _, err := s.Exec(abdl.NewDelete(q)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("after targeted delete: %d records, want 1", s.Len())
	}
	rest, err := s.Exec(abdl.NewRetrieve(fileQuery("part"), abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rest.Records[0].Rec.Get("serial"); v.AsInt() != a {
		t.Fatalf("surviving serial %d, want %d", v.AsInt(), a)
	}
}

// TestResultCacheHit proves a repeated retrieve is served from the cache and
// returns an equivalent result with independent record storage.
func TestResultCacheHit(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 50)
	q := fileQuery("course", abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String("CS")})
	req := abdl.NewRetrieve(q, abdl.AllAttrs)

	first, err := s.Exec(req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Exec(req)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.CacheHits)
	}
	if len(second.Records) != len(first.Records) {
		t.Fatalf("cached result has %d records, first had %d", len(second.Records), len(first.Records))
	}
	if second.Cost != first.Cost {
		t.Fatalf("cached cost %+v differs from first %+v", second.Cost, first.Cost)
	}
	// Hits must never alias the cached copy: mutating one result's record
	// must not leak into a later hit.
	second.Records[0].Rec.Set("dept", abdm.String("tampered"))
	third, err := s.Exec(req)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := third.Records[0].Rec.Get("dept"); v.AsString() == "tampered" {
		t.Fatal("cache hit aliases a previously returned record")
	}
}

// TestResultCacheInvalidationPerFile proves a mutation invalidates only the
// touched file's cached results: after an insert into "person", the cached
// "course" retrieve still hits while the "person" retrieve recomputes.
func TestResultCacheInvalidationPerFile(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 20)
	person := abdm.NewRecord("person",
		abdm.Keyword{Attr: "name", Val: abdm.String("ada")},
		abdm.Keyword{Attr: "age", Val: abdm.Int(36)},
	)
	if _, err := s.Insert(person); err != nil {
		t.Fatal(err)
	}

	courseReq := abdl.NewRetrieve(fileQuery("course"), abdl.AllAttrs)
	personReq := abdl.NewRetrieve(fileQuery("person"), abdl.AllAttrs)
	for _, req := range []*abdl.Request{courseReq, personReq} {
		if _, err := s.Exec(req); err != nil {
			t.Fatal(err)
		}
	}

	// Mutate only "person".
	second := abdm.NewRecord("person",
		abdm.Keyword{Attr: "name", Val: abdm.String("grace")},
		abdm.Keyword{Attr: "age", Val: abdm.Int(45)},
	)
	if _, err := s.Insert(second); err != nil {
		t.Fatal(err)
	}

	base := s.Stats()
	courseRes, err := s.Exec(courseReq)
	if err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.CacheHits != base.CacheHits+1 {
		t.Fatalf("course retrieve after person insert: hits %d→%d, want a hit", base.CacheHits, after.CacheHits)
	}
	if len(courseRes.Records) != 20 {
		t.Fatalf("course retrieve returned %d records, want 20", len(courseRes.Records))
	}

	personRes, err := s.Exec(personReq)
	if err != nil {
		t.Fatal(err)
	}
	final := s.Stats()
	if final.CacheMisses != after.CacheMisses+1 {
		t.Fatalf("person retrieve after person insert: misses %d→%d, want a miss", after.CacheMisses, final.CacheMisses)
	}
	if len(personRes.Records) != 2 {
		t.Fatalf("person retrieve returned %d records, want 2 (stale cache?)", len(personRes.Records))
	}

	// Deletes and updates invalidate too.
	if _, err := s.Exec(personReq); err != nil { // refill
		t.Fatal(err)
	}
	if _, err := s.Exec(abdl.NewUpdate(
		fileQuery("person", abdm.Predicate{Attr: "name", Op: abdm.OpEq, Val: abdm.String("ada")}),
		abdl.Modifier{Attr: "age", Val: abdm.Int(37)},
	)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(personReq)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res.Records {
		if name, _ := sr.Rec.Get("name"); name.AsString() == "ada" {
			if age, _ := sr.Rec.Get("age"); age.AsInt() != 37 {
				t.Fatalf("update served stale cached age %d", age.AsInt())
			}
		}
	}
}

// TestResultCacheAllFilesInvalidation covers queries without a file
// predicate: they depend on the store-wide generation, so a mutation in any
// file — including a brand-new one — invalidates them.
func TestResultCacheAllFilesInvalidation(t *testing.T) {
	s := NewStore(testDir(t))
	loadCourses(t, s, 5)
	req := abdl.NewRetrieve(abdm.Query{}, abdl.AllAttrs) // unqualified: every record
	res, err := s.Exec(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 5 {
		t.Fatalf("got %d records, want 5", len(res.Records))
	}
	person := abdm.NewRecord("person",
		abdm.Keyword{Attr: "name", Val: abdm.String("new")},
		abdm.Keyword{Attr: "age", Val: abdm.Int(1)},
	)
	if _, err := s.Insert(person); err != nil {
		t.Fatal(err)
	}
	res, err = s.Exec(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 6 {
		t.Fatalf("after insert into new file: got %d records, want 6", len(res.Records))
	}
}

// TestResultCacheDisabled checks WithResultCache(0) turns the cache off.
func TestResultCacheDisabled(t *testing.T) {
	s := NewStore(testDir(t), WithResultCache(0))
	loadCourses(t, s, 5)
	req := abdl.NewRetrieve(fileQuery("course"), abdl.AllAttrs)
	for i := 0; i < 3; i++ {
		if _, err := s.Exec(req); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("disabled cache recorded hits=%d misses=%d", st.CacheHits, st.CacheMisses)
	}
}

// TestResultCacheEviction keeps the cache bounded at its capacity.
func TestResultCacheEviction(t *testing.T) {
	s := NewStore(testDir(t), WithResultCache(2))
	loadCourses(t, s, 10)
	for _, dept := range []string{"CS", "Math", "Physics"} {
		q := fileQuery("course", abdm.Predicate{Attr: "dept", Op: abdm.OpEq, Val: abdm.String(dept)})
		if _, err := s.Exec(abdl.NewRetrieve(q, abdl.AllAttrs)); err != nil {
			t.Fatal(err)
		}
	}
	s.cache.mu.Lock()
	n := len(s.cache.m)
	s.cache.mu.Unlock()
	if n > 2 {
		t.Fatalf("cache holds %d entries, cap is 2", n)
	}
}

// TestStoreExecBatch runs a mixed batch and checks positional results and
// error wrapping.
func TestStoreExecBatch(t *testing.T) {
	s := NewStore(testDir(t))
	reqs := []*abdl.Request{
		abdl.NewInsert(abdm.NewRecord("person",
			abdm.Keyword{Attr: "name", Val: abdm.String("ada")},
			abdm.Keyword{Attr: "age", Val: abdm.Int(36)},
		)),
		abdl.NewRetrieve(fileQuery("person"), abdl.AllAttrs),
	}
	out, err := s.ExecBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("batch returned %d results, want 2", len(out))
	}
	if len(out[1].Records) != 1 {
		t.Fatalf("batched retrieve saw %d records, want 1", len(out[1].Records))
	}

	bad := []*abdl.Request{
		abdl.NewRetrieve(fileQuery("person"), abdl.AllAttrs),
		abdl.NewDelete(abdm.Query{}), // invalid: DELETE requires a query
	}
	out, err = s.ExecBatch(bad)
	if err == nil {
		t.Fatal("batch with invalid request succeeded")
	}
	if len(out) != 1 {
		t.Fatalf("failed batch returned %d completed results, want 1", len(out))
	}
}
