package kdb

import (
	"sync"

	"mlds/internal/abdm"
)

// DefaultCacheSize is the default retrieve-result cache capacity in entries.
const DefaultCacheSize = 256

// retrieveCache memoises RETRIEVE results keyed by the request's canonical
// text form. Entries remember the per-file generation counters they were
// built under; a lookup whose generations no longer match drops the entry.
// The cache never serves a stale result: every mutation bumps the touched
// file's generation (and the store-wide one) under the store's write lock
// before the mutation is visible, and lookups compare generations while
// holding at least the read lock.
type retrieveCache struct {
	mu  sync.Mutex
	cap int // ≤ 0 disables the cache
	m   map[string]*cacheEntry
}

// cacheEntry is one memoised result with its validity snapshot.
type cacheEntry struct {
	res   *Result  // private copy; cloned again on every hit
	files []string // files the qualification depended on
	snap  []uint64 // s.gens[files[i]] at fill time
	// all marks entries for queries with a conjunction lacking a file
	// predicate (or no query at all): they can match records in files that
	// did not exist at fill time, so they validate against the store-wide
	// generation instead of per-file counters.
	all    bool
	global uint64
}

// cacheLookup returns a copy of the cached result for key if it is still
// valid. Caller must hold at least the store's read lock (for the generation
// reads).
func (s *Store) cacheLookup(key string) (*Result, bool) {
	if s.cache.cap <= 0 {
		return nil, false
	}
	s.cache.mu.Lock()
	e, ok := s.cache.m[key]
	s.cache.mu.Unlock()
	if !ok {
		return nil, false
	}
	valid := true
	if e.all {
		valid = e.global == s.genAll
	} else {
		for i, f := range e.files {
			if s.gens[f] != e.snap[i] {
				valid = false
				break
			}
		}
	}
	if !valid {
		s.cache.mu.Lock()
		// Re-check identity: a concurrent fill may have replaced the entry.
		if s.cache.m[key] == e {
			delete(s.cache.m, key)
		}
		s.cache.mu.Unlock()
		return nil, false
	}
	return cloneResult(e.res), true
}

// cacheFill stores a private copy of res under key, snapshotting the
// generations of the files the qualification depended on. Caller must hold
// at least the store's read lock.
func (s *Store) cacheFill(key string, res *Result, deps qualDeps) {
	if s.cache.cap <= 0 {
		return
	}
	e := &cacheEntry{res: cloneResult(res), all: deps.allFiles}
	if deps.allFiles {
		e.global = s.genAll
	} else {
		e.files = make([]string, 0, len(deps.files))
		e.snap = make([]uint64, 0, len(deps.files))
		for f := range deps.files {
			e.files = append(e.files, f)
			e.snap = append(e.snap, s.gens[f])
		}
	}
	s.cache.mu.Lock()
	if _, exists := s.cache.m[key]; !exists && len(s.cache.m) >= s.cache.cap {
		// Evict an arbitrary entry; the map's iteration order is as good a
		// victim policy as any for this workload.
		for k := range s.cache.m {
			delete(s.cache.m, k)
			break
		}
	}
	s.cache.m[key] = e
	s.cache.mu.Unlock()
}

// cloneResult deep-copies a result so cached state and caller-held results
// never share mutable structure (Result.Merge mutates its receiver in the
// multi-backend merge path). Cost and Count copy by value; slices and
// records are duplicated.
func cloneResult(r *Result) *Result {
	cp := &Result{
		Op:       r.Op,
		Count:    r.Count,
		Cost:     r.Cost,
		Versions: r.Versions,
	}
	if r.Records != nil {
		cp.Records = cloneStored(r.Records)
	}
	if r.Groups != nil {
		cp.Groups = make([]Group, len(r.Groups))
		for i, g := range r.Groups {
			cp.Groups[i] = Group{
				By:   g.By,
				Recs: cloneStored(g.Recs),
				Aggs: append([]AggValue(nil), g.Aggs...),
			}
		}
	}
	if r.Affected != nil {
		cp.Affected = append([]abdm.RecordID(nil), r.Affected...)
	}
	if r.Paths != nil {
		cp.Paths = append([]string(nil), r.Paths...)
	}
	return cp
}

func cloneStored(in []StoredRecord) []StoredRecord {
	out := make([]StoredRecord, len(in))
	for i, sr := range in {
		out[i] = StoredRecord{ID: sr.ID, Rec: sr.Rec.Clone()}
	}
	return out
}
