package kdb

import (
	"sort"

	"mlds/internal/abdm"
)

// attrIndex is an inverted index over one attribute: value → posting list of
// record IDs. A sorted list of distinct values supports range predicates.
type attrIndex struct {
	postings map[string][]abdm.RecordID // canonical value key → sorted IDs
	values   map[string]abdm.Value      // canonical key → representative value
	sorted   []string                   // canonical keys, sorted by value; nil when stale
}

func newAttrIndex() *attrIndex {
	return &attrIndex{
		postings: make(map[string][]abdm.RecordID),
		values:   make(map[string]abdm.Value),
	}
}

// valueKey builds the canonical index key for a value. Ints and floats that
// compare equal share a key so numeric predicates hit either representation.
func valueKey(v abdm.Value) string {
	switch v.Kind() {
	case abdm.KindInt:
		return "n" + abdm.Float(float64(v.AsInt())).String()
	case abdm.KindFloat:
		return "n" + v.String()
	case abdm.KindString:
		return "s" + v.AsString()
	default:
		return "0"
	}
}

func (ix *attrIndex) add(v abdm.Value, id abdm.RecordID) {
	k := valueKey(v)
	if _, ok := ix.postings[k]; !ok {
		ix.values[k] = v
		ix.sorted = nil
	}
	ids := ix.postings[k]
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	ix.postings[k] = ids
}

func (ix *attrIndex) remove(v abdm.Value, id abdm.RecordID) {
	k := valueKey(v)
	ids := ix.postings[k]
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		ids = append(ids[:i], ids[i+1:]...)
		if len(ids) == 0 {
			delete(ix.postings, k)
			delete(ix.values, k)
			ix.sorted = nil
		} else {
			ix.postings[k] = ids
		}
	}
}

// lookupEq returns the posting list for an exact value.
func (ix *attrIndex) lookupEq(v abdm.Value) []abdm.RecordID {
	return ix.postings[valueKey(v)]
}

// ensureSorted materialises the distinct-value ordering for range scans.
func (ix *attrIndex) ensureSorted() {
	if ix.sorted != nil {
		return
	}
	keys := make([]string, 0, len(ix.values))
	for k := range ix.values {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		c, err := ix.values[keys[i]].Compare(ix.values[keys[j]])
		if err != nil {
			// Incomparable kinds: order by kind tag then key for stability.
			return keys[i] < keys[j]
		}
		return c < 0
	})
	ix.sorted = keys
}

// lookupRange returns IDs whose values satisfy op against bound. probes
// reports how many distinct index entries were examined (directory cost).
func (ix *attrIndex) lookupRange(op abdm.Op, bound abdm.Value) (ids []abdm.RecordID, probes int) {
	if op == abdm.OpEq {
		return ix.lookupEq(bound), 1
	}
	ix.ensureSorted()
	for _, k := range ix.sorted {
		v := ix.values[k]
		cmp, err := v.Compare(bound)
		if err != nil {
			if op == abdm.OpNe {
				ids = append(ids, ix.postings[k]...)
			}
			probes++
			continue
		}
		probes++
		if op.Holds(cmp) {
			ids = append(ids, ix.postings[k]...)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, probes
}

// cardinality returns the number of records indexed under the value.
func (ix *attrIndex) cardinality(v abdm.Value) int { return len(ix.postings[valueKey(v)]) }
