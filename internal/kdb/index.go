package kdb

import (
	"math"
	"sort"
	"strconv"
	"sync"

	"mlds/internal/abdm"
)

// attrIndex is an inverted index over one attribute: value → posting list of
// record IDs. A sorted list of distinct values supports range predicates.
type attrIndex struct {
	postings map[string][]abdm.RecordID // canonical value key → sorted IDs
	values   map[string]abdm.Value      // canonical key → representative value

	// sorted is the lazily-built distinct-value ordering for range scans.
	// Mutations (which run under the store's write lock) invalidate it;
	// range lookups (which run under the store's read lock, possibly many at
	// once) rebuild it under sortMu so concurrent readers never race on the
	// build.
	sortMu sync.Mutex
	sorted []string // canonical keys, sorted by value; nil when stale
}

func newAttrIndex() *attrIndex {
	return &attrIndex{
		postings: make(map[string][]abdm.RecordID),
		values:   make(map[string]abdm.Value),
	}
}

// valueKey builds the canonical index key for a value. Ints and floats that
// compare equal share a key so numeric predicates hit either representation.
// Integral values canonicalise through exact int64 formatting — never through
// float64 — so distinct int64 values beyond 2^53 keep distinct keys.
func valueKey(v abdm.Value) string {
	switch v.Kind() {
	case abdm.KindInt:
		return "n" + strconv.FormatInt(v.AsInt(), 10)
	case abdm.KindFloat:
		f := v.AsFloat()
		// An integral float in int64 range shares its key with the equal
		// int: both bounds are exactly representable as float64.
		if f == math.Trunc(f) && f >= -9223372036854775808.0 && f < 9223372036854775808.0 {
			return "n" + strconv.FormatInt(int64(f), 10)
		}
		return "n" + v.String()
	case abdm.KindString:
		return "s" + v.AsString()
	default:
		return "0"
	}
}

func (ix *attrIndex) add(v abdm.Value, id abdm.RecordID) {
	k := valueKey(v)
	if _, ok := ix.postings[k]; !ok {
		ix.values[k] = v
		ix.sorted = nil
	}
	ids := ix.postings[k]
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	ix.postings[k] = ids
}

func (ix *attrIndex) remove(v abdm.Value, id abdm.RecordID) {
	k := valueKey(v)
	ids := ix.postings[k]
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		ids = append(ids[:i], ids[i+1:]...)
		if len(ids) == 0 {
			delete(ix.postings, k)
			delete(ix.values, k)
			ix.sorted = nil
		} else {
			ix.postings[k] = ids
		}
	}
}

// lookupEq returns the posting list for an exact value.
func (ix *attrIndex) lookupEq(v abdm.Value) []abdm.RecordID {
	return ix.postings[valueKey(v)]
}

// ensureSorted materialises the distinct-value ordering for range scans and
// returns it. Callers hold at least the store's read lock (excluding
// mutations); sortMu additionally serialises concurrent readers rebuilding
// the same stale ordering.
func (ix *attrIndex) ensureSorted() []string {
	ix.sortMu.Lock()
	defer ix.sortMu.Unlock()
	if ix.sorted != nil {
		return ix.sorted
	}
	keys := make([]string, 0, len(ix.values))
	for k := range ix.values {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		c, err := ix.values[keys[i]].Compare(ix.values[keys[j]])
		if err != nil {
			// Incomparable kinds: order by kind tag then key for stability.
			return keys[i] < keys[j]
		}
		return c < 0
	})
	ix.sorted = keys
	return keys
}

// lookupRange returns IDs whose values satisfy op against bound. probes
// reports how many distinct index entries were examined (directory cost).
func (ix *attrIndex) lookupRange(op abdm.Op, bound abdm.Value) (ids []abdm.RecordID, probes int) {
	if op == abdm.OpEq {
		return ix.lookupEq(bound), 1
	}
	for _, k := range ix.ensureSorted() {
		v := ix.values[k]
		cmp, err := v.Compare(bound)
		if err != nil {
			if op == abdm.OpNe {
				ids = append(ids, ix.postings[k]...)
			}
			probes++
			continue
		}
		probes++
		if op.Holds(cmp) {
			ids = append(ids, ix.postings[k]...)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, probes
}

// cardinality returns the number of records indexed under the value.
func (ix *attrIndex) cardinality(v abdm.Value) int { return len(ix.postings[valueKey(v)]) }
