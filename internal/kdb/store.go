package kdb

import (
	"fmt"
	"sort"
	"sync"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
	"mlds/internal/pager"
)

// Store is one backend's partition of the kernel database: records grouped
// by file, with an inverted index per attribute. All operations are safe for
// concurrent use.
type Store struct {
	mu      sync.RWMutex
	dir     *abdm.Directory
	disk    DiskModel
	files   map[string]map[abdm.RecordID]*abdm.Record
	indexes map[string]*attrIndex // attribute name → index
	fileOf  map[abdm.RecordID]string
	nextID  func() abdm.RecordID
	noIndex bool // ablation switch: force full-file scans
	stats   storeStats

	// resident counts the non-nil bodies in files when the store is backed:
	// a backed store's files map holds nil for any record whose body lives
	// only in the page heap, and reads page such bodies in on demand.
	resident int

	// Retrieve-result cache. gens carries one generation counter per file,
	// bumped by every mutation that touches the file (and genAll by every
	// mutation); cached results remember the generations they were built
	// under and are dropped lazily when they no longer match. Both maps are
	// guarded by mu like the primary data; the cache has its own lock so
	// concurrent readers can share hits under mu.RLock.
	gens   map[string]uint64
	genAll uint64
	cache  retrieveCache

	// mvcc holds the per-record version chains behind snapshot reads; see
	// mvcc.go. Guarded by mu like the live maps.
	mvcc mvccState

	// backing is the paged on-disk side of the store (nil = memory only);
	// see paged.go. seedID advances the id allocator past a forced id so
	// replayed inserts never collide with fresh allocations.
	backing   *backing
	seedID    func(abdm.RecordID)
	pageSize  int
	poolPages int
}

// Option configures a Store.
type Option func(*Store)

// WithDisk sets the synthetic disk model.
func WithDisk(m DiskModel) Option { return func(s *Store) { s.disk = m } }

// WithIDAllocator supplies the database-key allocator. MBDS passes a shared
// allocator so keys are unique across backends; a standalone store defaults
// to a private counter.
func WithIDAllocator(next func() abdm.RecordID) Option {
	return func(s *Store) { s.nextID = next; s.seedID = nil }
}

// WithoutIndexes disables attribute indexes, forcing every query to scan its
// file. Exists for the index-vs-scan ablation benchmark.
func WithoutIndexes() Option { return func(s *Store) { s.noIndex = true } }

// WithResultCache sets the retrieve-result cache capacity in entries.
// Zero or negative disables the cache; the default is DefaultCacheSize.
func WithResultCache(entries int) Option {
	return func(s *Store) { s.cache.cap = entries }
}

// WithStrideIDs allocates record IDs offset, offset+stride, offset+2·stride…
// Remote backends of one kernel database each take a distinct offset with
// stride = backend count, so their ID spaces never collide without
// coordination over the bus.
func WithStrideIDs(offset, stride uint64) Option {
	return func(s *Store) {
		if stride == 0 {
			stride = 1
		}
		var n uint64
		s.nextID = func() abdm.RecordID {
			id := offset + n*stride
			n++
			if id == 0 { // zero is never a valid record ID
				id = offset + n*stride
				n++
			}
			return abdm.RecordID(id)
		}
		s.seedID = func(id abdm.RecordID) {
			if uint64(id) < offset {
				return
			}
			if k := (uint64(id)-offset)/stride + 1; k > n {
				n = k
			}
		}
	}
}

// NewStore builds an empty store over the directory.
func NewStore(dir *abdm.Directory, opts ...Option) *Store {
	s := &Store{
		dir:     dir,
		disk:    DefaultDiskModel(),
		files:   make(map[string]map[abdm.RecordID]*abdm.Record),
		indexes: make(map[string]*attrIndex),
		fileOf:  make(map[abdm.RecordID]string),
		gens:    make(map[string]uint64),
	}
	s.cache.cap = DefaultCacheSize
	s.pageSize = pager.DefaultPageSize
	s.poolPages = defaultPoolPages
	var ctr abdm.RecordID
	s.nextID = func() abdm.RecordID { ctr++; return ctr }
	s.seedID = func(id abdm.RecordID) {
		if id > ctr {
			ctr = id
		}
	}
	for _, o := range opts {
		o(s)
	}
	s.cache.m = make(map[string]*cacheEntry)
	return s
}

// Directory returns the store's attribute catalog.
func (s *Store) Directory() *abdm.Directory { return s.dir }

// Len reports the number of stored records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.fileOf)
}

// FileLen reports the number of records in one file.
func (s *Store) FileLen(file string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files[file])
}

// Exec executes one ABDL request and returns its result.
func (s *Store) Exec(req *abdl.Request) (*Result, error) {
	res, err := s.exec(req)
	s.stats.note(res, err)
	return res, err
}

// ExecBatch executes the requests in order, returning one result per
// request. It stops at the first failure, wrapping the error with the
// offending request's position; results for the requests that ran before it
// are still returned.
func (s *Store) ExecBatch(reqs []*abdl.Request) ([]*Result, error) {
	out := make([]*Result, 0, len(reqs))
	for i, req := range reqs {
		res, err := s.Exec(req)
		if err != nil {
			return out, fmt.Errorf("kdb: batch request %d: %w", i, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func (s *Store) exec(req *abdl.Request) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	switch req.Kind {
	case abdl.Insert:
		return s.execInsert(req)
	case abdl.Delete:
		return s.execDelete(req)
	case abdl.Update:
		return s.execUpdate(req)
	case abdl.Retrieve:
		return s.execRetrieve(req)
	case abdl.RetrieveCommon:
		return s.execRetrieveCommon(req)
	case abdl.MvccCommit, abdl.MvccAbort, abdl.MvccGC:
		return s.execMvcc(req)
	}
	return nil, fmt.Errorf("kdb: unsupported request kind %v", req.Kind)
}

// execRetrieveCommon executes the semi-join locally: the common attribute's
// values under the second query filter the first query's records. MBDS
// overrides this with a two-phase cross-backend execution; the local path
// serves standalone stores.
func (s *Store) execRetrieveCommon(req *abdl.Request) (*Result, error) {
	if err := s.dir.ValidateQuery(req.Query); err != nil {
		return nil, err
	}
	if err := s.dir.ValidateQuery(req.Query2); err != nil {
		return nil, err
	}
	if _, ok := s.dir.AttrKind(req.Common); !ok {
		return nil, fmt.Errorf("kdb: RETRIEVE-COMMON names undeclared attribute %q", req.Common)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	res := &Result{Op: abdl.RetrieveCommon}
	qual := s.qualify
	if req.SnapEpoch != 0 {
		qual = func(q abdm.Query, c *Cost) ([]StoredRecord, []string, qualDeps, error) {
			return s.snapQualify(q, req.SnapEpoch, c)
		}
	}
	second, paths2, _, err := qual(req.Query2, &res.Cost)
	if err != nil {
		return nil, err
	}
	values := CommonValues(second, req.Common)
	first, paths1, _, err := qual(req.Query, &res.Cost)
	if err != nil {
		return nil, err
	}
	res.Paths = append(paths1, paths2...)
	kept := FilterByCommon(first, req.Common, values)
	out := make([]StoredRecord, len(kept))
	for i, sr := range kept {
		out[i] = StoredRecord{ID: sr.ID, Rec: project(sr.Rec, req.Target)}
	}
	res.Records = out
	if req.By != "" {
		res.Groups = groupBy(out, kept, req.By)
	}
	res.RecomputeAggregates(req.Target)
	return res, nil
}

// CommonValues collects the distinct non-null values of attr across records,
// keyed canonically. Exported for the controller's cross-backend semi-join.
func CommonValues(recs []StoredRecord, attr string) map[string]bool {
	out := make(map[string]bool)
	for _, sr := range recs {
		if v, ok := sr.Rec.Get(attr); ok && !v.IsNull() {
			out[valueKey(v)] = true
		}
	}
	return out
}

// FilterByCommon keeps the records whose attr value is in the value set.
func FilterByCommon(recs []StoredRecord, attr string, values map[string]bool) []StoredRecord {
	var out []StoredRecord
	for _, sr := range recs {
		if v, ok := sr.Rec.Get(attr); ok && !v.IsNull() && values[valueKey(v)] {
			out = append(out, sr)
		}
	}
	return out
}

// Insert stores the record and returns its database key. The record is
// cloned; callers keep ownership of their copy.
func (s *Store) Insert(rec *abdm.Record) (abdm.RecordID, error) {
	if err := s.dir.ValidateRecord(rec); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.insertLocked(rec)
	s.noteVersion(nil, rec.File(), id, rec)
	return id, nil
}

func (s *Store) insertLocked(rec *abdm.Record) abdm.RecordID {
	id := s.nextID()
	s.addLocked(id, rec)
	return id
}

// insertForcedLocked stores the record under a caller-chosen database key.
// Re-inserting an existing key replaces that record, which makes replicated
// INSERTs idempotent when the controller retries them.
func (s *Store) insertForcedLocked(id abdm.RecordID, rec *abdm.Record) error {
	if _, ok := s.fileOf[id]; ok {
		if err := s.removeByIDLocked(id); err != nil {
			return err
		}
	}
	if s.seedID != nil {
		s.seedID(id)
	}
	s.addLocked(id, rec)
	return nil
}

// bumpGen advances the file's and the store-wide mutation generations,
// lazily invalidating cached retrieve results that depended on the file.
// Caller must hold the write lock.
func (s *Store) bumpGen(file string) {
	s.gens[file]++
	s.genAll++
}

func (s *Store) addLocked(id abdm.RecordID, rec *abdm.Record) {
	cp := rec.Clone()
	file := cp.File()
	s.bumpGen(file)
	if s.files[file] == nil {
		s.files[file] = make(map[abdm.RecordID]*abdm.Record)
	}
	if s.backing != nil {
		if cur, ok := s.files[file][id]; !ok || cur == nil {
			s.resident++
		}
	}
	s.files[file][id] = cp
	s.fileOf[id] = file
	if !s.noIndex {
		for _, kw := range cp.Keywords {
			ix := s.indexes[kw.Attr]
			if ix == nil {
				ix = newAttrIndex()
				s.indexes[kw.Attr] = ix
			}
			ix.add(kw.Val, id)
		}
	}
}

func (s *Store) execInsert(req *abdl.Request) (*Result, error) {
	if err := s.dir.ValidateRecord(req.Record); err != nil {
		return nil, err
	}
	s.mu.Lock()
	id := req.ForceID
	if id != 0 {
		if err := s.insertForcedLocked(id, req.Record); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	} else {
		id = s.insertLocked(req.Record)
	}
	s.noteVersion(req, req.Record.File(), id, req.Record)
	s.mu.Unlock()
	res := &Result{Op: abdl.Insert, Count: 1, Affected: []abdm.RecordID{id}}
	res.Cost = Cost{FilesTouched: 1, BlocksWrit: 1, DirProbes: len(req.Record.Keywords)}
	return res, nil
}

// GetByID returns the stored record with the given database key, paging the
// body in from the backing heap when it is not resident.
func (s *Store) GetByID(id abdm.RecordID) (*abdm.Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	file, ok := s.fileOf[id]
	if !ok {
		return nil, false
	}
	rec := s.files[file][id]
	if rec == nil {
		fetched, err := s.fetchLocked(id)
		if err != nil {
			return nil, false
		}
		return fetched, true
	}
	return rec.Clone(), true
}

// fetchLocked pages one non-resident record body in from the backing heap.
// The returned record is a fresh decode the caller owns. Caller holds at
// least the read lock.
func (s *Store) fetchLocked(id abdm.RecordID) (*abdm.Record, error) {
	b := s.backing
	if b == nil {
		return nil, fmt.Errorf("kdb: record %d has no resident body", id)
	}
	rid, ok := b.rids[id]
	if !ok {
		return nil, fmt.Errorf("kdb: record %d has no backing cell", id)
	}
	cell, err := b.heap.Get(rid)
	if err != nil {
		return nil, fmt.Errorf("kdb: paging in record %d: %w", id, err)
	}
	gotID, rec, err := decodeRecord(cell)
	if err != nil {
		return nil, fmt.Errorf("kdb: paging in record %d: %w", id, err)
	}
	if gotID != id {
		return nil, fmt.Errorf("kdb: backing cell for record %d holds record %d", id, gotID)
	}
	return rec, nil
}

// fetchEach pages the given non-resident records in grouped by heap page —
// one pool pin per distinct page — calling fn with each decoded body. The
// visit order follows the heap, not ids. Caller holds at least the read
// lock.
func (s *Store) fetchEach(ids []abdm.RecordID, fn func(id abdm.RecordID, rec *abdm.Record) error) error {
	if len(ids) == 0 {
		return nil
	}
	b := s.backing
	if b == nil {
		return fmt.Errorf("kdb: %d records have no resident body", len(ids))
	}
	type pinned struct {
		id  abdm.RecordID
		rid pager.RID
	}
	prs := make([]pinned, 0, len(ids))
	for _, id := range ids {
		rid, ok := b.rids[id]
		if !ok {
			return fmt.Errorf("kdb: record %d has no backing cell", id)
		}
		prs = append(prs, pinned{id, rid})
	}
	sort.Slice(prs, func(i, j int) bool {
		if prs[i].rid.Page != prs[j].rid.Page {
			return prs[i].rid.Page < prs[j].rid.Page
		}
		return prs[i].rid.Slot < prs[j].rid.Slot
	})
	rids := make([]pager.RID, len(prs))
	for i := range prs {
		rids[i] = prs[i].rid
	}
	return b.heap.GetMany(rids, func(i int, cell []byte) error {
		gotID, rec, err := decodeRecord(cell)
		if err != nil {
			return fmt.Errorf("kdb: paging in record %d: %w", prs[i].id, err)
		}
		if gotID != prs[i].id {
			return fmt.Errorf("kdb: backing cell for record %d holds record %d", prs[i].id, gotID)
		}
		return fn(prs[i].id, rec)
	})
}

// removeByIDLocked removes a record by key, paging its body in first when
// the live index needs the keywords for maintenance.
func (s *Store) removeByIDLocked(id abdm.RecordID) error {
	file, ok := s.fileOf[id]
	if !ok {
		return nil
	}
	rec := s.files[file][id]
	if rec == nil && !s.noIndex {
		var err error
		if rec, err = s.fetchLocked(id); err != nil {
			return err
		}
	}
	s.removeLocked(id, rec)
	return nil
}

// qualDeps describes which files a qualification depended on, for the
// retrieve-result cache. allFiles is set when some conjunction carried no
// file predicate: such a query can match records of files that do not exist
// yet, so its cache entries depend on the store-wide generation.
type qualDeps struct {
	files    map[string]bool
	allFiles bool
}

// qualify finds the records matching the query, charging costs to c and
// recording the chosen access paths and file dependencies. Non-resident
// record bodies are paged in from the backing heap, grouped by page; the
// error return surfaces paging failures. Caller must hold at least a read
// lock.
func (s *Store) qualify(q abdm.Query, c *Cost) ([]StoredRecord, []string, qualDeps, error) {
	matched := make(map[abdm.RecordID]*abdm.Record)
	deps := qualDeps{files: make(map[string]bool)}
	var paths []string
	for _, conj := range q {
		if _, hasFile := conj.File(); !hasFile {
			deps.allFiles = true
		}
		path, err := s.qualifyConj(conj, matched, deps.files, c)
		if err != nil {
			return nil, nil, deps, err
		}
		paths = append(paths, path)
	}
	if len(q) == 0 {
		// Unqualified request addresses every record.
		deps.allFiles = true
		paths = append(paths, "scan(*)")
		for file, recs := range s.files {
			deps.files[file] = true
			var misses []abdm.RecordID
			for id, r := range recs {
				if r == nil {
					misses = append(misses, id)
					continue
				}
				matched[id] = r
			}
			if err := s.fetchEach(misses, func(id abdm.RecordID, rec *abdm.Record) error {
				matched[id] = rec
				return nil
			}); err != nil {
				return nil, nil, deps, err
			}
			c.RecordsExam += len(recs)
			c.BlocksRead += s.disk.blocks(len(recs))
		}
	}
	c.FilesTouched = len(deps.files)
	out := make([]StoredRecord, 0, len(matched))
	for id, r := range matched {
		out = append(out, StoredRecord{ID: id, Rec: r})
	}
	sortStoredByID(out)
	return out, paths, deps, nil
}

// sortStoredByID orders records by database key, the canonical result order.
func sortStoredByID(recs []StoredRecord) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
}

// qualifyConj resolves one conjunction, using the most selective indexable
// predicate as the access path and verifying the rest against candidates.
// It returns a description of the chosen path.
func (s *Store) qualifyConj(conj abdm.Conjunction, matched map[abdm.RecordID]*abdm.Record, filesSeen map[string]bool, c *Cost) (string, error) {
	file, hasFile := conj.File()
	if hasFile {
		filesSeen[file] = true
		if s.files[file] == nil {
			return "empty(" + file + ")", nil
		}
	} else {
		for f := range s.files {
			filesSeen[f] = true
		}
	}

	// Pick the cheapest equality-indexed predicate as the access path.
	var best *abdm.Predicate
	bestCard := 0
	if !s.noIndex {
		for i := range conj {
			p := conj[i]
			if p.Op != abdm.OpEq || p.Val.IsNull() {
				continue
			}
			ix := s.indexes[p.Attr]
			if ix == nil {
				// Attribute never stored: an Eq predicate on it can match
				// nothing, so the conjunction is empty.
				if p.Attr != abdm.FileAttr {
					return "empty(" + p.Attr + ")", nil
				}
				continue
			}
			card := ix.cardinality(p.Val)
			if best == nil || card < bestCard {
				best, bestCard = &conj[i], card
			}
		}
	}

	// verify pages the body in when the candidate is not resident.
	verify := func(id abdm.RecordID, rec *abdm.Record) error {
		if rec == nil {
			var err error
			if rec, err = s.fetchLocked(id); err != nil {
				return err
			}
		}
		c.RecordsExam++
		if conj.Matches(rec) {
			matched[id] = rec
		}
		return nil
	}

	if best != nil {
		c.DirProbes++
		ids := s.indexes[best.Attr].lookupEq(best.Val)
		c.BlocksRead += s.disk.blocks(len(ids))
		for _, id := range ids {
			f := s.fileOf[id]
			if hasFile && f != file {
				continue
			}
			if err := verify(id, s.files[f][id]); err != nil {
				return "", err
			}
		}
		return "index-eq(" + best.Attr + ")", nil
	}

	// No equality access path: try a range predicate over an indexed
	// attribute before resorting to a scan. The index's distinct-value list
	// bounds the candidates; each distinct value costs a directory probe.
	if !s.noIndex {
		for i := range conj {
			p := conj[i]
			if p.Op == abdm.OpEq || p.Op == abdm.OpNe || p.Val.IsNull() || p.Attr == abdm.FileAttr {
				continue
			}
			ix := s.indexes[p.Attr]
			if ix == nil {
				// The attribute was never stored: a range predicate on it
				// cannot match any record.
				return "empty(" + p.Attr + ")", nil
			}
			ids, probes := ix.lookupRange(p.Op, p.Val)
			c.DirProbes += probes
			c.BlocksRead += s.disk.blocks(len(ids))
			for _, id := range ids {
				f := s.fileOf[id]
				if hasFile && f != file {
					continue
				}
				if err := verify(id, s.files[f][id]); err != nil {
					return "", err
				}
			}
			return "index-range(" + p.Attr + ")", nil
		}
	}

	// Fall back to scanning the conjunction's file (or all files),
	// batching the non-resident bodies by heap page.
	scan := func(f string) error {
		recs := s.files[f]
		c.BlocksRead += s.disk.blocks(len(recs))
		var misses []abdm.RecordID
		for id, rec := range recs {
			if rec == nil {
				misses = append(misses, id)
				continue
			}
			if err := verify(id, rec); err != nil {
				return err
			}
		}
		return s.fetchEach(misses, verify)
	}
	if hasFile {
		if err := scan(file); err != nil {
			return "", err
		}
		return "scan(" + file + ")", nil
	}
	for f := range s.files {
		if err := scan(f); err != nil {
			return "", err
		}
	}
	return "scan(*)", nil
}

func (s *Store) execDelete(req *abdl.Request) (*Result, error) {
	if err := s.dir.ValidateQuery(req.Query); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res := &Result{Op: abdl.Delete}
	if req.ForceID != 0 {
		// Targeted delete by database key: remove exactly that record
		// wherever it lives, ignoring the qualification. The transaction
		// manager's undo path uses this to erase an inserted record (and
		// every replica of it) without content-based matching.
		if file, ok := s.fileOf[req.ForceID]; ok {
			if err := s.removeByIDLocked(req.ForceID); err != nil {
				return nil, err
			}
			s.noteVersion(req, file, req.ForceID, nil)
			res.Affected = append(res.Affected, req.ForceID)
			res.Count = 1
			res.Cost.BlocksWrit += s.disk.blocks(1)
		}
		return res, nil
	}
	victims, paths, _, err := s.qualify(req.Query, &res.Cost)
	if err != nil {
		return nil, err
	}
	res.Paths = paths
	for _, sr := range victims {
		file := s.fileOf[sr.ID]
		s.removeLocked(sr.ID, sr.Rec)
		s.noteVersion(req, file, sr.ID, nil)
		res.Affected = append(res.Affected, sr.ID)
	}
	res.Count = len(victims)
	res.Cost.BlocksWrit += s.disk.blocks(len(victims))
	return res, nil
}

func (s *Store) removeLocked(id abdm.RecordID, rec *abdm.Record) {
	file := s.fileOf[id]
	s.bumpGen(file)
	if s.backing != nil && s.files[file][id] != nil {
		s.resident--
	}
	delete(s.files[file], id)
	delete(s.fileOf, id)
	if !s.noIndex && rec != nil {
		for _, kw := range rec.Keywords {
			if ix := s.indexes[kw.Attr]; ix != nil {
				ix.remove(kw.Val, id)
			}
		}
	}
}

func (s *Store) execUpdate(req *abdl.Request) (*Result, error) {
	if err := s.dir.ValidateQuery(req.Query); err != nil {
		return nil, err
	}
	for _, m := range req.Mods {
		kind, ok := s.dir.AttrKind(m.Attr)
		if !ok {
			return nil, fmt.Errorf("kdb: modifier names undeclared attribute %q", m.Attr)
		}
		if !m.Val.IsNull() && m.Val.Kind() != kind {
			return nil, fmt.Errorf("kdb: modifier for %q (%v) has %v value", m.Attr, kind, m.Val.Kind())
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res := &Result{Op: abdl.Update}
	targets, paths, _, err := s.qualify(req.Query, &res.Cost)
	if err != nil {
		return nil, err
	}
	res.Paths = paths
	for _, sr := range targets {
		file := s.fileOf[sr.ID]
		s.bumpGen(file)
		res.Affected = append(res.Affected, sr.ID)
		for _, m := range req.Mods {
			if !s.noIndex {
				if old, ok := sr.Rec.Get(m.Attr); ok {
					if ix := s.indexes[m.Attr]; ix != nil {
						ix.remove(old, sr.ID)
					}
				}
			}
			sr.Rec.Set(m.Attr, m.Val)
			if !s.noIndex {
				ix := s.indexes[m.Attr]
				if ix == nil {
					ix = newAttrIndex()
					s.indexes[m.Attr] = ix
				}
				ix.add(m.Val, sr.ID)
			}
		}
		// A paged body modified through the qualification's decoded copy must
		// become the live body again: the heap cell no longer matches it.
		if s.backing != nil {
			if s.files[file][sr.ID] == nil {
				s.resident++
			}
			s.files[file][sr.ID] = sr.Rec
		}
		s.noteVersion(req, file, sr.ID, sr.Rec)
	}
	res.Count = len(targets)
	res.Cost.BlocksWrit += s.disk.blocks(len(targets))
	return res, nil
}

func (s *Store) execRetrieve(req *abdl.Request) (*Result, error) {
	if err := s.dir.ValidateQuery(req.Query); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	key := req.String()
	if req.SnapEpoch != 0 {
		key = snapCacheKey(req)
	}
	if hit, ok := s.cacheLookup(key); ok {
		s.stats.cacheHits.Add(1)
		return hit, nil
	}
	if s.cache.cap > 0 {
		s.stats.cacheMisses.Add(1)
	}
	res := &Result{Op: req.Kind}
	var (
		recs  []StoredRecord
		paths []string
		deps  qualDeps
		err   error
	)
	if req.SnapEpoch != 0 {
		recs, paths, deps, err = s.snapQualify(req.Query, req.SnapEpoch, &res.Cost)
	} else {
		recs, paths, deps, err = s.qualify(req.Query, &res.Cost)
	}
	if err != nil {
		return nil, err
	}
	res.Paths = paths

	// Project to the target list.
	out := make([]StoredRecord, len(recs))
	for i, sr := range recs {
		out[i] = StoredRecord{ID: sr.ID, Rec: project(sr.Rec, req.Target)}
	}
	res.Records = out

	if req.By != "" {
		res.Groups = groupBy(out, recs, req.By)
	}
	res.RecomputeAggregates(req.Target)
	s.cacheFill(key, res, deps)
	return res, nil
}

// project returns a copy of rec restricted to the target attributes;
// AllAttrs (or an empty list) keeps everything.
func project(rec *abdm.Record, target []abdl.TargetItem) *abdm.Record {
	all := len(target) == 0
	for _, t := range target {
		if t.Attr == abdl.AllAttrs || t.Agg != abdl.AggNone {
			all = true
		}
	}
	if all {
		return rec.Clone()
	}
	out := &abdm.Record{Text: rec.Text}
	for _, t := range target {
		if v, ok := rec.Get(t.Attr); ok {
			out.Set(t.Attr, v)
		}
	}
	return out
}

// groupBy partitions projected records by the by-attribute's value in the
// unprojected source records.
func groupBy(projected, source []StoredRecord, by string) []Group {
	byKey := make(map[string]*Group)
	var order []string
	for i, sr := range source {
		v, _ := sr.Rec.Get(by)
		k := v.String()
		g, ok := byKey[k]
		if !ok {
			g = &Group{By: v}
			byKey[k] = g
			order = append(order, k)
		}
		g.Recs = append(g.Recs, projected[i])
	}
	sort.Strings(order)
	out := make([]Group, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

// Files lists the files that currently hold records, sorted.
func (s *Store) Files() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.files))
	for f, recs := range s.files {
		if len(recs) > 0 {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot returns every stored record ordered by ID, for persistence and
// repartitioning, paging non-resident bodies in from the backing heap.
func (s *Store) Snapshot() ([]StoredRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]StoredRecord, 0, len(s.fileOf))
	var misses []abdm.RecordID
	for id, file := range s.fileOf {
		rec := s.files[file][id]
		if rec == nil {
			misses = append(misses, id)
			continue
		}
		out = append(out, StoredRecord{ID: id, Rec: rec.Clone()})
	}
	if err := s.fetchEach(misses, func(id abdm.RecordID, rec *abdm.Record) error {
		out = append(out, StoredRecord{ID: id, Rec: rec})
		return nil
	}); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
