package kdb

// Model-based test: the store must agree with a deliberately naive reference
// implementation (linear scans over a plain slice) on randomized request
// sequences. This pins the indexed access paths, update/delete bookkeeping
// and projection logic to the obviously-correct semantics.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mlds/internal/abdl"
	"mlds/internal/abdm"
)

// refStore is the naive reference: a slice of records, linear everything.
type refStore struct {
	recs   []*abdm.Record
	nextID int
}

func (r *refStore) insert(rec *abdm.Record) { r.recs = append(r.recs, rec.Clone()) }

func (r *refStore) retrieve(q abdm.Query) []*abdm.Record {
	var out []*abdm.Record
	for _, rec := range r.recs {
		if q.Matches(rec) {
			out = append(out, rec)
		}
	}
	return out
}

func (r *refStore) update(q abdm.Query, mods []abdl.Modifier) int {
	n := 0
	for _, rec := range r.recs {
		if q.Matches(rec) {
			for _, m := range mods {
				rec.Set(m.Attr, m.Val)
			}
			n++
		}
	}
	return n
}

func (r *refStore) delete(q abdm.Query) int {
	var kept []*abdm.Record
	n := 0
	for _, rec := range r.recs {
		if q.Matches(rec) {
			n++
		} else {
			kept = append(kept, rec)
		}
	}
	r.recs = kept
	return n
}

// multiset returns a canonical sorted key list of records for comparison.
func multiset(recs []*abdm.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Key()
	}
	sort.Strings(out)
	return out
}

func storedToRecs(srs []StoredRecord) []*abdm.Record {
	out := make([]*abdm.Record, len(srs))
	for i, sr := range srs {
		out[i] = sr.Rec
	}
	return out
}

func TestStoreAgreesWithReferenceModel(t *testing.T) {
	dir := abdm.NewDirectory()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(dir.DefineAttr("a", abdm.KindInt))
	must(dir.DefineAttr("b", abdm.KindString))
	must(dir.DefineAttr("c", abdm.KindFloat))
	must(dir.DefineFile("f", []string{"a", "b", "c"}))
	must(dir.DefineFile("g", []string{"a", "b"}))

	rng := rand.New(rand.NewSource(19870601))
	store := NewStore(dir)
	ref := &refStore{}

	randValue := func(attr string) abdm.Value {
		switch attr {
		case "a":
			return abdm.Int(int64(rng.Intn(8)))
		case "b":
			return abdm.String(string(rune('p' + rng.Intn(5))))
		default:
			if rng.Intn(6) == 0 {
				return abdm.Null()
			}
			return abdm.Float(float64(rng.Intn(4)) / 2)
		}
	}
	randQuery := func() abdm.Query {
		var q abdm.Query
		terms := 1 + rng.Intn(2)
		for i := 0; i < terms; i++ {
			conj := abdm.Conjunction{}
			if rng.Intn(3) > 0 {
				file := []string{"f", "g"}[rng.Intn(2)]
				conj = append(conj, abdm.Predicate{Attr: abdm.FileAttr, Op: abdm.OpEq, Val: abdm.String(file)})
			}
			preds := 1 + rng.Intn(2)
			for j := 0; j < preds; j++ {
				attr := []string{"a", "b", "c"}[rng.Intn(3)]
				op := []abdm.Op{abdm.OpEq, abdm.OpNe, abdm.OpLt, abdm.OpGe}[rng.Intn(4)]
				conj = append(conj, abdm.Predicate{Attr: attr, Op: op, Val: randValue(attr)})
			}
			q = append(q, conj)
		}
		return q
	}

	const steps = 600
	for step := 0; step < steps; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // insert
			file := []string{"f", "g"}[rng.Intn(2)]
			rec := abdm.NewRecord(file,
				abdm.Keyword{Attr: "a", Val: randValue("a")},
				abdm.Keyword{Attr: "b", Val: randValue("b")})
			if file == "f" {
				rec.Set("c", randValue("c"))
			}
			if _, err := store.Insert(rec); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			ref.insert(rec)
		case 4, 5, 6: // retrieve and compare
			q := randQuery()
			res, err := store.Exec(abdl.NewRetrieve(q, abdl.AllAttrs))
			if err != nil {
				t.Fatalf("step %d retrieve: %v", step, err)
			}
			got := multiset(storedToRecs(res.Records))
			want := multiset(ref.retrieve(q))
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("step %d: retrieve mismatch for %v\n got %d records\nwant %d records", step, q, len(got), len(want))
			}
		case 7, 8: // update
			q := randQuery()
			attr := []string{"a", "b"}[rng.Intn(2)]
			mods := []abdl.Modifier{{Attr: attr, Val: randValue(attr)}}
			res, err := store.Exec(abdl.NewUpdate(q, mods...))
			if err != nil {
				t.Fatalf("step %d update: %v", step, err)
			}
			if n := ref.update(q, mods); n != res.Count {
				t.Fatalf("step %d: update count %d, reference %d (query %v)", step, res.Count, n, q)
			}
		case 9: // delete
			q := randQuery()
			res, err := store.Exec(abdl.NewDelete(q))
			if err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			if n := ref.delete(q); n != res.Count {
				t.Fatalf("step %d: delete count %d, reference %d (query %v)", step, res.Count, n, q)
			}
		}
		// Invariant: total contents agree after every step.
		if store.Len() != len(ref.recs) {
			t.Fatalf("step %d: store has %d records, reference %d", step, store.Len(), len(ref.recs))
		}
	}
	// Final full comparison.
	res, err := store.Exec(abdl.NewRetrieve(nil, abdl.AllAttrs))
	if err != nil {
		t.Fatal(err)
	}
	got := multiset(storedToRecs(res.Records))
	want := multiset(ref.recs)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatal("final contents diverged from the reference model")
	}
}

// TestMBDSAgreesWithSingleStore: the same request stream against a 1-backend
// store and a multi-backend system must yield identical logical contents.
func TestStoreScanAgreesWithIndexesOnRandomStream(t *testing.T) {
	dir := abdm.NewDirectory()
	if err := dir.DefineAttr("a", abdm.KindInt); err != nil {
		t.Fatal(err)
	}
	if err := dir.DefineFile("f", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	indexed := NewStore(dir)
	scanned := NewStore(dir.Clone(), WithoutIndexes())
	for step := 0; step < 300; step++ {
		v := abdm.Int(int64(rng.Intn(10)))
		switch rng.Intn(4) {
		case 0, 1:
			rec := abdm.NewRecord("f", abdm.Keyword{Attr: "a", Val: v})
			if _, err := indexed.Insert(rec); err != nil {
				t.Fatal(err)
			}
			if _, err := scanned.Insert(rec); err != nil {
				t.Fatal(err)
			}
		case 2:
			q := abdm.And(abdm.Predicate{Attr: "a", Op: abdm.OpEq, Val: v})
			r1, err := indexed.Exec(abdl.NewDelete(q))
			if err != nil {
				t.Fatal(err)
			}
			r2, err := scanned.Exec(abdl.NewDelete(q))
			if err != nil {
				t.Fatal(err)
			}
			if r1.Count != r2.Count {
				t.Fatalf("step %d: delete counts differ: %d vs %d", step, r1.Count, r2.Count)
			}
		case 3:
			q := abdm.And(abdm.Predicate{Attr: "a", Op: abdm.OpGe, Val: v})
			r1, err := indexed.Exec(abdl.NewRetrieve(q, abdl.AllAttrs))
			if err != nil {
				t.Fatal(err)
			}
			r2, err := scanned.Exec(abdl.NewRetrieve(q, abdl.AllAttrs))
			if err != nil {
				t.Fatal(err)
			}
			if len(r1.Records) != len(r2.Records) {
				t.Fatalf("step %d: retrieve sizes differ: %d vs %d", step, len(r1.Records), len(r2.Records))
			}
		}
	}
}
