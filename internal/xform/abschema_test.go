package xform

import (
	"strings"
	"testing"

	"mlds/internal/abdm"
	"mlds/internal/netddl"
)

func univAB(t *testing.T) (*Mapping, *ABSchema) {
	t.Helper()
	m := univMapping(t)
	ab, err := DeriveAB(m)
	if err != nil {
		t.Fatal(err)
	}
	return m, ab
}

func TestDeriveABFilesAndKeys(t *testing.T) {
	m, ab := univAB(t)
	for _, rec := range m.Net.Records {
		if _, ok := ab.Templates[rec.Name]; !ok {
			t.Errorf("no template for file %q", rec.Name)
		}
		if ab.KeyOf(rec.Name) != rec.Name {
			t.Errorf("key attr of %q = %q", rec.Name, ab.KeyOf(rec.Name))
		}
		if k, ok := ab.Dir.AttrKind(rec.Name); !ok || k != abdm.KindInt {
			t.Errorf("key attribute %q not an int: %v %v", rec.Name, k, ok)
		}
		tmpl, _ := ab.Dir.FileTemplate(rec.Name)
		if len(tmpl) == 0 || tmpl[0] != rec.Name {
			t.Errorf("file %q template must start with its key: %v", rec.Name, tmpl)
		}
	}
}

func TestDeriveABSetPlacement(t *testing.T) {
	_, ab := univAB(t)
	cases := []struct {
		set   string
		place SetPlace
		file  string
		attr  string
	}{
		{"system_person", PlaceNone, "", ""},
		{"person_student", PlaceSharedKey, "student", "student"},
		{"employee_faculty", PlaceSharedKey, "faculty", "faculty"},
		{"advisor", PlaceMemberAttr, "student", "advisor"},
		{"dept", PlaceMemberAttr, "faculty", "dept"},
		{"supervisor", PlaceMemberAttr, "support_staff", "supervisor"},
		{"enrollments", PlaceOwnerAttr, "student", "enrollments"},
		{"teaching", PlaceLinkAttr, "LINK_1", "teaching"},
		{"taught_by", PlaceLinkAttr, "LINK_1", "taught_by"},
	}
	for _, c := range cases {
		got, ok := ab.Sets[c.set]
		if !ok {
			t.Errorf("set %q missing from AB schema", c.set)
			continue
		}
		if got.Place != c.place {
			t.Errorf("set %q place = %v, want %v", c.set, got.Place, c.place)
		}
		if c.place != PlaceNone && (got.File != c.file || got.Attr != c.attr) {
			t.Errorf("set %q = %+v, want file=%q attr=%q", c.set, got, c.file, c.attr)
		}
	}
}

func TestDeriveABTemplates(t *testing.T) {
	_, ab := univAB(t)
	// The student file (Figure 3.3 style): key, scalars, then set attrs for
	// advisor (member side) and enrollments (owner side).
	tmpl, ok := ab.Dir.FileTemplate("student")
	if !ok {
		t.Fatal("student file undeclared")
	}
	want := map[string]bool{"student": true, "major": true, "gpa": true, "advisor": true, "enrollments": true}
	if len(tmpl) != len(want) {
		t.Fatalf("student template = %v", tmpl)
	}
	for _, a := range tmpl {
		if !want[a] {
			t.Errorf("unexpected attr %q in student template", a)
		}
	}
	// The LINK_1 file: key + both set attrs.
	link, _ := ab.Dir.FileTemplate("LINK_1")
	if len(link) != 3 {
		t.Errorf("LINK_1 template = %v", link)
	}
}

func TestDeriveABAttrKinds(t *testing.T) {
	_, ab := univAB(t)
	cases := map[string]abdm.Kind{
		"title":       abdm.KindString,
		"credits":     abdm.KindInt,
		"gpa":         abdm.KindFloat,
		"rank":        abdm.KindString, // enumeration → characters
		"advisor":     abdm.KindInt,    // set attr holds a key
		"enrollments": abdm.KindInt,
		"teaching":    abdm.KindInt,
	}
	for attr, kind := range cases {
		if k, ok := ab.Dir.AttrKind(attr); !ok || k != kind {
			t.Errorf("attr %q kind = %v,%v want %v", attr, k, ok, kind)
		}
	}
}

func TestDeriveABDescribe(t *testing.T) {
	_, ab := univAB(t)
	d := ab.Describe()
	for _, want := range []string{
		"(<FILE, course>, <course, *>, <title, *>",
		"(<FILE, LINK_1>, <LINK_1, *>, <taught_by, *>, <teaching, *>)",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestDeriveABNative(t *testing.T) {
	net, err := netddl.Parse(`
SCHEMA NAME IS shop
RECORD NAME IS dept
    02 dname TYPE IS CHARACTER 20
RECORD NAME IS emp
    02 ename TYPE IS CHARACTER 20
    02 pay TYPE IS FIXED
SET NAME IS system_dept;
    OWNER IS SYSTEM;
    MEMBER IS dept;
    INSERTION IS AUTOMATIC;
    RETENTION IS FIXED;
SET NAME IS works_in;
    OWNER IS dept;
    MEMBER IS emp;
    INSERTION IS MANUAL;
    RETENTION IS OPTIONAL;
`)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := DeriveABNative(net)
	if err != nil {
		t.Fatal(err)
	}
	if got := ab.Sets["works_in"]; got.Place != PlaceMemberAttr || got.File != "emp" || got.Attr != "works_in" {
		t.Errorf("works_in = %+v", got)
	}
	if got := ab.Sets["system_dept"]; got.Place != PlaceNone {
		t.Errorf("system set placed: %+v", got)
	}
	tmpl, _ := ab.Dir.FileTemplate("emp")
	if len(tmpl) != 4 { // emp key, ename, pay, works_in
		t.Errorf("emp template = %v", tmpl)
	}
	if err := ab.Dir.ValidateRecord(abdm.NewRecord("emp",
		abdm.Keyword{Attr: "emp", Val: abdm.Int(1)},
		abdm.Keyword{Attr: "ename", Val: abdm.String("x")},
		abdm.Keyword{Attr: "pay", Val: abdm.Int(2)},
		abdm.Keyword{Attr: "works_in", Val: abdm.Int(7)},
	)); err != nil {
		t.Errorf("native AB record rejected: %v", err)
	}
}

func TestDeriveABUniversityValidatesRecords(t *testing.T) {
	_, ab := univAB(t)
	rec := abdm.NewRecord("student",
		abdm.Keyword{Attr: "student", Val: abdm.Int(17)},
		abdm.Keyword{Attr: "major", Val: abdm.String("Computer Science")},
		abdm.Keyword{Attr: "gpa", Val: abdm.Float(3.6)},
		abdm.Keyword{Attr: "advisor", Val: abdm.Int(3)},
		abdm.Keyword{Attr: "enrollments", Val: abdm.Null()},
	)
	if err := ab.Dir.ValidateRecord(rec); err != nil {
		t.Errorf("valid student record rejected: %v", err)
	}
}
