package xform

import (
	"fmt"
	"sort"
	"strings"

	"mlds/internal/abdm"
	"mlds/internal/netmodel"
)

// SetPlace says where a set's membership information lives in the kernel
// (attribute-based) representation of a network schema.
type SetPlace int

// Set placements.
const (
	// PlaceNone: SYSTEM-owned sets need no kernel attribute.
	PlaceNone SetPlace = iota
	// PlaceSharedKey: ISA sets — the member record's own key attribute holds
	// the same unique key as its supertype record, so set membership is key
	// identity.
	PlaceSharedKey
	// PlaceMemberAttr: an attribute named after the set in the member file
	// holds the owner's key (single-valued functions; every set of a
	// natively-defined network schema).
	PlaceMemberAttr
	// PlaceOwnerAttr: an attribute named after the set in the owner file
	// holds a member's key (one-to-many multi-valued functions; one record
	// copy per member).
	PlaceOwnerAttr
	// PlaceLinkAttr: an attribute named after the set in the LINK file holds
	// the owner's key (many-to-many function pairs).
	PlaceLinkAttr
)

// String names the placement.
func (p SetPlace) String() string {
	switch p {
	case PlaceNone:
		return "none"
	case PlaceSharedKey:
		return "shared-key"
	case PlaceMemberAttr:
		return "member-attr"
	case PlaceOwnerAttr:
		return "owner-attr"
	case PlaceLinkAttr:
		return "link-attr"
	default:
		return fmt.Sprintf("place(%d)", int(p))
	}
}

// ABSet is the kernel representation of one network set type.
type ABSet struct {
	Place SetPlace
	File  string // file carrying the set attribute
	Attr  string // the attribute ("" for PlaceNone; key attr for shared key)
}

// ABSchema is the kernel (attribute-based) schema of a network database: the
// ABDM directory plus the placement of record keys and set attributes. It is
// the AB(network) / AB(functional) database schema of Figure 3.3.
type ABSchema struct {
	Dir *abdm.Directory
	// KeyAttr maps each record type (file) to its unique-key attribute; by
	// the Goisman algorithm the attribute is named after the type itself.
	KeyAttr map[string]string
	// Sets maps each set name to its kernel placement.
	Sets map[string]ABSet
	// Templates lists each file's attributes in kernel order: FILE, key,
	// then data and set attributes.
	Templates map[string][]string
}

// KeyOf returns the key attribute of a file.
func (a *ABSchema) KeyOf(file string) string { return a.KeyAttr[file] }

// DeriveAB builds the kernel schema for a transformed functional database.
// Every record type becomes an ABDM file whose first attribute-value pair is
// FILE and whose second is the record type's unique key; scalar attributes
// follow; set attributes are placed according to the set's provenance.
func DeriveAB(m *Mapping) (*ABSchema, error) {
	ab := newABSchema()
	for _, rec := range m.Net.Records {
		if err := ab.addRecordType(rec); err != nil {
			return nil, err
		}
	}
	for _, st := range m.Net.Sets {
		si := m.Sets[st.Name]
		var aset ABSet
		switch si.Origin {
		case OriginSystem:
			aset = ABSet{Place: PlaceNone}
		case OriginISA:
			aset = ABSet{Place: PlaceSharedKey, File: st.Member, Attr: ab.KeyAttr[st.Member]}
		case OriginFunction:
			switch {
			case si.ManyToMany:
				aset = ABSet{Place: PlaceLinkAttr, File: si.LinkRecord, Attr: st.Name}
			case si.SingleValued:
				aset = ABSet{Place: PlaceMemberAttr, File: st.Member, Attr: st.Name}
			default:
				aset = ABSet{Place: PlaceOwnerAttr, File: st.Owner, Attr: st.Name}
			}
		}
		if err := ab.addSet(st.Name, aset); err != nil {
			return nil, err
		}
	}
	ab.finishTemplates()
	return ab, nil
}

// DeriveABNative builds the kernel schema for a natively-defined network
// database (the original MLDS network interface mapping): every set's
// membership attribute lives in the member file and holds the owner's
// database key.
func DeriveABNative(net *netmodel.Schema) (*ABSchema, error) {
	ab := newABSchema()
	for _, rec := range net.Records {
		if err := ab.addRecordType(rec); err != nil {
			return nil, err
		}
	}
	for _, st := range net.Sets {
		var aset ABSet
		if st.SystemOwned() {
			aset = ABSet{Place: PlaceNone}
		} else {
			aset = ABSet{Place: PlaceMemberAttr, File: st.Member, Attr: st.Name}
		}
		if err := ab.addSet(st.Name, aset); err != nil {
			return nil, err
		}
	}
	ab.finishTemplates()
	return ab, nil
}

func newABSchema() *ABSchema {
	return &ABSchema{
		Dir:       abdm.NewDirectory(),
		KeyAttr:   make(map[string]string),
		Sets:      make(map[string]ABSet),
		Templates: make(map[string][]string),
	}
}

func (ab *ABSchema) addRecordType(rec *netmodel.RecordType) error {
	key := rec.Name
	if err := ab.Dir.DefineAttr(key, abdm.KindInt); err != nil {
		return fmt.Errorf("xform: key attribute for %q: %w", rec.Name, err)
	}
	ab.KeyAttr[rec.Name] = key
	tmpl := []string{key}
	for _, a := range rec.Attributes {
		var kind abdm.Kind
		switch a.Type {
		case netmodel.AttrInt:
			kind = abdm.KindInt
		case netmodel.AttrFloat:
			kind = abdm.KindFloat
		default:
			kind = abdm.KindString
		}
		if err := ab.Dir.DefineAttr(a.Name, kind); err != nil {
			return fmt.Errorf("xform: attribute %q of %q: %w", a.Name, rec.Name, err)
		}
		tmpl = append(tmpl, a.Name)
	}
	ab.Templates[rec.Name] = tmpl
	return nil
}

func (ab *ABSchema) addSet(name string, aset ABSet) error {
	ab.Sets[name] = aset
	switch aset.Place {
	case PlaceMemberAttr, PlaceOwnerAttr, PlaceLinkAttr:
		if err := ab.Dir.DefineAttr(aset.Attr, abdm.KindInt); err != nil {
			return fmt.Errorf("xform: set attribute %q: %w", aset.Attr, err)
		}
		ab.Templates[aset.File] = append(ab.Templates[aset.File], aset.Attr)
	}
	return nil
}

// finishTemplates registers each file template with the directory.
func (ab *ABSchema) finishTemplates() {
	for file, tmpl := range ab.Templates {
		// Duplicate attrs can arise if a set shares its name with a scalar
		// attribute; keep first occurrence.
		seen := make(map[string]bool)
		var clean []string
		for _, a := range tmpl {
			if !seen[a] {
				seen[a] = true
				clean = append(clean, a)
			}
		}
		ab.Templates[file] = clean
		// The directory template cannot fail: every attribute was defined.
		_ = ab.Dir.DefineFile(file, clean)
	}
}

// Describe renders the AB schema in the style of Figure 3.3: one template
// line per file.
func (ab *ABSchema) Describe() string {
	files := make([]string, 0, len(ab.Templates))
	for f := range ab.Templates {
		files = append(files, f)
	}
	sort.Strings(files)
	var b strings.Builder
	for _, f := range files {
		fmt.Fprintf(&b, "(<FILE, %s>", f)
		for _, a := range ab.Templates[f] {
			fmt.Fprintf(&b, ", <%s, *>", a)
		}
		b.WriteString(")\n")
	}
	return b.String()
}
