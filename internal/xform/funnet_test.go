package xform

import (
	"strings"
	"testing"

	"mlds/internal/funcmodel"
	"mlds/internal/netmodel"
	"mlds/internal/univ"
)

func univMapping(t *testing.T) *Mapping {
	t.Helper()
	m, err := FunToNet(univ.Schema())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFunToNetRecordTypes(t *testing.T) {
	m := univMapping(t)
	want := []string{"person", "course", "department", "student", "employee", "faculty", "support_staff", "LINK_1"}
	if len(m.Net.Records) != len(want) {
		t.Fatalf("record types = %d, want %d: %v", len(m.Net.Records), len(want), m.Net.Records)
	}
	for _, name := range want {
		if _, ok := m.Net.Record(name); !ok {
			t.Errorf("missing record type %q", name)
		}
	}
	if !m.IsLinkRecord("LINK_1") || m.IsLinkRecord("person") {
		t.Error("link record classification wrong")
	}
}

func TestFunToNetSystemSets(t *testing.T) {
	m := univMapping(t)
	// Each entity type (not subtype) gets a SYSTEM-owned set.
	for _, ent := range []string{"person", "course", "department"} {
		st, ok := m.Net.Set(SystemSetName(ent))
		if !ok {
			t.Errorf("missing system set for %q", ent)
			continue
		}
		if !st.SystemOwned() || st.Member != ent {
			t.Errorf("system set for %q malformed: %+v", ent, st)
		}
		if st.Insertion != netmodel.InsertAutomatic || st.Retention != netmodel.RetentionFixed {
			t.Errorf("system set for %q must be automatic/fixed: %+v", ent, st)
		}
		if si, _ := m.SetFor(st.Name); si.Origin != OriginSystem {
			t.Errorf("system set origin = %v", si.Origin)
		}
	}
	// Subtypes must NOT get system sets.
	if _, ok := m.Net.Set(SystemSetName("student")); ok {
		t.Error("subtype got a system set")
	}
}

func TestFunToNetISASets(t *testing.T) {
	m := univMapping(t)
	cases := []struct{ sup, sub string }{
		{"person", "student"},
		{"person", "employee"},
		{"employee", "faculty"},
		{"employee", "support_staff"},
	}
	for _, c := range cases {
		name := ISASetName(c.sup, c.sub)
		st, ok := m.Net.Set(name)
		if !ok {
			t.Errorf("missing ISA set %q", name)
			continue
		}
		if st.Owner != c.sup || st.Member != c.sub {
			t.Errorf("ISA set %q: owner=%q member=%q", name, st.Owner, st.Member)
		}
		// A member record transformed from a subtype always belongs to the
		// same owner: automatic insertion, fixed retention.
		if st.Insertion != netmodel.InsertAutomatic || st.Retention != netmodel.RetentionFixed {
			t.Errorf("ISA set %q modes: %+v", name, st)
		}
		if si, _ := m.SetFor(name); si.Origin != OriginISA {
			t.Errorf("ISA set %q origin = %v", name, si.Origin)
		}
	}
}

func TestFunToNetSingleValuedFunctionSets(t *testing.T) {
	m := univMapping(t)
	// advisor: student→faculty. Owner is the range (faculty), member is the
	// domain (student) — Figure 5.1's "SET NAME IS advisor".
	cases := []struct{ set, owner, member, home string }{
		{"advisor", "faculty", "student", "student"},
		{"dept", "department", "faculty", "faculty"},
		{"supervisor", "employee", "support_staff", "support_staff"},
	}
	for _, c := range cases {
		st, ok := m.Net.Set(c.set)
		if !ok {
			t.Errorf("missing function set %q", c.set)
			continue
		}
		if st.Owner != c.owner || st.Member != c.member {
			t.Errorf("set %q: owner=%q member=%q, want %q/%q", c.set, st.Owner, st.Member, c.owner, c.member)
		}
		if st.Insertion != netmodel.InsertManual || st.Retention != netmodel.RetentionOptional {
			t.Errorf("function set %q must be manual/optional: %+v", c.set, st)
		}
		si, _ := m.SetFor(c.set)
		if si.Origin != OriginFunction || !si.SingleValued || si.FuncHome != c.home {
			t.Errorf("set %q provenance: %+v", c.set, si)
		}
	}
}

func TestFunToNetManyToMany(t *testing.T) {
	m := univMapping(t)
	// teaching: faculty→→course and taught_by: course→→faculty form a
	// many-to-many pair transformed into LINK_1 with two sets.
	teach, ok1 := m.Net.Set("teaching")
	taught, ok2 := m.Net.Set("taught_by")
	if !ok1 || !ok2 {
		t.Fatal("missing many-to-many sets")
	}
	if teach.Owner != "faculty" || teach.Member != "LINK_1" {
		t.Errorf("teaching: %+v", teach)
	}
	if taught.Owner != "course" || taught.Member != "LINK_1" {
		t.Errorf("taught_by: %+v", taught)
	}
	si, _ := m.SetFor("teaching")
	if !si.ManyToMany || si.LinkRecord != "LINK_1" || si.PairSet != "taught_by" {
		t.Errorf("teaching provenance: %+v", si)
	}
	si2, _ := m.SetFor("taught_by")
	if !si2.ManyToMany || si2.LinkRecord != "LINK_1" || si2.PairSet != "teaching" {
		t.Errorf("taught_by provenance: %+v", si2)
	}
	// Exactly one link record for the pair.
	if len(m.LinkRecords) != 1 {
		t.Errorf("link records = %v", m.LinkRecords)
	}
}

func TestFunToNetOneToManyMultiValued(t *testing.T) {
	m := univMapping(t)
	// enrollments: student→→course has no inverse, so it is one-to-many:
	// owner is the domain (student), member is the range (course).
	st, ok := m.Net.Set("enrollments")
	if !ok {
		t.Fatal("missing enrollments set")
	}
	if st.Owner != "student" || st.Member != "course" {
		t.Errorf("enrollments: %+v", st)
	}
	si, _ := m.SetFor("enrollments")
	if si.ManyToMany || si.SingleValued || si.FuncHome != "student" {
		t.Errorf("enrollments provenance: %+v", si)
	}
}

func TestFunToNetScalarAttributes(t *testing.T) {
	m := univMapping(t)
	course, _ := m.Net.Record("course")
	title, ok := course.Attribute("title")
	if !ok || title.Type != netmodel.AttrString || title.Length != 30 {
		t.Errorf("title = %+v", title)
	}
	credits, _ := course.Attribute("credits")
	if credits == nil || credits.Type != netmodel.AttrInt {
		t.Errorf("credits = %+v", credits)
	}
	student, _ := m.Net.Record("student")
	gpa, _ := student.Attribute("gpa")
	if gpa == nil || gpa.Type != netmodel.AttrFloat {
		t.Errorf("gpa = %+v", gpa)
	}
	// advisor is entity-valued: it must NOT be an attribute.
	if _, ok := student.Attribute("advisor"); ok {
		t.Error("entity-valued function leaked into attributes")
	}
	// Named non-entity type: pname uses name_str (STRING 30).
	person, _ := m.Net.Record("person")
	pname, _ := person.Attribute("pname")
	if pname == nil || pname.Type != netmodel.AttrString || pname.Length != 30 {
		t.Errorf("pname = %+v", pname)
	}
	// Enumeration maps to characters sized by the longest literal.
	fac, _ := m.Net.Record("faculty")
	rank, _ := fac.Attribute("rank")
	if rank == nil || rank.Type != netmodel.AttrString || rank.Length != len("instructor") {
		t.Errorf("rank = %+v", rank)
	}
}

func TestFunToNetScalarMultiValued(t *testing.T) {
	m := univMapping(t)
	// skills: SET OF STRING on support_staff → attribute with the duplicate
	// flag cleared, recorded in MultiAttr.
	ss, _ := m.Net.Record("support_staff")
	skills, ok := ss.Attribute("skills")
	if !ok {
		t.Fatal("skills attribute missing")
	}
	if skills.DupFlag {
		t.Error("scalar multi-valued attribute must clear the duplicate flag")
	}
	if !m.MultiAttr["support_staff"]["skills"] {
		t.Error("MultiAttr missing skills")
	}
}

func TestFunToNetUniqueness(t *testing.T) {
	m := univMapping(t)
	course, _ := m.Net.Record("course")
	nd := course.NoDupAttrs()
	// Figure 5.3: DUPLICATES ARE NOT ALLOWED FOR title, semester.
	if len(nd) != 2 || nd[0] != "title" || nd[1] != "semester" {
		t.Errorf("course no-dup attrs = %v", nd)
	}
	person, _ := m.Net.Record("person")
	if nd := person.NoDupAttrs(); len(nd) != 1 || nd[0] != "ssn" {
		t.Errorf("person no-dup attrs = %v", nd)
	}
}

func TestFunToNetValidSchema(t *testing.T) {
	m := univMapping(t)
	if err := m.Net.Validate(); err != nil {
		t.Fatal(err)
	}
	ddl := m.Net.DDL()
	// The DDL must show the Figure 5.1 clauses.
	for _, want := range []string{
		"SET NAME IS advisor;",
		"OWNER IS faculty;",
		"MEMBER IS student;",
		"SET NAME IS dept;",
		"OWNER IS department;",
		"SET NAME IS supervisor;",
		"SET NAME IS teaching;",
		"MEMBER IS LINK_1;",
		"DUPLICATES ARE NOT ALLOWED FOR title, semester",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("transformed DDL missing %q", want)
		}
	}
}

func TestFunToNetRejectsInvalid(t *testing.T) {
	bad := &funcmodel.Schema{Name: "x", Subtypes: []*funcmodel.Subtype{
		{Name: "s", Supertypes: []string{"ghost"}},
	}}
	if _, err := FunToNet(bad); err == nil {
		t.Error("invalid functional schema accepted")
	}
}

func TestFunToNetDescribe(t *testing.T) {
	m := univMapping(t)
	d := m.Describe()
	for _, want := range []string{"many-to-many via LINK_1", "single-valued", "isa", "system"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q", want)
		}
	}
}
