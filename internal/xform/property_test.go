package xform

// Property tests over randomized functional schemas: the Chapter V
// transformation must be total on the six constructs and preserve the
// structural invariants DESIGN.md pins down.

import (
	"fmt"
	"math/rand"
	"testing"

	"mlds/internal/funcmodel"
	"mlds/internal/netmodel"
)

// randomSchema builds a valid random functional schema: a few entity types,
// a subtype tree over them, scalar/single-/multi-valued functions, and
// occasionally uniqueness constraints and many-to-many pairs.
func randomSchema(rng *rand.Rand) *funcmodel.Schema {
	s := &funcmodel.Schema{Name: "rand"}
	nEnt := 1 + rng.Intn(4)
	nSub := rng.Intn(4)
	var typeNames []string
	fnCounter := 0
	newScalar := func(owner string) *funcmodel.Function {
		fnCounter++
		kinds := []funcmodel.ScalarType{funcmodel.TypeInt, funcmodel.TypeFloat, funcmodel.TypeString}
		res := funcmodel.FuncResult{Scalar: kinds[rng.Intn(len(kinds))]}
		if res.Scalar == funcmodel.TypeString {
			res.Length = 5 + rng.Intn(20)
		}
		return &funcmodel.Function{
			Name:      fmt.Sprintf("fn%03d", fnCounter),
			Owner:     owner,
			Result:    res,
			SetValued: rng.Intn(6) == 0, // occasionally scalar multi-valued
		}
	}
	for i := 0; i < nEnt; i++ {
		name := fmt.Sprintf("ent%d", i)
		e := &funcmodel.Entity{Name: name}
		for j := 0; j < 1+rng.Intn(3); j++ {
			e.Functions = append(e.Functions, newScalar(name))
		}
		s.Entities = append(s.Entities, e)
		typeNames = append(typeNames, name)
	}
	for i := 0; i < nSub; i++ {
		name := fmt.Sprintf("sub%d", i)
		sup := typeNames[rng.Intn(len(typeNames))]
		st := &funcmodel.Subtype{Name: name, Supertypes: []string{sup}}
		for j := 0; j < rng.Intn(3); j++ {
			st.Functions = append(st.Functions, newScalar(name))
		}
		s.Subtypes = append(s.Subtypes, st)
		typeNames = append(typeNames, name)
	}
	// Entity-valued functions between random types.
	attach := func(owner string, fn *funcmodel.Function) {
		if e, ok := s.Entity(owner); ok {
			e.Functions = append(e.Functions, fn)
			return
		}
		st, _ := s.Subtype(owner)
		st.Functions = append(st.Functions, fn)
	}
	nRefs := rng.Intn(4)
	for i := 0; i < nRefs; i++ {
		fnCounter++
		owner := typeNames[rng.Intn(len(typeNames))]
		target := typeNames[rng.Intn(len(typeNames))]
		attach(owner, &funcmodel.Function{
			Name:      fmt.Sprintf("fn%03d", fnCounter),
			Owner:     owner,
			Result:    funcmodel.FuncResult{Entity: target},
			SetValued: rng.Intn(2) == 0,
		})
	}
	// Occasionally a guaranteed many-to-many pair between two entities.
	if nEnt >= 2 && rng.Intn(2) == 0 {
		fnCounter++
		a, b := s.Entities[0].Name, s.Entities[1].Name
		s.Entities[0].Functions = append(s.Entities[0].Functions, &funcmodel.Function{
			Name: fmt.Sprintf("fn%03d", fnCounter), Owner: a,
			Result: funcmodel.FuncResult{Entity: b}, SetValued: true,
		})
		fnCounter++
		s.Entities[1].Functions = append(s.Entities[1].Functions, &funcmodel.Function{
			Name: fmt.Sprintf("fn%03d", fnCounter), Owner: b,
			Result: funcmodel.FuncResult{Entity: a}, SetValued: true,
		})
	}
	// Occasionally a uniqueness constraint on a scalar function.
	for _, e := range s.Entities {
		if rng.Intn(3) == 0 {
			for _, f := range e.Functions {
				if !f.Result.IsEntity() && !f.SetValued {
					s.Uniques = append(s.Uniques, funcmodel.Unique{Functions: []string{f.Name}, Within: e.Name})
					break
				}
			}
		}
	}
	return s
}

func TestFunToNetInvariantsOnRandomSchemas(t *testing.T) {
	rng := rand.New(rand.NewSource(1987))
	for trial := 0; trial < 200; trial++ {
		fun := randomSchema(rng)
		if err := fun.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid schema: %v", trial, err)
		}
		m, err := FunToNet(fun)
		if err != nil {
			t.Fatalf("trial %d: transform failed: %v", trial, err)
		}
		if err := m.Net.Validate(); err != nil {
			t.Fatalf("trial %d: result invalid: %v", trial, err)
		}

		// Invariant: every entity yields exactly one record type and one
		// SYSTEM-owned set.
		for _, e := range fun.Entities {
			if _, ok := m.Net.Record(e.Name); !ok {
				t.Fatalf("trial %d: entity %q lost its record type", trial, e.Name)
			}
			st, ok := m.Net.Set(SystemSetName(e.Name))
			if !ok || !st.SystemOwned() || st.Member != e.Name {
				t.Fatalf("trial %d: entity %q system set wrong: %+v", trial, e.Name, st)
			}
		}
		// Invariant: every subtype yields one record type and one ISA set
		// per supertype, automatic/fixed.
		for _, sub := range fun.Subtypes {
			if _, ok := m.Net.Record(sub.Name); !ok {
				t.Fatalf("trial %d: subtype %q lost its record type", trial, sub.Name)
			}
			for _, sup := range sub.Supertypes {
				st, ok := m.Net.Set(ISASetName(sup, sub.Name))
				if !ok || st.Owner != sup || st.Member != sub.Name {
					t.Fatalf("trial %d: ISA set for %q/%q wrong", trial, sup, sub.Name)
				}
				if st.Insertion != netmodel.InsertAutomatic || st.Retention != netmodel.RetentionFixed {
					t.Fatalf("trial %d: ISA set modes wrong: %+v", trial, st)
				}
			}
		}
		// Invariant: every entity-valued function yields exactly one set
		// named after it; m2m halves point at a shared link record.
		links := map[string]int{}
		for _, tn := range fun.TypeNames() {
			for _, f := range fun.FunctionsOf(tn) {
				if !f.Result.IsEntity() {
					continue
				}
				si, ok := m.SetFor(f.Name)
				if !ok {
					t.Fatalf("trial %d: function %q has no set", trial, f.Name)
				}
				if si.Origin != OriginFunction || si.FuncHome != tn {
					t.Fatalf("trial %d: function %q provenance wrong: %+v", trial, f.Name, si)
				}
				if si.ManyToMany {
					links[si.LinkRecord]++
				}
			}
		}
		for link, n := range links {
			if n != 2 {
				t.Fatalf("trial %d: link record %q referenced by %d sets, want 2", trial, link, n)
			}
			if !m.IsLinkRecord(link) {
				t.Fatalf("trial %d: %q not tracked as a link record", trial, link)
			}
		}
		// Invariant: uniqueness constraints clear the duplicate flag.
		for _, u := range fun.Uniques {
			rec, _ := m.Net.Record(u.Within)
			for _, fname := range u.Functions {
				a, ok := rec.Attribute(fname)
				if !ok || a.DupFlag {
					t.Fatalf("trial %d: UNIQUE %q within %q not applied", trial, fname, u.Within)
				}
			}
		}
		// The kernel schema derives cleanly too.
		if _, err := DeriveAB(m); err != nil {
			t.Fatalf("trial %d: DeriveAB failed: %v", trial, err)
		}
	}
}
