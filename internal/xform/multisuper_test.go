package xform

import (
	"testing"

	"mlds/internal/daplex"
	"mlds/internal/netmodel"
)

// The thesis allows a subtype to list one or more supertypes ("supertypeAA
// is a list of one or more entity types and subtypes"): each supertype
// yields its own ISA set. A teaching assistant is both a student and a
// faculty member.
const multiSuperDDL = `
DATABASE multi IS

ENTITY person IS
    pname : STRING(20);
END ENTITY;

SUBTYPE student OF person IS
    major : STRING(10);
END SUBTYPE;

SUBTYPE faculty OF person IS
    rank : STRING(10);
END SUBTYPE;

SUBTYPE teaching_assistant OF student, faculty IS
    hours : INTEGER;
END SUBTYPE;

OVERLAP student WITH faculty;

END DATABASE;
`

func multiMapping(t *testing.T) *Mapping {
	t.Helper()
	fun, err := daplex.ParseSchema(multiSuperDDL)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FunToNet(fun)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMultiSupertypeISASets(t *testing.T) {
	m := multiMapping(t)
	// One ISA set per declared supertype.
	for _, name := range []string{"student_teaching_assistant", "faculty_teaching_assistant"} {
		st, ok := m.Net.Set(name)
		if !ok {
			t.Fatalf("missing ISA set %q", name)
		}
		if st.Member != "teaching_assistant" {
			t.Errorf("set %q member = %q", name, st.Member)
		}
		if st.Insertion != netmodel.InsertAutomatic || st.Retention != netmodel.RetentionFixed {
			t.Errorf("set %q modes wrong: %+v", name, st)
		}
	}
}

func TestMultiSupertypeABSharedKeys(t *testing.T) {
	m := multiMapping(t)
	ab, err := DeriveAB(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []string{"student_teaching_assistant", "faculty_teaching_assistant"} {
		got := ab.Sets[set]
		if got.Place != PlaceSharedKey || got.File != "teaching_assistant" {
			t.Errorf("set %q = %+v", set, got)
		}
	}
}

func TestMultiSupertypeAncestors(t *testing.T) {
	m := multiMapping(t)
	anc := m.Fun.AncestorChain("teaching_assistant")
	// student, faculty, then person once (deduplicated diamond).
	if len(anc) != 3 {
		t.Fatalf("ancestors = %v", anc)
	}
	seen := map[string]bool{}
	for _, a := range anc {
		if seen[a] {
			t.Fatalf("ancestor %q repeated: %v", a, anc)
		}
		seen[a] = true
	}
	if !seen["student"] || !seen["faculty"] || !seen["person"] {
		t.Errorf("ancestors = %v", anc)
	}
}
