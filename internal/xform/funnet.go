// Package xform implements the MLDS schema transformers:
//
//   - functional → network (the thesis's Chapter V algorithm), the one-step
//     schema transformation of the direct language interface strategy;
//   - functional → ABDM, deriving the AB(functional) kernel database schema
//     (Chapter III.C.1, Figure 3.3);
//   - network → ABDM, the original network-interface mapping of Banerjee and
//     Wortherly, used for natively-defined network databases.
//
// Each transformation also produces the mapping metadata the DML translation
// needs: which network sets represent ISA relationships, which represent
// Daplex functions (and whether the function belongs to the set's owner or
// member record type), and where each set's attribute lives in the kernel
// representation.
package xform

import (
	"fmt"
	"strings"

	"mlds/internal/funcmodel"
	"mlds/internal/netmodel"
)

// SetOrigin classifies how a network set type arose during transformation.
type SetOrigin int

// Set origins.
const (
	// OriginSystem marks the singular set each entity type belongs to.
	OriginSystem SetOrigin = iota
	// OriginISA marks sets representing subtype (ISA) relationships.
	OriginISA
	// OriginFunction marks sets representing Daplex functions.
	OriginFunction
)

// String names the origin.
func (o SetOrigin) String() string {
	switch o {
	case OriginSystem:
		return "system"
	case OriginISA:
		return "isa"
	default:
		return "function"
	}
}

// SetInfo is the transformation provenance of one network set type.
type SetInfo struct {
	Origin       SetOrigin
	FuncName     string // Daplex function, for OriginFunction sets
	FuncHome     string // entity type/subtype declaring the function
	SingleValued bool   // single-valued entity function
	ManyToMany   bool   // half of a many-to-many pair
	LinkRecord   string // LINK record type, for ManyToMany sets
	PairSet      string // the other set of a many-to-many pair
}

// Mapping is the outcome of a functional→network transformation: the target
// schema plus per-set and per-attribute provenance.
type Mapping struct {
	Fun *funcmodel.Schema
	Net *netmodel.Schema
	// Sets maps each network set name to its provenance.
	Sets map[string]SetInfo
	// MultiAttr marks record attributes that represent scalar multi-valued
	// functions: record type → attribute name.
	MultiAttr map[string]map[string]bool
	// LinkRecords lists the LINK_x record types, in creation order.
	LinkRecords []string
}

// SetFor returns the provenance of a set.
func (m *Mapping) SetFor(name string) (SetInfo, bool) {
	si, ok := m.Sets[name]
	return si, ok
}

// IsLinkRecord reports whether the record type was synthesised for a
// many-to-many function pair.
func (m *Mapping) IsLinkRecord(name string) bool {
	for _, l := range m.LinkRecords {
		if l == name {
			return true
		}
	}
	return false
}

// SystemSetName names the SYSTEM-owned set an entity type belongs to.
func SystemSetName(entity string) string { return "system_" + entity }

// ISASetName names the set representing subtype sub's ISA relationship with
// supertype sup: the owner name, an underscore, and the member name.
func ISASetName(sup, sub string) string { return sup + "_" + sub }

// FunToNet transforms a functional schema into a network schema following
// the Chapter V algorithm. The six functional constructs — entity types,
// entity subtypes, non-entity types, uniqueness constraints, overlap
// constraints, and the implied set types — are mapped as follows:
//
//  1. each entity type becomes a record type plus a SYSTEM-owned set;
//  2. each entity subtype becomes a record type plus, per supertype, a set
//     named supertype_subtype owned by the supertype (automatic insertion,
//     fixed retention);
//  3. non-entity types map onto network data types: strings and enumerations
//     to characters, integers to integers, floats to floats;
//  4. scalar functions become record attributes; scalar multi-valued
//     functions become attributes whose duplicate flag is cleared;
//     single-valued functions become sets named after the function, owned by
//     the range record type with the domain record type as member;
//     multi-valued functions become either a one-to-many set (domain owner,
//     range member) or — when the range type declares a multi-valued
//     function back to the domain — a LINK_x record type with two sets;
//  5. uniqueness constraints clear the duplicate flag of the constrained
//     attributes;
//  6. function sets get manual insertion, optional retention; all sets
//     select by application.
func FunToNet(fun *funcmodel.Schema) (*Mapping, error) {
	if err := fun.Validate(); err != nil {
		return nil, err
	}
	m := &Mapping{
		Fun:       fun,
		Net:       &netmodel.Schema{Name: fun.Name},
		Sets:      make(map[string]SetInfo),
		MultiAttr: make(map[string]map[string]bool),
	}

	// Pass 1: record types for entity types and subtypes, with attributes
	// from scalar functions; SYSTEM and ISA sets.
	for _, e := range fun.Entities {
		rec, err := m.buildRecord(e.Name, e.Functions)
		if err != nil {
			return nil, err
		}
		m.Net.Records = append(m.Net.Records, rec)
		name := SystemSetName(e.Name)
		m.Net.Sets = append(m.Net.Sets, &netmodel.SetType{
			Name:      name,
			Owner:     netmodel.SystemOwner,
			Member:    e.Name,
			Insertion: netmodel.InsertAutomatic,
			Retention: netmodel.RetentionFixed,
			Selection: netmodel.SelectByApplication,
		})
		m.Sets[name] = SetInfo{Origin: OriginSystem}
	}
	for _, st := range fun.Subtypes {
		rec, err := m.buildRecord(st.Name, st.Functions)
		if err != nil {
			return nil, err
		}
		m.Net.Records = append(m.Net.Records, rec)
		for _, sup := range st.Supertypes {
			name := ISASetName(sup, st.Name)
			m.Net.Sets = append(m.Net.Sets, &netmodel.SetType{
				Name:      name,
				Owner:     sup,
				Member:    st.Name,
				Insertion: netmodel.InsertAutomatic,
				Retention: netmodel.RetentionFixed,
				Selection: netmodel.SelectByApplication,
			})
			m.Sets[name] = SetInfo{Origin: OriginISA}
		}
	}

	// Pass 2: sets from entity-valued functions. Many-to-many pairs are
	// detected first so each pair yields exactly one LINK record.
	if err := m.buildFunctionSets(); err != nil {
		return nil, err
	}

	// Pass 3: uniqueness constraints clear duplicate flags.
	for _, u := range fun.Uniques {
		rec, ok := m.Net.Record(u.Within)
		if !ok {
			return nil, fmt.Errorf("xform: UNIQUE WITHIN %q has no record type", u.Within)
		}
		for _, fname := range u.Functions {
			a, ok := rec.Attribute(fname)
			if !ok {
				return nil, fmt.Errorf("xform: UNIQUE function %q is not an attribute of %q", fname, u.Within)
			}
			a.DupFlag = false
		}
	}

	if err := m.Net.Validate(); err != nil {
		return nil, fmt.Errorf("xform: transformed schema invalid: %w", err)
	}
	return m, nil
}

// buildRecord creates the record type for one entity type or subtype,
// mapping its scalar and scalar multi-valued functions to attributes.
func (m *Mapping) buildRecord(name string, fns []*funcmodel.Function) (*netmodel.RecordType, error) {
	rec := &netmodel.RecordType{Name: name}
	for _, f := range fns {
		if f.Result.IsEntity() {
			continue // handled by buildFunctionSets
		}
		a, err := scalarAttr(m.Fun, f)
		if err != nil {
			return nil, err
		}
		rec.Attributes = append(rec.Attributes, a)
		if f.SetValued {
			// A scalar multi-valued function stores one occurrence per
			// record; the attribute cannot have duplicates within a record.
			a.DupFlag = false
			if m.MultiAttr[name] == nil {
				m.MultiAttr[name] = make(map[string]bool)
			}
			m.MultiAttr[name][f.Name] = true
		}
	}
	return rec, nil
}

// scalarAttr maps a non-entity function result onto a network attribute,
// implementing the non-entity type mapping:
// string→character, float→float, integer→integer, enumeration→character
// sized to the longest literal, boolean→character(5).
func scalarAttr(fun *funcmodel.Schema, f *funcmodel.Function) (*netmodel.Attribute, error) {
	a := &netmodel.Attribute{Name: f.Name, Level: 2, DupFlag: true}
	scalar, length := f.Result.Scalar, f.Result.Length
	if f.Result.NonEntity != "" {
		ne, ok := fun.NonEntity(f.Result.NonEntity)
		if !ok {
			return nil, fmt.Errorf("xform: function %q uses unknown non-entity type %q", f.Name, f.Result.NonEntity)
		}
		scalar, length = ne.Type, ne.Length
	}
	switch scalar {
	case funcmodel.TypeString:
		a.Type, a.Length = netmodel.AttrString, length
	case funcmodel.TypeInt:
		a.Type = netmodel.AttrInt
	case funcmodel.TypeFloat:
		a.Type = netmodel.AttrFloat
	case funcmodel.TypeEnum:
		a.Type, a.Length = netmodel.AttrString, length
	case funcmodel.TypeBool:
		a.Type, a.Length = netmodel.AttrString, 5
	default:
		return nil, fmt.Errorf("xform: function %q has unmappable scalar type %q", f.Name, scalar)
	}
	return a, nil
}

// buildFunctionSets creates set types for single- and multi-valued
// entity-returning functions, pairing many-to-many functions into LINK
// records.
func (m *Mapping) buildFunctionSets() error {
	type mvFunc struct {
		home string
		fn   *funcmodel.Function
	}
	var multi []mvFunc
	handled := make(map[string]bool) // function name → already mapped

	eachType := func(visit func(home string, fns []*funcmodel.Function)) {
		for _, e := range m.Fun.Entities {
			visit(e.Name, e.Functions)
		}
		for _, st := range m.Fun.Subtypes {
			visit(st.Name, st.Functions)
		}
	}

	// Single-valued entity functions → one set each: owner is the range
	// record type, member is the domain record type.
	eachType(func(home string, fns []*funcmodel.Function) {
		for _, f := range fns {
			if !f.Result.IsEntity() {
				continue
			}
			if f.SetValued {
				multi = append(multi, mvFunc{home, f})
				continue
			}
			m.Net.Sets = append(m.Net.Sets, &netmodel.SetType{
				Name:      f.Name,
				Owner:     f.Result.Entity,
				Member:    home,
				Insertion: netmodel.InsertManual,
				Retention: netmodel.RetentionOptional,
				Selection: netmodel.SelectByApplication,
			})
			m.Sets[f.Name] = SetInfo{
				Origin:       OriginFunction,
				FuncName:     f.Name,
				FuncHome:     home,
				SingleValued: true,
			}
		}
	})

	// Multi-valued: detect many-to-many pairs (A.f →→ B and B.g →→ A).
	for _, mf := range multi {
		if handled[mf.fn.Name] {
			continue
		}
		var pair *mvFunc
		for i := range multi {
			other := &multi[i]
			if other.fn.Name == mf.fn.Name || handled[other.fn.Name] {
				continue
			}
			if mf.fn.Result.Entity == other.home && other.fn.Result.Entity == mf.home {
				pair = other
				break
			}
		}
		if pair != nil {
			link := fmt.Sprintf("LINK_%d", len(m.LinkRecords)+1)
			m.LinkRecords = append(m.LinkRecords, link)
			m.Net.Records = append(m.Net.Records, &netmodel.RecordType{Name: link})
			for _, half := range []struct {
				fn    *funcmodel.Function
				home  string
				other string
			}{
				{mf.fn, mf.home, pair.fn.Name},
				{pair.fn, pair.home, mf.fn.Name},
			} {
				m.Net.Sets = append(m.Net.Sets, &netmodel.SetType{
					Name:      half.fn.Name,
					Owner:     half.home,
					Member:    link,
					Insertion: netmodel.InsertManual,
					Retention: netmodel.RetentionOptional,
					Selection: netmodel.SelectByApplication,
				})
				m.Sets[half.fn.Name] = SetInfo{
					Origin:     OriginFunction,
					FuncName:   half.fn.Name,
					FuncHome:   half.home,
					ManyToMany: true,
					LinkRecord: link,
					PairSet:    half.other,
				}
			}
			handled[mf.fn.Name], handled[pair.fn.Name] = true, true
			continue
		}
		// One-to-many: domain record type owns, range record type is member.
		m.Net.Sets = append(m.Net.Sets, &netmodel.SetType{
			Name:      mf.fn.Name,
			Owner:     mf.home,
			Member:    mf.fn.Result.Entity,
			Insertion: netmodel.InsertManual,
			Retention: netmodel.RetentionOptional,
			Selection: netmodel.SelectByApplication,
		})
		m.Sets[mf.fn.Name] = SetInfo{
			Origin:   OriginFunction,
			FuncName: mf.fn.Name,
			FuncHome: mf.home,
		}
		handled[mf.fn.Name] = true
	}
	return nil
}

// Describe renders a human-readable table of the mapping's set provenance.
func (m *Mapping) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", m.Net.String())
	for _, st := range m.Net.Sets {
		si := m.Sets[st.Name]
		fmt.Fprintf(&b, "  set %-24s %-8s owner=%-14s member=%-14s", st.Name, si.Origin, st.Owner, st.Member)
		if si.Origin == OriginFunction {
			fmt.Fprintf(&b, " func=%s home=%s", si.FuncName, si.FuncHome)
			if si.SingleValued {
				b.WriteString(" single-valued")
			}
			if si.ManyToMany {
				fmt.Fprintf(&b, " many-to-many via %s", si.LinkRecord)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
