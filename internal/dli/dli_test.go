package dli

import (
	"testing"

	"mlds/internal/abdm"
)

func mustCall(t *testing.T, src string) Call {
	t.Helper()
	c, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return c
}

func TestParseGU(t *testing.T) {
	gu := mustCall(t, "GU dept (dname = 'CS') course (title = 'DB', credits >= 3) enroll").(*GU)
	if len(gu.Path) != 3 {
		t.Fatalf("path = %+v", gu.Path)
	}
	if gu.Path[0].Segment != "dept" || len(gu.Path[0].Conds) != 1 {
		t.Errorf("ssa0 = %+v", gu.Path[0])
	}
	if len(gu.Path[1].Conds) != 2 || gu.Path[1].Conds[1].Op != abdm.OpGe {
		t.Errorf("ssa1 = %+v", gu.Path[1])
	}
	if gu.Path[2].Segment != "enroll" || len(gu.Path[2].Conds) != 0 {
		t.Errorf("ssa2 = %+v", gu.Path[2])
	}
}

func TestParseGNAndGNP(t *testing.T) {
	if g := mustCall(t, "GN").(*GN); g.Segment != "" {
		t.Errorf("GN = %+v", g)
	}
	if g := mustCall(t, "GN course").(*GN); g.Segment != "course" {
		t.Errorf("GN seg = %+v", g)
	}
	if g := mustCall(t, "GNP enroll").(*GNP); g.Segment != "enroll" {
		t.Errorf("GNP = %+v", g)
	}
}

func TestParseISRTReplDlet(t *testing.T) {
	is := mustCall(t, "ISRT course (title = 'X', credits = 3)").(*ISRT)
	if is.Segment != "course" || len(is.Assigns) != 2 {
		t.Fatalf("ISRT = %+v", is)
	}
	if is.Assigns[1].Val.Kind() != abdm.KindInt {
		t.Errorf("credits kind = %v", is.Assigns[1].Val.Kind())
	}
	r := mustCall(t, "REPL (credits = 5, title = NULL)").(*REPL)
	if len(r.Assigns) != 2 || !r.Assigns[1].Val.IsNull() {
		t.Fatalf("REPL = %+v", r)
	}
	if _, ok := mustCall(t, "DLET").(*DLET); !ok {
		t.Error("DLET lost")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROB",
		"GU",
		"GU dept (dname = )",
		"GU dept (dname 'x')",
		"GU dept (dname = 'x'",
		"ISRT",
		"ISRT course",
		"ISRT course (a = 1) extra",
		"REPL",
		"REPL (a 1)",
		"DLET extra",
		"GU dept ('unterminated)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

// FuzzParseDLI: the DL/I parser must never panic.
func FuzzParseDLI(f *testing.F) {
	f.Add("GU dept (dname = 'CS') course (credits >= 3)")
	f.Add("ISRT enroll (sname = 'Ann', grade = 3.5)")
	f.Add("REPL (a = NULL)")
	f.Add("GNP enroll")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Parse(src)
	})
}
