// Package dli implements the DL/I call language of the MLDS hierarchical
// interface: GU (get unique, with segment search arguments), GN (get next in
// hierarchic order), GNP (get next within parent), ISRT (insert), REPL
// (replace) and DLET (delete).
package dli

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"mlds/internal/abdm"
)

// Call is one DL/I call.
type Call interface{ dliCall() }

// Cond is one comparison inside a segment search argument.
type Cond struct {
	Field string
	Op    abdm.Op
	Val   abdm.Value
}

// SSA is a segment search argument: a segment name with optional
// qualification.
type SSA struct {
	Segment string
	Conds   []Cond
}

// GU is get-unique: locate the first segment occurrence satisfying the SSA
// path, qualifying each level from the root down.
type GU struct{ Path []SSA }

func (*GU) dliCall() {}

// GN is get-next: the next segment in hierarchic (preorder) order,
// optionally restricted to one segment type.
type GN struct{ Segment string }

func (*GN) dliCall() {}

// GNP is get-next-within-parent: the next descendant of the current parent
// position, optionally restricted to one segment type.
type GNP struct{ Segment string }

func (*GNP) dliCall() {}

// Assign is one field = literal assignment.
type Assign struct {
	Field string
	Val   abdm.Value
}

// ISRT inserts a new segment occurrence under the current position.
type ISRT struct {
	Segment string
	Assigns []Assign
}

func (*ISRT) dliCall() {}

// REPL replaces fields of the current segment occurrence.
type REPL struct{ Assigns []Assign }

func (*REPL) dliCall() {}

// DLET deletes the current segment occurrence and its dependents.
type DLET struct{}

func (*DLET) dliCall() {}

// Parse parses one DL/I call.
func Parse(src string) (Call, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var call Call
	switch {
	case p.eat("GU"):
		call, err = p.parseGU()
	case p.eat("GNP"):
		g := &GNP{}
		if t := p.tok(); t.kind == tWord {
			g.Segment = t.text
			p.advance()
		}
		call = g
	case p.eat("GN"):
		g := &GN{}
		if t := p.tok(); t.kind == tWord {
			g.Segment = t.text
			p.advance()
		}
		call = g
	case p.eat("ISRT"):
		call, err = p.parseISRT()
	case p.eat("REPL"):
		call, err = p.parseREPL()
	case p.eat("DLET"):
		call = &DLET{}
	default:
		return nil, fmt.Errorf("dli: unknown call starting with %s", p.tok())
	}
	if err != nil {
		return nil, err
	}
	if !p.done() {
		return nil, fmt.Errorf("dli: trailing input after call: %s", p.tok())
	}
	return call, nil
}

type tkind int

const (
	tEOF tkind = iota
	tWord
	tNumber
	tString
	tPunct
)

type token struct {
	kind tkind
	text string
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

func lex(src string) ([]token, error) {
	var out []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			out = append(out, token{tWord, src[start:i]})
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			start := i
			i++
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			out = append(out, token{tNumber, src[start:i]})
		case c == '\'':
			i++
			var b strings.Builder
			for {
				if i >= len(src) {
					return nil, fmt.Errorf("dli: unterminated string literal")
				}
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				b.WriteByte(src[i])
				i++
			}
			out = append(out, token{tString, b.String()})
		default:
			for _, pch := range []string{"<=", ">=", "<>", "!="} {
				if strings.HasPrefix(src[i:], pch) {
					out = append(out, token{tPunct, pch})
					i += len(pch)
					goto next
				}
			}
			switch c {
			case '(', ')', ',', '=', '<', '>':
				out = append(out, token{tPunct, string(c)})
				i++
			default:
				return nil, fmt.Errorf("dli: unexpected character %q", c)
			}
		next:
		}
	}
	return append(out, token{kind: tEOF}), nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) tok() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) done() bool { return p.tok().kind == tEOF }

func (p *parser) eat(w string) bool {
	t := p.tok()
	if t.kind == tWord && strings.EqualFold(t.text, w) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) literal() (abdm.Value, error) {
	t := p.tok()
	switch t.kind {
	case tString:
		p.advance()
		return abdm.String(t.text), nil
	case tNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return abdm.Value{}, fmt.Errorf("dli: bad number %q", t.text)
			}
			return abdm.Float(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return abdm.Value{}, fmt.Errorf("dli: bad number %q", t.text)
		}
		return abdm.Int(n), nil
	case tWord:
		if strings.EqualFold(t.text, "NULL") {
			p.advance()
			return abdm.Null(), nil
		}
		return abdm.Value{}, fmt.Errorf("dli: expected a literal, found %s", t)
	default:
		return abdm.Value{}, fmt.Errorf("dli: expected a literal, found %s", t)
	}
}

// parseGU parses a sequence of SSAs: seg [(field op lit [, ...])] ...
func (p *parser) parseGU() (Call, error) {
	gu := &GU{}
	for {
		t := p.tok()
		if t.kind != tWord {
			break
		}
		ssa := SSA{Segment: t.text}
		p.advance()
		if pt := p.tok(); pt.kind == tPunct && pt.text == "(" {
			p.advance()
			for {
				ft := p.tok()
				if ft.kind != tWord {
					return nil, fmt.Errorf("dli: expected a field name, found %s", ft)
				}
				field := ft.text
				p.advance()
				ot := p.tok()
				if ot.kind != tPunct {
					return nil, fmt.Errorf("dli: expected an operator, found %s", ot)
				}
				op, err := abdm.ParseOp(ot.text)
				if err != nil {
					return nil, err
				}
				p.advance()
				val, err := p.literal()
				if err != nil {
					return nil, err
				}
				ssa.Conds = append(ssa.Conds, Cond{Field: field, Op: op, Val: val})
				if ct := p.tok(); ct.kind == tPunct && ct.text == "," {
					p.advance()
					continue
				}
				break
			}
			if ct := p.tok(); ct.kind != tPunct || ct.text != ")" {
				return nil, fmt.Errorf("dli: expected ')', found %s", ct)
			}
			p.advance()
		}
		gu.Path = append(gu.Path, ssa)
	}
	if len(gu.Path) == 0 {
		return nil, fmt.Errorf("dli: GU requires at least one segment search argument")
	}
	return gu, nil
}

func (p *parser) parseAssigns() ([]Assign, error) {
	if t := p.tok(); t.kind != tPunct || t.text != "(" {
		return nil, fmt.Errorf("dli: expected '(', found %s", t)
	}
	p.advance()
	var out []Assign
	for {
		ft := p.tok()
		if ft.kind != tWord {
			return nil, fmt.Errorf("dli: expected a field name, found %s", ft)
		}
		field := ft.text
		p.advance()
		if et := p.tok(); et.kind != tPunct || et.text != "=" {
			return nil, fmt.Errorf("dli: expected '=', found %s", et)
		}
		p.advance()
		val, err := p.literal()
		if err != nil {
			return nil, err
		}
		out = append(out, Assign{Field: field, Val: val})
		if ct := p.tok(); ct.kind == tPunct && ct.text == "," {
			p.advance()
			continue
		}
		break
	}
	if ct := p.tok(); ct.kind != tPunct || ct.text != ")" {
		return nil, fmt.Errorf("dli: expected ')', found %s", ct)
	}
	p.advance()
	return out, nil
}

func (p *parser) parseISRT() (Call, error) {
	t := p.tok()
	if t.kind != tWord {
		return nil, fmt.Errorf("dli: ISRT requires a segment name")
	}
	seg := t.text
	p.advance()
	assigns, err := p.parseAssigns()
	if err != nil {
		return nil, err
	}
	return &ISRT{Segment: seg, Assigns: assigns}, nil
}

func (p *parser) parseREPL() (Call, error) {
	assigns, err := p.parseAssigns()
	if err != nil {
		return nil, err
	}
	return &REPL{Assigns: assigns}, nil
}
